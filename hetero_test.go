package medmaker

// Differential coverage for the heterogeneous source tier: each bundled
// source kind serving an extent must be indistinguishable — through a
// mediator, under every executor mode — from an OEM-native facade
// holding the same data. The capability differences between the kinds
// (the HTTP wrapper disclaims rests, wildcards, and joins; the XML and
// stream sources are fully capable) are exactly what the comparison
// exercises: the engine must relax what a source disclaims and
// compensate locally, never change the answers.

import (
	"bytes"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"medmaker/internal/oem"
	"medmaker/internal/wrapper/wrappertest"
)

// heteroKinds enumerates the new source kinds, each built over the given
// people extent under the shared source name "src".
func heteroKinds(t *testing.T, people []*Object) []struct {
	name string
	src  Source
} {
	t.Helper()
	clones := func() []*Object {
		out := make([]*Object, len(people))
		for i, p := range people {
			out[i] = p.Clone()
		}
		return out
	}

	var buf bytes.Buffer
	if err := EncodeXML(&buf, people, XMLMapping{}); err != nil {
		t.Fatal(err)
	}
	xmlSrc, err := NewXMLSourceFromReader("src", &buf, XMLMapping{})
	if err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(NewHTTPHandler(people))
	t.Cleanup(srv.Close)
	httpSrc, err := NewHTTPSource("src", srv.URL, WithHTTPRetries(2, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}

	streamSrc := NewStreamSource("src", StreamOptions{})
	if err := streamSrc.Append(clones()...); err != nil {
		t.Fatal(err)
	}

	return []struct {
		name string
		src  Source
	}{
		{"xml", xmlSrc},
		{"jsonhttp", httpSrc},
		{"stream", streamSrc},
	}
}

// TestHeteroSourcesMatchFacade holds every new source kind to the
// OEM-native facade's answers across the executor modes.
func TestHeteroSourcesMatchFacade(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	people := randomPeople(r, 25)
	facade := NewOEMSource("src")
	for _, p := range people {
		if err := facade.Add(p.Clone()); err != nil {
			t.Fatal(err)
		}
	}

	spec := `<view {<name N> | R}> :- <person {<name N> | R}>@src.`
	queries := []string{
		`X :- X:<view {<name N>}>@med.`,
		`X :- X:<view {<dept 'CS'>}>@med.`,
		`X :- X:<view {<year 3>}>@med.`,
		`X :- X:<view {<e_mail E>}>@med.`,
	}

	mkMed := func(src Source, par int, pipeline bool) *Mediator {
		med, err := New(Config{
			Name: "med", Spec: spec,
			Sources:     []Source{src},
			Parallelism: par,
			Pipeline:    pipeline,
		})
		if err != nil {
			t.Fatal(err)
		}
		return med
	}

	ref := mkMed(facade, 0, false)
	for _, kind := range heteroKinds(t, people) {
		t.Run(kind.name, func(t *testing.T) {
			for _, mode := range executorModes {
				med := mkMed(kind.src, mode.parallel, mode.pipeline)
				for qi, q := range queries {
					want, err := ref.QueryString(q)
					if err != nil {
						t.Fatalf("facade query %d: %v", qi, err)
					}
					got, err := med.QueryString(q)
					if err != nil {
						t.Fatalf("%s query %d: %v", mode.name, qi, err)
					}
					ws, gs := canonicalize(want), canonicalize(got)
					if len(ws) != len(gs) {
						t.Fatalf("%s query %d: %d answers, facade has %d", mode.name, qi, len(gs), len(ws))
					}
					for i := range ws {
						if ws[i] != gs[i] {
							t.Fatalf("%s query %d: answer %d differs\ngot:  %s\nwant: %s",
								mode.name, qi, i, gs[i], ws[i])
						}
					}
				}
			}
		})
	}
}

// TestBundledSourcesConform runs the capability-conformance probes
// against every bundled source kind: each must answer what it advertises
// exactly like the generic evaluator, and refuse (or still answer
// correctly) what it disclaims.
func TestBundledSourcesConform(t *testing.T) {
	mk := func() []*Object {
		return []*Object{
			oem.NewSet("", "person",
				oem.New("", "name", "Joe Chung"), oem.New("", "dept", "CS"), oem.New("", "year", 3)),
			oem.NewSet("", "person",
				oem.New("", "name", "Ann Arbor"), oem.New("", "dept", "EE"), oem.New("", "year", 1)),
			oem.NewSet("", "person",
				oem.New("", "name", "Pat Smith"), oem.New("", "dept", "CS"), oem.New("", "year", 2)),
		}
	}

	t.Run("oemstore", func(t *testing.T) {
		src := NewOEMSource("src")
		if err := src.Add(mk()...); err != nil {
			t.Fatal(err)
		}
		wrappertest.Conformance(t, src, src.Store().TopLevel())
	})

	t.Run("relational", func(t *testing.T) {
		db := NewRelationalDB()
		tbl := db.MustCreateTable(RelationalSchema{
			Name: "employee",
			Columns: []RelationalColumn{
				{Name: "first_name", Kind: oem.KindString},
				{Name: "last_name", Kind: oem.KindString},
				{Name: "year", Kind: oem.KindInt},
			},
		})
		tbl.MustInsert("Joe", "Chung", 3)
		tbl.MustInsert("Ann", "Arbor", 1)
		w := NewRelationalWrapper("src", db)
		wrappertest.Conformance(t, w, w.Export())
	})

	t.Run("semistruct", func(t *testing.T) {
		store := NewRecordStore()
		if err := store.Add(
			Record{Kind: "person", Fields: []RecordField{
				{Name: "name", Value: "Joe Chung"}, {Name: "dept", Value: "CS"}, {Name: "year", Value: 3}}},
			Record{Kind: "person", Fields: []RecordField{
				{Name: "name", Value: "Ann Arbor"}, {Name: "dept", Value: "EE"}}},
		); err != nil {
			t.Fatal(err)
		}
		w := NewRecordWrapper("src", store)
		wrappertest.Conformance(t, w, w.Export())
	})

	t.Run("xmlsource", func(t *testing.T) {
		src, err := NewXMLSource("src", mk())
		if err != nil {
			t.Fatal(err)
		}
		wrappertest.Conformance(t, src, src.Export())
	})

	t.Run("jsonhttp", func(t *testing.T) {
		srv := httptest.NewServer(NewHTTPHandler(mk()))
		t.Cleanup(srv.Close)
		src, err := NewHTTPSource("src", srv.URL, WithHTTPRetries(2, time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		wrappertest.Conformance(t, src, mk())
	})

	t.Run("streamsource", func(t *testing.T) {
		src := NewStreamSource("src", StreamOptions{})
		if err := src.Append(mk()...); err != nil {
			t.Fatal(err)
		}
		wrappertest.Conformance(t, src, src.Export())
	})

	t.Run("partitioned", func(t *testing.T) {
		members := []*OEMSource{NewOEMSource("src0"), NewOEMSource("src1")}
		all := mk()
		for _, o := range all {
			name, _ := o.Sub("name").AtomString()
			if err := members[ShardOf(name, len(members))].Add(o); err != nil {
				t.Fatal(err)
			}
		}
		p, err := NewPartitionedSource("src", "name", members[0], members[1])
		if err != nil {
			t.Fatal(err)
		}
		wrappertest.Conformance(t, p, mk())
	})
}
