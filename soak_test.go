package medmaker

import (
	"fmt"
	"sync"
	"testing"

	"medmaker/internal/workload"
)

// soakQueries is the mixed workload one soak client cycles through:
// zipfian-hot point lookups, a broad full-view scan, and a predicate
// filter, so plan-cache hits, misses, and answer-cache traffic all
// interleave under load.
func soakQueries(staff *workload.Staff) []string {
	gen := workload.NewQueryGen(workload.QueryGenConfig{
		Names: staff.Names, Distinct: 40, Seed: 17,
	})
	qs := make([]string, 0, 10)
	for i := 0; i < 8; i++ {
		qs = append(qs, gen.Next())
	}
	qs = append(qs,
		`P :- P:<cs_person {<name N>}>@med.`,
		`S :- S:<cs_person {<year 3>}>@med.`,
	)
	return qs
}

// TestSoakSharedMediator hammers one shared mediator — plan cache and
// answer cache on — from concurrent clients in each execution mode and
// checks every concurrent answer against a single-client reference run.
// Run under -race this is the serving tier's thread-safety argument.
func TestSoakSharedMediator(t *testing.T) {
	staff, err := workload.GenStaff(workload.StaffConfig{
		Persons: 300, Departments: 4, EmployeeFraction: 0.5, Irregularity: 0.3, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	mkMed := func(par int, pipeline bool) *Mediator {
		med, err := New(Config{
			Name: "med", Spec: specMS1,
			Sources: []Source{
				NewRelationalWrapper("cs", staff.DB),
				NewRecordWrapper("whois", staff.Store),
			},
			PlanCache:   &PlanCacheOptions{MaxEntries: 64},
			Cache:       &CacheOptions{},
			Parallelism: par,
			Pipeline:    pipeline,
		})
		if err != nil {
			t.Fatal(err)
		}
		return med
	}
	queries := soakQueries(staff)

	// Single-client reference answers, computed on a serial mediator.
	ref := mkMed(1, false)
	want := make(map[string]string, len(queries))
	for _, q := range queries {
		objs, err := ref.QueryString(q)
		if err != nil {
			t.Fatalf("reference %q: %v", q, err)
		}
		want[q] = fmt.Sprint(canonicalize(objs))
	}

	modes := []struct {
		name     string
		par      int
		pipeline bool
	}{
		{"serial", 1, false},
		{"parallel", 4, false},
		{"pipelined", 4, true},
	}
	const clients = 8
	const iters = 25
	for _, mode := range modes {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			med := mkMed(mode.par, mode.pipeline)
			var wg sync.WaitGroup
			errs := make(chan error, clients)
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						// Per-client offset so clients collide on some
						// queries and diverge on others at any instant.
						q := queries[(c+i)%len(queries)]
						objs, err := med.QueryString(q)
						if err != nil {
							errs <- fmt.Errorf("%s client %d iter %d: %w", mode.name, c, i, err)
							return
						}
						if got := fmt.Sprint(canonicalize(objs)); got != want[q] {
							errs <- fmt.Errorf("%s client %d iter %d: answer diverged for %q:\n got %s\nwant %s",
								mode.name, c, i, q, got, want[q])
							return
						}
					}
				}(c)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
			if st := med.PlanCacheStats(); st.Hits == 0 {
				t.Errorf("%s: soak never hit the plan cache: %+v", mode.name, st)
			}
		})
	}
}

// TestSoakShardedTopology hammers a mediator whose cs and whois sources
// are 4-shard partitions from concurrent clients, in each execution
// mode, checking every answer against the flat single-extent reference.
// Under -race this is the scatter/gather path's thread-safety argument:
// routed point queries and full scatters interleave from many clients at
// once.
func TestSoakShardedTopology(t *testing.T) {
	s, err := workload.GenStaffSharded(workload.StaffConfig{
		Persons: 300, Departments: 4, EmployeeFraction: 0.5, Irregularity: 0.3, Seed: 1,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	queries := soakQueries(s.Staff)

	// Reference answers from the flat extent on a serial mediator.
	ref, err := New(Config{
		Name: "med", Spec: specMS1,
		Sources: []Source{
			NewRelationalWrapper("cs", s.DB),
			NewRecordWrapper("whois", s.Store),
		},
		Parallelism: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]string, len(queries))
	for _, q := range queries {
		objs, err := ref.QueryString(q)
		if err != nil {
			t.Fatalf("reference %q: %v", q, err)
		}
		want[q] = fmt.Sprint(canonicalize(objs))
	}

	modes := []struct {
		name     string
		par      int
		pipeline bool
	}{
		{"serial", 1, false},
		{"parallel", 4, false},
		{"pipelined", 4, true},
	}
	const clients = 8
	const iters = 15
	for _, mode := range modes {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			med := shardedStaffMediator(t, s, mode.par, mode.pipeline, ExecPolicy{})
			var wg sync.WaitGroup
			errs := make(chan error, clients)
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						q := queries[(c+i)%len(queries)]
						objs, err := med.QueryString(q)
						if err != nil {
							errs <- fmt.Errorf("%s client %d iter %d: %w", mode.name, c, i, err)
							return
						}
						if got := fmt.Sprint(canonicalize(objs)); got != want[q] {
							errs <- fmt.Errorf("%s client %d iter %d: sharded answer diverged for %q:\n got %s\nwant %s",
								mode.name, c, i, q, got, want[q])
							return
						}
					}
				}(c)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		})
	}
}
