package medmaker

// Differential coverage for the columnar binding tables and the morsel
// scheduler: every executor mode (serial materialized, parallel
// materialized, pipelined) at every interesting parallelism degree must
// return exactly the objects the strictly-serial executor returns, in the
// same order, across the differential suite's specs and queries. Run
// under -race this doubles as the scheduler's data-race harness.

import (
	"bytes"
	"math/rand"
	"runtime"
	"testing"

	"medmaker/internal/oem"
)

// heteroSources stands up the heterogeneous tier over the same people
// extent the whois source holds: an XML-backed copy that round-trips
// through the codec (so the engine path exercises Decode(Encode(...)))
// and a stream log holding the people as appended events.
func heteroSources(t *testing.T, people []*Object) (*XMLSource, *StreamSource) {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeXML(&buf, people, XMLMapping{}); err != nil {
		t.Fatal(err)
	}
	xmlSrc, err := NewXMLSourceFromReader("xml", &buf, XMLMapping{})
	if err != nil {
		t.Fatal(err)
	}
	streamSrc := NewStreamSource("stream", StreamOptions{})
	events := make([]*Object, len(people))
	for i, p := range people {
		events[i] = p.Clone()
	}
	if err := streamSrc.Append(events...); err != nil {
		t.Fatal(err)
	}
	return xmlSrc, streamSrc
}

func columnarSuite() (specs, queries []string) {
	specs = []string{
		specMS1,
		`<profile {<name N> | R}> :- <person {<name N> | R}>@whois.`,
		`<linked {<rel R> <fn FN>}> :- <person {<relation R>}>@whois AND <R {<first_name FN>}>@cs.`,
		`<senior {<name N> <year Y>}> :- <person {<name N> <year Y>}>@whois AND ge(Y, 3).`,
		`<anyone {<who N>}> :- <person {<name N>}>@whois.
		 <anyone {<who FN>}> :- <employee {<first_name FN>}>@cs.`,
		`<lonely {<name N>}> :-
		    <person {<name N> <relation R>}>@whois
		    AND NOT <R {<first_name FN>}>@cs.`,
		// Skolem object-ids: union + fuse on the result side.
		`<person(N) anyone {<name N>}> :- <person {<name N> <relation R>}>@whois AND <R {<first_name F>}>@cs.
		 <person(N) anyone {<name N>}> :- <person {<name N>}>@whois.`,
		// The XML tier serving the same profile view: an XML-backed copy
		// of the people must be indistinguishable from the native source.
		`<profile {<name N> | R}> :- <person {<name N> | R}>@xml.`,
		// Streamed events unioned with the relational side.
		`<anyone {<who N>}> :- <person {<name N>}>@stream.
		 <anyone {<who FN>}> :- <employee {<first_name FN>}>@cs.`,
	}
	queries = []string{
		// Queries are shared across specs: each spec answers the subset
		// whose head labels it defines; the rest are skipped per spec.
		`X :- X:<cs_person {<name 'P004 Q004'>}>@med.`,
		`X :- X:<cs_person {<year 3>}>@med.`,
		`X :- X:<profile {<name N>}>@med.`,
		`X :- X:<profile {<e_mail E>}>@med.`,
		`<pair R FN> :- <linked {<rel R> <fn FN>}>@med.`,
		`X :- X:<senior {<year 5>}>@med.`,
		`X :- X:<anyone {<who W>}>@med.`,
		`X :- X:<lonely {<name N>}>@med.`,
	}
	return specs, queries
}

// TestColumnarModesMatchSerial compares each executor mode and
// parallelism degree against a strictly serial run, object by object.
func TestColumnarModesMatchSerial(t *testing.T) {
	specs, queries := columnarSuite()
	degrees := []int{1, 2, runtime.GOMAXPROCS(0)}
	r := rand.New(rand.NewSource(7))
	people := randomPeople(r, 40)
	relations := randomRelations(r, 40)
	whoisSrc := NewOEMSource("whois")
	if err := whoisSrc.Add(people...); err != nil {
		t.Fatal(err)
	}
	csSrc := NewOEMSource("cs")
	if err := csSrc.Add(relations...); err != nil {
		t.Fatal(err)
	}
	xmlSrc, streamSrc := heteroSources(t, people)
	for si, spec := range specs {
		mk := func(par int, pipeline bool) *Mediator {
			med, err := New(Config{
				Name: "med", Spec: spec,
				Sources:     []Source{csSrc, whoisSrc, xmlSrc, streamSrc},
				Parallelism: par,
				Pipeline:    pipeline,
			})
			if err != nil {
				t.Fatal(err)
			}
			return med
		}
		serial := mk(1, false)
		for qi, q := range queries {
			want, err := serial.QueryString(q)
			if err != nil {
				continue // query does not apply to this spec
			}
			for _, par := range degrees {
				for _, pipeline := range []bool{false, true} {
					got, err := mk(par, pipeline).QueryString(q)
					if err != nil {
						t.Fatalf("spec=%d query=%d par=%d pipeline=%v: %v", si, qi, par, pipeline, err)
					}
					if len(got) != len(want) {
						t.Fatalf("spec=%d query=%d par=%d pipeline=%v: %d objects, serial has %d",
							si, qi, par, pipeline, len(got), len(want))
					}
					for i := range want {
						if !want[i].StructuralEqual(got[i]) {
							t.Fatalf("spec=%d query=%d par=%d pipeline=%v: result %d differs:\n%s\nvs\n%s",
								si, qi, par, pipeline, i, oem.Format(want[i]), oem.Format(got[i]))
						}
					}
				}
			}
		}
	}
}
