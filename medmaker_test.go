package medmaker

import (
	"strings"
	"testing"

	"medmaker/internal/oem"
)

// specMS1 is the paper's mediator specification MS1.
const specMS1 = `
<cs_person {<name N> <relation R> Rest1 Rest2}> :-
    <person {<name N> <dept 'CS'> <relation R> | Rest1}>@whois
    AND <R {<first_name FN> <last_name LN> | Rest2}>@cs
    AND decomp(N, LN, FN).

decomp(bound, free, free) by name_to_lnfn.
decomp(free, bound, bound) by lnfn_to_name.
`

// newPaperSources builds the cs (relational, Figure 2.2) and whois
// (semi-structured, Figure 2.3) sources of the paper's Section 2.
func newPaperSources(t testing.TB) (cs Source, whois Source) {
	t.Helper()
	db := NewRelationalDB()
	emp := db.MustCreateTable(RelationalSchema{
		Name: "employee",
		Columns: []RelationalColumn{
			{Name: "first_name", Kind: oem.KindString},
			{Name: "last_name", Kind: oem.KindString},
			{Name: "title", Kind: oem.KindString},
			{Name: "reports_to", Kind: oem.KindString},
		},
	})
	emp.MustInsert("Joe", "Chung", "professor", "John Hennessy")
	stu := db.MustCreateTable(RelationalSchema{
		Name: "student",
		Columns: []RelationalColumn{
			{Name: "first_name", Kind: oem.KindString},
			{Name: "last_name", Kind: oem.KindString},
			{Name: "year", Kind: oem.KindInt},
		},
	})
	stu.MustInsert("Nick", "Naive", 3)

	store := NewRecordStore()
	store.MustAdd(
		Record{Kind: "person", Fields: []RecordField{
			{Name: "name", Value: "Joe Chung"},
			{Name: "dept", Value: "CS"},
			{Name: "relation", Value: "employee"},
			{Name: "e_mail", Value: "chung@cs"},
		}},
		Record{Kind: "person", Fields: []RecordField{
			{Name: "name", Value: "Nick Naive"},
			{Name: "dept", Value: "CS"},
			{Name: "relation", Value: "student"},
			{Name: "year", Value: 3},
		}},
	)
	return NewRelationalWrapper("cs", db), NewRecordWrapper("whois", store)
}

func newMed(t testing.TB, opts *PlanOptions) *Mediator {
	t.Helper()
	cs, whois := newPaperSources(t)
	med, err := New(Config{
		Name:    "med",
		Spec:    specMS1,
		Sources: []Source{cs, whois},
		Plan:    opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	return med
}

// figure24 is the paper's Figure 2.4: the integrated cs_person object for
// Joe Chung.
var figure24 = oem.MustParse(`<cs_person, set, {
    <name, 'Joe Chung'>, <relation, 'employee'>, <e_mail, 'chung@cs'>,
    <title, 'professor'>, <reports_to, 'John Hennessy'>}>`)[0]

// TestQueryQ1Figure24 runs the paper's query Q1 end to end and checks the
// result against Figure 2.4.
func TestQueryQ1Figure24(t *testing.T) {
	med := newMed(t, nil)
	got, err := med.QueryString(`JC :- JC:<cs_person {<name 'Joe Chung'>}>@med.`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("Q1 returned %d objects, want 1:\n%s", len(got), oem.Format(got...))
	}
	if !got[0].StructuralEqual(figure24) {
		t.Fatalf("result differs from Figure 2.4:\ngot:\n%swant:\n%s",
			oem.Format(got[0]), oem.Format(figure24))
	}
}

// TestFullView queries the whole med view: both persons appear with the
// combined information from both sources.
func TestFullView(t *testing.T) {
	med := newMed(t, nil)
	got, err := med.QueryString(`P :- P:<cs_person {<name N>}>@med.`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("view has %d objects, want 2:\n%s", len(got), oem.Format(got...))
	}
	byName := map[string]*Object{}
	for _, o := range got {
		n, _ := o.Sub("name").AtomString()
		byName[n] = o
	}
	nick := byName["Nick Naive"]
	if nick == nil {
		t.Fatalf("Nick missing: %v", byName)
	}
	// Nick's object fuses whois year with the student table's year — the
	// same value from both sources, appearing in Rest1 and Rest2.
	if nick.Sub("year") == nil {
		t.Fatal("Nick's year lost")
	}
	if v, _ := nick.Sub("relation").AtomString(); v != "student" {
		t.Fatalf("Nick's relation = %q", v)
	}
}

// TestYearQueryPushdownBothRules runs the Section 3.3 query: the <year 3>
// condition reaches the sources through both τ1 and τ2, and Nick is found
// through whichever source holds the year attribute.
func TestYearQueryPushdownBothRules(t *testing.T) {
	med := newMed(t, nil)
	got, err := med.QueryString(`S :- S:<cs_person {<year 3>}>@med.`)
	if err != nil {
		t.Fatal(err)
	}
	// Nick has year 3 in both sources; duplicate elimination folds the
	// two derivations into one result object.
	if len(got) != 1 {
		t.Fatalf("year query returned %d objects, want 1:\n%s", len(got), oem.Format(got...))
	}
	if v, _ := got[0].Sub("name").AtomString(); v != "Nick Naive" {
		t.Fatalf("found %q", v)
	}
}

// TestDupElimOffReproducesPaperImplementation reproduces footnote 9: with
// duplicate elimination disabled (as in the authors' implementation) the
// year query yields one object per derivation.
func TestDupElimOffReproducesPaperImplementation(t *testing.T) {
	opts := PlanOptions{Order: 0, PushConditions: true, Parameterize: true, DupElim: false}
	med := newMed(t, &opts)
	got, err := med.QueryString(`S :- S:<cs_person {<year 3>}>@med.`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("without dup-elim: %d objects, want 2 (τ1 and τ2 derivations):\n%s",
			len(got), oem.Format(got...))
	}
	if !got[0].StructuralEqual(got[1]) {
		t.Fatal("the two derivations should be structurally equal")
	}
}

// TestPlanVariants checks that every optimizer configuration produces the
// same answers for the paper's query.
func TestPlanVariants(t *testing.T) {
	variants := []PlanOptions{
		{Order: 0, PushConditions: true, Parameterize: true, DupElim: true},   // default
		{Order: 0, PushConditions: false, Parameterize: true, DupElim: true},  // no pushdown
		{Order: 0, PushConditions: true, Parameterize: false, DupElim: true},  // join baseline
		{Order: 0, PushConditions: false, Parameterize: false, DupElim: true}, // neither
		{Order: 3, PushConditions: true, Parameterize: true, DupElim: true},   // reversed order
		{Order: 1, PushConditions: true, Parameterize: true, DupElim: true},   // stats order (cold)
		{Order: 2, PushConditions: true, Parameterize: true, DupElim: true},   // as written
	}
	for i, opts := range variants {
		o := opts
		med := newMed(t, &o)
		got, err := med.QueryString(`JC :- JC:<cs_person {<name 'Joe Chung'>}>@med.`)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if len(got) != 1 || !got[0].StructuralEqual(figure24) {
			t.Fatalf("variant %d: wrong answer:\n%s", i, oem.Format(got...))
		}
	}
}

// TestSchemaEvolution reproduces the Section 2 claim: adding a "birthday"
// attribute to a source flows into the view with no specification change.
func TestSchemaEvolution(t *testing.T) {
	cs, _ := newPaperSources(t)
	store := NewRecordStore()
	store.MustAdd(Record{Kind: "person", Fields: []RecordField{
		{Name: "name", Value: "Joe Chung"},
		{Name: "dept", Value: "CS"},
		{Name: "relation", Value: "employee"},
		{Name: "e_mail", Value: "chung@cs"},
		{Name: "birthday", Value: "June 1"}, // evolved schema
	}})
	med, err := New(Config{
		Name:    "med",
		Spec:    specMS1, // unchanged
		Sources: []Source{cs, NewRecordWrapper("whois", store)},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := med.QueryString(`JC :- JC:<cs_person {<name 'Joe Chung'>}>@med.`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatal("evolved source broke the view")
	}
	if b := got[0].Sub("birthday"); b == nil {
		t.Fatalf("birthday not propagated:\n%s", oem.Format(got[0]))
	}
	// And querying on the new attribute works too (pushed into Rest1).
	got2, err := med.QueryString(`P :- P:<cs_person {<birthday B>}>@med.`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != 1 {
		t.Fatalf("query on evolved attribute: %d objects", len(got2))
	}
}

// TestMediatorAsSource layers a second mediator over med, checking the
// TSIMMIS architecture composition of Figure 1.1.
func TestMediatorAsSource(t *testing.T) {
	med := newMed(t, nil)
	top, err := New(Config{
		Name: "dir",
		Spec: `<entry {<who N> <contact E>}> :-
		    <cs_person {<name N> <e_mail E>}>@med.`,
		Sources: []Source{med},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := top.QueryString(`X :- X:<entry {<who W>}>@dir.`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("directory view has %d entries, want 1 (only Joe has e_mail):\n%s",
			len(got), oem.Format(got...))
	}
	if v, _ := got[0].Sub("contact").AtomString(); v != "chung@cs" {
		t.Fatalf("contact = %q", v)
	}
}

// TestExplain checks that the logical program and physical graph render.
func TestExplain(t *testing.T) {
	med := newMed(t, nil)
	out, err := med.Explain(`JC :- JC:<cs_person {<name 'Joe Chung'>}>@med.`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"logical datamerge program",
		"physical datamerge graph",
		"'Joe Chung'",
		"query(",
		"param-query(",
		"external-pred(decomp)",
		"construct",
		"dedup",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain output missing %q:\n%s", want, out)
		}
	}
}

// TestTrace checks the node-by-node execution trace (Figure 3.6's flowing
// tables, textual form).
func TestTrace(t *testing.T) {
	cs, whois := newPaperSources(t)
	var trace strings.Builder
	med, err := New(Config{
		Name:    "med",
		Spec:    specMS1,
		Sources: []Source{cs, whois},
		Trace:   &trace,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := med.QueryString(`JC :- JC:<cs_person {<name 'Joe Chung'>}>@med.`); err != nil {
		t.Fatal(err)
	}
	out := trace.String()
	for _, want := range []string{"query(whois)", "param-query(cs)", "rows", "construct"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}

// TestStatsLearning checks that executing queries populates the
// statistics store used by OrderStats.
func TestStatsLearning(t *testing.T) {
	med := newMed(t, nil)
	if _, err := med.QueryString(`P :- P:<cs_person {<name N>}>@med.`); err != nil {
		t.Fatal(err)
	}
	if got := med.QueryStats().String(); !strings.Contains(got, "whois@person") {
		t.Fatalf("stats not recorded:\n%q", got)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Spec: specMS1}); err == nil {
		t.Fatal("nameless mediator accepted")
	}
	if _, err := New(Config{Name: "m", Spec: ""}); err == nil {
		t.Fatal("empty spec accepted")
	}
	if _, err := New(Config{Name: "m", Spec: "garbage"}); err == nil {
		t.Fatal("unparseable spec accepted")
	}
	if _, err := New(Config{Name: "m", Spec: `<a {X}> :- <b {X}>@s. p(bound) by nosuch.`}); err == nil {
		t.Fatal("unresolvable declaration accepted")
	}
}

func TestUnknownSourceRejectedAtConstruction(t *testing.T) {
	_, err := New(Config{Name: "m", Spec: `<a {X}> :- <b {X}>@ghost.`})
	if err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("unknown source error: %v", err)
	}
}

func TestUnsafeSpecRejected(t *testing.T) {
	cs, whois := newPaperSources(t)
	cases := []string{
		`<out {<name N> <extra Z>}> :- <person {<name N>}>@whois.`,      // Z unbound
		`<out {<name N>}> :- <person {<name N>}>@whois AND mystery(N).`, // undeclared pred
	}
	for _, spec := range cases {
		if _, err := New(Config{Name: "m", Spec: spec, Sources: []Source{cs, whois}}); err == nil {
			t.Errorf("unsafe spec accepted: %s", spec)
		}
	}
	// Self-references (views over views in one spec) remain legal.
	if _, err := New(Config{
		Name: "m",
		Spec: `<a {X}> :- <b {X}>.
		       <b {X}> :- <person {X}>@whois.`,
		Sources: []Source{whois},
	}); err != nil {
		t.Errorf("self-referencing spec rejected: %v", err)
	}
}

func TestEmptyAnswer(t *testing.T) {
	med := newMed(t, nil)
	got, err := med.QueryString(`P :- P:<cs_person {<name 'Nobody'>}>@med.`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("expected no answers, got %d", len(got))
	}
}

// TestCustomFunction registers a custom external function through Config.
func TestCustomFunction(t *testing.T) {
	cs, whois := newPaperSources(t)
	med, err := New(Config{
		Name: "med",
		Spec: `
		<shout {<name U>}> :- <person {<name N>}>@whois AND yell(N, U).
		yell(bound, free) by yell_impl.`,
		Sources: []Source{cs, whois},
		Functions: map[string]Func{
			"yell_impl": func(bound []Value) ([][]Value, error) {
				s := string(bound[0].(oem.String))
				return [][]Value{{oem.String(strings.ToUpper(s))}}, nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := med.QueryString(`X :- X:<shout {<name 'JOE CHUNG'>}>@med.`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("custom function query returned %d objects", len(got))
	}
}

// TestMixedViewAndSourceQuery joins a mediator-view condition with a
// direct source condition in one query, returning objects from both.
func TestMixedViewAndSourceQuery(t *testing.T) {
	med := newMed(t, nil)
	got, err := med.QueryString(`X P :-
	    X:<cs_person {<name N>}>@med
	    AND P:<person {<name N> <relation 'student'>}>@whois.`)
	if err != nil {
		t.Fatal(err)
	}
	// Only Nick is a student: his cs_person view object plus his raw
	// whois person object.
	if len(got) != 2 {
		t.Fatalf("mixed query returned %d objects:\n%s", len(got), oem.Format(got...))
	}
	labels := map[string]bool{}
	for _, o := range got {
		labels[o.Label] = true
	}
	if !labels["cs_person"] || !labels["person"] {
		t.Fatalf("expected one view object and one raw object: %v", labels)
	}
}

// TestSingleSourceUnionView addresses the limitation the paper calls out
// for med ("it only includes information for people that appear in both
// cs and whois"): a union view with semantic object-ids includes people
// from either source, fusing the records of people in both.
func TestSingleSourceUnionView(t *testing.T) {
	cs, _ := newPaperSources(t)
	// whois knows Joe and a whois-only person; cs knows Joe and Nick.
	store := NewRecordStore()
	store.MustAdd(
		Record{Kind: "person", Fields: []RecordField{
			{Name: "name", Value: "Joe Chung"}, {Name: "dept", Value: "CS"},
			{Name: "relation", Value: "employee"}, {Name: "e_mail", Value: "chung@cs"},
		}},
		Record{Kind: "person", Fields: []RecordField{
			{Name: "name", Value: "Wanda Whoisonly"}, {Name: "dept", Value: "CS"},
			{Name: "relation", Value: "visitor"},
		}},
	)
	med, err := New(Config{
		Name: "med",
		Spec: `
		<person(N) anyone {<name N> | R}> :-
		    <person {<name N> <dept 'CS'> | R}>@whois.
		<person(N) anyone {<name N> | R}> :-
		    <Rel {<first_name FN> <last_name LN> | R}>@cs
		    AND decomp(N, LN, FN).
		decomp(free, bound, bound) by lnfn_to_name.`,
		Sources: []Source{cs, NewRecordWrapper("whois", store)},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := med.QueryString(`P :- P:<anyone {<name N>}>@med.`)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*Object{}
	for _, o := range got {
		n, _ := o.Sub("name").AtomString()
		byName[n] = o
	}
	// Three people: Joe (both sources, fused), Wanda (whois only), Nick
	// (cs only).
	if len(got) != 3 {
		t.Fatalf("union view has %d objects, want 3:\n%s", len(got), oem.Format(got...))
	}
	joe := byName["Joe Chung"]
	if joe == nil || joe.Sub("e_mail") == nil || joe.Sub("title") == nil {
		t.Fatalf("Joe not fused across sources:\n%s", oem.Format(joe))
	}
	if byName["Wanda Whoisonly"] == nil {
		t.Fatal("whois-only person missing")
	}
	nick := byName["Nick Naive"]
	if nick == nil || nick.Sub("year") == nil {
		t.Fatalf("cs-only person missing or incomplete:\n%s", oem.Format(nick))
	}
}

// TestCrossFragmentConditions checks the fused-view query strategy: a
// condition combination that holds on no single rule's output, only on
// the fusion of fragments from different sources.
func TestCrossFragmentConditions(t *testing.T) {
	salaries, err := NewOEMSourceFromText("payroll", `
	    <pay, set, {<who, 'Joe Chung'>, <salary, 120000>}>
	    <pay, set, {<who, 'Ann Able'>, <salary, 90000>}>`)
	if err != nil {
		t.Fatal(err)
	}
	offices, err := NewOEMSourceFromText("facilities", `
	    <office, set, {<occupant, 'Joe Chung'>, <room, 'Gates 401'>}>
	    <office, set, {<occupant, 'Ann Able'>, <room, 'Gates 120'>}>`)
	if err != nil {
		t.Fatal(err)
	}
	med, err := New(Config{
		Name: "staff",
		Spec: `
		<person(N) rec {<name N> <salary S>}> :- <pay {<who N> <salary S>}>@payroll.
		<person(N) rec {<name N> <room R>}> :- <office {<occupant N> <room R>}>@facilities.`,
		Sources: []Source{salaries, offices},
	})
	if err != nil {
		t.Fatal(err)
	}
	// salary comes from rule 1, room from rule 2: only the fused object
	// carries both.
	got, err := med.QueryString(`X :- X:<rec {<salary 120000> <room 'Gates 401'>}>@staff.`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("cross-fragment query returned %d objects:\n%s", len(got), oem.Format(got...))
	}
	if v, _ := got[0].Sub("name").AtomString(); v != "Joe Chung" {
		t.Fatalf("found %q", v)
	}
	// A predicate over fused attributes works too.
	rich, err := med.QueryString(`<out N> :- <rec {<name N> <salary S> <room R>}>@staff AND gt(S, 100000).`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rich) != 1 {
		t.Fatalf("predicate over fused view: %d answers", len(rich))
	}
	// And wildcard queries over fused views are supported (the view is
	// materialized, so descent has something to walk).
	wild, err := med.QueryString(`<out R> :- <%room R>@staff.`)
	if err != nil {
		t.Fatal(err)
	}
	if len(wild) != 2 {
		t.Fatalf("wildcard over fused view: %d answers", len(wild))
	}
}

// TestQueryLorel answers the paper's Q1 through the LOREL front end
// (footnote 4) and checks it agrees with the MSL form.
func TestQueryLorel(t *testing.T) {
	med := newMed(t, nil)
	viaLorel, err := med.QueryLorel(`select X from med.cs_person X where X.name = "Joe Chung"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(viaLorel) != 1 || !viaLorel[0].StructuralEqual(figure24) {
		t.Fatalf("LOREL Q1 differs from Figure 2.4:\n%s", oem.Format(viaLorel...))
	}
	// Attribute selection projects.
	rows, err := med.QueryLorel(`select X.name, X.relation from med.cs_person X`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("LOREL projection returned %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Label != "row" || r.Sub("name") == nil || r.Sub("relation") == nil {
			t.Fatalf("row shape: %s", oem.Format(r))
		}
		if r.Sub("e_mail") != nil {
			t.Fatalf("projection leaked attributes: %s", oem.Format(r))
		}
	}
	// Comparison predicates.
	seniors, err := med.QueryLorel(`select X.name from med.cs_person X where X.year >= 3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(seniors) != 1 {
		t.Fatalf("LOREL comparison returned %d rows", len(seniors))
	}
	// Bad query surfaces a translation error.
	if _, err := med.QueryLorel(`select from nothing`); err == nil {
		t.Fatal("bad LOREL query accepted")
	}
}

// TestQueryLorelMissing finds the person lacking an e_mail through the
// LOREL structural test.
func TestQueryLorelMissing(t *testing.T) {
	med := newMed(t, nil)
	got, err := med.QueryLorel(`select X.name from med.cs_person X where missing X.e_mail`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("missing query: %d rows:\n%s", len(got), oem.Format(got...))
	}
	if v, _ := got[0].Sub("name").AtomString(); v != "Nick Naive" {
		t.Fatalf("found %q", v)
	}
	both, err := med.QueryLorel(`select X.name from med.cs_person X where exists X.e_mail`)
	if err != nil {
		t.Fatal(err)
	}
	if len(both) != 1 {
		t.Fatalf("exists query: %d rows", len(both))
	}
}

// TestQueryLorelAggregates folds the med view with aggregate functions.
func TestQueryLorelAggregates(t *testing.T) {
	med := newMed(t, nil)
	out, err := med.QueryLorel(`
	    select count(X), max(X.year)
	    from med.cs_person X`)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("aggregate query returned %d objects", len(out))
	}
	if n, _ := out[0].Sub("count").AtomInt(); n != 2 {
		t.Fatalf("count = %d", n)
	}
	// Only Nick carries a year.
	if y, _ := out[0].Sub("max_year").AtomInt(); y != 3 {
		t.Fatalf("max_year = %d", y)
	}
	if out[0].OID == oem.NilOID {
		t.Fatal("result object lacks an oid")
	}
}

// TestParseHelpers covers the package-level parse/format helpers.
func TestParseHelpers(t *testing.T) {
	objs, err := ParseOEM(`<a, 1>`)
	if err != nil || len(objs) != 1 {
		t.Fatal("ParseOEM")
	}
	if !strings.Contains(FormatOEM(objs...), "integer, 1") {
		t.Fatal("FormatOEM")
	}
	if _, err := ParseQuery(`X :- X:<a>@s.`); err != nil {
		t.Fatal("ParseQuery")
	}
	if _, err := ParseSpec(`<a {X}> :- <b {X}>@s.`); err != nil {
		t.Fatal("ParseSpec")
	}
}
