module medmaker

go 1.22
