package medmaker

import (
	"strings"
	"testing"

	"medmaker/internal/oem"
)

// TestDifferenceView: people in whois with no matching row in cs — the
// set-difference view negation enables.
func TestDifferenceView(t *testing.T) {
	cs, _ := newPaperSources(t)
	store := NewRecordStore()
	store.MustAdd(
		Record{Kind: "person", Fields: []RecordField{
			{Name: "name", Value: "Joe Chung"}, {Name: "dept", Value: "CS"},
		}},
		Record{Kind: "person", Fields: []RecordField{
			{Name: "name", Value: "Wanda Whoisonly"}, {Name: "dept", Value: "CS"},
		}},
	)
	med, err := New(Config{
		Name: "med",
		Spec: `
		<unregistered {<name N>}> :-
		    <person {<name N> <dept 'CS'>}>@whois
		    AND decomp(N, LN, FN)
		    AND NOT <employee {<last_name LN> <first_name FN>}>@cs
		    AND NOT <student {<last_name LN> <first_name FN>}>@cs.
		decomp(bound, free, free) by name_to_lnfn.`,
		Sources: []Source{cs, NewRecordWrapper("whois", store)},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := med.QueryString(`X :- X:<unregistered {<name N>}>@med.`)
	if err != nil {
		t.Fatal(err)
	}
	// Joe is an employee in cs; only Wanda is unregistered.
	if len(got) != 1 {
		t.Fatalf("difference view has %d objects:\n%s", len(got), oem.Format(got...))
	}
	if v, _ := got[0].Sub("name").AtomString(); v != "Wanda Whoisonly" {
		t.Fatalf("found %q", v)
	}
}

// TestNegationPlanShape: the anti node runs after the positives and shows
// in the explain output.
func TestNegationPlanShape(t *testing.T) {
	cs, whois := newPaperSources(t)
	med, err := New(Config{
		Name: "med",
		Spec: `<lonely {<name N>}> :-
		    <person {<name N>}>@whois AND NOT <employee {<title T>}>@cs.`,
		Sources: []Source{cs, whois},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := med.Explain(`X :- X:<lonely {<name N>}>@med.`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "anti-param-query(cs)") && !strings.Contains(out, "anti-query(cs)") {
		t.Fatalf("anti node missing from plan:\n%s", out)
	}
	if !strings.Contains(out, "NOT <employee") {
		t.Fatalf("negation lost in logical program:\n%s", out)
	}
}

// TestNegationSharedVariables: the negated pattern joins on variables
// bound by the positive part.
func TestNegationSharedVariables(t *testing.T) {
	people, err := NewOEMSourceFromText("people", `
	    <person, set, {<name, 'a'>, <dept, 'CS'>}>
	    <person, set, {<name, 'b'>, <dept, 'EE'>}>`)
	if err != nil {
		t.Fatal(err)
	}
	banned, err := NewOEMSourceFromText("banned", `
	    <ban, set, {<dept, 'EE'>}>`)
	if err != nil {
		t.Fatal(err)
	}
	med, err := New(Config{
		Name: "med",
		Spec: `<ok {<name N>}> :-
		    <person {<name N> <dept D>}>@people AND NOT <ban {<dept D>}>@banned.`,
		Sources: []Source{people, banned},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := med.QueryString(`X :- X:<ok {<name N>}>@med.`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("%d objects:\n%s", len(got), oem.Format(got...))
	}
	if v, _ := got[0].Sub("name").AtomString(); v != "a" {
		t.Fatalf("kept %q", v)
	}
}

// TestNegatedViewCondition: negation over the mediator's own view goes
// through the materialized-view strategy.
func TestNegatedViewCondition(t *testing.T) {
	med := newMed(t, nil) // the paper's med over cs/whois
	// Raw whois persons with no cs_person view object of the same name:
	// nobody, since both Joe and Nick appear in the view.
	got, err := med.QueryString(`P :-
	    P:<person {<name N>}>@whois AND NOT <cs_person {<name N>}>@med.`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("expected empty difference, got %d:\n%s", len(got), oem.Format(got...))
	}
	// Flip it: persons whose view object lacks an e_mail... via negation
	// on a condition pattern.
	got2, err := med.QueryString(`<nomail N> :-
	    <person {<name N>}>@whois AND NOT <cs_person {<name N> <e_mail E>}>@med.`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != 1 {
		t.Fatalf("nomail: %d objects:\n%s", len(got2), oem.Format(got2...))
	}
	if v, _ := got2[0].AtomString(); v != "Nick Naive" {
		t.Fatalf("nomail found %q", v)
	}
}

// TestLacksBuiltin: "people without an e_mail" via the structural
// builtin over a rest variable — negation of subobject existence within
// one object.
func TestLacksBuiltin(t *testing.T) {
	_, whois := newPaperSources(t)
	med, err := New(Config{
		Name: "med",
		Spec: `<nomail {<name N>}> :-
		    <person {<name N> | R}>@whois AND lacks(R, 'e_mail').`,
		Sources: []Source{whois},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := med.QueryString(`X :- X:<nomail {<name N>}>@med.`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("nomail view: %d objects:\n%s", len(got), oem.Format(got...))
	}
	if v, _ := got[0].Sub("name").AtomString(); v != "Nick Naive" {
		t.Fatalf("found %q", v)
	}
	// has() is the positive form.
	med2, err := New(Config{
		Name: "med",
		Spec: `<mail {<name N>}> :-
		    <person {<name N> | R}>@whois AND has(R, 'e_mail').`,
		Sources: []Source{whois},
	})
	if err != nil {
		t.Fatal(err)
	}
	got2, err := med2.QueryString(`X :- X:<mail {<name N>}>@med.`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != 1 {
		t.Fatalf("mail view: %d objects", len(got2))
	}
}

// TestNegationParseErrors covers the parser restrictions.
func TestNegationParseErrors(t *testing.T) {
	bad := []string{
		`<a {X}> :- NOT lt(X, 3).`,      // negated predicate
		`<a {X}> :- NOT V:<p {X}>@s.`,   // objvar on negated
		`<a {X}> :- NOT NOT <p {X}>@s.`, // double negation
	}
	for _, src := range bad {
		if _, err := ParseQuery(src); err == nil {
			t.Errorf("ParseQuery(%q) succeeded", src)
		}
	}
	// Printing round-trips.
	r, err := ParseQuery(`<a {X}> :- <p {X}>@s AND NOT <q {X}>@s.`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.String(), "NOT <q {X}>@s") {
		t.Fatalf("printer lost negation: %s", r)
	}
	if _, err := ParseQuery(r.String()); err != nil {
		t.Fatalf("negation round trip: %v", err)
	}
}

// TestUnsafeNegatedSpec: head variables bound only in negated conjuncts
// are rejected.
func TestUnsafeNegatedSpec(t *testing.T) {
	_, whois := newPaperSources(t)
	_, err := New(Config{
		Name: "m",
		Spec: `<out {<name N> <bad B>}> :-
		    <person {<name N>}>@whois AND NOT <x {<b B>}>@whois.`,
		Sources: []Source{whois},
	})
	if err == nil || !strings.Contains(err.Error(), "unsafe") {
		t.Fatalf("unsafe negated spec: %v", err)
	}
}
