package medmaker_test

import (
	"fmt"
	"log"

	"medmaker"
	"medmaker/internal/oem"
)

const exampleSpec = `
<cs_person {<name N> <relation R> Rest1 Rest2}> :-
    <person {<name N> <dept 'CS'> <relation R> | Rest1}>@whois
    AND <R {<first_name FN> <last_name LN> | Rest2}>@cs
    AND decomp(N, LN, FN).

decomp(bound, free, free) by name_to_lnfn.
decomp(free, bound, bound) by lnfn_to_name.
`

func exampleSources() (medmaker.Source, medmaker.Source) {
	db := medmaker.NewRelationalDB()
	emp := db.MustCreateTable(medmaker.RelationalSchema{
		Name: "employee",
		Columns: []medmaker.RelationalColumn{
			{Name: "first_name", Kind: oem.KindString},
			{Name: "last_name", Kind: oem.KindString},
			{Name: "title", Kind: oem.KindString},
			{Name: "reports_to", Kind: oem.KindString},
		},
	})
	emp.MustInsert("Joe", "Chung", "professor", "John Hennessy")
	stu := db.MustCreateTable(medmaker.RelationalSchema{
		Name: "student",
		Columns: []medmaker.RelationalColumn{
			{Name: "first_name", Kind: oem.KindString},
			{Name: "last_name", Kind: oem.KindString},
			{Name: "year", Kind: oem.KindInt},
		},
	})
	stu.MustInsert("Nick", "Naive", 3)
	store := medmaker.NewRecordStore()
	store.MustAdd(
		medmaker.Record{Kind: "person", Fields: []medmaker.RecordField{
			{Name: "name", Value: "Joe Chung"}, {Name: "dept", Value: "CS"},
			{Name: "relation", Value: "employee"}, {Name: "e_mail", Value: "chung@cs"},
		}},
		medmaker.Record{Kind: "person", Fields: []medmaker.RecordField{
			{Name: "name", Value: "Nick Naive"}, {Name: "dept", Value: "CS"},
			{Name: "relation", Value: "student"}, {Name: "year", Value: 3},
		}},
	)
	return medmaker.NewRelationalWrapper("cs", db), medmaker.NewRecordWrapper("whois", store)
}

// ExampleMediator_figure24 reproduces the paper's Figure 2.4: query Q1
// against specification MS1 produces the integrated cs_person object for
// Joe Chung.
func ExampleMediator_figure24() {
	cs, whois := exampleSources()
	med, err := medmaker.New(medmaker.Config{
		Name:    "med",
		Spec:    exampleSpec,
		Sources: []medmaker.Source{cs, whois},
	})
	if err != nil {
		log.Fatal(err)
	}
	objs, err := med.QueryString(`JC :- JC:<cs_person {<name 'Joe Chung'>}>@med.`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(medmaker.FormatOEM(objs...))
	// Output:
	// <&med1, cs_person, set, {&med2, &med3, &med4, &med5, &med6}>
	//   <&med2, name, string, 'Joe Chung'>
	//   <&med3, relation, string, 'employee'>
	//   <&med4, e_mail, string, 'chung@cs'>
	//   <&med5, title, string, 'professor'>
	//   <&med6, reports_to, string, 'John Hennessy'>
	// ;
}

// ExampleRelationalWrapper_figure22 reproduces Figure 2.2: the OEM export
// of the cs relational source.
func ExampleRelationalWrapper_figure22() {
	cs, _ := exampleSources()
	objs, err := cs.Query(mustParse(`O :- O:<employee>@cs.`))
	if err != nil {
		log.Fatal(err)
	}
	// Print the structure (materialized copies carry fresh oids).
	for _, o := range objs {
		fmt.Printf("%s with %d subobjects:", o.Label, len(o.Subobjects()))
		for _, sub := range o.Subobjects() {
			fmt.Printf(" %s", sub.Label)
		}
		fmt.Println()
	}
	// Output:
	// employee with 4 subobjects: first_name last_name title reports_to
}

// ExampleMediator_pushdown reproduces the Section 3.3 view expansion: the
// <year 3> condition is pushed into either source's rest variable,
// yielding two logical rules (unifiers tau1 and tau2).
func ExampleMediator_pushdown() {
	cs, whois := exampleSources()
	med, err := medmaker.New(medmaker.Config{
		Name:    "med",
		Spec:    exampleSpec,
		Sources: []medmaker.Source{cs, whois},
	})
	if err != nil {
		log.Fatal(err)
	}
	logical, err := med.Expand(mustParse(`S :- S:<cs_person {<year 3>}>@med.`))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d logical rules (one per push choice)\n", len(logical.Rules))
	objs, err := med.QueryString(`S :- S:<cs_person {<year 3>}>@med.`)
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range objs {
		name, _ := o.Sub("name").AtomString()
		fmt.Println("found:", name)
	}
	// Output:
	// 2 logical rules (one per push choice)
	// found: Nick Naive
}

// ExampleMediator_schemaExploration shows the schema-information feature:
// a label variable retrieves the attribute names in use at the sources.
func ExampleMediator_schemaExploration() {
	_, whois := exampleSources()
	med, err := medmaker.New(medmaker.Config{
		Name:    "med",
		Spec:    `<entry {<name N> | R}> :- <person {<name N> | R}>@whois.`,
		Sources: []medmaker.Source{whois},
	})
	if err != nil {
		log.Fatal(err)
	}
	objs, err := med.QueryString(`<attribute L> :- <entry {<L V>}>@med.`)
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range objs {
		label, _ := o.AtomString()
		fmt.Println(label)
	}
	// Output:
	// name
	// dept
	// relation
	// e_mail
	// year
}

func mustParse(q string) *medmaker.Rule {
	r, err := medmaker.ParseQuery(q)
	if err != nil {
		log.Fatal(err)
	}
	return r
}
