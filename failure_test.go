package medmaker

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"medmaker/internal/msl"
	"medmaker/internal/oem"
)

// flakySource fails its first failures queries, then delegates.
type flakySource struct {
	inner    Source
	failures int32
	calls    atomic.Int32
}

func (f *flakySource) Name() string               { return f.inner.Name() }
func (f *flakySource) Capabilities() Capabilities { return f.inner.Capabilities() }
func (f *flakySource) Query(q *msl.Rule) ([]*Object, error) {
	if f.calls.Add(1) <= f.failures {
		return nil, errors.New("transient source failure")
	}
	return f.inner.Query(q)
}

func TestSourceFailurePropagates(t *testing.T) {
	cs, whois, _ := scaledSources(t, 20)
	flaky := &flakySource{inner: whois, failures: 1}
	med, err := New(Config{Name: "med", Spec: specMS1, Sources: []Source{cs, flaky}})
	if err != nil {
		t.Fatal(err)
	}
	q := `P :- P:<cs_person {<name N>}>@med.`
	if _, err := med.QueryString(q); err == nil ||
		!strings.Contains(err.Error(), "transient source failure") {
		t.Fatalf("first query error: %v", err)
	}
	// The mediator carries no broken state: the next query succeeds.
	if _, err := med.QueryString(q); err != nil {
		t.Fatalf("second query failed: %v", err)
	}
}

// errorFn is an external function that always fails.
func TestExternalFunctionFailurePropagates(t *testing.T) {
	_, whois, _ := scaledSources(t, 5)
	med, err := New(Config{
		Name: "med",
		Spec: `
		<out {<name N>}> :- <person {<name N>}>@whois AND boom(N).
		boom(bound) by boom_impl.`,
		Sources: []Source{whois},
		Functions: map[string]Func{
			"boom_impl": func([]Value) ([][]Value, error) {
				return nil, errors.New("function exploded")
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := med.QueryString(`X :- X:<out {<name N>}>@med.`); err == nil ||
		!strings.Contains(err.Error(), "function exploded") {
		t.Fatalf("error: %v", err)
	}
}

// TestMalformedSourceObjects: a source returning objects that do not
// match the extraction pattern simply contributes no bindings — garbage
// from autonomous sources must not crash the mediator.
type garbageSource struct{ name string }

func (g *garbageSource) Name() string               { return g.name }
func (g *garbageSource) Capabilities() Capabilities { return FullCapabilities() }
func (g *garbageSource) Query(*msl.Rule) ([]*Object, error) {
	return []*Object{
		oem.New("&g1", "unrelated", "noise"),
		oem.NewSet("&g2", "person"), // right label, no name subobject
	}, nil
}

func TestGarbageSourceTolerated(t *testing.T) {
	med, err := New(Config{
		Name:    "med",
		Spec:    `<out {<name N>}> :- <person {<name N>}>@junk.`,
		Sources: []Source{&garbageSource{name: "junk"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := med.QueryString(`X :- X:<out {<name N>}>@med.`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("garbage produced %d answers", len(got))
	}
}

// TestConcurrentQueries: one mediator serving many goroutines.
func TestConcurrentQueries(t *testing.T) {
	med, staff := scaledMediator(t, 60, nil)
	errs := make(chan error, 16)
	for w := 0; w < 8; w++ {
		go func(w int) {
			for i := 0; i < 10; i++ {
				name := csName(staff, (w+i)%10)
				q := fmt.Sprintf(`JC :- JC:<cs_person {<name %s>}>@med.`, oem.QuoteAtom(name))
				got, err := med.QueryString(q)
				if err != nil {
					errs <- err
					return
				}
				if len(got) != 1 {
					errs <- fmt.Errorf("worker %d: %d answers for %s", w, len(got), name)
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
