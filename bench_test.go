package medmaker

// The benchmark harness regenerates every figure-level artifact and
// performance claim of the paper, per the experiment index in DESIGN.md:
//
//	F2.2/F2.3  wrapper export cost            BenchmarkWrapperExport*
//	F2.4       integrated query (Q1)          BenchmarkIntegrationQuery
//	F2.5       MSI pipeline stage costs       BenchmarkPipelineStages
//	F3.6       datamerge graph execution      BenchmarkDatamergeGraph
//	F1.1       distributed deployment         BenchmarkRemoteQuery
//	Q1/R2      view expansion                 BenchmarkViewExpansion
//	E-PUSH     selection pushdown ablation    BenchmarkPushdown
//	E-JOIN     join order + param queries     BenchmarkJoinOrder, BenchmarkParamQueryVsCross
//	E-CAP      capability-limited sources     BenchmarkCapabilities
//	E-WILD     wildcard search cost           BenchmarkWildcard
//	E-EVOL     rest-variable overhead         BenchmarkRestOverhead
//	E-HAND     declarative vs hand-coded      BenchmarkDeclarativeVsHandcoded
//	E-DUP      duplicate elimination          BenchmarkDupElim
//	E-STATS    statistics-driven ordering     BenchmarkStatsWarmup
//
// Absolute numbers depend on the host; EXPERIMENTS.md records the shapes
// these benchmarks are expected to (and do) exhibit.

import (
	"fmt"
	"testing"
	"time"

	"medmaker/internal/handcoded"
	"medmaker/internal/oem"
	"medmaker/internal/workload"
)

// scaledSources builds a staff population of the given size behind the cs
// and whois wrappers.
func scaledSources(tb testing.TB, persons int) (cs *RelationalWrapper, whois *RecordWrapper, staff *workload.Staff) {
	tb.Helper()
	s, err := workload.GenStaff(workload.StaffConfig{
		Persons:          persons,
		Departments:      4,
		EmployeeFraction: 0.5,
		Irregularity:     0.3,
		Seed:             1,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return NewRelationalWrapper("cs", s.DB), NewRecordWrapper("whois", s.Store), s
}

func scaledMediator(tb testing.TB, persons int, opts *PlanOptions) (*Mediator, *workload.Staff) {
	tb.Helper()
	cs, whois, staff := scaledSources(tb, persons)
	med, err := New(Config{Name: "med", Spec: specMS1, Sources: []Source{cs, whois}, Plan: opts})
	if err != nil {
		tb.Fatal(err)
	}
	return med, staff
}

// csName returns the k'th generated person who is in department CS (the
// departments cycle with period 4 in scaledSources populations).
func csName(staff *workload.Staff, k int) string {
	return staff.Names[4*k]
}

func mustQuery(tb testing.TB, med *Mediator, q string, wantAtLeast int) []*Object {
	tb.Helper()
	objs, err := med.QueryString(q)
	if err != nil {
		tb.Fatal(err)
	}
	if len(objs) < wantAtLeast {
		tb.Fatalf("query %q returned %d objects, want >= %d", q, len(objs), wantAtLeast)
	}
	return objs
}

// --- F2.2 / F2.3: wrapper exports ---

func BenchmarkWrapperExportCS(b *testing.B) {
	for _, n := range []int{100, 1000} {
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			cs, _, _ := scaledSources(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := cs.Export(); len(got) != n {
					b.Fatalf("exported %d", len(got))
				}
			}
		})
	}
}

func BenchmarkWrapperExportWhois(b *testing.B) {
	for _, n := range []int{100, 1000} {
		b.Run(fmt.Sprintf("records=%d", n), func(b *testing.B) {
			// The record store caches its OEM view, so a meaningful
			// export measurement needs a fresh store per iteration;
			// store construction is excluded from the timer.
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s, err := workload.GenStaff(workload.StaffConfig{
					Persons: n, Departments: 4, EmployeeFraction: 0.5, Irregularity: 0.3, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				w := NewRecordWrapper("whois", s.Store)
				b.StartTimer()
				if got := w.Export(); len(got) != n {
					b.Fatalf("exported %d", len(got))
				}
			}
		})
	}
}

// --- F2.4: the integration query Q1 at scale ---

func BenchmarkIntegrationQuery(b *testing.B) {
	for _, n := range []int{100, 500} {
		b.Run(fmt.Sprintf("persons=%d", n), func(b *testing.B) {
			med, staff := scaledMediator(b, n, nil)
			q := fmt.Sprintf(`JC :- JC:<cs_person {<name %s>}>@med.`, oem.QuoteAtom(csName(staff, n/8)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustQuery(b, med, q, 1)
			}
		})
	}
}

// --- F2.5: per-stage pipeline costs ---

func BenchmarkPipelineStages(b *testing.B) {
	med, staff := scaledMediator(b, 200, nil)
	qText := fmt.Sprintf(`JC :- JC:<cs_person {<name %s>}>@med.`, oem.QuoteAtom(staff.Names[0]))
	rule, err := ParseQuery(qText)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("parse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ParseQuery(qText); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("expand", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := med.Expand(rule); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("plan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := med.Plan(rule); err != nil {
				b.Fatal(err)
			}
		}
	})
	physical, _, err := med.Plan(rule)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("execute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := med.Execute(physical); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- F3.6: datamerge graph execution (the year query) ---

func BenchmarkDatamergeGraph(b *testing.B) {
	med, _ := scaledMediator(b, 200, nil)
	rule, err := ParseQuery(`S :- S:<cs_person {<year 3>}>@med.`)
	if err != nil {
		b.Fatal(err)
	}
	physical, _, err := med.Plan(rule)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := med.Execute(physical); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Q1/R2: view expansion alone ---

func BenchmarkViewExpansion(b *testing.B) {
	med, _ := scaledMediator(b, 10, nil)
	rule, err := ParseQuery(`JC :- JC:<cs_person {<name 'F0001 L0001'>}>@med.`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := med.Expand(rule); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E-PUSH: selection pushdown on vs off ---

func BenchmarkPushdown(b *testing.B) {
	for _, n := range []int{200, 1000} {
		for _, push := range []bool{true, false} {
			name := fmt.Sprintf("persons=%d/push=%v", n, push)
			b.Run(name, func(b *testing.B) {
				opts := PlanOptions{PushConditions: push, Parameterize: push, DupElim: true}
				med, staff := scaledMediator(b, n, &opts)
				q := fmt.Sprintf(`JC :- JC:<cs_person {<name %s>}>@med.`, oem.QuoteAtom(staff.Names[0]))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					mustQuery(b, med, q, 1)
				}
			})
		}
	}
}

// --- E-JOIN: join order heuristic vs reversed vs stats-driven ---

func BenchmarkJoinOrder(b *testing.B) {
	modes := []struct {
		name string
		opts PlanOptions
		warm bool
	}{
		{"heuristic", PlanOptions{Order: 0, PushConditions: true, Parameterize: true, DupElim: true}, false},
		{"reversed", PlanOptions{Order: 3, PushConditions: true, Parameterize: true, DupElim: true}, false},
		{"stats", PlanOptions{Order: 1, PushConditions: true, Parameterize: true, DupElim: true}, true},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			opts := m.opts
			med, staff := scaledMediator(b, 300, &opts)
			q := fmt.Sprintf(`JC :- JC:<cs_person {<name %s>}>@med.`, oem.QuoteAtom(csName(staff, 1)))
			if m.warm {
				mustQuery(b, med, q, 1) // populate the statistics store
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustQuery(b, med, q, 1)
			}
		})
	}
}

// BenchmarkParamQueryVsCross compares the parameterized-query chain with
// the independent-fetch + hash-join baseline on the full-view query.
func BenchmarkParamQueryVsCross(b *testing.B) {
	for _, n := range []int{100, 300} {
		for _, param := range []bool{true, false} {
			name := fmt.Sprintf("persons=%d/parameterized=%v", n, param)
			b.Run(name, func(b *testing.B) {
				opts := PlanOptions{PushConditions: true, Parameterize: param, DupElim: true}
				med, _ := scaledMediator(b, n, &opts)
				q := `P :- P:<cs_person {<name N>}>@med.`
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					mustQuery(b, med, q, 1)
				}
			})
		}
	}
}

// --- E-CAP: capable vs capability-poor sources ---

func BenchmarkCapabilities(b *testing.B) {
	for _, limited := range []bool{false, true} {
		name := "full"
		if limited {
			name = "limited"
		}
		b.Run(name, func(b *testing.B) {
			cs, whois, staff := scaledSources(b, 300)
			sources := []Source{cs, whois}
			if limited {
				sources = []Source{
					&LimitedSource{Inner: cs, Caps: Capabilities{MultiPattern: true}},
					&LimitedSource{Inner: whois, Caps: Capabilities{MultiPattern: true}},
				}
			}
			med, err := New(Config{Name: "med", Spec: specMS1, Sources: sources})
			if err != nil {
				b.Fatal(err)
			}
			q := fmt.Sprintf(`JC :- JC:<cs_person {<name %s>}>@med.`, oem.QuoteAtom(staff.Names[0]))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustQuery(b, med, q, 1)
			}
		})
	}
}

// --- E-WILD: wildcard search vs explicit path as depth grows ---

func BenchmarkWildcard(b *testing.B) {
	for _, depth := range []int{2, 4, 6} {
		lib := workload.GenDeepLibrary(3, depth)
		src, err := NewOEMSource("lib"), error(nil)
		if err := src.Add(lib); err != nil {
			b.Fatal(err)
		}
		med, err := New(Config{
			Name:    "med",
			Spec:    `<found T> :- <%title T>@lib.`,
			Sources: []Source{src},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("wildcard/depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustQuery(b, med, `X :- X:<found T>@med.`, 1)
			}
		})
		// Explicit-path baseline: match only the top level (constant
		// work regardless of tree depth below).
		flat, err := New(Config{
			Name:    "med",
			Spec:    `<found L> :- <library {<L V>}>@lib.`,
			Sources: []Source{src},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("toplevel/depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustQuery(b, flat, `X :- X:<found L>@med.`, 1)
			}
		})
	}
}

// --- E-EVOL: rest-variable overhead under irregularity ---

func BenchmarkRestOverhead(b *testing.B) {
	for _, irr := range []float64{0, 0.5} {
		b.Run(fmt.Sprintf("irregularity=%.1f", irr), func(b *testing.B) {
			s, err := workload.GenStaff(workload.StaffConfig{
				Persons: 300, Departments: 4, EmployeeFraction: 0.5, Irregularity: irr, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			med, err := New(Config{
				Name:    "med",
				Spec:    specMS1,
				Sources: []Source{NewRelationalWrapper("cs", s.DB), NewRecordWrapper("whois", s.Store)},
			})
			if err != nil {
				b.Fatal(err)
			}
			q := fmt.Sprintf(`JC :- JC:<cs_person {<name %s>}>@med.`, oem.QuoteAtom(s.Names[0]))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustQuery(b, med, q, 1)
			}
		})
	}
}

// --- E-HAND: declarative interpretation vs hand-coded integration ---

func BenchmarkDeclarativeVsHandcoded(b *testing.B) {
	cs, whois, staff := scaledSources(b, 300)
	target := staff.Names[0]
	b.Run("declarative", func(b *testing.B) {
		med, err := New(Config{Name: "med", Spec: specMS1, Sources: []Source{cs, whois}})
		if err != nil {
			b.Fatal(err)
		}
		q := fmt.Sprintf(`JC :- JC:<cs_person {<name %s>}>@med.`, oem.QuoteAtom(target))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mustQuery(b, med, q, 1)
		}
	})
	b.Run("handcoded", func(b *testing.B) {
		hc := handcoded.New(cs, whois)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			got, err := hc.CSPersonByName(target)
			if err != nil || len(got) < 1 {
				b.Fatalf("handcoded: %v (%d objects)", err, len(got))
			}
		}
	})
}

// --- E-DUP: duplicate elimination cost and effect ---

func BenchmarkDupElim(b *testing.B) {
	for _, dup := range []bool{true, false} {
		b.Run(fmt.Sprintf("dupelim=%v", dup), func(b *testing.B) {
			opts := PlanOptions{PushConditions: true, Parameterize: true, DupElim: dup}
			med, _ := scaledMediator(b, 300, &opts)
			// The year query derives answers through both τ1 and τ2, so
			// dup-elim has real work to do.
			q := `S :- S:<cs_person {<year 3>}>@med.`
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := med.QueryString(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E-STATS: plans improve after the statistics store warms up ---

func BenchmarkStatsWarmup(b *testing.B) {
	// A skewed scenario the condition-count heuristic gets wrong: the
	// pattern with more conditions is the big one.
	mkMed := func(b *testing.B, order OrderMode) *Mediator {
		big := NewOEMSource("big")
		for i := 0; i < 2000; i++ {
			big.Add(oem.NewSet("", "reading",
				oem.New("", "city", "Palo Alto"),
				oem.New("", "sensor", fmt.Sprintf("s%d", i%7)),
				oem.New("", "value", i),
			))
		}
		small := NewOEMSource("small")
		for i := 0; i < 7; i++ {
			small.Add(oem.NewSet("", "sensor_info",
				oem.New("", "sensor", fmt.Sprintf("s%d", i)),
				oem.New("", "owner", "lab"),
			))
		}
		opts := PlanOptions{Order: order, PushConditions: true, Parameterize: true, DupElim: true}
		med, err := New(Config{
			Name: "med",
			Spec: `<temp {<sensor S> <value V>}> :-
			    <reading {<city 'Palo Alto'> <sensor S> <value V>}>@big
			    AND <sensor_info {<sensor S> <owner 'lab'>}>@small.`,
			Sources: []Source{big, small},
			Plan:    &opts,
		})
		if err != nil {
			b.Fatal(err)
		}
		return med
	}
	q := `X :- X:<temp {<sensor 's3'>}>@med.`
	b.Run("heuristic", func(b *testing.B) {
		med := mkMed(b, OrderHeuristic)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mustQuery(b, med, q, 1)
		}
	})
	b.Run("stats-warm", func(b *testing.B) {
		med := mkMed(b, OrderStats)
		mustQuery(b, med, q, 1) // warm the store
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mustQuery(b, med, q, 1)
		}
	})
}

// --- E-FUSE: the price of fused-view query evaluation ---

// BenchmarkFusedViewQuery compares a selective query against an ordinary
// view (per-rule expansion with pushdown) with the same query against a
// fusion view (full materialization then filtering) at the same scale —
// the documented cost of cross-fragment query correctness.
func BenchmarkFusedViewQuery(b *testing.B) {
	mk := func(b *testing.B, skolem bool) *Mediator {
		pay := NewOEMSource("payroll")
		fac := NewOEMSource("facilities")
		for i := 0; i < 300; i++ {
			who := fmt.Sprintf("P%03d", i)
			pay.Add(oem.NewSet("", "pay",
				oem.New("", "who", who), oem.New("", "salary", 50000+i)))
			fac.Add(oem.NewSet("", "office",
				oem.New("", "occupant", who), oem.New("", "room", fmt.Sprintf("G%03d", i))))
		}
		oid := ""
		if skolem {
			oid = "person(N) "
		}
		med, err := New(Config{
			Name: "staff",
			Spec: fmt.Sprintf(`
			<%srec {<name N> <salary S>}> :- <pay {<who N> <salary S>}>@payroll.
			<%srec {<name N> <room R>}> :- <office {<occupant N> <room R>}>@facilities.`, oid, oid),
			Sources: []Source{pay, fac},
		})
		if err != nil {
			b.Fatal(err)
		}
		return med
	}
	b.Run("plain-view", func(b *testing.B) {
		med := mk(b, false)
		q := `X :- X:<rec {<name 'P005'>}>@staff.`
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mustQuery(b, med, q, 1)
		}
	})
	b.Run("fused-view", func(b *testing.B) {
		med := mk(b, true)
		q := `X :- X:<rec {<name 'P005'>}>@staff.`
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mustQuery(b, med, q, 1)
		}
	})
}

// --- F1.1: the distributed deployment (remote wrappers over TCP) ---

func BenchmarkRemoteQuery(b *testing.B) {
	cs, whois, staff := scaledSources(b, 100)
	q := fmt.Sprintf(`JC :- JC:<cs_person {<name %s>}>@med.`, oem.QuoteAtom(staff.Names[0]))
	b.Run("local", func(b *testing.B) {
		med, err := New(Config{Name: "med", Spec: specMS1, Sources: []Source{cs, whois}})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mustQuery(b, med, q, 1)
		}
	})
	b.Run("remote", func(b *testing.B) {
		csAddr, csSrv, err := Serve(cs, "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer csSrv.Close()
		whoisAddr, whoisSrv, err := Serve(whois, "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer whoisSrv.Close()
		csR, err := DialSource(csAddr, 5*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		defer csR.Close()
		whoisR, err := DialSource(whoisAddr, 5*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		defer whoisR.Close()
		med, err := New(Config{Name: "med", Spec: specMS1, Sources: []Source{csR, whoisR}})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mustQuery(b, med, q, 1)
		}
	})
}
