package medmaker

import (
	"context"
	"fmt"
	"testing"

	"medmaker/internal/oem"
	"medmaker/internal/workload"
)

// Partitioned-source tests: the same staff population generated flat and
// hash-partitioned across 4 shards must answer every query identically,
// and a failed shard under a skipping policy must degrade to a partial
// answer attributed to that shard.

// shardedStaffMediator builds a mediator over the 4-shard partitioned cs
// and whois sources of s.
func shardedStaffMediator(t *testing.T, s *workload.ShardedStaff, par int, pipeline bool, policy ExecPolicy) *Mediator {
	t.Helper()
	csMembers := make([]Source, len(s.DBs))
	for i, db := range s.DBs {
		csMembers[i] = NewRelationalWrapper(fmt.Sprintf("cs%d", i), db)
	}
	csPart, err := NewPartitionedSource("cs", workload.CSShardKey, csMembers...)
	if err != nil {
		t.Fatal(err)
	}
	whoisMembers := make([]Source, len(s.Stores))
	for i, st := range s.Stores {
		whoisMembers[i] = NewRecordWrapper(fmt.Sprintf("whois%d", i), st)
	}
	whoisPart, err := NewPartitionedSource("whois", workload.WhoisShardKey, whoisMembers...)
	if err != nil {
		t.Fatal(err)
	}
	med, err := New(Config{
		Name: "med", Spec: specMS1,
		Sources:     []Source{csPart, whoisPart},
		Parallelism: par,
		Pipeline:    pipeline,
		Policy:      policy,
	})
	if err != nil {
		t.Fatal(err)
	}
	return med
}

// TestShardedMediatorDifferential: a mediator over 4-shard partitioned
// sources answers byte-identically to the flat single-extent reference
// across every execution mode.
func TestShardedMediatorDifferential(t *testing.T) {
	s, err := workload.GenStaffSharded(workload.StaffConfig{
		Persons: 160, Departments: 4, EmployeeFraction: 0.5, Irregularity: 0.3, Seed: 9,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	queries := tierQueries(s.Staff)

	flat, err := New(Config{
		Name: "med", Spec: specMS1,
		Sources: []Source{
			NewRelationalWrapper("cs", s.DB),
			NewRecordWrapper("whois", s.Store),
		},
		Parallelism: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]string, len(queries))
	for _, q := range queries {
		objs, err := flat.QueryString(q)
		if err != nil {
			t.Fatalf("flat reference %q: %v", q, err)
		}
		if len(objs) == 0 {
			t.Fatalf("flat reference %q: empty answer, test is vacuous", q)
		}
		want[q] = fmt.Sprint(canonicalize(objs))
	}

	for _, mode := range tierModes {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			med := shardedStaffMediator(t, s, mode.par, mode.pipeline, ExecPolicy{})
			for _, q := range queries {
				objs, err := med.QueryString(q)
				if err != nil {
					t.Fatalf("sharded %q: %v", q, err)
				}
				if got := fmt.Sprint(canonicalize(objs)); got != want[q] {
					t.Fatalf("sharded answer diverged for %q:\n got %s\nwant %s", q, got, want[q])
				}
			}
		})
	}
}

// TestShardFailurePartialAnswer: with one of 4 whois shards down and a
// skipping policy, a scatter query returns the surviving shards' union
// flagged Incomplete, the failure is attributed to the dead member in
// both the result and the statistics store, and the healthy shards'
// answers are a subset of the flat reference.
func TestShardFailurePartialAnswer(t *testing.T) {
	s, err := workload.GenStaffSharded(workload.StaffConfig{
		Persons: 120, Departments: 1, Seed: 4,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	const deadShard = 2
	whoisMembers := make([]Source, len(s.Stores))
	for i, st := range s.Stores {
		if i == deadShard {
			whoisMembers[i] = &downSource{name: fmt.Sprintf("whois%d", i)}
			continue
		}
		whoisMembers[i] = NewRecordWrapper(fmt.Sprintf("whois%d", i), st)
	}
	whoisPart, err := NewPartitionedSource("whois", workload.WhoisShardKey, whoisMembers...)
	if err != nil {
		t.Fatal(err)
	}
	med, err := New(Config{
		Name:    "med",
		Spec:    `<profile {<name N> | R}> :- <person {<name N> | R}>@whois.`,
		Sources: []Source{whoisPart},
		Policy:  ExecPolicy{OnSourceError: OnSourceErrorSkip},
	})
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(`P :- P:<profile {<name N>}>@med.`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := med.QueryPolicy(context.Background(), q, med.Policy())
	if err != nil {
		t.Fatalf("skipping policy still failed the query: %v", err)
	}
	if !res.Incomplete {
		t.Fatal("answer with a dead shard not flagged Incomplete")
	}
	deadName := fmt.Sprintf("whois%d", deadShard)
	found := false
	for _, se := range res.SourceErrors {
		if se.Source == deadName {
			found = true
		}
	}
	if !found {
		t.Fatalf("failure not attributed to %s: %+v", deadName, res.SourceErrors)
	}
	if n := med.QueryStats().SourceErrorCount(deadName); n == 0 {
		t.Fatalf("statistics store has no error for %s", deadName)
	}
	// The partial answer is exactly the surviving shards' contribution.
	wantLive := 0
	for i, st := range s.Stores {
		if i != deadShard {
			wantLive += st.Len()
		}
	}
	if len(res.Objects) != wantLive {
		t.Fatalf("partial answer has %d objects, surviving shards hold %d", len(res.Objects), wantLive)
	}
	// A routed query to a healthy shard is unaffected.
	var liveName string
	for _, full := range s.Names {
		if workload.ShardOf(full, 4) != deadShard {
			liveName = full
			break
		}
	}
	objs, err := med.QueryString(fmt.Sprintf(`P :- P:<profile {<name %s>}>@med.`, oem.QuoteAtom(liveName)))
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 1 {
		t.Fatalf("routed query to a healthy shard returned %d objects", len(objs))
	}
}
