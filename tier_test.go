package medmaker

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"medmaker/internal/workload"
)

// Tiered mediation tests: a mediator is a Source, so a tier-1 mediator
// can integrate a tier-2 mediator exactly like a wrapper. The composed
// deployment must be indistinguishable from the flat one — same answers
// in every execution mode — and cross-tier plumbing (deadlines downward,
// invalidation upward) must hold.

// tierModes are the executor configurations the differential tests sweep.
var tierModes = []struct {
	name     string
	par      int
	pipeline bool
}{
	{"serial", 1, false},
	{"parallel", 4, false},
	{"pipelined", 4, true},
}

// passthroughSpec re-exports the lower tier's cs_person view unchanged.
const passthroughSpec = `<cs_person {<name N> | R}> :- <cs_person {<name N> | R}>@sub.`

// tierQueries exercises point lookups, scans, and filters through the
// tiers.
func tierQueries(staff *workload.Staff) []string {
	qs := []string{
		`P :- P:<cs_person {<name N>}>@med.`,
		`S :- S:<cs_person {<year 3>}>@med.`,
		`E :- E:<cs_person {<relation 'employee'>}>@med.`,
	}
	for i := 0; i < 4 && i < len(staff.Names); i++ {
		qs = append(qs, fmt.Sprintf(`X :- X:<cs_person {<name '%s'>}>@med.`, staff.Names[i*8]))
	}
	return qs
}

// TestTwoTierMediatorDifferential: tier-2 integrates cs+whois under MS1,
// tier-1 re-exports it; answers through the stack are byte-identical to
// the flat single-mediator reference in every mode, on both tiers'
// executors.
func TestTwoTierMediatorDifferential(t *testing.T) {
	staff, err := workload.GenStaff(workload.StaffConfig{
		Persons: 150, Departments: 4, EmployeeFraction: 0.5, Irregularity: 0.3, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	queries := tierQueries(staff)

	flat, err := New(Config{
		Name: "med", Spec: specMS1,
		Sources: []Source{
			NewRelationalWrapper("cs", staff.DB),
			NewRecordWrapper("whois", staff.Store),
		},
		Parallelism: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]string, len(queries))
	for _, q := range queries {
		objs, err := flat.QueryString(q)
		if err != nil {
			t.Fatalf("flat reference %q: %v", q, err)
		}
		if len(objs) == 0 {
			t.Fatalf("flat reference %q: empty answer, test is vacuous", q)
		}
		want[q] = fmt.Sprint(canonicalize(objs))
	}

	for _, mode := range tierModes {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			sub, err := New(Config{
				Name: "sub", Spec: specMS1,
				Sources: []Source{
					NewRelationalWrapper("cs", staff.DB),
					NewRecordWrapper("whois", staff.Store),
				},
				Parallelism: mode.par,
				Pipeline:    mode.pipeline,
			})
			if err != nil {
				t.Fatal(err)
			}
			top, err := New(Config{
				Name: "med", Spec: passthroughSpec,
				Sources:     []Source{sub},
				Parallelism: mode.par,
				Pipeline:    mode.pipeline,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range queries {
				objs, err := top.QueryString(q)
				if err != nil {
					t.Fatalf("two-tier %q: %v", q, err)
				}
				if got := fmt.Sprint(canonicalize(objs)); got != want[q] {
					t.Fatalf("two-tier answer diverged for %q:\n got %s\nwant %s", q, got, want[q])
				}
			}
		})
	}
}

// TestTierDeadlinePropagates: an expired deadline on the tier-1 query
// surfaces as DeadlineExceeded — the ContextSource chain carries the
// context down through the mediator tier instead of letting the lower
// tier run to completion.
func TestTierDeadlinePropagates(t *testing.T) {
	staff, err := workload.GenStaff(workload.StaffConfig{Persons: 40, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := New(Config{
		Name: "sub", Spec: specMS1,
		Sources: []Source{
			NewRelationalWrapper("cs", staff.DB),
			NewRecordWrapper("whois", staff.Store),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	top, err := New(Config{Name: "med", Spec: passthroughSpec, Sources: []Source{sub}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := top.QueryStringContext(ctx, `P :- P:<cs_person {<name N>}>@med.`); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded through the tier, got %v", err)
	}
	// The stack is healthy afterwards.
	if _, err := top.QueryString(`P :- P:<cs_person {<name N>}>@med.`); err != nil {
		t.Fatalf("tier broken after expired deadline: %v", err)
	}
}

// TestTierTransitiveInvalidation: Invalidate on the tier-2 mediator
// propagates to a tier-1 mediator that registered it as a source,
// dropping the tier-1 plan cache and marking its materialized views
// stale.
func TestTierTransitiveInvalidation(t *testing.T) {
	staff, err := workload.GenStaff(workload.StaffConfig{Persons: 40, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := New(Config{
		Name: "sub", Spec: specMS1,
		Sources: []Source{
			NewRelationalWrapper("cs", staff.DB),
			NewRecordWrapper("whois", staff.Store),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	top, err := New(Config{
		Name: "med", Spec: passthroughSpec,
		Sources:     []Source{sub},
		PlanCache:   &PlanCacheOptions{MaxEntries: 16},
		Materialize: &MatViewOptions{Views: []MatView{{Label: "cs_person"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	q := `P :- P:<cs_person {<name N>}>@med.`
	for i := 0; i < 2; i++ {
		if _, err := top.QueryString(q); err != nil {
			t.Fatal(err)
		}
	}
	top.WaitMatViews()
	if st := top.MatViewStats(); st.Hits == 0 {
		t.Fatalf("matview never warmed: %+v", st)
	}
	before := top.PlanCacheStats()
	if before.Entries == 0 {
		t.Fatalf("plan cache never populated: %+v", before)
	}

	// Tier-2 invalidation, tier-1 consequences.
	sub.Invalidate("whois")
	after := top.PlanCacheStats()
	if after.Invalidated <= before.Invalidated {
		t.Fatalf("tier-1 plan cache survived tier-2 invalidation: %+v -> %+v", before, after)
	}
	matBefore := top.MatViewStats().Stale
	if _, err := top.QueryString(q); err != nil {
		t.Fatal(err)
	}
	top.WaitMatViews()
	if got := top.MatViewStats().Stale; got <= matBefore {
		t.Fatalf("tier-1 matview extent not marked stale by tier-2 invalidation: %d -> %d", matBefore, got)
	}
}
