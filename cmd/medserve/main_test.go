package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"medmaker"
	"medmaker/internal/metrics"
)

func demoHandler(t *testing.T, reg *metrics.Registry, opts serveOptions) (http.Handler, *medmaker.Mediator) {
	t.Helper()
	med, closers, err := buildMediator(buildConfig{
		Name: "med", Persons: 200, Departments: 4,
		PlanCacheEntries: 256, AnswerCache: true, Parallelism: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, c := range closers {
			c()
		}
	})
	opts.Registry = reg
	return newHandler(med, opts), med
}

func postQuery(t *testing.T, h http.Handler, body string) (*httptest.ResponseRecorder, queryResponse) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var resp queryResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("bad response body: %v\n%s", err, rec.Body.String())
		}
	}
	return rec, resp
}

func TestServeQueryEndToEnd(t *testing.T) {
	reg := metrics.NewRegistry()
	h, med := demoHandler(t, reg, serveOptions{})

	// JSON body.
	rec, resp := postQuery(t, h, `{"query": "P :- P:<cs_person {<name N>}>@med.", "trace": true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	// The MS1 view selects dept CS: 200 persons / 4 departments.
	if resp.Count != 50 || len(resp.Objects) != 50 {
		t.Fatalf("count = %d, objects = %d, want 50", resp.Count, len(resp.Objects))
	}
	if resp.Trace == nil || len(resp.Trace.Phases) == 0 {
		t.Fatal("trace requested but absent")
	}

	// Raw MSL body and GET both work.
	rec, resp = postQuery(t, h, `P :- P:<cs_person {<relation 'employee'>}>@med.`)
	if rec.Code != http.StatusOK || resp.Count == 0 {
		t.Fatalf("raw-body query: status %d count %d", rec.Code, resp.Count)
	}
	getReq := httptest.NewRequest(http.MethodGet, "/query?q="+
		"P+:-+P:%3Ccs_person+%7B%3Crelation+'employee'%3E%7D%3E@med.", nil)
	getRec := httptest.NewRecorder()
	h.ServeHTTP(getRec, getReq)
	if getRec.Code != http.StatusOK {
		t.Fatalf("GET query: status %d: %s", getRec.Code, getRec.Body.String())
	}

	// Parse errors are 400, not 500.
	rec, _ = postQuery(t, h, `{"query": "this is not MSL"}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad query: status %d", rec.Code)
	}

	// The plan cache saw the repeated template.
	if st := med.PlanCacheStats(); st.Hits == 0 {
		t.Errorf("no plan cache hits after repeated queries: %+v", st)
	}

	// /metrics serves both formats; /healthz answers.
	mRec := httptest.NewRecorder()
	h.ServeHTTP(mRec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if mRec.Code != http.StatusOK || !strings.Contains(mRec.Body.String(), "serve.requests") {
		t.Fatalf("/metrics: %d\n%s", mRec.Code, mRec.Body.String())
	}
	jRec := httptest.NewRecorder()
	h.ServeHTTP(jRec, httptest.NewRequest(http.MethodGet, "/metrics?format=json", nil))
	var snap metrics.Snapshot
	if err := json.Unmarshal(jRec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("/metrics?format=json: %v", err)
	}
	if snap.Counter("serve.requests") == 0 {
		t.Fatal("serve.requests not counted")
	}
	hRec := httptest.NewRecorder()
	h.ServeHTTP(hRec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if hRec.Code != http.StatusOK {
		t.Fatalf("/healthz: %d", hRec.Code)
	}
}

// With one slot and no queue, concurrent requests shed with a typed 503.
func TestServeShedsWhenSaturated(t *testing.T) {
	reg := metrics.NewRegistry()
	h, _ := demoHandler(t, reg, serveOptions{
		MaxInFlight: 1, MaxQueue: 0, QueueWait: 10 * time.Millisecond,
	})
	const clients = 8
	var wg sync.WaitGroup
	codes := make([]int, clients)
	busies := make([]bool, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := httptest.NewRequest(http.MethodPost, "/query",
				strings.NewReader(`P :- P:<cs_person {<name N>}>@med.`))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			codes[i] = rec.Code
			if rec.Code == http.StatusServiceUnavailable {
				var e errorResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &e); err == nil {
					busies[i] = e.Busy
				}
			}
		}(i)
	}
	wg.Wait()
	okN, shedN := 0, 0
	for i, code := range codes {
		switch code {
		case http.StatusOK:
			okN++
		case http.StatusServiceUnavailable:
			shedN++
			if !busies[i] {
				t.Errorf("client %d shed without busy flag", i)
			}
		default:
			t.Errorf("client %d: unexpected status %d", i, code)
		}
	}
	if okN == 0 {
		t.Error("every request shed; at least the slot holder must answer")
	}
	snap := reg.Snapshot()
	if got := snap.Counter("serve.shed"); got != int64(shedN) {
		t.Errorf("serve.shed = %d, observed %d refusals", got, shedN)
	}
	if got := snap.Counter("serve.requests"); got != clients {
		t.Errorf("serve.requests = %d, want %d", got, clients)
	}
}

// A queued-then-admitted request runs degraded and reports Queued. The
// slot is occupied directly through the gate so queueing is deterministic.
func TestServeQueuedRunsDegraded(t *testing.T) {
	reg := metrics.NewRegistry()
	med, closers, err := buildMediator(buildConfig{
		Name: "med", Persons: 200, Departments: 4,
		PlanCacheEntries: 256, AnswerCache: true, Parallelism: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, c := range closers {
			c()
		}
	})
	srv := newServer(med, serveOptions{
		Registry: reg, MaxInFlight: 1, MaxQueue: 8, QueueWait: 10 * time.Second,
	})
	h := srv.handler()

	srv.gate.slots <- struct{}{} // occupy the only slot
	done := make(chan struct{})
	var rec *httptest.ResponseRecorder
	var resp queryResponse
	go func() {
		defer close(done)
		rec, resp = postQuery(t, h, `P :- P:<cs_person {<name N>}>@med.`)
	}()
	// Wait for the request to enter the queue, then free the slot.
	deadline := time.Now().Add(5 * time.Second)
	for len(srv.gate.queue) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	<-srv.gate.slots
	<-done

	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if !resp.Queued {
		t.Error("queued request did not report Queued")
	}
	snap := reg.Snapshot()
	if q := snap.Counter("serve.queued"); q != 1 {
		t.Errorf("serve.queued = %d, want 1", q)
	}
	if d := snap.Counter("serve.degraded"); d != 1 {
		t.Errorf("serve.degraded = %d, want 1 (degraded policy not applied)", d)
	}
	if s := snap.Counter("serve.shed"); s != 0 {
		t.Errorf("serve.shed = %d with a deep queue and long wait", s)
	}
}

func TestGateQueueFull(t *testing.T) {
	g := newGate(serveOptions{MaxInFlight: 1, MaxQueue: 1, QueueWait: 20 * time.Millisecond})
	release, queued, ok := g.admit(t.Context())
	if !ok || queued {
		t.Fatalf("first admit: queued=%v ok=%v", queued, ok)
	}
	// Fill the single queue slot with a waiter.
	waiterDone := make(chan struct{})
	go func() {
		defer close(waiterDone)
		_, queued, ok := g.admit(t.Context())
		if ok || !queued {
			t.Errorf("waiter: queued=%v ok=%v, want timed-out queue wait", queued, ok)
		}
	}()
	time.Sleep(5 * time.Millisecond) // let the waiter enter the queue
	if _, _, ok := g.admit(t.Context()); ok {
		t.Fatal("third admit succeeded past a full queue")
	}
	<-waiterDone
	release()
	if release2, _, ok := g.admit(t.Context()); !ok {
		t.Fatal("admit after release failed")
	} else {
		release2()
	}
}
