// Command medserve runs one shared mediator as a concurrent serving tier:
// an HTTP/JSON front end for end-user clients, with admission control
// (bounded in-flight queries plus a bounded wait queue) and graceful
// shedding under overload, and optionally the gob wire protocol of
// internal/remote on a second port so other mediators can stack on top of
// this one (the tiered TSIMMIS deployment of Figure 1.1).
//
//	medserve -spec med.msl -source whois=whois.oem -source cs=tcp:host:port
//	medserve -persons 10000            # built-in scaled demo population
//
// Endpoints:
//
//	POST /query    {"query": "X :- ...", "timeout_ms": 1000, "trace": true}
//	GET  /query?q=X+:-+...             one-off queries from a browser/curl
//	GET  /metrics                      registry dump, text or ?format=json
//	GET  /healthz                      liveness
//
// Under load, a request that cannot start immediately waits in a bounded
// queue; if the queue is full or the wait exceeds -queue-wait the request
// is shed with HTTP 503 and {"busy": true}. A request admitted after
// queueing runs under a degraded execution policy (per-source timeout,
// partial answers) so an overloaded server returns fast lower bounds
// flagged "incomplete" instead of stalling everyone — the ExecPolicy /
// Result.Incomplete machinery doing double duty as load shedding.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"medmaker"
	"medmaker/internal/metrics"
	"medmaker/internal/oem"
	"medmaker/internal/remote"
	"medmaker/internal/workload"
)

// demoSpec is the paper's MS1 view over the scaled cs/whois population —
// the same specification medbench measures, so numbers line up.
const demoSpec = `
<cs_person {<name N> <relation R> Rest1 Rest2}> :-
    <person {<name N> <dept 'CS'> <relation R> | Rest1}>@whois
    AND <R {<first_name FN> <last_name LN> | Rest2}>@cs
    AND decomp(N, LN, FN).

decomp(bound, free, free) by name_to_lnfn.
decomp(free, bound, bound) by lnfn_to_name.
`

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "medserve: %v\n", err)
		os.Exit(1)
	}
}

// serveOptions is everything the handler needs beyond the mediator.
type serveOptions struct {
	Registry    *metrics.Registry
	MaxInFlight int           // concurrent queries actually executing
	MaxQueue    int           // waiters beyond that before shedding
	QueueWait   time.Duration // longest a waiter holds on before 503
	ShedTimeout time.Duration // per-source budget for queued requests
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("medserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8344", "HTTP listen address (host:0 picks a port, printed on stdout)")
	gobAddr := fs.String("gob", "", "also serve the gob wire protocol on this address (for stacking mediators)")
	gobMaxConns := fs.Int("gob-max-conns", 0, "gob connection bound (0 = default, <0 = unlimited)")
	specPath := fs.String("spec", "", "MSL specification file; omit to serve the built-in demo population (-persons)")
	name := fs.String("name", "med", "mediator name (what queries write after @)")
	var sources sourceFlags
	fs.Var(&sources, "source", "source as name=path.oem or name=tcp:addr (repeatable, with -spec)")
	persons := fs.Int("persons", 10000, "demo population size (without -spec)")
	departments := fs.Int("departments", 4, "demo population departments")
	planCache := fs.Int("plan-cache", 4096, "plan cache entries (0 disables)")
	answerCache := fs.Bool("cache", true, "put an LRU answer cache in front of every source")
	parallel := fs.Int("parallel", 0, "per-query engine parallelism (0 = GOMAXPROCS)")
	maxInFlight := fs.Int("max-inflight", 0, "concurrent queries executing (0 = 4*GOMAXPROCS)")
	maxQueue := fs.Int("max-queue", 64, "admission queue length before shedding with 503")
	queueWait := fs.Duration("queue-wait", 500*time.Millisecond, "longest a request waits for a slot before 503")
	shedTimeout := fs.Duration("shed-timeout", 2*time.Second, "per-source budget for requests admitted after queueing (degraded, partial answers)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	med, closers, err := buildMediator(buildConfig{
		Name: *name, SpecPath: *specPath, Sources: sources,
		Persons: *persons, Departments: *departments,
		PlanCacheEntries: *planCache, AnswerCache: *answerCache,
		Parallelism: *parallel,
	})
	if err != nil {
		return err
	}
	defer func() {
		for _, c := range closers {
			c()
		}
	}()

	reg := metrics.Default()
	handler := newHandler(med, serveOptions{
		Registry:    reg,
		MaxInFlight: *maxInFlight,
		MaxQueue:    *maxQueue,
		QueueWait:   *queueWait,
		ShedTimeout: *shedTimeout,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "listening %s\n", ln.Addr())

	var gobSrv *remote.Server
	if *gobAddr != "" {
		gobSrv = remote.NewServer(med)
		gobSrv.Metrics = reg
		gobSrv.MaxConns = *gobMaxConns
		bound, err := gobSrv.Start(*gobAddr)
		if err != nil {
			ln.Close()
			return err
		}
		fmt.Fprintf(stdout, "gob %s\n", bound)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	httpSrv := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Clean shutdown: stop accepting, drain in-flight HTTP requests, close
	// the gob listener and its connections, then let background matview
	// refreshes finish.
	fmt.Fprintln(stdout, "shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return err
	}
	if gobSrv != nil {
		gobSrv.Close()
	}
	med.WaitMatViews()
	fmt.Fprintln(stdout, "bye")
	return nil
}

// buildConfig describes the mediator to stand up.
type buildConfig struct {
	Name             string
	SpecPath         string
	Sources          []string
	Persons          int
	Departments      int
	PlanCacheEntries int
	AnswerCache      bool
	Parallelism      int
}

// buildMediator assembles the shared mediator: either from an MSL spec
// file plus -source attachments, or (without -spec) the built-in demo — a
// generated cs/whois staff population under the paper's MS1 view.
func buildMediator(bc buildConfig) (*medmaker.Mediator, []func(), error) {
	cfg := medmaker.Config{Name: bc.Name, Parallelism: bc.Parallelism}
	if bc.PlanCacheEntries > 0 {
		cfg.PlanCache = &medmaker.PlanCacheOptions{MaxEntries: bc.PlanCacheEntries}
	}
	if bc.AnswerCache {
		cfg.Cache = &medmaker.CacheOptions{}
	}
	var closers []func()
	if bc.SpecPath == "" {
		if len(bc.Sources) > 0 {
			return nil, nil, fmt.Errorf("-source requires -spec")
		}
		if bc.Persons <= 0 {
			return nil, nil, fmt.Errorf("need -spec or a positive -persons for the demo population")
		}
		staff, err := workload.GenStaff(workload.StaffConfig{
			Persons: bc.Persons, Departments: bc.Departments,
			EmployeeFraction: 0.5, Irregularity: 0.3, Seed: 1,
		})
		if err != nil {
			return nil, nil, err
		}
		cfg.Spec = demoSpec
		cfg.Sources = []medmaker.Source{
			medmaker.NewRelationalWrapper("cs", staff.DB),
			medmaker.NewRecordWrapper("whois", staff.Store),
		}
	} else {
		specText, err := os.ReadFile(bc.SpecPath)
		if err != nil {
			return nil, nil, err
		}
		cfg.Spec = string(specText)
		for _, s := range bc.Sources {
			srcName, target, ok := strings.Cut(s, "=")
			if !ok {
				return nil, nil, fmt.Errorf("bad -source %q: want name=path.oem or name=tcp:addr", s)
			}
			src, closer, err := openSource(srcName, target)
			if err != nil {
				for _, c := range closers {
					c()
				}
				return nil, nil, err
			}
			if closer != nil {
				closers = append(closers, closer)
			}
			cfg.Sources = append(cfg.Sources, src)
		}
	}
	med, err := medmaker.New(cfg)
	if err != nil {
		for _, c := range closers {
			c()
		}
		return nil, nil, err
	}
	return med, closers, nil
}

// openSource resolves one -source target: name=tcp:addr dials a remote
// wrapper, name=http(s)://… attaches a JSON-over-HTTP endpoint,
// name=data.xml maps an XML document, anything else loads a textual OEM
// file.
func openSource(name, target string) (medmaker.Source, func(), error) {
	if addr, isTCP := strings.CutPrefix(target, "tcp:"); isTCP {
		client, err := medmaker.DialSource(addr, 10*time.Second)
		if err != nil {
			return nil, nil, err
		}
		if client.Name() != name {
			client.Close()
			return nil, nil, fmt.Errorf("remote source at %s calls itself %q, not %q", addr, client.Name(), name)
		}
		return client, func() { client.Close() }, nil
	}
	if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") {
		src, err := medmaker.NewHTTPSource(name, target)
		return src, nil, err
	}
	if strings.HasSuffix(target, ".xml") {
		src, err := medmaker.NewXMLSourceFromFile(name, target, medmaker.XMLMapping{})
		return src, nil, err
	}
	src, err := medmaker.NewOEMSourceFromFile(name, target)
	return src, nil, err
}

type sourceFlags []string

func (s *sourceFlags) String() string { return strings.Join(*s, ",") }

func (s *sourceFlags) Set(v string) error {
	*s = append(*s, v)
	return nil
}

// gate is the admission controller: MaxInFlight slots for executing
// queries and a bounded queue of waiters behind them. Everything beyond
// queue capacity — or waiting longer than QueueWait — is shed.
type gate struct {
	slots chan struct{}
	queue chan struct{}
	wait  time.Duration
}

func newGate(opts serveOptions) *gate {
	inflight := opts.MaxInFlight
	if inflight <= 0 {
		inflight = 4 * runtime.GOMAXPROCS(0)
	}
	queue := opts.MaxQueue
	if queue < 0 {
		queue = 0
	}
	wait := opts.QueueWait
	if wait <= 0 {
		wait = 500 * time.Millisecond
	}
	return &gate{
		slots: make(chan struct{}, inflight),
		queue: make(chan struct{}, queue),
		wait:  wait,
	}
}

// admit tries to start a request: ok=false means shed it now. queued
// reports that the request waited for its slot — the handler degrades its
// execution policy in response. release (non-nil iff ok) frees the slot.
func (g *gate) admit(ctx context.Context) (release func(), queued, ok bool) {
	select {
	case g.slots <- struct{}{}:
		return g.release, false, true
	default:
	}
	select {
	case g.queue <- struct{}{}:
		defer func() { <-g.queue }()
	default:
		return nil, false, false // queue full: shed immediately
	}
	timer := time.NewTimer(g.wait)
	defer timer.Stop()
	select {
	case g.slots <- struct{}{}:
		return g.release, true, true
	case <-timer.C:
		return nil, true, false
	case <-ctx.Done():
		return nil, true, false
	}
}

func (g *gate) release() { <-g.slots }

// server is the HTTP handler state around the one shared mediator.
type server struct {
	med  *medmaker.Mediator
	reg  *metrics.Registry
	gate *gate
	shed medmaker.ExecPolicy
}

// newHandler builds the HTTP front end over med.
func newHandler(med *medmaker.Mediator, opts serveOptions) http.Handler {
	return newServer(med, opts).handler()
}

// newServer assembles the handler state; split from newHandler so tests
// can reach the admission gate.
func newServer(med *medmaker.Mediator, opts serveOptions) *server {
	reg := opts.Registry
	if reg == nil {
		reg = metrics.Default()
	}
	shedTimeout := opts.ShedTimeout
	if shedTimeout <= 0 {
		shedTimeout = 2 * time.Second
	}
	// Pre-touch the distributed-tier counters so a /metrics scrape lists
	// them at zero before any sharded or remote traffic has arrived.
	for _, name := range []string{
		"shard.routed", "shard.scatter", "shard.exchanges", "shard.failures",
		"remote.frames.sent", "remote.frames.recv",
	} {
		reg.Counter(name).Add(0)
	}
	return &server{
		med:  med,
		reg:  reg,
		gate: newGate(opts),
		shed: medmaker.ExecPolicy{
			PerSourceTimeout: shedTimeout,
			OnSourceError:    medmaker.OnSourceErrorPartial,
		},
	}
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok\n")
	})
	return mux
}

// queryRequest is the POST /query body; GET supplies q / timeout_ms /
// trace as URL parameters instead.
type queryRequest struct {
	// Query is the MSL query text.
	Query string `json:"query"`
	// Lorel marks Query as a LOREL "select … from … where …" query to
	// translate first.
	Lorel bool `json:"lorel,omitempty"`
	// TimeoutMillis bounds the whole evaluation; 0 means none.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
	// Trace asks for the structured execution trace in the response.
	Trace bool `json:"trace,omitempty"`
}

// queryResponse is the /query answer.
type queryResponse struct {
	// Objects are the result objects as OEM JSON.
	Objects []json.RawMessage `json:"objects"`
	Count   int               `json:"count"`
	// Incomplete flags a degraded (lower-bound) answer; SourceErrors lists
	// the failures behind it.
	Incomplete   bool     `json:"incomplete,omitempty"`
	SourceErrors []string `json:"source_errors,omitempty"`
	// Queued reports that the request waited for admission and ran under
	// the degraded shedding policy.
	Queued bool `json:"queued,omitempty"`
	// Trace is the execution record when the request asked for one.
	Trace *medmaker.TraceSummary `json:"trace,omitempty"`
}

// errorResponse is any non-200 /query answer.
type errorResponse struct {
	Error string `json:"error"`
	// Busy marks a shed request: the server is healthy, just full — retry
	// with backoff.
	Busy bool `json:"busy,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// parseQueryRequest accepts GET parameters or a JSON (or raw MSL) POST
// body.
func parseQueryRequest(r *http.Request) (queryRequest, error) {
	var req queryRequest
	switch r.Method {
	case http.MethodGet:
		req.Query = r.URL.Query().Get("q")
		req.Trace = r.URL.Query().Get("trace") != ""
		if ms := r.URL.Query().Get("timeout_ms"); ms != "" {
			if _, err := fmt.Sscan(ms, &req.TimeoutMillis); err != nil {
				return req, fmt.Errorf("bad timeout_ms %q", ms)
			}
		}
	case http.MethodPost:
		body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, 1<<20))
		if err != nil {
			return req, err
		}
		trimmed := strings.TrimSpace(string(body))
		if strings.HasPrefix(trimmed, "{") {
			if err := json.Unmarshal(body, &req); err != nil {
				return req, err
			}
		} else {
			req.Query = trimmed // raw MSL text is fine too
		}
	default:
		return req, fmt.Errorf("method %s not allowed", r.Method)
	}
	if strings.TrimSpace(req.Query) == "" {
		return req, errors.New("empty query")
	}
	return req, nil
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.reg.Counter("serve.requests").Inc()
	req, err := parseQueryRequest(r)
	if err != nil {
		s.reg.Counter("serve.errors").Inc()
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	queryText := req.Query
	if req.Lorel {
		rule, err := medmaker.TranslateLorel(queryText)
		if err != nil {
			s.reg.Counter("serve.errors").Inc()
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		queryText = rule.String()
	}
	rule, err := medmaker.ParseQuery(queryText)
	if err != nil {
		s.reg.Counter("serve.errors").Inc()
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}

	release, queued, ok := s.gate.admit(r.Context())
	if queued {
		s.reg.Counter("serve.queued").Inc()
	}
	if !ok {
		s.reg.Counter("serve.shed").Inc()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server busy", Busy: true})
		return
	}
	defer release()

	ctx := r.Context()
	if req.TimeoutMillis > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMillis)*time.Millisecond)
		defer cancel()
	}

	start := time.Now()
	var (
		res *medmaker.QueryResult
		qt  *medmaker.QueryTrace
	)
	if req.Trace && !queued {
		res, qt, err = s.med.QueryTraced(ctx, rule)
	} else {
		// Queued requests run degraded: bounded per-source work, partial
		// answers instead of stalls. (They skip tracing — the trace runs
		// under the mediator's default policy.)
		policy := s.med.Policy()
		if queued {
			policy = s.shed
			s.reg.Counter("serve.degraded").Inc()
		}
		res, err = s.med.QueryPolicy(ctx, rule, policy)
	}
	s.reg.Histogram("serve.latency").Observe(time.Since(start))
	if err != nil {
		s.reg.Counter("serve.errors").Inc()
		status := http.StatusInternalServerError
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			status = http.StatusGatewayTimeout
		}
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}

	resp := queryResponse{Objects: make([]json.RawMessage, 0, len(res.Objects)), Queued: queued}
	for _, o := range res.Objects {
		data, err := oem.ToJSON(o)
		if err != nil {
			s.reg.Counter("serve.errors").Inc()
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
			return
		}
		resp.Objects = append(resp.Objects, data)
	}
	resp.Count = len(resp.Objects)
	resp.Incomplete = res.Incomplete
	for _, se := range res.SourceErrors {
		resp.SourceErrors = append(resp.SourceErrors, se.Error())
	}
	if qt != nil {
		summary := qt.Snapshot()
		resp.Trace = &summary
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMetrics dumps the registry: the plan cache, answer caches, engine
// exchanges, serve.* admission counters, and (when the gob port is on)
// the remote server's traffic, all in one scrape.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot()
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, snap)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, snap.String())
}
