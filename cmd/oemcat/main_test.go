package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runTool(t *testing.T, stdin string, args ...string) (int, string, string) {
	t.Helper()
	var out, errb strings.Builder
	code := run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

const sample = `<&p1, person, set, {&n1}>
  <&n1, name, string, 'Joe Chung'>
;`

func TestOemcatStdinRoundTrip(t *testing.T) {
	code, out, _ := runTool(t, sample)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "<&p1, person, set, {&n1}>") {
		t.Fatalf("flat output:\n%s", out)
	}
	code2, out2, _ := runTool(t, sample, "-style", "nested", "-omit-types")
	if code2 != 0 {
		t.Fatal("nested run failed")
	}
	if strings.Contains(out2, "string") || !strings.Contains(out2, "{") {
		t.Fatalf("nested omit-types output:\n%s", out2)
	}
}

func TestOemcatFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.oem")
	os.WriteFile(path, []byte(sample), 0o600)
	code, out, _ := runTool(t, "", "-stats", path)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "1 top-level objects, 2 total, max depth 2") {
		t.Fatalf("stats:\n%s", out)
	}
	// Missing file: nonzero exit, error on stderr, other inputs still run.
	code2, out2, errOut := runTool(t, "", path, filepath.Join(dir, "missing.oem"))
	if code2 != 1 {
		t.Fatalf("exit %d", code2)
	}
	if !strings.Contains(out2, "person") || !strings.Contains(errOut, "missing.oem") {
		t.Fatalf("partial failure handling:\nout=%s\nerr=%s", out2, errOut)
	}
}

func TestOemcatJSONModes(t *testing.T) {
	code, out, _ := runTool(t, `[{"name": "Joe"}, {"name": "Sue"}]`, "-from-json", "person")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if strings.Count(out, "person") != 2 {
		t.Fatalf("from-json:\n%s", out)
	}
	code2, out2, _ := runTool(t, sample, "-to-json")
	if code2 != 0 {
		t.Fatal("to-json failed")
	}
	if !strings.Contains(out2, `{"person":{"name":"Joe Chung"}}`) {
		t.Fatalf("to-json:\n%s", out2)
	}
	// Single JSON document (not an array).
	code3, out3, _ := runTool(t, `{"mode": "x"}`, "-from-json", "config")
	if code3 != 0 || !strings.Contains(out3, "config") {
		t.Fatalf("single-doc from-json: %d\n%s", code3, out3)
	}
}

func TestOemcatBadInputs(t *testing.T) {
	if code, _, _ := runTool(t, "<<<"); code != 1 {
		t.Errorf("bad OEM text: exit %d", code)
	}
	if code, _, _ := runTool(t, sample, "-style", "weird"); code != 2 {
		t.Errorf("bad style: exit %d", code)
	}
	if code, _, _ := runTool(t, sample, "-nosuchflag"); code != 2 {
		t.Errorf("bad flag: exit %d", code)
	}
}
