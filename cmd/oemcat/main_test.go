package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runTool(t *testing.T, stdin string, args ...string) (int, string, string) {
	t.Helper()
	var out, errb strings.Builder
	code := run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

const sample = `<&p1, person, set, {&n1}>
  <&n1, name, string, 'Joe Chung'>
;`

func TestOemcatStdinRoundTrip(t *testing.T) {
	code, out, _ := runTool(t, sample)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "<&p1, person, set, {&n1}>") {
		t.Fatalf("flat output:\n%s", out)
	}
	code2, out2, _ := runTool(t, sample, "-style", "nested", "-omit-types")
	if code2 != 0 {
		t.Fatal("nested run failed")
	}
	if strings.Contains(out2, "string") || !strings.Contains(out2, "{") {
		t.Fatalf("nested omit-types output:\n%s", out2)
	}
}

func TestOemcatFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.oem")
	os.WriteFile(path, []byte(sample), 0o600)
	code, out, _ := runTool(t, "", "-stats", path)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "1 top-level objects, 2 total, max depth 2") {
		t.Fatalf("stats:\n%s", out)
	}
	// Missing file: nonzero exit, error on stderr, other inputs still run.
	code2, out2, errOut := runTool(t, "", path, filepath.Join(dir, "missing.oem"))
	if code2 != 1 {
		t.Fatalf("exit %d", code2)
	}
	if !strings.Contains(out2, "person") || !strings.Contains(errOut, "missing.oem") {
		t.Fatalf("partial failure handling:\nout=%s\nerr=%s", out2, errOut)
	}
}

func TestOemcatJSONModes(t *testing.T) {
	code, out, _ := runTool(t, `[{"name": "Joe"}, {"name": "Sue"}]`, "-from-json", "person")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if strings.Count(out, "person") != 2 {
		t.Fatalf("from-json:\n%s", out)
	}
	code2, out2, _ := runTool(t, sample, "-to-json")
	if code2 != 0 {
		t.Fatal("to-json failed")
	}
	if !strings.Contains(out2, `{"person":{"name":"Joe Chung"}}`) {
		t.Fatalf("to-json:\n%s", out2)
	}
	// Single JSON document (not an array).
	code3, out3, _ := runTool(t, `{"mode": "x"}`, "-from-json", "config")
	if code3 != 0 || !strings.Contains(out3, "config") {
		t.Fatalf("single-doc from-json: %d\n%s", code3, out3)
	}
}

func TestOemcatXMLModes(t *testing.T) {
	doc := `<oem><person><name>Joe Chung</name><year>3</year></person><person><name>Sue</name></person></oem>`
	code, out, _ := runTool(t, doc, "-from-xml")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if strings.Count(out, "person") != 2 || !strings.Contains(out, "'Joe Chung'") {
		t.Fatalf("from-xml:\n%s", out)
	}
	// A lone document element is the object itself under -xml-keep-root.
	codeK, outK, _ := runTool(t, `<person><name>Joe Chung</name></person>`, "-from-xml", "-xml-keep-root")
	if codeK != 0 || !strings.Contains(outK, "person") || !strings.Contains(outK, "'Joe Chung'") {
		t.Fatalf("keep-root from-xml: %d\n%s", codeK, outK)
	}
	code2, out2, _ := runTool(t, sample, "-to-xml")
	if code2 != 0 {
		t.Fatal("to-xml failed")
	}
	if !strings.Contains(out2, "<name>Joe Chung</name>") {
		t.Fatalf("to-xml:\n%s", out2)
	}
	// XML -> OEM -> XML: the text format is a faithful intermediate.
	code3, out3, _ := runTool(t, `<person dept="CS"><name>Sue</name></person>`, "-from-xml", "-to-xml")
	if code3 != 0 || !strings.Contains(out3, "<name>Sue</name>") || !strings.Contains(out3, "CS") {
		t.Fatalf("xml round trip: %d\n%s", code3, out3)
	}
}

func TestOemcatBadInputs(t *testing.T) {
	if code, _, _ := runTool(t, "<<<"); code != 1 {
		t.Errorf("bad OEM text: exit %d", code)
	}
	if code, _, _ := runTool(t, sample, "-style", "weird"); code != 2 {
		t.Errorf("bad style: exit %d", code)
	}
	if code, _, _ := runTool(t, sample, "-nosuchflag"); code != 2 {
		t.Errorf("bad flag: exit %d", code)
	}
	if code, _, _ := runTool(t, sample, "-from-json", "x", "-from-xml"); code != 2 {
		t.Errorf("conflicting input modes: exit %d", code)
	}
	if code, _, _ := runTool(t, sample, "-to-json", "-to-xml"); code != 2 {
		t.Errorf("conflicting output modes: exit %d", code)
	}
	if code, _, _ := runTool(t, `<a><b x="1">`, "-from-xml"); code != 1 {
		t.Errorf("bad XML: exit %d", code)
	}
}
