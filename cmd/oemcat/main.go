// Command oemcat reads files (or stdin) in the textual OEM object format,
// validates them, and reprints them in a chosen layout. It is the
// format's swiss-army knife: converting between the flat figure layout
// and the nested layout, to and from JSON and XML, stripping type
// fields, and reporting structure statistics.
//
//	oemcat [-style flat|nested] [-omit-types] [-stats]
//	       [-from-json label | -from-xml] [-to-json | -to-xml] [file ...]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"medmaker/internal/oem"
	"medmaker/internal/xmlsource"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run executes the CLI against explicit arguments and streams, so tests
// can drive it; it returns the process exit code.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("oemcat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	style := fs.String("style", "flat", "output layout: flat (paper figures) or nested")
	omitTypes := fs.Bool("omit-types", false, "drop the type field from printed tuples")
	stats := fs.Bool("stats", false, "print structure statistics instead of objects")
	fromJSON := fs.String("from-json", "", "treat inputs as JSON, converting to OEM objects with this label")
	toJSON := fs.Bool("to-json", false, "emit JSON instead of the OEM text format")
	fromXML := fs.Bool("from-xml", false, "treat inputs as XML documents (a lone document element is a container unless -xml-keep-root)")
	toXML := fs.Bool("to-xml", false, "emit XML instead of the OEM text format")
	keepRoot := fs.Bool("xml-keep-root", false, "map the XML document element to an object instead of treating it as a container")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *fromJSON != "" && *fromXML {
		fmt.Fprintln(stderr, "oemcat: -from-json and -from-xml are mutually exclusive")
		return 2
	}
	if *toJSON && *toXML {
		fmt.Fprintln(stderr, "oemcat: -to-json and -to-xml are mutually exclusive")
		return 2
	}

	var f oem.Formatter
	switch *style {
	case "flat":
		f.Style = oem.StyleFlat
	case "nested":
		f.Style = oem.StyleNested
	default:
		fmt.Fprintf(stderr, "oemcat: unknown style %q\n", *style)
		return 2
	}
	f.OmitTypes = *omitTypes

	inputs := fs.Args()
	if len(inputs) == 0 {
		inputs = []string{"-"}
	}
	exit := 0
	for _, path := range inputs {
		if err := process(path, &f, *stats, *fromJSON, *fromXML, *toJSON, *toXML, xmlsource.Mapping{KeepRoot: *keepRoot}, stdin, stdout); err != nil {
			fmt.Fprintf(stderr, "oemcat: %s: %v\n", path, err)
			exit = 1
		}
	}
	return exit
}

func process(path string, f *oem.Formatter, stats bool, fromJSON string, fromXML, toJSON, toXML bool, xm xmlsource.Mapping, stdin io.Reader, stdout io.Writer) error {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return err
	}
	var objs []*oem.Object
	switch {
	case fromJSON != "":
		objs, err = oem.FromJSONArray(fromJSON, data)
		if err != nil {
			var obj *oem.Object
			obj, err = oem.FromJSON(fromJSON, data)
			objs = []*oem.Object{obj}
		}
	case fromXML:
		objs, err = xmlsource.DecodeString(string(data), xm)
	default:
		objs, err = oem.Parse(string(data))
	}
	if err != nil {
		return err
	}
	for _, o := range objs {
		if err := o.Validate(); err != nil {
			return err
		}
	}
	if stats {
		printStats(stdout, path, objs)
		return nil
	}
	if toJSON {
		for _, o := range objs {
			out, err := oem.ToJSON(o)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "%s\n", out)
		}
		return nil
	}
	if toXML {
		return xmlsource.Encode(stdout, objs, xm)
	}
	return f.Format(stdout, objs...)
}

func printStats(w io.Writer, path string, objs []*oem.Object) {
	total, maxDepth := 0, 0
	labels := map[string]int{}
	for _, o := range objs {
		total += o.Size()
		if d := o.Depth(); d > maxDepth {
			maxDepth = d
		}
		o.Walk(func(obj *oem.Object, _ int) bool {
			labels[obj.Label]++
			return true
		})
	}
	fmt.Fprintf(w, "%s: %d top-level objects, %d total, max depth %d, %d distinct labels\n",
		path, len(objs), total, maxDepth, len(labels))
}
