// Command medmaker runs a declaratively-specified mediator from the
// command line: it loads an MSL specification, attaches sources (OEM data
// files or remote TCP wrappers), and answers MSL queries.
//
//	medmaker -spec med.msl -source whois=whois.oem -source cs=tcp:host:port \
//	         [-matview label[:ttl]] [-explain] [-explain-analyze] [-trace] \
//	         [-serve addr] [query ...]
//
// Each -source is name=path (a textual OEM file) or name=tcp:addr (a
// remote wrapper started elsewhere, e.g. with -serve). Queries are given
// as arguments or, when absent, read from stdin one per line (a line must
// hold a complete rule). With -serve the mediator itself is exposed over
// TCP instead of answering local queries.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"medmaker"
)

// openSource resolves one -source target:
//
//	name=tcp:host:port          remote wrapper
//	name=http://host[/path]     JSON-over-HTTP endpoint (https too)
//	name=data.oem               textual OEM file
//	name=data.xml               XML document (elements become objects)
//	name=data.json[:label]      JSON document/array (objects labelled
//	                            label, default the file's base name)
//	name=a.csv+b.csv            relational source, one table per CSV file
//	                            (named by file base name)
//	name=stream:[seed.oem]      append-only event log, optionally seeded
//	                            from a textual OEM file
func openSource(name, target string) (medmaker.Source, func(), error) {
	if addr, isTCP := strings.CutPrefix(target, "tcp:"); isTCP {
		client, err := medmaker.DialSource(addr, 10*time.Second)
		if err != nil {
			return nil, nil, err
		}
		if client.Name() != name {
			client.Close()
			return nil, nil, fmt.Errorf("remote source at %s calls itself %q, not %q", addr, client.Name(), name)
		}
		return client, func() { client.Close() }, nil
	}
	if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") {
		src, err := medmaker.NewHTTPSource(name, target)
		return src, nil, err
	}
	if seed, isStream := strings.CutPrefix(target, "stream:"); isStream {
		src := medmaker.NewStreamSource(name, medmaker.StreamOptions{})
		if seed != "" {
			if err := seedStream(src, name, seed); err != nil {
				return nil, nil, err
			}
		}
		return src, nil, nil
	}
	path, label, hasLabel := strings.Cut(target, ":")
	switch {
	case strings.HasSuffix(path, ".xml"):
		src, err := medmaker.NewXMLSourceFromFile(name, path, medmaker.XMLMapping{})
		return src, nil, err
	case strings.HasSuffix(path, ".json"):
		if !hasLabel {
			label = baseName(path)
		}
		src, err := medmaker.NewOEMSourceFromJSONFile(name, label, path)
		return src, nil, err
	case strings.HasSuffix(path, ".csv"):
		db := medmaker.NewRelationalDB()
		for _, csvPath := range strings.Split(target, "+") {
			f, err := os.Open(csvPath)
			if err != nil {
				return nil, nil, err
			}
			err = medmaker.LoadCSV(db, baseName(csvPath), f)
			f.Close()
			if err != nil {
				return nil, nil, err
			}
		}
		return medmaker.NewRelationalWrapper(name, db), nil, nil
	default:
		src, err := medmaker.NewOEMSourceFromFile(name, target)
		return src, nil, err
	}
}

// seedStream appends the top-level objects of a textual OEM file to the
// event log.
func seedStream(src *medmaker.StreamSource, name, path string) error {
	tmp, err := medmaker.NewOEMSourceFromFile(name, path)
	if err != nil {
		return err
	}
	for _, o := range tmp.Store().TopLevel() {
		if err := src.Append(o.Clone()); err != nil {
			return err
		}
	}
	return nil
}

// baseName strips the directory and extension from a path.
func baseName(path string) string {
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	if i := strings.LastIndexByte(base, '.'); i > 0 {
		base = base[:i]
	}
	return base
}

type sourceFlags []string

func (s *sourceFlags) String() string { return strings.Join(*s, ",") }

func (s *sourceFlags) Set(v string) error {
	*s = append(*s, v)
	return nil
}

// matviewFlags accumulates -matview label[:ttl] values into view specs.
type matviewFlags []medmaker.MatView

func (m *matviewFlags) String() string {
	parts := make([]string, len(*m))
	for i, v := range *m {
		parts[i] = v.Label
		if v.TTL > 0 {
			parts[i] += ":" + v.TTL.String()
		}
	}
	return strings.Join(parts, ",")
}

func (m *matviewFlags) Set(v string) error {
	label, ttlText, hasTTL := strings.Cut(v, ":")
	if label == "" {
		return fmt.Errorf("bad -matview %q: want label or label:ttl", v)
	}
	view := medmaker.MatView{Label: label}
	if hasTTL {
		ttl, err := time.ParseDuration(ttlText)
		if err != nil || ttl <= 0 {
			return fmt.Errorf("bad -matview %q: ttl must be a positive duration like 30s", v)
		}
		view.TTL = ttl
	}
	*m = append(*m, view)
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "medmaker: %v\n", err)
		os.Exit(1)
	}
}

// run executes the CLI against explicit arguments and streams, so tests
// can drive it.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("medmaker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var sources sourceFlags
	specPath := fs.String("spec", "", "MSL specification file (required)")
	name := fs.String("name", "med", "mediator name (what queries write after @)")
	useLorel := fs.Bool("lorel", false, "queries are LOREL ('select … from … where …') instead of MSL")
	explain := fs.Bool("explain", false, "print the logical program and physical graph per query")
	explainAnalyze := fs.Bool("explain-analyze", false, "execute each query and print the plan annotated with actual row counts, source exchanges, and phase timings")
	trace := fs.Bool("trace", false, "print the execution trace (binding tables per node)")
	serve := fs.String("serve", "", "serve the mediator over TCP on this address instead of answering queries")
	showStats := fs.Bool("stats", false, "print the learned statistics store after all queries")
	timeout := fs.Duration("timeout", 0, "per-query deadline (e.g. 5s); 0 means none")
	fs.Var(&sources, "source", "source as name=path.oem or name=tcp:addr (repeatable)")
	var matviews matviewFlags
	fs.Var(&matviews, "matview", "materialize a view head as label or label:ttl (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *specPath == "" {
		return fmt.Errorf("-spec is required")
	}
	specText, err := os.ReadFile(*specPath)
	if err != nil {
		return err
	}

	cfg := medmaker.Config{Name: *name, Spec: string(specText)}
	if *trace {
		cfg.Trace = stderr
	}
	if len(matviews) > 0 {
		cfg.Materialize = &medmaker.MatViewOptions{Views: matviews}
	}
	for _, s := range sources {
		name, target, ok := strings.Cut(s, "=")
		if !ok {
			return fmt.Errorf("bad -source %q: want name=path or name=tcp:addr", s)
		}
		src, closer, err := openSource(name, target)
		if err != nil {
			return err
		}
		if closer != nil {
			defer closer()
		}
		cfg.Sources = append(cfg.Sources, src)
	}

	med, err := medmaker.New(cfg)
	if err != nil {
		return err
	}

	if *serve != "" {
		addr, srv, err := medmaker.Serve(med, *serve)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "mediator %s serving on %s\n", *name, addr)
		select {} // serve until killed
	}

	answer := func(q string) error {
		if *useLorel {
			rule, err := medmaker.TranslateLorel(q)
			if err != nil {
				return err
			}
			q = rule.String()
			fmt.Fprintf(stderr, "-- MSL: %s\n", q)
		}
		if *explain {
			out, err := med.Explain(q)
			if err != nil {
				return err
			}
			fmt.Fprint(stderr, out)
		}
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		if *explainAnalyze {
			rule, err := medmaker.ParseQuery(q)
			if err != nil {
				return err
			}
			res, qt, err := med.QueryTraced(ctx, rule)
			if err != nil {
				return err
			}
			qt.Render(stderr)
			fmt.Fprint(stdout, medmaker.FormatOEM(res.Objects...))
			return nil
		}
		objs, err := med.QueryStringContext(ctx, q)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, medmaker.FormatOEM(objs...))
		return nil
	}

	if *showStats {
		defer func() {
			fmt.Fprintf(stderr, "-- statistics learned from this session --\n%s", med.QueryStats())
		}()
	}
	if fs.NArg() > 0 {
		for _, q := range fs.Args() {
			if err := answer(q); err != nil {
				return err
			}
		}
		return nil
	}
	scanner := bufio.NewScanner(stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := answer(line); err != nil {
			fmt.Fprintf(stderr, "medmaker: %v\n", err)
		}
	}
	return scanner.Err()
}
