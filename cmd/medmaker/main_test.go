package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTestdata lays out the paper's running example in a temp dir.
func writeTestdata(t *testing.T) (spec, whois, cs string) {
	t.Helper()
	dir := t.TempDir()
	spec = filepath.Join(dir, "med.msl")
	whois = filepath.Join(dir, "whois.oem")
	cs = filepath.Join(dir, "cs.oem")
	files := map[string]string{
		spec: `
<cs_person {<name N> <relation R> Rest1 Rest2}> :-
    <person {<name N> <dept 'CS'> <relation R> | Rest1}>@whois
    AND <R {<first_name FN> <last_name LN> | Rest2}>@cs
    AND decomp(N, LN, FN).
decomp(bound, free, free) by name_to_lnfn.
decomp(free, bound, bound) by lnfn_to_name.`,
		whois: `
<person, set, {<name, 'Joe Chung'>, <dept, 'CS'>, <relation, 'employee'>, <e_mail, 'chung@cs'>}>
<person, set, {<name, 'Nick Naive'>, <dept, 'CS'>, <relation, 'student'>, <year, 3>}>`,
		cs: `
<employee, set, {<first_name, 'Joe'>, <last_name, 'Chung'>, <title, 'professor'>}>
<student, set, {<first_name, 'Nick'>, <last_name, 'Naive'>, <year, 3>}>`,
	}
	for path, content := range files {
		if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
			t.Fatal(err)
		}
	}
	return spec, whois, cs
}

func runCLI(t *testing.T, stdin string, args ...string) (string, string, error) {
	t.Helper()
	var out, errb strings.Builder
	err := run(args, strings.NewReader(stdin), &out, &errb)
	return out.String(), errb.String(), err
}

func TestCLIQueryArgument(t *testing.T) {
	spec, whois, cs := writeTestdata(t)
	out, _, err := runCLI(t, "",
		"-spec", spec, "-source", "whois="+whois, "-source", "cs="+cs,
		`JC :- JC:<cs_person {<name 'Joe Chung'>}>@med.`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cs_person", "'Joe Chung'", "'professor'", "'chung@cs'"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIStdinAndStats(t *testing.T) {
	spec, whois, cs := writeTestdata(t)
	stdin := `
# a comment, then two queries
P :- P:<cs_person {<name N>}>@med.
garbage that fails to parse
`
	out, errOut, err := runCLI(t, stdin,
		"-spec", spec, "-source", "whois="+whois, "-source", "cs="+cs, "-stats")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "'Nick Naive'") {
		t.Errorf("stdin query lost:\n%s", out)
	}
	if !strings.Contains(errOut, "medmaker:") {
		t.Errorf("bad line not reported:\n%s", errOut)
	}
	if !strings.Contains(errOut, "statistics learned") {
		t.Errorf("-stats output missing:\n%s", errOut)
	}
}

func TestCLILorelAndExplain(t *testing.T) {
	spec, whois, cs := writeTestdata(t)
	out, errOut, err := runCLI(t, "",
		"-spec", spec, "-source", "whois="+whois, "-source", "cs="+cs,
		"-lorel", "-explain",
		`select X from med.cs_person X where X.name = "Joe Chung"`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "'Joe Chung'") {
		t.Errorf("LOREL answer missing:\n%s", out)
	}
	if !strings.Contains(errOut, "-- MSL:") || !strings.Contains(errOut, "physical datamerge graph") {
		t.Errorf("explain/lorel diagnostics missing:\n%s", errOut)
	}
}

func TestCLIJSONAndCSVSources(t *testing.T) {
	spec, _, _ := writeTestdata(t)
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "whois.json")
	os.WriteFile(jsonPath, []byte(`[
	  {"name": "Joe Chung", "dept": "CS", "relation": "employee", "e_mail": "chung@cs"}
	]`), 0o600)
	empPath := filepath.Join(dir, "employee.csv")
	os.WriteFile(empPath, []byte("first_name,last_name,title\nJoe,Chung,professor\n"), 0o600)
	stuPath := filepath.Join(dir, "student.csv")
	os.WriteFile(stuPath, []byte("first_name,last_name,year\nNick,Naive,3\n"), 0o600)
	out, _, err := runCLI(t, "",
		"-spec", spec,
		"-source", "whois="+jsonPath+":person",
		"-source", "cs="+empPath+"+"+stuPath,
		`JC :- JC:<cs_person {<name 'Joe Chung'>}>@med.`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "'professor'") {
		t.Errorf("JSON+CSV integration failed:\n%s", out)
	}
}

func TestCLIXMLAndStreamSources(t *testing.T) {
	spec, whois, cs := writeTestdata(t)
	dir := t.TempDir()
	xmlPath := filepath.Join(dir, "whois.xml")
	os.WriteFile(xmlPath, []byte(`<oem>
	  <person><name>Joe Chung</name><dept>CS</dept><relation>employee</relation><e_mail>chung@cs</e_mail></person>
	  <person><name>Nick Naive</name><dept>CS</dept><relation>student</relation><year>3</year></person>
	</oem>`), 0o600)
	query := `JC :- JC:<cs_person {<name 'Joe Chung'>}>@med.`
	out, _, err := runCLI(t, "",
		"-spec", spec, "-source", "whois="+xmlPath, "-source", "cs="+cs, query)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "'professor'") || !strings.Contains(out, "'chung@cs'") {
		t.Errorf("XML-backed whois failed:\n%s", out)
	}
	// The same extent through an event log seeded from the OEM file.
	out2, _, err := runCLI(t, "",
		"-spec", spec, "-source", "whois=stream:"+whois, "-source", "cs="+cs, query)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2, "'professor'") {
		t.Errorf("stream-backed whois failed:\n%s", out2)
	}
}

func TestCLIMatView(t *testing.T) {
	spec, whois, cs := writeTestdata(t)
	out, errOut, err := runCLI(t, "",
		"-spec", spec, "-source", "whois="+whois, "-source", "cs="+cs,
		"-matview", "cs_person:1h", "-explain-analyze",
		`JC :- JC:<cs_person {<name 'Joe Chung'>}>@med.`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "'Joe Chung'") || !strings.Contains(out, "'professor'") {
		t.Errorf("materialized answer wrong:\n%s", out)
	}
	if !strings.Contains(errOut, "matscan(") || !strings.Contains(errOut, "matview.hit") {
		t.Errorf("query did not run against the extent:\n%s", errOut)
	}
}

func TestCLIMatViewFlagErrors(t *testing.T) {
	spec, whois, _ := writeTestdata(t)
	for _, bad := range []string{":5s", "cs_person:bogus", "cs_person:-1s"} {
		if _, _, err := runCLI(t, "", "-spec", spec, "-source", "whois="+whois,
			"-matview", bad); err == nil {
			t.Errorf("bad -matview %q accepted", bad)
		}
	}
}

func TestCLIErrors(t *testing.T) {
	spec, whois, _ := writeTestdata(t)
	if _, _, err := runCLI(t, ""); err == nil {
		t.Error("missing -spec accepted")
	}
	if _, _, err := runCLI(t, "", "-spec", "/no/such/file.msl"); err == nil {
		t.Error("missing spec file accepted")
	}
	if _, _, err := runCLI(t, "", "-spec", spec, "-source", "malformed"); err == nil {
		t.Error("malformed -source accepted")
	}
	if _, _, err := runCLI(t, "", "-spec", spec, "-source", "whois="+whois,
		"-source", "cs=tcp:127.0.0.1:1", `X :- X:<a>@med.`); err == nil {
		t.Error("unreachable tcp source accepted")
	}
}

func TestBaseName(t *testing.T) {
	cases := map[string]string{
		"dir/file.csv": "file",
		"file.json":    "file",
		"noext":        "noext",
		"a/b/c.tar.gz": "c.tar",
		".hidden":      ".hidden",
		"dir.v2/data":  "data",
	}
	for in, want := range cases {
		if got := baseName(in); got != want {
			t.Errorf("baseName(%q) = %q, want %q", in, got, want)
		}
	}
}
