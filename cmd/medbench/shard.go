package main

// The sharded scatter/gather benchmark (-shard, the BENCH_7.json
// artifact): the same staff population is hash-partitioned across 1, 2,
// and 4 member sources, each served over TCP through the framed remote
// protocol, and a mediator over the partitioned composites serves a
// closed-loop client mix of routed point lookups and scattered scans.
// Shard count 1 is the single-source baseline; the higher counts show
// what partition routing and concurrent scatters buy (or cost) through
// the multiplexed remote clients. The artifact also carries the framing
// evidence: a frame log from one member connection with responses
// arriving out of send order, and a warm trace with the cached-plan
// annotation.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"medmaker"
	"medmaker/internal/metrics"
	"medmaker/internal/workload"
)

// shardConfig parameterizes the sharded serving benchmark.
type shardConfig struct {
	Path     string
	Shards   []int
	Clients  int
	Duration time.Duration
	Persons  int
	Distinct int
	// ScanEvery makes every k'th query a scatter (an unrouted scan);
	// the rest are routed point lookups.
	ScanEvery int
	Seed      int64
}

// shardLevel is one shard-count row of the BENCH_7 artifact.
type shardLevel struct {
	Shards     int     `json:"shards"`
	Queries    int64   `json:"queries"`
	QPS        float64 `json:"qps"`
	P50Micros  int64   `json:"p50_us"`
	P95Micros  int64   `json:"p95_us"`
	P99Micros  int64   `json:"p99_us"`
	Routed     int64   `json:"shard_routed"`
	Scatters   int64   `json:"shard_scatters"`
	Exchanges  int64   `json:"shard_exchanges"`
	FramesSent int64   `json:"frames_sent"`
	FramesRecv int64   `json:"frames_recv"`
	ElapsedSec float64 `json:"elapsed_sec"`
}

// frameEvent mirrors remote.FrameEvent for the JSON artifact.
type frameEvent struct {
	Seq uint64 `json:"seq"`
	Dir string `json:"dir"`
	ID  uint64 `json:"id"`
}

// frameEvidence is a captured frame log from one member connection.
type frameEvidence struct {
	Member      string       `json:"member"`
	Interleaved bool         `json:"interleaved"`
	Events      []frameEvent `json:"events"`
}

// shardFile is the BENCH_7.json shape.
type shardFile struct {
	Tool       string                 `json:"tool"`
	GoMaxProcs int                    `json:"gomaxprocs"`
	Persons    int                    `json:"persons"`
	Clients    int                    `json:"clients"`
	Distinct   int                    `json:"distinct"`
	ScanEvery  int                    `json:"scan_every"`
	DurationMS int64                  `json:"duration_ms_per_level"`
	Seed       int64                  `json:"seed"`
	Levels     []shardLevel           `json:"levels"`
	Frames     *frameEvidence         `json:"frames"`
	WarmTrace  *medmaker.TraceSummary `json:"warm_trace"`
}

// shardDeployment is one running sharded topology: remote servers for
// every member, framed clients dialed to them, and the mediator over the
// partitioned composites.
type shardDeployment struct {
	med     *medmaker.Mediator
	staff   *workload.ShardedStaff
	servers []*medmaker.RemoteServer
	clients []*medmaker.RemoteClient
	// whois0 is the member client the frame evidence is captured on.
	whois0 *medmaker.RemoteClient
}

func (d *shardDeployment) close() {
	for _, c := range d.clients {
		c.Close()
	}
	for _, s := range d.servers {
		s.Close()
	}
}

// deployShards stands up the n-shard topology: the population is
// partitioned by workload.GenStaffSharded, every member extent is served
// over TCP, and the mediator integrates the two partitioned composites.
func deployShards(cfg shardConfig, n int) *shardDeployment {
	d := &shardDeployment{}
	d.staff = must(workload.GenStaffSharded(workload.StaffConfig{
		Persons: cfg.Persons, Departments: 4, EmployeeFraction: 0.5, Irregularity: 0.3, Seed: cfg.Seed,
	}, n))
	dialMember := func(src medmaker.Source) *medmaker.RemoteClient {
		addr, srv := mustServe(src)
		d.servers = append(d.servers, srv)
		client := must(medmaker.DialSource(addr, 30*time.Second))
		d.clients = append(d.clients, client)
		return client
	}
	csMembers := make([]medmaker.Source, n)
	whoisMembers := make([]medmaker.Source, n)
	for i := 0; i < n; i++ {
		csMembers[i] = dialMember(medmaker.NewRelationalWrapper(fmt.Sprintf("cs%d", i), d.staff.DBs[i]))
		wc := dialMember(medmaker.NewRecordWrapper(fmt.Sprintf("whois%d", i), d.staff.Stores[i]))
		whoisMembers[i] = wc
		if i == 0 {
			d.whois0 = wc
		}
	}
	csPart := must(medmaker.NewPartitionedSource("cs", workload.CSShardKey, csMembers...))
	whoisPart := must(medmaker.NewPartitionedSource("whois", workload.WhoisShardKey, whoisMembers...))
	d.med = must(medmaker.New(medmaker.Config{
		Name: "med", Spec: specMS1,
		Sources:   []medmaker.Source{csPart, whoisPart},
		PlanCache: &medmaker.PlanCacheOptions{MaxEntries: 4096},
	}))
	return d
}

// shardScanQuery is the unrouted query of the mix: nothing binds the
// partition key, so the whois conjunct scatters to every member.
const shardScanQuery = `S :- S:<cs_person {<year 3>}>@med.`

// runShard measures the sharded topologies and writes BENCH_7.json.
func runShard(cfg shardConfig) {
	snap := shardFile{
		Tool: "medbench -shard", GoMaxProcs: runtime.GOMAXPROCS(0),
		Persons: cfg.Persons, Clients: cfg.Clients, Distinct: cfg.Distinct,
		ScanEvery: cfg.ScanEvery, DurationMS: cfg.Duration.Milliseconds(), Seed: cfg.Seed,
	}
	for li, n := range cfg.Shards {
		d := deployShards(cfg, n)
		level := measureShardLevel(cfg, d, n)
		if li == len(cfg.Shards)-1 {
			// Evidence from the largest topology: interleaved frames on one
			// member connection, and a warm cached-plan trace.
			snap.Frames = captureFrames(d)
			snap.WarmTrace = captureWarmTrace(d)
		}
		d.close()
		snap.Levels = append(snap.Levels, level)
		fmt.Printf("shards=%-2d qps=%8.0f p50=%6dus p95=%6dus p99=%6dus routed=%d scatters=%d frames=%d/%d\n",
			n, level.QPS, level.P50Micros, level.P95Micros, level.P99Micros,
			level.Routed, level.Scatters, level.FramesSent, level.FramesRecv)
	}
	data := must(json.MarshalIndent(snap, "", "  "))
	data = append(data, '\n')
	if err := os.WriteFile(cfg.Path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "medbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d shard levels)\n", cfg.Path, len(snap.Levels))
}

// measureShardLevel drives the deployment from closed-loop clients for
// the configured window.
func measureShardLevel(cfg shardConfig, d *shardDeployment, n int) shardLevel {
	// Warm the plan cache so every level measures steady-state serving.
	warmGen := workload.NewQueryGen(workload.QueryGenConfig{
		Names: d.staff.Names, Distinct: cfg.Distinct, Seed: cfg.Seed,
	})
	for i := 0; i < cfg.Distinct && i < len(d.staff.Names); i++ {
		must(query(d.med, warmGen.QueryFor(d.staff.Names[i])))
	}
	must(query(d.med, shardScanQuery))

	before := metrics.Default().Snapshot()
	latencies := make([][]time.Duration, cfg.Clients)
	errs := make([]error, cfg.Clients)
	deadline := time.Now().Add(cfg.Duration)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			gen := workload.NewQueryGen(workload.QueryGenConfig{
				Names: d.staff.Names, Distinct: cfg.Distinct, Seed: cfg.Seed + int64(i),
			})
			for k := 0; time.Now().Before(deadline); k++ {
				q := gen.Next()
				if cfg.ScanEvery > 0 && k%cfg.ScanEvery == cfg.ScanEvery-1 {
					q = shardScanQuery
				}
				t0 := time.Now()
				if _, err := query(d.med, q); err != nil {
					errs[i] = fmt.Errorf("client %d: %w", i, err)
					return
				}
				latencies[i] = append(latencies[i], time.Since(t0))
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			fmt.Fprintf(os.Stderr, "medbench: %v\n", err)
			os.Exit(1)
		}
	}
	after := metrics.Default().Snapshot()
	var merged []time.Duration
	for _, ls := range latencies {
		merged = append(merged, ls...)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
	return shardLevel{
		Shards: n, Queries: int64(len(merged)),
		QPS:        float64(len(merged)) / elapsed.Seconds(),
		P50Micros:  exactQuantile(merged, 0.50).Microseconds(),
		P95Micros:  exactQuantile(merged, 0.95).Microseconds(),
		P99Micros:  exactQuantile(merged, 0.99).Microseconds(),
		Routed:     after.Counter("shard.routed") - before.Counter("shard.routed"),
		Scatters:   after.Counter("shard.scatter") - before.Counter("shard.scatter"),
		Exchanges:  after.Counter("shard.exchanges") - before.Counter("shard.exchanges"),
		FramesSent: after.Counter("remote.frames.sent") - before.Counter("remote.frames.sent"),
		FramesRecv: after.Counter("remote.frames.recv") - before.Counter("remote.frames.recv"),
		ElapsedSec: elapsed.Seconds(),
	}
}

// captureFrames records the multiplexing evidence on the whois0 member
// connection: a full-extent scan ships first, point lookups overtake it,
// and their responses come back before the scan's — out of send order on
// the one shared connection.
func captureFrames(d *shardDeployment) *frameEvidence {
	log := d.whois0.EnableFrameLog(256)
	scan := must(medmaker.ParseQuery(`X :- X:<person {<dept D>}>@whois0.`))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		d.whois0.Query(scan)
	}()
	time.Sleep(5 * time.Millisecond)
	var name string
	for _, full := range d.staff.Names {
		if workload.ShardOf(full, len(d.staff.Stores)) == 0 {
			name = full
			break
		}
	}
	point := must(medmaker.ParseQuery(fmt.Sprintf(`X :- X:<person {<name '%s'>}>@whois0.`, name)))
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.whois0.Query(point)
		}()
	}
	wg.Wait()
	ev := &frameEvidence{Member: "whois0", Interleaved: log.Interleaved()}
	for _, e := range log.Events() {
		ev.Events = append(ev.Events, frameEvent{Seq: e.Seq, Dir: e.Dir, ID: e.ID})
	}
	return ev
}

// captureWarmTrace runs one point query twice and returns the second,
// plan-cache-warm trace.
func captureWarmTrace(d *shardDeployment) *medmaker.TraceSummary {
	gen := workload.NewQueryGen(workload.QueryGenConfig{Names: d.staff.Names, Distinct: 16, Seed: 1})
	rule := must(medmaker.ParseQuery(gen.Next()))
	ctx := context.Background()
	if _, _, err := d.med.QueryTraced(ctx, rule); err != nil {
		fmt.Fprintf(os.Stderr, "medbench: %v\n", err)
		os.Exit(1)
	}
	_, qt, err := d.med.QueryTraced(ctx, rule)
	if err != nil {
		fmt.Fprintf(os.Stderr, "medbench: %v\n", err)
		os.Exit(1)
	}
	warm := qt.Snapshot()
	return &warm
}
