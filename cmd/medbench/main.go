// Command medbench regenerates every figure-level artifact of the
// MedMaker paper and measures every performance claim, printing the rows
// recorded in EXPERIMENTS.md. Run with -figures to emit the structural
// artifacts (Figures 2.2–2.4, R2, τ1/τ2, the Figure 3.6 graph and trace),
// with -perf for the measured comparisons, or with neither for both.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"medmaker"
	"medmaker/internal/handcoded"
	"medmaker/internal/oem"
	"medmaker/internal/workload"
)

const specMS1 = `
<cs_person {<name N> <relation R> Rest1 Rest2}> :-
    <person {<name N> <dept 'CS'> <relation R> | Rest1}>@whois
    AND <R {<first_name FN> <last_name LN> | Rest2}>@cs
    AND decomp(N, LN, FN).

decomp(bound, free, free) by name_to_lnfn.
decomp(free, bound, bound) by lnfn_to_name.
`

// queryTimeout, when positive, bounds every measured query (-timeout);
// a hung or degenerate configuration then fails fast instead of wedging
// the whole benchmark run.
var queryTimeout time.Duration

// query answers q on med under the global -timeout deadline.
func query(med *medmaker.Mediator, q string) ([]*medmaker.Object, error) {
	ctx := context.Background()
	if queryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, queryTimeout)
		defer cancel()
	}
	return med.QueryStringContext(ctx, q)
}

func main() {
	figures := flag.Bool("figures", false, "emit only the structural figure artifacts")
	perf := flag.Bool("perf", false, "emit only the measured comparisons")
	reps := flag.Int("reps", 20, "timing repetitions per measurement (median reported)")
	snapshot := flag.String("snapshot", "", "write a JSON snapshot of the executor measurements (batching, caching, pipelining) to this file and exit")
	matviewOut := flag.String("matview", "", "write a JSON snapshot of the materialized-view measurements (live vs cold vs warm) to this file and exit")
	parallelOut := flag.String("parallel", "", "write a JSON snapshot of the columnar/morsel executor measurements (BENCH_1's E-BATCH and E-PIPE rows at parallelism 1 and GOMAXPROCS) to this file and exit")
	traceJSON := flag.String("trace-json", "", "run the paper's Q1 under EXPLAIN ANALYZE and write the structured trace (phases, per-node rows, source latency) as JSON to this file, then exit")
	serveOut := flag.String("serve", "", "write a JSON snapshot of the closed-loop multi-client serving measurements (latency quantiles and QPS vs client count over a zipfian workload, the BENCH_6.json artifact) to this file and exit")
	serveClients := flag.String("serve-clients", "1,4,16", "comma-separated client counts for -serve")
	serveDuration := flag.Duration("serve-duration", 2*time.Second, "measurement window per client count for -serve")
	servePersons := flag.Int("serve-persons", 100000, "population size for -serve")
	serveDistinct := flag.Int("serve-distinct", 2000, "distinct query templates for -serve (the plan-cache working set)")
	serveZipf := flag.Float64("serve-zipf", workload.DefaultSkew, "zipfian skew for -serve (> 1)")
	serveSeed := flag.Int64("serve-seed", 1, "base workload seed for -serve (client i uses seed+i)")
	serveWarm := flag.Bool("serve-warm", true, "prime the plan cache over the whole working set before measuring (-serve measures steady-state serving; disable to include cold-start compiles)")
	shardOut := flag.String("shard", "", "write a JSON snapshot of the sharded scatter/gather measurements (throughput and latency vs shard count through the multiplexed remote protocol, the BENCH_7.json artifact) to this file and exit")
	shardCounts := flag.String("shard-counts", "1,2,4", "comma-separated shard counts for -shard")
	shardClients := flag.Int("shard-clients", 8, "concurrent closed-loop clients for -shard")
	shardDuration := flag.Duration("shard-duration", 2*time.Second, "measurement window per shard count for -shard")
	shardPersons := flag.Int("shard-persons", 10000, "population size for -shard")
	shardDistinct := flag.Int("shard-distinct", 500, "distinct point-query templates for -shard")
	shardScanEvery := flag.Int("shard-scan-every", 64, "every k'th query per client is a scatter scan for -shard (0 disables scans)")
	shardSeed := flag.Int64("shard-seed", 1, "base workload seed for -shard (client i uses seed+i)")
	deltaOut := flag.String("delta", "", "write a JSON snapshot of the incremental view-maintenance measurements (change-feed delta application vs full rebuild per update rate, the BENCH_8.json artifact) to this file and exit")
	heteroOut := flag.String("hetero", "", "write a JSON snapshot of the heterogeneous source tier measurements (per-kind exchange latency, XML pushdown rows, streaming delta-maintenance rate, the BENCH_9.json artifact) to this file and exit")
	adaptiveOut := flag.String("adaptive", "", "write a JSON snapshot of the adaptive-optimizer measurements (heuristic vs feedback-driven join order, latency-aware replica routing, the BENCH_10.json artifact) to this file and exit; fails when the warmed optimizer is not >=2x faster or routing leaves >=10% of exchanges on the slow replica")
	flag.DurationVar(&queryTimeout, "timeout", 0, "per-query deadline for measured queries (e.g. 30s); 0 means none")
	flag.Parse()
	if *adaptiveOut != "" {
		runAdaptive(*reps, *adaptiveOut)
		return
	}
	if *heteroOut != "" {
		runHetero(*reps, *heteroOut)
		return
	}
	if *deltaOut != "" {
		runDelta(*reps, *deltaOut)
		return
	}
	if *shardOut != "" {
		runShard(shardConfig{
			Path: *shardOut, Shards: mustClients(*shardCounts), Clients: *shardClients,
			Duration: *shardDuration, Persons: *shardPersons, Distinct: *shardDistinct,
			ScanEvery: *shardScanEvery, Seed: *shardSeed,
		})
		return
	}
	if *serveOut != "" {
		runServe(serveConfig{
			Path: *serveOut, Clients: mustClients(*serveClients), Duration: *serveDuration,
			Persons: *servePersons, Distinct: *serveDistinct, Zipf: *serveZipf, Seed: *serveSeed,
			Warm: *serveWarm,
		})
		return
	}
	if *traceJSON != "" {
		runTraceJSON(*traceJSON)
		return
	}
	if *snapshot != "" {
		runSnapshot(*reps, *snapshot)
		return
	}
	if *matviewOut != "" {
		runMatview(*reps, *matviewOut)
		return
	}
	if *parallelOut != "" {
		runParallelSnapshot(*reps, *parallelOut)
		return
	}
	all := !*figures && !*perf
	if *figures || all {
		runFigures()
	}
	if *perf || all {
		runPerf(*reps)
	}
}

// paperSources builds the exact Section 2 population.
func paperSources() (*medmaker.RelationalWrapper, *medmaker.RecordWrapper) {
	db := medmaker.NewRelationalDB()
	emp := db.MustCreateTable(medmaker.RelationalSchema{
		Name: "employee",
		Columns: []medmaker.RelationalColumn{
			{Name: "first_name", Kind: oem.KindString},
			{Name: "last_name", Kind: oem.KindString},
			{Name: "title", Kind: oem.KindString},
			{Name: "reports_to", Kind: oem.KindString},
		},
	})
	emp.MustInsert("Joe", "Chung", "professor", "John Hennessy")
	stu := db.MustCreateTable(medmaker.RelationalSchema{
		Name: "student",
		Columns: []medmaker.RelationalColumn{
			{Name: "first_name", Kind: oem.KindString},
			{Name: "last_name", Kind: oem.KindString},
			{Name: "year", Kind: oem.KindInt},
		},
	})
	stu.MustInsert("Nick", "Naive", 3)
	store := medmaker.NewRecordStore()
	store.MustAdd(
		medmaker.Record{Kind: "person", Fields: []medmaker.RecordField{
			{Name: "name", Value: "Joe Chung"}, {Name: "dept", Value: "CS"},
			{Name: "relation", Value: "employee"}, {Name: "e_mail", Value: "chung@cs"},
		}},
		medmaker.Record{Kind: "person", Fields: []medmaker.RecordField{
			{Name: "name", Value: "Nick Naive"}, {Name: "dept", Value: "CS"},
			{Name: "relation", Value: "student"}, {Name: "year", Value: 3},
		}},
	)
	return medmaker.NewRelationalWrapper("cs", db), medmaker.NewRecordWrapper("whois", store)
}

func must[T any](v T, err error) T {
	if err != nil {
		fmt.Fprintf(os.Stderr, "medbench: %v\n", err)
		os.Exit(1)
	}
	return v
}

func runFigures() {
	cs, whois := paperSources()
	section := func(s string) { fmt.Printf("\n########## %s ##########\n", s) }

	section("F2.2: OEM object structure of the cs wrapper")
	fmt.Print(medmaker.FormatOEM(cs.Export()...))

	section("F2.3: OEM object structure of whois")
	fmt.Print(medmaker.FormatOEM(whois.Export()...))

	med := must(medmaker.New(medmaker.Config{
		Name: "med", Spec: specMS1, Sources: []medmaker.Source{cs, whois},
	}))

	section("Q1/R2: view expansion of query Q1")
	q1 := `JC :- JC:<cs_person {<name 'Joe Chung'>}>@med.`
	fmt.Println("query:", q1)
	fmt.Print(must(med.Explain(q1)))

	section("F3.6: datamerge graph execution trace for Q1")
	traced := must(medmaker.New(medmaker.Config{
		Name: "med", Spec: specMS1, Sources: []medmaker.Source{cs, whois}, Trace: os.Stdout,
	}))
	result := must(query(traced, q1))

	section("F2.4: the integrated cs_person object")
	fmt.Print(medmaker.FormatOEM(result...))

	section("Sec 3.3: tau1/tau2 push choices for the <year 3> query")
	q3 := `S :- S:<cs_person {<year 3>}>@med.`
	fmt.Println("query:", q3)
	_, logical, err := med.Plan(must(medmaker.ParseQuery(q3)))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(logical.String())
	fmt.Println("answer:")
	fmt.Print(medmaker.FormatOEM(must(query(med, q3))...))
}

// timeIt returns the median wall time of f over reps runs.
func timeIt(reps int, f func()) time.Duration {
	times := make([]time.Duration, reps)
	for i := range times {
		start := time.Now()
		f()
		times[i] = time.Since(start)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[reps/2]
}

type row struct {
	id, config, metric string
	value              time.Duration
}

func printRows(title string, rows []row) {
	fmt.Printf("\n== %s ==\n", title)
	w1, w2 := 0, 0
	for _, r := range rows {
		if len(r.config) > w1 {
			w1 = len(r.config)
		}
		if len(r.metric) > w2 {
			w2 = len(r.metric)
		}
	}
	for _, r := range rows {
		fmt.Printf("  %-8s %-*s  %-*s  %12v\n", r.id, w1, r.config, w2, r.metric, r.value)
	}
	if len(rows) >= 2 && rows[0].value > 0 {
		fmt.Printf("  ratio last/first: %.2fx\n", float64(rows[len(rows)-1].value)/float64(rows[0].value))
	}
}

func scaled(persons int, opts *medmaker.PlanOptions) (*medmaker.Mediator, *workload.Staff,
	*medmaker.RelationalWrapper, *medmaker.RecordWrapper) {
	staff := must(workload.GenStaff(workload.StaffConfig{
		Persons: persons, Departments: 4, EmployeeFraction: 0.5, Irregularity: 0.3, Seed: 1,
	}))
	cs := medmaker.NewRelationalWrapper("cs", staff.DB)
	whois := medmaker.NewRecordWrapper("whois", staff.Store)
	med := must(medmaker.New(medmaker.Config{
		Name: "med", Spec: specMS1, Sources: []medmaker.Source{cs, whois}, Plan: opts,
	}))
	return med, staff, cs, whois
}

func runPerf(reps int) {
	fmt.Println("\n################ measured comparisons ################")
	fmt.Printf("(median of %d runs each; shapes, not absolute numbers, are the result)\n", reps)

	// E-PUSH: pushdown ablation.
	{
		var rows []row
		for _, push := range []bool{true, false} {
			opts := medmaker.PlanOptions{PushConditions: push, Parameterize: push, DupElim: true}
			med, staff, _, _ := scaled(1000, &opts)
			q := fmt.Sprintf(`JC :- JC:<cs_person {<name %s>}>@med.`, oem.QuoteAtom(staff.Names[0]))
			d := timeIt(reps, func() { must(query(med, q)) })
			rows = append(rows, row{"E-PUSH", fmt.Sprintf("pushdown=%v", push), "selective Q1, 1000 persons", d})
		}
		printRows("E-PUSH: push selections down vs mediator-side filtering", rows)
	}

	// E-JOIN: order strategies.
	{
		var rows []row
		for _, m := range []struct {
			name  string
			order medmaker.OrderMode
			warm  bool
		}{{"heuristic", medmaker.OrderHeuristic, false}, {"reversed", medmaker.OrderReversed, false}, {"stats-warm", medmaker.OrderStats, true}} {
			opts := medmaker.DefaultPlanOptions()
			opts.Order = m.order
			med, staff, _, _ := scaled(500, &opts)
			q := fmt.Sprintf(`JC :- JC:<cs_person {<name %s>}>@med.`, oem.QuoteAtom(staff.Names[0]))
			if m.warm {
				must(query(med, q))
			}
			d := timeIt(reps, func() { must(query(med, q)) })
			rows = append(rows, row{"E-JOIN", m.name, "selective Q1, 500 persons", d})
		}
		printRows("E-JOIN: join-order strategy (conditions-outermost heuristic of Sec 3.5)", rows)
	}

	// E-JOIN (2): parameterized queries vs independent fetch + join.
	{
		var rows []row
		for _, param := range []bool{true, false} {
			opts := medmaker.PlanOptions{PushConditions: true, Parameterize: param, DupElim: true}
			med, _, _, _ := scaled(300, &opts)
			q := `P :- P:<cs_person {<name N>}>@med.`
			d := timeIt(reps, func() { must(query(med, q)) })
			rows = append(rows, row{"E-JOIN", fmt.Sprintf("parameterized=%v", param), "full view, 300 persons", d})
		}
		printRows("E-JOIN: parameterized query node vs hash-join baseline", rows)
	}

	// E-CAP: capability-limited sources.
	{
		var rows []row
		for _, limited := range []bool{false, true} {
			staff := must(workload.GenStaff(workload.StaffConfig{
				Persons: 500, Departments: 4, EmployeeFraction: 0.5, Irregularity: 0.3, Seed: 1,
			}))
			var sources []medmaker.Source
			cs := medmaker.NewRelationalWrapper("cs", staff.DB)
			whois := medmaker.NewRecordWrapper("whois", staff.Store)
			if limited {
				sources = []medmaker.Source{
					&medmaker.LimitedSource{Inner: cs, Caps: medmaker.Capabilities{MultiPattern: true}},
					&medmaker.LimitedSource{Inner: whois, Caps: medmaker.Capabilities{MultiPattern: true}},
				}
			} else {
				sources = []medmaker.Source{cs, whois}
			}
			med := must(medmaker.New(medmaker.Config{Name: "med", Spec: specMS1, Sources: sources}))
			q := fmt.Sprintf(`JC :- JC:<cs_person {<name %s>}>@med.`, oem.QuoteAtom(staff.Names[0]))
			d := timeIt(reps, func() { must(query(med, q)) })
			cfg := "fully capable sources"
			if limited {
				cfg = "condition-blind sources"
			}
			rows = append(rows, row{"E-CAP", cfg, "selective Q1, 500 persons", d})
		}
		printRows("E-CAP: capabilities-based rewriting cost (Sec 3.5 / [PGH])", rows)
	}

	// E-WILD: wildcard vs top-level as depth grows.
	{
		var rows []row
		for _, depth := range []int{2, 4, 6} {
			lib := workload.GenDeepLibrary(3, depth)
			src := medmaker.NewOEMSource("lib")
			if err := src.Add(lib); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			med := must(medmaker.New(medmaker.Config{
				Name: "med", Spec: `<found T> :- <%title T>@lib.`, Sources: []medmaker.Source{src},
			}))
			d := timeIt(reps, func() { must(query(med, `X :- X:<found T>@med.`)) })
			rows = append(rows, row{"E-WILD", fmt.Sprintf("wildcard depth=%d (3^%d titles)", depth, depth), "search all titles", d})
		}
		printRows("E-WILD: wildcard search cost grows with the object graph (Sec 2)", rows)
	}

	// E-HAND: declarative vs hand-coded.
	{
		var rows []row
		med, staff, cs, whois := scaled(300, nil)
		name := staff.Names[0]
		q := fmt.Sprintf(`JC :- JC:<cs_person {<name %s>}>@med.`, oem.QuoteAtom(name))
		d := timeIt(reps, func() { must(query(med, q)) })
		rows = append(rows, row{"E-HAND", "declarative (MSI)", "selective Q1, 300 persons", d})
		hc := handcoded.New(cs, whois)
		d2 := timeIt(reps, func() { must(hc.CSPersonByName(name)) })
		rows = append(rows, row{"E-HAND", "hand-coded Go mediator", "selective Q1, 300 persons", d2})
		fmt.Println()
		printRows("E-HAND: declarative interpretation overhead vs hard-coded mediator (Sec 1.2)", rows)
		fmt.Printf("  interpretation overhead: %.2fx\n", float64(d)/float64(d2))
	}

	// E-DUP: duplicate elimination.
	{
		var rows []row
		for _, dup := range []bool{false, true} {
			opts := medmaker.PlanOptions{PushConditions: true, Parameterize: true, DupElim: dup}
			med, _, _, _ := scaled(300, &opts)
			q := `S :- S:<cs_person {<year 3>}>@med.`
			objs := must(query(med, q))
			d := timeIt(reps, func() { must(query(med, q)) })
			rows = append(rows, row{"E-DUP", fmt.Sprintf("dupelim=%v (%d result objects)", dup, len(objs)), "year query, 300 persons", d})
		}
		printRows("E-DUP: duplicate elimination (footnote 9: absent in the paper's impl)", rows)
	}

	// F1.1: local vs remote wrappers.
	{
		var rows []row
		med, staff, cs, whois := scaled(200, nil)
		q := fmt.Sprintf(`JC :- JC:<cs_person {<name %s>}>@med.`, oem.QuoteAtom(staff.Names[0]))
		d := timeIt(reps, func() { must(query(med, q)) })
		rows = append(rows, row{"F1.1", "in-process wrappers", "selective Q1, 200 persons", d})
		csAddr, csSrv := mustServe(cs)
		defer csSrv.Close()
		whoisAddr, whoisSrv := mustServe(whois)
		defer whoisSrv.Close()
		csR := must(medmaker.DialSource(csAddr, 5*time.Second))
		defer csR.Close()
		whoisR := must(medmaker.DialSource(whoisAddr, 5*time.Second))
		defer whoisR.Close()
		medR := must(medmaker.New(medmaker.Config{
			Name: "med", Spec: specMS1, Sources: []medmaker.Source{csR, whoisR},
		}))
		d2 := timeIt(reps, func() { must(query(medR, q)) })
		rows = append(rows, row{"F1.1", "TCP wrappers (loopback)", "selective Q1, 200 persons", d2})
		printRows("F1.1: the distributed TSIMMIS deployment", rows)
	}

	fmt.Println("\ndone; paste the tables above into EXPERIMENTS.md when refreshing results.")
	_ = strings.TrimSpace("")
}

// snapshotResult is one measurement row of the JSON snapshot: the median
// wall time of the query plus the engine's own round-trip counters for a
// single run, so the batching claim is recorded as counts, not only as
// timings.
type snapshotResult struct {
	ID        string `json:"id"`
	Config    string `json:"config"`
	Metric    string `json:"metric"`
	NsPerOp   int64  `json:"ns_per_op"`
	Exchanges int    `json:"exchanges,omitempty"`
	Queries   int    `json:"queries,omitempty"`
	CacheHits int    `json:"cache_hits,omitempty"`
}

type snapshotFile struct {
	Tool       string           `json:"tool"`
	Reps       int              `json:"reps"`
	GoMaxProcs int              `json:"gomaxprocs,omitempty"`
	Results    []snapshotResult `json:"results"`
}

// measure runs the query once to read the per-run exchange/query deltas
// off the mediator's statistics store, then times it.
func measure(reps int, med *medmaker.Mediator, q string) (ns int64, exchanges, queries, hits int) {
	st := med.QueryStats()
	cacheHits := func() (n int) {
		for _, src := range med.Sources() {
			h, _ := st.CacheCounts(src)
			n += h
		}
		return n
	}
	e0, q0, h0 := st.TotalExchanges(), st.TotalQueries(), cacheHits()
	must(query(med, q))
	e1, q1, h1 := st.TotalExchanges(), st.TotalQueries(), cacheHits()
	d := timeIt(reps, func() { must(query(med, q)) })
	return d.Nanoseconds(), e1 - e0, q1 - q0, h1 - h0
}

// runSnapshot measures the new executor knobs — parameterized-query
// batching, the answer cache, and the pipelined executor — and writes the
// results as JSON (the BENCH_1.json artifact checked into the repo).
func runSnapshot(reps int, path string) {
	snap := snapshotFile{Tool: "medbench -snapshot", Reps: reps}
	fullView := `P :- P:<cs_person {<name N>}>@med.`
	opts := medmaker.PlanOptions{PushConditions: true, Parameterize: true, DupElim: true}

	// E-BATCH: per-tuple vs batched parameterized queries, 300 persons.
	for _, batch := range []int{1, medmaker.DefaultQueryBatch} {
		staff := must(workload.GenStaff(workload.StaffConfig{
			Persons: 300, Departments: 4, EmployeeFraction: 0.5, Irregularity: 0.3, Seed: 1,
		}))
		med := must(medmaker.New(medmaker.Config{
			Name: "med", Spec: specMS1,
			Sources: []medmaker.Source{
				medmaker.NewRelationalWrapper("cs", staff.DB),
				medmaker.NewRecordWrapper("whois", staff.Store),
			},
			Plan: &opts, QueryBatch: batch,
		}))
		ns, ex, qs, _ := measure(reps, med, fullView)
		snap.Results = append(snap.Results, snapshotResult{
			ID: "E-BATCH", Config: fmt.Sprintf("batch=%d", batch),
			Metric: "full view, 300 persons", NsPerOp: ns, Exchanges: ex, Queries: qs,
		})
	}

	// E-CACHE: answer cache off vs on (warm), 300 persons.
	for _, cached := range []bool{false, true} {
		staff := must(workload.GenStaff(workload.StaffConfig{
			Persons: 300, Departments: 4, EmployeeFraction: 0.5, Irregularity: 0.3, Seed: 1,
		}))
		cfg := medmaker.Config{
			Name: "med", Spec: specMS1,
			Sources: []medmaker.Source{
				medmaker.NewRelationalWrapper("cs", staff.DB),
				medmaker.NewRecordWrapper("whois", staff.Store),
			},
			Plan: &opts,
		}
		label := "cache=off"
		if cached {
			cfg.Cache = &medmaker.CacheOptions{}
			label = "cache=on,warm"
		}
		med := must(medmaker.New(cfg))
		must(query(med, fullView)) // warm (a no-op for the uncached run)
		ns, ex, qs, hits := measure(reps, med, fullView)
		snap.Results = append(snap.Results, snapshotResult{
			ID: "E-CACHE", Config: label,
			Metric: "repeated full view, 300 persons", NsPerOp: ns, Exchanges: ex, Queries: qs, CacheHits: hits,
		})
	}

	// E-PIPE: materialized sequential vs pipelined parallel executor.
	for _, pipelined := range []bool{false, true} {
		staff := must(workload.GenStaff(workload.StaffConfig{
			Persons: 300, Departments: 4, EmployeeFraction: 0.5, Irregularity: 0.3, Seed: 1,
		}))
		cfg := medmaker.Config{
			Name: "med", Spec: specMS1,
			Sources: []medmaker.Source{
				medmaker.NewRelationalWrapper("cs", staff.DB),
				medmaker.NewRecordWrapper("whois", staff.Store),
			},
			Plan: &opts, QueryBatch: 1,
		}
		label := "sequential"
		if pipelined {
			cfg.Pipeline = true
			cfg.Parallelism = 8
			label = "pipelined,workers=8"
		}
		med := must(medmaker.New(cfg))
		ns, ex, qs, _ := measure(reps, med, fullView)
		snap.Results = append(snap.Results, snapshotResult{
			ID: "E-PIPE", Config: label,
			Metric: "full view, 300 persons", NsPerOp: ns, Exchanges: ex, Queries: qs,
		})
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "medbench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "medbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d measurements)\n", path, len(snap.Results))
}

// runParallelSnapshot measures the columnar executor under explicit
// parallelism degrees and writes the results as JSON (the BENCH_5.json
// artifact checked into the repo). The rows mirror BENCH_1's E-BATCH and
// E-PIPE full-view rows — same workload, same knobs — with the morsel
// worker count pinned to 1 (the serial floor: it must not regress the
// pre-columnar numbers) and to GOMAXPROCS (the default degree, where the
// ≥1.5x target over BENCH_1 is measured).
func runParallelSnapshot(reps int, path string) {
	snap := snapshotFile{Tool: "medbench -parallel", Reps: reps, GoMaxProcs: runtime.GOMAXPROCS(0)}
	fullView := `P :- P:<cs_person {<name N>}>@med.`
	opts := medmaker.PlanOptions{PushConditions: true, Parameterize: true, DupElim: true}
	mk := func(batch, par int, pipeline bool) *medmaker.Mediator {
		staff := must(workload.GenStaff(workload.StaffConfig{
			Persons: 300, Departments: 4, EmployeeFraction: 0.5, Irregularity: 0.3, Seed: 1,
		}))
		return must(medmaker.New(medmaker.Config{
			Name: "med", Spec: specMS1,
			Sources: []medmaker.Source{
				medmaker.NewRelationalWrapper("cs", staff.DB),
				medmaker.NewRecordWrapper("whois", staff.Store),
			},
			Plan: &opts, QueryBatch: batch, Parallelism: par, Pipeline: pipeline,
		}))
	}
	degrees := []int{1, runtime.GOMAXPROCS(0)}
	if degrees[1] == 1 {
		degrees = degrees[:1] // single-CPU host: the two degrees coincide
	}
	for _, par := range degrees {
		for _, batch := range []int{1, medmaker.DefaultQueryBatch} {
			ns, ex, qs, _ := measure(reps, mk(batch, par, false), fullView)
			snap.Results = append(snap.Results, snapshotResult{
				ID: "E-BATCH", Config: fmt.Sprintf("batch=%d,par=%d", batch, par),
				Metric: "full view, 300 persons", NsPerOp: ns, Exchanges: ex, Queries: qs,
			})
		}
	}
	for _, par := range degrees {
		ns, ex, qs, _ := measure(reps, mk(1, par, false), fullView)
		snap.Results = append(snap.Results, snapshotResult{
			ID: "E-PIPE", Config: fmt.Sprintf("sequential,par=%d", par),
			Metric: "full view, 300 persons", NsPerOp: ns, Exchanges: ex, Queries: qs,
		})
		ns, ex, qs, _ = measure(reps, mk(1, par, true), fullView)
		snap.Results = append(snap.Results, snapshotResult{
			ID: "E-PIPE", Config: fmt.Sprintf("pipelined,par=%d", par),
			Metric: "full view, 300 persons", NsPerOp: ns, Exchanges: ex, Queries: qs,
		})
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "medbench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "medbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d measurements)\n", path, len(snap.Results))
}

// runMatview measures the materialized-view serving path and writes the
// results as JSON (the BENCH_4.json artifact checked into the repo).
// Three configurations answer the same repeated selective query over the
// same population: live (no materialization, the baseline), cold (the
// first matview query, which pays the extent build), and warm (every
// later matview query, served from the extent with zero exchanges —
// recorded in the Exchanges column, which must be 0).
func runMatview(reps int, path string) {
	snap := snapshotFile{Tool: "medbench -matview", Reps: reps}
	const persons = 300
	mkMed := func(materialize bool) (*medmaker.Mediator, string) {
		staff := must(workload.GenStaff(workload.StaffConfig{
			Persons: persons, Departments: 4, EmployeeFraction: 0.5, Irregularity: 0.3, Seed: 1,
		}))
		cfg := medmaker.Config{
			Name: "med", Spec: specMS1,
			Sources: []medmaker.Source{
				medmaker.NewRelationalWrapper("cs", staff.DB),
				medmaker.NewRecordWrapper("whois", staff.Store),
			},
		}
		if materialize {
			cfg.Materialize = &medmaker.MatViewOptions{Views: []medmaker.MatView{{Label: "cs_person"}}}
		}
		med := must(medmaker.New(cfg))
		q := fmt.Sprintf(`JC :- JC:<cs_person {<name %s>}>@med.`, oem.QuoteAtom(staff.Names[0]))
		return med, q
	}
	metric := fmt.Sprintf("repeated selective Q1, %d persons", persons)

	// Live baseline: every repetition re-expands against the sources.
	med, q := mkMed(false)
	ns, ex, qs, _ := measure(reps, med, q)
	snap.Results = append(snap.Results, snapshotResult{
		ID: "E-MATVIEW", Config: "live", Metric: metric, NsPerOp: ns, Exchanges: ex, Queries: qs,
	})

	// Cold: the first matview query pays the synchronous extent build.
	med, q = mkMed(true)
	st := med.QueryStats()
	e0, q0 := st.TotalExchanges(), st.TotalQueries()
	start := time.Now()
	must(query(med, q))
	coldNs := time.Since(start).Nanoseconds()
	snap.Results = append(snap.Results, snapshotResult{
		ID: "E-MATVIEW", Config: "cold", Metric: "first matview query (includes build), " + metric,
		NsPerOp: coldNs, Exchanges: st.TotalExchanges() - e0, Queries: st.TotalQueries() - q0,
	})

	// Warm: served from the extent; the exchange delta must be zero.
	ns, ex, qs, _ = measure(reps, med, q)
	snap.Results = append(snap.Results, snapshotResult{
		ID: "E-MATVIEW", Config: "warm", Metric: metric, NsPerOp: ns, Exchanges: ex, Queries: qs,
	})
	if ex != 0 {
		fmt.Fprintf(os.Stderr, "medbench: warm matview query performed %d exchanges, want 0\n", ex)
		os.Exit(1)
	}
	if mv := med.MatViewStats(); mv.Hits == 0 {
		fmt.Fprintf(os.Stderr, "medbench: no matview hits recorded: %+v\n", mv)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "medbench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "medbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d measurements)\n", path, len(snap.Results))
}

// runTraceJSON answers the paper's Q1 on the Section 2 population with
// tracing on and writes the trace snapshot as JSON — the machine-readable
// counterpart of the Figure 3.6 execution trace.
func runTraceJSON(path string) {
	cs, whois := paperSources()
	med := must(medmaker.New(medmaker.Config{
		Name: "med", Spec: specMS1, Sources: []medmaker.Source{cs, whois},
	}))
	q1 := `JC :- JC:<cs_person {<name 'Joe Chung'>}>@med.`
	rule := must(medmaker.ParseQuery(q1))
	ctx := context.Background()
	if queryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, queryTimeout)
		defer cancel()
	}
	res, qt, err := med.QueryTraced(ctx, rule)
	if err != nil {
		fmt.Fprintf(os.Stderr, "medbench: %v\n", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(qt.Snapshot(), "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "medbench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "medbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d result objects)\n", path, len(res.Objects))
}

// serveConfig parameterizes the closed-loop serving benchmark.
type serveConfig struct {
	Path     string
	Clients  []int
	Duration time.Duration
	Persons  int
	Distinct int
	Zipf     float64
	Seed     int64
	Warm     bool
}

// serveLevel is one client-count row of the BENCH_6 artifact. Latency
// quantiles are exact (computed from every recorded latency, not from
// histogram buckets) because the closed loop keeps all samples in memory.
type serveLevel struct {
	Clients    int     `json:"clients"`
	Queries    int64   `json:"queries"`
	QPS        float64 `json:"qps"`
	P50Micros  int64   `json:"p50_us"`
	P95Micros  int64   `json:"p95_us"`
	P99Micros  int64   `json:"p99_us"`
	CacheHits  int64   `json:"plancache_hits"`
	CacheMiss  int64   `json:"plancache_misses"`
	HitRate    float64 `json:"plancache_hit_rate"`
	ElapsedSec float64 `json:"elapsed_sec"`
}

// serveFile is the BENCH_6.json shape: per-client-count throughput and
// latency over a shared mediator, plus the warm-plan trace evidence that
// a cache hit skips parse/expand/plan work.
type serveFile struct {
	Tool       string                 `json:"tool"`
	GoMaxProcs int                    `json:"gomaxprocs"`
	Persons    int                    `json:"persons"`
	Distinct   int                    `json:"distinct"`
	Zipf       float64                `json:"zipf"`
	Seed       int64                  `json:"seed"`
	DurationMS int64                  `json:"duration_ms_per_level"`
	Warm       bool                   `json:"warmed"`
	Levels     []serveLevel           `json:"levels"`
	WarmTrace  *medmaker.TraceSummary `json:"warm_trace"`
}

// mustClients parses the -serve-clients list ("1,4,16").
func mustClients(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "medbench: bad -serve-clients %q\n", s)
			os.Exit(1)
		}
		out = append(out, n)
	}
	return out
}

// exactQuantile returns the nearest-rank quantile of a sorted slice.
func exactQuantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// runServe drives one shared mediator from N closed-loop clients — each
// issues its next query as soon as the previous answer lands — over a
// zipfian-skewed selective workload, and writes QPS plus exact
// p50/p95/p99 latency per client count (the BENCH_6.json artifact). The
// answer cache stays off so every request exercises the serving path the
// plan cache accelerates: parse, plan-cache probe, execute.
func runServe(cfg serveConfig) {
	staff := must(workload.GenStaff(workload.StaffConfig{
		Persons: cfg.Persons, Departments: 4, EmployeeFraction: 0.5, Irregularity: 0.3, Seed: 1,
	}))
	med := must(medmaker.New(medmaker.Config{
		Name: "med", Spec: specMS1,
		Sources: []medmaker.Source{
			medmaker.NewRelationalWrapper("cs", staff.DB),
			medmaker.NewRecordWrapper("whois", staff.Store),
		},
		PlanCache: &medmaker.PlanCacheOptions{MaxEntries: 4096},
	}))
	snap := serveFile{
		Tool: "medbench -serve", GoMaxProcs: runtime.GOMAXPROCS(0),
		Persons: cfg.Persons, Distinct: cfg.Distinct, Zipf: cfg.Zipf, Seed: cfg.Seed,
		DurationMS: cfg.Duration.Milliseconds(), Warm: cfg.Warm,
	}

	distinct := cfg.Distinct
	if distinct <= 0 || distinct > len(staff.Names) {
		distinct = len(staff.Names)
	}
	if cfg.Warm {
		// Every client's stream draws from Names[:distinct] (seeds only
		// reshuffle which of them are hot), so one pass over that prefix
		// primes the plan cache against the whole workload and the levels
		// below measure steady-state serving, not cold-start compiles.
		warmGen := workload.NewQueryGen(workload.QueryGenConfig{
			Names: staff.Names, Distinct: distinct, Skew: cfg.Zipf, Seed: cfg.Seed,
		})
		warmStart := time.Now()
		for _, name := range staff.Names[:distinct] {
			must(query(med, warmGen.QueryFor(name)))
		}
		fmt.Printf("warmed %d plans in %v\n", distinct, time.Since(warmStart).Round(time.Millisecond))
	}

	for _, clients := range cfg.Clients {
		base := med.PlanCacheStats()
		latencies := make([][]time.Duration, clients)
		errs := make([]error, clients)
		deadline := time.Now().Add(cfg.Duration)
		start := time.Now()
		var wg sync.WaitGroup
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				gen := workload.NewQueryGen(workload.QueryGenConfig{
					Names: staff.Names, Distinct: cfg.Distinct, Skew: cfg.Zipf,
					Seed: cfg.Seed + int64(i),
				})
				for time.Now().Before(deadline) {
					q := gen.Next()
					t0 := time.Now()
					if _, err := query(med, q); err != nil {
						errs[i] = fmt.Errorf("client %d: %w", i, err)
						return
					}
					latencies[i] = append(latencies[i], time.Since(t0))
				}
			}(i)
		}
		wg.Wait()
		elapsed := time.Since(start)
		for _, err := range errs {
			if err != nil {
				fmt.Fprintf(os.Stderr, "medbench: %v\n", err)
				os.Exit(1)
			}
		}
		var merged []time.Duration
		for _, ls := range latencies {
			merged = append(merged, ls...)
		}
		sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
		st := med.PlanCacheStats()
		hits, misses := int64(st.Hits-base.Hits), int64(st.Misses-base.Misses)
		level := serveLevel{
			Clients: clients, Queries: int64(len(merged)),
			QPS:       float64(len(merged)) / elapsed.Seconds(),
			P50Micros: exactQuantile(merged, 0.50).Microseconds(),
			P95Micros: exactQuantile(merged, 0.95).Microseconds(),
			P99Micros: exactQuantile(merged, 0.99).Microseconds(),
			CacheHits: hits, CacheMiss: misses, ElapsedSec: elapsed.Seconds(),
		}
		if hits+misses > 0 {
			level.HitRate = float64(hits) / float64(hits+misses)
		}
		snap.Levels = append(snap.Levels, level)
		fmt.Printf("clients=%-3d qps=%8.0f p50=%6dus p95=%6dus p99=%6dus plancache hit rate=%.3f (%d queries)\n",
			clients, level.QPS, level.P50Micros, level.P95Micros, level.P99Micros, level.HitRate, level.Queries)
	}

	// Warm-plan evidence: a repeated query's second trace must carry the
	// cached-plan annotation with no expand/plan wall time to speak of.
	gen := workload.NewQueryGen(workload.QueryGenConfig{
		Names: staff.Names, Distinct: cfg.Distinct, Skew: cfg.Zipf, Seed: cfg.Seed,
	})
	rule := must(medmaker.ParseQuery(gen.Next()))
	_, _, err := med.QueryTraced(context.Background(), rule)
	if err == nil {
		var qt *medmaker.QueryTrace
		_, qt, err = med.QueryTraced(context.Background(), rule)
		if err == nil {
			warm := qt.Snapshot()
			snap.WarmTrace = &warm
			if warm.Annotations["cached-plan"] != 1 {
				fmt.Fprintln(os.Stderr, "medbench: warm query missed the plan cache")
				os.Exit(1)
			}
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "medbench: %v\n", err)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "medbench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(cfg.Path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "medbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d client levels)\n", cfg.Path, len(snap.Levels))
}

func mustServe(src medmaker.Source) (string, *medmaker.RemoteServer) {
	addr, srv, err := medmaker.Serve(src, "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "medbench: %v\n", err)
		os.Exit(1)
	}
	return addr, srv
}
