package main

// The adaptive-optimizer benchmark (-adaptive, the BENCH_10.json
// artifact). Two claims about the feedback loop, measured end to end:
//
//  1. Bind-join reordering: a join where the paper's most-conditions-
//     outermost heuristic picks the wrong outer — a huge extent whose
//     three conditions select everything joined against a tiny
//     condition-free extent — must run at least 2x faster under
//     OrderAdaptive after a traced warmup taught the statistics store the
//     real cardinalities. The answers must stay byte-identical.
//  2. Replica routing: of three answer-equivalent replicas with one
//     injected-slow member, at least 90% of exchanges must route away
//     from the slow member once its latency is observed, again with
//     byte-identical answers against a single-member baseline.
//
// Both claims are asserted: the benchmark exits non-zero when either
// fails, so CI can run it as a smoke test.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"medmaker"
	"medmaker/internal/engine"
	"medmaker/internal/oem"
	"medmaker/internal/wrapper"
)

// adaptiveSpec joins the tiny condition-free extent against the huge
// conditioned one. The heuristic counts conditions: listing carries
// three constants, special none, so listing goes outermost — and every
// one of its rows satisfies all three conditions, making the "selective"
// side the whole extent.
const adaptiveSpec = `<deal {<sku S> <vendor V>}> :-
	<special {<sku S> <vendor V>}>@small AND
	<listing {<cat 'tools'> <stock 'yes'> <region 'west'> <sku S>}>@big.`

const adaptiveQuery = `X :- X:<deal {<sku S> <vendor V>}>@med.`

type adaptiveJoin struct {
	BigRows      int      `json:"big_rows"`
	SmallRows    int      `json:"small_rows"`
	ColdOrder    []string `json:"cold_order"`
	WarmOrder    []string `json:"warm_order"`
	HeuristicNs  int64    `json:"heuristic_ns_per_op"`
	AdaptiveNs   int64    `json:"adaptive_warm_ns_per_op"`
	Speedup      float64  `json:"speedup"`
	AnswersEqual bool     `json:"answers_equal"`
}

type adaptiveReplica struct {
	Members         []string         `json:"members"`
	SlowMember      string           `json:"slow_member"`
	Queries         int              `json:"queries"`
	Routed          map[string]int64 `json:"routed_exchanges"`
	AwayFromSlowPct float64          `json:"away_from_slow_pct"`
	AnswersEqual    bool             `json:"answers_equal"`
}

type adaptiveFile struct {
	Tool       string          `json:"tool"`
	Reps       int             `json:"reps"`
	GoMaxProcs int             `json:"gomaxprocs"`
	Join       adaptiveJoin    `json:"join"`
	Replica    adaptiveReplica `json:"replica"`
}

// delaySource adds a fixed latency to every exchange with the wrapped
// source — a stand-in for a network hop. It deliberately does not
// implement wrapper.Counter: the optimizer cannot probe extent sizes up
// front and must learn them from execution feedback.
type delaySource struct {
	inner medmaker.Source
	delay time.Duration
}

func (d *delaySource) Name() string                        { return d.inner.Name() }
func (d *delaySource) Capabilities() medmaker.Capabilities { return d.inner.Capabilities() }

func (d *delaySource) Query(q *medmaker.Rule) ([]*medmaker.Object, error) {
	return d.QueryContext(context.Background(), q)
}

func (d *delaySource) QueryContext(ctx context.Context, q *medmaker.Rule) ([]*medmaker.Object, error) {
	time.Sleep(d.delay)
	return wrapper.QueryContext(ctx, d.inner, q)
}

func (d *delaySource) QueryBatch(qs []*medmaker.Rule) ([][]*medmaker.Object, error) {
	return d.QueryBatchContext(context.Background(), qs)
}

func (d *delaySource) QueryBatchContext(ctx context.Context, qs []*medmaker.Rule) ([][]*medmaker.Object, error) {
	time.Sleep(d.delay)
	return wrapper.QueryBatchContext(ctx, d.inner, qs)
}

// adaptiveListings builds n listing objects that all satisfy the three
// pushed conditions, each with a distinct sku.
func adaptiveListings(n int) []*medmaker.Object {
	gen := oem.NewIDGen("al")
	out := make([]*medmaker.Object, n)
	for i := range out {
		out[i] = oem.NewSet(gen.Next(), "listing",
			oem.New(gen.Next(), "cat", "tools"),
			oem.New(gen.Next(), "stock", "yes"),
			oem.New(gen.Next(), "region", "west"),
			oem.New(gen.Next(), "sku", fmt.Sprintf("S%05d", i)))
	}
	return out
}

// adaptiveSpecials builds n special objects whose skus hit the listing
// extent.
func adaptiveSpecials(n, bigRows int) []*medmaker.Object {
	gen := oem.NewIDGen("as")
	out := make([]*medmaker.Object, n)
	for i := range out {
		out[i] = oem.NewSet(gen.Next(), "special",
			oem.New(gen.Next(), "sku", fmt.Sprintf("S%05d", (i*bigRows/n)%bigRows)),
			oem.New(gen.Next(), "vendor", fmt.Sprintf("V%d", i)))
	}
	return out
}

// adaptiveCanon renders an answer set as sorted oid-free structural
// fingerprints, so two mediators' answers compare byte-identically.
func adaptiveCanon(objs []*medmaker.Object) string {
	keys := make([]string, len(objs))
	for i, o := range objs {
		c := o.Clone()
		c.Walk(func(obj *oem.Object, _ int) bool {
			obj.OID = oem.NilOID
			return true
		})
		adaptiveSortSubs(c)
		keys[i] = oem.Format(c)
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

func adaptiveSortSubs(o *oem.Object) {
	subs := o.Subobjects()
	for _, s := range subs {
		adaptiveSortSubs(s)
	}
	sort.Slice(subs, func(i, j int) bool {
		if subs[i].Label != subs[j].Label {
			return subs[i].Label < subs[j].Label
		}
		return fmt.Sprint(subs[i].Value) < fmt.Sprint(subs[j].Value)
	})
}

// joinOrder extracts the sources of a plan's query-node chain, outermost
// first — the join order the optimizer chose.
func joinOrder(n engine.Node) []string {
	var out []string
	var walk func(engine.Node)
	walk = func(n engine.Node) {
		for _, k := range n.Kids() {
			walk(k)
		}
		if qn, ok := n.(*engine.QueryNode); ok {
			out = append(out, qn.Source)
		}
	}
	walk(n)
	return out
}

// adaptiveMed builds a mediator over delayed copies of the two extents
// with the given join-order mode. Parallelism is pinned so the measured
// exchange counts do not depend on the host's core count.
func adaptiveMed(order medmaker.OrderMode, bigObjs, smallObjs []*medmaker.Object) *medmaker.Mediator {
	big := medmaker.NewOEMSource("big")
	fatalIf(big.Add(heteroClone(bigObjs)...))
	small := medmaker.NewOEMSource("small")
	fatalIf(small.Add(heteroClone(smallObjs)...))
	opts := medmaker.DefaultPlanOptions()
	opts.Order = order
	return must(medmaker.New(medmaker.Config{
		Name: "med", Spec: adaptiveSpec,
		Sources: []medmaker.Source{
			&delaySource{inner: big, delay: time.Millisecond},
			&delaySource{inner: small, delay: time.Millisecond},
		},
		Plan:        &opts,
		Parallelism: 4,
	}))
}

func runAdaptive(reps int, path string) {
	const bigRows, smallRows, warmups = 3000, 8, 3
	ctx := context.Background()
	bigObjs := adaptiveListings(bigRows)
	smallObjs := adaptiveSpecials(smallRows, bigRows)
	rule := must(medmaker.ParseQuery(adaptiveQuery))
	snap := adaptiveFile{
		Tool: "medbench -adaptive", Reps: reps, GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	snap.Join.BigRows, snap.Join.SmallRows = bigRows, smallRows

	// (1) Bind-join reordering. The heuristic mediator is the baseline;
	// the adaptive mediator starts from the same (wrong) order — its cold
	// fallback — and must learn its way out through traced executions.
	heur := adaptiveMed(medmaker.OrderHeuristic, bigObjs, smallObjs)
	adpt := adaptiveMed(medmaker.OrderAdaptive, bigObjs, smallObjs)

	coldPlan, _, err := adpt.PlanContext(ctx, rule)
	fatalIf(err)
	snap.Join.ColdOrder = joinOrder(coldPlan.Root)

	heurAnswer := ""
	heurNs := timeIt(reps, func() {
		objs, err := heur.QueryContext(ctx, rule)
		fatalIf(err)
		heurAnswer = adaptiveCanon(objs)
	})
	snap.Join.HeuristicNs = heurNs.Nanoseconds()

	// Traced warmup: each traced run folds per-node actual rows and join
	// selectivities back into the statistics store.
	adptAnswer := ""
	for i := 0; i < warmups; i++ {
		res, _, err := adpt.QueryTraced(ctx, rule)
		fatalIf(err)
		adptAnswer = adaptiveCanon(res.Objects)
	}
	warmPlan, _, err := adpt.PlanContext(ctx, rule)
	fatalIf(err)
	snap.Join.WarmOrder = joinOrder(warmPlan.Root)

	warmNs := timeIt(reps, func() {
		objs, err := adpt.QueryContext(ctx, rule)
		fatalIf(err)
		adptAnswer = adaptiveCanon(objs)
	})
	snap.Join.AdaptiveNs = warmNs.Nanoseconds()
	snap.Join.Speedup = float64(heurNs) / float64(warmNs)
	snap.Join.AnswersEqual = heurAnswer == adptAnswer && heurAnswer != ""

	fmt.Printf("adaptive join orders: cold %v -> warm %v\n", snap.Join.ColdOrder, snap.Join.WarmOrder)
	fmt.Printf("adaptive warmup win: %.1fx over heuristic (>=2x required)\n", snap.Join.Speedup)

	// (2) Latency-aware replica routing: three answer-equivalent replicas,
	// one 50x slower. After the exploration pass touches every member,
	// the score routes exchanges to the fast members.
	runAdaptiveReplica(&snap, bigObjs)

	data := must(json.MarshalIndent(snap, "", "  "))
	fatalIf(os.WriteFile(path, append(data, '\n'), 0o644))
	fmt.Printf("wrote %s\n", path)

	if snap.Join.Speedup < 2 {
		fmt.Fprintf(os.Stderr, "medbench: adaptive speedup %.2fx below the 2x target\n", snap.Join.Speedup)
		os.Exit(1)
	}
	if !snap.Join.AnswersEqual || !snap.Replica.AnswersEqual {
		fmt.Fprintln(os.Stderr, "medbench: adaptive answers diverged from the baseline")
		os.Exit(1)
	}
	if snap.Replica.AwayFromSlowPct < 90 {
		fmt.Fprintf(os.Stderr, "medbench: only %.1f%% of exchanges avoided the slow replica (>=90%% required)\n",
			snap.Replica.AwayFromSlowPct)
		os.Exit(1)
	}
}

const adaptiveReplicaSpec = `<rlisting {<sku S>}> :- <listing {<cat 'tools'> <sku S>}>@rep.`

func runAdaptiveReplica(snap *adaptiveFile, bigObjs []*medmaker.Object) {
	const queries = 60
	const slow = "r1"
	ctx := context.Background()
	members := make([]medmaker.Source, 3)
	names := make([]string, 3)
	for i := range members {
		name := fmt.Sprintf("r%d", i)
		src := medmaker.NewOEMSource(name)
		fatalIf(src.Add(heteroClone(bigObjs)...))
		delay := time.Millisecond
		if name == slow {
			delay = 50 * time.Millisecond
		}
		members[i] = &delaySource{inner: src, delay: delay}
		names[i] = name
	}
	rep := must(medmaker.NewReplicatedSource("rep", members...))
	med := must(medmaker.New(medmaker.Config{
		Name: "rmed", Spec: adaptiveReplicaSpec,
		Sources: []medmaker.Source{rep}, Parallelism: 4,
	}))

	single := medmaker.NewOEMSource("rep")
	fatalIf(single.Add(heteroClone(bigObjs)...))
	base := must(medmaker.New(medmaker.Config{
		Name: "rmed", Spec: adaptiveReplicaSpec,
		Sources: []medmaker.Source{single}, Parallelism: 4,
	}))

	before := medmaker.DefaultMetrics().Snapshot()
	replicated, baseline := "", ""
	for i := 0; i < queries; i++ {
		q := must(medmaker.ParseQuery(fmt.Sprintf(
			`X :- X:<rlisting {<sku 'S%05d'>}>@rmed.`, (i*97)%len(bigObjs))))
		objs, err := med.QueryContext(ctx, q)
		fatalIf(err)
		baseObjs, err := base.QueryContext(ctx, q)
		fatalIf(err)
		replicated += adaptiveCanon(objs) + "\n"
		baseline += adaptiveCanon(baseObjs) + "\n"
	}
	after := medmaker.DefaultMetrics().Snapshot()

	routed := make(map[string]int64, len(names))
	var total, slowCount int64
	for _, n := range names {
		c := after.Counter("replica.routed."+n) - before.Counter("replica.routed."+n)
		routed[n] = c
		total += c
		if n == slow {
			slowCount = c
		}
	}
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(total-slowCount) / float64(total)
	}
	snap.Replica = adaptiveReplica{
		Members: names, SlowMember: slow, Queries: queries, Routed: routed,
		AwayFromSlowPct: pct,
		AnswersEqual:    replicated == baseline && replicated != "",
	}
	fmt.Printf("replica routing: %.1f%% of exchanges routed away from slow replica\n", pct)
}
