package main

// The heterogeneous source tier benchmark (-hetero, the BENCH_9.json
// artifact). Three claims about the new source kinds, measured over the
// same person extent:
//
//  1. Per-kind exchange latency: the same selective view query answered
//     through each bundled source kind (native OEM store, XML wrapper,
//     JSON-over-HTTP wrapper on a loopback server, stream log). The
//     kinds must agree on the answers; the latencies show what each
//     transport costs.
//  2. Condition pushdown: the XML source's supplied-row counter with
//     pushdown on versus off for the same selective query. Pushdown must
//     reduce the rows handed to the evaluator by at least 5x, or the
//     benchmark exits non-zero.
//  3. Streaming maintenance: a materialized view over the stream log
//     absorbs an append burst through the change feed alone — no
//     rebuilds, no fallbacks — and the warm query afterwards serves the
//     grown extent with zero exchanges.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"medmaker"
	"medmaker/internal/oem"
)

// fatalIf aborts the benchmark on a setup error.
func fatalIf(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "medbench: %v\n", err)
		os.Exit(1)
	}
}

const heteroSpec = `<view {<name N> | R}> :- <person {<name N> | R}>@src.`

// heteroKindRow is one source-kind latency row.
type heteroKindRow struct {
	Kind    string `json:"kind"`
	NsPerOp int64  `json:"ns_per_op"`
	Answers int    `json:"answers"`
}

// heteroPushRow is one pushdown ablation row for the XML source.
type heteroPushRow struct {
	Pushdown     bool  `json:"pushdown"`
	NsPerOp      int64 `json:"ns_per_op"`
	RowsSupplied int64 `json:"rows_supplied_per_query"`
}

// heteroStream records the stream-maintenance burst.
type heteroStream struct {
	SeedEvents     int     `json:"seed_events"`
	BurstEvents    int     `json:"burst_events"`
	ElapsedMS      float64 `json:"elapsed_ms"`
	EventsPerSec   float64 `json:"events_per_sec"`
	Deltas         int64   `json:"deltas_applied"`
	DeltaFallbacks int64   `json:"delta_fallbacks"`
	WarmExchanges  int     `json:"warm_query_exchanges"`
	FinalAnswers   int     `json:"final_answers"`
}

type heteroFile struct {
	Tool              string          `json:"tool"`
	Reps              int             `json:"reps"`
	GoMaxProcs        int             `json:"gomaxprocs"`
	Persons           int             `json:"persons"`
	Kinds             []heteroKindRow `json:"kinds"`
	Pushdown          []heteroPushRow `json:"pushdown"`
	PushdownReduction float64         `json:"pushdown_rows_reduction"`
	Stream            heteroStream    `json:"stream"`
}

// heteroPersons synthesizes n regular person objects.
func heteroPersons(n int) []*medmaker.Object {
	gen := oem.NewIDGen("hp")
	depts := []string{"CS", "EE", "ME", "BIO"}
	out := make([]*medmaker.Object, n)
	for i := range out {
		out[i] = oem.NewSet(gen.Next(), "person",
			oem.New(gen.Next(), "name", fmt.Sprintf("P%05d", i)),
			oem.New(gen.Next(), "dept", depts[i%len(depts)]),
			oem.New(gen.Next(), "year", 1+i%5))
	}
	return out
}

func heteroClone(objs []*medmaker.Object) []*medmaker.Object {
	out := make([]*medmaker.Object, len(objs))
	for i, o := range objs {
		out[i] = o.Clone()
	}
	return out
}

func heteroMed(src medmaker.Source) *medmaker.Mediator {
	return must(medmaker.New(medmaker.Config{
		Name: "med", Spec: heteroSpec, Sources: []medmaker.Source{src},
	}))
}

func runHetero(reps int, path string) {
	const persons = 2000
	people := heteroPersons(persons)
	selective := `X :- X:<view {<name 'P00010'>}>@med.`
	snap := heteroFile{
		Tool: "medbench -hetero", Reps: reps,
		GoMaxProcs: runtime.GOMAXPROCS(0), Persons: persons,
	}

	// (1) Per-kind latency over identical extents.
	oemSrc := medmaker.NewOEMSource("src")
	fatalIf(oemSrc.Add(heteroClone(people)...))

	var buf bytes.Buffer
	fatalIf(medmaker.EncodeXML(&buf, people, medmaker.XMLMapping{}))
	xmlSrc := must(medmaker.NewXMLSourceFromReader("src", &buf, medmaker.XMLMapping{}))

	httpSrv := httptest.NewServer(medmaker.NewHTTPHandler(people))
	defer httpSrv.Close()
	httpSrc := must(medmaker.NewHTTPSource("src", httpSrv.URL))

	streamSrc := medmaker.NewStreamSource("src", medmaker.StreamOptions{})
	fatalIf(streamSrc.Append(heteroClone(people)...))

	kinds := []struct {
		name string
		src  medmaker.Source
	}{
		{"oemstore", oemSrc}, {"xml", xmlSrc}, {"jsonhttp", httpSrc}, {"stream", streamSrc},
	}
	wantAnswers := -1
	for _, k := range kinds {
		med := heteroMed(k.src)
		objs := must(query(med, selective))
		if wantAnswers < 0 {
			wantAnswers = len(objs)
		} else if len(objs) != wantAnswers {
			fmt.Fprintf(os.Stderr, "medbench: kind %s returned %d answers, want %d\n", k.name, len(objs), wantAnswers)
			os.Exit(1)
		}
		d := timeIt(reps, func() { must(query(med, selective)) })
		snap.Kinds = append(snap.Kinds, heteroKindRow{Kind: k.name, NsPerOp: d.Nanoseconds(), Answers: len(objs)})
	}
	if wantAnswers < 1 {
		fmt.Fprintln(os.Stderr, "medbench: selective hetero query returned no answers")
		os.Exit(1)
	}

	// (2) XML pushdown ablation: rows the source hands the evaluator.
	var rowsOn, rowsOff int64
	for _, push := range []bool{true, false} {
		xmlSrc.SetPushdown(push)
		med := heteroMed(xmlSrc)
		s0 := xmlSrc.Supplied()
		must(query(med, selective))
		rows := xmlSrc.Supplied() - s0
		d := timeIt(reps, func() { must(query(med, selective)) })
		snap.Pushdown = append(snap.Pushdown, heteroPushRow{
			Pushdown: push, NsPerOp: d.Nanoseconds(), RowsSupplied: rows,
		})
		if push {
			rowsOn = rows
		} else {
			rowsOff = rows
		}
	}
	xmlSrc.SetPushdown(true)
	if rowsOn <= 0 || rowsOff <= 0 {
		fmt.Fprintf(os.Stderr, "medbench: pushdown rows not measured (on=%d off=%d)\n", rowsOn, rowsOff)
		os.Exit(1)
	}
	snap.PushdownReduction = float64(rowsOff) / float64(rowsOn)
	if snap.PushdownReduction < 5 {
		fmt.Fprintf(os.Stderr, "medbench: pushdown reduced supplied rows only %.1fx (want >= 5x)\n", snap.PushdownReduction)
		os.Exit(1)
	}

	// (3) Stream maintenance: a burst of appends absorbed by the change
	// feed, verified fresh without a rebuild.
	const seedEvents, burst = 200, 400
	liveStream := medmaker.NewStreamSource("src", medmaker.StreamOptions{})
	fatalIf(liveStream.Append(heteroClone(people[:seedEvents])...))
	med := must(medmaker.New(medmaker.Config{
		Name: "med", Spec: heteroSpec, Sources: []medmaker.Source{liveStream},
		Materialize: &medmaker.MatViewOptions{Views: []medmaker.MatView{{Label: "view"}}},
	}))
	all := `X :- X:<view {<name N>}>@med.`
	must(query(med, all)) // build the extent
	med.WaitMatViews()
	base := med.MatViewStats()
	gen := oem.NewIDGen("burst")
	start := time.Now()
	for i := 0; i < burst; i++ {
		fatalIf(liveStream.Append(oem.NewSet(gen.Next(), "person",
			oem.New(gen.Next(), "name", fmt.Sprintf("B%05d", i)),
			oem.New(gen.Next(), "dept", "CS"))))
	}
	med.WaitMatViews()
	elapsed := time.Since(start)
	st := med.MatViewStats()

	qs := med.QueryStats()
	e0 := qs.TotalExchanges()
	final := must(query(med, all))
	warmExchanges := qs.TotalExchanges() - e0

	snap.Stream = heteroStream{
		SeedEvents: seedEvents, BurstEvents: burst,
		ElapsedMS:      float64(elapsed.Microseconds()) / 1000,
		EventsPerSec:   float64(burst) / elapsed.Seconds(),
		Deltas:         st.Deltas - base.Deltas,
		DeltaFallbacks: st.DeltaFallbacks - base.DeltaFallbacks,
		WarmExchanges:  warmExchanges,
		FinalAnswers:   len(final),
	}
	if len(final) != seedEvents+burst {
		fmt.Fprintf(os.Stderr, "medbench: maintained view serves %d answers, want %d\n", len(final), seedEvents+burst)
		os.Exit(1)
	}
	if snap.Stream.Deltas == 0 || snap.Stream.DeltaFallbacks != 0 {
		fmt.Fprintf(os.Stderr, "medbench: stream maintenance not delta-driven: %+v\n", snap.Stream)
		os.Exit(1)
	}
	if warmExchanges != 0 {
		fmt.Fprintf(os.Stderr, "medbench: warm stream query performed %d exchanges, want 0\n", warmExchanges)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "medbench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "medbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (pushdown reduction %.0fx, stream rate %.0f events/sec)\n",
		path, snap.PushdownReduction, snap.Stream.EventsPerSec)
}
