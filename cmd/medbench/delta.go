package main

// The change-feed maintenance benchmark (-delta, the BENCH_8.json
// artifact): how much does keeping a materialized view fresh cost per
// source update, incrementally versus by full rebuild? A materialized
// MS1 mediator watches a staff population; the update stream adds whois
// person records whose cs rows already exist, so every insert grows the
// cs_person view by one. The incremental path is what the change feed
// does on its own — the timed Add call carries the synchronous delta
// evaluation and extent append — while the rebuild path is what a
// feed-less deployment pays: Invalidate plus a full Refresh through the
// live pipeline. Levels scale the number of updates amortized by one
// rebuild; at one update per rebuild the delta path must be at least 5x
// cheaper, and the benchmark exits non-zero if the maintained extent
// ever disagrees with a rebuilt one.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"medmaker"
	"medmaker/internal/workload"
)

// deltaLevel is one update-rate row of the BENCH_8 artifact. Updates is
// the number of source inserts amortized by one full rebuild; both
// strategies are normalized to nanoseconds per update at that rate.
type deltaLevel struct {
	Updates            int     `json:"updates_per_rebuild"`
	DeltaNsPerUpdate   int64   `json:"delta_ns_per_update"`
	RebuildNs          int64   `json:"rebuild_ns"`
	RebuildNsPerUpdate int64   `json:"rebuild_ns_per_update"`
	Speedup            float64 `json:"speedup"`
	ExtentObjects      int     `json:"extent_objects"`
	DeltasApplied      int64   `json:"deltas_applied"`
	DeltaFallbacks     int64   `json:"delta_fallbacks"`
}

type deltaFile struct {
	Tool       string       `json:"tool"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Persons    int          `json:"persons"`
	Batches    int          `json:"batches_per_level"`
	Levels     []deltaLevel `json:"levels"`
}

// runDelta measures incremental view maintenance against full rebuilds
// and writes the BENCH_8.json snapshot.
func runDelta(reps int, path string) {
	const (
		persons = 400
		batches = 5
	)
	levels := []int{1, 8, 64}

	staff := must(workload.GenStaff(workload.StaffConfig{
		Persons: persons, Departments: 4, EmployeeFraction: 0.5, Irregularity: 0.3, Seed: 1,
	}))
	// Pre-seed the cs rows the update stream will join against, before
	// the wrapper exists — they are ordinary (unmatched) rows until the
	// corresponding whois record arrives.
	budget := 0
	for _, u := range levels {
		budget += u * batches
	}
	emp, ok := staff.DB.Table("employee")
	if !ok {
		fmt.Fprintln(os.Stderr, "medbench: staff population has no employee table")
		os.Exit(1)
	}
	for i := 0; i < budget; i++ {
		emp.MustInsert(updFirst(i), updLast(i), "staff", "F0000 L0000")
	}

	med := must(medmaker.New(medmaker.Config{
		Name: "med", Spec: specMS1,
		Sources: []medmaker.Source{
			medmaker.NewRelationalWrapper("cs", staff.DB),
			medmaker.NewRecordWrapper("whois", staff.Store),
		},
		Materialize: &medmaker.MatViewOptions{Views: []medmaker.MatView{{Label: "cs_person"}}},
	}))
	ctx := context.Background()
	countAll := `X :- X:<cs_person {<name N>}>@med.`
	extent := func() int { return len(must(query(med, countAll))) }

	// Warm the extent; every subsequent count is served from it.
	if err := med.Refresh(ctx, "cs_person"); err != nil {
		fmt.Fprintf(os.Stderr, "medbench: %v\n", err)
		os.Exit(1)
	}
	size := extent()

	snap := deltaFile{
		Tool: "medbench -delta", GoMaxProcs: runtime.GOMAXPROCS(0),
		Persons: persons, Batches: batches,
	}
	next := 0
	for _, updates := range levels {
		// Incremental: time batches of updates flowing through the
		// change feed into the extent; median batch, normalized per
		// update.
		d0 := med.MatViewStats()
		times := make([]time.Duration, batches)
		for b := range times {
			start := time.Now()
			for k := 0; k < updates; k++ {
				staff.Store.MustAdd(medmaker.Record{Kind: "person", Fields: []medmaker.RecordField{
					{Name: "name", Value: updFirst(next) + " " + updLast(next)},
					{Name: "dept", Value: "CS"},
					{Name: "relation", Value: "employee"},
				}})
				next++
			}
			times[b] = time.Since(start)
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		deltaNs := times[batches/2].Nanoseconds() / int64(updates)
		d1 := med.MatViewStats()

		// Every insert must have taken the fast path, and the extent
		// must have grown by exactly the inserted count — without a
		// rebuild.
		applied := updates * batches
		if got := d1.Deltas - d0.Deltas; got != int64(applied) {
			fmt.Fprintf(os.Stderr, "medbench: %d of %d updates took the delta path\n", got, applied)
			os.Exit(1)
		}
		if d1.DeltaFallbacks != d0.DeltaFallbacks {
			fmt.Fprintf(os.Stderr, "medbench: insert-only updates fell back to rebuild: %+v\n", d1)
			os.Exit(1)
		}
		size += applied
		if got := extent(); got != size {
			fmt.Fprintf(os.Stderr, "medbench: delta-maintained extent holds %d objects, want %d\n", got, size)
			os.Exit(1)
		}

		// Full rebuild at the current extent size: what one Invalidate +
		// Refresh costs, amortized over the level's update count.
		rebuildNs := timeIt(min(reps, 7), func() {
			med.Invalidate("cs_person")
			if err := med.Refresh(ctx, "cs_person"); err != nil {
				fmt.Fprintf(os.Stderr, "medbench: %v\n", err)
				os.Exit(1)
			}
		}).Nanoseconds()
		if got := extent(); got != size {
			fmt.Fprintf(os.Stderr, "medbench: rebuilt extent holds %d objects, want %d\n", got, size)
			os.Exit(1)
		}

		lvl := deltaLevel{
			Updates:            updates,
			DeltaNsPerUpdate:   deltaNs,
			RebuildNs:          rebuildNs,
			RebuildNsPerUpdate: rebuildNs / int64(updates),
			ExtentObjects:      size,
			DeltasApplied:      d1.Deltas,
			DeltaFallbacks:     d1.DeltaFallbacks,
		}
		if deltaNs > 0 {
			lvl.Speedup = float64(lvl.RebuildNsPerUpdate) / float64(deltaNs)
		}
		snap.Levels = append(snap.Levels, lvl)
		fmt.Printf("updates/rebuild=%-3d delta=%8dns/update rebuild=%10dns (%dns/update) speedup=%.1fx extent=%d\n",
			updates, deltaNs, rebuildNs, lvl.RebuildNsPerUpdate, lvl.Speedup, size)
	}

	// The acceptance bound: at one update per rebuild, incremental
	// maintenance must be at least 5x cheaper than rebuilding.
	if low := snap.Levels[0]; low.Speedup < 5 {
		fmt.Fprintf(os.Stderr, "medbench: delta maintenance only %.1fx cheaper than rebuild at %d update/rebuild, want >= 5x\n",
			low.Speedup, low.Updates)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "medbench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "medbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d levels)\n", path, len(snap.Levels))
}

// updFirst/updLast name the update stream's people; the prefix keeps
// them disjoint from the generated F####/L#### population.
func updFirst(i int) string { return fmt.Sprintf("U%04d", i) }
func updLast(i int) string  { return fmt.Sprintf("V%04d", i) }
