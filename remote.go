package medmaker

import (
	"time"

	"medmaker/internal/remote"
)

// RemoteServer exposes a Source (a wrapper or a whole mediator) over TCP,
// for the distributed TSIMMIS deployment of Figure 1.1.
type RemoteServer = remote.Server

// RemoteClient is a Source backed by a RemoteServer elsewhere.
type RemoteClient = remote.Client

// Wire protocol versions a RemoteClient can negotiate; RemoteClient.Proto
// reports which one a connection settled on.
const (
	ProtoUnframed = remote.ProtoUnframed // one request in flight per connection
	ProtoFramed   = remote.ProtoFramed   // multiplexed frames on one connection
)

// Serve starts serving src on addr (use "127.0.0.1:0" for an ephemeral
// port) and returns the bound address and the running server.
func Serve(src Source, addr string) (string, *RemoteServer, error) {
	srv := remote.NewServer(src)
	bound, err := srv.Start(addr)
	if err != nil {
		return "", nil, err
	}
	return bound, srv, nil
}

// DialSource connects to a remote source. The returned client carries the
// remote side's name and capabilities and plugs into Config.Sources like
// any local wrapper. A zero timeout means 10 seconds.
func DialSource(addr string, timeout time.Duration) (*RemoteClient, error) {
	return remote.Dial(addr, timeout)
}
