package medmaker

import (
	"fmt"
	"testing"

	"medmaker/internal/oem"
)

// TestBatchedExchangeReduction asserts the tentpole claim of the batched
// executor with the engine's own exchange counter: on the full-view query
// of the BenchmarkParamQueryVsCross workload, batching the parameterized
// inner queries issues at least 2x fewer source exchanges than the
// per-tuple chain, with identical results.
func TestBatchedExchangeReduction(t *testing.T) {
	opts := PlanOptions{PushConditions: true, Parameterize: true, DupElim: true}
	cs, whois, _ := scaledSources(t, 100)
	perTuple, err := New(Config{
		Name: "med", Spec: specMS1, Sources: []Source{cs, whois},
		Plan: &opts, QueryBatch: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	batched, err := New(Config{
		Name: "med", Spec: specMS1, Sources: []Source{cs, whois},
		Plan: &opts, // QueryBatch 0 -> DefaultQueryBatch
	})
	if err != nil {
		t.Fatal(err)
	}
	q := `P :- P:<cs_person {<name N>}>@med.`
	a := mustQuery(t, perTuple, q, 1)
	b := mustQuery(t, batched, q, 1)
	if len(a) != len(b) {
		t.Fatalf("per-tuple returned %d objects, batched %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].StructuralEqual(b[i]) {
			t.Fatalf("result %d differs:\n%s\nvs\n%s",
				i, oem.Format(a[i]), oem.Format(b[i]))
		}
	}
	pt := perTuple.QueryStats().TotalExchanges()
	bt := batched.QueryStats().TotalExchanges()
	if pt == 0 || bt == 0 {
		t.Fatalf("exchange counters empty: per-tuple %d, batched %d", pt, bt)
	}
	if bt*2 > pt {
		t.Fatalf("batched execution used %d exchanges vs %d per-tuple; want at least a 2x reduction\nper-tuple stats:\n%s\nbatched stats:\n%s",
			bt, pt, perTuple.QueryStats(), batched.QueryStats())
	}
	// Batching changes how queries are shipped, not how many are answered:
	// every distinct parameterized query still reaches the source.
	if pq, bq := perTuple.QueryStats().TotalQueries(), batched.QueryStats().TotalQueries(); bq > pq {
		t.Fatalf("batched execution issued %d queries vs %d per-tuple", bq, pq)
	}
}

// TestCachedRepeatQuery: with the answer cache on, re-running a query
// answers the parameterized inner queries from the cache, and the
// mediator-level counters expose the hit rate.
func TestCachedRepeatQuery(t *testing.T) {
	cs, whois, _ := scaledSources(t, 60)
	med, err := New(Config{
		Name: "med", Spec: specMS1, Sources: []Source{cs, whois},
		Cache: &CacheOptions{},
	})
	if err != nil {
		t.Fatal(err)
	}
	q := `P :- P:<cs_person {<name N>}>@med.`
	first := mustQuery(t, med, q, 1)
	hits0, misses0 := med.QueryStats().CacheCounts("whois")
	if misses0 == 0 {
		t.Fatal("cold run recorded no cache misses")
	}
	if hits0 != 0 {
		t.Fatalf("cold run recorded %d cache hits", hits0)
	}
	second := mustQuery(t, med, q, 1)
	hits1, _ := med.QueryStats().CacheCounts("whois")
	if hits1 == 0 {
		t.Fatal("warm run recorded no cache hits")
	}
	if len(first) != len(second) {
		t.Fatalf("cold run returned %d objects, warm run %d", len(first), len(second))
	}
	for i := range first {
		if !first[i].StructuralEqual(second[i]) {
			t.Fatalf("warm result %d differs from cold:\n%s\nvs\n%s",
				i, oem.Format(first[i]), oem.Format(second[i]))
		}
	}
	// Per-source cache stats are exposed on the mediator too.
	stats := med.CacheStats()
	if stats["whois"].Hits == 0 {
		t.Fatalf("CacheStats = %+v, want whois hits > 0", stats)
	}
	// After invalidation the next run misses again.
	med.InvalidateCaches()
	mustQuery(t, med, q, 1)
	if s := med.CacheStats(); s["whois"].Entries == 0 {
		t.Fatalf("CacheStats after refill = %+v, want entries > 0", s)
	}
}

// BenchmarkBatchedParamQuery measures the batched parameterized-query
// chain against the per-tuple baseline on the full-view query (the E-JOIN
// workload of BenchmarkParamQueryVsCross).
func BenchmarkBatchedParamQuery(b *testing.B) {
	for _, n := range []int{100, 300} {
		for _, batch := range []int{1, DefaultQueryBatch} {
			name := fmt.Sprintf("persons=%d/batch=%d", n, batch)
			b.Run(name, func(b *testing.B) {
				opts := PlanOptions{PushConditions: true, Parameterize: true, DupElim: true}
				cs, whois, _ := scaledSources(b, n)
				med, err := New(Config{
					Name: "med", Spec: specMS1, Sources: []Source{cs, whois},
					Plan: &opts, QueryBatch: batch,
				})
				if err != nil {
					b.Fatal(err)
				}
				q := `P :- P:<cs_person {<name N>}>@med.`
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					mustQuery(b, med, q, 1)
				}
			})
		}
	}
}

// BenchmarkAnswerCache measures the answer cache on a repeated query:
// cold is one full evaluation per iteration against an uncached mediator,
// warm the same query against a mediator whose cache is populated.
func BenchmarkAnswerCache(b *testing.B) {
	for _, cached := range []bool{false, true} {
		name := "cold"
		if cached {
			name = "warm"
		}
		b.Run(name, func(b *testing.B) {
			cs, whois, _ := scaledSources(b, 200)
			cfg := Config{Name: "med", Spec: specMS1, Sources: []Source{cs, whois}}
			if cached {
				cfg.Cache = &CacheOptions{}
			}
			med, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			q := `P :- P:<cs_person {<name N>}>@med.`
			mustQuery(b, med, q, 1) // populate the cache (and warm either path)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustQuery(b, med, q, 1)
			}
		})
	}
}
