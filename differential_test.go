package medmaker

// Differential testing: a brute-force reference evaluator for logical
// datamerge programs is compared against the full MSI pipeline (view
// expansion → cost-based planning → datamerge execution) under every
// optimizer configuration, over randomized source populations. Any
// divergence is a bug in the planner or engine (or in the reference,
// which is simple enough to audit).

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"medmaker/internal/build"
	"medmaker/internal/extfn"
	"medmaker/internal/match"
	"medmaker/internal/msl"
	"medmaker/internal/oem"
	"medmaker/internal/veao"
	"medmaker/internal/wrapper"
)

// referenceEval evaluates a logical program the slow, obviously-correct
// way: every pattern conjunct is matched against the full export of its
// source, conjuncts join left to right, predicates evaluate at the first
// position where their implementations apply, bindings project and dedup
// on the head variables, and heads construct. No pushdown, no ordering,
// no parameterized queries.
func referenceEval(t *testing.T, prog *veao.Program, exports map[string][]*oem.Object, tbl *extfn.Table) []*oem.Object {
	t.Helper()
	gen := oem.NewIDGen("ref")
	var out []*oem.Object
	for _, rule := range prog.Rules {
		envs := []match.Env{nil}
		pending := make([]msl.Conjunct, len(rule.Tail))
		copy(pending, rule.Tail)
		for len(pending) > 0 {
			// Pick the first evaluable conjunct: any positive pattern, or
			// a predicate whose adornment fits the bound variables;
			// negated patterns only when nothing else remains (safe
			// stratification).
			picked := -1
			for pass := 0; pass < 2 && picked < 0; pass++ {
				for i, c := range pending {
					if pc, ok := c.(*msl.PatternConjunct); ok {
						if pc.Negated && pass == 0 {
							continue
						}
						picked = i
						break
					}
					pr := c.(*msl.PredicateConjunct)
					bound := map[string]bool{}
					if len(envs) > 0 {
						for name := range envs[0] {
							bound[name] = true
						}
					}
					if tbl.CanEval(pr, bound) {
						picked = i
						break
					}
				}
			}
			if picked < 0 {
				t.Fatalf("reference: no evaluable conjunct among %v", pending)
			}
			c := pending[picked]
			pending = append(pending[:picked], pending[picked+1:]...)
			var next []match.Env
			switch conj := c.(type) {
			case *msl.PatternConjunct:
				tops := exports[conj.Source]
				for _, env := range envs {
					got, err := match.Tops(conj.Pattern, conj.ObjVar, tops, env)
					if err != nil {
						t.Fatal(err)
					}
					if conj.Negated {
						if len(got) == 0 {
							next = append(next, env)
						}
						continue
					}
					next = append(next, got...)
				}
			case *msl.PredicateConjunct:
				for _, env := range envs {
					got, err := tbl.Eval(conj, env)
					if err != nil {
						t.Fatal(err)
					}
					next = append(next, got...)
				}
			}
			envs = next
			if len(envs) == 0 {
				break
			}
		}
		envs = match.DedupEnvs(envs, rule.HeadVars())
		for _, env := range envs {
			objs, err := build.Head(rule.Head, env, gen)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, objs...)
		}
	}
	return dedupObjects(out)
}

func dedupObjects(objs []*oem.Object) []*oem.Object {
	byHash := map[uint64][]*oem.Object{}
	out := objs[:0:0]
outer:
	for _, o := range objs {
		h := o.StructuralHash()
		for _, prev := range byHash[h] {
			if prev.StructuralEqual(o) {
				continue outer
			}
		}
		byHash[h] = append(byHash[h], o)
		out = append(out, o)
	}
	return out
}

// canonicalize renders objects as sorted structural fingerprints so two
// result sets compare independent of order and oids.
func canonicalize(objs []*oem.Object) []string {
	keys := make([]string, len(objs))
	for i, o := range objs {
		c := o.Clone()
		c.Walk(func(obj *oem.Object, _ int) bool {
			obj.OID = oem.NilOID
			return true
		})
		sortSubobjects(c)
		keys[i] = oem.Format(c)
	}
	sort.Strings(keys)
	return keys
}

func sortSubobjects(o *oem.Object) {
	subs := o.Subobjects()
	for _, s := range subs {
		sortSubobjects(s)
	}
	sort.Slice(subs, func(i, j int) bool {
		if subs[i].Label != subs[j].Label {
			return subs[i].Label < subs[j].Label
		}
		return fmt.Sprint(subs[i].Value) < fmt.Sprint(subs[j].Value)
	})
}

// randomPeople builds a randomized irregular population.
func randomPeople(r *rand.Rand, n int) []*oem.Object {
	gen := oem.NewIDGen("rp")
	depts := []string{"CS", "EE", "ME"}
	rels := []string{"employee", "student"}
	out := make([]*oem.Object, n)
	for i := range out {
		subs := oem.Set{
			oem.New(gen.Next(), "name", fmt.Sprintf("P%03d Q%03d", i, i)),
			oem.New(gen.Next(), "dept", depts[r.Intn(len(depts))]),
			oem.New(gen.Next(), "relation", rels[r.Intn(len(rels))]),
		}
		if r.Intn(2) == 0 {
			subs = append(subs, oem.New(gen.Next(), "year", 1+r.Intn(5)))
		}
		if r.Intn(3) == 0 {
			subs = append(subs, oem.New(gen.Next(), "e_mail", fmt.Sprintf("p%d@x", i)))
		}
		if r.Intn(4) == 0 {
			subs = append(subs, oem.New(gen.Next(), "office", fmt.Sprintf("G%d", r.Intn(50))))
		}
		out[i] = &oem.Object{OID: gen.Next(), Label: "person", Value: subs}
	}
	return out
}

// randomRelations builds employee/student objects aligned with the people
// by index parity, mimicking the relational side.
func randomRelations(r *rand.Rand, n int) []*oem.Object {
	gen := oem.NewIDGen("rr")
	out := make([]*oem.Object, 0, n)
	for i := 0; i < n; i++ {
		label := "employee"
		if r.Intn(2) == 0 {
			label = "student"
		}
		subs := oem.Set{
			oem.New(gen.Next(), "first_name", fmt.Sprintf("P%03d", i)),
			oem.New(gen.Next(), "last_name", fmt.Sprintf("Q%03d", i)),
		}
		if label == "student" {
			subs = append(subs, oem.New(gen.Next(), "year", 1+r.Intn(5)))
		} else if r.Intn(2) == 0 {
			subs = append(subs, oem.New(gen.Next(), "title", "staff"))
		}
		out = append(out, &oem.Object{OID: gen.Next(), Label: label, Value: subs})
	}
	return out
}

// TestDifferentialAgainstReference cross-checks the planned execution
// against the reference evaluator for a matrix of specs, queries, plan
// options, and random seeds.
func TestDifferentialAgainstReference(t *testing.T) {
	specs := []string{
		// The paper's MS1.
		specMS1,
		// Single-source view with rests.
		`<profile {<name N> | R}> :- <person {<name N> | R}>@whois.`,
		// Label variable + join on it.
		`<linked {<rel R> <fn FN>}> :- <person {<relation R>}>@whois AND <R {<first_name FN>}>@cs.`,
		// Predicate filter (builtin).
		`<senior {<name N> <year Y>}> :- <person {<name N> <year Y>}>@whois AND ge(Y, 3).`,
		// Two rules (union view).
		`<anyone {<who N>}> :- <person {<name N>}>@whois.
		 <anyone {<who FN>}> :- <employee {<first_name FN>}>@cs.`,
		// Negation: persons whose relation has no same-named table rows.
		`<lonely {<name N>}> :-
		    <person {<name N> <relation R>}>@whois
		    AND NOT <R {<first_name FN>}>@cs.`,
		// Structural builtins over a rest variable.
		`<nomail {<name N>}> :- <person {<name N> | R}>@whois AND lacks(R, 'e_mail').
		 <mail {<name N>}> :- <person {<name N> | R}>@whois AND has(R, 'e_mail').`,
		// The XML wrapper serving the profile view.
		`<profile {<name N> | R}> :- <person {<name N> | R}>@xml.`,
		// The stream log unioned with the relational side.
		`<anyone {<who N>}> :- <person {<name N>}>@stream.
		 <anyone {<who FN>}> :- <employee {<first_name FN>}>@cs.`,
	}
	queries := []string{
		`X :- X:<cs_person {<name 'P004 Q004'>}>@med.`,
		`X :- X:<cs_person {<year 3>}>@med.`,
		`X :- X:<profile {<name N>}>@med.`,
		`X :- X:<profile {<e_mail E>}>@med.`,
		`<pair R FN> :- <linked {<rel R> <fn FN>}>@med.`,
		`X :- X:<senior {<year 5>}>@med.`,
		`X :- X:<anyone {<who W>}>@med.`,
		`X :- X:<lonely {<name N>}>@med.`,
		`X :- X:<nomail {<name N>}>@med.`,
	}
	variants := []PlanOptions{
		{Order: OrderHeuristic, PushConditions: true, Parameterize: true, DupElim: true},
		{Order: OrderReversed, PushConditions: true, Parameterize: true, DupElim: true},
		{Order: OrderAsWritten, PushConditions: false, Parameterize: true, DupElim: true},
		{Order: OrderHeuristic, PushConditions: true, Parameterize: false, DupElim: true},
		{Order: OrderStats, PushConditions: false, Parameterize: false, DupElim: true},
	}
	for seed := int64(0); seed < 4; seed++ {
		r := rand.New(rand.NewSource(seed))
		people := randomPeople(r, 30)
		relations := randomRelations(r, 30)
		whoisSrc, err := NewOEMSource("whois"), error(nil)
		if err := whoisSrc.Add(people...); err != nil {
			t.Fatal(err)
		}
		csSrc := NewOEMSource("cs")
		if err = csSrc.Add(relations...); err != nil {
			t.Fatal(err)
		}
		xmlSrc, streamSrc := heteroSources(t, people)
		exports := map[string][]*oem.Object{
			"whois":  people,
			"cs":     relations,
			"xml":    xmlSrc.Export(),
			"stream": streamSrc.Export(),
		}
		for si, spec := range specs {
			prog, err := ParseSpec(spec)
			if err != nil {
				t.Fatal(err)
			}
			tbl, err := extfn.NewTable(extfn.NewRegistry(), prog.Decls)
			if err != nil {
				t.Fatal(err)
			}
			for qi, qText := range queries {
				q, err := ParseQuery(qText)
				if err != nil {
					t.Fatal(err)
				}
				// Skip queries that do not apply to this spec (empty
				// expansion is fine and still compared).
				expander := veao.NewExpander(prog, "med", ExpandOptions{})
				logical, err := expander.Expand(q)
				if err != nil {
					continue // unsupported combination (e.g. missing view)
				}
				want := canonicalize(referenceEval(t, logical, exports, tbl))
				for vi, opts := range variants {
					o := opts
					med, err := New(Config{
						Name: "med", Spec: spec,
						Sources: []Source{csSrc, whoisSrc, xmlSrc, streamSrc},
						Plan:    &o,
						// Exhaustive expansion on one variant: the extra
						// rest-push rules must add no wrong answers.
						Expand: ExpandOptions{Exhaustive: vi == 1},
					})
					if err != nil {
						t.Fatal(err)
					}
					objs, err := med.Query(q)
					if err != nil {
						t.Fatalf("seed=%d spec=%d query=%d variant=%d: %v", seed, si, qi, vi, err)
					}
					got := canonicalize(objs)
					if len(got) != len(want) {
						t.Fatalf("seed=%d spec=%d query=%d variant=%d: %d objects, reference has %d\nquery: %s\ngot: %v\nwant: %v",
							seed, si, qi, vi, len(got), len(want), qText, got, want)
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("seed=%d spec=%d query=%d variant=%d: result %d differs\nquery: %s\ngot:  %s\nwant: %s",
								seed, si, qi, vi, i, qText, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

var _ = wrapper.FullCapabilities // keep the import for future variants
