package medmaker

import (
	"io"
	"net/http"
	"time"

	"medmaker/internal/jsonhttp"
	"medmaker/internal/oem"
	"medmaker/internal/oemstore"
	"medmaker/internal/relational"
	"medmaker/internal/semistruct"
	"medmaker/internal/streamsource"
	"medmaker/internal/wrapper"
	"medmaker/internal/xmlsource"
)

// Substrate re-exports: the bundled source implementations, so
// applications can stand up the paper's style of wrappers without touching
// internal packages.
type (
	// OEMSource stores OEM objects natively (fully capable).
	OEMSource = oemstore.Source
	// RelationalDB is the small in-memory relational engine.
	RelationalDB = relational.DB
	// RelationalSchema describes one relation.
	RelationalSchema = relational.Schema
	// RelationalColumn describes one attribute.
	RelationalColumn = relational.Column
	// RelationalWrapper exports a RelationalDB as OEM (the paper's cs
	// wrapper).
	RelationalWrapper = relational.Wrapper
	// RecordStore holds irregular semi-structured records.
	RecordStore = semistruct.Store
	// Record is one irregular record.
	Record = semistruct.Record
	// RecordField is one named field of a Record.
	RecordField = semistruct.Field
	// RecordWrapper exports a RecordStore as OEM (the paper's whois
	// wrapper).
	RecordWrapper = semistruct.Wrapper
	// LimitedSource restricts an inner source's capabilities, modelling
	// the autonomous, capability-poor sources of Section 3.5.
	LimitedSource = wrapper.Limited
	// PartitionedSource presents N member sources holding a
	// hash-partitioned extent as one logical source: point queries on the
	// partition key route to their shard, everything else scatters and
	// gathers. Registered in a mediator, the engine performs the scatter
	// on its own worker pool under the query's ExecPolicy.
	PartitionedSource = wrapper.Partitioned
	// ReplicatedSource presents N answer-equivalent member sources as one
	// logical source. Registered in a mediator, the engine routes each
	// exchange to the member with the best observed latency/error score
	// and fails over to the next-best member on error, so one healthy
	// replica keeps the source answering.
	ReplicatedSource = wrapper.Replicas
	// SourceDelta describes one source mutation: the top-level objects it
	// inserted and deleted. Sources emit deltas to ChangeNotifier
	// subscribers; a mediator subscribes to every registered source and
	// delta-maintains its answer caches and materialized views.
	SourceDelta = wrapper.Delta
	// ChangeNotifier is the change-feed capability: sources that can
	// describe their own mutations implement it (all bundled mutable
	// sources do), letting consumers apply deltas instead of dropping
	// derived state wholesale.
	ChangeNotifier = wrapper.Notifier
	// XMLSource serves XML documents mapped into OEM — elements become
	// subobjects, attributes atomic children — with condition pushdown
	// into its label index.
	XMLSource = xmlsource.Source
	// XMLMapping configures the XML<->OEM mapping (root handling, text
	// label).
	XMLMapping = xmlsource.Mapping
	// HTTPSource queries a remote JSON-over-HTTP endpoint as an OEM
	// source, pushing equality conditions into query parameters and
	// retrying transient failures.
	HTTPSource = jsonhttp.Source
	// HTTPSourceOption customizes an HTTPSource (client, retry policy).
	HTTPSourceOption = jsonhttp.Option
	// HTTPHandler serves any OEM extent in the jsonhttp wire format — the
	// server half of HTTPSource, for tests and Go-hosted endpoints.
	HTTPHandler = jsonhttp.Handler
	// StreamSource is a bounded append-only event log: appends emit
	// change-feed deltas, retention evicts by count and age.
	StreamSource = streamsource.Source
	// StreamOptions configures a StreamSource's retention.
	StreamOptions = streamsource.Options
)

// NewOEMSource returns an empty OEM-native source.
func NewOEMSource(name string) *OEMSource { return oemstore.New(name) }

// NewOEMSourceFromText parses textual OEM data into a new source.
func NewOEMSourceFromText(name, text string) (*OEMSource, error) {
	return oemstore.FromText(name, text)
}

// NewOEMSourceFromFile loads a textual OEM file into a new source.
func NewOEMSourceFromFile(name, path string) (*OEMSource, error) {
	return oemstore.FromFile(name, path)
}

// NewOEMSourceFromJSON builds a source from a JSON document: a top-level
// array yields one OEM object per element, labelled label.
func NewOEMSourceFromJSON(name, label string, data []byte) (*OEMSource, error) {
	return oemstore.FromJSON(name, label, data)
}

// NewOEMSourceFromJSONFile loads a JSON file into a new source.
func NewOEMSourceFromJSONFile(name, label, path string) (*OEMSource, error) {
	return oemstore.FromJSONFile(name, label, path)
}

// LoadCSV reads header-first CSV data into a new table named tableName in
// db, inferring column types. Wrap the db with NewRelationalWrapper to
// query it.
func LoadCSV(db *RelationalDB, tableName string, r io.Reader) error {
	_, err := relational.LoadCSV(db, tableName, r)
	return err
}

// ParseJSONToOEM converts a JSON document into an OEM object labelled
// label (see the oem package for the mapping).
func ParseJSONToOEM(label string, data []byte) (*Object, error) {
	return oem.FromJSON(label, data)
}

// FormatOEMAsJSON renders an OEM object as JSON.
func FormatOEMAsJSON(o *Object) ([]byte, error) {
	return oem.ToJSON(o)
}

// NewRelationalDB returns an empty relational database.
func NewRelationalDB() *RelationalDB { return relational.NewDB() }

// NewRelationalWrapper exports db as the named OEM source.
func NewRelationalWrapper(name string, db *RelationalDB) *RelationalWrapper {
	return relational.NewWrapper(name, db)
}

// NewRecordStore returns an empty irregular-record store.
func NewRecordStore() *RecordStore { return semistruct.NewStore() }

// NewRecordWrapper exports store as the named OEM source.
func NewRecordWrapper(name string, store *RecordStore) *RecordWrapper {
	return semistruct.NewWrapper(name, store)
}

// NewPartitionedSource builds the logical source name over members,
// partitioned by the value of the keyLabel subobject: every top-level
// object must live in members[ShardOf(key, len(members))]. Member order
// is shard order.
func NewPartitionedSource(name, keyLabel string, members ...Source) (*PartitionedSource, error) {
	return wrapper.NewPartitioned(name, keyLabel, members...)
}

// ShardOf maps a partition-key value to a shard index in [0, shards) —
// the stable hash both data placement and query routing use.
func ShardOf(key string, shards int) int { return wrapper.ShardIndex(key, shards) }

// NewReplicatedSource builds the logical source name over
// answer-equivalent replicas. Member order is the failover order used
// before any routing statistics exist; once the mediator has observed
// exchange latencies and errors, each exchange routes to the best-scored
// member.
func NewReplicatedSource(name string, members ...Source) (*ReplicatedSource, error) {
	return wrapper.NewReplicated(name, members...)
}

// NewXMLSource builds an XML-tier source over already-decoded objects.
func NewXMLSource(name string, tops []*Object) (*XMLSource, error) {
	return xmlsource.New(name, tops)
}

// NewXMLSourceFromReader decodes one XML document from r under mapping m
// into a new source.
func NewXMLSourceFromReader(name string, r io.Reader, m XMLMapping) (*XMLSource, error) {
	return xmlsource.FromReader(name, r, m)
}

// NewXMLSourceFromFile loads an XML file into a new source.
func NewXMLSourceFromFile(name, path string, m XMLMapping) (*XMLSource, error) {
	return xmlsource.FromFile(name, path, m)
}

// DecodeXML maps an XML document to OEM objects under mapping m.
func DecodeXML(r io.Reader, m XMLMapping) ([]*Object, error) {
	return xmlsource.Decode(r, m)
}

// EncodeXML renders OEM objects as an XML document the decoder maps back
// to structurally equal objects.
func EncodeXML(w io.Writer, objs []*Object, m XMLMapping) error {
	return xmlsource.Encode(w, objs, m)
}

// NewHTTPSource builds a source over the JSON-over-HTTP service at
// baseURL.
func NewHTTPSource(name, baseURL string, opts ...HTTPSourceOption) (*HTTPSource, error) {
	return jsonhttp.New(name, baseURL, opts...)
}

// NewHTTPHandler serves tops in the jsonhttp wire format.
func NewHTTPHandler(tops []*Object) *HTTPHandler {
	return jsonhttp.NewHandler(tops)
}

// WithHTTPClient substitutes the HTTP client an HTTPSource issues
// requests with.
func WithHTTPClient(c *http.Client) HTTPSourceOption {
	return jsonhttp.WithHTTPClient(c)
}

// WithHTTPRetries bounds an HTTPSource's retries of transient failures
// and sets the initial backoff.
func WithHTTPRetries(max int, base time.Duration) HTTPSourceOption {
	return jsonhttp.WithRetries(max, base)
}

// NewStreamSource returns an empty append-only event log.
func NewStreamSource(name string, opts StreamOptions) *StreamSource {
	return streamsource.New(name, opts)
}

// FullCapabilities is the capability set of a source supporting the whole
// query language.
func FullCapabilities() Capabilities { return wrapper.FullCapabilities() }
