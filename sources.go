package medmaker

import (
	"io"

	"medmaker/internal/oem"
	"medmaker/internal/oemstore"
	"medmaker/internal/relational"
	"medmaker/internal/semistruct"
	"medmaker/internal/wrapper"
)

// Substrate re-exports: the bundled source implementations, so
// applications can stand up the paper's style of wrappers without touching
// internal packages.
type (
	// OEMSource stores OEM objects natively (fully capable).
	OEMSource = oemstore.Source
	// RelationalDB is the small in-memory relational engine.
	RelationalDB = relational.DB
	// RelationalSchema describes one relation.
	RelationalSchema = relational.Schema
	// RelationalColumn describes one attribute.
	RelationalColumn = relational.Column
	// RelationalWrapper exports a RelationalDB as OEM (the paper's cs
	// wrapper).
	RelationalWrapper = relational.Wrapper
	// RecordStore holds irregular semi-structured records.
	RecordStore = semistruct.Store
	// Record is one irregular record.
	Record = semistruct.Record
	// RecordField is one named field of a Record.
	RecordField = semistruct.Field
	// RecordWrapper exports a RecordStore as OEM (the paper's whois
	// wrapper).
	RecordWrapper = semistruct.Wrapper
	// LimitedSource restricts an inner source's capabilities, modelling
	// the autonomous, capability-poor sources of Section 3.5.
	LimitedSource = wrapper.Limited
	// PartitionedSource presents N member sources holding a
	// hash-partitioned extent as one logical source: point queries on the
	// partition key route to their shard, everything else scatters and
	// gathers. Registered in a mediator, the engine performs the scatter
	// on its own worker pool under the query's ExecPolicy.
	PartitionedSource = wrapper.Partitioned
	// SourceDelta describes one source mutation: the top-level objects it
	// inserted and deleted. Sources emit deltas to ChangeNotifier
	// subscribers; a mediator subscribes to every registered source and
	// delta-maintains its answer caches and materialized views.
	SourceDelta = wrapper.Delta
	// ChangeNotifier is the change-feed capability: sources that can
	// describe their own mutations implement it (all bundled mutable
	// sources do), letting consumers apply deltas instead of dropping
	// derived state wholesale.
	ChangeNotifier = wrapper.Notifier
)

// NewOEMSource returns an empty OEM-native source.
func NewOEMSource(name string) *OEMSource { return oemstore.New(name) }

// NewOEMSourceFromText parses textual OEM data into a new source.
func NewOEMSourceFromText(name, text string) (*OEMSource, error) {
	return oemstore.FromText(name, text)
}

// NewOEMSourceFromFile loads a textual OEM file into a new source.
func NewOEMSourceFromFile(name, path string) (*OEMSource, error) {
	return oemstore.FromFile(name, path)
}

// NewOEMSourceFromJSON builds a source from a JSON document: a top-level
// array yields one OEM object per element, labelled label.
func NewOEMSourceFromJSON(name, label string, data []byte) (*OEMSource, error) {
	return oemstore.FromJSON(name, label, data)
}

// NewOEMSourceFromJSONFile loads a JSON file into a new source.
func NewOEMSourceFromJSONFile(name, label, path string) (*OEMSource, error) {
	return oemstore.FromJSONFile(name, label, path)
}

// LoadCSV reads header-first CSV data into a new table named tableName in
// db, inferring column types. Wrap the db with NewRelationalWrapper to
// query it.
func LoadCSV(db *RelationalDB, tableName string, r io.Reader) error {
	_, err := relational.LoadCSV(db, tableName, r)
	return err
}

// ParseJSONToOEM converts a JSON document into an OEM object labelled
// label (see the oem package for the mapping).
func ParseJSONToOEM(label string, data []byte) (*Object, error) {
	return oem.FromJSON(label, data)
}

// FormatOEMAsJSON renders an OEM object as JSON.
func FormatOEMAsJSON(o *Object) ([]byte, error) {
	return oem.ToJSON(o)
}

// NewRelationalDB returns an empty relational database.
func NewRelationalDB() *RelationalDB { return relational.NewDB() }

// NewRelationalWrapper exports db as the named OEM source.
func NewRelationalWrapper(name string, db *RelationalDB) *RelationalWrapper {
	return relational.NewWrapper(name, db)
}

// NewRecordStore returns an empty irregular-record store.
func NewRecordStore() *RecordStore { return semistruct.NewStore() }

// NewRecordWrapper exports store as the named OEM source.
func NewRecordWrapper(name string, store *RecordStore) *RecordWrapper {
	return semistruct.NewWrapper(name, store)
}

// NewPartitionedSource builds the logical source name over members,
// partitioned by the value of the keyLabel subobject: every top-level
// object must live in members[ShardOf(key, len(members))]. Member order
// is shard order.
func NewPartitionedSource(name, keyLabel string, members ...Source) (*PartitionedSource, error) {
	return wrapper.NewPartitioned(name, keyLabel, members...)
}

// ShardOf maps a partition-key value to a shard index in [0, shards) —
// the stable hash both data placement and query routing use.
func ShardOf(key string, shards int) int { return wrapper.ShardIndex(key, shards) }

// FullCapabilities is the capability set of a source supporting the whole
// query language.
func FullCapabilities() Capabilities { return wrapper.FullCapabilities() }
