package medmaker

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"medmaker/internal/msl"
)

// slowSource delays every answer; it honors context cancellation, like
// the bundled wrappers.
type slowSource struct {
	inner Source
	delay time.Duration
}

func (s *slowSource) Name() string               { return s.inner.Name() }
func (s *slowSource) Capabilities() Capabilities { return s.inner.Capabilities() }

func (s *slowSource) Query(q *msl.Rule) ([]*Object, error) {
	return s.QueryContext(context.Background(), q)
}

func (s *slowSource) QueryContext(ctx context.Context, q *msl.Rule) ([]*Object, error) {
	select {
	case <-time.After(s.delay):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return s.inner.Query(q)
}

// blindSlowSource delays every answer and ignores contexts entirely — the
// worst-case third-party source the wrapper layer's fallback must bound.
type blindSlowSource struct {
	inner Source
	delay time.Duration
}

func (s *blindSlowSource) Name() string               { return s.inner.Name() }
func (s *blindSlowSource) Capabilities() Capabilities { return s.inner.Capabilities() }

func (s *blindSlowSource) Query(q *msl.Rule) ([]*Object, error) {
	time.Sleep(s.delay)
	return s.inner.Query(q)
}

// settleGoroutines waits for the goroutine count to drop back to base,
// failing the test if it does not within two seconds — the leak check
// behind the "every engine goroutine has exited" guarantee.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines did not settle: %d running, started with %d", runtime.NumGoroutine(), base)
}

// executorModes enumerates the three execution strategies every
// cancellation property must hold under.
var executorModes = []struct {
	name     string
	parallel int
	pipeline bool
}{
	{"sequential", 0, false},
	{"parallel", 4, false},
	{"pipelined", 4, true},
}

// TestDeadlineAllExecutors: a 50ms deadline against a slow source must
// surface as context.DeadlineExceeded well before the source's own delay,
// under all three executors, without leaking goroutines.
func TestDeadlineAllExecutors(t *testing.T) {
	for _, mode := range executorModes {
		t.Run(mode.name, func(t *testing.T) {
			cs, whois, _ := scaledSources(t, 20)
			med, err := New(Config{
				Name: "med", Spec: specMS1,
				Sources:     []Source{cs, &slowSource{inner: whois, delay: 5 * time.Second}},
				Parallelism: mode.parallel, Pipeline: mode.pipeline,
			})
			if err != nil {
				t.Fatal(err)
			}
			base := runtime.NumGoroutine()
			ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
			defer cancel()
			start := time.Now()
			_, err = med.QueryStringContext(ctx, `P :- P:<cs_person {<name N>}>@med.`)
			elapsed := time.Since(start)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("error = %v, want context.DeadlineExceeded", err)
			}
			if elapsed > 500*time.Millisecond {
				t.Fatalf("deadline surfaced after %v, want < 500ms", elapsed)
			}
			settleGoroutines(t, base)
		})
	}
}

// TestCancelMidQuery: cancelling the context mid-run tears the executor
// down and surfaces context.Canceled.
func TestCancelMidQuery(t *testing.T) {
	for _, mode := range executorModes {
		t.Run(mode.name, func(t *testing.T) {
			cs, whois, _ := scaledSources(t, 20)
			med, err := New(Config{
				Name: "med", Spec: specMS1,
				Sources:     []Source{cs, &slowSource{inner: whois, delay: 5 * time.Second}},
				Parallelism: mode.parallel, Pipeline: mode.pipeline,
			})
			if err != nil {
				t.Fatal(err)
			}
			base := runtime.NumGoroutine()
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(30 * time.Millisecond)
				cancel()
			}()
			_, err = med.QueryStringContext(ctx, `P :- P:<cs_person {<name N>}>@med.`)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("error = %v, want context.Canceled", err)
			}
			settleGoroutines(t, base)
		})
	}
}

// TestDeadlineAgainstContextBlindSource: the wrapper layer's fallback
// must bound even a source that ignores contexts — the caller gets
// context.DeadlineExceeded promptly, and the abandoned call's goroutine
// drains once the source returns.
func TestDeadlineAgainstContextBlindSource(t *testing.T) {
	cs, whois, _ := scaledSources(t, 20)
	med, err := New(Config{
		Name: "med", Spec: specMS1,
		Sources: []Source{cs, &blindSlowSource{inner: whois, delay: 300 * time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = med.QueryStringContext(ctx, `P :- P:<cs_person {<name N>}>@med.`)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 250*time.Millisecond {
		t.Fatalf("deadline surfaced after %v; the blind source's delay leaked into the caller", elapsed)
	}
	// The abandoned goroutine exits when the blind source's sleep ends.
	settleGoroutines(t, base)
}

// TestLayeredMediatorDeadline: mediators are sources, so a deadline must
// pass through a mediator-over-mediator stack into the bottom source.
func TestLayeredMediatorDeadline(t *testing.T) {
	cs, whois, _ := scaledSources(t, 20)
	inner, err := New(Config{
		Name: "med", Spec: specMS1,
		Sources: []Source{cs, &slowSource{inner: whois, delay: 5 * time.Second}},
	})
	if err != nil {
		t.Fatal(err)
	}
	outer, err := New(Config{
		Name:    "outer",
		Spec:    `<staff {<name N>}> :- <cs_person {<name N>}>@med.`,
		Sources: []Source{inner},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = outer.QueryStringContext(ctx, `X :- X:<staff {<name N>}>@outer.`)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("deadline crossed the mediator stack after %v, want < 500ms", elapsed)
	}
}

// downSource fails every query, counting the attempts.
type downSource struct {
	name  string
	calls int32
}

func (d *downSource) Name() string               { return d.name }
func (d *downSource) Capabilities() Capabilities { return FullCapabilities() }

func (d *downSource) Query(*msl.Rule) ([]*Object, error) {
	d.calls++
	return nil, errors.New("source is down")
}

// unionSpec derives the same view label from two sources, so one source's
// failure is separable from the other's contribution.
const unionSpec = `
<out {<name N>}> :- <person {<name N>}>@whois.
<out {<name N>}> :- <person {<name N>}>@shaky.
`

// TestSkipPolicyDifferential: with OnSourceErrorSkip, a query over one
// healthy and one dead source must return exactly what a mediator over
// the healthy source alone returns, flagged Incomplete and carrying the
// failure. Verified differentially against the healthy-only mediator.
func TestSkipPolicyDifferential(t *testing.T) {
	for _, mode := range executorModes {
		t.Run(mode.name, func(t *testing.T) {
			_, whois, _ := scaledSources(t, 12)
			degraded, err := New(Config{
				Name: "med", Spec: unionSpec,
				Sources:     []Source{whois, &downSource{name: "shaky"}},
				Parallelism: mode.parallel, Pipeline: mode.pipeline,
				Policy: ExecPolicy{OnSourceError: OnSourceErrorSkip},
			})
			if err != nil {
				t.Fatal(err)
			}
			_, whois2, _ := scaledSources(t, 12)
			healthy, err := New(Config{
				Name: "med", Spec: `<out {<name N>}> :- <person {<name N>}>@whois.`,
				Sources: []Source{whois2},
			})
			if err != nil {
				t.Fatal(err)
			}
			rule, err := ParseQuery(`X :- X:<out {<name N>}>@med.`)
			if err != nil {
				t.Fatal(err)
			}
			res, err := degraded.QueryPolicy(context.Background(), rule,
				ExecPolicy{OnSourceError: OnSourceErrorSkip})
			if err != nil {
				t.Fatalf("skip policy surfaced the failure as an error: %v", err)
			}
			if !res.Incomplete {
				t.Fatal("degraded answer not flagged Incomplete")
			}
			if len(res.SourceErrors) == 0 || res.SourceErrors[0].Source != "shaky" {
				t.Fatalf("SourceErrors = %v, want a shaky failure", res.SourceErrors)
			}
			want, err := healthy.Query(rule)
			if err != nil {
				t.Fatal(err)
			}
			got := canonicalize(res.Objects)
			ref := canonicalize(want)
			if len(got) != len(ref) {
				t.Fatalf("degraded answer has %d objects, healthy-only %d", len(got), len(ref))
			}
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("degraded answer diverges from healthy-only mediator at %d:\n%s\nvs\n%s",
						i, got[i], ref[i])
				}
			}
		})
	}
}

// paramSpec joins whois names against a second source via a parameterized
// query node, so the second source sees one exchange per distinct name.
const paramSpec = `
<out {<name N> <email E>}> :- <person {<name N>}>@whois
    AND <contact {<name N> <email E>}>@shaky.
`

// TestSkipCircuitBreaksSource: under Skip the first failure takes the
// source down for the rest of the run — later exchanges never reach it —
// while Partial retries it on every exchange.
func TestSkipCircuitBreaksSource(t *testing.T) {
	run := func(mode ErrorMode) (*downSource, *QueryResult) {
		t.Helper()
		_, whois, _ := scaledSources(t, 10)
		shaky := &downSource{name: "shaky"}
		// Order as written keeps whois outermost, so shaky is the
		// parameterized node receiving one exchange per distinct name.
		opts := DefaultPlanOptions()
		opts.Order = OrderAsWritten
		med, err := New(Config{
			Name: "med", Spec: paramSpec,
			Sources:    []Source{whois, shaky},
			Plan:       &opts,
			QueryBatch: 1, // one exchange per tuple, sequential
		})
		if err != nil {
			t.Fatal(err)
		}
		rule, err := ParseQuery(`X :- X:<out {<name N> <email E>}>@med.`)
		if err != nil {
			t.Fatal(err)
		}
		res, err := med.QueryPolicy(context.Background(), rule, ExecPolicy{OnSourceError: mode})
		if err != nil {
			t.Fatal(err)
		}
		return shaky, res
	}

	skipSrc, skipRes := run(OnSourceErrorSkip)
	if skipSrc.calls != 1 {
		t.Fatalf("skip: source queried %d times, want 1 (circuit break)", skipSrc.calls)
	}
	if !skipRes.Incomplete || len(skipRes.SourceErrors) != 1 {
		t.Fatalf("skip: Incomplete=%v SourceErrors=%d", skipRes.Incomplete, len(skipRes.SourceErrors))
	}

	partialSrc, partialRes := run(OnSourceErrorPartial)
	if partialSrc.calls < 2 {
		t.Fatalf("partial: source queried %d times, want one per exchange", partialSrc.calls)
	}
	if !partialRes.Incomplete || len(partialRes.SourceErrors) != int(partialSrc.calls) {
		t.Fatalf("partial: Incomplete=%v SourceErrors=%d calls=%d",
			partialRes.Incomplete, len(partialRes.SourceErrors), partialSrc.calls)
	}
}

// TestFailPolicyUnchanged: the default policy still aborts on the first
// source failure, with no degradation record.
func TestFailPolicyUnchanged(t *testing.T) {
	_, whois, _ := scaledSources(t, 10)
	med, err := New(Config{
		Name: "med", Spec: unionSpec,
		Sources: []Source{whois, &downSource{name: "shaky"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := med.QueryString(`X :- X:<out {<name N>}>@med.`); err == nil {
		t.Fatal("default policy swallowed a source failure")
	}
}

// TestPerSourceTimeout: a policy timeout bounds each exchange without any
// caller-side context, and under Skip a slow source degrades instead of
// stalling the query.
func TestPerSourceTimeout(t *testing.T) {
	_, whois, _ := scaledSources(t, 12)
	slow := &slowSource{inner: &downSource{name: "shaky"}, delay: 5 * time.Second}
	med, err := New(Config{
		Name: "med", Spec: unionSpec,
		Sources: []Source{whois, slow},
		Policy: ExecPolicy{
			PerSourceTimeout: 50 * time.Millisecond,
			OnSourceError:    OnSourceErrorSkip,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rule, err := ParseQuery(`X :- X:<out {<name N>}>@med.`)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := med.QueryPolicy(context.Background(), rule, med.policy)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("per-source timeout took %v to degrade", elapsed)
	}
	if !res.Incomplete {
		t.Fatal("timed-out source not reported")
	}
	if len(res.SourceErrors) == 0 || !errors.Is(res.SourceErrors[0], context.DeadlineExceeded) {
		t.Fatalf("SourceErrors = %v, want a DeadlineExceeded from shaky", res.SourceErrors)
	}
	if len(res.Objects) == 0 {
		t.Fatal("healthy source's contribution lost")
	}
}

// TestRemoteDeadline: a context deadline bounds a remote exchange — the
// client stops waiting and surfaces context.DeadlineExceeded within the
// acceptance bound even though the server is still evaluating.
func TestRemoteDeadline(t *testing.T) {
	_, whois, _ := scaledSources(t, 10)
	slow := &slowSource{inner: whois, delay: 5 * time.Second}
	addr, srv, err := Serve(slow, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := DialSource(addr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	rule, err := ParseQuery(`N :- <person {<name N>}>@whois.`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = client.QueryContext(ctx, rule)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("remote deadline surfaced after %v, want < 500ms", elapsed)
	}
}

// TestStatsRecordSourceErrors: policy-absorbed failures land in the
// statistics store, so flaky sources are visible to the cost model.
func TestStatsRecordSourceErrors(t *testing.T) {
	_, whois, _ := scaledSources(t, 10)
	med, err := New(Config{
		Name: "med", Spec: unionSpec,
		Sources: []Source{whois, &downSource{name: "shaky"}},
		Policy:  ExecPolicy{OnSourceError: OnSourceErrorSkip},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := med.QueryString(`X :- X:<out {<name N>}>@med.`); err != nil {
		t.Fatal(err)
	}
	if n := med.QueryStats().SourceErrorCount("shaky"); n != 1 {
		t.Fatalf("stats recorded %d errors for shaky, want 1", n)
	}
	if errs := med.QueryStats().SourceErrors("shaky"); len(errs) != 1 {
		t.Fatalf("stats retained %d errors, want 1", len(errs))
	}
}
