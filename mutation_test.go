package medmaker

// Mutation freshness tests: a query issued after a source mutation
// returns must observe the mutation's effects through every derived-state
// layer — answer caches, materialized-view extents, cached plans. The
// change feed makes that hold without TTLs or manual Invalidate calls:
// sources emit deltas, the mediator drops the mutated source's cache
// entries and delta-maintains (or rebuilds) its extents, all
// synchronously inside the mutating call. The differential test then
// proves delta-maintained extents answer-identical to freshly rebuilt
// ones and to a live mediator across the full spec/query matrix, under
// every executor mode; run with -race it doubles as the change-feed
// concurrency harness.

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"medmaker/internal/metrics"
	"medmaker/internal/msl"
	"medmaker/internal/oem"
)

// mutablePaperSources is newPaperSources with the mutation handles kept:
// the relational db and the record store, so tests can grow them after
// the mediator is built.
func mutablePaperSources(t testing.TB) (db *RelationalDB, store *RecordStore, cs, whois Source) {
	t.Helper()
	db = NewRelationalDB()
	emp := db.MustCreateTable(RelationalSchema{
		Name: "employee",
		Columns: []RelationalColumn{
			{Name: "first_name", Kind: oem.KindString},
			{Name: "last_name", Kind: oem.KindString},
			{Name: "title", Kind: oem.KindString},
			{Name: "reports_to", Kind: oem.KindString},
		},
	})
	emp.MustInsert("Joe", "Chung", "professor", "John Hennessy")
	stu := db.MustCreateTable(RelationalSchema{
		Name: "student",
		Columns: []RelationalColumn{
			{Name: "first_name", Kind: oem.KindString},
			{Name: "last_name", Kind: oem.KindString},
			{Name: "year", Kind: oem.KindInt},
		},
	})
	stu.MustInsert("Nick", "Naive", 3)

	store = NewRecordStore()
	store.MustAdd(
		Record{Kind: "person", Fields: []RecordField{
			{Name: "name", Value: "Joe Chung"},
			{Name: "dept", Value: "CS"},
			{Name: "relation", Value: "employee"},
			{Name: "e_mail", Value: "chung@cs"},
		}},
		Record{Kind: "person", Fields: []RecordField{
			{Name: "name", Value: "Nick Naive"},
			{Name: "dept", Value: "CS"},
			{Name: "relation", Value: "student"},
			{Name: "year", Value: 3},
		}},
	)
	return db, store, NewRelationalWrapper("cs", db), NewRecordWrapper("whois", store)
}

// TestMutationFreshReads is the stale-read regression test: a cs_person
// query issued after Insert/Add returns must include the new person —
// with the answer cache on, with materialized views on, with the plan
// cache on, and with all three at once, under every executor mode. No
// Invalidate call, no TTL, no refresh: the change feed alone keeps the
// derived state honest.
func TestMutationFreshReads(t *testing.T) {
	configs := []struct {
		name string
		set  func(c *Config)
	}{
		{"cached", func(c *Config) { c.Cache = &CacheOptions{} }},
		{"materialized", func(c *Config) {
			c.Materialize = &MatViewOptions{Views: []MatView{{Label: "cs_person"}}}
		}},
		{"plancached", func(c *Config) { c.PlanCache = &PlanCacheOptions{} }},
		{"all", func(c *Config) {
			c.Cache = &CacheOptions{}
			c.Materialize = &MatViewOptions{Views: []MatView{{Label: "cs_person"}}}
			c.PlanCache = &PlanCacheOptions{}
		}},
	}
	for _, mode := range executorModes {
		for _, cfg := range configs {
			t.Run(mode.name+"/"+cfg.name, func(t *testing.T) {
				db, store, cs, whois := mutablePaperSources(t)
				c := Config{
					Name: "med", Spec: specMS1,
					Sources:     []Source{cs, whois},
					Parallelism: mode.parallel,
					Pipeline:    mode.pipeline,
				}
				cfg.set(&c)
				med, err := New(c)
				if err != nil {
					t.Fatal(err)
				}
				all := `X :- X:<cs_person {<name N>}>@med.`
				byName := `X :- X:<cs_person {<name 'Ann Alpha'>}>@med.`
				// Warm every layer: extents build, caches and plans fill.
				before, err := med.QueryString(all)
				if err != nil {
					t.Fatal(err)
				}
				if got, err := med.QueryString(byName); err != nil || len(got) != 0 {
					t.Fatalf("pre-mutation query for Ann Alpha: %d objects, err=%v", len(got), err)
				}
				invalidated := metrics.Default().Counter("cache.invalidated").Value()

				// Mutate both sources: the semistructured whois store and
				// the relational cs db.
				store.MustAdd(Record{Kind: "person", Fields: []RecordField{
					{Name: "name", Value: "Ann Alpha"},
					{Name: "dept", Value: "CS"},
					{Name: "relation", Value: "employee"},
				}})
				emp, ok := db.Table("employee")
				if !ok {
					t.Fatal("employee table missing")
				}
				emp.MustInsert("Ann", "Alpha", "lecturer", "Joe Chung")

				got, err := med.QueryString(byName)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != 1 {
					t.Fatalf("post-mutation query for Ann Alpha: %d objects, want 1", len(got))
				}
				if s := oem.Format(got[0]); !containsAll(s, "Ann Alpha", "lecturer") {
					t.Fatalf("stale or partial answer:\n%s", s)
				}
				after, err := med.QueryString(all)
				if err != nil {
					t.Fatal(err)
				}
				if len(after) != len(before)+1 {
					t.Fatalf("cs_person count after mutation: %d, want %d", len(after), len(before)+1)
				}
				if c.Cache != nil {
					if now := metrics.Default().Counter("cache.invalidated").Value(); now <= invalidated {
						t.Fatalf("cache.invalidated did not move: %d -> %d", invalidated, now)
					}
				}
			})
		}
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		found := false
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// TestMutationFreshReadsOEMStore covers the OEM-native source, including
// the delete path: Add must surface through a materialized, cached
// mediator immediately, and Remove must take the object back out.
func TestMutationFreshReadsOEMStore(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	people := randomPeople(r, 8)
	whoisSrc := NewOEMSource("whois")
	if err := whoisSrc.Add(people...); err != nil {
		t.Fatal(err)
	}
	med, err := New(Config{
		Name:        "med",
		Spec:        `<profile {<name N> | R}> :- <person {<name N> | R}>@whois.`,
		Sources:     []Source{whoisSrc},
		Cache:       &CacheOptions{},
		Materialize: &MatViewOptions{Views: []MatView{{Label: "profile"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	all := `X :- X:<profile {<name N>}>@med.`
	base, err := med.QueryString(all)
	if err != nil {
		t.Fatal(err)
	}

	gen := oem.NewIDGen("mut")
	novel := &Object{OID: gen.Next(), Label: "person", Value: oem.Set{
		oem.New(gen.Next(), "name", "ZZ Top"),
		oem.New(gen.Next(), "dept", "CS"),
	}}
	if err := whoisSrc.Add(novel); err != nil {
		t.Fatal(err)
	}
	got, err := med.QueryString(all)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(base)+1 {
		t.Fatalf("after Add: %d profiles, want %d", len(got), len(base)+1)
	}
	stats := med.MatViewStats()
	if stats.Deltas == 0 {
		t.Fatalf("insert did not take the delta fast path: %+v", stats)
	}

	if removed := whoisSrc.Remove(novel.OID); len(removed) != 1 {
		t.Fatalf("Remove returned %d objects, want 1", len(removed))
	}
	med.WaitMatViews()
	got, err = med.QueryString(all)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(base) {
		t.Fatalf("after Remove: %d profiles, want %d", len(got), len(base))
	}
	if stats := med.MatViewStats(); stats.DeltaFallbacks == 0 {
		t.Fatalf("delete did not fall back to rebuild: %+v", stats)
	}
}

// switchSource delegates to an OEM source but can be switched off, at
// which point every query fails. With an OnSourceErrorSkip policy a
// mediator builds degraded (Incomplete) extents while the source is
// down — the recovery tests flip the switch back and assert the extent
// heals.
type switchSource struct {
	inner *OEMSource
	mu    sync.Mutex
	down  bool
}

func (s *switchSource) setDown(down bool) {
	s.mu.Lock()
	s.down = down
	s.mu.Unlock()
}

func (s *switchSource) Name() string               { return s.inner.Name() }
func (s *switchSource) Capabilities() Capabilities { return s.inner.Capabilities() }
func (s *switchSource) Query(q *msl.Rule) ([]*Object, error) {
	s.mu.Lock()
	down := s.down
	s.mu.Unlock()
	if down {
		return nil, fmt.Errorf("source %s is down", s.inner.Name())
	}
	return s.inner.Query(q)
}

// TestMatViewIncompleteRecovery: an extent built while its source was
// down (empty, Incomplete under a skip policy) must not stay Incomplete
// forever. Once the source recovers and RecoverInterval elapses, the
// next query triggers a bounded background rebuild that replaces the
// degraded extent with a complete one — no Invalidate, no TTL.
func TestMatViewIncompleteRecovery(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	people := randomPeople(r, 6)
	inner := NewOEMSource("whois")
	if err := inner.Add(people...); err != nil {
		t.Fatal(err)
	}
	src := &switchSource{inner: inner, down: true}

	var clockMu sync.Mutex
	now := time.Unix(1000, 0)
	clock := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		clockMu.Lock()
		now = now.Add(d)
		clockMu.Unlock()
	}

	med, err := New(Config{
		Name:    "med",
		Spec:    `<profile {<name N> | R}> :- <person {<name N> | R}>@whois.`,
		Sources: []Source{src},
		Materialize: &MatViewOptions{
			Views:           []MatView{{Label: "profile"}},
			Clock:           clock,
			RecoverInterval: time.Minute,
		},
		Policy: ExecPolicy{OnSourceError: OnSourceErrorSkip},
	})
	if err != nil {
		t.Fatal(err)
	}
	all := `X :- X:<profile {<name N>}>@med.`

	// Source down: the extent builds empty and Incomplete.
	if got, err := med.QueryString(all); err != nil || len(got) != 0 {
		t.Fatalf("down: %d objects, err=%v", len(got), err)
	}
	med.WaitMatViews()
	// The first hit on the degraded extent schedules a recovery refresh
	// immediately (no prior attempt), which fails the same way and
	// re-installs an Incomplete extent — stamping the retry clock.
	if got, err := med.QueryString(all); err != nil || len(got) != 0 {
		t.Fatalf("down hit: %d objects, err=%v", len(got), err)
	}
	med.WaitMatViews()

	// Source back up, but within RecoverInterval of the last attempt:
	// the degraded extent keeps serving and no refresh fires.
	src.setDown(false)
	recovers := metrics.Default().Counter("matview.recover").Value()
	if got, err := med.QueryString(all); err != nil || len(got) != 0 {
		t.Fatalf("healed but rate-limited: %d objects, err=%v", len(got), err)
	}
	med.WaitMatViews()
	if v := metrics.Default().Counter("matview.recover").Value(); v != recovers {
		t.Fatalf("recovery refresh fired inside RecoverInterval: %d -> %d", recovers, v)
	}

	// Past the interval: the next hit triggers the recovery rebuild.
	advance(2 * time.Minute)
	if _, err := med.QueryString(all); err != nil {
		t.Fatal(err)
	}
	med.WaitMatViews()
	if v := metrics.Default().Counter("matview.recover").Value(); v <= recovers {
		t.Fatalf("recovery refresh did not fire after RecoverInterval: %d -> %d", recovers, v)
	}
	got, err := med.QueryString(all)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(people) {
		t.Fatalf("recovered extent serves %d profiles, want %d", len(got), len(people))
	}

	// The healed extent is complete: no further recovery refreshes fire,
	// even well past the interval.
	settled := metrics.Default().Counter("matview.recover").Value()
	advance(10 * time.Minute)
	if _, err := med.QueryString(all); err != nil {
		t.Fatal(err)
	}
	med.WaitMatViews()
	if v := metrics.Default().Counter("matview.recover").Value(); v != settled {
		t.Fatalf("complete extent still retries recovery: %d -> %d", settled, v)
	}
}

// mutPerson builds a whois person whose name splits into the
// first_name/last_name pair of mutRelation(i, …), so inserted pairs join
// through specMS1's decomp the same way randomPeople/randomRelations do.
func mutPerson(gen *oem.IDGen, i int, rel string, extra ...*Object) *Object {
	subs := oem.Set{
		oem.New(gen.Next(), "name", fmt.Sprintf("M%03d X%03d", i, i)),
		oem.New(gen.Next(), "dept", "CS"),
		oem.New(gen.Next(), "relation", rel),
	}
	subs = append(subs, extra...)
	return &Object{OID: gen.Next(), Label: "person", Value: subs}
}

func mutRelation(gen *oem.IDGen, i int, label string) *Object {
	subs := oem.Set{
		oem.New(gen.Next(), "first_name", fmt.Sprintf("M%03d", i)),
		oem.New(gen.Next(), "last_name", fmt.Sprintf("X%03d", i)),
	}
	if label == "student" {
		subs = append(subs, oem.New(gen.Next(), "year", 1+i%5))
	}
	return &Object{OID: gen.Next(), Label: label, Value: subs}
}

// TestMutationDifferential interleaves inserts and deletes with the full
// spec/query matrix and holds three mediators over the same mutable
// sources to the same answers after every step:
//
//   - delta:   materialized, maintained only by the change feed (insert
//     deltas through the fast path, deletes via the rebuild fallback);
//   - rebuilt: materialized, force-rebuilt from scratch after every step
//     (Invalidate + Refresh) — the ground-truth extent;
//   - live:    no materialization at all.
//
// Equality of canonicalized answers across all three — including warm
// queries served straight from extents — is the proof that
// delta-maintained extents are byte-identical to rebuilt ones. The last
// step mutates concurrently with queries; under -race this exercises the
// feed's locking.
func TestMutationDifferential(t *testing.T) {
	specs, queries := columnarSuite()
	ctx := context.Background()
	for _, mode := range executorModes {
		t.Run(mode.name, func(t *testing.T) {
			var totalDeltas, totalFallbacks int64
			for si, spec := range specs {
				r := rand.New(rand.NewSource(int64(11 + si)))
				people := randomPeople(r, 20)
				whoisSrc := NewOEMSource("whois")
				if err := whoisSrc.Add(people...); err != nil {
					t.Fatal(err)
				}
				csSrc := NewOEMSource("cs")
				if err := csSrc.Add(randomRelations(r, 20)...); err != nil {
					t.Fatal(err)
				}
				xmlSrc, streamSrc := heteroSources(t, people)
				base := Config{
					Name: "med", Spec: spec,
					Sources:     []Source{csSrc, whoisSrc, xmlSrc, streamSrc},
					Parallelism: mode.parallel,
					Pipeline:    mode.pipeline,
				}
				live, err := New(base)
				if err != nil {
					t.Fatal(err)
				}
				mk := func() *Mediator {
					c := base
					c.Materialize = &MatViewOptions{Views: materializedLabels(t, spec)}
					m, err := New(c)
					if err != nil {
						t.Fatal(err)
					}
					return m
				}
				delta, rebuilt := mk(), mk()

				// Prime: build every queryable extent before mutating, so
				// deltas land on populated extents rather than cold views.
				for _, q := range queries {
					delta.QueryString(q)
					rebuilt.QueryString(q)
				}
				delta.WaitMatViews()
				rebuilt.WaitMatViews()

				gen := oem.NewIDGen("mut")
				check := func(step string) {
					t.Helper()
					// Ground truth: rebuild every extent from scratch.
					rebuilt.Invalidate("")
					if err := rebuilt.Refresh(ctx, ""); err != nil {
						t.Fatalf("spec=%d %s: refresh: %v", si, step, err)
					}
					// Settle the delta mediator's fallback rebuilds.
					delta.WaitMatViews()
					for qi, q := range queries {
						want, err := live.QueryString(q)
						if err != nil {
							continue // query does not apply to this spec
						}
						wantKeys := canonicalize(want)
						for _, m := range []struct {
							name string
							med  *Mediator
						}{{"delta", delta}, {"rebuilt", rebuilt}} {
							// Twice: the first may pay a build, the second
							// is served from the maintained extent.
							for _, pass := range []string{"cold", "warm"} {
								got, err := m.med.QueryString(q)
								if err != nil {
									t.Fatalf("spec=%d %s query=%d %s/%s: %v", si, step, qi, m.name, pass, err)
								}
								gotKeys := canonicalize(got)
								if len(gotKeys) != len(wantKeys) {
									t.Fatalf("spec=%d %s query=%d %s/%s: %d objects, live has %d\nquery: %s",
										si, step, qi, m.name, pass, len(gotKeys), len(wantKeys), q)
								}
								for i := range gotKeys {
									if gotKeys[i] != wantKeys[i] {
										t.Fatalf("spec=%d %s query=%d %s/%s: result %d differs\nquery: %s\ngot:  %s\nwant: %s",
											si, step, qi, m.name, pass, i, q, gotKeys[i], wantKeys[i])
									}
								}
							}
						}
					}
				}

				// Step 1: insert a joined employee pair — insert-only, the
				// delta fast path where the spec admits it.
				if err := whoisSrc.Add(mutPerson(gen, 101, "employee")); err != nil {
					t.Fatal(err)
				}
				if err := csSrc.Add(mutRelation(gen, 101, "employee")); err != nil {
					t.Fatal(err)
				}
				check("insert-employee")

				// Step 2: a student pair plus an e_mail'd person — more
				// irregular shapes through the same path.
				if err := whoisSrc.Add(
					mutPerson(gen, 102, "student", oem.New(gen.Next(), "year", 4)),
					mutPerson(gen, 103, "employee", oem.New(gen.Next(), "e_mail", "m103@x")),
				); err != nil {
					t.Fatal(err)
				}
				if err := csSrc.Add(mutRelation(gen, 102, "student"), mutRelation(gen, 103, "employee")); err != nil {
					t.Fatal(err)
				}
				check("insert-irregular")

				// Step 3: deletes — including 'P004 Q004', the name query 0
				// pins — forcing the rebuild fallback.
				wp := whoisSrc.Store().TopLevel()
				cp := csSrc.Store().TopLevel()
				if removed := whoisSrc.Remove(wp[4].OID); len(removed) != 1 {
					t.Fatalf("spec=%d: whois delete removed %d", si, len(removed))
				}
				if removed := csSrc.Remove(cp[7].OID); len(removed) != 1 {
					t.Fatalf("spec=%d: cs delete removed %d", si, len(removed))
				}
				check("delete")

				// Step 4: inserts after the delete land on the rebuilt
				// extents; a stream append rides the same delta path for
				// the spec that reads the event log.
				if err := whoisSrc.Add(mutPerson(gen, 104, "employee")); err != nil {
					t.Fatal(err)
				}
				if err := csSrc.Add(mutRelation(gen, 104, "employee")); err != nil {
					t.Fatal(err)
				}
				if err := streamSrc.Append(mutPerson(gen, 105, "employee")); err != nil {
					t.Fatal(err)
				}
				check("insert-after-delete")

				// Step 5: mutate concurrently with queries on the
				// delta-maintained mediator, then compare once settled.
				var wg sync.WaitGroup
				wg.Add(1)
				go func() {
					defer wg.Done()
					for k := 0; k < 3; k++ {
						whoisSrc.Add(mutPerson(gen, 110+k, "employee"))
						csSrc.Add(mutRelation(gen, 110+k, "employee"))
					}
				}()
				for j := 0; j < 4; j++ {
					delta.QueryString(queries[j%len(queries)])
				}
				wg.Wait()
				check("concurrent-insert")

				st := delta.MatViewStats()
				totalDeltas += st.Deltas
				totalFallbacks += st.DeltaFallbacks
			}
			// Across the matrix both maintenance paths must have run: the
			// fast path on insert-only steps of delta-evaluable specs, the
			// fallback on deletes and on fused/negated specs.
			if totalDeltas == 0 {
				t.Fatal("no mutation took the delta fast path")
			}
			if totalFallbacks == 0 {
				t.Fatal("no mutation took the rebuild fallback")
			}
		})
	}
}
