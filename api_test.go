package medmaker

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestAPISurface exercises the small public helpers end to end.
func TestAPISurface(t *testing.T) {
	if opts := DefaultPlanOptions(); !opts.PushConditions || !opts.Parameterize || !opts.DupElim {
		t.Fatalf("DefaultPlanOptions = %+v", opts)
	}
	rule, err := TranslateLorel(`select X from med.person X where X.dept = "CS"`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rule.String(), "<dept 'CS'>") {
		t.Fatalf("TranslateLorel: %s", rule)
	}

	src, err := NewOEMSourceFromText("people", `<person, set, {<name, 'A'>}>`)
	if err != nil {
		t.Fatal(err)
	}
	med, err := New(Config{
		Name:    "med",
		Spec:    `<v {<name N>}> :- <person {<name N>}>@people.`,
		Sources: []Source{src},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := med.Sources(); !reflect.DeepEqual(got, []string{"people"}) {
		t.Fatalf("Sources = %v", got)
	}
	if med.Spec() == nil || len(med.Spec().Rules) != 1 {
		t.Fatal("Spec accessor")
	}
	caps := med.Capabilities()
	if !caps.ValueConditions || caps.Wildcards {
		t.Fatalf("mediator capabilities: %+v", caps)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "p.oem")
	if err := os.WriteFile(path, []byte(`<person, set, {<name, 'B'>}>`), 0o600); err != nil {
		t.Fatal(err)
	}
	fileSrc, err := NewOEMSourceFromFile("file_people", path)
	if err != nil {
		t.Fatal(err)
	}
	if fileSrc.Store().Len() != 1 {
		t.Fatal("NewOEMSourceFromFile")
	}
}

// TestAddSourceReplacement swaps a source at runtime; the unchanged
// specification keeps working against the replacement.
func TestAddSourceReplacement(t *testing.T) {
	v1, err := NewOEMSourceFromText("people", `<person, set, {<name, 'Old Timer'>, <dept, 'CS'>}>`)
	if err != nil {
		t.Fatal(err)
	}
	med, err := New(Config{
		Name:    "med",
		Spec:    `<staff {<name N>}> :- <person {<name N> <dept 'CS'>}>@people.`,
		Sources: []Source{v1},
	})
	if err != nil {
		t.Fatal(err)
	}
	first, err := med.QueryString(`X :- X:<staff {<name N>}>@med.`)
	if err != nil || len(first) != 1 {
		t.Fatalf("before swap: %v, %d objects", err, len(first))
	}
	// The source moves behind TCP with new contents; same name, same spec.
	v2, err := NewOEMSourceFromText("people", `
	    <person, set, {<name, 'New Hire'>, <dept, 'CS'>}>
	    <person, set, {<name, 'Also New'>, <dept, 'CS'>}>`)
	if err != nil {
		t.Fatal(err)
	}
	addr, srv, err := Serve(v2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	remote, err := DialSource(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	med.AddSource(remote)
	after, err := med.QueryString(`X :- X:<staff {<name N>}>@med.`)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 2 {
		t.Fatalf("after swap: %d objects", len(after))
	}
}

// TestServeAndDialMediator covers the public remote helpers by serving a
// whole mediator and querying it over TCP.
func TestServeAndDialMediator(t *testing.T) {
	med := newMed(t, nil)
	addr, srv, err := Serve(med, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := DialSource(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if client.Name() != "med" {
		t.Fatalf("remote mediator name %q", client.Name())
	}
	q, err := ParseQuery(`JC :- JC:<cs_person {<name 'Joe Chung'>}>@med.`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := client.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !got[0].StructuralEqual(figure24) {
		t.Fatalf("remote mediator answer:\n%s", FormatOEM(got...))
	}
}

// TestExplainCoversAllNodeKinds prints a plan containing every operator
// kind, exercising the Label/Detail/OutVars methods.
func TestExplainCoversAllNodeKinds(t *testing.T) {
	cs, whois := newPaperSources(t)
	// Two skolem rules force union + fuse; the join baseline forces a
	// hash-join node.
	opts := PlanOptions{PushConditions: true, Parameterize: false, DupElim: true}
	med, err := New(Config{
		Name: "med",
		Spec: `
		<person(N) anyone {<name N>}> :- <person {<name N> <relation R>}>@whois AND <R {<first_name F>}>@cs.
		<person(N) anyone {<name N>}> :- <person {<name N>}>@whois.`,
		Sources: []Source{cs, whois},
		Plan:    &opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := med.Explain(`X :- X:<anyone {<name N>}>@med.`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"union", "fuse", "hash-join", "dedup", "construct", "query(whois)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
	// And it runs.
	got, err := med.QueryString(`X :- X:<anyone {<name N>}>@med.`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("anyone view: %d objects", len(got))
	}
}
