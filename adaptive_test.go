package medmaker

// Tests for the adaptive optimizer's closed loop: feedback-driven
// cardinalities must never change answers (order invariance across the
// differential suite), must flip a bind-join order the condition-count
// heuristic gets wrong, and must trigger the plan cache's background
// revalidation when the statistics a cached plan was built on drift.

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"medmaker/internal/engine"
	"medmaker/internal/oem"
)

// TestAdaptiveOrderInvariance runs every order mode — including the
// adaptive one, cold and after a traced warmup — through every executor
// mode over the differential suite, and requires byte-identical answers
// to a serial heuristic baseline. Reordering is an optimization, never a
// semantics change.
func TestAdaptiveOrderInvariance(t *testing.T) {
	specs, queries := columnarSuite()
	r := rand.New(rand.NewSource(11))
	people := randomPeople(r, 30)
	relations := randomRelations(r, 30)
	whoisSrc := NewOEMSource("whois")
	if err := whoisSrc.Add(people...); err != nil {
		t.Fatal(err)
	}
	csSrc := NewOEMSource("cs")
	if err := csSrc.Add(relations...); err != nil {
		t.Fatal(err)
	}
	xmlSrc, streamSrc := heteroSources(t, people)
	modes := []OrderMode{OrderHeuristic, OrderReversed, OrderStats, OrderAdaptive}
	execs := []struct {
		par      int
		pipeline bool
	}{{1, false}, {4, false}, {4, true}}
	for si, spec := range specs {
		mk := func(order OrderMode, par int, pipeline bool) *Mediator {
			opts := DefaultPlanOptions()
			opts.Order = order
			med, err := New(Config{
				Name: "med", Spec: spec,
				Sources:     []Source{csSrc, whoisSrc, xmlSrc, streamSrc},
				Plan:        &opts,
				Parallelism: par,
				Pipeline:    pipeline,
			})
			if err != nil {
				t.Fatal(err)
			}
			return med
		}
		baseline := mk(OrderHeuristic, 1, false)
		for _, mode := range modes {
			for _, ex := range execs {
				med := mk(mode, ex.par, ex.pipeline)
				// One mediator answers the whole query list, so later
				// queries plan against statistics the earlier ones taught
				// it — the adaptive path is exercised warm, not just cold.
				for qi, qText := range queries {
					want, err := baseline.QueryString(qText)
					if err != nil {
						continue // query does not apply to this spec
					}
					wantC := canonicalize(want)
					q, err := ParseQuery(qText)
					if err != nil {
						t.Fatal(err)
					}
					// Cold pass, traced so actual cardinalities feed back.
					res, _, err := med.QueryTraced(context.Background(), q)
					if err != nil {
						t.Fatalf("spec=%d query=%d mode=%v par=%d pipeline=%v cold: %v",
							si, qi, mode, ex.par, ex.pipeline, err)
					}
					if got := canonicalize(res.Objects); !reflect.DeepEqual(got, wantC) {
						t.Fatalf("spec=%d query=%d mode=%v par=%d pipeline=%v cold: answers diverge\n%v\nvs\n%v",
							si, qi, mode, ex.par, ex.pipeline, got, wantC)
					}
					// Warm pass: replanned with learned statistics.
					warm, err := med.QueryString(qText)
					if err != nil {
						t.Fatalf("spec=%d query=%d mode=%v par=%d pipeline=%v warm: %v",
							si, qi, mode, ex.par, ex.pipeline, err)
					}
					if got := canonicalize(warm); !reflect.DeepEqual(got, wantC) {
						t.Fatalf("spec=%d query=%d mode=%v par=%d pipeline=%v warm: answers diverge\n%v\nvs\n%v",
							si, qi, mode, ex.par, ex.pipeline, got, wantC)
					}
				}
			}
		}
	}
}

// planJoinOrder lists a plan's query-node sources outermost first.
func planJoinOrder(t *testing.T, med *Mediator, qText string) []string {
	t.Helper()
	q, err := ParseQuery(qText)
	if err != nil {
		t.Fatal(err)
	}
	physical, _, err := med.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	var walk func(engine.Node)
	walk = func(n engine.Node) {
		for _, k := range n.Kids() {
			walk(k)
		}
		if qn, ok := n.(*engine.QueryNode); ok {
			out = append(out, qn.Source)
		}
	}
	walk(physical.Root)
	return out
}

// bindJoinSources builds the workload the condition-count heuristic gets
// wrong: a large extent whose pushed conditions select every row, joined
// against a tiny condition-free extent.
func bindJoinSources(t *testing.T, bigRows, smallRows int) (*OEMSource, *OEMSource) {
	t.Helper()
	big := NewOEMSource("big")
	for i := 0; i < bigRows; i++ {
		if err := big.Add(oem.NewSet("", "listing",
			oem.New("", "cat", "tools"),
			oem.New("", "stock", "yes"),
			oem.New("", "sku", fmt.Sprintf("k%03d", i)))); err != nil {
			t.Fatal(err)
		}
	}
	small := NewOEMSource("small")
	for i := 0; i < smallRows; i++ {
		if err := small.Add(oem.NewSet("", "special",
			oem.New("", "sku", fmt.Sprintf("k%03d", i*7)),
			oem.New("", "vendor", fmt.Sprintf("v%d", i)))); err != nil {
			t.Fatal(err)
		}
	}
	return big, small
}

// TestAdaptiveLearnsBindJoinOrder: cold, the adaptive planner has no
// observations and falls back to the paper's heuristic, which puts the
// conditioned big extent outermost. A traced warmup teaches the store
// that those conditions select everything and that the small side probes
// are cheap; the warm plan must flip to small-outer, with answers
// unchanged against a heuristic mediator.
func TestAdaptiveLearnsBindJoinOrder(t *testing.T) {
	const spec = `<deal {<sku S> <vendor V>}> :-
	    <special {<sku S> <vendor V>}>@small AND
	    <listing {<cat 'tools'> <stock 'yes'> <sku S>}>@big.`
	const query = `X :- X:<deal {<sku S> <vendor V>}>@med.`
	mk := func(order OrderMode) *Mediator {
		big, small := bindJoinSources(t, 300, 5)
		opts := DefaultPlanOptions()
		opts.Order = order
		med, err := New(Config{
			Name: "med", Spec: spec,
			Sources: []Source{big, small},
			Plan:    &opts,
		})
		if err != nil {
			t.Fatal(err)
		}
		return med
	}
	adaptive := mk(OrderAdaptive)
	cold := planJoinOrder(t, adaptive, query)
	if len(cold) != 2 || cold[0] != "big" {
		t.Fatalf("cold order %v; want the heuristic's big-outer fallback", cold)
	}
	q, err := ParseQuery(query)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := adaptive.QueryTraced(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	warm := planJoinOrder(t, adaptive, query)
	if len(warm) != 2 || warm[0] != "small" {
		t.Fatalf("warm order %v; want small-outer after feedback", warm)
	}
	want, err := mk(OrderHeuristic).QueryString(query)
	if err != nil {
		t.Fatal(err)
	}
	got, err := adaptive.QueryString(query)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(canonicalize(got), canonicalize(want)) {
		t.Fatal("adaptive reordering changed the answers")
	}
}

// TestPlanCacheDriftRevalidation: a plan compiled before any statistics
// existed is revalidated in the background once execution feedback shows
// its estimates drifted past DriftRatio, exactly once; the refreshed
// plan carries accurate estimates, so further hits do not replan.
func TestPlanCacheDriftRevalidation(t *testing.T) {
	src := NewOEMSource("people")
	for i := 0; i < 20; i++ {
		if err := src.Add(oem.NewSet("", "person",
			oem.New("", "name", fmt.Sprintf("P%02d", i)),
			oem.New("", "dept", "CS"))); err != nil {
			t.Fatal(err)
		}
	}
	med, err := New(Config{
		Name:      "med",
		Spec:      `<staff {<name N> <dept D>}> :- <person {<name N> <dept D>}>@people.`,
		Sources:   []Source{src},
		PlanCache: &PlanCacheOptions{MaxEntries: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(`X :- X:<staff {<dept 'CS'>}>@med.`)
	if err != nil {
		t.Fatal(err)
	}
	// Cold: compile + execute; execution folds the real cardinality (20
	// rows against a blind estimate) into the store.
	if _, _, err := med.QueryTraced(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	if med.PlanCacheStats().Refreshed != 0 {
		t.Fatal("cold compile counted as a refresh")
	}
	// Hit: the cached plan's stats generation is stale and the learned
	// estimate diverges past DriftRatio — a background replan starts.
	_, qt, err := med.QueryTraced(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	med.WaitReplans()
	if got := med.PlanCacheStats().Refreshed; got != 1 {
		t.Fatalf("refreshed %d plans, want 1", got)
	}
	if qt.Snapshot().Annotations["plan.drift"] != 1 {
		t.Fatal("drifted hit not annotated with plan.drift")
	}
	// The refreshed plan was compiled against the learned statistics:
	// another hit sees matching estimates and does not replan again.
	if _, _, err := med.QueryTraced(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	med.WaitReplans()
	if got := med.PlanCacheStats().Refreshed; got != 1 {
		t.Fatalf("stable plan refreshed again: %d", got)
	}
	if n, err := med.QueryString(`X :- X:<staff {<dept 'CS'>}>@med.`); err != nil || len(n) != 20 {
		t.Fatalf("answers after refresh: %d objects, %v", len(n), err)
	}
}
