package handcoded

import (
	"testing"

	"medmaker/internal/oem"
	"medmaker/internal/relational"
	"medmaker/internal/semistruct"
	"medmaker/internal/workload"
)

func paperSources(t *testing.T) (*relational.Wrapper, *semistruct.Wrapper) {
	t.Helper()
	staff, err := workload.GenStaff(workload.StaffConfig{Persons: 0})
	if err != nil {
		t.Fatal(err)
	}
	emp, _ := staff.DB.Table("employee")
	emp.MustInsert("Joe", "Chung", "professor", "John Hennessy")
	stu, _ := staff.DB.Table("student")
	stu.MustInsert("Nick", "Naive", 3)
	staff.Store.MustAdd(
		semistruct.Record{Kind: "person", Fields: []semistruct.Field{
			{Name: "name", Value: "Joe Chung"}, {Name: "dept", Value: "CS"},
			{Name: "relation", Value: "employee"}, {Name: "e_mail", Value: "chung@cs"},
		}},
		semistruct.Record{Kind: "person", Fields: []semistruct.Field{
			{Name: "name", Value: "Nick Naive"}, {Name: "dept", Value: "CS"},
			{Name: "relation", Value: "student"}, {Name: "year", Value: 3},
		}},
	)
	return relational.NewWrapper("cs", staff.DB), semistruct.NewWrapper("whois", staff.Store)
}

func TestHandcodedFigure24(t *testing.T) {
	cs, whois := paperSources(t)
	m := New(cs, whois)
	got, err := m.CSPersonByName("Joe Chung")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d objects", len(got))
	}
	want := oem.MustParse(`<cs_person, set, {
	    <name, 'Joe Chung'>, <relation, 'employee'>, <e_mail, 'chung@cs'>,
	    <title, 'professor'>, <reports_to, 'John Hennessy'>}>`)[0]
	if !got[0].StructuralEqual(want) {
		t.Fatalf("hand-coded result differs from Figure 2.4:\n%s", oem.Format(got[0]))
	}
}

func TestHandcodedFullView(t *testing.T) {
	cs, whois := paperSources(t)
	m := New(cs, whois)
	got, err := m.CSPersonByName("")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("full view has %d objects", len(got))
	}
}

func TestHandcodedNoMatch(t *testing.T) {
	cs, whois := paperSources(t)
	m := New(cs, whois)
	got, err := m.CSPersonByName("Nobody Here")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("phantom person found")
	}
}

func TestHandcodedScaledAgreement(t *testing.T) {
	// At scale, the hand-coded view size equals the number of persons in
	// both sources whose relation row exists (all of them, by
	// construction).
	staff, err := workload.GenStaff(workload.StaffConfig{
		Persons: 60, Departments: 3, EmployeeFraction: 0.5, Irregularity: 0.3,
		WhoisOnly: 10, CSOnly: 10, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := New(relational.NewWrapper("cs", staff.DB), semistruct.NewWrapper("whois", staff.Store))
	got, err := m.CSPersonByName("")
	if err != nil {
		t.Fatal(err)
	}
	// Only dept-CS persons pass the hard-coded dept filter.
	want := 0
	for i := range staff.Names {
		if i%3 == 0 { // DeptName(0) == "CS" with 3 departments
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("hand-coded view: %d objects, want %d", len(got), want)
	}
}
