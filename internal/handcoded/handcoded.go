// Package handcoded is a hard-coded mediator for the paper's cs/whois
// scenario: the integration logic of specification MS1 written directly in
// Go against the wrapper interface, the way TSIMMIS mediators were built
// before MedMaker ("the significant programming effort involved in the
// hardcoded development of TSIMMIS mediators suggests the need for …
// MedMaker", Section 1.2).
//
// It answers the same queries as the declarative mediator and serves as
// the baseline the declarative-overhead benchmarks compare against. Note
// what the hand-coding costs: the source schemas, the join strategy, the
// name decomposition, and the handling of the schematic discrepancy are
// all frozen into code, and every new query shape needs new code.
package handcoded

import (
	"fmt"

	"medmaker/internal/extfn"
	"medmaker/internal/msl"
	"medmaker/internal/oem"
	"medmaker/internal/wrapper"
)

// Mediator hard-codes the med view of specification MS1 over a cs-style
// relational wrapper and a whois-style wrapper.
type Mediator struct {
	cs    wrapper.Source
	whois wrapper.Source
	gen   *oem.IDGen
}

// New builds the hard-coded mediator over the two sources.
func New(cs, whois wrapper.Source) *Mediator {
	return &Mediator{cs: cs, whois: whois, gen: oem.NewIDGen("hc")}
}

// CSPersonByName returns the integrated cs_person objects whose name
// equals name — the hand-coded equivalent of query Q1. An empty name
// returns the whole view.
func (m *Mediator) CSPersonByName(name string) ([]*oem.Object, error) {
	// Step 1: fetch matching persons from whois, pushing the name
	// selection when given.
	nameCond := ""
	if name != "" {
		nameCond = oem.QuoteAtom(name)
	} else {
		nameCond = "N"
	}
	qw, err := msl.ParseQuery(fmt.Sprintf(
		`O :- O:<person {<name %s> <dept 'CS'> <relation R> | Rest1}>@whois.`, nameCond))
	if err != nil {
		return nil, err
	}
	persons, err := m.whois.Query(qw)
	if err != nil {
		return nil, err
	}

	var out []*oem.Object
	for _, p := range persons {
		nObj := p.Sub("name")
		rObj := p.Sub("relation")
		if nObj == nil || rObj == nil {
			continue
		}
		fullName, ok := nObj.AtomString()
		if !ok {
			continue
		}
		relation, ok := rObj.AtomString()
		if !ok {
			continue
		}
		// Step 2: decompose the name (schema-domain mismatch).
		tuples, err := extfn.NameToLnFn([]oem.Value{oem.String(fullName)})
		if err != nil || len(tuples) == 0 {
			continue
		}
		last := tuples[0][0].(oem.String)
		first := tuples[0][1].(oem.String)

		// Step 3: parameterized query to cs; the relation value becomes
		// the relation *name* (schematic discrepancy), hard-coded here.
		qc, err := msl.ParseQuery(fmt.Sprintf(
			`O :- O:<%s {<last_name %s> <first_name %s> | Rest2}>@cs.`,
			relation, oem.QuoteAtom(string(last)), oem.QuoteAtom(string(first))))
		if err != nil {
			continue // relation value is not a legal label: no match
		}
		rows, err := m.cs.Query(qc)
		if err != nil {
			return nil, err
		}

		// Step 4: merge into cs_person objects (Figure 2.4 layout).
		for _, row := range rows {
			merged := oem.Set{
				oem.New(m.gen.Next(), "name", fullName),
				oem.New(m.gen.Next(), "relation", relation),
			}
			for _, sub := range p.Subobjects() {
				switch sub.Label {
				case "name", "dept", "relation":
				default:
					merged = append(merged, retag(sub, m.gen))
				}
			}
			for _, sub := range row.Subobjects() {
				switch sub.Label {
				case "first_name", "last_name":
				default:
					merged = append(merged, retag(sub, m.gen))
				}
			}
			out = append(out, &oem.Object{OID: m.gen.Next(), Label: "cs_person", Value: merged})
		}
	}
	return dedup(out), nil
}

// retag deep-copies an object with fresh mediator oids.
func retag(o *oem.Object, gen *oem.IDGen) *oem.Object {
	cp := o.Clone()
	cp.Walk(func(obj *oem.Object, _ int) bool {
		obj.OID = gen.Next()
		return true
	})
	return cp
}

func dedup(objs []*oem.Object) []*oem.Object {
	return oem.DedupStructural(objs, nil)
}
