package xmlsource

import (
	"strings"
	"testing"
)

// FuzzXMLRoundTrip mirrors FuzzOEMRoundTrip for the XML codec: any
// document that decodes must encode to a document that decodes back to
// structurally equal objects. This pins the codec's self-inverse contract
// (trimming, type inference, _type/_label escapes) against arbitrary
// inputs.
func FuzzXMLRoundTrip(f *testing.F) {
	seeds := []string{
		`<oem><person><name>Joe Chung</name><dept>CS</dept><year>3</year></person></oem>`,
		`<people><person id="7" tenured="false"><gpa>3.5</gpa></person></people>`,
		`<r><a _type="string">3</a><b _type="string"></b><c/><d _type="bytes">deadbeef</d></r>`,
		`<r><obj _label="first name">Ann</obj><obj _label="x:y">1</obj></r>`,
		`<r><p>before <b>bold</b> after</p></r>`,
		`<r xmlns="http://example.com/ns"><x:a xmlns:x="u" x:k="v">t</x:a></r>`,
		`<r><a>&#xA;x&#x9;</a><b>&amp;&lt;&gt;&quot;&apos;</b></r>`,
		`<r><n>-9223372036854775808</n><f>1e+300</f><g>0.5</g><t>true</t></r>`,
		`<a/>`,
		`<a><!-- comment --><?pi data?><b><![CDATA[x <raw> y]]></b></a>`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		objs, err := DecodeString(doc, Mapping{})
		if err != nil {
			t.Skip()
		}
		for _, o := range objs {
			if err := o.Validate(); err != nil {
				t.Fatalf("decode produced invalid object: %v\ninput: %q", err, doc)
			}
		}
		enc, err := EncodeString(objs, Mapping{})
		if err != nil {
			t.Fatalf("encode of decoded objects failed: %v\ninput: %q", err, doc)
		}
		back, err := DecodeString(enc, Mapping{})
		if err != nil {
			t.Fatalf("re-decode failed: %v\ninput: %q\nencoded:\n%s", err, doc, enc)
		}
		if len(back) != len(objs) {
			t.Fatalf("round trip changed object count %d -> %d\ninput: %q\nencoded:\n%s",
				len(objs), len(back), doc, enc)
		}
		for i := range objs {
			if !objs[i].StructuralEqual(back[i]) {
				t.Fatalf("round trip changed object %d\ninput: %q\nencoded:\n%s", i, doc, enc)
			}
		}
		// Stability: a second encode must be byte-identical (the codec is
		// deterministic and already-normalized input stays fixed).
		enc2, err := EncodeString(back, Mapping{})
		if err != nil || enc2 != enc {
			t.Fatalf("second encode differs (err=%v)\nfirst:\n%s\nsecond:\n%s", err, enc, enc2)
		}
	})
}

// TestFuzzSeedsRoundTrip runs the seed corpus through the fuzz property
// directly so ordinary `go test` exercises it without -fuzz.
func TestFuzzSeedsRoundTrip(t *testing.T) {
	docs := []string{
		`<oem><person><name>Joe</name></person></oem>`,
		`<r><a>007</a><b> padded </b><c>3.0</c></r>`,
	}
	for _, doc := range docs {
		objs, err := DecodeString(doc, Mapping{})
		if err != nil {
			t.Fatalf("decode %q: %v", doc, err)
		}
		enc, err := EncodeString(objs, Mapping{})
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		back, err := DecodeString(enc, Mapping{})
		if err != nil {
			t.Fatalf("re-decode: %v\n%s", err, enc)
		}
		if len(back) != len(objs) {
			t.Fatalf("count changed for %q", doc)
		}
		for i := range objs {
			if !objs[i].StructuralEqual(back[i]) {
				t.Fatalf("object %d changed for %q\nencoded:\n%s", i, doc, enc)
			}
		}
		if !strings.Contains(enc, "<oem>") {
			t.Fatalf("container root missing:\n%s", enc)
		}
	}
}
