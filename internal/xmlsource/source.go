package xmlsource

import (
	"context"
	"fmt"
	"io"
	"os"
	"sync/atomic"

	"medmaker/internal/msl"
	"medmaker/internal/oem"
	"medmaker/internal/wrapper"
)

// Source exports a decoded XML document as a read-only OEM source.
// Queries are answered by the generic OEM matcher over the mapped
// objects, but the source narrows the candidates first — by top-level
// label and by pushed-down equality conditions on direct atomic children
// (the mapped elements and attributes) — so selective queries touch only
// matching records instead of the whole document. Narrowing never drops
// a possible answer: every pushed condition is one the matcher would
// enforce anyway, and unsupported shapes fall back to the full extent.
type Source struct {
	name    string
	store   *oem.Store
	gen     *oem.IDGen
	byLabel map[string][]*oem.Object

	// pushdown can be disabled (SetPushdown) to measure how many objects
	// the selection saves; supplied counts the objects handed to the
	// matcher either way.
	pushdown atomic.Bool
	supplied atomic.Int64
}

var (
	_ wrapper.Source              = (*Source)(nil)
	_ wrapper.ContextSource       = (*Source)(nil)
	_ wrapper.BatchQuerier        = (*Source)(nil)
	_ wrapper.ContextBatchQuerier = (*Source)(nil)
	_ wrapper.Counter             = (*Source)(nil)
)

// New builds a source over already-mapped top-level objects, assigning
// oids under the source name.
func New(name string, tops []*oem.Object) (*Source, error) {
	s := &Source{
		name:    name,
		store:   oem.NewStore(name),
		gen:     oem.NewIDGen(name + "q"),
		byLabel: make(map[string][]*oem.Object),
	}
	s.pushdown.Store(true)
	for _, o := range tops {
		if err := o.Validate(); err != nil {
			return nil, fmt.Errorf("xmlsource: %s: %w", name, err)
		}
	}
	if err := s.store.Add(tops...); err != nil {
		return nil, fmt.Errorf("xmlsource: %s: %w", name, err)
	}
	for _, o := range s.store.TopLevel() {
		s.byLabel[o.Label] = append(s.byLabel[o.Label], o)
	}
	return s, nil
}

// FromReader decodes an XML document and builds a source over it.
func FromReader(name string, r io.Reader, m Mapping) (*Source, error) {
	tops, err := Decode(r, m)
	if err != nil {
		return nil, err
	}
	return New(name, tops)
}

// FromFile loads an XML file (see FromReader).
func FromFile(name, path string, m Mapping) (*Source, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("xmlsource: %w", err)
	}
	defer f.Close()
	return FromReader(name, f, m)
}

// Name implements wrapper.Source.
func (s *Source) Name() string { return s.name }

// Capabilities implements wrapper.Source. The XML mapping yields plain
// OEM trees, so value conditions, rest constraints, and wildcards all
// evaluate locally; source-local joins (multi-pattern tails) are not
// offered — the mediator decomposes and joins instead, as it does for
// capability-poor sources.
func (s *Source) Capabilities() wrapper.Capabilities {
	return wrapper.Capabilities{
		ValueConditions: true,
		RestConstraints: true,
		Wildcards:       true,
		MultiPattern:    false,
	}
}

// Query implements wrapper.Source.
func (s *Source) Query(q *msl.Rule) ([]*oem.Object, error) {
	if err := wrapper.CheckCapabilities(q, s.Capabilities(), s.name); err != nil {
		return nil, err
	}
	return wrapper.EvalWith(q, s.candidates, s.gen)
}

// QueryContext implements wrapper.ContextSource; matching is in-process,
// so the context is only consulted up front.
func (s *Source) QueryContext(ctx context.Context, q *msl.Rule) ([]*oem.Object, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.Query(q)
}

// QueryBatch implements wrapper.BatchQuerier.
func (s *Source) QueryBatch(qs []*msl.Rule) ([][]*oem.Object, error) {
	return wrapper.EachQuery(s, qs)
}

// QueryBatchContext implements wrapper.ContextBatchQuerier.
func (s *Source) QueryBatchContext(ctx context.Context, qs []*msl.Rule) ([][]*oem.Object, error) {
	return wrapper.EachQueryContext(ctx, s, qs)
}

// CountLabel implements wrapper.Counter using the label index.
func (s *Source) CountLabel(label string) (int, bool) {
	return len(s.byLabel[label]), true
}

// Export returns the full mapped extent, for facades and figures.
func (s *Source) Export() []*oem.Object { return s.store.TopLevel() }

// SetPushdown enables or disables candidate narrowing; with it off every
// query scans the full extent (the matcher still returns correct
// answers). Used by the pushdown benchmarks.
func (s *Source) SetPushdown(on bool) { s.pushdown.Store(on) }

// Supplied returns the cumulative number of top-level objects handed to
// the matcher — the "rows transferred" out of the XML selection layer.
func (s *Source) Supplied() int64 { return s.supplied.Load() }

// candidates narrows the extent for one pattern conjunct: top-level label
// first, then pushed equality conditions on direct atomic children.
func (s *Source) candidates(pc *msl.PatternConjunct) ([]*oem.Object, error) {
	tops, err := s.topsFor(pc.Pattern)
	if err != nil {
		return nil, err
	}
	if s.pushdown.Load() {
		if conds := pushableConds(pc.Pattern); len(conds) > 0 {
			var kept []*oem.Object
			for _, o := range tops {
				if satisfiesAll(o, conds) {
					kept = append(kept, o)
				}
			}
			tops = kept
		}
	}
	s.supplied.Add(int64(len(tops)))
	return tops, nil
}

func (s *Source) topsFor(p *msl.ObjectPattern) ([]*oem.Object, error) {
	if p.Wildcard || !s.pushdown.Load() {
		return s.store.TopLevel(), nil
	}
	if name := p.LabelName(); name != "" {
		return s.byLabel[name], nil
	}
	if _, isParam := p.Label.(*msl.Param); isParam {
		return nil, fmt.Errorf("xmlsource: unsubstituted parameter in label of %s", p)
	}
	// Label variable: the whole extent.
	return s.store.TopLevel(), nil
}

// cond is one pushed selection: the object must have a direct subobject
// with this label whose atomic value equals the constant.
type cond struct {
	label string
	value oem.Value
}

// pushableConds extracts "child label = constant" selections from the
// pattern's direct set elements and rest constraints — the same
// must-have-member semantics the matcher enforces, so filtering on them
// can only remove non-answers.
func pushableConds(p *msl.ObjectPattern) []cond {
	sp, ok := p.Value.(*msl.SetPattern)
	if !ok {
		return nil
	}
	var conds []cond
	addFrom := func(ep *msl.ObjectPattern) {
		if ep.Wildcard {
			return
		}
		label := ep.LabelName()
		if label == "" {
			return
		}
		if c, isConst := ep.Value.(*msl.Const); isConst {
			conds = append(conds, cond{label: label, value: c.Value})
		}
	}
	for _, e := range sp.Elems {
		if ep, isPat := e.(*msl.ObjectPattern); isPat {
			addFrom(ep)
		}
	}
	for _, rc := range sp.RestConstraints {
		addFrom(rc)
	}
	return conds
}

func satisfiesAll(o *oem.Object, conds []cond) bool {
	subs := o.Subobjects()
	for _, c := range conds {
		found := false
		for _, sub := range subs {
			if sub.Label == c.label && sub.Value != nil && sub.Value.Equal(c.value) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
