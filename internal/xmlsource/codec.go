// Package xmlsource exports XML documents as OEM sources. The mapping
// follows the obvious structural correspondence the Tout-XML mediation
// papers exploit: elements become set-valued OEM objects labelled by the
// element name, attributes become atomic subobjects, and character data
// becomes atomic values (for leaf elements) or text subobjects (in mixed
// content). Atomic text is typed by inference — integer, then real, then
// boolean, then string — with an explicit `_type` attribute to override
// inference where it would guess wrong, and a `_label` attribute for
// labels that are not well-formed XML names. The codec round-trips:
// Decode(Encode(Decode(doc))) is structurally equal to Decode(doc).
package xmlsource

import (
	"encoding/hex"
	"encoding/xml"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"medmaker/internal/oem"
)

// Attribute names with codec-level meaning. They never map to subobjects.
const (
	typeAttr  = "_type"
	labelAttr = "_label"
)

// Mapping configures the XML ↔ OEM correspondence.
type Mapping struct {
	// KeepRoot controls how the document element maps. When false (the
	// default), the document element is a pure container — its children
	// become the top-level OEM objects — matching the common
	// <people><person/>…</people> data-file shape. When true, each
	// document element maps to one top-level object.
	KeepRoot bool
	// Root names the container element Encode wraps the objects in when
	// KeepRoot is false. Empty means "oem".
	Root string
	// TextLabel labels the subobjects built from character data in mixed
	// content. Empty means "text".
	TextLabel string
}

func (m Mapping) root() string {
	if m.Root == "" {
		return "oem"
	}
	return m.Root
}

func (m Mapping) textLabel() string {
	if m.TextLabel == "" {
		return "text"
	}
	return m.TextLabel
}

// Decode parses an XML document into top-level OEM objects under the
// given mapping. Namespace declarations are dropped and element names are
// taken without their namespace prefix; comments, directives, and
// processing instructions are skipped. Character data is trimmed of
// surrounding whitespace; whitespace-only runs are ignored. Objects carry
// no oids; stores assign them on insertion.
func Decode(r io.Reader, m Mapping) ([]*oem.Object, error) {
	dec := xml.NewDecoder(r)
	var roots []*oem.Object
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmlsource: %w", err)
		}
		start, ok := tok.(xml.StartElement)
		if !ok {
			continue // prolog whitespace, comments, directives
		}
		obj, err := decodeElement(dec, start, m)
		if err != nil {
			return nil, err
		}
		roots = append(roots, obj)
	}
	if len(roots) == 0 {
		return nil, fmt.Errorf("xmlsource: document has no elements")
	}
	if m.KeepRoot || len(roots) > 1 {
		return roots, nil
	}
	// Single document element as container: its subobjects are the tops.
	// An atomic document element stands for itself.
	root := roots[0]
	subs, isSet := root.Value.(oem.Set)
	if !isSet {
		return roots, nil
	}
	return subs, nil
}

// DecodeString is Decode over a string, for tests and examples.
func DecodeString(doc string, m Mapping) ([]*oem.Object, error) {
	return Decode(strings.NewReader(doc), m)
}

// decodeElement consumes the element opened by start (the decoder is
// positioned just after the start tag) and returns its OEM object.
func decodeElement(dec *xml.Decoder, start xml.StartElement, m Mapping) (*oem.Object, error) {
	label := start.Name.Local
	typeName := ""
	var attrSubs oem.Set
	for _, a := range start.Attr {
		if isNamespaceAttr(a.Name) {
			continue
		}
		switch a.Name.Local {
		case typeAttr:
			typeName = a.Value
		case labelAttr:
			if a.Value != "" {
				label = a.Value
			}
		default:
			attrSubs = append(attrSubs, &oem.Object{Label: a.Name.Local, Value: inferAtom(a.Value)})
		}
	}

	var childSubs oem.Set
	var textRuns []string
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("xmlsource: in <%s>: %w", start.Name.Local, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			sub, err := decodeElement(dec, t, m)
			if err != nil {
				return nil, err
			}
			childSubs = append(childSubs, sub)
		case xml.CharData:
			if run := strings.TrimSpace(string(t)); run != "" {
				textRuns = append(textRuns, run)
			}
		case xml.EndElement:
			return buildObject(label, typeName, attrSubs, childSubs, textRuns, m)
		}
	}
}

// buildObject assembles the decoded pieces of one element into an object.
func buildObject(label, typeName string, attrSubs, childSubs oem.Set, textRuns []string, m Mapping) (*oem.Object, error) {
	complexElem := len(attrSubs)+len(childSubs) > 0
	if typeName != "" {
		kind, ok := oem.KindFromName(typeName)
		if !ok {
			return nil, fmt.Errorf("xmlsource: element %q: unknown %s %q", label, typeAttr, typeName)
		}
		if kind != oem.KindSet {
			if complexElem {
				return nil, fmt.Errorf("xmlsource: element %q: %s=%q conflicts with attributes or child elements", label, typeAttr, typeName)
			}
			v, err := parseTypedAtom(kind, strings.Join(textRuns, " "))
			if err != nil {
				return nil, fmt.Errorf("xmlsource: element %q: %w", label, err)
			}
			return &oem.Object{Label: label, Value: v}, nil
		}
		complexElem = true // _type="set" forces set semantics, text becomes subobjects
	}
	if !complexElem {
		if len(textRuns) == 0 {
			// Empty element: the empty set. The empty string is written
			// with an explicit _type="string".
			return &oem.Object{Label: label, Value: oem.Set(nil)}, nil
		}
		return &oem.Object{Label: label, Value: inferAtom(strings.Join(textRuns, " "))}, nil
	}
	subs := attrSubs
	subs = append(subs, childSubs...)
	for _, run := range textRuns {
		subs = append(subs, &oem.Object{Label: m.textLabel(), Value: inferAtom(run)})
	}
	return &oem.Object{Label: label, Value: subs}, nil
}

func isNamespaceAttr(n xml.Name) bool {
	return n.Space == "xmlns" || n.Local == "xmlns" ||
		n.Space == "http://www.w3.org/2000/xmlns/"
}

// inferAtom types a text run: integer, then real, then boolean, then
// string. NaN/Inf spellings stay strings (ParseFloat would accept them);
// an explicit _type="real" recovers them.
func inferAtom(s string) oem.Value {
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return oem.Int(n)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil && !math.IsNaN(f) && !math.IsInf(f, 0) {
		return oem.Float(f)
	}
	switch s {
	case "true":
		return oem.Bool(true)
	case "false":
		return oem.Bool(false)
	}
	return oem.String(s)
}

// parseTypedAtom parses a text run under an explicit _type.
func parseTypedAtom(kind oem.Kind, s string) (oem.Value, error) {
	switch kind {
	case oem.KindString:
		return oem.String(s), nil
	case oem.KindInt:
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", s)
		}
		return oem.Int(n), nil
	case oem.KindFloat:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil || math.IsNaN(f) {
			// NaN is rejected because NaN != NaN breaks the structural
			// equality the codec round-trip guarantees.
			return nil, fmt.Errorf("bad real %q", s)
		}
		return oem.Float(f), nil
	case oem.KindBool:
		switch s {
		case "true":
			return oem.Bool(true), nil
		case "false":
			return oem.Bool(false), nil
		}
		return nil, fmt.Errorf("bad boolean %q", s)
	case oem.KindBytes:
		b, err := hex.DecodeString(strings.TrimPrefix(s, "0x"))
		if err != nil {
			return nil, fmt.Errorf("bad bytes %q", s)
		}
		return oem.Bytes(b), nil
	}
	return nil, fmt.Errorf("unsupported %s %q", typeAttr, kind)
}

// Encode writes the objects as an XML document Decode maps back to
// structurally equal objects under the same mapping. With KeepRoot false
// the objects are wrapped in a container element named m.Root; with
// KeepRoot true exactly one object is required and becomes the document
// element. Subobjects are always written as child elements (never
// attributes); labels that are not well-formed XML names are written
// through a _label attribute; atoms whose text would re-infer to a
// different value carry a _type attribute.
func Encode(w io.Writer, objs []*oem.Object, m Mapping) error {
	ew := &errWriter{w: w}
	if m.KeepRoot {
		if len(objs) != 1 {
			return fmt.Errorf("xmlsource: KeepRoot encoding requires exactly one object, got %d", len(objs))
		}
		encodeObject(ew, objs[0], 0)
		return ew.err
	}
	ew.writeString("<" + m.root() + ">\n")
	for _, o := range objs {
		encodeObject(ew, o, 1)
	}
	ew.writeString("</" + m.root() + ">\n")
	return ew.err
}

// EncodeString is Encode into a string, for tests and examples.
func EncodeString(objs []*oem.Object, m Mapping) (string, error) {
	var sb strings.Builder
	err := Encode(&sb, objs, m)
	return sb.String(), err
}

type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) writeString(s string) {
	if ew.err == nil {
		_, ew.err = io.WriteString(ew.w, s)
	}
}

func (ew *errWriter) escape(s string) {
	if ew.err == nil {
		ew.err = escapeXML(ew.w, s)
	}
}

// escapeXML escapes text for element content and attribute values,
// including '\r' (which bare XML parsing would normalize away).
func escapeXML(w io.Writer, s string) error {
	return xml.EscapeText(w, []byte(s))
}

func encodeObject(ew *errWriter, o *oem.Object, depth int) {
	indent := strings.Repeat("  ", depth)
	name := o.Label
	extraAttr := ""
	if !isXMLName(name) {
		name = "obj"
		var sb strings.Builder
		if err := escapeXML(&sb, o.Label); err != nil && ew.err == nil {
			ew.err = err
		}
		extraAttr = " " + labelAttr + "=\"" + sb.String() + "\""
	}
	if subs, isSet := o.Value.(oem.Set); isSet || o.Value == nil {
		if len(subs) == 0 {
			ew.writeString(indent + "<" + name + extraAttr + "/>\n")
			return
		}
		ew.writeString(indent + "<" + name + extraAttr + ">\n")
		for _, sub := range subs {
			encodeObject(ew, sub, depth+1)
		}
		ew.writeString(indent + "</" + name + ">\n")
		return
	}
	text, typeName := atomText(o.Value)
	ew.writeString(indent + "<" + name + extraAttr)
	if typeName != "" {
		ew.writeString(" " + typeAttr + "=\"" + typeName + "\"")
	}
	ew.writeString(">")
	ew.escape(text)
	ew.writeString("</" + name + ">\n")
}

// atomText renders an atomic value as element text, with the _type
// attribute value needed for Decode to recover it exactly ("" when
// inference suffices).
func atomText(v oem.Value) (text, typeName string) {
	switch t := v.(type) {
	case oem.String:
		s := string(t)
		if s == "" || strings.TrimSpace(s) != s || !inferAtom(s).Equal(t) {
			return s, "string"
		}
		return s, ""
	case oem.Int:
		return strconv.FormatInt(int64(t), 10), ""
	case oem.Float:
		text = t.String()
		if got := inferAtom(text); got.Kind() == oem.KindFloat && got.Equal(t) {
			return text, ""
		}
		return text, "real"
	case oem.Bool:
		return strconv.FormatBool(bool(t)), ""
	case oem.Bytes:
		return hex.EncodeToString(t), "bytes"
	}
	return fmt.Sprint(v), "string"
}

// isXMLName reports whether s is usable directly as an element name: an
// ASCII letter or underscore followed by ASCII letters, digits, '-', '.',
// or '_'. Anything else — including colons (namespace syntax) and
// non-ASCII names, where XML's name character classes diverge from Go's —
// is written through a _label attribute instead.
func isXMLName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') {
			continue
		}
		if i > 0 && ((r >= '0' && r <= '9') || r == '-' || r == '.') {
			continue
		}
		return false
	}
	return true
}
