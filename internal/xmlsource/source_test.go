package xmlsource

import (
	"context"
	"sort"
	"strings"
	"testing"

	"medmaker/internal/msl"
	"medmaker/internal/oem"
	"medmaker/internal/wrapper"
)

const peopleXML = `<people>
  <person><name>Joe Chung</name><dept>CS</dept><year>3</year></person>
  <person><name>Ann Arbor</name><dept>EE</dept><year>1</year></person>
  <person><name>Pat Smith</name><dept>CS</dept><year>2</year></person>
  <staff><name>Lee Poe</name><dept>CS</dept></staff>
</people>`

func newPeopleSource(t *testing.T) *Source {
	t.Helper()
	src, err := FromReader("xml", strings.NewReader(peopleXML), Mapping{})
	if err != nil {
		t.Fatalf("FromReader: %v", err)
	}
	return src
}

func mustRule(t *testing.T, text string) *msl.Rule {
	t.Helper()
	q, err := msl.ParseRule(text)
	if err != nil {
		t.Fatalf("parse %q: %v", text, err)
	}
	return q
}

func names(objs []*oem.Object) []string {
	var out []string
	for _, o := range objs {
		if n := o.Sub("name"); n != nil {
			s, _ := n.AtomString()
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

func TestSourceQueryWithPushdown(t *testing.T) {
	src := newPeopleSource(t)
	q := mustRule(t, `<answer {<name N>}> :- <person {<name N> <dept 'CS'>}>@xml.`)
	got, err := src.Query(q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	want := []string{"Joe Chung", "Pat Smith"}
	if g := names(got); len(g) != 2 || g[0] != want[0] || g[1] != want[1] {
		t.Fatalf("answers = %v, want %v", g, want)
	}
	// Pushdown should have supplied only the two CS persons, not all four
	// top-level objects.
	if n := src.Supplied(); n != 2 {
		t.Fatalf("supplied %d objects with pushdown, want 2", n)
	}
}

func TestSourcePushdownOffMatchesOn(t *testing.T) {
	on := newPeopleSource(t)
	off := newPeopleSource(t)
	off.SetPushdown(false)
	for _, text := range []string{
		`<answer {<name N>}> :- <person {<name N> <dept 'CS'>}>@xml.`,
		`<answer {<name N>}> :- <person {<name N> <year 1>}>@xml.`,
		`<answer {<who N>}> :- <L {<name N>}>@xml.`,
		`P :- P:<person {<name N> | R:{<year 2>}}>@xml.`,
	} {
		q := mustRule(t, text)
		a, err := on.Query(q)
		if err != nil {
			t.Fatalf("pushdown on: %v", err)
		}
		b, err := off.Query(mustRule(t, text))
		if err != nil {
			t.Fatalf("pushdown off: %v", err)
		}
		ga, gb := names(a), names(b)
		if len(a) != len(b) {
			t.Fatalf("%s: %d vs %d answers", text, len(a), len(b))
		}
		for i := range ga {
			if ga[i] != gb[i] {
				t.Fatalf("%s: pushdown changed answers %v vs %v", text, ga, gb)
			}
		}
	}
	if on.Supplied() >= off.Supplied() {
		t.Fatalf("pushdown supplied %d >= full-scan %d", on.Supplied(), off.Supplied())
	}
}

func TestSourceRejectsMultiPattern(t *testing.T) {
	src := newPeopleSource(t)
	q := mustRule(t, `<a {<n N> <m M>}> :- <person {<name N>}>@xml AND <staff {<name M>}>@xml.`)
	_, err := src.Query(q)
	var unsup *wrapper.UnsupportedError
	if err == nil {
		t.Fatal("multi-pattern query succeeded, want UnsupportedError")
	}
	if !strings.Contains(err.Error(), "multi-pattern") {
		t.Fatalf("error = %v, want multi-pattern UnsupportedError", err)
	}
	_ = unsup
}

func TestSourceWildcardAndCount(t *testing.T) {
	src := newPeopleSource(t)
	q := mustRule(t, `<out V> :- <%name V>@xml.`)
	got, err := src.Query(q)
	if err != nil {
		t.Fatalf("wildcard query: %v", err)
	}
	if len(got) == 0 {
		t.Fatal("wildcard query found nothing")
	}
	if n, ok := src.CountLabel("person"); !ok || n != 3 {
		t.Fatalf("CountLabel(person) = %d,%v want 3,true", n, ok)
	}
	if n, ok := src.CountLabel("nosuch"); !ok || n != 0 {
		t.Fatalf("CountLabel(nosuch) = %d,%v want 0,true", n, ok)
	}
}

func TestSourceContextCancelled(t *testing.T) {
	src := newPeopleSource(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := mustRule(t, `P :- P:<person {}>@xml.`)
	if _, err := src.QueryContext(ctx, q); err == nil {
		t.Fatal("cancelled context should fail")
	}
}
