package xmlsource

import (
	"strings"
	"testing"

	"medmaker/internal/oem"
)

func mustDecode(t *testing.T, doc string, m Mapping) []*oem.Object {
	t.Helper()
	objs, err := DecodeString(doc, m)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	return objs
}

func TestDecodeBasicMapping(t *testing.T) {
	doc := `<people>
	  <person id="7">
	    <name>Joe Chung</name>
	    <dept>CS</dept>
	    <year>3</year>
	    <gpa>3.5</gpa>
	    <tenured>false</tenured>
	  </person>
	</people>`
	objs := mustDecode(t, doc, Mapping{})
	if len(objs) != 1 {
		t.Fatalf("got %d top objects, want 1", len(objs))
	}
	p := objs[0]
	if p.Label != "person" {
		t.Fatalf("label = %q, want person", p.Label)
	}
	want := oem.NewSet("", "person",
		oem.New("", "id", 7),
		oem.New("", "name", "Joe Chung"),
		oem.New("", "dept", "CS"),
		oem.New("", "year", 3),
		oem.New("", "gpa", 3.5),
		oem.New("", "tenured", false),
	)
	if !p.StructuralEqual(want) {
		t.Fatalf("decoded:\n%s\nwant:\n%s", mustFormat(t, p), mustFormat(t, want))
	}
}

func TestDecodeAttributesBecomeAtomicChildren(t *testing.T) {
	objs := mustDecode(t, `<r><row a="1" b="x"/></r>`, Mapping{})
	want := oem.NewSet("", "row", oem.New("", "a", 1), oem.New("", "b", "x"))
	if len(objs) != 1 || !objs[0].StructuralEqual(want) {
		t.Fatalf("decoded %v, want %v", objs, want)
	}
}

func TestDecodeMixedContentText(t *testing.T) {
	objs := mustDecode(t, `<r><p>before <b>bold</b> after</p></r>`, Mapping{})
	want := oem.NewSet("", "p",
		oem.New("", "b", "bold"),
		oem.New("", "text", "before"),
		oem.New("", "text", "after"),
	)
	if len(objs) != 1 || !objs[0].StructuralEqual(want) {
		t.Fatalf("decoded %s, want %s", mustFormat(t, objs[0]), mustFormat(t, want))
	}

	objs = mustDecode(t, `<r><p>only <b>once</b></p></r>`, Mapping{TextLabel: "cdata"})
	if objs[0].Sub("cdata") == nil {
		t.Fatalf("custom TextLabel not applied: %s", mustFormat(t, objs[0]))
	}
}

func TestDecodeKeepRoot(t *testing.T) {
	objs := mustDecode(t, `<person><name>Ann</name></person>`, Mapping{KeepRoot: true})
	if len(objs) != 1 || objs[0].Label != "person" {
		t.Fatalf("KeepRoot: got %v", objs)
	}
	// Without KeepRoot the root is a container and <name> is the top.
	objs = mustDecode(t, `<person><name>Ann</name></person>`, Mapping{})
	if len(objs) != 1 || objs[0].Label != "name" {
		t.Fatalf("container mapping: got %v", objs)
	}
}

func TestDecodeTypeOverrides(t *testing.T) {
	doc := `<r>
	  <a _type="string">3</a>
	  <b _type="string"></b>
	  <c _type="real">4</c>
	  <d _type="bytes">0xdeadbeef</d>
	  <e/>
	</r>`
	objs := mustDecode(t, doc, Mapping{})
	if len(objs) != 5 {
		t.Fatalf("got %d objects", len(objs))
	}
	checks := []struct {
		label string
		want  oem.Value
	}{
		{"a", oem.String("3")},
		{"b", oem.String("")},
		{"c", oem.Float(4)},
		{"d", oem.Bytes{0xde, 0xad, 0xbe, 0xef}},
	}
	for i, c := range checks {
		if got := objs[i].Value; got.Kind() != c.want.Kind() || !got.Equal(c.want) {
			t.Errorf("%s = %v (%s), want %v", c.label, got, got.Kind(), c.want)
		}
	}
	if objs[4].Kind() != oem.KindSet || len(objs[4].Subobjects()) != 0 {
		t.Errorf("empty element should decode to empty set, got %v", objs[4])
	}
}

func TestDecodeLabelOverride(t *testing.T) {
	objs := mustDecode(t, `<r><obj _label="first name">Ann</obj></r>`, Mapping{})
	if objs[0].Label != "first name" {
		t.Fatalf("label = %q, want %q", objs[0].Label, "first name")
	}
}

func TestDecodeNamespacesDropped(t *testing.T) {
	doc := `<r xmlns="http://example.com/ns" xmlns:x="http://example.com/x">
	  <x:person x:dept="CS"><name>Ann</name></x:person>
	</r>`
	objs := mustDecode(t, doc, Mapping{})
	want := oem.NewSet("", "person", oem.New("", "dept", "CS"), oem.New("", "name", "Ann"))
	if len(objs) != 1 || !objs[0].StructuralEqual(want) {
		t.Fatalf("decoded %s, want %s", mustFormat(t, objs[0]), mustFormat(t, want))
	}
}

func TestDecodeErrors(t *testing.T) {
	for _, doc := range []string{
		``,                                // no elements
		`<a>`,                             // unclosed
		`<a _type="nonsense">x</a>`,       // unknown type
		`<a _type="integer">x</a>`,        // unparseable int
		`<a _type="real">NaN</a>`,         // NaN rejected
		`<a _type="integer" b="1">3</a>`,  // atomic type with attributes
		`<a _type="boolean"><b/>true</a>`, // atomic type with children
	} {
		if _, err := DecodeString(doc, Mapping{KeepRoot: true}); err == nil {
			t.Errorf("Decode(%q) succeeded, want error", doc)
		}
	}
}

func TestEncodeRoundTripsOEM(t *testing.T) {
	// OEM → XML → OEM must be structurally identity for values the codec
	// supports, including the awkward ones needing _type/_label escapes.
	tops := []*oem.Object{
		oem.NewSet("", "person",
			oem.New("", "name", "Joe Chung"),
			oem.New("", "year", 3),
			oem.New("", "gpa", 3.5),
			oem.New("", "looks_numeric", "007"),
			oem.New("", "looks_bool", "true"),
			oem.New("", "empty_string", ""),
			oem.NewSet("", "empty_set"),
			oem.New("", "blob", []byte{1, 2, 255}),
			oem.New("", "first name", "Joe"), // invalid XML name
			oem.New("", "note", "line one\nline two <with> &markup;"),
		),
		oem.New("", "atomic_top", 42),
		oem.NewSet("", "deep",
			oem.NewSet("", "mid", oem.New("", "leaf", true))),
	}
	doc, err := EncodeString(tops, Mapping{})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	back, err := DecodeString(doc, Mapping{})
	if err != nil {
		t.Fatalf("Decode(Encode): %v\ndoc:\n%s", err, doc)
	}
	if len(back) != len(tops) {
		t.Fatalf("round trip: %d objects, want %d\ndoc:\n%s", len(back), len(tops), doc)
	}
	for i := range tops {
		if !tops[i].StructuralEqual(back[i]) {
			t.Errorf("object %d changed:\nbefore: %s\nafter:  %s\ndoc:\n%s",
				i, mustFormat(t, tops[i]), mustFormat(t, back[i]), doc)
		}
	}
}

func TestEncodeKeepRoot(t *testing.T) {
	obj := oem.NewSet("", "person", oem.New("", "name", "Ann"))
	doc, err := EncodeString([]*oem.Object{obj}, Mapping{KeepRoot: true})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if !strings.HasPrefix(strings.TrimSpace(doc), "<person>") {
		t.Fatalf("KeepRoot should make the object the document element:\n%s", doc)
	}
	if _, err := EncodeString([]*oem.Object{obj, obj.Clone()}, Mapping{KeepRoot: true}); err == nil {
		t.Fatal("KeepRoot with two objects should fail")
	}
}

func mustFormat(t *testing.T, o *oem.Object) string {
	t.Helper()
	var sb strings.Builder
	var f oem.Formatter
	if err := f.Format(&sb, o); err != nil {
		t.Fatalf("format: %v", err)
	}
	return sb.String()
}
