package streamsource

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"medmaker/internal/msl"
	"medmaker/internal/oem"
	"medmaker/internal/wrapper"
)

func event(i int) *oem.Object {
	return oem.NewSet("", "reading",
		oem.New("", "sensor", fmt.Sprintf("s%d", i%3)),
		oem.New("", "value", i),
	)
}

func TestAppendAndQuery(t *testing.T) {
	s := New("stream", Options{})
	for i := 0; i < 5; i++ {
		if err := s.Append(event(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	q := msl.MustParseRule(`<out V> :- <reading {<sensor 's0'> <value V>}>@stream.`)
	got, err := s.Query(q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(got) != 2 { // values 0 and 3
		t.Fatalf("got %d answers, want 2", len(got))
	}
	if n, ok := s.CountLabel("reading"); !ok || n != 5 {
		t.Fatalf("CountLabel = %d,%v want 5,true", n, ok)
	}
}

func TestCountRetention(t *testing.T) {
	s := New("stream", Options{MaxEvents: 3})
	var mu sync.Mutex
	var inserted, deleted int
	s.OnChange(func(d wrapper.Delta) {
		mu.Lock()
		inserted += len(d.Inserted)
		deleted += len(d.Deleted)
		mu.Unlock()
	})
	for i := 0; i < 5; i++ {
		if err := s.Append(event(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if s.Appended() != 5 {
		t.Fatalf("Appended = %d, want 5", s.Appended())
	}
	// Oldest two evicted: remaining values are 2,3,4.
	q := msl.MustParseRule(`<out V> :- <reading {<value V>}>@stream.`)
	got, err := s.Query(q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("window has %d events, want 3", len(got))
	}
	mu.Lock()
	defer mu.Unlock()
	if inserted != 5 || deleted != 2 {
		t.Fatalf("deltas: %d inserted, %d deleted; want 5, 2", inserted, deleted)
	}
}

func TestAgeRetention(t *testing.T) {
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	s := New("stream", Options{MaxAge: time.Minute, Clock: clock})
	if err := s.Append(event(0), event(1)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	advance(30 * time.Second)
	if err := s.Append(event(2)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	// 61s after the first batch: events 0 and 1 age out; query must not
	// see them even before an explicit Expire.
	advance(31 * time.Second)
	q := msl.MustParseRule(`<out V> :- <reading {<value V>}>@stream.`)
	got, err := s.Query(q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("stale events served: got %d answers, want 1", len(got))
	}
	if s.Len() != 1 {
		t.Fatalf("Len after lazy expiry = %d, want 1", s.Len())
	}
	advance(2 * time.Minute)
	if evicted := s.Expire(); len(evicted) != 1 {
		t.Fatalf("Expire evicted %d, want 1", len(evicted))
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
}

func TestDeltaCarriesAppendAndEvictionTogether(t *testing.T) {
	s := New("stream", Options{MaxEvents: 1})
	var got []wrapper.Delta
	var mu sync.Mutex
	s.OnChange(func(d wrapper.Delta) {
		mu.Lock()
		got = append(got, d)
		mu.Unlock()
	})
	if err := s.Append(event(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(event(1)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("got %d deltas, want 2", len(got))
	}
	second := got[1]
	if len(second.Inserted) != 1 || len(second.Deleted) != 1 {
		t.Fatalf("second delta = %d inserted / %d deleted, want 1/1", len(second.Inserted), len(second.Deleted))
	}
	if second.Source != "stream" {
		t.Fatalf("delta source = %q", second.Source)
	}
}

func TestRejectsInvalidEvents(t *testing.T) {
	s := New("stream", Options{})
	if err := s.Append(&oem.Object{Label: ""}); err == nil {
		t.Fatal("empty-label event accepted")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after rejected append", s.Len())
	}
}

func TestConcurrentAppendQuery(t *testing.T) {
	s := New("stream", Options{MaxEvents: 16})
	q := msl.MustParseRule(`<out V> :- <reading {<value V>}>@stream.`)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := s.Append(event(w*100 + i)); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(w)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := s.Query(q); err != nil {
					t.Errorf("Query: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if s.Len() > 16 {
		t.Fatalf("window overflow: %d", s.Len())
	}
}
