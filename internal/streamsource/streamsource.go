// Package streamsource provides a bounded append-only event log exported
// as an OEM source. Producers Append OEM roots (events); consumers query
// the retained window through the ordinary pattern interface, exactly as
// they would query a static store. Retention is bounded by event count
// and/or age: appending past the bound or letting events age out evicts
// the oldest events. Every mutation — appends and evictions alike — is
// described to wrapper.Notifier subscribers as a Delta, so a mediator's
// materialized views stay fresh by incremental maintenance while the
// stream churns underneath them.
package streamsource

import (
	"context"
	"fmt"
	"sync"
	"time"

	"medmaker/internal/msl"
	"medmaker/internal/oem"
	"medmaker/internal/wrapper"
)

// Options bounds the retained window. The zero value retains everything.
type Options struct {
	// MaxEvents caps the number of retained events; 0 means unlimited.
	// Appending the (MaxEvents+1)-th event evicts the oldest.
	MaxEvents int
	// MaxAge caps event age; 0 means unlimited. Expiry is lazy — checked
	// on Append and Query and forceable with Expire — so subscribers see
	// eviction deltas at the next touch, not at the instant of expiry.
	MaxAge time.Duration
	// Clock supplies the current time; nil means time.Now. Tests inject
	// fake clocks to drive age-based retention deterministically.
	Clock func() time.Time
}

func (o Options) now() time.Time {
	if o.Clock != nil {
		return o.Clock()
	}
	return time.Now()
}

// Source is the event-log source. It is safe for concurrent use.
type Source struct {
	name string
	opts Options
	gen  *oem.IDGen

	mu    sync.Mutex
	store *oem.Store
	times map[oem.OID]time.Time
	total int64 // events ever appended

	feed wrapper.Feed
}

var (
	_ wrapper.Source              = (*Source)(nil)
	_ wrapper.ContextSource       = (*Source)(nil)
	_ wrapper.BatchQuerier        = (*Source)(nil)
	_ wrapper.ContextBatchQuerier = (*Source)(nil)
	_ wrapper.Counter             = (*Source)(nil)
	_ wrapper.Notifier            = (*Source)(nil)
)

// New returns an empty stream source with the given retention options.
func New(name string, opts Options) *Source {
	if opts.MaxEvents < 0 {
		opts.MaxEvents = 0
	}
	s := &Source{
		name:  name,
		opts:  opts,
		gen:   oem.NewIDGen(name + "q"),
		store: oem.NewStore(name),
		times: make(map[oem.OID]time.Time),
	}
	return s
}

// Append adds events to the log, evicting the oldest retained events as
// the count/age bounds require, then emits one Delta carrying both the
// inserts and any evictions. The event objects are stamped with oids and
// must not be mutated afterwards.
func (s *Source) Append(events ...*oem.Object) error {
	if len(events) == 0 {
		return nil
	}
	for _, e := range events {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("streamsource: %s: %w", s.name, err)
		}
	}
	now := s.opts.now()
	s.mu.Lock()
	if err := s.store.Add(events...); err != nil {
		s.mu.Unlock()
		return fmt.Errorf("streamsource: %s: %w", s.name, err)
	}
	for _, e := range events {
		s.times[e.OID] = now
	}
	s.total += int64(len(events))
	evicted := s.evictLocked(now)
	s.mu.Unlock()
	s.feed.Emit(wrapper.Delta{
		Source:   s.name,
		Inserted: append([]*oem.Object(nil), events...),
		Deleted:  evicted,
	})
	return nil
}

// evictLocked drops aged-out events, then oldest events past MaxEvents.
// The caller holds the lock; the removed roots are returned for the
// delta.
func (s *Source) evictLocked(now time.Time) []*oem.Object {
	tops := s.store.TopLevel() // insertion order == append order
	var drop []oem.OID
	keepFrom := 0
	if s.opts.MaxAge > 0 {
		cutoff := now.Add(-s.opts.MaxAge)
		for keepFrom < len(tops) && s.times[tops[keepFrom].OID].Before(cutoff) {
			drop = append(drop, tops[keepFrom].OID)
			keepFrom++
		}
	}
	if s.opts.MaxEvents > 0 {
		for len(tops)-keepFrom > s.opts.MaxEvents {
			drop = append(drop, tops[keepFrom].OID)
			keepFrom++
		}
	}
	if len(drop) == 0 {
		return nil
	}
	removed := s.store.Remove(drop...)
	for _, o := range removed {
		delete(s.times, o.OID)
	}
	return removed
}

// Expire evicts events that have aged out as of now, emitting a delete
// delta, and returns the evicted roots. Query and Append expire lazily;
// Expire lets a housekeeping loop bound staleness explicitly.
func (s *Source) Expire() []*oem.Object {
	now := s.opts.now()
	s.mu.Lock()
	evicted := s.evictLocked(now)
	s.mu.Unlock()
	if len(evicted) > 0 {
		s.feed.Emit(wrapper.Delta{Source: s.name, Deleted: evicted})
	}
	return evicted
}

// Len returns the number of retained events.
func (s *Source) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.store.Len()
}

// Appended returns the total number of events ever appended.
func (s *Source) Appended() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Export returns the retained events, oldest first, without expiring.
func (s *Source) Export() []*oem.Object {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.store.TopLevel()
}

// OnChange implements wrapper.Notifier: fn receives a delta for every
// append and eviction.
func (s *Source) OnChange(fn func(wrapper.Delta)) { s.feed.OnChange(fn) }

// Name implements wrapper.Source.
func (s *Source) Name() string { return s.name }

// Capabilities implements wrapper.Source: events are plain OEM, queried
// by the full matcher.
func (s *Source) Capabilities() wrapper.Capabilities {
	return wrapper.FullCapabilities()
}

// Query implements wrapper.Source over the retained window, expiring
// aged-out events first so answers never include data past MaxAge.
func (s *Source) Query(q *msl.Rule) ([]*oem.Object, error) {
	s.Expire()
	s.mu.Lock()
	tops := s.store.TopLevel()
	s.mu.Unlock()
	return wrapper.Eval(q, tops, s.gen)
}

// QueryContext implements wrapper.ContextSource.
func (s *Source) QueryContext(ctx context.Context, q *msl.Rule) ([]*oem.Object, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.Query(q)
}

// QueryBatch implements wrapper.BatchQuerier.
func (s *Source) QueryBatch(qs []*msl.Rule) ([][]*oem.Object, error) {
	return wrapper.EachQuery(s, qs)
}

// QueryBatchContext implements wrapper.ContextBatchQuerier.
func (s *Source) QueryBatchContext(ctx context.Context, qs []*msl.Rule) ([][]*oem.Object, error) {
	return wrapper.EachQueryContext(ctx, s, qs)
}

// CountLabel implements wrapper.Counter over the retained window.
func (s *Source) CountLabel(label string) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, o := range s.store.TopLevel() {
		if o.Label == label {
			n++
		}
	}
	return n, true
}
