// Package jsonhttp exports a remote JSON-over-HTTP service as an OEM
// source. The wire format is deliberately plain — JSON arrays of records,
// the shape real REST endpoints serve — and the oem package's JSON codec
// does the OEM mapping on both ends. The client pushes the equality
// conditions it recognizes into query parameters so selective queries
// transfer only matching records, propagates per-request contexts and
// deadlines, and retries transient failures (5xx, transport errors) with
// exponential backoff. The package also provides the server fixture: an
// http.Handler serving any OEM extent in the wire format, used by the
// tests, the federation example, and anyone who wants to stand up a
// mediatable endpoint from Go data.
package jsonhttp

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"medmaker/internal/oem"
)

// Handler serves an OEM extent in the package's wire format:
//
//	GET /labels             -> JSON array of distinct top-level labels
//	GET /records?label=L    -> JSON array of records labelled L
//	GET /records?label=L&f=v… -> records whose direct child f equals v
//
// Records are rendered by the oem JSON codec (atoms become JSON scalars,
// repeated labels arrays; oids are not exposed). Handler is safe for
// concurrent use; Swap replaces the extent atomically.
type Handler struct {
	mu   sync.RWMutex
	tops []*oem.Object

	// FailNext, when positive, makes the handler fail that many requests
	// with 500 before serving normally — the retry-path fixture.
	failNext atomic.Int64

	requests atomic.Int64
}

// NewHandler serves the given top-level objects.
func NewHandler(tops []*oem.Object) *Handler {
	h := &Handler{}
	h.Swap(tops)
	return h
}

// Swap atomically replaces the served extent.
func (h *Handler) Swap(tops []*oem.Object) {
	cp := append([]*oem.Object(nil), tops...)
	h.mu.Lock()
	h.tops = cp
	h.mu.Unlock()
}

// FailNext makes the next n requests fail with 500, exercising client
// retries.
func (h *Handler) FailNext(n int) { h.failNext.Store(int64(n)) }

// Requests returns the number of requests handled (including failures).
func (h *Handler) Requests() int64 { return h.requests.Load() }

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.requests.Add(1)
	if h.failNext.Load() > 0 && h.failNext.Add(-1) >= 0 {
		http.Error(w, "transient failure (fixture)", http.StatusInternalServerError)
		return
	}
	switch r.URL.Path {
	case "/labels":
		h.serveLabels(w)
	case "/records":
		h.serveRecords(w, r)
	default:
		http.NotFound(w, r)
	}
}

func (h *Handler) snapshot() []*oem.Object {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.tops
}

func (h *Handler) serveLabels(w http.ResponseWriter) {
	seen := map[string]bool{}
	var labels []string
	for _, o := range h.snapshot() {
		if !seen[o.Label] {
			seen[o.Label] = true
			labels = append(labels, o.Label)
		}
	}
	sort.Strings(labels)
	writeJSON(w, labels)
}

func (h *Handler) serveRecords(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	label := q.Get("label")
	if label == "" {
		http.Error(w, "missing label parameter", http.StatusBadRequest)
		return
	}
	var conds []cond
	for key, vals := range q {
		if key == "label" {
			continue
		}
		for _, v := range vals {
			conds = append(conds, cond{field: key, text: v})
		}
	}
	records := make([]json.RawMessage, 0, 16)
	for _, o := range h.snapshot() {
		if o.Label != label || !matchesConds(o, conds) {
			continue
		}
		rec, err := recordJSON(o)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		records = append(records, rec)
	}
	writeJSON(w, records)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// cond is one equality filter: the record must have a direct child with
// this field label whose atom renders to text.
type cond struct {
	field string
	text  string
}

func matchesConds(o *oem.Object, conds []cond) bool {
	if len(conds) == 0 {
		return true
	}
	subs := o.Subobjects()
	for _, c := range conds {
		found := false
		for _, sub := range subs {
			if sub.Label != c.field {
				continue
			}
			if txt, ok := atomQueryText(sub.Value); ok && txt == c.text {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// atomQueryText renders an atomic value in the canonical text used for
// query-parameter equality on the wire. Sets and bytes are not
// addressable by parameter (ok=false); the client never pushes them.
func atomQueryText(v oem.Value) (string, bool) {
	switch t := v.(type) {
	case oem.String:
		return string(t), true
	case oem.Int:
		return t.String(), true
	case oem.Float:
		return t.String(), true
	case oem.Bool:
		return t.String(), true
	}
	return "", false
}

// recordJSON renders one object as a bare JSON record (the object's
// JSON value without the enclosing {"label": …} wrapper).
func recordJSON(o *oem.Object) (json.RawMessage, error) {
	wrapped, err := oem.ToJSON(o)
	if err != nil {
		return nil, fmt.Errorf("jsonhttp: encoding record: %w", err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(wrapped, &m); err != nil {
		return nil, fmt.Errorf("jsonhttp: re-reading record: %w", err)
	}
	rec, ok := m[o.Label]
	if !ok || len(m) != 1 {
		return nil, fmt.Errorf("jsonhttp: unexpected record shape for label %q", o.Label)
	}
	// Atomic roots render as bare scalars; FromJSONArray maps them back
	// to atomic objects under the requested label, so they stay bare.
	return rec, nil
}
