package jsonhttp

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"medmaker/internal/msl"
	"medmaker/internal/oem"
	"medmaker/internal/wrapper"
)

func people() []*oem.Object {
	return []*oem.Object{
		oem.NewSet("", "person",
			oem.New("", "name", "Joe Chung"), oem.New("", "dept", "CS"), oem.New("", "year", 3)),
		oem.NewSet("", "person",
			oem.New("", "name", "Ann Arbor"), oem.New("", "dept", "EE"), oem.New("", "year", 1)),
		oem.NewSet("", "person",
			oem.New("", "name", "Pat Smith"), oem.New("", "dept", "CS"), oem.New("", "year", 2)),
		oem.NewSet("", "staff",
			oem.New("", "name", "Lee Poe"), oem.New("", "dept", "CS")),
	}
}

func newFixture(t *testing.T, opts ...Option) (*Handler, *Source) {
	t.Helper()
	h := NewHandler(people())
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	opts = append([]Option{WithRetries(3, time.Millisecond)}, opts...)
	src, err := New("web", srv.URL, opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return h, src
}

func answerNames(t *testing.T, objs []*oem.Object) []string {
	t.Helper()
	var out []string
	for _, o := range objs {
		if n := o.Sub("name"); n != nil {
			s, _ := n.AtomString()
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

func TestQueryPushesConditionsToServer(t *testing.T) {
	_, src := newFixture(t)
	q := msl.MustParseRule(`<answer {<name N>}> :- <person {<name N> <dept 'CS'>}>@web.`)
	got, err := src.Query(q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if g := answerNames(t, got); len(g) != 2 || g[0] != "Joe Chung" || g[1] != "Pat Smith" {
		t.Fatalf("answers = %v", g)
	}
	// Server-side filtering: only the two CS persons crossed the wire.
	if n := src.Transferred(); n != 2 {
		t.Fatalf("transferred %d records, want 2", n)
	}
}

func TestIntConditionPushdown(t *testing.T) {
	_, src := newFixture(t)
	q := msl.MustParseRule(`<answer {<name N>}> :- <person {<name N> <year 1>}>@web.`)
	got, err := src.Query(q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if g := answerNames(t, got); len(g) != 1 || g[0] != "Ann Arbor" {
		t.Fatalf("answers = %v", g)
	}
	if n := src.Transferred(); n != 1 {
		t.Fatalf("transferred %d records, want 1", n)
	}
}

func TestLabelVariableEnumeratesLabels(t *testing.T) {
	_, src := newFixture(t)
	q := msl.MustParseRule(`<answer {<who N>}> :- <L {<name N> <dept 'CS'>}>@web.`)
	got, err := src.Query(q)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	want := []string{"Joe Chung", "Lee Poe", "Pat Smith"}
	var names []string
	for _, o := range got {
		if n := o.Sub("who"); n != nil {
			s, _ := n.AtomString()
			names = append(names, s)
		}
	}
	sort.Strings(names)
	if len(names) != 3 || names[0] != want[0] || names[1] != want[1] || names[2] != want[2] {
		t.Fatalf("answers = %v, want %v", names, want)
	}
}

func TestRetriesTransientFailures(t *testing.T) {
	h, src := newFixture(t)
	h.FailNext(2)
	q := msl.MustParseRule(`<answer {<name N>}> :- <person {<name N>}>@web.`)
	got, err := src.Query(q)
	if err != nil {
		t.Fatalf("Query after transient failures: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d answers", len(got))
	}
	if src.Retries() != 2 {
		t.Fatalf("retries = %d, want 2", src.Retries())
	}
}

func TestGivesUpAfterRetryBudget(t *testing.T) {
	h, src := newFixture(t, WithRetries(2, time.Millisecond))
	h.FailNext(100)
	q := msl.MustParseRule(`<answer {<name N>}> :- <person {<name N>}>@web.`)
	if _, err := src.Query(q); err == nil {
		t.Fatal("query against failing server succeeded")
	}
	// 1 initial + 2 retries.
	if src.Requests() != 3 {
		t.Fatalf("requests = %d, want 3", src.Requests())
	}
}

func TestPermanent4xxDoesNotRetry(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	}))
	t.Cleanup(srv.Close)
	src, err := New("web", srv.URL, WithRetries(5, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	q := msl.MustParseRule(`<answer {<name N>}> :- <person {<name N>}>@web.`)
	if _, err := src.Query(q); err == nil {
		t.Fatal("404 succeeded")
	}
	if src.Requests() != 1 {
		t.Fatalf("4xx retried: %d requests", src.Requests())
	}
}

func TestContextDeadlinePropagates(t *testing.T) {
	block := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-block:
		case <-r.Context().Done():
		}
	}))
	t.Cleanup(func() { close(block); srv.Close() })
	src, err := New("web", srv.URL, WithRetries(0, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	q := msl.MustParseRule(`<answer {<name N>}> :- <person {<name N>}>@web.`)
	start := time.Now()
	_, qerr := src.QueryContext(ctx, q)
	if qerr == nil {
		t.Fatal("query against blocked server succeeded")
	}
	if !errors.Is(qerr, context.DeadlineExceeded) && time.Since(start) > 5*time.Second {
		t.Fatalf("deadline not propagated: %v after %v", qerr, time.Since(start))
	}
}

func TestHonestCapabilities(t *testing.T) {
	_, src := newFixture(t)
	for _, text := range []string{
		`<a {<n N> <m M>}> :- <person {<name N>}>@web AND <staff {<name M>}>@web.`,
		`<out V> :- <%name V>@web.`,
		`P :- P:<person {<name N> | R:{<year 2>}}>@web.`,
	} {
		q := msl.MustParseRule(text)
		_, err := src.Query(q)
		var unsup *wrapper.UnsupportedError
		if !errors.As(err, &unsup) {
			t.Errorf("%s: err = %v, want UnsupportedError", text, err)
		}
	}
}

func TestAnswersMatchLocalEvaluation(t *testing.T) {
	// The remote source must agree with direct local evaluation over the
	// same extent for every supported query shape.
	_, src := newFixture(t)
	gen := oem.NewIDGen("refq")
	for _, text := range []string{
		`<answer {<name N>}> :- <person {<name N>}>@web.`,
		`<answer {<name N>}> :- <person {<name N> <dept 'EE'>}>@web.`,
		`P :- P:<person {<dept 'CS'> <year 3>}>@web.`,
		`<answer {<who N>}> :- <L {<name N>}>@web.`,
	} {
		q := msl.MustParseRule(text)
		got, err := src.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", text, err)
		}
		want, err := wrapper.Eval(q, people(), gen)
		if err != nil {
			t.Fatalf("%s (reference): %v", text, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d answers, reference %d", text, len(got), len(want))
		}
		for i := range got {
			if !got[i].StructuralEqual(want[i]) {
				t.Fatalf("%s: answer %d differs:\n%s\nvs\n%s", text, i, got[i], want[i])
			}
		}
	}
}
