package jsonhttp

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"medmaker/internal/msl"
	"medmaker/internal/oem"
	"medmaker/internal/wrapper"
)

// Source queries a remote JSON-over-HTTP service (see Handler for the
// wire format) as an OEM source. Fetched records are converted with the
// oem JSON codec and fully re-matched locally, so the server's filtering
// is an optimization, never trusted for correctness. Capabilities are
// honest for a dumb remote endpoint: value conditions only — no rest
// constraints, wildcards, or source-local joins; the mediator relaxes
// queries accordingly and applies the stripped features itself.
type Source struct {
	name   string
	base   *url.URL
	client *http.Client
	gen    *oem.IDGen

	// MaxRetries bounds re-sends of one request after transient failures
	// (5xx statuses and transport errors); 4xx failures are permanent.
	// RetryBase is the first backoff; each retry doubles it.
	maxRetries int
	retryBase  time.Duration

	requests    atomic.Int64 // HTTP requests issued, including retries
	retries     atomic.Int64 // requests that were retries
	transferred atomic.Int64 // records fetched off the wire
}

var (
	_ wrapper.Source              = (*Source)(nil)
	_ wrapper.ContextSource       = (*Source)(nil)
	_ wrapper.BatchQuerier        = (*Source)(nil)
	_ wrapper.ContextBatchQuerier = (*Source)(nil)
)

// Option customizes a Source.
type Option func(*Source)

// WithHTTPClient substitutes the http.Client (default: a client with a
// 10-second overall timeout; per-query contexts tighten it further).
func WithHTTPClient(c *http.Client) Option {
	return func(s *Source) { s.client = c }
}

// WithRetries sets the retry bound and initial backoff.
func WithRetries(max int, base time.Duration) Option {
	return func(s *Source) { s.maxRetries, s.retryBase = max, base }
}

// New builds a source named name over the service at baseURL.
func New(name, baseURL string, opts ...Option) (*Source, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("jsonhttp: bad base URL %q: %w", baseURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("jsonhttp: base URL %q must be http or https", baseURL)
	}
	s := &Source{
		name:       name,
		base:       u,
		client:     &http.Client{Timeout: 10 * time.Second},
		gen:        oem.NewIDGen(name + "q"),
		maxRetries: 3,
		retryBase:  50 * time.Millisecond,
	}
	for _, o := range opts {
		o(s)
	}
	return s, nil
}

// Name implements wrapper.Source.
func (s *Source) Name() string { return s.name }

// Capabilities implements wrapper.Source.
func (s *Source) Capabilities() wrapper.Capabilities {
	return wrapper.Capabilities{ValueConditions: true}
}

// Query implements wrapper.Source.
func (s *Source) Query(q *msl.Rule) ([]*oem.Object, error) {
	return s.QueryContext(context.Background(), q)
}

// QueryContext implements wrapper.ContextSource: the context bounds every
// HTTP request (and backoff sleep) the query issues.
func (s *Source) QueryContext(ctx context.Context, q *msl.Rule) ([]*oem.Object, error) {
	if err := wrapper.CheckCapabilities(q, s.Capabilities(), s.name); err != nil {
		return nil, err
	}
	return wrapper.EvalWith(q, func(pc *msl.PatternConjunct) ([]*oem.Object, error) {
		return s.fetch(ctx, pc)
	}, s.gen)
}

// QueryBatch implements wrapper.BatchQuerier.
func (s *Source) QueryBatch(qs []*msl.Rule) ([][]*oem.Object, error) {
	return wrapper.EachQuery(s, qs)
}

// QueryBatchContext implements wrapper.ContextBatchQuerier.
func (s *Source) QueryBatchContext(ctx context.Context, qs []*msl.Rule) ([][]*oem.Object, error) {
	return wrapper.EachQueryContext(ctx, s, qs)
}

// Requests returns the number of HTTP requests issued, retries included.
func (s *Source) Requests() int64 { return s.requests.Load() }

// Retries returns how many of those requests were retries.
func (s *Source) Retries() int64 { return s.retries.Load() }

// Transferred returns the cumulative number of records fetched.
func (s *Source) Transferred() int64 { return s.transferred.Load() }

// fetch retrieves the candidate records for one pattern conjunct,
// pushing the label and recognizable equality conditions into the
// request's query parameters.
func (s *Source) fetch(ctx context.Context, pc *msl.PatternConjunct) ([]*oem.Object, error) {
	label := pc.Pattern.LabelName()
	if label == "" {
		if _, isParam := pc.Pattern.Label.(*msl.Param); isParam {
			return nil, fmt.Errorf("jsonhttp: unsubstituted parameter in label of %s", pc.Pattern)
		}
		// Label variable: enumerate the service's labels, fetch each.
		labels, err := s.fetchLabels(ctx)
		if err != nil {
			return nil, err
		}
		var out []*oem.Object
		for _, l := range labels {
			objs, err := s.fetchRecords(ctx, l, nil)
			if err != nil {
				return nil, err
			}
			out = append(out, objs...)
		}
		return out, nil
	}
	return s.fetchRecords(ctx, label, pushableParams(pc.Pattern))
}

// pushableParams extracts "field=value" equality filters from the
// pattern's direct set elements — the same must-have-member semantics the
// local matcher enforces, so server-side filtering only removes
// non-answers.
func pushableParams(p *msl.ObjectPattern) url.Values {
	sp, ok := p.Value.(*msl.SetPattern)
	if !ok {
		return nil
	}
	params := url.Values{}
	for _, e := range sp.Elems {
		ep, isPat := e.(*msl.ObjectPattern)
		if !isPat || ep.Wildcard {
			continue
		}
		field := ep.LabelName()
		if field == "" || field == "label" {
			continue // "label" would collide with the protocol parameter
		}
		c, isConst := ep.Value.(*msl.Const)
		if !isConst {
			continue
		}
		if txt, ok := atomQueryText(c.Value); ok {
			params.Add(field, txt)
		}
	}
	if len(params) == 0 {
		return nil
	}
	return params
}

func (s *Source) fetchLabels(ctx context.Context) ([]string, error) {
	body, err := s.get(ctx, s.endpoint("/labels", nil))
	if err != nil {
		return nil, err
	}
	var labels []string
	if err := json.Unmarshal(body, &labels); err != nil {
		return nil, fmt.Errorf("jsonhttp: %s: bad /labels response: %w", s.name, err)
	}
	return labels, nil
}

func (s *Source) fetchRecords(ctx context.Context, label string, params url.Values) ([]*oem.Object, error) {
	q := url.Values{"label": {label}}
	for k, vs := range params {
		q[k] = vs
	}
	body, err := s.get(ctx, s.endpoint("/records", q))
	if err != nil {
		return nil, err
	}
	objs, err := oem.FromJSONArray(label, body)
	if err != nil {
		return nil, fmt.Errorf("jsonhttp: %s: bad /records response: %w", s.name, err)
	}
	s.transferred.Add(int64(len(objs)))
	return objs, nil
}

func (s *Source) endpoint(path string, q url.Values) string {
	u := *s.base
	u.Path = strings.TrimSuffix(u.Path, "/") + path
	u.RawQuery = q.Encode()
	return u.String()
}

// get issues one GET with bounded retries: transport errors and 5xx
// responses back off and retry; 4xx responses and context cancellation
// fail immediately.
func (s *Source) get(ctx context.Context, rawURL string) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt <= s.maxRetries; attempt++ {
		if attempt > 0 {
			s.retries.Add(1)
			if err := sleepCtx(ctx, backoff(s.retryBase, attempt)); err != nil {
				return nil, err
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, rawURL, nil)
		if err != nil {
			return nil, fmt.Errorf("jsonhttp: %s: %w", s.name, err)
		}
		s.requests.Add(1)
		resp, err := s.client.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			lastErr = err
			continue // transport error: retry
		}
		body, readErr := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode >= 500:
			lastErr = fmt.Errorf("jsonhttp: %s: server error %s", s.name, resp.Status)
			continue
		case resp.StatusCode >= 400:
			return nil, fmt.Errorf("jsonhttp: %s: %s for %s", s.name, resp.Status, rawURL)
		case readErr != nil:
			lastErr = readErr
			continue
		}
		return body, nil
	}
	return nil, fmt.Errorf("jsonhttp: %s: giving up after %d attempts: %w", s.name, s.maxRetries+1, lastErr)
}

// backoff returns the sleep before retry attempt n (1-based): base
// doubled per attempt with ±25% jitter so synchronized clients spread.
func backoff(base time.Duration, attempt int) time.Duration {
	d := base << (attempt - 1)
	jitter := time.Duration(rand.Int63n(int64(d)/2+1)) - d/4
	return d + jitter
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
