// Package relational implements a small in-memory relational engine — the
// well-structured-database substrate of the MedMaker paper's running
// example (the cs source with its employee and student tables) — together
// with a wrapper that exports rows as OEM objects (see wrapper.go).
//
// The engine supports typed schemas, nullable columns, predicate scans,
// and equality hash indexes. It is deliberately minimal: MedMaker treats
// sources as autonomous black boxes reached through wrappers, so only the
// operations a wrapper needs are provided.
package relational

import (
	"fmt"
	"sort"
	"sync"

	"medmaker/internal/oem"
)

// Column describes one attribute of a relation schema.
type Column struct {
	// Name is the attribute name; it becomes the OEM label on export.
	Name string
	// Kind is the attribute type.
	Kind oem.Kind
}

// Schema describes a relation: its name (the OEM label of exported rows)
// and its columns.
type Schema struct {
	Name    string
	Columns []Column
}

// ColumnIndex returns the position of the named column, or -1.
func (s Schema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Row is one tuple; entries align with the schema's columns. A nil entry
// is a NULL — the wrapper omits the corresponding subobject, turning
// relational missing values into OEM structural irregularity.
type Row []oem.Value

// Op is a comparison operator in a selection condition.
type Op int

const (
	// OpEq selects rows whose column equals the value.
	OpEq Op = iota
	// OpNe selects rows whose column differs from the value.
	OpNe
	// OpLt selects rows whose column is less than the value.
	OpLt
	// OpLe selects rows whose column is at most the value.
	OpLe
	// OpGt selects rows whose column is greater than the value.
	OpGt
	// OpGe selects rows whose column is at least the value.
	OpGe
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Cond is a selection condition "column op value".
type Cond struct {
	Column string
	Op     Op
	Value  oem.Value
}

// Table is one relation. Tables are safe for concurrent use.
type Table struct {
	mu      sync.RWMutex
	schema  Schema
	rows    []Row
	indexes map[string]map[uint64][]int // column -> value hash -> row ids
	// watchers run after each Insert, outside the table lock, with the
	// table and the new row's id. Wrappers use them to emit change feeds.
	watchers []func(t *Table, id int)
}

// onInsert registers a mutation watcher; see Table.watchers.
func (t *Table) onInsert(fn func(t *Table, id int)) {
	t.mu.Lock()
	t.watchers = append(t.watchers, fn)
	t.mu.Unlock()
}

// NewTable creates an empty table with the given schema.
func NewTable(schema Schema) (*Table, error) {
	if schema.Name == "" {
		return nil, fmt.Errorf("relational: table must have a name")
	}
	if len(schema.Columns) == 0 {
		return nil, fmt.Errorf("relational: table %q must have columns", schema.Name)
	}
	seen := map[string]bool{}
	for _, c := range schema.Columns {
		if c.Name == "" {
			return nil, fmt.Errorf("relational: table %q has an unnamed column", schema.Name)
		}
		if c.Kind == oem.KindSet {
			return nil, fmt.Errorf("relational: column %q: set-valued columns are not relational", c.Name)
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("relational: table %q has duplicate column %q", schema.Name, c.Name)
		}
		seen[c.Name] = true
	}
	return &Table{schema: schema, indexes: map[string]map[uint64][]int{}}, nil
}

// Schema returns the table's schema.
func (t *Table) Schema() Schema { return t.schema }

// Len returns the number of rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Insert appends one row. Values are converted with oem.Atom; nil entries
// are NULLs. Types must match the schema (Int widens to a Float column).
func (t *Table) Insert(vals ...any) error {
	if len(vals) != len(t.schema.Columns) {
		return fmt.Errorf("relational: %s: inserted %d values, schema has %d columns",
			t.schema.Name, len(vals), len(t.schema.Columns))
	}
	row := make(Row, len(vals))
	for i, v := range vals {
		if v == nil {
			row[i] = nil
			continue
		}
		val := oem.Atom(v)
		col := t.schema.Columns[i]
		if val.Kind() != col.Kind {
			if col.Kind == oem.KindFloat && val.Kind() == oem.KindInt {
				val = oem.Float(val.(oem.Int))
			} else {
				return fmt.Errorf("relational: %s.%s: value %s has kind %s, column is %s",
					t.schema.Name, col.Name, val, val.Kind(), col.Kind)
			}
		}
		row[i] = val
	}
	t.mu.Lock()
	id := len(t.rows)
	t.rows = append(t.rows, row)
	for col, idx := range t.indexes {
		ci := t.schema.ColumnIndex(col)
		if row[ci] != nil {
			h := oem.HashValue(row[ci])
			idx[h] = append(idx[h], id)
		}
	}
	watchers := t.watchers
	t.mu.Unlock()
	for _, fn := range watchers {
		fn(t, id)
	}
	return nil
}

// MustInsert is Insert that panics on error, for test and example setup.
func (t *Table) MustInsert(vals ...any) {
	if err := t.Insert(vals...); err != nil {
		panic(err)
	}
}

// CreateIndex builds an equality hash index on the named column; it is a
// no-op when the index exists.
func (t *Table) CreateIndex(column string) error {
	ci := t.schema.ColumnIndex(column)
	if ci < 0 {
		return fmt.Errorf("relational: %s has no column %q", t.schema.Name, column)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.indexes[column]; ok {
		return nil
	}
	idx := make(map[uint64][]int)
	for id, row := range t.rows {
		if row[ci] != nil {
			h := oem.HashValue(row[ci])
			idx[h] = append(idx[h], id)
		}
	}
	t.indexes[column] = idx
	return nil
}

// HasIndex reports whether an equality index exists on the column.
func (t *Table) HasIndex(column string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.indexes[column]
	return ok
}

// Select returns the ids of rows satisfying every condition. An equality
// condition on an indexed column narrows the scan; remaining conditions
// are verified per row. NULL columns satisfy no condition.
func (t *Table) Select(conds []Cond) ([]int, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	// Resolve condition columns once; rowSatisfies runs per candidate.
	cis := make([]int, len(conds))
	for i, c := range conds {
		cis[i] = t.schema.ColumnIndex(c.Column)
		if cis[i] < 0 {
			return nil, fmt.Errorf("relational: %s has no column %q", t.schema.Name, c.Column)
		}
	}
	var out []int
	for _, id := range t.indexCandidates(conds) {
		if t.rowSatisfies(t.rows[id], conds, cis) {
			out = append(out, id)
		}
	}
	return out, nil
}

// indexCandidates picks the most selective applicable equality index and
// returns the candidate row ids (sorted), or all ids when no index
// applies.
func (t *Table) indexCandidates(conds []Cond) []int {
	var bestIDs []int
	found := false
	for _, c := range conds {
		if c.Op != OpEq || c.Value == nil {
			continue
		}
		idx, ok := t.indexes[c.Column]
		if !ok {
			continue
		}
		cand := idx[oem.HashValue(c.Value)]
		if !found || len(cand) < len(bestIDs) {
			found = true
			bestIDs = cand
		}
	}
	if found {
		sorted := make([]int, len(bestIDs))
		copy(sorted, bestIDs)
		sort.Ints(sorted)
		return sorted
	}
	all := make([]int, len(t.rows))
	for i := range all {
		all[i] = i
	}
	return all
}

func (t *Table) rowSatisfies(row Row, conds []Cond, cis []int) bool {
	for i, c := range conds {
		v := row[cis[i]]
		if v == nil {
			return false
		}
		if c.Op == OpEq {
			if !v.Equal(c.Value) {
				return false
			}
			continue
		}
		if c.Op == OpNe {
			if v.Equal(c.Value) {
				return false
			}
			continue
		}
		cmp, ok := oem.CompareAtoms(v, c.Value)
		if !ok {
			return false
		}
		switch c.Op {
		case OpLt:
			if cmp >= 0 {
				return false
			}
		case OpLe:
			if cmp > 0 {
				return false
			}
		case OpGt:
			if cmp <= 0 {
				return false
			}
		case OpGe:
			if cmp < 0 {
				return false
			}
		}
	}
	return true
}

// Row returns a copy of the row with the given id.
func (t *Table) Row(id int) (Row, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if id < 0 || id >= len(t.rows) {
		return nil, fmt.Errorf("relational: %s has no row %d", t.schema.Name, id)
	}
	out := make(Row, len(t.rows[id]))
	copy(out, t.rows[id])
	return out, nil
}

// DB is a named collection of tables.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
	// watchers are insert watchers attached to every current and future
	// table of the database.
	watchers []func(t *Table, id int)
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{tables: make(map[string]*Table)} }

// onInsert registers fn as an insert watcher on every table the database
// has now or gains later.
func (db *DB) onInsert(fn func(t *Table, id int)) {
	db.mu.Lock()
	db.watchers = append(db.watchers, fn)
	tables := make([]*Table, 0, len(db.tables))
	for _, t := range db.tables {
		tables = append(tables, t)
	}
	db.mu.Unlock()
	for _, t := range tables {
		t.onInsert(fn)
	}
}

// CreateTable creates and registers a table.
func (db *DB) CreateTable(schema Schema) (*Table, error) {
	t, err := NewTable(schema)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[schema.Name]; dup {
		return nil, fmt.Errorf("relational: table %q already exists", schema.Name)
	}
	db.tables[schema.Name] = t
	for _, fn := range db.watchers {
		t.onInsert(fn)
	}
	return t, nil
}

// MustCreateTable is CreateTable that panics on error.
func (db *DB) MustCreateTable(schema Schema) *Table {
	t, err := db.CreateTable(schema)
	if err != nil {
		panic(err)
	}
	return t
}

// Table returns the named table.
func (db *DB) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	return t, ok
}

// Names returns the table names, sorted.
func (db *DB) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
