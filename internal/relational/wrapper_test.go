package relational

import (
	"errors"
	"strings"
	"testing"

	"medmaker/internal/msl"
	"medmaker/internal/oem"
	"medmaker/internal/wrapper"
)

// paperDB builds the cs source of the paper's Section 2: the employee and
// student tables behind the cs wrapper.
func paperDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	emp := db.MustCreateTable(Schema{
		Name: "employee",
		Columns: []Column{
			{Name: "first_name", Kind: oem.KindString},
			{Name: "last_name", Kind: oem.KindString},
			{Name: "title", Kind: oem.KindString},
			{Name: "reports_to", Kind: oem.KindString},
		},
	})
	emp.MustInsert("Joe", "Chung", "professor", "John Hennessy")
	stu := db.MustCreateTable(Schema{
		Name: "student",
		Columns: []Column{
			{Name: "first_name", Kind: oem.KindString},
			{Name: "last_name", Kind: oem.KindString},
			{Name: "year", Kind: oem.KindInt},
		},
	})
	stu.MustInsert("Nick", "Naive", 3)
	return db
}

// TestExportFigure22 checks the wrapper's OEM export against the object
// structure of the paper's Figure 2.2.
func TestExportFigure22(t *testing.T) {
	w := NewWrapper("cs", paperDB(t))
	objs := w.Export()
	if len(objs) != 2 {
		t.Fatalf("exported %d objects", len(objs))
	}
	want := oem.MustParse(`
	<employee, set, {<first_name, 'Joe'>, <last_name, 'Chung'>,
	    <title, 'professor'>, <reports_to, 'John Hennessy'>}>
	<student, set, {<first_name, 'Nick'>, <last_name, 'Naive'>, <year, 3>}>`)
	for i := range want {
		if !objs[i].StructuralEqual(want[i]) {
			t.Errorf("export %d differs:\n%s", i, oem.Format(objs[i]))
		}
	}
	// Schema incorporated into each object: labels are column names.
	if objs[0].Sub("first_name") == nil {
		t.Fatal("schema not incorporated into objects")
	}
}

// TestQueryQcs runs the paper's parameterized query Qcs after parameter
// substitution (the form Qc2 sent for R='employee').
func TestQueryQcs(t *testing.T) {
	w := NewWrapper("cs", paperDB(t))
	q := msl.MustParseRule(`<bind_for_Rest2 Rest2> :-
	    <employee {<last_name 'Chung'> <first_name 'Joe'> | Rest2}>@cs.`)
	got, err := w.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("Qcs returned %d objects", len(got))
	}
	rest := got[0]
	if rest.Label != "bind_for_Rest2" || len(rest.Subobjects()) != 2 {
		t.Fatalf("bind_for_Rest2 = %s", oem.Format(rest))
	}
	labels := rest.Subobjects().Labels()
	if labels[0] != "reports_to" || labels[1] != "title" {
		t.Fatalf("rest labels = %v", labels)
	}
}

// TestQueryQc1Empty mirrors Qc1 for the mismatched direction: asking the
// student table for Chung/Joe returns nothing.
func TestQueryQc1Empty(t *testing.T) {
	w := NewWrapper("cs", paperDB(t))
	q := msl.MustParseRule(`<bind_for_Rest2 Rest2> :-
	    <student {<last_name 'Chung'> <first_name 'Joe'> | Rest2}>@cs.`)
	got, err := w.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("expected empty, got %d", len(got))
	}
}

// TestLabelVariableSpansTables checks the schematic-discrepancy behaviour:
// a label variable ranges over relation names.
func TestLabelVariableSpansTables(t *testing.T) {
	w := NewWrapper("cs", paperDB(t))
	q := msl.MustParseRule(`<rel R> :- <R {<first_name FN>}>@cs.`)
	got, err := w.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	rels := map[string]bool{}
	for _, o := range got {
		s, _ := o.AtomString()
		rels[s] = true
	}
	if !rels["employee"] || !rels["student"] {
		t.Fatalf("label variable missed tables: %v", rels)
	}
}

func TestUnknownRelationYieldsNothing(t *testing.T) {
	w := NewWrapper("cs", paperDB(t))
	q := msl.MustParseRule(`<out {X}> :- <professor {X}>@cs.`)
	got, err := w.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("unknown relation returned objects")
	}
}

func TestNullBecomesMissingSubobject(t *testing.T) {
	db := NewDB()
	tab := db.MustCreateTable(Schema{
		Name: "person",
		Columns: []Column{
			{Name: "name", Kind: oem.KindString},
			{Name: "email", Kind: oem.KindString},
		},
	})
	tab.MustInsert("Joe", "joe@cs")
	tab.MustInsert("Sue", nil)
	w := NewWrapper("p", db)
	objs := w.Export()
	if len(objs[0].Subobjects()) != 2 || len(objs[1].Subobjects()) != 1 {
		t.Fatalf("NULL handling wrong:\n%s", oem.Format(objs...))
	}
	// A pattern requiring email matches only Joe.
	q := msl.MustParseRule(`<out N> :- <person {<name N> <email E>}>@p.`)
	got, err := w.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("email pattern matched %d rows", len(got))
	}
}

func TestPushdownEquivalence(t *testing.T) {
	// A selective query answered with and without an index returns the
	// same objects; pushdown is invisible to results.
	db := NewDB()
	tab := db.MustCreateTable(Schema{
		Name: "student",
		Columns: []Column{
			{Name: "name", Kind: oem.KindString},
			{Name: "year", Kind: oem.KindInt},
		},
	})
	for i := 0; i < 200; i++ {
		tab.MustInsert("s"+strings.Repeat("x", i%7), i%5)
	}
	q := msl.MustParseRule(`<out N> :- <student {<name N> <year 3>}>@cs.`)
	w := NewWrapper("cs", db)
	before, err := w.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.CreateIndex("year"); err != nil {
		t.Fatal(err)
	}
	after, err := w.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != len(after) {
		t.Fatalf("index changed result count: %d vs %d", len(before), len(after))
	}
	if len(before) == 0 {
		t.Fatal("selective query returned nothing")
	}
}

func TestRestConstraintPushdown(t *testing.T) {
	w := NewWrapper("cs", paperDB(t))
	// year lives in the rest set; the constraint still selects rows.
	q := msl.MustParseRule(`<out FN> :-
	    <student {<first_name FN> | R:{<year 3>}}>@cs.`)
	got, err := w.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("rest-constraint query returned %d", len(got))
	}
	if v, _ := got[0].AtomString(); v != "Nick" {
		t.Fatalf("FN = %q", v)
	}
}

func TestWildcardRejected(t *testing.T) {
	w := NewWrapper("cs", paperDB(t))
	q := msl.MustParseRule(`<out T> :- <%title T>@cs.`)
	_, err := w.Query(q)
	var ue *wrapper.UnsupportedError
	if !errors.As(err, &ue) || ue.Feature != "wildcard patterns" {
		t.Fatalf("want wildcard UnsupportedError, got %v", err)
	}
}

func TestStableRowOIDs(t *testing.T) {
	w := NewWrapper("cs", paperDB(t))
	q := msl.MustParseRule(`P :- P:<employee {<last_name 'Chung'>}>@cs.`)
	// Two queries: the underlying row oid inside the wrapper is stable,
	// though materialized results get fresh mediator oids. Check the
	// stable candidates directly.
	a, _ := w.candidates(q.Tail[0].(*msl.PatternConjunct))
	b, _ := w.candidates(q.Tail[0].(*msl.PatternConjunct))
	if len(a) != 1 || len(b) != 1 || a[0].OID != b[0].OID {
		t.Fatalf("row oids unstable: %v vs %v", a, b)
	}
	if !strings.HasPrefix(string(a[0].OID), "&employee_r") {
		t.Fatalf("row oid format: %s", a[0].OID)
	}
}
