package relational

import (
	"reflect"
	"testing"

	"medmaker/internal/oem"
)

func staffSchema() Schema {
	return Schema{
		Name: "employee",
		Columns: []Column{
			{Name: "first_name", Kind: oem.KindString},
			{Name: "last_name", Kind: oem.KindString},
			{Name: "title", Kind: oem.KindString},
			{Name: "reports_to", Kind: oem.KindString},
		},
	}
}

func TestNewTableValidation(t *testing.T) {
	bad := []Schema{
		{Name: "", Columns: []Column{{Name: "a", Kind: oem.KindInt}}},
		{Name: "t"},
		{Name: "t", Columns: []Column{{Name: "", Kind: oem.KindInt}}},
		{Name: "t", Columns: []Column{{Name: "a", Kind: oem.KindSet}}},
		{Name: "t", Columns: []Column{{Name: "a", Kind: oem.KindInt}, {Name: "a", Kind: oem.KindInt}}},
	}
	for i, s := range bad {
		if _, err := NewTable(s); err == nil {
			t.Errorf("schema %d accepted", i)
		}
	}
	if _, err := NewTable(staffSchema()); err != nil {
		t.Fatal(err)
	}
}

func TestInsertValidation(t *testing.T) {
	tab, _ := NewTable(staffSchema())
	if err := tab.Insert("Joe", "Chung", "professor", "John Hennessy"); err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert("only", "three", "values"); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if err := tab.Insert("Joe", "Chung", 42, "x"); err == nil {
		t.Fatal("type mismatch accepted")
	}
	// NULLs allowed.
	if err := tab.Insert("Ann", "Lee", nil, nil); err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d", tab.Len())
	}
	// Int widens into a float column.
	ft, _ := NewTable(Schema{Name: "m", Columns: []Column{{Name: "x", Kind: oem.KindFloat}}})
	if err := ft.Insert(3); err != nil {
		t.Fatal(err)
	}
	row, _ := ft.Row(0)
	if row[0].Kind() != oem.KindFloat {
		t.Fatal("int not widened")
	}
}

func fillStudents(t *testing.T) *Table {
	t.Helper()
	tab, err := NewTable(Schema{
		Name: "student",
		Columns: []Column{
			{Name: "first_name", Kind: oem.KindString},
			{Name: "last_name", Kind: oem.KindString},
			{Name: "year", Kind: oem.KindInt},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tab.MustInsert("Nick", "Naive", 3)
	tab.MustInsert("Ann", "Able", 1)
	tab.MustInsert("Bob", "Busy", 3)
	tab.MustInsert("Cam", "Cool", 4)
	return tab
}

func TestSelect(t *testing.T) {
	tab := fillStudents(t)
	cases := []struct {
		conds []Cond
		want  []int
	}{
		{nil, []int{0, 1, 2, 3}},
		{[]Cond{{Column: "year", Op: OpEq, Value: oem.Int(3)}}, []int{0, 2}},
		{[]Cond{{Column: "year", Op: OpNe, Value: oem.Int(3)}}, []int{1, 3}},
		{[]Cond{{Column: "year", Op: OpLt, Value: oem.Int(3)}}, []int{1}},
		{[]Cond{{Column: "year", Op: OpLe, Value: oem.Int(3)}}, []int{0, 1, 2}},
		{[]Cond{{Column: "year", Op: OpGt, Value: oem.Int(3)}}, []int{3}},
		{[]Cond{{Column: "year", Op: OpGe, Value: oem.Int(4)}}, []int{3}},
		{[]Cond{
			{Column: "year", Op: OpEq, Value: oem.Int(3)},
			{Column: "first_name", Op: OpEq, Value: oem.String("Bob")},
		}, []int{2}},
		{[]Cond{{Column: "last_name", Op: OpLt, Value: oem.String("B")}}, []int{1}},
		// Cross-kind numeric comparison.
		{[]Cond{{Column: "year", Op: OpEq, Value: oem.Float(3)}}, []int{0, 2}},
		// Incomparable kinds satisfy nothing.
		{[]Cond{{Column: "year", Op: OpLt, Value: oem.String("3")}}, nil},
	}
	for i, c := range cases {
		got, err := tab.Select(c.conds)
		if err != nil {
			t.Errorf("case %d: %v", i, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("case %d: Select = %v, want %v", i, got, c.want)
		}
	}
	if _, err := tab.Select([]Cond{{Column: "nope", Op: OpEq, Value: oem.Int(1)}}); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestIndexEquivalence(t *testing.T) {
	plain := fillStudents(t)
	indexed := fillStudents(t)
	if err := indexed.CreateIndex("year"); err != nil {
		t.Fatal(err)
	}
	if !indexed.HasIndex("year") || indexed.HasIndex("first_name") {
		t.Fatal("HasIndex wrong")
	}
	// Index created before further inserts stays correct.
	indexed.MustInsert("Dee", "Deep", 3)
	plain.MustInsert("Dee", "Deep", 3)
	conds := []Cond{{Column: "year", Op: OpEq, Value: oem.Int(3)}}
	a, _ := plain.Select(conds)
	b, _ := indexed.Select(conds)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("index changed results: %v vs %v", a, b)
	}
	if err := indexed.CreateIndex("year"); err != nil {
		t.Fatal("re-creating an index should be a no-op")
	}
	if err := indexed.CreateIndex("nope"); err == nil {
		t.Fatal("index on unknown column accepted")
	}
}

func TestNullsSatisfyNoCondition(t *testing.T) {
	tab, _ := NewTable(Schema{Name: "t", Columns: []Column{{Name: "x", Kind: oem.KindInt}}})
	tab.MustInsert(nil)
	tab.MustInsert(1)
	for _, op := range []Op{OpEq, OpNe, OpLt, OpGe} {
		got, _ := tab.Select([]Cond{{Column: "x", Op: op, Value: oem.Int(1)}})
		for _, id := range got {
			if id == 0 {
				t.Errorf("NULL row satisfied %v", op)
			}
		}
	}
}

func TestRowCopySemantics(t *testing.T) {
	tab := fillStudents(t)
	row, err := tab.Row(0)
	if err != nil {
		t.Fatal(err)
	}
	row[0] = oem.String("Mutated")
	again, _ := tab.Row(0)
	if !again[0].Equal(oem.String("Nick")) {
		t.Fatal("Row returned a live reference")
	}
	if _, err := tab.Row(99); err == nil {
		t.Fatal("out-of-range row accepted")
	}
}

func TestDB(t *testing.T) {
	db := NewDB()
	db.MustCreateTable(staffSchema())
	if _, err := db.CreateTable(staffSchema()); err == nil {
		t.Fatal("duplicate table accepted")
	}
	db.MustCreateTable(Schema{Name: "student", Columns: []Column{{Name: "year", Kind: oem.KindInt}}})
	if got := db.Names(); !reflect.DeepEqual(got, []string{"employee", "student"}) {
		t.Fatalf("Names = %v", got)
	}
	if _, ok := db.Table("employee"); !ok {
		t.Fatal("Table lookup failed")
	}
	if _, ok := db.Table("nope"); ok {
		t.Fatal("absent table found")
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">="} {
		if op.String() != want {
			t.Errorf("Op %d prints %q", op, op.String())
		}
	}
}
