package relational

import (
	"context"
	"fmt"
	"strconv"
	"sync"

	"medmaker/internal/msl"
	"medmaker/internal/oem"
	"medmaker/internal/wrapper"
)

// Wrapper exports a relational database as an OEM source, as the paper's
// cs wrapper does (Figure 2.2): each row becomes a top-level object
// labelled with its table name, with one atomic subobject per non-NULL
// column. The schema is thereby incorporated into the individual objects,
// which is what lets an MSL label variable range over relation names and
// resolve schematic discrepancies.
//
// The wrapper pushes the selections it can recognize — constant values on
// column subobjects of a constant-label pattern — into indexed or scanned
// relational selections before converting rows to OEM; everything else is
// handled by generic OEM matching over the converted candidates, so
// push-down is purely an optimization.
type Wrapper struct {
	name string
	db   *DB
	gen  *oem.IDGen

	// rowObjs caches the OEM conversion of each table row, indexed by
	// row id. Rows are append-only and row oids are stable by contract,
	// so a converted row object is immutable and can be shared by every
	// answer that selects it — exactly as an OEM store shares its
	// top-level objects. Parameterized plans re-select overlapping rows
	// constantly; the cache makes conversion a once-per-row cost.
	mu      sync.Mutex
	rowObjs map[*Table][]*oem.Object

	feed wrapper.Feed
}

var (
	_ wrapper.Source              = (*Wrapper)(nil)
	_ wrapper.BatchQuerier        = (*Wrapper)(nil)
	_ wrapper.ContextSource       = (*Wrapper)(nil)
	_ wrapper.ContextBatchQuerier = (*Wrapper)(nil)
	_ wrapper.Notifier            = (*Wrapper)(nil)
)

// NewWrapper wraps db as a source with the given name. Rows inserted into
// the database after the wrapper is created — into current or future
// tables — are emitted as change-feed deltas to wrapper.Notifier
// subscribers.
func NewWrapper(name string, db *DB) *Wrapper {
	w := &Wrapper{name: name, db: db, gen: oem.NewIDGen(name + "q"),
		rowObjs: make(map[*Table][]*oem.Object)}
	db.onInsert(func(t *Table, id int) {
		if !w.feed.Active() {
			return
		}
		objs := w.convert(t, []int{id})
		if len(objs) > 0 {
			w.feed.Emit(wrapper.Delta{Source: w.name, Inserted: objs})
		}
	})
	return w
}

// OnChange implements wrapper.Notifier: fn receives an insert delta —
// carrying the same pointer-stable row object later queries return — for
// every subsequent Insert into the wrapped database.
func (w *Wrapper) OnChange(fn func(wrapper.Delta)) { w.feed.OnChange(fn) }

// Name implements wrapper.Source.
func (w *Wrapper) Name() string { return w.name }

// Capabilities implements wrapper.Source. Relational data is flat, and
// the original cs-style wrappers did not search at arbitrary depth, so
// wildcards are not supported; the mediator compensates.
func (w *Wrapper) Capabilities() wrapper.Capabilities {
	return wrapper.Capabilities{
		ValueConditions: true,
		RestConstraints: true,
		Wildcards:       false,
		MultiPattern:    true,
	}
}

// Query implements wrapper.Source.
func (w *Wrapper) Query(q *msl.Rule) ([]*oem.Object, error) {
	if err := wrapper.CheckCapabilities(q, w.Capabilities(), w.name); err != nil {
		return nil, err
	}
	return wrapper.EvalWith(q, w.candidates, w.gen)
}

// QueryContext implements wrapper.ContextSource: the context is checked
// up front, then the in-process evaluation runs to completion.
func (w *Wrapper) QueryContext(ctx context.Context, q *msl.Rule) ([]*oem.Object, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return w.Query(q)
}

// QueryBatch implements wrapper.BatchQuerier: an in-process wrapper
// accepts a whole batch in one call, so a batch of parameterized queries
// costs one exchange.
func (w *Wrapper) QueryBatch(qs []*msl.Rule) ([][]*oem.Object, error) {
	return wrapper.EachQuery(w, qs)
}

// QueryBatchContext implements wrapper.ContextBatchQuerier, checking the
// context between the batch's queries.
func (w *Wrapper) QueryBatchContext(ctx context.Context, qs []*msl.Rule) ([][]*oem.Object, error) {
	return wrapper.EachQueryContext(ctx, w, qs)
}

// CountLabel implements wrapper.Counter: the label is a table name and
// the count its row count.
func (w *Wrapper) CountLabel(label string) (int, bool) {
	t, ok := w.db.Table(label)
	if !ok {
		return 0, true // known absent: zero rows
	}
	return t.Len(), true
}

// Export converts every row of every table to OEM, in table-name order —
// the full source export used by figure regeneration and by patterns whose
// label is a variable.
func (w *Wrapper) Export() []*oem.Object {
	var out []*oem.Object
	for _, name := range w.db.Names() {
		t, _ := w.db.Table(name)
		ids := make([]int, t.Len())
		for i := range ids {
			ids[i] = i
		}
		out = append(out, w.convert(t, ids)...)
	}
	return out
}

// candidates returns the converted rows a pattern conjunct could match,
// using the table name and pushable equality/comparison conditions to
// narrow the relational selection first.
func (w *Wrapper) candidates(pc *msl.PatternConjunct) ([]*oem.Object, error) {
	tables, err := w.tablesFor(pc.Pattern)
	if err != nil {
		return nil, err
	}
	var out []*oem.Object
	for _, t := range tables {
		conds := pushableConds(t.Schema(), pc.Pattern)
		// Parameterized plans re-select on the same columns for every
		// binding; building the equality index on first use turns the
		// remaining selections into hash probes. pushableConds only
		// emits conditions on real columns, so CreateIndex cannot fail.
		for _, c := range conds {
			if c.Op == OpEq {
				if err := t.CreateIndex(c.Column); err != nil {
					return nil, err
				}
			}
		}
		ids, err := t.Select(conds)
		if err != nil {
			return nil, err
		}
		out = append(out, w.convert(t, ids)...)
	}
	return out, nil
}

func (w *Wrapper) tablesFor(p *msl.ObjectPattern) ([]*Table, error) {
	if name := p.LabelName(); name != "" {
		t, ok := w.db.Table(name)
		if !ok {
			return nil, nil // unknown relation: no candidates, not an error
		}
		return []*Table{t}, nil
	}
	if _, isParam := p.Label.(*msl.Param); isParam {
		return nil, fmt.Errorf("relational: unsubstituted parameter in label of %s", p)
	}
	// Label variable: all tables (schematic-discrepancy queries).
	var out []*Table
	for _, name := range w.db.Names() {
		t, _ := w.db.Table(name)
		out = append(out, t)
	}
	return out, nil
}

// pushableConds extracts "column op constant" conditions from the
// pattern's direct set elements. Only elements with a constant label
// naming a real column and a constant value qualify; rest constraints of
// the form {<col const>} qualify too, since rest members are just the
// unlisted columns.
func pushableConds(schema Schema, p *msl.ObjectPattern) []Cond {
	sp, ok := p.Value.(*msl.SetPattern)
	if !ok {
		return nil
	}
	var conds []Cond
	addFrom := func(ep *msl.ObjectPattern) {
		if ep.Wildcard {
			return
		}
		col := ep.LabelName()
		if col == "" || schema.ColumnIndex(col) < 0 {
			return
		}
		if c, isConst := ep.Value.(*msl.Const); isConst {
			conds = append(conds, Cond{Column: col, Op: OpEq, Value: c.Value})
		}
	}
	for _, e := range sp.Elems {
		if ep, isPat := e.(*msl.ObjectPattern); isPat {
			addFrom(ep)
		}
	}
	for _, rc := range sp.RestConstraints {
		addFrom(rc)
	}
	return conds
}

// convert turns the selected rows of a table into OEM objects. Row and
// column oids are stable across queries (&<table>_r<row> and
// &<table>_r<row>c<col>), and the objects themselves are pointer-stable:
// each row is converted once and the shared object reused, so repeated
// queries expose consistent object identity, as a real wrapper over a
// keyed store would.
func (w *Wrapper) convert(t *Table, ids []int) []*oem.Object {
	w.mu.Lock()
	defer w.mu.Unlock()
	cache := w.rowObjs[t]
	if n := t.Len(); len(cache) < n {
		grown := make([]*oem.Object, n)
		copy(grown, cache)
		cache = grown
		w.rowObjs[t] = cache
	}
	out := make([]*oem.Object, 0, len(ids))
	for _, id := range ids {
		if id < 0 || id >= len(cache) {
			continue
		}
		obj := cache[id]
		if obj == nil {
			obj = convertRow(t, id)
			if obj == nil {
				continue
			}
			cache[id] = obj
		}
		out = append(out, obj)
	}
	return out
}

// convertRow builds the OEM object for one row, with one atomic subobject
// per non-NULL column.
func convertRow(t *Table, id int) *oem.Object {
	row, err := t.Row(id)
	if err != nil {
		return nil
	}
	schema := t.Schema()
	oid := make([]byte, 0, len(schema.Name)+16)
	oid = append(oid, '&')
	oid = append(oid, schema.Name...)
	oid = append(oid, "_r"...)
	oid = strconv.AppendInt(oid, int64(id), 10)
	subs := make(oem.Set, 0, len(schema.Columns))
	for ci, col := range schema.Columns {
		if row[ci] == nil {
			continue // NULL: no subobject
		}
		coid := make([]byte, 0, len(oid)+4)
		coid = append(coid, oid...)
		coid = append(coid, 'c')
		coid = strconv.AppendInt(coid, int64(ci), 10)
		subs = append(subs, &oem.Object{
			OID:   oem.OID(coid),
			Label: col.Name,
			Value: row[ci],
		})
	}
	return &oem.Object{OID: oem.OID(oid), Label: schema.Name, Value: subs}
}
