package relational

import (
	"strings"
	"testing"

	"medmaker/internal/oem"
)

func TestLoadCSV(t *testing.T) {
	data := `first_name,last_name,year,gpa,active
Nick,Naive,3,3.5,true
Ann,Able,1,3.9,false
Bob,,2,,true
`
	db := NewDB()
	tab, err := LoadCSV(db, "student", strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 3 {
		t.Fatalf("loaded %d rows", tab.Len())
	}
	schema := tab.Schema()
	wantKinds := map[string]oem.Kind{
		"first_name": oem.KindString,
		"last_name":  oem.KindString,
		"year":       oem.KindInt,
		"gpa":        oem.KindFloat,
		"active":     oem.KindBool,
	}
	for _, col := range schema.Columns {
		if col.Kind != wantKinds[col.Name] {
			t.Errorf("column %s inferred %s, want %s", col.Name, col.Kind, wantKinds[col.Name])
		}
	}
	// Empty cells became NULLs.
	row, _ := tab.Row(2)
	if row[1] != nil || row[3] != nil {
		t.Fatalf("empty cells not NULL: %v", row)
	}
	// The table is queryable through the wrapper like any other.
	ids, err := tab.Select([]Cond{{Column: "year", Op: OpGe, Value: oem.Int(2)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("Select returned %v", ids)
	}
}

func TestLoadCSVWidening(t *testing.T) {
	// A column starting integral widens to real; mixed text falls back
	// to string.
	data := "a,b\n1,1\n2.5,x\n"
	db := NewDB()
	tab, err := LoadCSV(db, "m", strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	cols := tab.Schema().Columns
	if cols[0].Kind != oem.KindFloat {
		t.Fatalf("column a: %s", cols[0].Kind)
	}
	if cols[1].Kind != oem.KindString {
		t.Fatalf("column b: %s", cols[1].Kind)
	}
	row, _ := tab.Row(0)
	if row[0].Kind() != oem.KindFloat {
		t.Fatal("int cell not widened on load")
	}
	if !row[1].Equal(oem.String("1")) {
		t.Fatal("string fallback lost the original text")
	}
}

func TestLoadCSVErrors(t *testing.T) {
	db := NewDB()
	if _, err := LoadCSV(db, "t", strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	// Ragged rows are a csv.Reader error.
	if _, err := LoadCSV(db, "t2", strings.NewReader("a,b\n1\n")); err == nil {
		t.Error("ragged row accepted")
	}
	// Duplicate table name.
	db.MustCreateTable(Schema{Name: "dup", Columns: []Column{{Name: "x", Kind: oem.KindInt}}})
	if _, err := LoadCSV(db, "dup", strings.NewReader("a\n1\n")); err == nil {
		t.Error("duplicate table accepted")
	}
	// Unnamed columns get positional names.
	tab, err := LoadCSV(db, "anon", strings.NewReader(",b\n1,2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Schema().Columns[0].Name != "col1" {
		t.Fatalf("unnamed column: %q", tab.Schema().Columns[0].Name)
	}
}

func TestLoadCSVEndToEndWrapper(t *testing.T) {
	db := NewDB()
	if _, err := LoadCSV(db, "city", strings.NewReader("name,pop\nPalo Alto,68000\nMenlo Park,33000\n")); err != nil {
		t.Fatal(err)
	}
	w := NewWrapper("geo", db)
	objs := w.Export()
	if len(objs) != 2 || objs[0].Label != "city" {
		t.Fatalf("export:\n%s", oem.Format(objs...))
	}
	if n, _ := objs[0].Sub("pop").AtomInt(); n != 68000 {
		t.Fatal("pop value")
	}
}
