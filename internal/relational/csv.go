package relational

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"medmaker/internal/oem"
)

// LoadCSV reads header-first CSV data into a new table named name,
// registered in db. Column types are inferred from the first data row
// (integer, then real, then boolean, falling back to string); empty cells
// are NULLs, which the wrapper later exports as missing subobjects. The
// inference never narrows: a later row that does not parse under an
// inferred numeric/boolean type fails with a descriptive error rather
// than silently converting to text.
func LoadCSV(db *DB, name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relational: csv %s: reading header: %w", name, err)
	}
	if len(header) == 0 {
		return nil, fmt.Errorf("relational: csv %s: empty header", name)
	}
	var rows [][]string
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relational: csv %s: %w", name, err)
		}
		rows = append(rows, rec)
	}

	kinds := inferKinds(header, rows)
	schema := Schema{Name: name}
	for i, col := range header {
		colName := strings.TrimSpace(col)
		if colName == "" {
			colName = fmt.Sprintf("col%d", i+1)
		}
		schema.Columns = append(schema.Columns, Column{Name: colName, Kind: kinds[i]})
	}
	t, err := db.CreateTable(schema)
	if err != nil {
		return nil, err
	}
	for ri, rec := range rows {
		vals := make([]any, len(header))
		for ci := range header {
			cell := ""
			if ci < len(rec) {
				cell = strings.TrimSpace(rec[ci])
			}
			if cell == "" {
				vals[ci] = nil
				continue
			}
			v, err := parseCell(cell, kinds[ci])
			if err != nil {
				return nil, fmt.Errorf("relational: csv %s row %d column %q: %w", name, ri+2, schema.Columns[ci].Name, err)
			}
			vals[ci] = v
		}
		if err := t.Insert(vals...); err != nil {
			return nil, fmt.Errorf("relational: csv %s row %d: %w", name, ri+2, err)
		}
	}
	return t, nil
}

// inferKinds picks each column's kind from its first non-empty cell,
// widened by the remaining cells (int -> float; anything unparseable ->
// string).
func inferKinds(header []string, rows [][]string) []oem.Kind {
	kinds := make([]oem.Kind, len(header))
	decided := make([]bool, len(header))
	for ci := range header {
		for _, rec := range rows {
			if ci >= len(rec) {
				continue
			}
			cell := strings.TrimSpace(rec[ci])
			if cell == "" {
				continue
			}
			k := cellKind(cell)
			if !decided[ci] {
				kinds[ci] = k
				decided[ci] = true
				continue
			}
			kinds[ci] = widen(kinds[ci], k)
		}
		if !decided[ci] {
			kinds[ci] = oem.KindString
		}
	}
	return kinds
}

func cellKind(cell string) oem.Kind {
	if _, err := strconv.ParseInt(cell, 10, 64); err == nil {
		return oem.KindInt
	}
	if _, err := strconv.ParseFloat(cell, 64); err == nil {
		return oem.KindFloat
	}
	if cell == "true" || cell == "false" {
		return oem.KindBool
	}
	return oem.KindString
}

// widen merges an observed kind into the column's current kind.
func widen(cur, obs oem.Kind) oem.Kind {
	if cur == obs {
		return cur
	}
	if cur == oem.KindInt && obs == oem.KindFloat || cur == oem.KindFloat && obs == oem.KindInt {
		return oem.KindFloat
	}
	return oem.KindString
}

func parseCell(cell string, kind oem.Kind) (any, error) {
	switch kind {
	case oem.KindInt:
		n, err := strconv.ParseInt(cell, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%q is not an integer", cell)
		}
		return n, nil
	case oem.KindFloat:
		f, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			return nil, fmt.Errorf("%q is not a number", cell)
		}
		return f, nil
	case oem.KindBool:
		switch cell {
		case "true":
			return true, nil
		case "false":
			return false, nil
		}
		return nil, fmt.Errorf("%q is not a boolean", cell)
	}
	return cell, nil
}
