package msl

import (
	"strings"
	"testing"

	"medmaker/internal/oem"
)

func TestProgramString(t *testing.T) {
	prog := MustParseProgram(`
	    <a {X}> :- <b {X}>@s.
	    p(bound, free) by f.
	`)
	s := prog.String()
	if !strings.Contains(s, "<a {X}> :- <b {X}>@s.\n") {
		t.Fatalf("rule rendering:\n%s", s)
	}
	if !strings.Contains(s, "p(bound, free) by f.\n") {
		t.Fatalf("declaration rendering:\n%s", s)
	}
}

func TestArgModeString(t *testing.T) {
	if ArgBound.String() != "bound" || ArgFree.String() != "free" {
		t.Fatal("ArgMode strings")
	}
}

func TestTermStrings(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{&Var{Name: "X"}, "X"},
		{&Const{Value: oem.String("a b")}, "'a b'"},
		{&Const{Value: oem.Int(3)}, "3"},
		{&Const{}, "null"},
		{&Param{Name: "R"}, "$R"},
		{&Skolem{Functor: "f", Args: []Term{&Var{Name: "X"}, NewConst(1)}}, "f(X, 1)"},
		{&SetPattern{}, "{}"},
		{&SetPattern{Rest: &Var{Name: "R"}}, "{| R}"},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("%T String = %q, want %q", c.term, got, c.want)
		}
	}
}

func TestPatternStringForms(t *testing.T) {
	// Labels that collide with keywords or type names stay quoted so the
	// output reparses identically.
	weird := &ObjectPattern{Label: &Const{Value: oem.String("integer")}, Value: &Var{Name: "V"}}
	r := &Rule{
		Head: []HeadTerm{&ObjectPattern{Label: &Const{Value: oem.String("out")}, Value: &Var{Name: "V"}}},
		Tail: []Conjunct{&PatternConjunct{Pattern: weird, Source: "s"}},
	}
	printed := r.String()
	back, err := ParseRule(printed)
	if err != nil {
		t.Fatalf("reparse %q: %v", printed, err)
	}
	pc := back.Tail[0].(*PatternConjunct)
	if pc.Pattern.LabelName() != "integer" {
		t.Fatalf("keyword-like label lost: %s", back)
	}
	if pc.Pattern.Type != nil {
		t.Fatalf("label misread as type: %s", back)
	}
}

func TestLabelWithSpacesRoundTrips(t *testing.T) {
	p := &ObjectPattern{Label: &Const{Value: oem.String("two words")}}
	r := &Rule{
		Head: []HeadTerm{&Var{Name: "X"}},
		Tail: []Conjunct{&PatternConjunct{ObjVar: &Var{Name: "X"}, Pattern: p, Source: "s"}},
	}
	back, err := ParseRule(r.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", r.String(), err)
	}
	if back.Tail[0].(*PatternConjunct).Pattern.LabelName() != "two words" {
		t.Fatalf("spaced label lost: %s", back)
	}
}

func TestNewConst(t *testing.T) {
	if NewConst("x").String() != "'x'" || NewConst(3).String() != "3" {
		t.Fatal("NewConst")
	}
}

func TestRuleStringTypeField(t *testing.T) {
	r := MustParseRule(`<out {<year integer Y>}> :- <in {<year integer Y>}>@s.`)
	if !strings.Contains(r.String(), "<year integer Y>") {
		t.Fatalf("type field lost in printing: %s", r)
	}
	back := MustParseRule(r.String())
	if back.String() != r.String() {
		t.Fatalf("type field round trip: %s vs %s", back, r)
	}
}
