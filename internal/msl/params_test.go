package msl

import (
	"reflect"
	"strings"
	"testing"

	"medmaker/internal/oem"
)

func TestParams(t *testing.T) {
	r := MustParseRule(`<bind_for_Rest2 Rest2> :-
	    <$R {<last_name $LN> <first_name $FN> | Rest2}>@cs AND p($Z, X).`)
	want := []string{"FN", "LN", "R", "Z"}
	if got := Params(r); !reflect.DeepEqual(got, want) {
		t.Fatalf("Params = %v, want %v", got, want)
	}
	noParams := MustParseRule(`<a {X}> :- <b {X}>@s.`)
	if got := Params(noParams); len(got) != 0 {
		t.Fatalf("Params on param-free rule: %v", got)
	}
}

// TestSubstituteParamsQcs turns the paper's Qcs template into Qc2.
func TestSubstituteParamsQcs(t *testing.T) {
	template := MustParseRule(`<bind_for_Rest2 Rest2> :-
	    <$R {<last_name $LN> <first_name $FN> | Rest2}>@cs.`)
	qc2, err := SubstituteParams(template, map[string]oem.Value{
		"R":  oem.String("employee"),
		"LN": oem.String("Chung"),
		"FN": oem.String("Joe"),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := MustParseRule(`<bind_for_Rest2 Rest2> :-
	    <employee {<last_name 'Chung'> <first_name 'Joe'> | Rest2}>@cs.`)
	if qc2.String() != want.String() {
		t.Fatalf("Qc2 = %s\nwant  %s", qc2, want)
	}
	// The template is untouched.
	if !strings.Contains(template.String(), "$R") {
		t.Fatal("SubstituteParams mutated the template")
	}
}

func TestSubstituteParamsErrors(t *testing.T) {
	template := MustParseRule(`<out X> :- <$R {<a X>}>@s.`)
	if _, err := SubstituteParams(template, nil); err == nil {
		t.Fatal("missing parameter accepted")
	}
	// A non-string value in label position is rejected.
	if _, err := SubstituteParams(template, map[string]oem.Value{"R": oem.Int(3)}); err == nil {
		t.Fatal("integer label parameter accepted")
	}
	// Unused values are fine.
	if _, err := SubstituteParams(template, map[string]oem.Value{
		"R": oem.String("t"), "Unused": oem.Int(1),
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSubstituteParamsInPredicatesAndHead(t *testing.T) {
	r := MustParseRule(`<out {<v $P>}> :- <t {<a X>}>@s AND lt(X, $P).`)
	got, err := SubstituteParams(r, map[string]oem.Value{"P": oem.Int(7)})
	if err != nil {
		t.Fatal(err)
	}
	s := got.String()
	if strings.Contains(s, "$P") || !strings.Contains(s, "lt(X, 7)") || !strings.Contains(s, "<v 7>") {
		t.Fatalf("substitution incomplete: %s", s)
	}
}

func TestBindVars(t *testing.T) {
	r := MustParseRule(`O :- O:<R {<last_name LN> <first_name FN> | Rest2}>@cs.`)
	got, err := BindVars(r, map[string]oem.Value{
		"R":  oem.String("employee"),
		"LN": oem.String("Chung"),
	})
	if err != nil {
		t.Fatal(err)
	}
	s := got.String()
	if !strings.Contains(s, "<employee {") {
		t.Fatalf("label variable not bound: %s", s)
	}
	if !strings.Contains(s, "<last_name 'Chung'>") {
		t.Fatalf("value variable not bound: %s", s)
	}
	if !strings.Contains(s, "<first_name FN>") {
		t.Fatalf("unbound variable should stay free: %s", s)
	}
	// Rest variables and object variables are never bound to constants.
	if !strings.Contains(s, "| Rest2") {
		t.Fatalf("rest variable disturbed: %s", s)
	}
	if !strings.HasPrefix(s, "O :- O:") {
		t.Fatalf("object variable disturbed: %s", s)
	}
	// The original is untouched.
	if !strings.Contains(r.String(), "<R {") {
		t.Fatal("BindVars mutated the input rule")
	}
}

func TestBindVarsRestNameCollision(t *testing.T) {
	// A value supplied under a rest variable's name must not turn the
	// rest into a constant.
	r := MustParseRule(`<out {| R}> :- <t {<a X> | R}>@s.`)
	got, err := BindVars(r, map[string]oem.Value{"R": oem.String("boom"), "X": oem.Int(1)})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got.String(), "| R") {
		t.Fatalf("rest variable replaced: %s", got)
	}
	if !strings.Contains(got.String(), "<a 1>") {
		t.Fatalf("ordinary variable not replaced: %s", got)
	}
}

func TestBindVarsInRestConstraints(t *testing.T) {
	r := MustParseRule(`<out {| R}> :- <t {| R:{<year Y>}}>@s.`)
	got, err := BindVars(r, map[string]oem.Value{"Y": oem.Int(3)})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got.String(), "R:{<year 3>}") {
		t.Fatalf("constraint variable not bound: %s", got)
	}
}
