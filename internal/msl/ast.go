// Package msl defines the Mediator Specification Language (MSL) of
// MedMaker: its abstract syntax, parser, and printer.
//
// MSL is a datalog-like, OEM-targeted view-definition and query language.
// A specification is a set of rules "head :- tail" plus declarations of
// external functions. Tails are conjunctions of object patterns matched
// against sources and of external-predicate atoms; heads describe the
// virtual objects of the mediator view. The same language doubles as the
// query language: a query is a rule whose head is materialized at the
// client.
//
// Concrete syntax (following the paper's examples):
//
//	<cs_person {<name N> <rel R> Rest1 Rest2}> :-
//	    <person {<name N> <dept 'CS'> <relation R> | Rest1}>@whois
//	    AND <R {<first_name FN> <last_name LN> | Rest2}>@cs
//	    AND decomp(N, LN, FN).
//
//	decomp(bound, free, free) by name_to_lnfn.
//	decomp(free, bound, bound) by lnfn_to_name.
//
// Object patterns take 1–4 fields: <label>, <label value>,
// <oid label value>, or <oid label type value>. Identifiers starting with
// an upper-case letter are variables; lower-case identifiers are label
// constants; 'quoted' text, numbers, and true/false are atomic constants.
// Conjuncts are separated by AND or a comma; rules end with a period.
// "V : <pattern>" binds the object variable V to each matched object; a
// trailing "@name" names the source a tail pattern is matched against.
// Inside a set pattern "| Rest" captures the remaining subobjects, and
// "| Rest:{<year 3>}" additionally constrains the captured rest set
// (Section 3.3 of the paper). A label may be prefixed with "%" to request
// wildcard matching at any depth (the paper's wildcard feature), and
// "$name" terms are placeholders that parameterized queries fill at
// execution time. In rule heads, an oid field of the form f(X, …) builds
// a semantic object-id, MedMaker's object-fusion mechanism.
package msl

import (
	"fmt"
	"sort"
	"strings"

	"medmaker/internal/oem"
)

// Term is a value position in a pattern or predicate: a variable, an
// atomic constant, a parameter placeholder, a set pattern, an object
// pattern, or a skolem (semantic-oid) term.
type Term interface {
	fmt.Stringer
	isTerm()
}

// Var is an MSL variable. Variables bind to atomic values, whole objects,
// labels, oids, or sets of objects depending on the position they appear
// in — the free mixing of schema and data that resolves schematic
// discrepancies.
type Var struct {
	Name string
}

func (*Var) isTerm() {}

// String implements fmt.Stringer.
func (v *Var) String() string { return v.Name }

// Const is an atomic constant.
type Const struct {
	Value oem.Value
}

func (*Const) isTerm() {}

// String implements fmt.Stringer.
func (c *Const) String() string {
	if c.Value == nil {
		return "null"
	}
	return c.Value.String()
}

// NewConst wraps a Go value (via oem.Atom) as a constant term.
func NewConst(v any) *Const { return &Const{Value: oem.Atom(v)} }

// Param is a $name placeholder in a parameterized query; the datamerge
// engine substitutes a constant per input tuple before sending the query
// to a source.
type Param struct {
	Name string
}

func (*Param) isTerm() {}

// String implements fmt.Stringer.
func (p *Param) String() string { return "$" + p.Name }

// Skolem is a semantic object-id term f(args) usable in the oid field of
// head patterns. Objects constructed with equal skolem values share their
// identity across rules and queries, which is MedMaker's object-fusion
// mechanism.
type Skolem struct {
	Functor string
	Args    []Term
}

func (*Skolem) isTerm() {}

// String implements fmt.Stringer.
func (s *Skolem) String() string {
	parts := make([]string, len(s.Args))
	for i, a := range s.Args {
		parts[i] = a.String()
	}
	return s.Functor + "(" + strings.Join(parts, ", ") + ")"
}

// SetPattern is the {elem … | Rest} form: each element must match a
// distinct subobject (subset semantics — unmentioned subobjects are
// allowed even without a rest variable), and Rest, when present, captures
// the subobjects not consumed by the elements. RestConstraints further
// constrain the captured rest set: each constraint pattern must match some
// member of it ("Rest:{<year 3>}").
type SetPattern struct {
	// Elems are the element patterns: *ObjectPattern for structural
	// elements, or *Var for variables previously bound to objects or sets
	// (in heads, set-bound variables are flattened one level into the
	// constructed set).
	Elems []Term
	// Rest is the rest variable, or nil.
	Rest *Var
	// RestConstraints are patterns pushed into the rest variable by the
	// VE&AO or written by the user; each must match a member of the rest
	// set.
	RestConstraints []*ObjectPattern
}

func (*SetPattern) isTerm() {}

// String implements fmt.Stringer.
func (s *SetPattern) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, e := range s.Elems {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(e.String())
	}
	if s.Rest != nil {
		if len(s.Elems) > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString("| ")
		sb.WriteString(s.Rest.Name)
		if len(s.RestConstraints) > 0 {
			sb.WriteString(":{")
			for i, c := range s.RestConstraints {
				if i > 0 {
					sb.WriteByte(' ')
				}
				sb.WriteString(c.String())
			}
			sb.WriteByte('}')
		}
	}
	sb.WriteByte('}')
	return sb.String()
}

// ObjectPattern is the <oid label type value> form with optional fields.
type ObjectPattern struct {
	// OID is the object-id field: nil (don't care), *Var, *Const, or, in
	// rule heads, *Skolem for semantic object-ids.
	OID Term
	// Label is the label field: *Var, *Const carrying an oem.String, or
	// *Param in a parameterized query template. It is never nil; "any
	// label" is expressed with a variable.
	Label Term
	// Wildcard requests descent: the pattern may match an object at any
	// depth below the position where it appears, not only a direct
	// subobject (written %label).
	Wildcard bool
	// Type optionally constrains the matched object's kind (the third
	// field of the 4-field form); nil means unconstrained.
	Type *oem.Kind
	// Value is the value field: nil (don't care), *Var, *Const, *Param,
	// or *SetPattern.
	Value Term
}

func (*ObjectPattern) isTerm() {}

// String implements fmt.Stringer.
func (p *ObjectPattern) String() string {
	var sb strings.Builder
	sb.WriteByte('<')
	if p.OID != nil {
		sb.WriteString(p.OID.String())
		sb.WriteByte(' ')
	}
	if p.Wildcard {
		sb.WriteByte('%')
	}
	sb.WriteString(labelString(p.Label))
	if p.Type != nil {
		sb.WriteByte(' ')
		sb.WriteString(p.Type.String())
	}
	if p.Value != nil {
		sb.WriteByte(' ')
		sb.WriteString(p.Value.String())
	}
	sb.WriteByte('>')
	return sb.String()
}

// labelString renders a label term, leaving identifier-like constant
// labels unquoted as the concrete syntax writes them.
func labelString(t Term) string {
	c, ok := t.(*Const)
	if !ok {
		return t.String()
	}
	s, ok := c.Value.(oem.String)
	if !ok || !isIdentLabel(string(s)) {
		return t.String()
	}
	return string(s)
}

// isIdentLabel reports whether s lexes as a bare lower-case label.
func isIdentLabel(s string) bool {
	if s == "" {
		return false
	}
	first := rune(s[0])
	if first >= 'A' && first <= 'Z' || first == '_' || first == '$' || first == '&' {
		return false
	}
	for _, r := range s {
		ok := r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9'
		if !ok {
			return false
		}
	}
	switch s {
	case "true", "false", "and":
		return false
	}
	// Type names would be re-read as the type field in 3-field patterns.
	if _, isType := oem.KindFromName(s); isType {
		return false
	}
	return true
}

// LabelName returns the constant label, or "" when the label is a
// variable.
func (p *ObjectPattern) LabelName() string {
	if c, ok := p.Label.(*Const); ok {
		if s, ok := c.Value.(oem.String); ok {
			return string(s)
		}
	}
	return ""
}

// Conjunct is one condition in a rule tail: a pattern matched against a
// source or an external-predicate atom.
type Conjunct interface {
	fmt.Stringer
	isConjunct()
}

// PatternConjunct matches an object pattern against the top-level objects
// of a source (or, for wildcard patterns, at any depth).
type PatternConjunct struct {
	// ObjVar optionally binds the whole matched object ("JC : <…>").
	ObjVar *Var
	// Pattern is the structural condition.
	Pattern *ObjectPattern
	// Source names the wrapper or mediator the pattern is matched
	// against ("@cs"). Empty means the default source of the enclosing
	// program (e.g. the mediator a query is addressed to).
	Source string
	// Negated inverts the conjunct ("NOT <…>@src"): a binding survives
	// exactly when no source object matches the pattern under it.
	// Negated conjuncts bind nothing (safe, stratified negation): they
	// run after the positive conjuncts, and an object variable cannot be
	// attached.
	Negated bool
}

func (*PatternConjunct) isConjunct() {}

// String implements fmt.Stringer.
func (c *PatternConjunct) String() string {
	var sb strings.Builder
	if c.Negated {
		sb.WriteString("NOT ")
	}
	if c.ObjVar != nil {
		sb.WriteString(c.ObjVar.Name)
		sb.WriteByte(':')
	}
	sb.WriteString(c.Pattern.String())
	if c.Source != "" {
		sb.WriteByte('@')
		sb.WriteString(c.Source)
	}
	return sb.String()
}

// PredicateConjunct is an external-predicate atom such as
// decomp(N, LN, FN). Built-in comparison predicates (lt, le, gt, ge, eq,
// ne) use the same form.
type PredicateConjunct struct {
	Name string
	Args []Term
}

func (*PredicateConjunct) isConjunct() {}

// String implements fmt.Stringer.
func (c *PredicateConjunct) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return c.Name + "(" + strings.Join(parts, ", ") + ")"
}

// HeadTerm is one element of a rule head: an object pattern describing a
// constructed view object, or a bare variable (as in query "JC :- JC:<…>")
// whose bound objects are returned directly.
type HeadTerm interface {
	fmt.Stringer
	isHeadTerm()
}

func (*ObjectPattern) isHeadTerm() {}
func (*Var) isHeadTerm()           {}

// Rule is one MSL rule: Head :- Tail. In a mediator specification the
// head objects are virtual; when the rule is a query they are materialized
// at the client.
type Rule struct {
	Head []HeadTerm
	Tail []Conjunct
}

// String implements fmt.Stringer, printing the rule on one line with a
// terminating period.
func (r *Rule) String() string {
	var sb strings.Builder
	for i, h := range r.Head {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(h.String())
	}
	sb.WriteString(" :- ")
	for i, c := range r.Tail {
		if i > 0 {
			sb.WriteString(" AND ")
		}
		sb.WriteString(c.String())
	}
	sb.WriteByte('.')
	return sb.String()
}

// ArgMode says whether an argument position of an external function
// implementation expects a bound input or produces a free output.
type ArgMode int

const (
	// ArgBound marks an input position that must be bound before the call.
	ArgBound ArgMode = iota
	// ArgFree marks an output position the function fills in.
	ArgFree
)

// String implements fmt.Stringer.
func (m ArgMode) String() string {
	if m == ArgBound {
		return "bound"
	}
	return "free"
}

// ExternalDecl declares one implementation of an external predicate:
// "decomp(bound, free, free) by name_to_lnfn." Several declarations for
// the same predicate with different adornments give the optimizer
// flexibility in choosing call directions.
type ExternalDecl struct {
	// Pred is the predicate name used in rule tails.
	Pred string
	// Adornment gives the binding pattern this implementation accepts.
	Adornment []ArgMode
	// Func names the registered Go function implementing this direction.
	Func string
}

// String implements fmt.Stringer.
func (d *ExternalDecl) String() string {
	parts := make([]string, len(d.Adornment))
	for i, m := range d.Adornment {
		parts[i] = m.String()
	}
	return fmt.Sprintf("%s(%s) by %s.", d.Pred, strings.Join(parts, ", "), d.Func)
}

// Program is a parsed MSL text: rules plus external declarations. A
// mediator specification and a client query are both Programs; a query
// typically has a single rule.
type Program struct {
	Rules []*Rule
	Decls []*ExternalDecl
}

// String implements fmt.Stringer, one rule or declaration per line.
func (p *Program) String() string {
	var sb strings.Builder
	for _, r := range p.Rules {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	for _, d := range p.Decls {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Vars returns the names of all variables in the rule, sorted.
func (r *Rule) Vars() []string {
	seen := map[string]bool{}
	for _, h := range r.Head {
		collectHeadVars(h, seen)
	}
	for _, c := range r.Tail {
		collectConjunctVars(c, seen)
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// HeadVars returns the names of variables appearing in the rule head,
// sorted. These are the variables whose bindings survive projection before
// object construction.
func (r *Rule) HeadVars() []string {
	seen := map[string]bool{}
	for _, h := range r.Head {
		collectHeadVars(h, seen)
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func collectHeadVars(h HeadTerm, seen map[string]bool) {
	switch t := h.(type) {
	case *Var:
		seen[t.Name] = true
	case *ObjectPattern:
		collectTermVars(t, seen)
	}
}

func collectConjunctVars(c Conjunct, seen map[string]bool) {
	switch t := c.(type) {
	case *PatternConjunct:
		if t.ObjVar != nil {
			seen[t.ObjVar.Name] = true
		}
		collectTermVars(t.Pattern, seen)
	case *PredicateConjunct:
		for _, a := range t.Args {
			collectTermVars(a, seen)
		}
	}
}

func collectTermVars(t Term, seen map[string]bool) {
	switch x := t.(type) {
	case nil:
	case *Var:
		seen[x.Name] = true
	case *Const, *Param:
	case *Skolem:
		for _, a := range x.Args {
			collectTermVars(a, seen)
		}
	case *SetPattern:
		for _, e := range x.Elems {
			collectTermVars(e, seen)
		}
		if x.Rest != nil {
			seen[x.Rest.Name] = true
		}
		for _, c := range x.RestConstraints {
			collectTermVars(c, seen)
		}
	case *ObjectPattern:
		if x.OID != nil {
			collectTermVars(x.OID, seen)
		}
		collectTermVars(x.Label, seen)
		if x.Value != nil {
			collectTermVars(x.Value, seen)
		}
	}
}

// RenameVars returns a deep copy of the rule with every variable renamed
// through f. Before matching a query against specification rules, the
// VE&AO renames apart so that no two rules (or a query and a rule) share
// variable names.
func (r *Rule) RenameVars(f func(string) string) *Rule {
	out := &Rule{}
	for _, h := range r.Head {
		switch t := h.(type) {
		case *Var:
			out.Head = append(out.Head, &Var{Name: f(t.Name)})
		case *ObjectPattern:
			out.Head = append(out.Head, renameTerm(t, f).(*ObjectPattern))
		}
	}
	for _, c := range r.Tail {
		out.Tail = append(out.Tail, renameConjunct(c, f))
	}
	return out
}

func renameConjunct(c Conjunct, f func(string) string) Conjunct {
	switch t := c.(type) {
	case *PatternConjunct:
		out := &PatternConjunct{Source: t.Source, Negated: t.Negated}
		if t.ObjVar != nil {
			out.ObjVar = &Var{Name: f(t.ObjVar.Name)}
		}
		out.Pattern = renameTerm(t.Pattern, f).(*ObjectPattern)
		return out
	case *PredicateConjunct:
		out := &PredicateConjunct{Name: t.Name, Args: make([]Term, len(t.Args))}
		for i, a := range t.Args {
			out.Args[i] = renameTerm(a, f)
		}
		return out
	}
	return c
}

func renameTerm(t Term, f func(string) string) Term {
	switch x := t.(type) {
	case nil:
		return nil
	case *Var:
		return &Var{Name: f(x.Name)}
	case *Const:
		return x
	case *Param:
		return x
	case *Skolem:
		out := &Skolem{Functor: x.Functor, Args: make([]Term, len(x.Args))}
		for i, a := range x.Args {
			out.Args[i] = renameTerm(a, f)
		}
		return out
	case *SetPattern:
		out := &SetPattern{}
		for _, e := range x.Elems {
			out.Elems = append(out.Elems, renameTerm(e, f))
		}
		if x.Rest != nil {
			out.Rest = &Var{Name: f(x.Rest.Name)}
		}
		for _, c := range x.RestConstraints {
			out.RestConstraints = append(out.RestConstraints, renameTerm(c, f).(*ObjectPattern))
		}
		return out
	case *ObjectPattern:
		out := &ObjectPattern{Wildcard: x.Wildcard, Type: x.Type}
		if x.OID != nil {
			out.OID = renameTerm(x.OID, f)
		}
		out.Label = renameTerm(x.Label, f)
		if x.Value != nil {
			out.Value = renameTerm(x.Value, f)
		}
		return out
	}
	return t
}

// Clone returns a deep copy of the rule.
func (r *Rule) Clone() *Rule {
	return r.RenameVars(func(s string) string { return s })
}

// Sources returns the distinct source names referenced by the rule's
// pattern conjuncts, sorted; the empty name is included if any conjunct
// lacks an explicit source.
func (r *Rule) Sources() []string {
	seen := map[string]bool{}
	for _, c := range r.Tail {
		if pc, ok := c.(*PatternConjunct); ok {
			seen[pc.Source] = true
		}
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
