package msl

import (
	"fmt"
	"sort"

	"medmaker/internal/oem"
)

// SubstituteParams returns a copy of the rule with every $parameter
// replaced by the corresponding constant — the step that turns a
// parameterized query template (the paper's Qcs) into a concrete query
// (Qc1, Qc2) for one tuple of the datamerge engine's input table. Missing
// parameters are an error; unused values are ignored.
func SubstituteParams(r *Rule, vals map[string]oem.Value) (*Rule, error) {
	s := &paramSubst{vals: vals}
	out := &Rule{}
	for _, h := range r.Head {
		switch t := h.(type) {
		case *Var:
			out.Head = append(out.Head, t)
		case *ObjectPattern:
			p, err := s.term(t)
			if err != nil {
				return nil, err
			}
			out.Head = append(out.Head, p.(*ObjectPattern))
		}
	}
	for _, c := range r.Tail {
		nc, err := s.conjunct(c)
		if err != nil {
			return nil, err
		}
		out.Tail = append(out.Tail, nc)
	}
	return out, nil
}

// BindVars returns a copy of the rule with every variable named in vals
// replaced by the corresponding constant. The datamerge engine uses this
// to instantiate a parameterized query from one input tuple: variables the
// current row binds to atomic values become constants, and the rest stay
// free. Variables in label positions must be bound to strings.
func BindVars(r *Rule, vals map[string]oem.Value) (*Rule, error) {
	// Reuse the parameter machinery: rewrite the chosen variables to
	// parameters, then substitute.
	marked := r.RenameVars(func(s string) string { return s })
	rewriteVarsToParams(marked, vals)
	return SubstituteParams(marked, vals)
}

func rewriteVarsToParams(r *Rule, vals map[string]oem.Value) {
	var walkTerm func(t Term) Term
	walkTerm = func(t Term) Term {
		switch x := t.(type) {
		case *Var:
			if _, ok := vals[x.Name]; ok {
				return &Param{Name: x.Name}
			}
			return x
		case *Skolem:
			for i, a := range x.Args {
				x.Args[i] = walkTerm(a)
			}
		case *SetPattern:
			for i, e := range x.Elems {
				x.Elems[i] = walkTerm(e)
			}
			// Rest variables bind sets, never parameter constants.
			for i, c := range x.RestConstraints {
				x.RestConstraints[i] = walkTerm(c).(*ObjectPattern)
			}
		case *ObjectPattern:
			if x.OID != nil {
				x.OID = walkTerm(x.OID)
			}
			x.Label = walkTerm(x.Label)
			if x.Value != nil {
				x.Value = walkTerm(x.Value)
			}
		}
		return t
	}
	for i, h := range r.Head {
		if p, ok := h.(*ObjectPattern); ok {
			r.Head[i] = walkTerm(p).(*ObjectPattern)
		}
	}
	for _, c := range r.Tail {
		switch t := c.(type) {
		case *PatternConjunct:
			t.Pattern = walkTerm(t.Pattern).(*ObjectPattern)
		case *PredicateConjunct:
			for i, a := range t.Args {
				t.Args[i] = walkTerm(a)
			}
		}
	}
}

// Params returns the names of all $parameters in the rule, sorted.
func Params(r *Rule) []string {
	seen := map[string]bool{}
	var walk func(t Term)
	walk = func(t Term) {
		switch x := t.(type) {
		case *Param:
			seen[x.Name] = true
		case *Skolem:
			for _, a := range x.Args {
				walk(a)
			}
		case *SetPattern:
			for _, e := range x.Elems {
				walk(e)
			}
			for _, c := range x.RestConstraints {
				walk(c)
			}
		case *ObjectPattern:
			if x.OID != nil {
				walk(x.OID)
			}
			walk(x.Label)
			if x.Value != nil {
				walk(x.Value)
			}
		}
	}
	for _, h := range r.Head {
		if p, ok := h.(*ObjectPattern); ok {
			walk(p)
		}
	}
	for _, c := range r.Tail {
		switch t := c.(type) {
		case *PatternConjunct:
			walk(t.Pattern)
		case *PredicateConjunct:
			for _, a := range t.Args {
				walk(a)
			}
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

type paramSubst struct {
	vals map[string]oem.Value
}

func (s *paramSubst) lookup(name string) (Term, error) {
	v, ok := s.vals[name]
	if !ok {
		return nil, fmt.Errorf("msl: no value supplied for parameter $%s", name)
	}
	return &Const{Value: v}, nil
}

func (s *paramSubst) conjunct(c Conjunct) (Conjunct, error) {
	switch t := c.(type) {
	case *PatternConjunct:
		p, err := s.term(t.Pattern)
		if err != nil {
			return nil, err
		}
		return &PatternConjunct{ObjVar: t.ObjVar, Pattern: p.(*ObjectPattern), Source: t.Source}, nil
	case *PredicateConjunct:
		out := &PredicateConjunct{Name: t.Name, Args: make([]Term, len(t.Args))}
		for i, a := range t.Args {
			na, err := s.term(a)
			if err != nil {
				return nil, err
			}
			out.Args[i] = na
		}
		return out, nil
	}
	return c, nil
}

func (s *paramSubst) term(t Term) (Term, error) {
	switch x := t.(type) {
	case nil:
		return nil, nil
	case *Param:
		return s.lookup(x.Name)
	case *Var, *Const:
		return x, nil
	case *Skolem:
		out := &Skolem{Functor: x.Functor, Args: make([]Term, len(x.Args))}
		for i, a := range x.Args {
			na, err := s.term(a)
			if err != nil {
				return nil, err
			}
			out.Args[i] = na
		}
		return out, nil
	case *SetPattern:
		out := &SetPattern{Rest: x.Rest}
		for _, e := range x.Elems {
			ne, err := s.term(e)
			if err != nil {
				return nil, err
			}
			out.Elems = append(out.Elems, ne)
		}
		for _, c := range x.RestConstraints {
			nc, err := s.term(c)
			if err != nil {
				return nil, err
			}
			out.RestConstraints = append(out.RestConstraints, nc.(*ObjectPattern))
		}
		return out, nil
	case *ObjectPattern:
		out := &ObjectPattern{Wildcard: x.Wildcard, Type: x.Type}
		var err error
		if x.OID != nil {
			if out.OID, err = s.term(x.OID); err != nil {
				return nil, err
			}
		}
		if out.Label, err = s.term(x.Label); err != nil {
			return nil, err
		}
		if lc, ok := out.Label.(*Const); ok {
			if _, isStr := lc.Value.(oem.String); !isStr {
				return nil, fmt.Errorf("msl: parameter in label position must be a string, got %s", lc.Value)
			}
		}
		if x.Value != nil {
			if out.Value, err = s.term(x.Value); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("msl: unsupported term %T in parameter substitution", t)
}
