package msl

import (
	"testing"

	"medmaker/internal/oem"
)

func lexAll(src string) []token {
	l := newLexer(src)
	var out []token
	for {
		t := l.next()
		out = append(out, t)
		if t.kind == tEOF {
			return out
		}
	}
}

func TestLexerNumbers(t *testing.T) {
	cases := []struct {
		src  string
		want []tokenKind
	}{
		{"3", []tokenKind{tNumber, tEOF}},
		{"-3", []tokenKind{tNumber, tEOF}},
		{"3.5", []tokenKind{tNumber, tEOF}},
		{"3.", []tokenKind{tNumber, tPeriod, tEOF}}, // "3" then terminator
		{".5", []tokenKind{tNumber, tEOF}},          // fraction
		{"1e3", []tokenKind{tNumber, tEOF}},
		{"1e-3", []tokenKind{tNumber, tEOF}},
		{"1E+3", []tokenKind{tNumber, tEOF}},
		{"1e", []tokenKind{tNumber, tIdent, tEOF}},    // no exponent digits
		{"2.5.", []tokenKind{tNumber, tPeriod, tEOF}}, // number then rule end
	}
	for _, c := range cases {
		toks := lexAll(c.src)
		if len(toks) != len(c.want) {
			t.Errorf("lex(%q): %d tokens, want %d: %v", c.src, len(toks), len(c.want), toks)
			continue
		}
		for i := range toks {
			if toks[i].kind != c.want[i] {
				t.Errorf("lex(%q)[%d] = %v, want kind %d", c.src, i, toks[i], c.want[i])
			}
		}
	}
}

func TestLexerStringsAndEscapes(t *testing.T) {
	toks := lexAll(`'a\'b\\c\nd'`)
	if toks[0].kind != tString || toks[0].text != "a'b\\c\nd" {
		t.Fatalf("escape handling: %q", toks[0].text)
	}
	// Multi-line strings track line numbers.
	toks2 := lexAll("'a\nb' X")
	if toks2[1].kind != tVar || toks2[1].line != 2 {
		t.Fatalf("line tracking across strings: %+v", toks2[1])
	}
	// Unterminated string is rejected at parse level.
	if _, err := ParseRule(`<a 'oops> :- <b>@s.`); err == nil {
		t.Fatal("unterminated string accepted")
	}
}

func TestLexerUnicodeIdentifiers(t *testing.T) {
	// Unicode letters work in identifiers; case decides var vs label.
	r, err := ParseRule(`<büro B> :- <Über {<büro B>}>@s.`)
	if err != nil {
		t.Fatal(err)
	}
	pc := r.Tail[0].(*PatternConjunct)
	if _, isVar := pc.Pattern.Label.(*Var); !isVar {
		t.Fatalf("Über should be a variable: %v", pc.Pattern.Label)
	}
	if r.Head[0].(*ObjectPattern).LabelName() != "büro" {
		t.Fatalf("unicode label lost")
	}
}

func TestLexerStrayCharacters(t *testing.T) {
	// Unknown punctuation becomes a one-byte ident the parser rejects
	// with a position.
	if _, err := ParseProgram(`<a {X}> :- <b {X}>@s ^.`); err == nil {
		t.Fatal("stray character accepted")
	}
}

func TestFractionValueParses(t *testing.T) {
	r := MustParseRule(`<out {<ratio .5>}> :- <in {<ratio .5>}>@s.`)
	op := r.Head[0].(*ObjectPattern).Value.(*SetPattern).Elems[0].(*ObjectPattern)
	c, ok := op.Value.(*Const)
	if !ok || !c.Value.Equal(oem.Float(0.5)) {
		t.Fatalf("fraction constant: %v", op.Value)
	}
}
