package msl

import (
	"fmt"
	"strconv"
	"strings"

	"medmaker/internal/oem"
)

// ParseProgram parses an MSL text — rules and external declarations — into
// a Program. Rules and declarations end with a period (a final period
// before end-of-input may be omitted).
func ParseProgram(src string) (*Program, error) {
	p := &parser{lex: newLexer(src)}
	prog := &Program{}
	for {
		tok := p.lex.peek()
		switch tok.kind {
		case tEOF:
			return prog, nil
		case tPeriod:
			p.lex.next()
		case tIdent:
			decl, err := p.parseDecl()
			if err != nil {
				return nil, err
			}
			prog.Decls = append(prog.Decls, decl)
		case tLAngle, tVar:
			rule, err := p.parseRule()
			if err != nil {
				return nil, err
			}
			prog.Rules = append(prog.Rules, rule)
		default:
			return nil, fmt.Errorf("msl: line %d: unexpected %s at top level", tok.line, tok)
		}
	}
}

// MustParseProgram is ParseProgram that panics on error, for literals in
// tests and examples.
func MustParseProgram(src string) *Program {
	prog, err := ParseProgram(src)
	if err != nil {
		panic(err)
	}
	return prog
}

// ParseRule parses a single rule.
func ParseRule(src string) (*Rule, error) {
	prog, err := ParseProgram(src)
	if err != nil {
		return nil, err
	}
	if len(prog.Decls) != 0 || len(prog.Rules) != 1 {
		return nil, fmt.Errorf("msl: expected exactly one rule, found %d rules and %d declarations",
			len(prog.Rules), len(prog.Decls))
	}
	return prog.Rules[0], nil
}

// MustParseRule is ParseRule that panics on error.
func MustParseRule(src string) *Rule {
	r, err := ParseRule(src)
	if err != nil {
		panic(err)
	}
	return r
}

// ParseQuery parses a query: a single rule whose head will be materialized.
// It is an alias of ParseRule kept for call-site clarity.
func ParseQuery(src string) (*Rule, error) { return ParseRule(src) }

type parser struct {
	lex  *lexer
	anon int // counter for '_' anonymous variables
}

func (p *parser) errf(line int, format string, args ...any) error {
	return fmt.Errorf("msl: line %d: "+format, append([]any{line}, args...)...)
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	tok := p.lex.next()
	if tok.kind != kind {
		return tok, p.errf(tok.line, "expected %s, found %s", what, tok)
	}
	return tok, nil
}

// parseDecl parses "pred(bound, free, …) by funcname."
func (p *parser) parseDecl() (*ExternalDecl, error) {
	name := p.lex.next() // tIdent, checked by caller
	if _, err := p.expect(tLParen, "'('"); err != nil {
		return nil, err
	}
	decl := &ExternalDecl{Pred: name.text}
	for {
		tok := p.lex.next()
		switch {
		case tok.kind == tRParen:
			goto args_done
		case tok.kind == tComma:
		case tok.kind == tIdent && tok.text == "bound":
			decl.Adornment = append(decl.Adornment, ArgBound)
		case tok.kind == tIdent && tok.text == "free":
			decl.Adornment = append(decl.Adornment, ArgFree)
		case tok.kind == tIdent && tok.text == "b":
			decl.Adornment = append(decl.Adornment, ArgBound)
		case tok.kind == tIdent && tok.text == "f":
			decl.Adornment = append(decl.Adornment, ArgFree)
		default:
			return nil, p.errf(tok.line, "expected 'bound' or 'free' in adornment, found %s", tok)
		}
	}
args_done:
	by := p.lex.next()
	if by.kind != tIdent || by.text != "by" {
		return nil, p.errf(by.line, "expected 'by' after adornment, found %s", by)
	}
	fn := p.lex.next()
	if fn.kind != tIdent && fn.kind != tVar {
		return nil, p.errf(fn.line, "expected function name after 'by', found %s", fn)
	}
	decl.Func = fn.text
	if err := p.endOfClause(); err != nil {
		return nil, err
	}
	return decl, nil
}

func (p *parser) endOfClause() error {
	tok := p.lex.peek()
	switch tok.kind {
	case tPeriod:
		p.lex.next()
		return nil
	case tEOF:
		return nil
	}
	return p.errf(tok.line, "expected '.' at end of clause, found %s", tok)
}

// parseRule parses "head … :- conjunct AND conjunct …."
func (p *parser) parseRule() (*Rule, error) {
	rule := &Rule{}
	for {
		tok := p.lex.peek()
		switch tok.kind {
		case tImplies:
			p.lex.next()
			goto tail
		case tLAngle:
			pat, err := p.parsePattern(true)
			if err != nil {
				return nil, err
			}
			rule.Head = append(rule.Head, pat)
		case tVar:
			p.lex.next()
			rule.Head = append(rule.Head, &Var{Name: p.varName(tok.text)})
		case tComma:
			p.lex.next()
		default:
			return nil, p.errf(tok.line, "expected head pattern, variable, or ':-', found %s", tok)
		}
	}
tail:
	if len(rule.Head) == 0 {
		return nil, p.errf(p.lex.peek().line, "rule has an empty head")
	}
	for {
		conj, err := p.parseConjunct()
		if err != nil {
			return nil, err
		}
		rule.Tail = append(rule.Tail, conj)
		tok := p.lex.peek()
		switch {
		case (tok.kind == tIdent || tok.kind == tVar) && strings.EqualFold(tok.text, "and"):
			p.lex.next()
		case tok.kind == tComma:
			p.lex.next()
		case tok.kind == tPeriod:
			p.lex.next()
			return rule, nil
		case tok.kind == tEOF:
			return rule, nil
		default:
			return nil, p.errf(tok.line, "expected 'AND', ',', or '.' after conjunct, found %s", tok)
		}
	}
}

// parseConjunct parses one tail conjunct: "[NOT] [V:]<pattern>[@source]"
// or "pred(args)".
func (p *parser) parseConjunct() (Conjunct, error) {
	tok := p.lex.peek()
	if (tok.kind == tIdent || tok.kind == tVar) && strings.EqualFold(tok.text, "not") {
		p.lex.next()
		inner, err := p.parseConjunct()
		if err != nil {
			return nil, err
		}
		pc, ok := inner.(*PatternConjunct)
		if !ok {
			return nil, p.errf(tok.line, "NOT applies to pattern conjuncts, not predicates")
		}
		if pc.ObjVar != nil {
			return nil, p.errf(tok.line, "a negated conjunct cannot bind an object variable (%s:)", pc.ObjVar.Name)
		}
		if pc.Negated {
			return nil, p.errf(tok.line, "double negation is not supported")
		}
		pc.Negated = true
		return pc, nil
	}
	switch tok.kind {
	case tVar:
		// Either "V:<pattern>" or a stray variable (an error in tails).
		if p.lex.peekN(1).kind == tColon {
			p.lex.next() // var
			p.lex.next() // colon
			pat, err := p.parsePattern(false)
			if err != nil {
				return nil, err
			}
			pc := &PatternConjunct{ObjVar: &Var{Name: p.varName(tok.text)}, Pattern: pat}
			return p.finishPatternConjunct(pc)
		}
		return nil, p.errf(tok.line, "bare variable %s cannot be a conjunct (did you mean %s:<…>?)", tok.text, tok.text)
	case tLAngle:
		pat, err := p.parsePattern(false)
		if err != nil {
			return nil, err
		}
		return p.finishPatternConjunct(&PatternConjunct{Pattern: pat})
	case tIdent:
		return p.parsePredicate()
	}
	return nil, p.errf(tok.line, "expected a pattern or predicate conjunct, found %s", tok)
}

func (p *parser) finishPatternConjunct(pc *PatternConjunct) (Conjunct, error) {
	if p.lex.peek().kind == tAt {
		p.lex.next()
		src := p.lex.next()
		if src.kind != tIdent && src.kind != tVar {
			return nil, p.errf(src.line, "expected source name after '@', found %s", src)
		}
		pc.Source = src.text
	}
	return pc, nil
}

func (p *parser) parsePredicate() (Conjunct, error) {
	name := p.lex.next()
	if _, err := p.expect(tLParen, "'(' after predicate name"); err != nil {
		return nil, err
	}
	pred := &PredicateConjunct{Name: name.text}
	for {
		tok := p.lex.peek()
		switch tok.kind {
		case tRParen:
			p.lex.next()
			return pred, nil
		case tComma:
			p.lex.next()
		case tEOF:
			return nil, p.errf(tok.line, "unterminated predicate %s(", name.text)
		default:
			arg, err := p.parseSimpleTerm()
			if err != nil {
				return nil, err
			}
			pred.Args = append(pred.Args, arg)
		}
	}
}

// parseSimpleTerm parses a variable, constant, or parameter — the terms
// allowed as predicate arguments and skolem arguments.
func (p *parser) parseSimpleTerm() (Term, error) {
	tok := p.lex.next()
	switch tok.kind {
	case tVar:
		return &Var{Name: p.varName(tok.text)}, nil
	case tString:
		return &Const{Value: oem.String(tok.text)}, nil
	case tNumber:
		return numberConst(tok)
	case tBool:
		return &Const{Value: oem.Bool(tok.text == "true")}, nil
	case tParam:
		return &Param{Name: tok.text}, nil
	case tOID:
		return &Const{Value: oem.String(tok.text)}, nil
	}
	return nil, p.errf(tok.line, "expected a term, found %s", tok)
}

func numberConst(tok token) (Term, error) {
	if strings.ContainsAny(tok.text, ".eE") {
		f, err := strconv.ParseFloat(tok.text, 64)
		if err != nil {
			return nil, fmt.Errorf("msl: line %d: bad number %q", tok.line, tok.text)
		}
		return &Const{Value: oem.Float(f)}, nil
	}
	n, err := strconv.ParseInt(tok.text, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("msl: line %d: bad number %q", tok.line, tok.text)
	}
	return &Const{Value: oem.Int(n)}, nil
}

// varName maps '_' to a fresh anonymous variable name so each '_' is
// distinct.
func (p *parser) varName(text string) string {
	if text == "_" {
		p.anon++
		return fmt.Sprintf("_anon%d", p.anon)
	}
	return text
}

// pattern field assembled before position assignment.
type patField struct {
	term     Term
	wildcard bool // label had a '%' prefix
	isType   bool // bare ident that names an OEM kind
	kind     oem.Kind
	oidLike  bool // &oid constant or skolem — can only be an oid
	line     int
}

// parsePattern parses <…>. Field positions follow the paper: 4 fields are
// oid/label/type/value, 3 are oid/label/value, 2 are label/value, 1 is a
// bare label — except that a 3-field pattern whose middle names an OEM
// type and whose first cannot be an oid is read as label/type/value.
// head selects whether skolem oid terms are allowed.
func (p *parser) parsePattern(head bool) (*ObjectPattern, error) {
	open, err := p.expect(tLAngle, "'<'")
	if err != nil {
		return nil, err
	}
	var fields []patField
	for {
		tok := p.lex.peek()
		if tok.kind == tRAngle {
			p.lex.next()
			break
		}
		if tok.kind == tComma {
			p.lex.next()
			continue
		}
		if tok.kind == tEOF {
			return nil, p.errf(open.line, "unterminated pattern")
		}
		f, err := p.parsePatternField(head)
		if err != nil {
			return nil, err
		}
		fields = append(fields, f)
		if len(fields) > 4 {
			return nil, p.errf(open.line, "pattern has more than 4 fields")
		}
	}
	return p.assemblePattern(open.line, fields)
}

func (p *parser) parsePatternField(head bool) (patField, error) {
	tok := p.lex.peek()
	f := patField{line: tok.line}
	switch tok.kind {
	case tPercent:
		p.lex.next()
		f.wildcard = true
		inner := p.lex.peek()
		switch inner.kind {
		case tIdent, tString:
			p.lex.next()
			f.term = &Const{Value: oem.String(inner.text)}
		case tVar:
			p.lex.next()
			f.term = &Var{Name: p.varName(inner.text)}
		default:
			// Bare '%': any label at any depth.
			f.term = &Var{Name: p.varName("_")}
		}
		return f, nil
	case tVar:
		p.lex.next()
		f.term = &Var{Name: p.varName(tok.text)}
		return f, nil
	case tIdent:
		p.lex.next()
		// Skolem term "f(X, …)" in head oid position.
		if p.lex.peek().kind == tLParen {
			if !head {
				return f, p.errf(tok.line, "skolem term %s(…) is only allowed in rule heads", tok.text)
			}
			p.lex.next()
			sk := &Skolem{Functor: tok.text}
			for {
				t2 := p.lex.peek()
				if t2.kind == tRParen {
					p.lex.next()
					break
				}
				if t2.kind == tComma {
					p.lex.next()
					continue
				}
				arg, err := p.parseSimpleTerm()
				if err != nil {
					return f, err
				}
				sk.Args = append(sk.Args, arg)
			}
			f.term = sk
			f.oidLike = true
			return f, nil
		}
		if k, ok := oem.KindFromName(tok.text); ok {
			f.isType = true
			f.kind = k
		}
		f.term = &Const{Value: oem.String(tok.text)}
		return f, nil
	case tOID:
		p.lex.next()
		f.term = &Const{Value: oem.String(tok.text)}
		f.oidLike = true
		return f, nil
	case tString:
		p.lex.next()
		f.term = &Const{Value: oem.String(tok.text)}
		return f, nil
	case tNumber:
		p.lex.next()
		c, err := numberConst(tok)
		if err != nil {
			return f, err
		}
		f.term = c
		return f, nil
	case tBool:
		p.lex.next()
		f.term = &Const{Value: oem.Bool(tok.text == "true")}
		return f, nil
	case tParam:
		p.lex.next()
		f.term = &Param{Name: tok.text}
		return f, nil
	case tLBrace:
		sp, err := p.parseSetPattern(head)
		if err != nil {
			return f, err
		}
		f.term = sp
		return f, nil
	}
	return f, p.errf(tok.line, "unexpected %s in pattern", tok)
}

func (p *parser) assemblePattern(line int, fields []patField) (*ObjectPattern, error) {
	pat := &ObjectPattern{}
	setLabel := func(f patField) error {
		switch f.term.(type) {
		case *Var, *Const, *Param:
		default:
			return p.errf(f.line, "label field must be a name, variable, or parameter, found %s", f.term)
		}
		if c, ok := f.term.(*Const); ok {
			if _, isStr := c.Value.(oem.String); !isStr {
				return p.errf(f.line, "label field must be a name, found %s", f.term)
			}
		}
		pat.Label = f.term
		pat.Wildcard = f.wildcard
		return nil
	}
	setOID := func(f patField) error {
		if f.wildcard {
			return p.errf(f.line, "'%%' applies to the label field, not the oid")
		}
		switch f.term.(type) {
		case *Var, *Const, *Skolem:
			pat.OID = f.term
			return nil
		}
		return p.errf(f.line, "oid field must be a variable, constant, or skolem term")
	}
	setValue := func(f patField) error {
		if f.wildcard {
			return p.errf(f.line, "'%%' applies to the label field, not the value")
		}
		pat.Value = f.term
		return nil
	}
	switch len(fields) {
	case 0:
		return nil, p.errf(line, "empty pattern <>")
	case 1:
		if err := setLabel(fields[0]); err != nil {
			return nil, err
		}
	case 2:
		if err := setLabel(fields[0]); err != nil {
			return nil, err
		}
		if err := setValue(fields[1]); err != nil {
			return nil, err
		}
	case 3:
		// <label type value> when the middle is a type name and the first
		// cannot be an oid; otherwise <oid label value> per the paper.
		if fields[1].isType && !fields[0].oidLike {
			if err := setLabel(fields[0]); err != nil {
				return nil, err
			}
			k := fields[1].kind
			pat.Type = &k
			if err := setValue(fields[2]); err != nil {
				return nil, err
			}
		} else {
			if err := setOID(fields[0]); err != nil {
				return nil, err
			}
			if err := setLabel(fields[1]); err != nil {
				return nil, err
			}
			if err := setValue(fields[2]); err != nil {
				return nil, err
			}
		}
	case 4:
		if err := setOID(fields[0]); err != nil {
			return nil, err
		}
		if err := setLabel(fields[1]); err != nil {
			return nil, err
		}
		if !fields[2].isType {
			return nil, p.errf(fields[2].line, "third field of a 4-field pattern must be a type name")
		}
		k := fields[2].kind
		pat.Type = &k
		if err := setValue(fields[3]); err != nil {
			return nil, err
		}
	}
	return pat, nil
}

// parseSetPattern parses "{elem … | Rest[:{constraints}]}".
func (p *parser) parseSetPattern(head bool) (*SetPattern, error) {
	open, err := p.expect(tLBrace, "'{'")
	if err != nil {
		return nil, err
	}
	sp := &SetPattern{}
	for {
		tok := p.lex.peek()
		switch tok.kind {
		case tRBrace:
			p.lex.next()
			return sp, nil
		case tComma:
			p.lex.next()
		case tLAngle:
			pat, err := p.parsePattern(head)
			if err != nil {
				return nil, err
			}
			sp.Elems = append(sp.Elems, pat)
		case tVar:
			p.lex.next()
			sp.Elems = append(sp.Elems, &Var{Name: p.varName(tok.text)})
		case tPipe:
			p.lex.next()
			if err := p.parseRest(sp, head); err != nil {
				return nil, err
			}
			if _, err := p.expect(tRBrace, "'}' after rest variable"); err != nil {
				return nil, err
			}
			return sp, nil
		case tEOF:
			return nil, p.errf(open.line, "unterminated set pattern")
		default:
			return nil, p.errf(tok.line, "unexpected %s in set pattern", tok)
		}
	}
}

func (p *parser) parseRest(sp *SetPattern, head bool) error {
	tok := p.lex.next()
	if tok.kind != tVar {
		return p.errf(tok.line, "expected rest variable after '|', found %s", tok)
	}
	sp.Rest = &Var{Name: p.varName(tok.text)}
	if p.lex.peek().kind != tColon {
		return nil
	}
	p.lex.next()
	if _, err := p.expect(tLBrace, "'{' after rest-variable ':'"); err != nil {
		return err
	}
	for {
		tok := p.lex.peek()
		switch tok.kind {
		case tRBrace:
			p.lex.next()
			return nil
		case tComma:
			p.lex.next()
		case tLAngle:
			pat, err := p.parsePattern(head)
			if err != nil {
				return err
			}
			sp.RestConstraints = append(sp.RestConstraints, pat)
		case tEOF:
			return p.errf(tok.line, "unterminated rest-constraint set")
		default:
			return p.errf(tok.line, "unexpected %s in rest constraints", tok)
		}
	}
}
