package msl

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

type tokenKind int

const (
	tEOF     tokenKind = iota
	tLAngle            // <
	tRAngle            // >
	tLBrace            // {
	tRBrace            // }
	tLParen            // (
	tRParen            // )
	tPipe              // |
	tComma             // ,
	tPeriod            // .
	tColon             // :
	tImplies           // :-
	tAt                // @
	tPercent           // %
	tIdent             // lower-case identifier: label constant or keyword
	tVar               // upper-case identifier or _: variable
	tParam             // $name
	tOID               // &name
	tString            // '…'
	tNumber            // 42, 2.5, -1e3
	tBool              // true / false
)

type token struct {
	kind tokenKind
	text string
	line int
}

func (t token) String() string {
	switch t.kind {
	case tEOF:
		return "end of input"
	case tLAngle:
		return "'<'"
	case tRAngle:
		return "'>'"
	case tLBrace:
		return "'{'"
	case tRBrace:
		return "'}'"
	case tLParen:
		return "'('"
	case tRParen:
		return "')'"
	case tPipe:
		return "'|'"
	case tComma:
		return "','"
	case tPeriod:
		return "'.'"
	case tColon:
		return "':'"
	case tImplies:
		return "':-'"
	case tAt:
		return "'@'"
	case tPercent:
		return "'%'"
	case tString:
		return fmt.Sprintf("string %q", t.text)
	case tParam:
		return "$" + t.text
	case tOID:
		return t.text
	}
	return fmt.Sprintf("%q", t.text)
}

type lexer struct {
	src    string
	pos    int
	line   int
	peeked []token
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (l *lexer) peek() token { return l.peekN(0) }

// peekN looks ahead n tokens (0 = next).
func (l *lexer) peekN(n int) token {
	for len(l.peeked) <= n {
		l.peeked = append(l.peeked, l.scan())
	}
	return l.peeked[n]
}

func (l *lexer) next() token {
	if len(l.peeked) > 0 {
		t := l.peeked[0]
		l.peeked = l.peeked[1:]
		return t
	}
	return l.scan()
}

func (l *lexer) scan() token {
	l.skipSpace()
	if l.pos >= len(l.src) {
		return token{kind: tEOF, line: l.line}
	}
	start := l.line
	c := l.src[l.pos]
	switch c {
	case '<':
		l.pos++
		return token{kind: tLAngle, line: start}
	case '>':
		l.pos++
		return token{kind: tRAngle, line: start}
	case '{':
		l.pos++
		return token{kind: tLBrace, line: start}
	case '}':
		l.pos++
		return token{kind: tRBrace, line: start}
	case '(':
		l.pos++
		return token{kind: tLParen, line: start}
	case ')':
		l.pos++
		return token{kind: tRParen, line: start}
	case '|':
		l.pos++
		return token{kind: tPipe, line: start}
	case ',':
		l.pos++
		return token{kind: tComma, line: start}
	case '@':
		l.pos++
		return token{kind: tAt, line: start}
	case '%':
		l.pos++
		return token{kind: tPercent, line: start}
	case ';':
		// Tolerated as a rule terminator alongside '.'.
		l.pos++
		return token{kind: tPeriod, line: start}
	case ':':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			l.pos += 2
			return token{kind: tImplies, line: start}
		}
		l.pos++
		return token{kind: tColon, line: start}
	case '$':
		l.pos++
		word := l.scanWord()
		return token{kind: tParam, text: word, line: start}
	case '&':
		l.pos++
		word := l.scanWord()
		return token{kind: tOID, text: "&" + word, line: start}
	case '\'':
		return l.scanString()
	case '.':
		// Could be a period terminator or the start of a fraction; a
		// terminator is never followed by a digit.
		if l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
			return l.scanNumber()
		}
		l.pos++
		return token{kind: tPeriod, line: start}
	}
	if c == '-' || c >= '0' && c <= '9' {
		return l.scanNumber()
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
	if r == '_' || unicode.IsLetter(r) {
		word := l.scanWord()
		switch word {
		case "true", "false":
			return token{kind: tBool, text: word, line: start}
		}
		first, _ := utf8.DecodeRuneInString(word)
		if first == '_' || unicode.IsUpper(first) {
			return token{kind: tVar, text: word, line: start}
		}
		return token{kind: tIdent, text: word, line: start}
	}
	l.pos++
	return token{kind: tIdent, text: string(c), line: start}
}

func (l *lexer) scanWord() string {
	j := l.pos
	for j < len(l.src) {
		r, sz := utf8.DecodeRuneInString(l.src[j:])
		if r != '_' && !unicode.IsLetter(r) && !unicode.IsDigit(r) {
			break
		}
		j += sz
	}
	w := l.src[l.pos:j]
	l.pos = j
	return w
}

func (l *lexer) scanString() token {
	start := l.line
	l.pos++
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case '\'':
			l.pos++
			return token{kind: tString, text: sb.String(), line: start}
		case '\\':
			l.pos++
			if l.pos < len(l.src) {
				switch l.src[l.pos] {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case 'r':
					sb.WriteByte('\r')
				default:
					sb.WriteByte(l.src[l.pos])
				}
				l.pos++
			}
		case '\n':
			l.line++
			sb.WriteByte(c)
			l.pos++
		default:
			sb.WriteByte(c)
			l.pos++
		}
	}
	return token{kind: tIdent, text: "'" + sb.String(), line: start} // unterminated; parser rejects
}

func (l *lexer) scanNumber() token {
	start := l.line
	j := l.pos
	if l.src[j] == '-' {
		j++
	}
	seenDigit := false
	for j < len(l.src) {
		c := l.src[j]
		if c >= '0' && c <= '9' {
			seenDigit = true
			j++
			continue
		}
		// A '.' is part of the number only when followed by a digit, so
		// "3." lexes as number 3 then a period terminator.
		if c == '.' && j+1 < len(l.src) && l.src[j+1] >= '0' && l.src[j+1] <= '9' {
			j += 2
			continue
		}
		if (c == 'e' || c == 'E') && seenDigit {
			k := j + 1
			if k < len(l.src) && (l.src[k] == '+' || l.src[k] == '-') {
				k++
			}
			if k < len(l.src) && l.src[k] >= '0' && l.src[k] <= '9' {
				j = k
				continue
			}
		}
		break
	}
	text := l.src[l.pos:j]
	l.pos = j
	return token{kind: tNumber, text: text, line: start}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '#':
			l.skipLine()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			l.skipLine()
		default:
			return
		}
	}
}

func (l *lexer) skipLine() {
	for l.pos < len(l.src) && l.src[l.pos] != '\n' {
		l.pos++
	}
}
