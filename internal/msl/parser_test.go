package msl

import (
	"reflect"
	"strings"
	"testing"

	"medmaker/internal/oem"
)

// specMS1 is the paper's mediator specification MS1 in our concrete
// syntax.
const specMS1 = `
<cs_person {<name N> <rel R> Rest1 Rest2}> :-
    <person {<name N> <dept 'CS'> <relation R> | Rest1}>@whois
    AND <R {<first_name FN> <last_name LN> | Rest2}>@cs
    AND decomp(N, LN, FN).

decomp(bound, free, free) by name_to_lnfn.
decomp(free, bound, bound) by lnfn_to_name.
`

func TestParseSpecMS1(t *testing.T) {
	prog, err := ParseProgram(specMS1)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 1 || len(prog.Decls) != 2 {
		t.Fatalf("parsed %d rules, %d decls", len(prog.Rules), len(prog.Decls))
	}
	r := prog.Rules[0]
	if len(r.Head) != 1 || len(r.Tail) != 3 {
		t.Fatalf("rule shape: %d head terms, %d conjuncts", len(r.Head), len(r.Tail))
	}
	head, ok := r.Head[0].(*ObjectPattern)
	if !ok {
		t.Fatalf("head is %T", r.Head[0])
	}
	if head.LabelName() != "cs_person" {
		t.Fatalf("head label %q", head.LabelName())
	}
	hs, ok := head.Value.(*SetPattern)
	if !ok || len(hs.Elems) != 4 {
		t.Fatalf("head set pattern: %v", head.Value)
	}
	// Elements: <name N>, <rel R>, Rest1, Rest2.
	if _, ok := hs.Elems[2].(*Var); !ok {
		t.Fatalf("third head element should be a variable, got %T", hs.Elems[2])
	}

	// First conjunct: whois pattern.
	c0, ok := r.Tail[0].(*PatternConjunct)
	if !ok || c0.Source != "whois" {
		t.Fatalf("conjunct 0: %v", r.Tail[0])
	}
	if c0.Pattern.LabelName() != "person" {
		t.Fatalf("conjunct 0 label %q", c0.Pattern.LabelName())
	}
	sp := c0.Pattern.Value.(*SetPattern)
	if sp.Rest == nil || sp.Rest.Name != "Rest1" {
		t.Fatalf("conjunct 0 rest: %v", sp.Rest)
	}
	if len(sp.Elems) != 3 {
		t.Fatalf("conjunct 0 has %d elems", len(sp.Elems))
	}
	dept := sp.Elems[1].(*ObjectPattern)
	if dept.LabelName() != "dept" {
		t.Fatalf("second element label %q", dept.LabelName())
	}
	if c, ok := dept.Value.(*Const); !ok || !c.Value.Equal(oem.String("CS")) {
		t.Fatalf("dept value %v", dept.Value)
	}

	// Second conjunct: label variable R — the schematic-discrepancy move.
	c1 := r.Tail[1].(*PatternConjunct)
	if c1.Source != "cs" {
		t.Fatalf("conjunct 1 source %q", c1.Source)
	}
	if v, ok := c1.Pattern.Label.(*Var); !ok || v.Name != "R" {
		t.Fatalf("conjunct 1 label should be variable R, got %v", c1.Pattern.Label)
	}

	// Third conjunct: external predicate.
	c2, ok := r.Tail[2].(*PredicateConjunct)
	if !ok || c2.Name != "decomp" || len(c2.Args) != 3 {
		t.Fatalf("conjunct 2: %v", r.Tail[2])
	}

	// Declarations.
	d0 := prog.Decls[0]
	if d0.Pred != "decomp" || d0.Func != "name_to_lnfn" {
		t.Fatalf("decl 0: %v", d0)
	}
	if !reflect.DeepEqual(d0.Adornment, []ArgMode{ArgBound, ArgFree, ArgFree}) {
		t.Fatalf("decl 0 adornment: %v", d0.Adornment)
	}
	d1 := prog.Decls[1]
	if !reflect.DeepEqual(d1.Adornment, []ArgMode{ArgFree, ArgBound, ArgBound}) {
		t.Fatalf("decl 1 adornment: %v", d1.Adornment)
	}
}

func TestParseQueryQ1(t *testing.T) {
	r, err := ParseQuery(`JC :- JC:<cs_person {<name 'Joe Chung'>}>@med.`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Head) != 1 {
		t.Fatalf("head terms: %d", len(r.Head))
	}
	hv, ok := r.Head[0].(*Var)
	if !ok || hv.Name != "JC" {
		t.Fatalf("head: %v", r.Head[0])
	}
	pc := r.Tail[0].(*PatternConjunct)
	if pc.ObjVar == nil || pc.ObjVar.Name != "JC" {
		t.Fatalf("object variable: %v", pc.ObjVar)
	}
	if pc.Source != "med" {
		t.Fatalf("source: %q", pc.Source)
	}
	inner := pc.Pattern.Value.(*SetPattern).Elems[0].(*ObjectPattern)
	if c, ok := inner.Value.(*Const); !ok || !c.Value.Equal(oem.String("Joe Chung")) {
		t.Fatalf("inner value: %v", inner.Value)
	}
}

func TestParseRestConstraints(t *testing.T) {
	// The paper's Qw: conditions attached to a rest variable.
	r := MustParseRule(`<bind_for_whois {<bind_for_R R> <bind_for_Rest1 Rest1>}> :-
	    <person {<name 'Joe Chung'> <dept 'CS'> <relation R> | Rest1:{<year 3>}}>@whois.`)
	pc := r.Tail[0].(*PatternConjunct)
	sp := pc.Pattern.Value.(*SetPattern)
	if sp.Rest == nil || sp.Rest.Name != "Rest1" {
		t.Fatalf("rest: %v", sp.Rest)
	}
	if len(sp.RestConstraints) != 1 || sp.RestConstraints[0].LabelName() != "year" {
		t.Fatalf("rest constraints: %v", sp.RestConstraints)
	}
	if n, ok := sp.RestConstraints[0].Value.(*Const); !ok || !n.Value.Equal(oem.Int(3)) {
		t.Fatalf("constraint value: %v", sp.RestConstraints[0].Value)
	}
}

func TestParseParameterizedQuery(t *testing.T) {
	// The paper's Qcs template with $R, $LN, $FN placeholders.
	r := MustParseRule(`<bind_for_Rest2 Rest2> :-
	    <$R {<last_name $LN> <first_name $FN> | Rest2}>@cs.`)
	pc := r.Tail[0].(*PatternConjunct)
	if p, ok := pc.Pattern.Label.(*Param); !ok || p.Name != "R" {
		t.Fatalf("label param: %v", pc.Pattern.Label)
	}
	sp := pc.Pattern.Value.(*SetPattern)
	ln := sp.Elems[0].(*ObjectPattern)
	if p, ok := ln.Value.(*Param); !ok || p.Name != "LN" {
		t.Fatalf("value param: %v", ln.Value)
	}
}

func TestParseFieldForms(t *testing.T) {
	cases := []struct {
		src   string
		check func(t *testing.T, p *ObjectPattern)
	}{
		{"<person>", func(t *testing.T, p *ObjectPattern) {
			if p.LabelName() != "person" || p.Value != nil || p.OID != nil {
				t.Errorf("bare label: %v", p)
			}
		}},
		{"<name N>", func(t *testing.T, p *ObjectPattern) {
			if v, ok := p.Value.(*Var); !ok || v.Name != "N" {
				t.Errorf("label value: %v", p)
			}
		}},
		{"<X name N>", func(t *testing.T, p *ObjectPattern) {
			if v, ok := p.OID.(*Var); !ok || v.Name != "X" {
				t.Errorf("3-field oid: %v", p)
			}
		}},
		{"<&12 department 'CS'>", func(t *testing.T, p *ObjectPattern) {
			if c, ok := p.OID.(*Const); !ok || !c.Value.Equal(oem.String("&12")) {
				t.Errorf("oid const: %v", p.OID)
			}
		}},
		{"<year integer 3>", func(t *testing.T, p *ObjectPattern) {
			if p.Type == nil || *p.Type != oem.KindInt {
				t.Errorf("label/type/value: %v", p)
			}
			if p.OID != nil {
				t.Errorf("should have no oid: %v", p.OID)
			}
		}},
		{"<&12 department string 'CS'>", func(t *testing.T, p *ObjectPattern) {
			if p.Type == nil || *p.Type != oem.KindString || p.OID == nil {
				t.Errorf("4-field: %v", p)
			}
		}},
		{"<&12, department, string, 'CS'>", func(t *testing.T, p *ObjectPattern) {
			if p.Type == nil || p.LabelName() != "department" {
				t.Errorf("comma-separated 4-field: %v", p)
			}
		}},
		{"<%title T>", func(t *testing.T, p *ObjectPattern) {
			if !p.Wildcard || p.LabelName() != "title" {
				t.Errorf("wildcard label: %v", p)
			}
		}},
		{"<%L V>", func(t *testing.T, p *ObjectPattern) {
			if !p.Wildcard {
				t.Errorf("wildcard var label: %v", p)
			}
			if v, ok := p.Label.(*Var); !ok || v.Name != "L" {
				t.Errorf("wildcard label var: %v", p.Label)
			}
		}},
		{"<L V>", func(t *testing.T, p *ObjectPattern) {
			if _, ok := p.Label.(*Var); !ok {
				t.Errorf("variable label: %v", p.Label)
			}
		}},
	}
	for _, c := range cases {
		r, err := ParseRule("X :- X:" + c.src + "@s.")
		if err != nil {
			t.Errorf("ParseRule(%q): %v", c.src, err)
			continue
		}
		c.check(t, r.Tail[0].(*PatternConjunct).Pattern)
	}
}

func TestParseSkolemHead(t *testing.T) {
	r := MustParseRule(`<person(N) cs_person {<name N>}> :- <person {<name N>}>@whois.`)
	h := r.Head[0].(*ObjectPattern)
	sk, ok := h.OID.(*Skolem)
	if !ok || sk.Functor != "person" || len(sk.Args) != 1 {
		t.Fatalf("skolem head oid: %v", h.OID)
	}
	// Skolems are rejected in tails.
	if _, err := ParseRule(`X :- X:<person(N) p>@s.`); err == nil {
		t.Fatal("skolem in tail accepted")
	}
}

func TestAnonymousVariablesAreDistinct(t *testing.T) {
	r := MustParseRule(`<out {<a _> <b _>}> :- <person {<a _> <b _>}>@s.`)
	vars := r.Vars()
	anon := 0
	for _, v := range vars {
		if strings.HasPrefix(v, "_anon") {
			anon++
		}
	}
	if anon != 4 {
		t.Fatalf("expected 4 distinct anonymous variables, got %d (%v)", anon, vars)
	}
}

func TestParseMultipleRules(t *testing.T) {
	prog := MustParseProgram(`
	    <p {X}> :- <q {X}>@a.
	    <p {X}> :- <r {X}>@b.
	`)
	if len(prog.Rules) != 2 {
		t.Fatalf("parsed %d rules", len(prog.Rules))
	}
}

func TestParseConjunctSeparators(t *testing.T) {
	and := MustParseRule(`<p {X Y}> :- <q X>@a AND <r Y>@b.`)
	lower := MustParseRule(`<p {X Y}> :- <q X>@a and <r Y>@b.`)
	comma := MustParseRule(`<p {X Y}> :- <q X>@a, <r Y>@b.`)
	for _, r := range []*Rule{and, lower, comma} {
		if len(r.Tail) != 2 {
			t.Fatalf("rule %v has %d conjuncts", r, len(r.Tail))
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`:- <p X>@a.`,                 // empty head
		`<p X> :- Y.`,                 // bare variable conjunct
		`<p X> :- <q X>@.`,            // missing source name
		`<a b c d e> :- <q X>@s.`,     // five fields
		`<p X> :- <q {| }>@s.`,        // missing rest var
		`<p X> :- <q {<a 1> | 3}>@s.`, // non-variable rest
		`<p X> :- decomp(N, LN`,       // unterminated predicate
		`decomp(bound, wrong) by f.`,  // bad adornment
		`decomp(bound) name_to_lnfn.`, // missing 'by'
		`<p X> :- <q X>@a <r Y>@b.`,   // missing separator
		`<p <a> X> :- <q X>@s.`,       // pattern in label position
		`<%p q r s> :- <q X>@s.`,      // OK head? no: 4 fields, 3rd not type
		`<p {X}>`,                     // head with no tail
		`<>`,                          // empty pattern
	}
	for _, src := range bad {
		if _, err := ParseProgram(src); err == nil {
			t.Errorf("ParseProgram(%q) succeeded, want error", src)
		}
	}
}

func TestParseRuleRejectsPrograms(t *testing.T) {
	if _, err := ParseRule(`<p {X}> :- <q {X}>@a. <p {X}> :- <r {X}>@b.`); err == nil {
		t.Fatal("ParseRule accepted two rules")
	}
	if _, err := ParseRule(`decomp(bound) by f.`); err == nil {
		t.Fatal("ParseRule accepted a declaration")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseRule should panic")
		}
	}()
	MustParseRule("garbage")
}

func TestCommentsAndWhitespace(t *testing.T) {
	r := MustParseRule(`
	# leading comment
	<p {X}> :- // rule body follows
	    <q {X}>@a.  # done
	`)
	if len(r.Tail) != 1 {
		t.Fatal("comment parsing broke the rule")
	}
}

func TestVarsAndHeadVars(t *testing.T) {
	prog := MustParseProgram(specMS1)
	r := prog.Rules[0]
	want := []string{"FN", "LN", "N", "R", "Rest1", "Rest2"}
	if got := r.Vars(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Vars() = %v, want %v", got, want)
	}
	wantHead := []string{"N", "R", "Rest1", "Rest2"}
	if got := r.HeadVars(); !reflect.DeepEqual(got, wantHead) {
		t.Fatalf("HeadVars() = %v, want %v", got, wantHead)
	}
}

func TestSources(t *testing.T) {
	prog := MustParseProgram(specMS1)
	if got := prog.Rules[0].Sources(); !reflect.DeepEqual(got, []string{"cs", "whois"}) {
		t.Fatalf("Sources() = %v", got)
	}
	q := MustParseRule(`X :- X:<p>.`)
	if got := q.Sources(); !reflect.DeepEqual(got, []string{""}) {
		t.Fatalf("default source: %v", got)
	}
}

func TestRenameVars(t *testing.T) {
	r := MustParseProgram(specMS1).Rules[0]
	renamed := r.RenameVars(func(s string) string { return s + "_1" })
	want := []string{"FN_1", "LN_1", "N_1", "R_1", "Rest1_1", "Rest2_1"}
	if got := renamed.Vars(); !reflect.DeepEqual(got, want) {
		t.Fatalf("renamed vars = %v", got)
	}
	// The original is untouched.
	if got := r.Vars(); got[0] != "FN" {
		t.Fatal("RenameVars mutated the original")
	}
	// Clone preserves names and is deep.
	c := r.Clone()
	if !reflect.DeepEqual(c.Vars(), r.Vars()) {
		t.Fatal("Clone changed variables")
	}
	c.Tail[0].(*PatternConjunct).Source = "elsewhere"
	if r.Tail[0].(*PatternConjunct).Source != "whois" {
		t.Fatal("Clone shares conjuncts with the original")
	}
}

func TestObjVarRenamedToo(t *testing.T) {
	r := MustParseRule(`JC :- JC:<cs_person>@med.`)
	renamed := r.RenameVars(func(s string) string { return "r_" + s })
	pc := renamed.Tail[0].(*PatternConjunct)
	if pc.ObjVar.Name != "r_JC" {
		t.Fatalf("objvar not renamed: %v", pc.ObjVar)
	}
	if hv := renamed.Head[0].(*Var); hv.Name != "r_JC" {
		t.Fatalf("head var not renamed: %v", hv)
	}
}

// TestPrintParseRoundTrip checks that String() output reparses to the same
// structure for a corpus of representative rules.
func TestPrintParseRoundTrip(t *testing.T) {
	corpus := []string{
		specMS1,
		`JC :- JC:<cs_person {<name 'Joe Chung'>}>@med.`,
		`<bind_for_Rest2 Rest2> :- <$R {<last_name $LN> <first_name $FN> | Rest2}>@cs.`,
		`S :- S:<cs_person {<year 3>}>@med.`,
		`<p {<a 1> <b 2.5> <c true> | R:{<x 'y'>}}> :- <q {| R}>@s AND lt(X, 3).`,
		`<person(N) fused {<name N>}> :- <person {<name N>}>@a, <person {<name N>}>@b.`,
		`X :- X:<%title T>@lib.`,
		`<out {<&1 a integer 3>}> :- <in {<V a integer 3>}>@s.`,
	}
	for _, src := range corpus {
		p1, err := ParseProgram(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		printed := p1.String()
		p2, err := ParseProgram(printed)
		if err != nil {
			t.Fatalf("reparse of %q failed: %v", printed, err)
		}
		if p1.String() != p2.String() {
			t.Fatalf("round trip unstable:\nfirst:  %s\nsecond: %s", p1, p2)
		}
	}
}
