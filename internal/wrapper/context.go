package wrapper

import (
	"context"
	"fmt"

	"medmaker/internal/msl"
	"medmaker/internal/oem"
)

// ContextSource is the context-aware Source capability: sources that can
// bound or abandon work honor the context's deadline and cancellation.
// All bundled wrappers (oemstore, relational, semistruct, remote, the
// answer cache, and Mediator itself) implement it; third-party sources
// that only implement Source still work through QueryContext's fallback,
// which bounds the wait — though not the source's own work — by running
// the blind call in a goroutine.
type ContextSource interface {
	Source
	// QueryContext is Query bounded by ctx: it returns promptly with
	// ctx.Err() (possibly wrapped) once the context is cancelled or its
	// deadline passes.
	QueryContext(ctx context.Context, q *msl.Rule) ([]*oem.Object, error)
}

// ContextBatchQuerier is the context-aware form of BatchQuerier. The
// result slice is parallel to qs, as for BatchQuerier.
type ContextBatchQuerier interface {
	QueryBatchContext(ctx context.Context, qs []*msl.Rule) ([][]*oem.Object, error)
}

// QueryError reports which query of a batch failed and at which source,
// so a caller holding many in-flight queries (the engine's batching, a
// failure policy dropping one source) can tell the healthy answers from
// the failed one. It wraps the source's error.
type QueryError struct {
	// Source is the name of the source that failed.
	Source string
	// Index is the position of the failing query in the batch.
	Index int
	// Err is the source's error.
	Err error
}

// Error implements error.
func (e *QueryError) Error() string {
	return fmt.Sprintf("wrapper: query %d to source %q failed: %v", e.Index, e.Source, e.Err)
}

// Unwrap exposes the source's error to errors.Is/As (an
// *UnsupportedError stays recognizable through the wrapping).
func (e *QueryError) Unwrap() error { return e.Err }

// QueryContext answers one query against src under ctx. Context-aware
// sources get the context directly; for context-blind sources the call
// runs in a goroutine and QueryContext returns ctx.Err() as soon as the
// context ends — the abandoned call's goroutine drains when the source
// eventually returns, so a slow source delays its own goroutine's exit
// but never the caller.
func QueryContext(ctx context.Context, src Source, q *msl.Rule) ([]*oem.Object, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cs, ok := src.(ContextSource); ok {
		return cs.QueryContext(ctx, q)
	}
	return callBounded(ctx, func() ([]*oem.Object, error) { return src.Query(q) })
}

// QueryBatchContext answers several queries against src under ctx, in as
// few exchanges as the source allows: one call when src implements
// ContextBatchQuerier (or BatchQuerier, bounded like QueryContext's
// fallback), otherwise one QueryContext per rule with a cancellation
// check between queries. The returned slice is parallel to qs; a failure
// surfaces as a *QueryError naming the failing query unless the batch
// travelled as a single opaque exchange.
func QueryBatchContext(ctx context.Context, src Source, qs []*msl.Rule) ([][]*oem.Object, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cb, ok := src.(ContextBatchQuerier); ok {
		return cb.QueryBatchContext(ctx, qs)
	}
	if bq, ok := src.(BatchQuerier); ok {
		return callBounded(ctx, func() ([][]*oem.Object, error) { return bq.QueryBatch(qs) })
	}
	return EachQueryContext(ctx, src, qs)
}

// EachQueryContext answers qs with one QueryContext call per rule,
// checking for cancellation between queries. A failure at query i
// surfaces as a *QueryError with Index i, so the caller knows both which
// answers are valid (those before i) and which query to blame.
func EachQueryContext(ctx context.Context, src Source, qs []*msl.Rule) ([][]*oem.Object, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([][]*oem.Object, len(qs))
	for i, q := range qs {
		if err := ctx.Err(); err != nil {
			return nil, &QueryError{Source: src.Name(), Index: i, Err: err}
		}
		objs, err := QueryContext(ctx, src, q)
		if err != nil {
			return nil, &QueryError{Source: src.Name(), Index: i, Err: err}
		}
		out[i] = objs
	}
	return out, nil
}

// callBounded runs a context-blind call in a goroutine and waits for
// whichever comes first: its answer or the end of the context. The
// goroutine is buffered so an abandoned call exits as soon as the source
// returns.
func callBounded[T any](ctx context.Context, call func() (T, error)) (T, error) {
	var zero T
	if ctx.Done() == nil {
		return call()
	}
	if err := ctx.Err(); err != nil {
		return zero, err
	}
	type answer struct {
		val T
		err error
	}
	ch := make(chan answer, 1)
	go func() {
		val, err := call()
		ch <- answer{val, err}
	}()
	select {
	case a := <-ch:
		return a.val, a.err
	case <-ctx.Done():
		return zero, ctx.Err()
	}
}
