package wrapper

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"medmaker/internal/msl"
	"medmaker/internal/oem"
	"medmaker/internal/trace"
)

// DefaultCacheEntries is the answer-cache capacity used when
// CacheOptions.MaxEntries is zero.
const DefaultCacheEntries = 1024

// CacheOptions configure an answer cache.
type CacheOptions struct {
	// MaxEntries bounds the number of cached answers; the least recently
	// used entry is evicted beyond it. 0 means DefaultCacheEntries.
	MaxEntries int
	// TTL expires entries that age beyond it; an expired entry counts as
	// a miss and is refreshed from the source. 0 means no expiry.
	TTL time.Duration
	// Recorder, when set, observes every lookup — the mediator wires it
	// to the statistics store so cache hit rates feed the cost model.
	Recorder func(source string, hit bool)
	// Clock overrides the time source for TTL checks (tests); nil means
	// time.Now.
	Clock func() time.Time
}

// CacheStats is a snapshot of a cache's counters. Evictions counts
// entries displaced by the capacity bound; Expired counts entries
// removed because they aged past the TTL — distinct causes that call
// for distinct remedies (a bigger cache vs. a longer TTL).
type CacheStats struct {
	Hits, Misses, Evictions, Expired, Entries int
}

// Cache is an LRU answer cache in front of a Source, keyed by the
// normalized text of each query. Sources are autonomous and may change
// underneath the mediator, so the cache trades freshness for round-trips
// explicitly: entries live until evicted, expired by TTL, or dropped by
// Invalidate. Cached result objects are shared between callers and must
// be treated as immutable (the engine copies source material before
// mutating it, so this holds throughout MedMaker).
//
// Cache implements BatchQuerier whether or not the inner source does:
// batched lookups answer hits locally and forward only the misses, in one
// exchange when the inner source supports it.
type Cache struct {
	inner Source
	max   int
	ttl   time.Duration
	rec   func(source string, hit bool)
	now   func() time.Time

	mu        sync.Mutex
	lru       *list.List // front = most recently used
	entries   map[string]*list.Element
	inflight  map[string]*flight
	hits      int
	misses    int
	evictions int
	expired   int
}

// flight is one in-progress fetch of a missing key. Concurrent misses on
// the same key wait for the first one's answer instead of each querying
// the source (singleflight).
type flight struct {
	done chan struct{} // closed when the fetch finished
	objs []*oem.Object
	err  error
}

type cacheEntry struct {
	key    string
	objs   []*oem.Object
	stored time.Time
}

var (
	_ Source              = (*Cache)(nil)
	_ BatchQuerier        = (*Cache)(nil)
	_ Counter             = (*Cache)(nil)
	_ ContextSource       = (*Cache)(nil)
	_ ContextBatchQuerier = (*Cache)(nil)
)

// NewCache wraps src with an answer cache.
func NewCache(src Source, opts CacheOptions) *Cache {
	max := opts.MaxEntries
	if max <= 0 {
		max = DefaultCacheEntries
	}
	now := opts.Clock
	if now == nil {
		now = time.Now
	}
	return &Cache{
		inner:   src,
		max:     max,
		ttl:     opts.TTL,
		rec:     opts.Recorder,
		now:     now,
		lru:     list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Name implements Source.
func (c *Cache) Name() string { return c.inner.Name() }

// Capabilities implements Source.
func (c *Cache) Capabilities() Capabilities { return c.inner.Capabilities() }

// Inner returns the wrapped source.
func (c *Cache) Inner() Source { return c.inner }

// NormalizeQuery renders a rule with its variables renamed to positional
// names, so alpha-equivalent queries — identical up to variable naming,
// as repeated plans and parameterized instantiations produce — share one
// cache entry.
func NormalizeQuery(q *msl.Rule) string {
	n := 0
	names := map[string]string{}
	renamed := q.RenameVars(func(s string) string {
		if nn, ok := names[s]; ok {
			return nn
		}
		n++
		nn := fmt.Sprintf("V%d", n)
		names[s] = nn
		return nn
	})
	return renamed.String()
}

// Query implements Source, answering from the cache when possible.
func (c *Cache) Query(q *msl.Rule) ([]*oem.Object, error) {
	return c.QueryContext(context.Background(), q)
}

// QueryContext implements ContextSource: hits are answered locally
// whatever the context's state, and misses forward the context to the
// inner source. Concurrent misses on one key are deduplicated: the first
// caller queries the source, the others wait for its answer (or their
// own context's end), so a thundering herd of identical queries costs
// one exchange. A failed fetch is not shared as a cache answer — one
// waiter retries, so transient source errors do not fan out.
func (c *Cache) QueryContext(ctx context.Context, q *msl.Rule) ([]*oem.Object, error) {
	key := NormalizeQuery(q)
	for {
		objs, hit, f, leader := c.lookupOrJoin(key)
		trace.CacheEvent(ctx, hit)
		if hit {
			return objs, nil
		}
		if !leader {
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if f.err == nil {
				// Share the objects but not the slice (see lookup).
				return append([]*oem.Object(nil), f.objs...), nil
			}
			// The leader failed; loop so one waiter becomes the new
			// leader and retries (its lookup counts a fresh miss).
			continue
		}
		objs, err := QueryContext(ctx, c.inner, q)
		if err == nil {
			c.store(key, objs)
		}
		f.objs, f.err = objs, err
		// The flight leaves the table only after a successful answer was
		// stored, so a caller never finds both the entry and the flight
		// missing while the answer exists.
		c.mu.Lock()
		delete(c.inflight, key)
		c.mu.Unlock()
		close(f.done)
		if err != nil {
			return nil, err
		}
		return objs, nil
	}
}

// lookupOrJoin consults the cache and the in-flight table atomically: a
// hit returns the answer; a miss either joins key's existing flight or
// registers a new one (leader true). Holding one lock across both checks
// is what makes the dedup sound — a caller can never slip between a
// concurrent leader's store and its flight removal and fetch again.
func (c *Cache) lookupOrJoin(key string) (objs []*oem.Object, hit bool, f *flight, leader bool) {
	c.mu.Lock()
	objs, hit = c.lookupLocked(key)
	if hit {
		c.mu.Unlock()
		c.record(true)
		return objs, true, nil, false
	}
	f, ok := c.inflight[key]
	if !ok {
		f = &flight{done: make(chan struct{})}
		if c.inflight == nil {
			c.inflight = make(map[string]*flight)
		}
		c.inflight[key] = f
		leader = true
	}
	c.mu.Unlock()
	c.record(false)
	return nil, false, f, leader
}

// QueryBatch implements BatchQuerier: hits are answered locally and only
// the misses travel to the inner source — in one exchange when it
// implements BatchQuerier itself.
func (c *Cache) QueryBatch(qs []*msl.Rule) ([][]*oem.Object, error) {
	return c.QueryBatchContext(context.Background(), qs)
}

// QueryBatchContext implements ContextBatchQuerier: hits are answered
// locally and only the misses travel to the inner source under ctx. An
// inner *QueryError is re-indexed to this batch's positions. Batched
// misses are not singleflighted: the engine already deduplicates a
// batch's queries, and stalling a whole batch on another caller's
// single-key fetch would serialize exchanges the batch exists to overlap.
func (c *Cache) QueryBatchContext(ctx context.Context, qs []*msl.Rule) ([][]*oem.Object, error) {
	out := make([][]*oem.Object, len(qs))
	keys := make([]string, len(qs))
	var missIdx []int
	for i, q := range qs {
		keys[i] = NormalizeQuery(q)
		if objs, ok := c.lookupCtx(ctx, keys[i]); ok {
			out[i] = objs
			continue
		}
		missIdx = append(missIdx, i)
	}
	if len(missIdx) == 0 {
		return out, nil
	}
	missed := make([]*msl.Rule, len(missIdx))
	for j, i := range missIdx {
		missed[j] = qs[i]
	}
	fetched, err := QueryBatchContext(ctx, c.inner, missed)
	if err != nil {
		var qe *QueryError
		if errors.As(err, &qe) && qe.Index < len(missIdx) {
			return nil, &QueryError{Source: qe.Source, Index: missIdx[qe.Index], Err: qe.Err}
		}
		return nil, err
	}
	for j, i := range missIdx {
		out[i] = fetched[j]
		c.store(keys[i], fetched[j])
	}
	return out, nil
}

// CountLabel implements Counter when the inner source does; counts are
// not cached (they are already cheap by contract).
func (c *Cache) CountLabel(label string) (int, bool) {
	if counter, ok := c.inner.(Counter); ok {
		return counter.CountLabel(label)
	}
	return 0, false
}

// Invalidate drops cached answers — the explicit escape hatch for
// callers that know a source changed — and returns how many entries it
// dropped, so callers can count invalidated answers in their metrics. A
// cache holds answers of exactly one source, so source selects all or
// nothing: "" (every entry, whatever the source) or the inner source's
// name drop the whole cache; any other name is a no-op returning 0. The
// selector exists so a mediator can broadcast one Invalidate(name) to
// all its caches and the matview manager alike.
func (c *Cache) Invalidate(source string) int {
	if source != "" && source != c.inner.Name() {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := c.lru.Len()
	c.lru.Init()
	c.entries = make(map[string]*list.Element)
	return dropped
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Expired: c.expired, Entries: c.lru.Len()}
}

// lookupCtx is lookup plus trace attribution: when ctx carries the
// engine's per-exchange observers (a traced run), the access is also
// recorded on the owning query node and source, so a trace's cache
// counts equal the cache's own counters exactly.
func (c *Cache) lookupCtx(ctx context.Context, key string) ([]*oem.Object, bool) {
	objs, ok := c.lookup(key)
	trace.CacheEvent(ctx, ok)
	return objs, ok
}

// lookup returns the cached answer for key, counting the access and
// refreshing recency. Expired entries are removed — counted under
// Expired — and the access counts as a miss.
func (c *Cache) lookup(key string) ([]*oem.Object, bool) {
	c.mu.Lock()
	objs, ok := c.lookupLocked(key)
	c.mu.Unlock()
	c.record(ok)
	return objs, ok
}

// lookupLocked is the entry consultation under c.mu: TTL check, recency
// refresh, hit/miss counting. Callers invoke c.record outside the lock.
func (c *Cache) lookupLocked(key string) ([]*oem.Object, bool) {
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		if c.ttl > 0 && c.now().Sub(e.stored) > c.ttl {
			c.lru.Remove(el)
			delete(c.entries, key)
			c.expired++
		} else {
			c.lru.MoveToFront(el)
			c.hits++
			// Share the objects but not the slice, so a caller appending
			// to its result cannot corrupt the cache.
			return append([]*oem.Object(nil), e.objs...), true
		}
	}
	c.misses++
	return nil, false
}

func (c *Cache) store(key string, objs []*oem.Object) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// A concurrent miss on the same key beat us here; refresh it.
		el.Value.(*cacheEntry).objs = objs
		el.Value.(*cacheEntry).stored = c.now()
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, objs: objs, stored: c.now()})
	for c.lru.Len() > c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

func (c *Cache) record(hit bool) {
	if c.rec != nil {
		c.rec(c.inner.Name(), hit)
	}
}
