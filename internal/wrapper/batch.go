package wrapper

import (
	"medmaker/internal/msl"
	"medmaker/internal/oem"
)

// BatchQuerier is an optional Source extension: a source that can answer
// several queries in one exchange implements it, and the datamerge
// engine's parameterized-query batching then ships the distinct
// instantiated queries of a query node in batches instead of one network
// round-trip per input tuple. The result slice is parallel to qs —
// results[i] answers qs[i] — which is what lets the engine hash-distribute
// answers back to the originating rows.
//
// Sources that do not implement BatchQuerier still work: the engine (and
// the QueryBatch helper) fall back to one Query call per rule.
type BatchQuerier interface {
	QueryBatch(qs []*msl.Rule) ([][]*oem.Object, error)
}

// QueryBatch answers several queries against src in as few exchanges as
// the source allows: one, when src implements BatchQuerier, otherwise one
// Query call per rule. The returned slice is parallel to qs.
func QueryBatch(src Source, qs []*msl.Rule) ([][]*oem.Object, error) {
	if bq, ok := src.(BatchQuerier); ok {
		return bq.QueryBatch(qs)
	}
	return EachQuery(src, qs)
}

// EachQuery answers qs with one Query call per rule, returning the result
// sets parallel to qs. In-process wrappers use it to implement
// BatchQuerier — accepting a whole batch in one call is what makes the
// engine's batching count a single exchange against them. A failure at
// query i surfaces as a *QueryError carrying the index and source name,
// so callers (and the engine's failure policy) know which query to blame.
func EachQuery(src Source, qs []*msl.Rule) ([][]*oem.Object, error) {
	out := make([][]*oem.Object, len(qs))
	for i, q := range qs {
		objs, err := src.Query(q)
		if err != nil {
			return nil, &QueryError{Source: src.Name(), Index: i, Err: err}
		}
		out[i] = objs
	}
	return out, nil
}
