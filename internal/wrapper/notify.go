package wrapper

// InvalidationNotifier is an optional Source extension for sources whose
// extents can change underneath a caching consumer. A consumer that keeps
// derived state — plan-cache entries, materialized views, answer caches —
// registers a callback; the source fires every registered callback after
// its own invalidation completes. This is what makes invalidation
// transitive across mediation tiers: a tier-2 mediator registered as a
// source in a tier-1 mediator fires its listeners when Invalidate is
// called on it, and the tier-1 mediator's listener drops its own state
// that depended on the tier-2 source.
//
// Callbacks must be safe for concurrent use and must not call back into
// the notifying source (they run after the source released its locks, but
// a re-entrant Invalidate would recurse through the listener chain).
type InvalidationNotifier interface {
	// OnInvalidate registers fn to run after each invalidation of this
	// source. Registrations cannot be removed; keep the subscriber alive
	// as long as the source.
	OnInvalidate(fn func())
}
