package wrapper

import (
	"sync"

	"medmaker/internal/oem"
)

// InvalidationNotifier is an optional Source extension for sources whose
// extents can change underneath a caching consumer. A consumer that keeps
// derived state — plan-cache entries, materialized views, answer caches —
// registers a callback; the source fires every registered callback after
// its own invalidation completes. This is what makes invalidation
// transitive across mediation tiers: a tier-2 mediator registered as a
// source in a tier-1 mediator fires its listeners when Invalidate is
// called on it, and the tier-1 mediator's listener drops its own state
// that depended on the tier-2 source.
//
// Callbacks must be safe for concurrent use and must not call back into
// the notifying source (they run after the source released its locks, but
// a re-entrant Invalidate would recurse through the listener chain).
type InvalidationNotifier interface {
	// OnInvalidate registers fn to run after each invalidation of this
	// source. Registrations cannot be removed; keep the subscriber alive
	// as long as the source.
	OnInvalidate(fn func())
}

// Delta describes one source mutation as the change to the source's
// top-level extent: the objects inserted and the objects deleted. The
// object pointers are the source's own exported objects (or structurally
// equal conversions of them); consumers must treat them as immutable,
// exactly as they treat query answers.
type Delta struct {
	// Source is the emitting source's name.
	Source string
	// Inserted lists the top-level objects the mutation added.
	Inserted []*oem.Object
	// Deleted lists the top-level objects the mutation removed.
	Deleted []*oem.Object
}

// Empty reports a delta carrying no changes.
func (d Delta) Empty() bool { return len(d.Inserted) == 0 && len(d.Deleted) == 0 }

// Notifier is the change-feed capability: an optional Source extension
// for sources that can describe their own mutations. Where
// InvalidationNotifier only says "something changed, drop derived
// state", a Notifier says *what* changed, which lets consumers maintain
// derived state incrementally — the mediator delta-maintains
// materialized-view extents from insert deltas instead of rebuilding
// them, and drops only the mutated source's answer-cache entries.
//
// Callbacks run synchronously inside the mutating call, after the
// source's own state is updated and its locks are released, so a query
// issued after a mutation returns is guaranteed to observe the delta's
// effects on every subscriber. Callbacks must be safe for concurrent
// use (concurrent mutators fire them concurrently) and may query the
// emitting source, but must not mutate it (a re-entrant mutation would
// recurse through the listener chain).
type Notifier interface {
	// OnChange registers fn to receive every subsequent mutation's
	// delta. Registrations cannot be removed; keep the subscriber alive
	// as long as the source.
	OnChange(fn func(Delta))
}

// Feed is an embeddable change-feed broadcaster: the one implementation
// of Notifier subscription and delta fan-out behind every bundled
// mutable source. The zero value is ready to use.
type Feed struct {
	mu   sync.Mutex
	subs []func(Delta)
}

// OnChange implements Notifier.
func (f *Feed) OnChange(fn func(Delta)) {
	f.mu.Lock()
	f.subs = append(f.subs, fn)
	f.mu.Unlock()
}

// Active reports whether any subscriber is registered, so sources can
// skip building deltas nobody consumes.
func (f *Feed) Active() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.subs) > 0
}

// Emit fires every subscriber with d, synchronously, in registration
// order. Call it after the mutation is applied and the source's own
// locks are released. Empty deltas are dropped.
func (f *Feed) Emit(d Delta) {
	if d.Empty() {
		return
	}
	f.mu.Lock()
	subs := f.subs
	f.mu.Unlock()
	for _, fn := range subs {
		fn(d)
	}
}
