package wrapper

import (
	"errors"
	"reflect"
	"testing"

	"medmaker/internal/msl"
	"medmaker/internal/oem"
)

func whoisTops() []*oem.Object {
	return oem.MustParse(`
<&p1, person, set, {&n1, &d1, &rel1, &elm1}>
  <&n1, name, string, 'Joe Chung'>
  <&d1, dept, string, 'CS'>
  <&rel1, relation, string, 'employee'>
  <&elm1, e_mail, string, 'chung@cs'>
<&p2, person, set, {&n2, &d2, &rel2, &y2}>
  <&n2, name, string, 'Nick Naive'>
  <&d2, dept, string, 'CS'>
  <&rel2, relation, string, 'student'>
  <&y2, year, integer, 3>
;`)
}

// TestEvalQw evaluates the paper's wrapper query Qw and checks the shape
// of the returned bind_for_whois objects (Section 3.1 step 1).
func TestEvalQw(t *testing.T) {
	q := msl.MustParseRule(`
	    <bind_for_whois {<bind_for_N N> <bind_for_R R> <bind_for_Rest1 Rest1>}> :-
	        <person {<name N> <dept 'CS'> <relation R> | Rest1}>@whois.`)
	got, err := Eval(q, whoisTops(), oem.NewIDGen("x"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("Qw returned %d objects, want 2", len(got))
	}
	first := got[0]
	if first.Label != "bind_for_whois" {
		t.Fatalf("label %q", first.Label)
	}
	if v, _ := first.Sub("bind_for_N").AtomString(); v != "Joe Chung" {
		t.Fatalf("bind_for_N = %q", v)
	}
	if v, _ := first.Sub("bind_for_R").AtomString(); v != "employee" {
		t.Fatalf("bind_for_R = %q", v)
	}
	rest := first.Sub("bind_for_Rest1")
	if rest == nil || len(rest.Subobjects()) != 1 || rest.Subobjects()[0].Label != "e_mail" {
		t.Fatalf("bind_for_Rest1 = %s", oem.Format(rest))
	}
}

func TestEvalJoinAcrossConjuncts(t *testing.T) {
	tops := oem.MustParse(`
	    <emp, set, {<name, 'a'>, <boss, 'b'>}>
	    <emp, set, {<name, 'b'>, <boss, 'c'>}>
	    <emp, set, {<name, 'c'>, <boss, 'a'>}>`)
	// Who is the boss of a boss of 'a'? Join on B.
	q := msl.MustParseRule(`<answer BB> :-
	    <emp {<name 'a'> <boss B>}>@s AND <emp {<name B> <boss BB>}>@s.`)
	got, err := Eval(q, tops, oem.NewIDGen("x"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("join returned %d objects", len(got))
	}
	if v, _ := got[0].AtomString(); v != "c" {
		t.Fatalf("answer = %q", v)
	}
}

func TestEvalDuplicateElimination(t *testing.T) {
	// Two people in CS; projecting only the dept must give ONE result.
	q := msl.MustParseRule(`<dept_seen D> :- <person {<dept D>}>@whois.`)
	got, err := Eval(q, whoisTops(), oem.NewIDGen("x"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("duplicates not eliminated: %d objects", len(got))
	}
}

func TestEvalEmptyResult(t *testing.T) {
	q := msl.MustParseRule(`<out N> :- <person {<name N> <dept 'EE'>}>@whois.`)
	got, err := Eval(q, whoisTops(), oem.NewIDGen("x"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("expected empty result, got %d", len(got))
	}
}

func TestEvalRejectsPredicates(t *testing.T) {
	q := msl.MustParseRule(`<out N> :- <person {<name N>}>@whois AND decomp(N, L, F).`)
	if _, err := Eval(q, whoisTops(), oem.NewIDGen("x")); err == nil {
		t.Fatal("predicate conjunct evaluated at a source")
	}
}

func TestCheckCapabilities(t *testing.T) {
	full := FullCapabilities()
	none := Capabilities{}
	cases := []struct {
		src     string
		caps    Capabilities
		feature string // "" = allowed
	}{
		{`<out {X}> :- <person {X}>@s.`, none, ""},
		{`<out N> :- <person {<name N> <dept 'CS'>}>@s.`, none, "value conditions"},
		{`<out N> :- <person {<name N> <dept 'CS'>}>@s.`, full, ""},
		{`<out N> :- <person {<name N>} >@s, <emp {<name N>}>@s.`, Capabilities{}, "multi-pattern queries"},
		{`<out N> :- <person {<name N>}>@s, <emp {<name N>}>@s.`, full, ""},
		{`<out T> :- <%title T>@s.`, Capabilities{ValueConditions: true}, "wildcard patterns"},
		{`<out R> :- <person {| R:{<year 3>}}>@s.`, Capabilities{ValueConditions: true}, "rest-variable constraints"},
		{`<out R> :- <person {| R:{<year 3>}}>@s.`, full, ""},
		{`<out N> :- <person {<name N>}>@s AND lt(N, 3).`, full, "external predicates"},
		{`<out V> :- <&p1 person V>@s.`, none, "oid conditions"},
		{`<out V> :- <&p1 person V>@s.`, full, ""},
		{`<out T> :- <book {<%title T>}>@s.`, Capabilities{ValueConditions: true}, "wildcard patterns"},
		// A constant top-level label alone is not a "value condition".
		{`<out {X}> :- <person {X}>@s.`, none, ""},
	}
	for _, c := range cases {
		q := msl.MustParseRule(c.src)
		err := CheckCapabilities(q, c.caps, "s")
		if c.feature == "" {
			if err != nil {
				t.Errorf("%s with %+v: unexpected %v", c.src, c.caps, err)
			}
			continue
		}
		var ue *UnsupportedError
		if !errors.As(err, &ue) {
			t.Errorf("%s with %+v: want UnsupportedError, got %v", c.src, c.caps, err)
			continue
		}
		if ue.Feature != c.feature {
			t.Errorf("%s: feature %q, want %q", c.src, ue.Feature, c.feature)
		}
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	a := &fakeSource{name: "alpha"}
	b := &fakeSource{name: "beta"}
	r.Add(a, b)
	if got, ok := r.Lookup("alpha"); !ok || got != Source(a) {
		t.Fatal("Lookup alpha failed")
	}
	if _, ok := r.Lookup("gamma"); ok {
		t.Fatal("Lookup of absent source succeeded")
	}
	if got := r.Names(); !reflect.DeepEqual(got, []string{"alpha", "beta"}) {
		t.Fatalf("Names = %v", got)
	}
	// Replacement.
	a2 := &fakeSource{name: "alpha"}
	r.Add(a2)
	if got, _ := r.Lookup("alpha"); got != Source(a2) {
		t.Fatal("re-registration did not replace")
	}
}

type fakeSource struct {
	name    string
	queries []*msl.Rule
}

func (f *fakeSource) Name() string               { return f.name }
func (f *fakeSource) Capabilities() Capabilities { return FullCapabilities() }
func (f *fakeSource) Query(q *msl.Rule) ([]*oem.Object, error) {
	f.queries = append(f.queries, q)
	return Eval(q, whoisTops(), oem.NewIDGen("f"))
}

func TestLimitedSource(t *testing.T) {
	inner := &fakeSource{name: "whois"}
	lim := &Limited{Inner: inner, Caps: Capabilities{MultiPattern: true}}
	if lim.Name() != "whois" {
		t.Fatal("Limited name")
	}
	// Condition query rejected without reaching the inner source.
	q := msl.MustParseRule(`<out N> :- <person {<name N> <dept 'CS'>}>@whois.`)
	_, err := lim.Query(q)
	var ue *UnsupportedError
	if !errors.As(err, &ue) {
		t.Fatalf("want UnsupportedError, got %v", err)
	}
	if len(inner.queries) != 0 {
		t.Fatal("rejected query still reached the inner source")
	}
	// Condition-free query passes through.
	free := msl.MustParseRule(`<out N> :- <person {<name N>}>@whois.`)
	got, err := lim.Query(free)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("limited source returned %d objects", len(got))
	}
}

func TestEvalObjVar(t *testing.T) {
	q := msl.MustParseRule(`P :- P:<person {<dept 'CS'>}>@whois.`)
	got, err := Eval(q, whoisTops(), oem.NewIDGen("x"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("objvar query returned %d objects", len(got))
	}
	for _, o := range got {
		if o.Label != "person" {
			t.Fatalf("materialized %q", o.Label)
		}
	}
}
