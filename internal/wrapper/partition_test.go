package wrapper_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"medmaker/internal/msl"
	"medmaker/internal/oem"
	"medmaker/internal/oemstore"
	"medmaker/internal/wrapper"
)

// countingSource wraps a source counting Query calls, so tests can tell
// routing (one member touched) from scattering (all members touched).
type countingSource struct {
	wrapper.Source
	calls   int
	batches int
}

func (c *countingSource) Query(q *msl.Rule) ([]*oem.Object, error) {
	c.calls++
	return c.Source.Query(q)
}

func (c *countingSource) QueryBatchContext(ctx context.Context, qs []*msl.Rule) ([][]*oem.Object, error) {
	c.batches++
	return wrapper.QueryBatchContext(ctx, c.Source, qs)
}

// failingSource always errors.
type failingSource struct{ name string }

func (f *failingSource) Name() string                       { return f.name }
func (f *failingSource) Capabilities() wrapper.Capabilities { return wrapper.FullCapabilities() }
func (f *failingSource) Query(*msl.Rule) ([]*oem.Object, error) {
	return nil, errors.New("shard down")
}

// notifyingSource records invalidation registrations.
type notifyingSource struct {
	wrapper.Source
	fns []func()
}

func (n *notifyingSource) OnInvalidate(fn func()) { n.fns = append(n.fns, fn) }

// partitionedPeople builds a partitioned "whois" over n members, placing
// each person in the member wrapper.ShardIndex selects for its name.
func partitionedPeople(t *testing.T, n, persons int) (*wrapper.Partitioned, []*countingSource) {
	t.Helper()
	members := make([]wrapper.Source, n)
	counters := make([]*countingSource, n)
	stores := make([]*oemstore.Source, n)
	for i := range stores {
		stores[i] = oemstore.New(fmt.Sprintf("whois%d", i))
	}
	gen := oem.NewIDGen("pp")
	for i := 0; i < persons; i++ {
		name := fmt.Sprintf("P%03d", i)
		obj := oem.NewSet(gen.Next(), "person",
			oem.New(gen.Next(), "name", name),
			oem.New(gen.Next(), "dept", "CS"),
		)
		if err := stores[wrapper.ShardIndex(name, n)].Add(obj); err != nil {
			t.Fatal(err)
		}
	}
	for i := range members {
		counters[i] = &countingSource{Source: stores[i]}
		members[i] = counters[i]
	}
	p, err := wrapper.NewPartitioned("whois", "name", members...)
	if err != nil {
		t.Fatal(err)
	}
	return p, counters
}

func TestShardIndexStable(t *testing.T) {
	if wrapper.ShardIndex("anything", 1) != 0 {
		t.Fatal("single shard must map to 0")
	}
	hit := make([]int, 4)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("K%03d", i)
		s := wrapper.ShardIndex(key, 4)
		if s < 0 || s >= 4 {
			t.Fatalf("ShardIndex(%q, 4) = %d out of range", key, s)
		}
		if s != wrapper.ShardIndex(key, 4) {
			t.Fatal("ShardIndex not deterministic")
		}
		hit[s]++
	}
	for s, n := range hit {
		if n == 0 {
			t.Fatalf("shard %d got none of 200 keys: %v", s, hit)
		}
	}
}

func TestShardKeyExtraction(t *testing.T) {
	pat := func(text string) *msl.ObjectPattern {
		q := msl.MustParseRule(text)
		return q.Tail[0].(*msl.PatternConjunct).Pattern
	}
	if key, ok := wrapper.ShardKey(pat(`<out N> :- <person {<name 'Ann'> <dept D>}>@w.`), "name"); !ok || key != "Ann" {
		t.Fatalf("bound key = %q, %v", key, ok)
	}
	if _, ok := wrapper.ShardKey(pat(`<out N> :- <person {<name N>}>@w.`), "name"); ok {
		t.Fatal("variable key must not route")
	}
	if _, ok := wrapper.ShardKey(pat(`<out N> :- <person {<dept 'CS'>}>@w.`), "name"); ok {
		t.Fatal("absent key must not route")
	}
	if _, ok := wrapper.ShardKey(pat(`<out N> :- <person {<name 3>}>@w.`), "name"); ok {
		t.Fatal("non-string key constant must not route")
	}
}

func TestNewPartitionedRejectsBadConfig(t *testing.T) {
	m := oemstore.New("m")
	if _, err := wrapper.NewPartitioned("", "name", m); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := wrapper.NewPartitioned("p", "", m); err == nil {
		t.Fatal("empty key label accepted")
	}
	if _, err := wrapper.NewPartitioned("p", "name"); err == nil {
		t.Fatal("zero members accepted")
	}
	if _, err := wrapper.NewPartitioned("p", "name", m, oemstore.New("m")); err == nil {
		t.Fatal("duplicate member names accepted")
	}
}

func TestPartitionedCapabilities(t *testing.T) {
	full, err := wrapper.NewPartitioned("p", "name", oemstore.New("a"), oemstore.New("b"))
	if err != nil {
		t.Fatal(err)
	}
	caps := full.Capabilities()
	if !caps.ValueConditions || !caps.RestConstraints || !caps.Wildcards {
		t.Fatalf("full members lost capabilities: %+v", caps)
	}
	if caps.MultiPattern {
		t.Fatal("partitioned source must refuse multi-pattern queries (cross-shard joins)")
	}
	limited := &wrapper.Limited{Inner: oemstore.New("c"), Caps: wrapper.Capabilities{MultiPattern: true}}
	mixed, err := wrapper.NewPartitioned("p", "name", oemstore.New("a"), limited)
	if err != nil {
		t.Fatal(err)
	}
	if c := mixed.Capabilities(); c.ValueConditions || c.Wildcards {
		t.Fatalf("capabilities not intersected: %+v", c)
	}
}

func TestPartitionedRoutesBoundKey(t *testing.T) {
	p, counters := partitionedPeople(t, 4, 40)
	name := "P007"
	q := msl.MustParseRule(fmt.Sprintf(`<out X> :- X:<person {<name '%s'>}>@whois.`, name))
	shard, ok := p.ShardFor(q)
	if !ok || shard != wrapper.ShardIndex(name, 4) {
		t.Fatalf("ShardFor = %d, %v; want %d", shard, ok, wrapper.ShardIndex(name, 4))
	}
	objs, err := p.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 1 {
		t.Fatalf("routed query returned %d objects", len(objs))
	}
	for i, c := range counters {
		want := 0
		if i == shard {
			want = 1
		}
		if c.calls != want {
			t.Fatalf("member %d queried %d times, want %d", i, c.calls, want)
		}
	}
}

func TestPartitionedScatterGathersUnion(t *testing.T) {
	p, counters := partitionedPeople(t, 4, 40)
	q := msl.MustParseRule(`<out X> :- X:<person {<dept 'CS'>}>@whois.`)
	if _, ok := p.ShardFor(q); ok {
		t.Fatal("unbound key must scatter")
	}
	objs, err := p.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 40 {
		t.Fatalf("scatter returned %d objects, want the whole extent (40)", len(objs))
	}
	for i, c := range counters {
		if c.calls != 1 {
			t.Fatalf("member %d queried %d times during scatter", i, c.calls)
		}
	}
}

func TestPartitionedShardErrorAttribution(t *testing.T) {
	good := oemstore.New("whois0")
	bad := &failingSource{name: "whois1"}
	p, err := wrapper.NewPartitioned("whois", "name", good, bad)
	if err != nil {
		t.Fatal(err)
	}
	q := msl.MustParseRule(`<out X> :- X:<person {<dept 'CS'>}>@whois.`)
	_, err = p.Query(q)
	var se *wrapper.ShardError
	if !errors.As(err, &se) {
		t.Fatalf("want *ShardError, got %v", err)
	}
	if se.Source != "whois" || se.Member != "whois1" || se.Shard != 1 {
		t.Fatalf("misattributed failure: %+v", se)
	}
}

func TestPartitionedBatch(t *testing.T) {
	p, counters := partitionedPeople(t, 2, 20)
	qs := make([]*msl.Rule, 0, 6)
	for i := 0; i < 5; i++ {
		qs = append(qs, msl.MustParseRule(fmt.Sprintf(`<out X> :- X:<person {<name 'P%03d'>}>@whois.`, i)))
	}
	// One unroutable query scatters inside the same batch.
	qs = append(qs, msl.MustParseRule(`<out X> :- X:<person {<dept 'CS'>}>@whois.`))
	res, err := p.QueryBatchContext(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(qs) {
		t.Fatalf("batch returned %d result sets for %d queries", len(res), len(qs))
	}
	for i := 0; i < 5; i++ {
		if len(res[i]) != 1 {
			t.Fatalf("point query %d returned %d objects", i, len(res[i]))
		}
	}
	if len(res[5]) != 20 {
		t.Fatalf("scattered batch member returned %d objects", len(res[5]))
	}
	// Point queries group into at most one batched exchange per member;
	// per-member Query traffic comes only from the one scatter.
	for i, c := range counters {
		if c.batches > 1 {
			t.Fatalf("member %d saw %d batched exchanges; batching did not group", i, c.batches)
		}
		if c.calls != 1 {
			t.Fatalf("member %d saw %d Query calls, want 1 (the scatter)", i, c.calls)
		}
	}
}

func TestPartitionedCountLabel(t *testing.T) {
	stores := make([]wrapper.Source, 3)
	gen := oem.NewIDGen("cl")
	for i := range stores {
		s := oemstore.New(fmt.Sprintf("w%d", i))
		stores[i] = s
		for j := 0; j < 10; j++ {
			name := fmt.Sprintf("C%d_%d", i, j)
			if err := s.Add(oem.NewSet(gen.Next(), "person", oem.New(gen.Next(), "name", name))); err != nil {
				t.Fatal(err)
			}
		}
	}
	p, err := wrapper.NewPartitioned("p", "name", stores...)
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := p.CountLabel("person"); !ok || n != 30 {
		t.Fatalf("CountLabel = %d, %v", n, ok)
	}
	mixed, err := wrapper.NewPartitioned("p", "name", oemstore.New("a"), &failingSource{name: "b"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := mixed.CountLabel("person"); ok {
		t.Fatal("composite counted despite a countless member")
	}
}

func TestPartitionedForwardsInvalidation(t *testing.T) {
	a := &notifyingSource{Source: oemstore.New("a")}
	b := &notifyingSource{Source: oemstore.New("b")}
	p, err := wrapper.NewPartitioned("p", "name", a, b)
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	p.OnInvalidate(func() { fired++ })
	if len(a.fns) != 1 || len(b.fns) != 1 {
		t.Fatalf("registration not forwarded: %d, %d", len(a.fns), len(b.fns))
	}
	a.fns[0]()
	b.fns[0]()
	if fired != 2 {
		t.Fatalf("callback fired %d times", fired)
	}
}

func TestGatherUnionDedups(t *testing.T) {
	gen := oem.NewIDGen("g")
	mk := func(name string) *oem.Object {
		return oem.NewSet(gen.Next(), "person", oem.New(gen.Next(), "name", name))
	}
	got := wrapper.GatherUnion([][]*oem.Object{
		{mk("a"), mk("b")},
		{mk("b"), mk("c")}, // structural duplicate of b across shards
	})
	if len(got) != 3 {
		t.Fatalf("gather kept %d objects, want 3 after cross-shard dedup", len(got))
	}
}
