// Package wrapper defines the interface between MedMaker mediators and
// the wrappers (translators) that export heterogeneous sources as OEM, as
// in Figure 1.1 of the paper, plus the generic machinery for answering
// MSL queries over a set of top-level OEM objects.
//
// A Source accepts single-source MSL queries — a rule whose tail patterns
// all refer to this source — and returns the materialized head objects.
// Sources advertise Capabilities; a source with limited query power (for
// example, one that cannot evaluate value conditions, Section 3.5 of the
// paper) rejects unsupported queries with an *UnsupportedError, and the
// mediator's optimizer responds by relaxing the query and applying the
// stripped conditions itself (capabilities-based rewriting, [PGH]).
package wrapper

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"medmaker/internal/build"
	"medmaker/internal/match"
	"medmaker/internal/msl"
	"medmaker/internal/oem"
)

// Capabilities describes the query features a source supports beyond bare
// label-pattern retrieval. The zero value is the least capable source.
type Capabilities struct {
	// ValueConditions: constant values inside patterns (selections such
	// as <dept 'CS'>), including constant oid fields.
	ValueConditions bool
	// RestConstraints: conditions attached to rest variables
	// ("| Rest:{<year 3>}").
	RestConstraints bool
	// Wildcards: %label patterns matched at any depth. Without index
	// structures these may be expensive, so some sources do not support
	// them (paper, Section 2).
	Wildcards bool
	// MultiPattern: more than one pattern conjunct in a query tail (a
	// source-local join).
	MultiPattern bool
}

// FullCapabilities supports every query feature.
func FullCapabilities() Capabilities {
	return Capabilities{ValueConditions: true, RestConstraints: true, Wildcards: true, MultiPattern: true}
}

// Source is a queryable wrapper or mediator.
type Source interface {
	// Name is the identifier used after "@" in MSL rules.
	Name() string
	// Capabilities advertises the supported query features.
	Capabilities() Capabilities
	// Query answers a single-source MSL query, materializing its head.
	// Unsupported queries fail with an *UnsupportedError.
	Query(q *msl.Rule) ([]*oem.Object, error)
}

// Counter is an optional Source extension: sources that can cheaply
// report how many top-level objects carry a given label implement it, and
// the cost-based optimizer uses the counts as cold-start cardinality
// estimates — the "sampling" alternative the paper offers for sources
// without statistics (Section 3.5).
type Counter interface {
	// CountLabel returns the number of top-level objects labelled label,
	// and ok=false when the source cannot answer cheaply.
	CountLabel(label string) (n int, ok bool)
}

// UnsupportedError reports a query feature the source cannot evaluate.
type UnsupportedError struct {
	Source  string
	Feature string
}

// Error implements error.
func (e *UnsupportedError) Error() string {
	return fmt.Sprintf("wrapper: source %q does not support %s", e.Source, e.Feature)
}

// CheckCapabilities verifies that a query uses only features in c,
// returning an *UnsupportedError (with srcName) on the first violation.
func CheckCapabilities(q *msl.Rule, c Capabilities, srcName string) error {
	patterns := 0
	for _, conj := range q.Tail {
		pc, ok := conj.(*msl.PatternConjunct)
		if !ok {
			return &UnsupportedError{Source: srcName, Feature: "external predicates"}
		}
		patterns++
		if err := checkPattern(pc.Pattern, c, srcName); err != nil {
			return err
		}
	}
	if patterns > 1 && !c.MultiPattern {
		return &UnsupportedError{Source: srcName, Feature: "multi-pattern queries"}
	}
	return nil
}

func checkPattern(p *msl.ObjectPattern, c Capabilities, srcName string) error {
	if p.Wildcard && !c.Wildcards {
		return &UnsupportedError{Source: srcName, Feature: "wildcard patterns"}
	}
	if !c.ValueConditions {
		if _, isConst := p.Value.(*msl.Const); isConst {
			return &UnsupportedError{Source: srcName, Feature: "value conditions"}
		}
		if _, isConst := p.OID.(*msl.Const); isConst {
			return &UnsupportedError{Source: srcName, Feature: "oid conditions"}
		}
	}
	sp, ok := p.Value.(*msl.SetPattern)
	if !ok {
		return nil
	}
	if len(sp.RestConstraints) > 0 && !c.RestConstraints {
		return &UnsupportedError{Source: srcName, Feature: "rest-variable constraints"}
	}
	for _, e := range sp.Elems {
		if ep, isPat := e.(*msl.ObjectPattern); isPat {
			if err := checkPattern(ep, c, srcName); err != nil {
				return err
			}
		}
	}
	for _, rc := range sp.RestConstraints {
		if err := checkPattern(rc, c, srcName); err != nil {
			return err
		}
	}
	return nil
}

// Eval answers an MSL query over the given top-level objects: every tail
// pattern is matched (joining bindings on shared variables), bindings are
// projected onto the head variables with duplicates eliminated, and one
// set of head objects is built per surviving binding. This is the shared
// evaluation core for wrappers whose native data has been exported as OEM.
// Predicate conjuncts are not evaluated at sources and fail.
func Eval(q *msl.Rule, tops []*oem.Object, gen *oem.IDGen) ([]*oem.Object, error) {
	return EvalWith(q, func(*msl.PatternConjunct) ([]*oem.Object, error) { return tops, nil }, gen)
}

// EvalWith is Eval with a per-conjunct candidate supplier, for wrappers
// that can narrow the top-level objects relevant to a pattern (e.g. a
// relational wrapper selecting rows by index before conversion to OEM).
// The supplied candidates are still fully matched, so over-supplying is
// safe; under-supplying loses answers.
func EvalWith(q *msl.Rule, topsFor func(*msl.PatternConjunct) ([]*oem.Object, error), gen *oem.IDGen) ([]*oem.Object, error) {
	envs := []match.Env{nil}
	// Positive conjuncts first, then negated ones (safe, stratified
	// negation: negated conjuncts filter, binding nothing).
	ordered := make([]*msl.PatternConjunct, 0, len(q.Tail))
	for _, conj := range q.Tail {
		pc, ok := conj.(*msl.PatternConjunct)
		if !ok {
			return nil, fmt.Errorf("wrapper: cannot evaluate non-pattern conjunct %s at a source", conj)
		}
		if !pc.Negated {
			ordered = append(ordered, pc)
		}
	}
	for _, conj := range q.Tail {
		if pc, ok := conj.(*msl.PatternConjunct); ok && pc.Negated {
			ordered = append(ordered, pc)
		}
	}
	for _, pc := range ordered {
		tops, err := topsFor(pc)
		if err != nil {
			return nil, err
		}
		var next []match.Env
		for _, env := range envs {
			got, err := match.Tops(pc.Pattern, pc.ObjVar, tops, env)
			if err != nil {
				return nil, err
			}
			if pc.Negated {
				if len(got) == 0 {
					next = append(next, env)
				}
				continue
			}
			next = append(next, got...)
		}
		if len(next) == 0 {
			return nil, nil
		}
		envs = next
	}
	envs = match.DedupEnvs(envs, q.HeadVars())
	var out []*oem.Object
	for _, env := range envs {
		objs, err := build.Head(q.Head, env, gen)
		if err != nil {
			return nil, err
		}
		out = append(out, objs...)
	}
	return out, nil
}

// Registry resolves source names to Sources; one registry backs each
// mediator. It is safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	sources map[string]Source
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{sources: make(map[string]Source)}
}

// Add registers sources under their own names; re-registering a name
// replaces the previous source.
func (r *Registry) Add(sources ...Source) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range sources {
		r.sources[s.Name()] = s
	}
}

// Lookup returns the source with the given name.
func (r *Registry) Lookup(name string) (Source, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.sources[name]
	return s, ok
}

// Names returns the registered source names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.sources))
	for n := range r.sources {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Limited wraps a source with reduced capabilities: queries that use a
// feature outside caps are rejected even if the inner source could answer
// them. It models the autonomous, capability-poor sources of Section 3.5
// and is used by the capability benchmarks.
type Limited struct {
	Inner Source
	Caps  Capabilities
}

// Name implements Source.
func (l *Limited) Name() string { return l.Inner.Name() }

// Capabilities implements Source.
func (l *Limited) Capabilities() Capabilities { return l.Caps }

// Query implements Source, enforcing the reduced capabilities.
func (l *Limited) Query(q *msl.Rule) ([]*oem.Object, error) {
	if err := CheckCapabilities(q, l.Caps, l.Name()); err != nil {
		return nil, err
	}
	return l.Inner.Query(q)
}

// QueryContext implements ContextSource, enforcing the reduced
// capabilities and forwarding the context to the inner source.
func (l *Limited) QueryContext(ctx context.Context, q *msl.Rule) ([]*oem.Object, error) {
	if err := CheckCapabilities(q, l.Caps, l.Name()); err != nil {
		return nil, err
	}
	return QueryContext(ctx, l.Inner, q)
}

// CountLabel implements Counter by forwarding to the inner source when it
// supports counting.
func (l *Limited) CountLabel(label string) (int, bool) {
	if c, ok := l.Inner.(Counter); ok {
		return c.CountLabel(label)
	}
	return 0, false
}
