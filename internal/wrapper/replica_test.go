package wrapper_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"medmaker/internal/msl"
	"medmaker/internal/oem"
	"medmaker/internal/oemstore"
	"medmaker/internal/wrapper"
)

// replicaMembers builds n answer-equivalent OEM stores r0..r(n-1), each
// holding the same persons extent.
func replicaMembers(t *testing.T, n, persons int) []wrapper.Source {
	t.Helper()
	out := make([]wrapper.Source, n)
	for i := range out {
		store := oemstore.New(fmt.Sprintf("r%d", i))
		gen := oem.NewIDGen(fmt.Sprintf("rm%d", i))
		for p := 0; p < persons; p++ {
			obj := oem.NewSet(gen.Next(), "person",
				oem.New(gen.Next(), "name", fmt.Sprintf("P%03d", p)))
			if err := store.Add(obj); err != nil {
				t.Fatal(err)
			}
		}
		out[i] = store
	}
	return out
}

func mustParse(t *testing.T, text string) *msl.Rule {
	t.Helper()
	q, err := msl.ParseQuery(text)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestReplicatedValidation(t *testing.T) {
	members := replicaMembers(t, 2, 1)
	if _, err := wrapper.NewReplicated("", members...); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := wrapper.NewReplicated("rep"); err == nil {
		t.Fatal("zero members accepted")
	}
	if _, err := wrapper.NewReplicated("r0", members...); err == nil {
		t.Fatal("composite named like a member accepted")
	}
	if _, err := wrapper.NewReplicated("rep", members[0], members[0]); err == nil {
		t.Fatal("duplicate member names accepted")
	}
	if _, err := wrapper.NewReplicated("rep", members...); err != nil {
		t.Fatalf("valid construction failed: %v", err)
	}
}

func TestReplicatedCapabilitiesIntersect(t *testing.T) {
	members := replicaMembers(t, 2, 1)
	limited := &wrapper.Limited{Inner: members[1], Caps: wrapper.Capabilities{ValueConditions: true}}
	rep, err := wrapper.NewReplicated("rep", members[0], limited)
	if err != nil {
		t.Fatal(err)
	}
	caps := rep.Capabilities()
	if !caps.ValueConditions || caps.Wildcards || caps.RestConstraints || caps.MultiPattern {
		t.Fatalf("capabilities not intersected: %+v", caps)
	}
}

func TestReplicatedFailoverOrder(t *testing.T) {
	members := replicaMembers(t, 1, 3)
	rep, err := wrapper.NewReplicated("rep", &failingSource{name: "bad"}, members[0])
	if err != nil {
		t.Fatal(err)
	}
	q := mustParse(t, `X :- X:<person {<name N>}>@rep.`)
	objs, err := rep.Query(q)
	if err != nil {
		t.Fatalf("failover did not reach the healthy member: %v", err)
	}
	if len(objs) != 3 {
		t.Fatalf("got %d objects, want 3", len(objs))
	}
}

func TestReplicatedAllMembersFail(t *testing.T) {
	rep, err := wrapper.NewReplicated("rep",
		&failingSource{name: "bad0"}, &failingSource{name: "bad1"})
	if err != nil {
		t.Fatal(err)
	}
	q := mustParse(t, `X :- X:<person {<name N>}>@rep.`)
	_, qerr := rep.Query(q)
	var rerr *wrapper.ReplicaError
	if !errors.As(qerr, &rerr) {
		t.Fatalf("error is %T, want *ReplicaError: %v", qerr, qerr)
	}
	if rerr.Source != "rep" || rerr.Member != "bad1" {
		t.Fatalf("error attributes the wrong member: %+v", rerr)
	}
}

func TestReplicatedBatchFailover(t *testing.T) {
	members := replicaMembers(t, 1, 3)
	rep, err := wrapper.NewReplicated("rep", &failingSource{name: "bad"}, members[0])
	if err != nil {
		t.Fatal(err)
	}
	qs := []*msl.Rule{
		mustParse(t, `X :- X:<person {<name 'P000'>}>@rep.`),
		mustParse(t, `X :- X:<person {<name 'P002'>}>@rep.`),
	}
	res, err := rep.QueryBatchContext(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || len(res[0]) != 1 || len(res[1]) != 1 {
		t.Fatalf("batch answers wrong: %v", res)
	}
}

func TestReplicatedCountLabel(t *testing.T) {
	members := replicaMembers(t, 2, 5)
	rep, err := wrapper.NewReplicated("rep", members...)
	if err != nil {
		t.Fatal(err)
	}
	n, ok := rep.CountLabel("person")
	if !ok || n != 5 {
		t.Fatalf("CountLabel = %d, %v; want 5, true", n, ok)
	}
}
