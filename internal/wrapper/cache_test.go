package wrapper

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"medmaker/internal/msl"
	"medmaker/internal/oem"
)

// nameQuery builds a distinct cacheable query per name.
func nameQuery(name string) *msl.Rule {
	return msl.MustParseRule(fmt.Sprintf(
		`<out R> :- <person {<name %s> <relation R>}>@whois.`, oem.QuoteAtom(name)))
}

func TestCacheHitMiss(t *testing.T) {
	inner := &fakeSource{name: "whois"}
	c := NewCache(inner, CacheOptions{})
	q := nameQuery("Joe Chung")
	first, err := c.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(inner.queries) != 1 {
		t.Fatalf("inner source saw %d queries, want 1", len(inner.queries))
	}
	if len(first) != len(second) {
		t.Fatalf("cached answer has %d objects, fresh answer %d", len(second), len(first))
	}
	for i := range first {
		if !first[i].StructuralEqual(second[i]) {
			t.Fatalf("cached object %d differs:\n%s\nvs\n%s",
				i, oem.Format(first[i]), oem.Format(second[i]))
		}
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", s)
	}
}

// TestCacheAlphaEquivalence: queries identical up to variable naming share
// one entry, since repeated planning renames variables freely.
func TestCacheAlphaEquivalence(t *testing.T) {
	inner := &fakeSource{name: "whois"}
	c := NewCache(inner, CacheOptions{})
	a := msl.MustParseRule(`<out R> :- <person {<name N> <relation R>}>@whois.`)
	b := msl.MustParseRule(`<out Rel> :- <person {<name Who> <relation Rel>}>@whois.`)
	if _, err := c.Query(a); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(b); err != nil {
		t.Fatal(err)
	}
	if len(inner.queries) != 1 {
		t.Fatalf("alpha-equivalent queries reached the source %d times, want 1", len(inner.queries))
	}
	if NormalizeQuery(a) != NormalizeQuery(b) {
		t.Fatalf("normalized forms differ:\n%s\nvs\n%s", NormalizeQuery(a), NormalizeQuery(b))
	}
	// Structurally different queries must NOT collide.
	d := msl.MustParseRule(`<out R> :- <person {<dept N> <relation R>}>@whois.`)
	if NormalizeQuery(a) == NormalizeQuery(d) {
		t.Fatal("structurally different queries normalized to the same key")
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	inner := &fakeSource{name: "whois"}
	c := NewCache(inner, CacheOptions{TTL: time.Minute, Clock: func() time.Time { return now }})
	q := nameQuery("Joe Chung")
	if _, err := c.Query(q); err != nil {
		t.Fatal(err)
	}
	now = now.Add(30 * time.Second)
	if _, err := c.Query(q); err != nil {
		t.Fatal(err)
	}
	if len(inner.queries) != 1 {
		t.Fatalf("fresh entry refetched: %d inner queries", len(inner.queries))
	}
	now = now.Add(time.Hour)
	if _, err := c.Query(q); err != nil {
		t.Fatal(err)
	}
	if len(inner.queries) != 2 {
		t.Fatalf("expired entry served: %d inner queries, want 2", len(inner.queries))
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 2 {
		t.Fatalf("stats = %+v, want 1 hit / 2 misses", s)
	}
}

func TestCacheInvalidate(t *testing.T) {
	inner := &fakeSource{name: "whois"}
	c := NewCache(inner, CacheOptions{})
	q := nameQuery("Joe Chung")
	if _, err := c.Query(q); err != nil {
		t.Fatal(err)
	}
	c.Invalidate("")
	if s := c.Stats(); s.Entries != 0 {
		t.Fatalf("entries after Invalidate = %d", s.Entries)
	}
	if _, err := c.Query(q); err != nil {
		t.Fatal(err)
	}
	if len(inner.queries) != 2 {
		t.Fatalf("invalidated entry still served: %d inner queries, want 2", len(inner.queries))
	}
}

func TestCacheInvalidateBySource(t *testing.T) {
	inner := &fakeSource{name: "whois"}
	c := NewCache(inner, CacheOptions{})
	q := nameQuery("Joe Chung")
	if _, err := c.Query(q); err != nil {
		t.Fatal(err)
	}
	// Another source's name must not touch this cache.
	c.Invalidate("cs")
	if s := c.Stats(); s.Entries != 1 {
		t.Fatalf("entries after foreign Invalidate = %d, want 1", s.Entries)
	}
	// The inner source's own name drops it.
	c.Invalidate("whois")
	if s := c.Stats(); s.Entries != 0 {
		t.Fatalf("entries after Invalidate(whois) = %d, want 0", s.Entries)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	inner := &fakeSource{name: "whois"}
	c := NewCache(inner, CacheOptions{MaxEntries: 2})
	qa, qb, qc := nameQuery("A"), nameQuery("B"), nameQuery("C")
	for _, q := range []*msl.Rule{qa, qb} {
		if _, err := c.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	// Touch A so B becomes the LRU victim when C arrives.
	if _, err := c.Query(qa); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(qc); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Evictions != 1 || s.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction / 2 entries", s)
	}
	// A survived (it was recently used); B was evicted.
	before := len(inner.queries)
	if _, err := c.Query(qa); err != nil {
		t.Fatal(err)
	}
	if len(inner.queries) != before {
		t.Fatal("recently used entry was evicted")
	}
	if _, err := c.Query(qb); err != nil {
		t.Fatal(err)
	}
	if len(inner.queries) != before+1 {
		t.Fatal("LRU entry was not evicted")
	}
}

// TestCacheExpiredVsEvicted: removal by TTL and removal by the capacity
// bound are distinct counters — one asks for a longer TTL, the other for
// a bigger cache.
func TestCacheExpiredVsEvicted(t *testing.T) {
	now := time.Unix(1000, 0)
	inner := &fakeSource{name: "whois"}
	c := NewCache(inner, CacheOptions{MaxEntries: 2, TTL: time.Minute, Clock: func() time.Time { return now }})
	qa, qb, qc := nameQuery("A"), nameQuery("B"), nameQuery("C")

	// Fill to capacity, then displace the LRU entry: one eviction.
	for _, q := range []*msl.Rule{qa, qb, qc} {
		if _, err := c.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	if s := c.Stats(); s.Evictions != 1 || s.Expired != 0 {
		t.Fatalf("after capacity displacement: %+v, want 1 eviction / 0 expired", s)
	}

	// Age everything past the TTL and re-ask a resident key: one expiry,
	// still one eviction.
	now = now.Add(time.Hour)
	if _, err := c.Query(qc); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Evictions != 1 || s.Expired != 1 {
		t.Fatalf("after TTL removal: %+v, want 1 eviction / 1 expired", s)
	}
	if len(inner.queries) != 4 {
		t.Fatalf("inner queries = %d, want 4 (3 cold + 1 refresh)", len(inner.queries))
	}
}

// gatedSource blocks every query until released, counting calls, so a
// test can hold a fetch in flight while other callers pile up.
type gatedSource struct {
	mu      sync.Mutex
	calls   int
	release chan struct{}
}

func (g *gatedSource) Name() string               { return "whois" }
func (g *gatedSource) Capabilities() Capabilities { return FullCapabilities() }
func (g *gatedSource) Query(q *msl.Rule) ([]*oem.Object, error) {
	g.mu.Lock()
	g.calls++
	g.mu.Unlock()
	<-g.release
	return Eval(q, whoisTops(), oem.NewIDGen("f"))
}

// TestCacheSingleflight: concurrent misses on one key reach the source
// exactly once; every caller gets the answer.
func TestCacheSingleflight(t *testing.T) {
	inner := &gatedSource{release: make(chan struct{})}
	c := NewCache(inner, CacheOptions{})
	q := nameQuery("Joe Chung")

	const callers = 16
	results := make([][]*oem.Object, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.Query(q)
		}(i)
	}
	// Whenever the callers release relative to each other, the atomic
	// lookup-or-join guarantees a single fetch: either a caller joins the
	// leader's flight, or it arrives after the answer was stored and hits.
	close(inner.release)
	wg.Wait()

	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if len(results[i]) == 0 {
			t.Fatalf("caller %d got no objects", i)
		}
	}
	inner.mu.Lock()
	calls := inner.calls
	inner.mu.Unlock()
	if calls != 1 {
		t.Fatalf("source saw %d queries for one key, want 1 (singleflight)", calls)
	}
	if s := c.Stats(); s.Hits+s.Misses != callers {
		t.Fatalf("stats = %+v, want hits+misses = %d", s, callers)
	}
}

// TestCacheSingleflightLeaderError: a failed fetch is not fanned out as
// the shared answer — a waiter retries, and the retry can succeed.
func TestCacheSingleflightLeaderError(t *testing.T) {
	calls := 0
	var mu sync.Mutex
	inner := &flakySource{name: "whois", fail: func() bool {
		mu.Lock()
		defer mu.Unlock()
		calls++
		return calls == 1
	}}
	c := NewCache(inner, CacheOptions{})
	q := nameQuery("Joe Chung")
	if _, err := c.Query(q); err == nil {
		t.Fatal("first query should fail")
	}
	objs, err := c.Query(q)
	if err != nil {
		t.Fatalf("retry after failed leader: %v", err)
	}
	if len(objs) == 0 {
		t.Fatal("retry returned no objects")
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	calls := 0
	inner := &flakySource{name: "whois", fail: func() bool { calls++; return calls == 1 }}
	c := NewCache(inner, CacheOptions{})
	q := nameQuery("Joe Chung")
	if _, err := c.Query(q); err == nil {
		t.Fatal("first query should fail")
	}
	objs, err := c.Query(q)
	if err != nil {
		t.Fatalf("second query: %v", err)
	}
	if len(objs) == 0 {
		t.Fatal("second query returned no objects")
	}
	if s := c.Stats(); s.Entries != 1 {
		t.Fatalf("entries = %d, want 1 (only the successful answer cached)", s.Entries)
	}
}

// flakySource fails queries on demand.
type flakySource struct {
	name string
	fail func() bool
}

func (f *flakySource) Name() string               { return f.name }
func (f *flakySource) Capabilities() Capabilities { return FullCapabilities() }
func (f *flakySource) Query(q *msl.Rule) ([]*oem.Object, error) {
	if f.fail() {
		return nil, errors.New("transient failure")
	}
	return Eval(q, whoisTops(), oem.NewIDGen("f"))
}

func TestCacheRecorder(t *testing.T) {
	type obs struct {
		source string
		hit    bool
	}
	var seen []obs
	inner := &fakeSource{name: "whois"}
	c := NewCache(inner, CacheOptions{Recorder: func(source string, hit bool) {
		seen = append(seen, obs{source, hit})
	}})
	q := nameQuery("Joe Chung")
	c.Query(q)
	c.Query(q)
	want := []obs{{"whois", false}, {"whois", true}}
	if len(seen) != len(want) {
		t.Fatalf("recorder saw %d lookups, want %d", len(seen), len(want))
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("lookup %d = %+v, want %+v", i, seen[i], want[i])
		}
	}
}

// batchingSource counts batch exchanges to verify the cache forwards
// misses in one exchange.
type batchingSource struct {
	fakeSource
	batches [][]*msl.Rule
}

func (b *batchingSource) QueryBatch(qs []*msl.Rule) ([][]*oem.Object, error) {
	b.batches = append(b.batches, qs)
	out := make([][]*oem.Object, len(qs))
	for i, q := range qs {
		objs, err := Eval(q, whoisTops(), oem.NewIDGen("f"))
		if err != nil {
			return nil, err
		}
		out[i] = objs
	}
	return out, nil
}

func TestCacheQueryBatch(t *testing.T) {
	inner := &batchingSource{fakeSource: fakeSource{name: "whois"}}
	c := NewCache(inner, CacheOptions{})
	// Warm one of the three queries, then batch all three: the two misses
	// travel together in a single exchange.
	qa, qb, qc := nameQuery("Joe Chung"), nameQuery("Nick Naive"), nameQuery("Missing")
	warm, err := c.Query(qa)
	if err != nil {
		t.Fatal(err)
	}
	results, err := c.QueryBatch([]*msl.Rule{qa, qb, qc})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("batch returned %d result sets", len(results))
	}
	if len(results[0]) != len(warm) {
		t.Fatalf("hit result has %d objects, want %d", len(results[0]), len(warm))
	}
	if len(inner.batches) != 1 || len(inner.batches[0]) != 2 {
		t.Fatalf("inner batches = %d (first carrying %d queries), want one batch of 2 misses",
			len(inner.batches), len(inner.batches[0]))
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 3 || s.Entries != 3 {
		t.Fatalf("stats = %+v, want 1 hit / 3 misses / 3 entries", s)
	}
	// Second identical batch: all hits, no further exchanges.
	if _, err := c.QueryBatch([]*msl.Rule{qa, qb, qc}); err != nil {
		t.Fatal(err)
	}
	if len(inner.batches) != 1 {
		t.Fatalf("all-hit batch still reached the source (%d batches)", len(inner.batches))
	}
}

// TestQueryBatchFallback: the package helper loops per query when the
// source lacks the BatchQuerier capability, preserving result order.
func TestQueryBatchFallback(t *testing.T) {
	inner := &fakeSource{name: "whois"}
	qs := []*msl.Rule{nameQuery("Joe Chung"), nameQuery("Nick Naive")}
	results, err := QueryBatch(inner, qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d result sets", len(results))
	}
	if len(inner.queries) != 2 {
		t.Fatalf("fallback issued %d queries, want 2", len(inner.queries))
	}
	if len(results[0]) == 0 || len(results[1]) == 0 {
		t.Fatalf("result sets empty: %d, %d", len(results[0]), len(results[1]))
	}
}
