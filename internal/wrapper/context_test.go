package wrapper

import (
	"context"
	"errors"
	"testing"
	"time"

	"medmaker/internal/msl"
	"medmaker/internal/oem"
)

// errOnThird answers queries until the third, which fails.
type errOnThird struct {
	calls int
}

func (s *errOnThird) Name() string               { return "third" }
func (s *errOnThird) Capabilities() Capabilities { return FullCapabilities() }

func (s *errOnThird) Query(q *msl.Rule) ([]*oem.Object, error) {
	s.calls++
	if s.calls == 3 {
		return nil, errors.New("disk on fire")
	}
	return nil, nil
}

func TestEachQueryErrorCarriesIndexAndSource(t *testing.T) {
	qs := make([]*msl.Rule, 5)
	for i := range qs {
		qs[i] = msl.MustParseRule(`N :- <person {<name N>}>@third.`)
	}
	_, err := EachQuery(&errOnThird{}, qs)
	var qe *QueryError
	if !errors.As(err, &qe) {
		t.Fatalf("error = %v, want *QueryError", err)
	}
	if qe.Index != 2 || qe.Source != "third" {
		t.Fatalf("QueryError = {Source: %q, Index: %d}, want {third, 2}", qe.Source, qe.Index)
	}
	if qe.Unwrap() == nil || qe.Unwrap().Error() != "disk on fire" {
		t.Fatalf("QueryError does not unwrap to the source failure: %v", qe.Unwrap())
	}
}

func TestEachQueryContextStopsBetweenQueries(t *testing.T) {
	src := &errOnThird{}
	qs := make([]*msl.Rule, 5)
	for i := range qs {
		qs[i] = msl.MustParseRule(`N :- <person {<name N>}>@third.`)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := EachQueryContext(ctx, src, qs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if src.calls != 0 {
		t.Fatalf("cancelled batch still issued %d queries", src.calls)
	}
}

// blindSleeper ignores contexts and sleeps before answering.
type blindSleeper struct {
	delay time.Duration
}

func (s *blindSleeper) Name() string               { return "sleeper" }
func (s *blindSleeper) Capabilities() Capabilities { return FullCapabilities() }

func (s *blindSleeper) Query(q *msl.Rule) ([]*oem.Object, error) {
	time.Sleep(s.delay)
	return []*oem.Object{oem.New("&s", "ok", "yes")}, nil
}

func TestQueryContextBoundsContextBlindSource(t *testing.T) {
	q := msl.MustParseRule(`N :- <ok N>@sleeper.`)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := QueryContext(ctx, &blindSleeper{delay: 500 * time.Millisecond}, q)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 250*time.Millisecond {
		t.Fatalf("caller waited %v on a context-blind source", elapsed)
	}
}

func TestQueryContextWithoutDeadlineCallsDirect(t *testing.T) {
	// A Background context must not spawn a goroutine per query — the
	// fallback only engages when the context can actually end.
	q := msl.MustParseRule(`N :- <ok N>@sleeper.`)
	objs, err := QueryContext(context.Background(), &blindSleeper{}, q)
	if err != nil || len(objs) != 1 {
		t.Fatalf("direct call: objs=%d err=%v", len(objs), err)
	}
}
