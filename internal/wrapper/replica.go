package wrapper

import (
	"context"
	"fmt"

	"medmaker/internal/msl"
	"medmaker/internal/oem"
)

// Replicated is the interface the engine uses to recognize a source
// backed by N answer-equivalent replicas. Unlike Sharded members —
// which each hold a disjoint slice of the extent — every replica holds
// the whole extent, so any single member can answer any query. The
// engine bypasses the composite's own Query and routes each exchange to
// the member with the best observed latency/error score, failing over to
// the next-best member on error (hedged execution under the run's
// ExecPolicy).
type Replicated interface {
	Source
	// Replicas returns the member sources in registration order. The
	// slice is owned by the source; callers must not mutate it.
	Replicas() []Source
}

// ReplicaError attributes a failure inside a replicated source to the
// member that produced it.
type ReplicaError struct {
	// Source is the replicated source's logical name.
	Source string
	// Member is the failing member's name.
	Member string
	// Err is the member's error.
	Err error
}

// Error implements error.
func (e *ReplicaError) Error() string {
	return fmt.Sprintf("wrapper: replicated source %q member %s: %v", e.Source, e.Member, e.Err)
}

// Unwrap exposes the member's error to errors.Is/As.
func (e *ReplicaError) Unwrap() error { return e.Err }

// Replicas presents N answer-equivalent member sources as one logical
// source. Capabilities are the field-wise intersection of the members'
// capabilities — including MultiPattern, since any member alone answers
// the whole query (contrast Partitioned, where a per-shard join would
// miss cross-shard pairs).
//
// When registered in a mediator, the engine recognizes Replicated and
// routes each exchange itself: members are ranked by the latency and
// error-rate EWMAs the statistics store accumulated for them, the
// best-scoring healthy member is tried first, and an error fails over to
// the next member instead of failing the exchange. Direct calls to Query
// and QueryContext try members in registration order, failing over the
// same way; only if every member fails does the call fail, with a
// *ReplicaError naming the last member tried.
type Replicas struct {
	name    string
	members []Source
	caps    Capabilities
}

var (
	_ Source               = (*Replicas)(nil)
	_ ContextSource        = (*Replicas)(nil)
	_ ContextBatchQuerier  = (*Replicas)(nil)
	_ Counter              = (*Replicas)(nil)
	_ Replicated           = (*Replicas)(nil)
	_ InvalidationNotifier = (*Replicas)(nil)
	_ Notifier             = (*Replicas)(nil)
)

// NewReplicated builds the logical source name over answer-equivalent
// members. Member order is the failover order used before any routing
// statistics exist.
func NewReplicated(name string, members ...Source) (*Replicas, error) {
	if name == "" {
		return nil, fmt.Errorf("wrapper: replicated source needs a name")
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("wrapper: replicated source %q needs at least one member", name)
	}
	caps := FullCapabilities()
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if m.Name() == name {
			return nil, fmt.Errorf("wrapper: replicated source %q cannot contain a member with its own name", name)
		}
		if seen[m.Name()] {
			return nil, fmt.Errorf("wrapper: replicated source %q has two members named %q", name, m.Name())
		}
		seen[m.Name()] = true
		mc := m.Capabilities()
		caps.ValueConditions = caps.ValueConditions && mc.ValueConditions
		caps.RestConstraints = caps.RestConstraints && mc.RestConstraints
		caps.Wildcards = caps.Wildcards && mc.Wildcards
		caps.MultiPattern = caps.MultiPattern && mc.MultiPattern
	}
	return &Replicas{name: name, members: members, caps: caps}, nil
}

// Name implements Source.
func (r *Replicas) Name() string { return r.name }

// Capabilities implements Source: the members' field-wise intersection.
func (r *Replicas) Capabilities() Capabilities { return r.caps }

// Replicas implements Replicated.
func (r *Replicas) Replicas() []Source { return r.members }

// Query implements Source.
func (r *Replicas) Query(q *msl.Rule) ([]*oem.Object, error) {
	return r.QueryContext(context.Background(), q)
}

// QueryContext implements ContextSource: members are tried in
// registration order and an error fails over to the next; only if every
// member fails does the query fail.
func (r *Replicas) QueryContext(ctx context.Context, q *msl.Rule) ([]*oem.Object, error) {
	if err := CheckCapabilities(q, r.caps, r.name); err != nil {
		return nil, err
	}
	var lastErr error
	for _, m := range r.members {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		objs, err := QueryContext(ctx, m, q)
		if err == nil {
			return objs, nil
		}
		lastErr = &ReplicaError{Source: r.name, Member: m.Name(), Err: err}
	}
	return nil, lastErr
}

// QueryBatchContext implements ContextBatchQuerier with the same
// failover: the whole batch ships to one member, moving to the next on
// error. The result slice is parallel to qs.
func (r *Replicas) QueryBatchContext(ctx context.Context, qs []*msl.Rule) ([][]*oem.Object, error) {
	for i, q := range qs {
		if err := CheckCapabilities(q, r.caps, r.name); err != nil {
			return nil, &QueryError{Source: r.name, Index: i, Err: err}
		}
	}
	var lastErr error
	for _, m := range r.members {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := QueryBatchContext(ctx, m, qs)
		if err == nil {
			if len(res) != len(qs) {
				return nil, fmt.Errorf("wrapper: replicated source %q member %s answered %d of %d queries",
					r.name, m.Name(), len(res), len(qs))
			}
			return res, nil
		}
		lastErr = &ReplicaError{Source: r.name, Member: m.Name(), Err: err}
	}
	return nil, lastErr
}

// CountLabel implements Counter: the first member that can count answers
// for the whole extent (every replica holds it all).
func (r *Replicas) CountLabel(label string) (int, bool) {
	for _, m := range r.members {
		if c, ok := m.(Counter); ok {
			if n, ok := c.CountLabel(label); ok {
				return n, true
			}
		}
	}
	return 0, false
}

// OnInvalidate implements InvalidationNotifier by forwarding the
// registration to every member that notifies: replicas are assumed to
// converge, but any member's mutation invalidates derived state.
func (r *Replicas) OnInvalidate(fn func()) {
	for _, m := range r.members {
		if n, ok := m.(InvalidationNotifier); ok {
			n.OnInvalidate(fn)
		}
	}
}

// OnChange implements Notifier by forwarding the first feed-capable
// member's deltas, re-labelled with the composite's name. One feed
// suffices: members are answer-equivalent, so the same logical mutation
// reaches every replica and forwarding all feeds would deliver N copies
// of each delta.
func (r *Replicas) OnChange(fn func(Delta)) {
	for _, m := range r.members {
		n, ok := m.(Notifier)
		if !ok {
			continue
		}
		n.OnChange(func(d Delta) {
			d.Source = r.name
			fn(d)
		})
		return
	}
}
