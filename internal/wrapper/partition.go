package wrapper

import (
	"context"
	"fmt"
	"hash/fnv"

	"medmaker/internal/msl"
	"medmaker/internal/oem"
)

// Sharded is the interface the engine uses to recognize a source whose
// extent is horizontally partitioned over member sources. The engine
// bypasses the composite's own Query and scatters (or routes) itself, so
// each member exchange runs under the run's failure policy with
// per-member error attribution.
type Sharded interface {
	Source
	// Members returns the member sources in shard order. The slice is
	// owned by the source; callers must not mutate it.
	Members() []Source
	// KeyLabel is the subobject label whose value the extent is hashed
	// on (e.g. "name"): every top-level object lives in the member
	// ShardIndex(key, len(Members())) selects.
	KeyLabel() string
	// ShardFor reports the single member that can answer q — a query
	// whose pattern binds the partition key to a constant — and ok=false
	// when q must scatter to every member.
	ShardFor(q *msl.Rule) (int, bool)
}

// ShardIndex maps a partition-key value to a member index in [0, n) with
// a stable FNV-1a hash, so data loaders and query routing agree across
// processes and runs.
func ShardIndex(key string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	return int(h.Sum64() % uint64(n))
}

// ShardKey extracts the constant the pattern binds the partition key to:
// a non-wildcard element <keyLabel 'v'> of the pattern's top-level set.
// ok=false means the pattern does not pin the key and the query must
// scatter.
func ShardKey(p *msl.ObjectPattern, keyLabel string) (string, bool) {
	sp, ok := p.Value.(*msl.SetPattern)
	if !ok {
		return "", false
	}
	for _, e := range sp.Elems {
		ep, isPat := e.(*msl.ObjectPattern)
		if !isPat || ep.Wildcard || ep.LabelName() != keyLabel {
			continue
		}
		if c, isConst := ep.Value.(*msl.Const); isConst {
			if s, isStr := c.Value.(oem.String); isStr {
				return string(s), true
			}
		}
	}
	return "", false
}

// ShardError attributes a failure inside a partitioned source to the
// member shard that produced it.
type ShardError struct {
	// Source is the partitioned source's logical name.
	Source string
	// Member is the failing member's name; Shard its index.
	Member string
	Shard  int
	// Err is the member's error.
	Err error
}

// Error implements error.
func (e *ShardError) Error() string {
	return fmt.Sprintf("wrapper: partitioned source %q shard %d (%s): %v", e.Source, e.Shard, e.Member, e.Err)
}

// Unwrap exposes the member's error to errors.Is/As.
func (e *ShardError) Unwrap() error { return e.Err }

// Partitioned presents N member sources holding a hash-partitioned
// extent as one logical source: every top-level object lives in exactly
// one member, chosen by ShardIndex over the value of its KeyLabel
// subobject. Queries that bind the key to a constant route to the one
// member that can hold matches; all other queries scatter to every
// member and gather the union.
//
// Capabilities are the intersection of the members' capabilities with
// MultiPattern forced off: a multi-pattern query is a source-local join,
// and evaluating it per shard would miss pairs that straddle shards —
// single-pattern queries are union-safe because each candidate object is
// wholly inside one member. The mediator's optimizer reacts as it does
// to any capability-poor source, decomposing joins above the partition.
//
// When registered in a mediator, the engine recognizes Partitioned (via
// Sharded) and performs the scatter itself on its worker pool under the
// run's ExecPolicy, so one failed shard yields a partial, Incomplete
// result instead of failing the query. Direct calls to Query and
// QueryContext scatter here instead, and any member failure fails the
// whole query with a *ShardError naming the shard.
type Partitioned struct {
	name     string
	keyLabel string
	members  []Source
	caps     Capabilities
}

var (
	_ Source               = (*Partitioned)(nil)
	_ ContextSource        = (*Partitioned)(nil)
	_ ContextBatchQuerier  = (*Partitioned)(nil)
	_ Counter              = (*Partitioned)(nil)
	_ Sharded              = (*Partitioned)(nil)
	_ InvalidationNotifier = (*Partitioned)(nil)
	_ Notifier             = (*Partitioned)(nil)
)

// NewPartitioned builds the logical source name over members, partitioned
// by the value of the keyLabel subobject. Member order is shard order and
// must match the order the data was partitioned in.
func NewPartitioned(name, keyLabel string, members ...Source) (*Partitioned, error) {
	if name == "" {
		return nil, fmt.Errorf("wrapper: partitioned source needs a name")
	}
	if keyLabel == "" {
		return nil, fmt.Errorf("wrapper: partitioned source %q needs a partition key label", name)
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("wrapper: partitioned source %q needs at least one member", name)
	}
	caps := FullCapabilities()
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if seen[m.Name()] {
			return nil, fmt.Errorf("wrapper: partitioned source %q has two members named %q", name, m.Name())
		}
		seen[m.Name()] = true
		mc := m.Capabilities()
		caps.ValueConditions = caps.ValueConditions && mc.ValueConditions
		caps.RestConstraints = caps.RestConstraints && mc.RestConstraints
		caps.Wildcards = caps.Wildcards && mc.Wildcards
	}
	caps.MultiPattern = false
	return &Partitioned{name: name, keyLabel: keyLabel, members: members, caps: caps}, nil
}

// Name implements Source.
func (p *Partitioned) Name() string { return p.name }

// Capabilities implements Source: the members' intersection, multi-pattern
// queries excluded (see the type comment).
func (p *Partitioned) Capabilities() Capabilities { return p.caps }

// Members implements Sharded.
func (p *Partitioned) Members() []Source { return p.members }

// KeyLabel implements Sharded.
func (p *Partitioned) KeyLabel() string { return p.keyLabel }

// ShardFor implements Sharded: a query routes when its single positive
// pattern conjunct pins the partition key to a constant.
func (p *Partitioned) ShardFor(q *msl.Rule) (int, bool) {
	var pat *msl.ObjectPattern
	for _, conj := range q.Tail {
		pc, ok := conj.(*msl.PatternConjunct)
		if !ok || pc.Negated {
			return 0, false
		}
		if pat != nil {
			return 0, false // multi-pattern: should not arrive, never route
		}
		pat = pc.Pattern
	}
	if pat == nil {
		return 0, false
	}
	key, ok := ShardKey(pat, p.keyLabel)
	if !ok {
		return 0, false
	}
	return ShardIndex(key, len(p.members)), true
}

// Query implements Source.
func (p *Partitioned) Query(q *msl.Rule) ([]*oem.Object, error) {
	return p.QueryContext(context.Background(), q)
}

// QueryContext implements ContextSource: route to the key's shard, or
// scatter to every member concurrently and gather the union in member
// order. Gathered answers are structurally deduplicated, matching what a
// single source holding the whole extent would return (its binding-level
// duplicate elimination spans shards there).
func (p *Partitioned) QueryContext(ctx context.Context, q *msl.Rule) ([]*oem.Object, error) {
	if err := CheckCapabilities(q, p.caps, p.name); err != nil {
		return nil, err
	}
	if shard, ok := p.ShardFor(q); ok {
		objs, err := QueryContext(ctx, p.members[shard], q)
		if err != nil {
			return nil, &ShardError{Source: p.name, Member: p.members[shard].Name(), Shard: shard, Err: err}
		}
		return objs, nil
	}
	perShard := make([][]*oem.Object, len(p.members))
	errs := make([]error, len(p.members))
	done := make(chan int, len(p.members))
	for i := range p.members {
		go func(i int) {
			perShard[i], errs[i] = QueryContext(ctx, p.members[i], q)
			done <- i
		}(i)
	}
	for range p.members {
		<-done
	}
	for i, err := range errs {
		if err != nil {
			return nil, &ShardError{Source: p.name, Member: p.members[i].Name(), Shard: i, Err: err}
		}
	}
	return gatherUnion(perShard), nil
}

// QueryBatchContext implements ContextBatchQuerier: routable queries are
// grouped into one sub-batch per member (so a batch of k point queries
// still costs at most one exchange per member), the rest scatter
// individually. The result slice is parallel to qs.
func (p *Partitioned) QueryBatchContext(ctx context.Context, qs []*msl.Rule) ([][]*oem.Object, error) {
	out := make([][]*oem.Object, len(qs))
	groups := make([][]int, len(p.members))
	for i, q := range qs {
		if err := CheckCapabilities(q, p.caps, p.name); err != nil {
			return nil, &QueryError{Source: p.name, Index: i, Err: err}
		}
		if shard, ok := p.ShardFor(q); ok {
			groups[shard] = append(groups[shard], i)
			continue
		}
		objs, err := p.QueryContext(ctx, q)
		if err != nil {
			return nil, &QueryError{Source: p.name, Index: i, Err: err}
		}
		out[i] = objs
	}
	for shard, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		sub := make([]*msl.Rule, len(idxs))
		for j, i := range idxs {
			sub[j] = qs[i]
		}
		res, err := QueryBatchContext(ctx, p.members[shard], sub)
		if err != nil {
			return nil, &ShardError{Source: p.name, Member: p.members[shard].Name(), Shard: shard, Err: err}
		}
		if len(res) != len(idxs) {
			return nil, fmt.Errorf("wrapper: partitioned source %q shard %d answered %d of %d queries",
				p.name, shard, len(res), len(idxs))
		}
		for j, i := range idxs {
			out[i] = res[j]
		}
	}
	return out, nil
}

// CountLabel implements Counter: the union cardinality is the sum over
// members; if any member cannot count, neither can the composite.
func (p *Partitioned) CountLabel(label string) (int, bool) {
	total := 0
	for _, m := range p.members {
		c, ok := m.(Counter)
		if !ok {
			return 0, false
		}
		n, ok := c.CountLabel(label)
		if !ok {
			return 0, false
		}
		total += n
	}
	return total, true
}

// OnInvalidate implements InvalidationNotifier by forwarding the
// registration to every member that notifies — an invalidation anywhere
// in the partition invalidates derived state over the whole extent.
func (p *Partitioned) OnInvalidate(fn func()) {
	for _, m := range p.members {
		if n, ok := m.(InvalidationNotifier); ok {
			n.OnInvalidate(fn)
		}
	}
}

// OnChange implements Notifier by forwarding the registration to every
// member with a change feed; member deltas are re-labelled with the
// composite's name, since consumers know the partition only as one
// logical source. Members without a feed stay silent — pair Partitioned
// with OnInvalidate subscriptions when members only invalidate.
func (p *Partitioned) OnChange(fn func(Delta)) {
	for _, m := range p.members {
		if n, ok := m.(Notifier); ok {
			n.OnChange(func(d Delta) {
				d.Source = p.name
				fn(d)
			})
		}
	}
}

// GatherUnion concatenates per-shard answers in shard order, dropping
// structural duplicates — the cross-shard half of the duplicate
// elimination a single source's evaluation would have applied to its
// bindings. Within one shard the member already deduplicated.
func GatherUnion(perShard [][]*oem.Object) []*oem.Object { return gatherUnion(perShard) }

func gatherUnion(perShard [][]*oem.Object) []*oem.Object {
	total := 0
	for _, objs := range perShard {
		total += len(objs)
	}
	if total == 0 {
		return nil
	}
	dedup := oem.NewDeduper(total)
	out := make([]*oem.Object, 0, total)
	for _, objs := range perShard {
		for _, o := range objs {
			if !dedup.Seen(o) {
				out = append(out, o)
			}
		}
	}
	return out
}
