package wrappertest

import (
	"strings"
	"testing"

	"medmaker/internal/msl"
	"medmaker/internal/oem"
	"medmaker/internal/oemstore"
	"medmaker/internal/wrapper"
)

func extent() []*oem.Object {
	return []*oem.Object{
		oem.NewSet("", "person",
			oem.New("", "name", "Joe Chung"), oem.New("", "dept", "CS"), oem.New("", "year", 3)),
		oem.NewSet("", "person",
			oem.New("", "name", "Ann Arbor"), oem.New("", "dept", "EE"), oem.New("", "year", 1)),
		oem.NewSet("", "person",
			oem.New("", "name", "Pat Smith"), oem.New("", "dept", "CS"), oem.New("", "year", 2)),
	}
}

func TestConformantSourcePasses(t *testing.T) {
	src, err := oemstore.FromObjects("good", extent()...)
	if err != nil {
		t.Fatal(err)
	}
	if errs := Check(src, src.Store().TopLevel()); len(errs) != 0 {
		t.Fatalf("conformant source reported violations: %v", errs)
	}
}

func TestLimitedSourceRejectionsPass(t *testing.T) {
	inner, err := oemstore.FromObjects("weak", extent()...)
	if err != nil {
		t.Fatal(err)
	}
	// A source that honestly advertises no value conditions and rejects
	// them conforms: the probes it refuses are the ones it disclaims.
	src := &wrapper.Limited{Inner: inner, Caps: wrapper.Capabilities{}}
	if errs := Check(src, inner.Store().TopLevel()); len(errs) != 0 {
		t.Fatalf("honest limited source reported violations: %v", errs)
	}
}

// overPromiser advertises full capabilities but ignores value conditions:
// it answers every query over its extent as if the conditions were
// variables — the classic silently-wrong wrapper Check exists to catch.
type overPromiser struct {
	tops []*oem.Object
	gen  *oem.IDGen
}

func (o *overPromiser) Name() string                       { return "liar" }
func (o *overPromiser) Capabilities() wrapper.Capabilities { return wrapper.FullCapabilities() }

// Query claims every record matches, ignoring the query's conditions —
// wrong as soon as a probe carries one.
func (o *overPromiser) Query(q *msl.Rule) ([]*oem.Object, error) {
	return o.tops, nil
}

func TestOverPromisingSourceFailsLoudly(t *testing.T) {
	src := &overPromiser{tops: extent(), gen: oem.NewIDGen("liar")}
	errs := Check(src, extent())
	if len(errs) == 0 {
		t.Fatal("over-promising source passed conformance")
	}
	found := false
	for _, err := range errs {
		if strings.Contains(err.Error(), "value condition") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a value-condition violation, got: %v", errs)
	}
}

func TestProbeDerivationNeedsUsableRecord(t *testing.T) {
	atomOnly := []*oem.Object{oem.New("", "x", 1)}
	src, err := oemstore.FromObjects("bare", atomOnly...)
	if err != nil {
		t.Fatal(err)
	}
	errs := Check(src, atomOnly)
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "cannot derive probes") {
		t.Fatalf("errs = %v", errs)
	}
}
