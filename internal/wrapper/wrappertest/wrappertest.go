// Package wrappertest checks wrapper.Source implementations against
// their advertised capabilities. A wrapper that over-promises — says it
// supports a query feature but evaluates it wrongly — poisons every
// mediator built on it, because the optimizer only relaxes queries the
// source admits it cannot handle; answers the source claims to compute
// are trusted as-is. Check probes each capability with queries derived
// from the source's own extent and compares the answers against the
// generic in-memory evaluator, so over-promising (and silent
// wrong-answer bugs generally) fail loudly in the source's own tests.
package wrappertest

import (
	"fmt"
	"sort"
	"strings"

	"medmaker/internal/msl"
	"medmaker/internal/oem"
	"medmaker/internal/wrapper"
)

// TB is the subset of testing.TB Conformance needs; it keeps this
// package importable outside tests.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// Conformance runs Check and reports every violation on t.
func Conformance(t TB, src wrapper.Source, export []*oem.Object) {
	t.Helper()
	for _, err := range Check(src, export) {
		t.Errorf("conformance: %v", err)
	}
}

// Check probes src with capability-typed queries built from export (the
// source's full extent, as the generic evaluator should see it) and
// returns one error per violation:
//
//   - a query the advertised capabilities accept must succeed and return
//     answers structurally equal (as a multiset) to the generic
//     evaluator's answers over export;
//   - a query the advertised capabilities reject must fail with a
//     *wrapper.UnsupportedError — or, if the source answers anyway, the
//     answers must still be correct.
func Check(src wrapper.Source, export []*oem.Object) []error {
	var errs []error
	probes, err := buildProbes(src.Name(), export)
	if err != nil {
		return []error{err}
	}
	refGen := oem.NewIDGen("wrappertest_ref")
	for _, p := range probes {
		supported := wrapper.CheckCapabilities(p.rule, src.Capabilities(), src.Name()) == nil
		got, qerr := src.Query(p.rule)
		if !supported {
			if qerr == nil {
				// Answering beyond the advertised capabilities is
				// allowed only if the answers are right.
				if err := compare(p, got, export, refGen); err != nil {
					errs = append(errs, fmt.Errorf("%s (unadvertised but answered): %w", p.name, err))
				}
				continue
			}
			if _, isUnsup := unwrapUnsupported(qerr); !isUnsup {
				errs = append(errs, fmt.Errorf("%s: unadvertised feature should fail with *wrapper.UnsupportedError, got %v", p.name, qerr))
			}
			continue
		}
		if qerr != nil {
			errs = append(errs, fmt.Errorf("%s: advertised feature failed: %v", p.name, qerr))
			continue
		}
		if err := compare(p, got, export, refGen); err != nil {
			errs = append(errs, err)
		}
	}
	return errs
}

func unwrapUnsupported(err error) (*wrapper.UnsupportedError, bool) {
	for err != nil {
		if u, ok := err.(*wrapper.UnsupportedError); ok {
			return u, true
		}
		unwrapper, ok := err.(interface{ Unwrap() error })
		if !ok {
			return nil, false
		}
		err = unwrapper.Unwrap()
	}
	return nil, false
}

type probe struct {
	name string
	rule *msl.Rule
}

// buildProbes derives capability-typed queries from the extent: it picks
// a top-level object with at least two atomic children and uses its
// label and child values as the probe constants, so the probes are
// guaranteed to have non-empty reference answers.
func buildProbes(srcName string, export []*oem.Object) ([]probe, error) {
	label, kids := probeRecord(export)
	if label == "" {
		return nil, fmt.Errorf("wrappertest: export of %s has no set-valued object with two parseable atomic children; cannot derive probes", srcName)
	}
	mk := func(name, text string) (probe, error) {
		r, err := msl.ParseRule(text)
		if err != nil {
			return probe{}, fmt.Errorf("wrappertest: bad %s probe %q: %w", name, text, err)
		}
		return probe{name: name, rule: r}, nil
	}
	specs := []struct{ name, text string }{
		{"plain fetch",
			fmt.Sprintf(`P :- P:<%s V>@%s.`, label, srcName)},
		{"pattern fetch",
			fmt.Sprintf(`P :- P:<%s {<%s X>}>@%s.`, label, kids[0].Label, srcName)},
		{"label variable",
			fmt.Sprintf(`P :- P:<Lab V>@%s.`, srcName)},
		{"value condition",
			fmt.Sprintf(`P :- P:<%s {<%s %s>}>@%s.`, label, kids[0].Label, kids[0].Value, srcName)},
		{"rest constraint",
			fmt.Sprintf(`P :- P:<%s {<%s X> | R:{<%s %s>}}>@%s.`, label, kids[0].Label, kids[1].Label, kids[1].Value, srcName)},
		{"wildcard",
			fmt.Sprintf(`<out V> :- <%%%s V>@%s.`, kids[0].Label, srcName)},
		{"multi-pattern join",
			fmt.Sprintf(`<out {<a A> <b B>}> :- <%s {<%s A>}>@%s AND <%s {<%s B>}>@%s.`,
				label, kids[0].Label, srcName, label, kids[1].Label, srcName)},
	}
	probes := make([]probe, 0, len(specs))
	for _, s := range specs {
		p, err := mk(s.name, s.text)
		if err != nil {
			return nil, err
		}
		probes = append(probes, p)
	}
	return probes, nil
}

// probeRecord finds a set-valued export object with two atomic children
// whose labels parse as MSL labels and whose values are probe-safe.
func probeRecord(export []*oem.Object) (label string, kids []*oem.Object) {
	for _, o := range export {
		if !parseableLabel(o.Label) {
			continue
		}
		var found []*oem.Object
		for _, sub := range o.Subobjects() {
			if sub.IsAtomic() && parseableLabel(sub.Label) && probeSafeAtom(sub.Value) {
				found = append(found, sub)
			}
			if len(found) == 2 {
				return o.Label, found
			}
		}
	}
	return "", nil
}

func parseableLabel(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if i == 0 {
			if r >= 'a' && r <= 'z' {
				continue
			}
			return false
		}
		if r == '_' || (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
			continue
		}
		return false
	}
	return true
}

func probeSafeAtom(v oem.Value) bool {
	switch v.(type) {
	case oem.String, oem.Int, oem.Bool:
		return true
	}
	return false
}

// compare checks the source's answers against the generic evaluator over
// the export, as order-insensitive multisets of canonical renderings.
func compare(p probe, got []*oem.Object, export []*oem.Object, refGen *oem.IDGen) error {
	want, err := wrapper.Eval(p.rule, export, refGen)
	if err != nil {
		return fmt.Errorf("%s: reference evaluation failed: %v", p.name, err)
	}
	if len(want) == 0 {
		return fmt.Errorf("%s: probe has an empty reference answer; probes must discriminate", p.name)
	}
	gs, ws := canonicalize(got), canonicalize(want)
	if len(gs) != len(ws) {
		return fmt.Errorf("%s: %d answers, reference has %d", p.name, len(gs), len(ws))
	}
	for i := range gs {
		if gs[i] != ws[i] {
			return fmt.Errorf("%s: answer differs from reference:\n  got:  %s\n  want: %s", p.name, gs[i], ws[i])
		}
	}
	return nil
}

// canonicalize renders objects identity-free and order-free: oids
// cleared, subobject sets sorted recursively, then the renderings sorted.
func canonicalize(objs []*oem.Object) []string {
	out := make([]string, len(objs))
	for i, o := range objs {
		out[i] = canonicalString(o.Clone())
	}
	sort.Strings(out)
	return out
}

func canonicalString(o *oem.Object) string {
	var sb strings.Builder
	writeCanonical(&sb, o)
	return sb.String()
}

func writeCanonical(sb *strings.Builder, o *oem.Object) {
	sb.WriteByte('<')
	sb.WriteString(o.Label)
	sb.WriteByte(' ')
	if subs, ok := o.Value.(oem.Set); ok || o.Value == nil {
		parts := make([]string, len(subs))
		for i, sub := range subs {
			parts[i] = canonicalString(sub)
		}
		sort.Strings(parts)
		sb.WriteByte('{')
		sb.WriteString(strings.Join(parts, " "))
		sb.WriteByte('}')
	} else {
		sb.WriteString(o.Value.String())
	}
	sb.WriteByte('>')
}
