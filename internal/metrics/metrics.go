// Package metrics is MedMaker's process-wide measurement substrate: named
// monotonic counters and bounded latency histograms, collected into an
// expvar-style snapshot. The engine records source-exchange traffic here,
// the remote server records per-request-kind traffic, and the remote
// protocol ships Snapshots over the wire so a mediator can scrape the
// traffic of a wrapper it does not share a process with.
//
// Counters and histograms are lock-free on the hot path (atomic adds);
// the registry itself takes a lock only when a name is first registered
// or a snapshot is taken. All types are safe for concurrent use.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically-increasing event count.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative n is ignored: counters are monotonic).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// bucketBounds are the histogram's fixed upper bounds in nanoseconds,
// spanning 100µs to 10s roughly geometrically; observations above the last
// bound land in the implicit +Inf bucket. A fixed layout keeps every
// histogram's memory bounded (len(bucketBounds)+1 cells) and makes
// snapshots from different processes directly comparable.
var bucketBounds = [...]int64{
	int64(100 * time.Microsecond),
	int64(250 * time.Microsecond),
	int64(500 * time.Microsecond),
	int64(1 * time.Millisecond),
	int64(2500 * time.Microsecond),
	int64(5 * time.Millisecond),
	int64(10 * time.Millisecond),
	int64(25 * time.Millisecond),
	int64(50 * time.Millisecond),
	int64(100 * time.Millisecond),
	int64(250 * time.Millisecond),
	int64(500 * time.Millisecond),
	int64(1 * time.Second),
	int64(2500 * time.Millisecond),
	int64(5 * time.Second),
	int64(10 * time.Second),
}

// Histogram accumulates duration observations into fixed exponential
// buckets, tracking count, sum, min, and max.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid only when count > 0
	max     atomic.Int64
	buckets [len(bucketBounds) + 1]atomic.Int64
}

// Observe records one duration (negative durations clamp to zero).
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(ns)
	// min is stored as ns+1 so 0 can mean "unset" (a genuine 0ns
	// observation stores 1).
	for {
		cur := h.min.Load()
		if cur != 0 && cur <= ns+1 {
			break
		}
		if h.min.CompareAndSwap(cur, ns+1) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if ns <= cur {
			break
		}
		if h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
	i := sort.Search(len(bucketBounds), func(i int) bool { return ns <= bucketBounds[i] })
	h.buckets[i].Add(1)
}

// Snapshot copies the histogram's counters. Reads are not atomic as a
// group — a snapshot taken mid-observation may be off by one in flight —
// which is the usual monitoring contract.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	if m := h.min.Load(); m > 0 {
		s.Min = m - 1 // undo the +1 "set" tag
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		le := int64(-1) // +Inf
		if i < len(bucketBounds) {
			le = bucketBounds[i]
		}
		s.Buckets = append(s.Buckets, Bucket{LE: le, N: n})
	}
	return s
}

// Bucket is one non-empty histogram cell: N observations at most LE
// nanoseconds (LE == -1 means the +Inf overflow bucket).
type Bucket struct {
	LE int64 `json:"le_ns"`
	N  int64 `json:"n"`
}

// HistogramSnapshot is a point-in-time copy of one histogram. All
// durations are nanoseconds. The zero value means "no observations".
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum_ns"`
	Min     int64    `json:"min_ns"`
	Max     int64    `json:"max_ns"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean returns the average observation, or 0 with no observations.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / s.Count)
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) read
// off the bucket layout: the bound of the first bucket whose cumulative
// count reaches q of the total. With no observations it returns 0; for
// observations beyond the last bound it returns the observed max.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(s.Count))
	if target < 1 {
		target = 1
	}
	var cum int64
	for _, b := range s.Buckets {
		cum += b.N
		if cum >= target {
			if b.LE < 0 {
				return time.Duration(s.Max)
			}
			return time.Duration(b.LE)
		}
	}
	return time.Duration(s.Max)
}

// String renders the snapshot compactly for traces.
func (s HistogramSnapshot) String() string {
	if s.Count == 0 {
		return "no observations"
	}
	return fmt.Sprintf("n=%d mean=%s p50≤%s p95≤%s max=%s",
		s.Count,
		s.Mean().Round(time.Microsecond),
		s.Quantile(0.50).Round(time.Microsecond),
		s.Quantile(0.95).Round(time.Microsecond),
		time.Duration(s.Max).Round(time.Microsecond))
}

// CounterSnapshot is one counter's value at snapshot time.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// NamedHistogram is one histogram's snapshot with its registry name.
type NamedHistogram struct {
	Name string `json:"name"`
	HistogramSnapshot
}

// Snapshot is a point-in-time copy of a whole registry. It is a plain
// data value — gob- and json-encodable — so the remote protocol can carry
// it and cmd tools can dump it. Metrics are held in slices sorted by
// name, not maps, so two snapshots of the same state are byte-identical
// however they are serialized — diffable dumps, stable golden files,
// deterministic wire payloads.
type Snapshot struct {
	Counters   []CounterSnapshot `json:"counters,omitempty"`
	Histograms []NamedHistogram  `json:"histograms,omitempty"`
}

// Counter returns the named counter's value, or 0 when absent — absent
// and never-incremented are indistinguishable, as with a live registry.
func (s Snapshot) Counter(name string) int64 {
	i := sort.Search(len(s.Counters), func(i int) bool { return s.Counters[i].Name >= name })
	if i < len(s.Counters) && s.Counters[i].Name == name {
		return s.Counters[i].Value
	}
	return 0
}

// Histogram returns the named histogram's snapshot, or the zero
// snapshot (no observations) when absent.
func (s Snapshot) Histogram(name string) HistogramSnapshot {
	i := sort.Search(len(s.Histograms), func(i int) bool { return s.Histograms[i].Name >= name })
	if i < len(s.Histograms) && s.Histograms[i].Name == name {
		return s.Histograms[i].HistogramSnapshot
	}
	return HistogramSnapshot{}
}

// String renders the snapshot in name order, one metric per line.
func (s Snapshot) String() string {
	var sb strings.Builder
	for _, c := range s.Counters {
		fmt.Fprintf(&sb, "%s: %d\n", c.Name, c.Value)
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(&sb, "%s: %s\n", h.Name, h.HistogramSnapshot)
	}
	return sb.String()
}

// Registry is a named collection of counters and histograms.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. The
// returned pointer is stable: callers may cache it to skip the lookup.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Snapshot copies every metric's current value — the expvar-style
// observation point monitoring scrapes.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	counters := make([]struct {
		name string
		c    *Counter
	}, 0, len(r.counters))
	for n, c := range r.counters {
		counters = append(counters, struct {
			name string
			c    *Counter
		}{n, c})
	}
	histograms := make([]struct {
		name string
		h    *Histogram
	}, 0, len(r.histograms))
	for n, h := range r.histograms {
		histograms = append(histograms, struct {
			name string
			h    *Histogram
		}{n, h})
	}
	r.mu.Unlock()
	var s Snapshot
	if len(counters) > 0 {
		s.Counters = make([]CounterSnapshot, 0, len(counters))
		for _, e := range counters {
			s.Counters = append(s.Counters, CounterSnapshot{Name: e.name, Value: e.c.Value()})
		}
		sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	}
	if len(histograms) > 0 {
		s.Histograms = make([]NamedHistogram, 0, len(histograms))
		for _, e := range histograms {
			s.Histograms = append(s.Histograms, NamedHistogram{Name: e.name, HistogramSnapshot: e.h.Snapshot()})
		}
		sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	}
	return s
}

// defaultRegistry is the process-wide registry Default returns.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry: what the engine and the
// remote server record into unless given their own.
func Default() *Registry { return defaultRegistry }
