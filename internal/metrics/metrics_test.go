package metrics

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
	if r.Counter("a") != c {
		t.Fatal("Counter not stable for a repeated name")
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	h.Observe(200 * time.Microsecond)
	h.Observe(3 * time.Millisecond)
	h.Observe(80 * time.Millisecond)
	h.Observe(-time.Second) // clamps to 0

	s := r.Snapshot().Histogram("lat")
	if s.Count != 4 {
		t.Fatalf("Count = %d, want 4", s.Count)
	}
	wantSum := int64(200*time.Microsecond + 3*time.Millisecond + 80*time.Millisecond)
	if s.Sum != wantSum {
		t.Fatalf("Sum = %d, want %d", s.Sum, wantSum)
	}
	if s.Min != 0 {
		t.Fatalf("Min = %d, want 0 (clamped observation)", s.Min)
	}
	if s.Max != int64(80*time.Millisecond) {
		t.Fatalf("Max = %d, want %d", s.Max, int64(80*time.Millisecond))
	}
	var total int64
	for _, b := range s.Buckets {
		total += b.N
	}
	if total != 4 {
		t.Fatalf("bucket counts sum to %d, want 4", total)
	}
	// p100 bound must cover the largest observation.
	if q := s.Quantile(1); q < 80*time.Millisecond {
		t.Fatalf("Quantile(1) = %s, want >= 80ms", q)
	}
	if m := s.Mean(); m <= 0 {
		t.Fatalf("Mean = %s, want > 0", m)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := &Histogram{}
	h.Observe(time.Minute) // beyond the last bound
	s := h.Snapshot()
	if len(s.Buckets) != 1 || s.Buckets[0].LE != -1 {
		t.Fatalf("want a single +Inf bucket, got %+v", s.Buckets)
	}
	if q := s.Quantile(0.5); q != time.Minute {
		t.Fatalf("Quantile in +Inf bucket = %s, want the max %s", q, time.Minute)
	}
}

func TestSnapshotJSONAndString(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests").Add(3)
	r.Histogram("lat").Observe(time.Millisecond)
	s := r.Snapshot()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Counter("requests") != 3 || back.Histogram("lat").Count != 1 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if s.String() == "" {
		t.Fatal("String is empty")
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	// Two registries that saw the same metrics in different orders must
	// serialize to byte-identical snapshots.
	a, b := NewRegistry(), NewRegistry()
	names := []string{"zeta", "alpha", "mid", "engine.exchanges", "matview.hits"}
	for _, n := range names {
		a.Counter(n).Add(7)
		a.Histogram(n + ".lat").Observe(time.Millisecond)
	}
	for i := len(names) - 1; i >= 0; i-- {
		b.Counter(names[i]).Add(7)
		b.Histogram(names[i] + ".lat").Observe(time.Millisecond)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	ja, err := json.Marshal(sa)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	jb, err := json.Marshal(sb)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if string(ja) != string(jb) {
		t.Fatalf("snapshots differ:\n%s\n%s", ja, jb)
	}
	if sa.String() != sb.String() {
		t.Fatalf("String differs:\n%s\n%s", sa.String(), sb.String())
	}
	for i := 1; i < len(sa.Counters); i++ {
		if sa.Counters[i-1].Name >= sa.Counters[i].Name {
			t.Fatalf("counters not sorted: %q before %q", sa.Counters[i-1].Name, sa.Counters[i].Name)
		}
	}
	for i := 1; i < len(sa.Histograms); i++ {
		if sa.Histograms[i-1].Name >= sa.Histograms[i].Name {
			t.Fatalf("histograms not sorted: %q before %q", sa.Histograms[i-1].Name, sa.Histograms[i].Name)
		}
	}
	// Round trip through JSON preserves lookups.
	var back Snapshot
	if err := json.Unmarshal(ja, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Counter("alpha") != 7 || back.Histogram("alpha.lat").Count != 1 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if back.Counter("absent") != 0 || back.Histogram("absent").Count != 0 {
		t.Fatal("absent metrics must read as zero")
	}
}

func TestNilReceivers(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Histogram("y").Observe(time.Second)
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Fatalf("nil registry snapshot = %+v", s)
	}
	var c *Counter
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var h *Histogram
	h.Observe(time.Second)
}

func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("n").Inc()
				r.Histogram("lat").Observe(time.Duration(w*i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Counter("n"); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := s.Histogram("lat"); got.Count != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got.Count)
	}
	if got := s.Histogram("lat"); got.Min != 0 {
		t.Fatalf("min = %d, want 0", got.Min)
	}
	if want := int64(7 * 999 * int(time.Microsecond)); s.Histogram("lat").Max != want {
		t.Fatalf("max = %d, want %d", s.Histogram("lat").Max, want)
	}
}

func TestDefaultRegistry(t *testing.T) {
	if Default() == nil || Default() != Default() {
		t.Fatal("Default registry must be a stable non-nil singleton")
	}
}
