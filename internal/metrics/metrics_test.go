package metrics

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
	if r.Counter("a") != c {
		t.Fatal("Counter not stable for a repeated name")
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	h.Observe(200 * time.Microsecond)
	h.Observe(3 * time.Millisecond)
	h.Observe(80 * time.Millisecond)
	h.Observe(-time.Second) // clamps to 0

	s := r.Snapshot().Histograms["lat"]
	if s.Count != 4 {
		t.Fatalf("Count = %d, want 4", s.Count)
	}
	wantSum := int64(200*time.Microsecond + 3*time.Millisecond + 80*time.Millisecond)
	if s.Sum != wantSum {
		t.Fatalf("Sum = %d, want %d", s.Sum, wantSum)
	}
	if s.Min != 0 {
		t.Fatalf("Min = %d, want 0 (clamped observation)", s.Min)
	}
	if s.Max != int64(80*time.Millisecond) {
		t.Fatalf("Max = %d, want %d", s.Max, int64(80*time.Millisecond))
	}
	var total int64
	for _, b := range s.Buckets {
		total += b.N
	}
	if total != 4 {
		t.Fatalf("bucket counts sum to %d, want 4", total)
	}
	// p100 bound must cover the largest observation.
	if q := s.Quantile(1); q < 80*time.Millisecond {
		t.Fatalf("Quantile(1) = %s, want >= 80ms", q)
	}
	if m := s.Mean(); m <= 0 {
		t.Fatalf("Mean = %s, want > 0", m)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := &Histogram{}
	h.Observe(time.Minute) // beyond the last bound
	s := h.Snapshot()
	if len(s.Buckets) != 1 || s.Buckets[0].LE != -1 {
		t.Fatalf("want a single +Inf bucket, got %+v", s.Buckets)
	}
	if q := s.Quantile(0.5); q != time.Minute {
		t.Fatalf("Quantile in +Inf bucket = %s, want the max %s", q, time.Minute)
	}
}

func TestSnapshotJSONAndString(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests").Add(3)
	r.Histogram("lat").Observe(time.Millisecond)
	s := r.Snapshot()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Counters["requests"] != 3 || back.Histograms["lat"].Count != 1 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if s.String() == "" {
		t.Fatal("String is empty")
	}
}

func TestNilReceivers(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Histogram("y").Observe(time.Second)
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Fatalf("nil registry snapshot = %+v", s)
	}
	var c *Counter
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var h *Histogram
	h.Observe(time.Second)
}

func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("n").Inc()
				r.Histogram("lat").Observe(time.Duration(w*i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["n"] != 8000 {
		t.Fatalf("counter = %d, want 8000", s.Counters["n"])
	}
	if s.Histograms["lat"].Count != 8000 {
		t.Fatalf("histogram count = %d, want 8000", s.Histograms["lat"].Count)
	}
	if s.Histograms["lat"].Min != 0 {
		t.Fatalf("min = %d, want 0", s.Histograms["lat"].Min)
	}
	if want := int64(7 * 999 * int(time.Microsecond)); s.Histograms["lat"].Max != want {
		t.Fatalf("max = %d, want %d", s.Histograms["lat"].Max, want)
	}
}

func TestDefaultRegistry(t *testing.T) {
	if Default() == nil || Default() != Default() {
		t.Fatal("Default registry must be a stable non-nil singleton")
	}
}
