// Package trace is MedMaker's structured per-query observability layer:
// one QueryTrace per answered query records phase timings (parse → view
// expansion → plan → execute), a per-node account of the physical
// datamerge graph (rows in/out, source exchanges, cache traffic, wall
// time), and per-source exchange latency histograms.
//
// The engine populates node and source records through atomic counters,
// so the pipelined and parallel executors merge their observations
// race-free; phases are contiguous segments sharing boundary timestamps,
// so phase durations sum exactly to the trace's total. Every recording
// method is nil-receiver-safe: instrumented code paths call them
// unconditionally and an untraced query pays only a nil check.
//
// Attribution across layers flows through contexts: the engine attaches
// the active node/source records to each exchange's context
// (WithExchangeObs), and the wrapper-level answer cache — which cannot
// see the engine — reports hits and misses to them via CacheEvent.
package trace

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"medmaker/internal/metrics"
)

// Canonical phase names used by the mediator's query path.
const (
	PhaseParse   = "parse"
	PhaseExpand  = "expand"
	PhasePlan    = "plan"
	PhaseExecute = "execute"
)

// QueryTrace records one query's answer path. Create with New, close with
// End, read with Snapshot or Render. A nil *QueryTrace is a valid no-op
// recorder.
type QueryTrace struct {
	query string
	start time.Time

	mu          sync.Mutex
	phases      []phaseRecord
	phaseStart  time.Time // start of the open phase; zero when none open
	phaseName   string
	annotations map[string]int64
	nodes       []*NodeStats
	sources     map[string]*SourceStats
	srcOrder    []string
	total       time.Duration
	ended       bool
}

type phaseRecord struct {
	name string
	d    time.Duration
}

// New starts a trace for the given query text.
func New(query string) *QueryTrace {
	return &QueryTrace{query: query, start: time.Now()}
}

// Phase closes the open phase (if any) and opens a named one. The first
// phase's segment begins at the trace's start, and each later phase
// begins exactly where the previous ended, so the recorded durations
// partition the trace's total wall time.
func (t *QueryTrace) Phase(name string) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ended {
		return
	}
	t.closePhaseLocked(now)
	t.phaseStart = now
	t.phaseName = name
	if len(t.phases) == 0 {
		// Attribute the pre-phase gap (construction to first Phase call)
		// to the first phase so the partition covers the whole trace.
		t.phaseStart = t.start
	}
}

// closePhaseLocked ends the open phase at now.
func (t *QueryTrace) closePhaseLocked(now time.Time) {
	if t.phaseStart.IsZero() {
		return
	}
	t.phases = append(t.phases, phaseRecord{name: t.phaseName, d: now.Sub(t.phaseStart)})
	t.phaseStart = time.Time{}
	t.phaseName = ""
}

// End closes the open phase and fixes the trace's total duration. It is
// idempotent; recording methods called after End are dropped.
func (t *QueryTrace) End() {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ended {
		return
	}
	t.closePhaseLocked(now)
	t.total = now.Sub(t.start)
	t.ended = true
}

// Total returns the trace's wall time: fixed by End, running until then.
func (t *QueryTrace) Total() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ended {
		return t.total
	}
	return time.Since(t.start)
}

// Annotate accumulates a named integer fact about the run (e.g. how many
// logical rules expansion produced). Repeated calls add.
func (t *QueryTrace) Annotate(key string, v int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ended {
		return
	}
	if t.annotations == nil {
		t.annotations = make(map[string]int64)
	}
	t.annotations[key] += v
}

// NewNode registers one physical-graph operator and returns its record.
// Registration happens before execution (single-threaded, in preorder:
// parents before their subtrees), so records carry stable ids matching
// registration order.
func (t *QueryTrace) NewNode(kind, source, detail string) *NodeStats {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ns := &NodeStats{id: len(t.nodes), kind: kind, source: source, detail: detail}
	t.nodes = append(t.nodes, ns)
	return ns
}

// Source registers (or returns) the per-source record for name.
func (t *QueryTrace) Source(name string) *SourceStats {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sources == nil {
		t.sources = make(map[string]*SourceStats)
	}
	s := t.sources[name]
	if s == nil {
		s = &SourceStats{name: name, latency: &metrics.Histogram{}}
		t.sources[name] = s
		t.srcOrder = append(t.srcOrder, name)
	}
	return s
}

// NodeStats is the execution record of one physical-graph operator. All
// counters are atomic: the materialized-parallel and pipelined executors
// update one record from several goroutines.
type NodeStats struct {
	id     int
	kind   string
	source string
	detail string

	// estRows/hasEst, shape, and kids are written during (single-threaded)
	// graph registration, before execution starts, and only read afterwards.
	estRows float64
	hasEst  bool
	shape   string
	kids    []int

	calls       atomic.Int64
	rowsIn      atomic.Int64
	rowsOut     atomic.Int64
	exchanges   atomic.Int64
	queries     atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	wallNanos   atomic.Int64
	morsels     atomic.Int64
	maxWorkers  atomic.Int64
}

// SetEstimate attaches the optimizer's cardinality estimate.
func (n *NodeStats) SetEstimate(rows float64) {
	if n == nil {
		return
	}
	n.estRows, n.hasEst = rows, true
}

// SetShape attaches the statistics shape key the operator records its
// feedback under (registration time only).
func (n *NodeStats) SetShape(shape string) {
	if n == nil {
		return
	}
	n.shape = shape
}

// SetKids records the operator's input records (registration time only).
func (n *NodeStats) SetKids(kids []*NodeStats) {
	if n == nil {
		return
	}
	n.kids = n.kids[:0]
	for _, k := range kids {
		if k != nil {
			n.kids = append(n.kids, k.id)
		}
	}
}

// AddCall records one evaluation of the operator over in input rows
// producing out rows in d of wall time. Streaming executors call it once
// per batch; materialized execution once per run.
func (n *NodeStats) AddCall(in, out int, d time.Duration) {
	if n == nil {
		return
	}
	n.calls.Add(1)
	n.rowsIn.Add(int64(in))
	n.rowsOut.Add(int64(out))
	n.wallNanos.Add(int64(d))
}

// AddExchanges records source round-trips issued by this operator:
// exchanges network round-trips carrying queries instantiated queries.
func (n *NodeStats) AddExchanges(exchanges, queries int) {
	if n == nil {
		return
	}
	n.exchanges.Add(int64(exchanges))
	n.queries.Add(int64(queries))
}

// AddMorsels records one morsel-parallel pass over the operator's input:
// how many morsels the input split into and how many pool workers
// processed them. Morsels accumulate across passes (an operator may fan
// out more than once, e.g. a join's build and probe); Workers reports
// the widest pool observed.
func (n *NodeStats) AddMorsels(morsels, workers int) {
	if n == nil {
		return
	}
	n.morsels.Add(int64(morsels))
	for {
		cur := n.maxWorkers.Load()
		if int64(workers) <= cur || n.maxWorkers.CompareAndSwap(cur, int64(workers)) {
			return
		}
	}
}

// CacheAccess records one answer-cache lookup outcome attributed to this
// operator.
func (n *NodeStats) CacheAccess(hit bool) {
	if n == nil {
		return
	}
	if hit {
		n.cacheHits.Add(1)
	} else {
		n.cacheMisses.Add(1)
	}
}

// RowsOut returns the rows the operator has produced so far.
func (n *NodeStats) RowsOut() int64 {
	if n == nil {
		return 0
	}
	return n.rowsOut.Load()
}

// RowsIn returns the rows the operator has consumed so far.
func (n *NodeStats) RowsIn() int64 {
	if n == nil {
		return 0
	}
	return n.rowsIn.Load()
}

// Queries returns the instantiated queries the operator has sent so far.
func (n *NodeStats) Queries() int64 {
	if n == nil {
		return 0
	}
	return n.queries.Load()
}

// SourceStats aggregates one source's traffic across the whole query.
type SourceStats struct {
	name        string
	exchanges   atomic.Int64
	queries     atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	latency     *metrics.Histogram
}

// AddExchange records one source round-trip carrying queries instantiated
// queries, observed at latency d.
func (s *SourceStats) AddExchange(queries int, d time.Duration) {
	if s == nil {
		return
	}
	s.exchanges.Add(1)
	s.queries.Add(int64(queries))
	s.latency.Observe(d)
}

// CacheAccess records one answer-cache lookup outcome against the source.
func (s *SourceStats) CacheAccess(hit bool) {
	if s == nil {
		return
	}
	if hit {
		s.cacheHits.Add(1)
	} else {
		s.cacheMisses.Add(1)
	}
}

// --- context attribution -------------------------------------------------

type qtKey struct{}

// NewContext returns ctx carrying qt, for layers (expansion, planning)
// that annotate the active trace without threading it explicitly. A nil
// qt returns ctx unchanged.
func NewContext(ctx context.Context, qt *QueryTrace) context.Context {
	if qt == nil {
		return ctx
	}
	return context.WithValue(ctx, qtKey{}, qt)
}

// FromContext returns the trace carried by ctx, or nil. The nil result is
// directly usable: every QueryTrace method accepts a nil receiver.
func FromContext(ctx context.Context) *QueryTrace {
	qt, _ := ctx.Value(qtKey{}).(*QueryTrace)
	return qt
}

type obsKey struct{}

// exchangeObs identifies the operator and source on whose behalf a source
// exchange runs, so layers below the engine attribute events to them.
type exchangeObs struct {
	node   *NodeStats
	source *SourceStats
}

// WithExchangeObs returns ctx carrying the node/source records the
// current exchange should be attributed to.
func WithExchangeObs(ctx context.Context, node *NodeStats, source *SourceStats) context.Context {
	if node == nil && source == nil {
		return ctx
	}
	return context.WithValue(ctx, obsKey{}, exchangeObs{node: node, source: source})
}

// CacheEvent reports one answer-cache lookup outcome to the records the
// context attributes exchanges to; without attribution it is a no-op.
// The wrapper-level cache calls this on every lookup.
func CacheEvent(ctx context.Context, hit bool) {
	obs, ok := ctx.Value(obsKey{}).(exchangeObs)
	if !ok {
		return
	}
	obs.node.CacheAccess(hit)
	obs.source.CacheAccess(hit)
}

// --- snapshots -----------------------------------------------------------

// Summary is a point-in-time copy of a QueryTrace as plain data:
// json-encodable for cmd tools and assertable in tests.
type Summary struct {
	Query       string           `json:"query"`
	TotalNanos  int64            `json:"total_ns"`
	Phases      []PhaseSummary   `json:"phases,omitempty"`
	Annotations map[string]int64 `json:"annotations,omitempty"`
	Nodes       []NodeSummary    `json:"nodes,omitempty"`
	Sources     []SourceSummary  `json:"sources,omitempty"`
}

// PhaseSummary is one phase's wall-time segment.
type PhaseSummary struct {
	Name  string `json:"name"`
	Nanos int64  `json:"ns"`
}

// NodeSummary is one operator's record. Kids are ids into Summary.Nodes.
type NodeSummary struct {
	ID          int     `json:"id"`
	Kind        string  `json:"kind"`
	Source      string  `json:"source,omitempty"`
	Detail      string  `json:"detail,omitempty"`
	Kids        []int   `json:"kids,omitempty"`
	Calls       int64   `json:"calls"`
	RowsIn      int64   `json:"rows_in"`
	RowsOut     int64   `json:"rows_out"`
	Exchanges   int64   `json:"exchanges,omitempty"`
	Queries     int64   `json:"queries,omitempty"`
	CacheHits   int64   `json:"cache_hits,omitempty"`
	CacheMisses int64   `json:"cache_misses,omitempty"`
	WallNanos   int64   `json:"wall_ns"`
	Morsels     int64   `json:"morsels,omitempty"`
	Workers     int64   `json:"workers,omitempty"`
	EstRows     float64 `json:"est_rows,omitempty"`
	HasEst      bool    `json:"has_est,omitempty"`
	Shape       string  `json:"shape,omitempty"`
	// Misestimate flags a node whose actual per-query cardinality diverges
	// from the optimizer's estimate by more than MisestimateRatio in either
	// direction — the EXPLAIN ANALYZE cue that the plan was built on bad
	// numbers before a benchmark has to discover it.
	Misestimate bool `json:"misestimate,omitempty"`
}

// MisestimateRatio is the actual/estimated divergence (either way) past
// which a node is flagged.
const MisestimateRatio = 4.0

// misestimated compares an estimate against the observed per-query
// cardinality. Sub-row disagreements (both below one row) never flag.
func misestimated(est, actual float64) bool {
	if est < 1 && actual < 1 {
		return false
	}
	hi, lo := est, actual
	if actual > est {
		hi, lo = actual, est
	}
	if lo <= 0 {
		return hi >= MisestimateRatio
	}
	return hi/lo > MisestimateRatio
}

// SourceSummary is one source's aggregated traffic.
type SourceSummary struct {
	Name        string                    `json:"name"`
	Exchanges   int64                     `json:"exchanges"`
	Queries     int64                     `json:"queries"`
	CacheHits   int64                     `json:"cache_hits"`
	CacheMisses int64                     `json:"cache_misses"`
	Latency     metrics.HistogramSnapshot `json:"latency"`
}

// Snapshot copies the trace. Callers normally snapshot after End; a
// snapshot of a live trace sees whatever has been recorded so far.
func (t *QueryTrace) Snapshot() Summary {
	if t == nil {
		return Summary{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := Summary{Query: t.query, TotalNanos: int64(t.total)}
	if !t.ended {
		s.TotalNanos = int64(time.Since(t.start))
	}
	for _, p := range t.phases {
		s.Phases = append(s.Phases, PhaseSummary{Name: p.name, Nanos: int64(p.d)})
	}
	if len(t.annotations) > 0 {
		s.Annotations = make(map[string]int64, len(t.annotations))
		for k, v := range t.annotations {
			s.Annotations[k] = v
		}
	}
	for _, n := range t.nodes {
		ns := NodeSummary{
			ID:          n.id,
			Kind:        n.kind,
			Source:      n.source,
			Detail:      n.detail,
			Kids:        append([]int(nil), n.kids...),
			Calls:       n.calls.Load(),
			RowsIn:      n.rowsIn.Load(),
			RowsOut:     n.rowsOut.Load(),
			Exchanges:   n.exchanges.Load(),
			Queries:     n.queries.Load(),
			CacheHits:   n.cacheHits.Load(),
			CacheMisses: n.cacheMisses.Load(),
			WallNanos:   n.wallNanos.Load(),
			Morsels:     n.morsels.Load(),
			Workers:     n.maxWorkers.Load(),
			EstRows:     n.estRows,
			HasEst:      n.hasEst,
			Shape:       n.shape,
		}
		if ns.HasEst && ns.Calls > 0 {
			perQuery := float64(ns.RowsOut)
			if ns.Queries > 0 {
				perQuery /= float64(ns.Queries)
			}
			ns.Misestimate = misestimated(ns.EstRows, perQuery)
		}
		s.Nodes = append(s.Nodes, ns)
	}
	for _, name := range t.srcOrder {
		src := t.sources[name]
		s.Sources = append(s.Sources, SourceSummary{
			Name:        name,
			Exchanges:   src.exchanges.Load(),
			Queries:     src.queries.Load(),
			CacheHits:   src.cacheHits.Load(),
			CacheMisses: src.cacheMisses.Load(),
			Latency:     src.latency.Snapshot(),
		})
	}
	return s
}

// Render writes the trace as text: total and phase timings, the annotated
// physical graph (estimated vs. actual cardinalities), and per-source
// exchange traffic — the EXPLAIN ANALYZE form of the paper's Figure 3.6
// dataflow rendering.
func (t *QueryTrace) Render(w io.Writer) {
	s := t.Snapshot()
	s.Render(w)
}

// Render writes the summary as text (see QueryTrace.Render).
func (s Summary) Render(w io.Writer) {
	fmt.Fprintf(w, "-- query: %s\n", s.Query)
	total := time.Duration(s.TotalNanos)
	var parts []string
	for _, p := range s.Phases {
		parts = append(parts, fmt.Sprintf("%s %s", p.Name, time.Duration(p.Nanos).Round(time.Microsecond)))
	}
	fmt.Fprintf(w, "-- total %s", total.Round(time.Microsecond))
	if len(parts) > 0 {
		fmt.Fprintf(w, " (%s)", strings.Join(parts, ", "))
	}
	fmt.Fprintln(w)
	if len(s.Annotations) > 0 {
		keys := make([]string, 0, len(s.Annotations))
		for k := range s.Annotations {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for i, k := range keys {
			keys[i] = fmt.Sprintf("%s=%d", k, s.Annotations[k])
		}
		fmt.Fprintf(w, "-- %s\n", strings.Join(keys, " "))
	}
	if len(s.Nodes) > 0 {
		fmt.Fprintln(w, "-- physical datamerge graph (actual vs. estimated) --")
		isKid := make(map[int]bool)
		for _, n := range s.Nodes {
			for _, k := range n.Kids {
				isKid[k] = true
			}
		}
		byID := make(map[int]NodeSummary, len(s.Nodes))
		for _, n := range s.Nodes {
			byID[n.ID] = n
		}
		for _, n := range s.Nodes {
			if !isKid[n.ID] {
				renderNode(w, byID, n, 0)
			}
		}
	}
	for _, src := range s.Sources {
		fmt.Fprintf(w, "source %s: %d exchanges carrying %d queries", src.Name, src.Exchanges, src.Queries)
		if src.CacheHits+src.CacheMisses > 0 {
			fmt.Fprintf(w, ", cache %d/%d hits", src.CacheHits, src.CacheHits+src.CacheMisses)
		}
		if src.Latency.Count > 0 {
			fmt.Fprintf(w, ", latency %s", src.Latency)
		}
		fmt.Fprintln(w)
	}
}

func renderNode(w io.Writer, byID map[int]NodeSummary, n NodeSummary, depth int) {
	fmt.Fprintf(w, "%s%s: %s\n", strings.Repeat("    ", depth), n.Kind, clip(n.Detail, 100))
	stats := fmt.Sprintf("rows=%d", n.RowsOut)
	if n.HasEst {
		stats += fmt.Sprintf(" (est %.1f)", n.EstRows)
	}
	if n.Misestimate {
		stats += " MISESTIMATE"
	}
	stats += fmt.Sprintf(" in=%d calls=%d wall=%s", n.RowsIn, n.Calls,
		time.Duration(n.WallNanos).Round(time.Microsecond))
	if n.Exchanges > 0 {
		stats += fmt.Sprintf(" exchanges=%d queries=%d", n.Exchanges, n.Queries)
	}
	if n.Morsels > 0 {
		stats += fmt.Sprintf(" morsels=%d workers=%d", n.Morsels, n.Workers)
	}
	if n.CacheHits+n.CacheMisses > 0 {
		stats += fmt.Sprintf(" cache=%d/%d", n.CacheHits, n.CacheHits+n.CacheMisses)
	}
	fmt.Fprintf(w, "%s  [%s]\n", strings.Repeat("    ", depth), stats)
	for _, k := range n.Kids {
		if kid, ok := byID[k]; ok {
			renderNode(w, byID, kid, depth+1)
		}
	}
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
