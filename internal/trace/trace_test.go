package trace

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestPhasesPartitionTotal(t *testing.T) {
	qt := New("q")
	qt.Phase(PhaseParse)
	time.Sleep(time.Millisecond)
	qt.Phase(PhaseExpand)
	time.Sleep(time.Millisecond)
	qt.Phase(PhaseExecute)
	qt.End()

	s := qt.Snapshot()
	if len(s.Phases) != 3 {
		t.Fatalf("got %d phases, want 3", len(s.Phases))
	}
	var sum int64
	for _, p := range s.Phases {
		sum += p.Nanos
	}
	// Contiguous segments share boundary timestamps, so the partition is
	// exact, not merely within tolerance.
	if sum != s.TotalNanos {
		t.Fatalf("phase sum %d != total %d", sum, s.TotalNanos)
	}
	if s.TotalNanos < int64(2*time.Millisecond) {
		t.Fatalf("total %d implausibly small", s.TotalNanos)
	}
}

func TestEndIdempotentAndDropsLateRecords(t *testing.T) {
	qt := New("q")
	qt.Phase(PhaseExecute)
	qt.End()
	total := qt.Total()
	qt.Phase("late")
	qt.Annotate("late", 1)
	qt.End()
	s := qt.Snapshot()
	if qt.Total() != total {
		t.Fatal("End not idempotent")
	}
	if len(s.Phases) != 1 || s.Annotations["late"] != 0 {
		t.Fatalf("late records leaked into %+v", s)
	}
}

func TestNodeAndSourceRecords(t *testing.T) {
	qt := New("q")
	root := qt.NewNode("dedup", "", "on X")
	leaf := qt.NewNode("query(cs)", "cs", "<person>")
	root.SetKids([]*NodeStats{leaf})
	leaf.SetEstimate(12.5)

	leaf.AddCall(0, 7, 3*time.Millisecond)
	leaf.AddExchanges(2, 5)
	leaf.CacheAccess(true)
	leaf.CacheAccess(false)
	src := qt.Source("cs")
	src.AddExchange(5, 2*time.Millisecond)
	src.CacheAccess(true)
	qt.End()

	s := qt.Snapshot()
	if len(s.Nodes) != 2 {
		t.Fatalf("got %d nodes, want 2", len(s.Nodes))
	}
	if got := s.Nodes[0]; got.Kind != "dedup" || len(got.Kids) != 1 || got.Kids[0] != 1 {
		t.Fatalf("root node = %+v", got)
	}
	l := s.Nodes[1]
	if l.RowsOut != 7 || l.Exchanges != 2 || l.Queries != 5 || l.CacheHits != 1 || l.CacheMisses != 1 {
		t.Fatalf("leaf node = %+v", l)
	}
	if !l.HasEst || l.EstRows != 12.5 {
		t.Fatalf("leaf estimate = %+v", l)
	}
	if len(s.Sources) != 1 || s.Sources[0].Exchanges != 1 || s.Sources[0].Queries != 5 {
		t.Fatalf("sources = %+v", s.Sources)
	}
	if s.Sources[0].Latency.Count != 1 {
		t.Fatalf("latency histogram = %+v", s.Sources[0].Latency)
	}
}

func TestConcurrentNodeRecording(t *testing.T) {
	qt := New("q")
	n := qt.NewNode("query(cs)", "cs", "")
	src := qt.Source("cs")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				n.AddCall(1, 2, time.Microsecond)
				n.AddExchanges(1, 1)
				src.AddExchange(1, time.Microsecond)
				src.CacheAccess(i%2 == 0)
			}
		}()
	}
	wg.Wait()
	qt.End()
	s := qt.Snapshot()
	if s.Nodes[0].Calls != 4000 || s.Nodes[0].RowsOut != 8000 || s.Nodes[0].Exchanges != 4000 {
		t.Fatalf("node = %+v", s.Nodes[0])
	}
	if s.Sources[0].Exchanges != 4000 || s.Sources[0].CacheHits != 2000 || s.Sources[0].CacheMisses != 2000 {
		t.Fatalf("source = %+v", s.Sources[0])
	}
}

func TestNilReceiversAreNoOps(t *testing.T) {
	var qt *QueryTrace
	qt.Phase("x")
	qt.Annotate("k", 1)
	qt.End()
	if qt.Total() != 0 {
		t.Fatal("nil trace has a total")
	}
	n := qt.NewNode("k", "", "")
	if n != nil {
		t.Fatal("nil trace returned a node")
	}
	n.AddCall(1, 1, time.Second)
	n.AddExchanges(1, 1)
	n.CacheAccess(true)
	n.SetKids(nil)
	n.SetEstimate(1)
	if n.RowsOut() != 0 {
		t.Fatal("nil node has rows")
	}
	s := qt.Source("cs")
	if s != nil {
		t.Fatal("nil trace returned a source")
	}
	s.AddExchange(1, time.Second)
	s.CacheAccess(false)
	if snap := qt.Snapshot(); len(snap.Nodes) != 0 {
		t.Fatalf("nil snapshot = %+v", snap)
	}
}

func TestContextAttribution(t *testing.T) {
	qt := New("q")
	n := qt.NewNode("query(cs)", "cs", "")
	src := qt.Source("cs")
	ctx := WithExchangeObs(context.Background(), n, src)
	CacheEvent(ctx, true)
	CacheEvent(ctx, false)
	CacheEvent(context.Background(), true) // unattributed: dropped
	qt.End()
	s := qt.Snapshot()
	if s.Nodes[0].CacheHits != 1 || s.Nodes[0].CacheMisses != 1 {
		t.Fatalf("node cache = %+v", s.Nodes[0])
	}
	if s.Sources[0].CacheHits != 1 || s.Sources[0].CacheMisses != 1 {
		t.Fatalf("source cache = %+v", s.Sources[0])
	}
}

func TestFromContext(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context carries a trace")
	}
	qt := New("q")
	ctx := NewContext(context.Background(), qt)
	if FromContext(ctx) != qt {
		t.Fatal("trace not carried")
	}
	if NewContext(context.Background(), nil) != context.Background() {
		t.Fatal("nil trace should not allocate a context")
	}
	// The nil-from-context result is a usable no-op recorder.
	FromContext(context.Background()).Annotate("k", 1)
}

func TestRenderAndJSON(t *testing.T) {
	qt := New("X :- X:<staff>@med.")
	qt.Phase(PhaseExecute)
	root := qt.NewNode("construct", "", "<staff N>")
	leaf := qt.NewNode("query(cs)", "cs", "<person {<name N>}>")
	root.SetKids([]*NodeStats{leaf})
	leaf.SetEstimate(3)
	leaf.AddCall(0, 3, time.Millisecond)
	leaf.AddExchanges(1, 1)
	qt.Source("cs").AddExchange(1, time.Millisecond)
	qt.End()

	var sb strings.Builder
	qt.Render(&sb)
	out := sb.String()
	for _, want := range []string{"query(cs)", "rows=3", "(est 3.0)", "construct", "source cs: 1 exchanges", "total"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output lacks %q:\n%s", want, out)
		}
	}
	// The construct root renders before its query kid (tree order).
	if strings.Index(out, "construct") > strings.Index(out, "query(cs)") {
		t.Fatalf("root not rendered first:\n%s", out)
	}

	data, err := json.Marshal(qt.Snapshot())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Summary
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(back.Nodes) != 2 || back.Nodes[1].RowsOut != 3 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestMisestimatedBoundaries(t *testing.T) {
	cases := []struct {
		est, actual float64
		want        bool
	}{
		{0.2, 0.8, false}, // sub-row disagreement never flags
		{0, 4, true},      // no estimate vs MisestimateRatio actuals
		{0, 3.5, false},   // no estimate vs fewer than the ratio
		{10, 40, false},   // exactly the ratio is still in tolerance
		{10, 41, true},    // just past it, actual high
		{41, 10, true},    // … and estimate high: symmetric
		{100, 100, false}, // perfect
	}
	for _, c := range cases {
		if got := misestimated(c.est, c.actual); got != c.want {
			t.Errorf("misestimated(%v, %v) = %v, want %v", c.est, c.actual, got, c.want)
		}
	}
}

func TestMisestimateFlagInSnapshotAndRender(t *testing.T) {
	qt := New("q")
	good := qt.NewNode("query", "src", "well estimated")
	good.SetEstimate(10)
	good.SetShape("%person?")
	good.AddCall(0, 12, time.Millisecond)

	bad := qt.NewNode("query", "src", "off by 10x")
	bad.SetEstimate(2)
	bad.SetShape("%person?=c")
	bad.AddCall(0, 20, time.Millisecond)

	// Per-query normalization: 20 rows over 10 parameterized queries is
	// 2 rows per probe — dead on the estimate, not a misestimate.
	normalized := qt.NewNode("query", "src", "parameterized")
	normalized.SetEstimate(2)
	normalized.AddCall(0, 20, time.Millisecond)
	normalized.AddExchanges(1, 10)

	qt.End()
	s := qt.Snapshot()
	flagged := map[string]bool{}
	shapes := map[string]string{}
	for _, n := range s.Nodes {
		flagged[n.Detail] = n.Misestimate
		shapes[n.Detail] = n.Shape
	}
	if flagged["well estimated"] {
		t.Fatal("accurate node flagged as misestimate")
	}
	if !flagged["off by 10x"] {
		t.Fatal("10x divergence not flagged")
	}
	if flagged["parameterized"] {
		t.Fatal("per-query-accurate parameterized node flagged")
	}
	if shapes["off by 10x"] != "%person?=c" {
		t.Fatalf("shape not carried into summary: %q", shapes["off by 10x"])
	}

	var sb strings.Builder
	qt.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "MISESTIMATE") {
		t.Fatal("render does not mark the misestimated node")
	}
	if strings.Count(out, "MISESTIMATE") != 1 {
		t.Fatalf("render flags %d nodes, want exactly 1:\n%s", strings.Count(out, "MISESTIMATE"), out)
	}
}
