package engine

import (
	"sort"
	"strings"

	"medmaker/internal/msl"
)

// This file defines the condition-aware shape key the statistics store
// aggregates cardinality feedback under. The old store keyed estimates on
// (source, label) alone, so two queries over the same label with very
// different condition selectivity poisoned one shared bucket — the
// classic "person" queries that return 3000 rows unfiltered and 2 rows
// with a pinned department averaged into a number describing neither.
// A shape fingerprints the label *and* the condition structure of the
// query actually sent: which positions carry constants, which carry
// parameters bound per input tuple, and which set members merely have to
// exist. Constants and bound variables mark the same way ("=c" / "=v"
// distinguish only provenance, not value), so repeated parameterized
// instances of one template aggregate under one key while differently
// conditioned queries stay apart.

// ShapeOf fingerprints the pattern as sent to a source. bound names the
// variables the engine substitutes with per-tuple constants before
// sending (the node's ParamVars); they mark as value conditions. The key
// is insensitive to set-member order.
func ShapeOf(p *msl.ObjectPattern, bound map[string]bool) string {
	var sb strings.Builder
	if p.Wildcard {
		sb.WriteByte('%')
	}
	sb.WriteString(shapeLabel(p, bound))
	var marks []string
	if _, ok := p.OID.(*msl.Const); ok {
		marks = append(marks, "#oid")
	}
	marks = appendShapeMarks(marks, p.Value, bound, "")
	if len(marks) > 0 {
		sort.Strings(marks)
		sb.WriteByte('?')
		sb.WriteString(strings.Join(marks, ","))
	}
	return sb.String()
}

// ShapeVars builds the bound-variable set ShapeOf expects from a
// parameter list.
func ShapeVars(params []string) map[string]bool {
	if len(params) == 0 {
		return nil
	}
	out := make(map[string]bool, len(params))
	for _, p := range params {
		out[p] = true
	}
	return out
}

// shapeLabel renders a pattern's label position: the constant label, "$"
// for a label filled at execution time (a parameter, or a variable bound
// by the outer conjuncts — the label-variable joins of Section 3.2), and
// "*" for a genuinely free label.
func shapeLabel(p *msl.ObjectPattern, bound map[string]bool) string {
	if l := p.LabelName(); l != "" {
		return l
	}
	switch t := p.Label.(type) {
	case *msl.Param:
		return "$"
	case *msl.Var:
		if bound[t.Name] {
			return "$"
		}
	}
	return "*"
}

// appendShapeMarks walks a value term collecting condition markers.
// prefix is the dotted member path ("" at the top level).
func appendShapeMarks(marks []string, t msl.Term, bound map[string]bool, prefix string) []string {
	switch v := t.(type) {
	case nil:
	case *msl.Const:
		marks = append(marks, prefix+"=c")
	case *msl.Param:
		marks = append(marks, prefix+"=v")
	case *msl.Var:
		if bound[v.Name] {
			marks = append(marks, prefix+"=v")
		}
	case *msl.SetPattern:
		for _, e := range v.Elems {
			switch m := e.(type) {
			case *msl.ObjectPattern:
				marks = appendShapeMarks(marks, m, bound, prefix)
			case *msl.Var:
				if bound[m.Name] {
					marks = append(marks, shapeJoin(prefix, "=obj"))
				}
			}
		}
		for _, rc := range v.RestConstraints {
			marks = appendShapeMarks(marks, rc, bound, shapeJoin(prefix, "~"))
		}
	case *msl.ObjectPattern:
		// A member pattern is itself a (weak) condition — the object must
		// carry such a subobject — so its path marks even without a value.
		member := shapeJoin(prefix, shapeLabel(v, bound))
		if v.Wildcard {
			member = shapeJoin(prefix, "%"+shapeLabel(v, bound))
		}
		marks = append(marks, member)
		if _, ok := v.OID.(*msl.Const); ok {
			marks = append(marks, member+"#oid")
		}
		marks = appendShapeMarks(marks, v.Value, bound, member)
	}
	return marks
}

func shapeJoin(prefix, s string) string {
	if prefix == "" {
		return s
	}
	return prefix + "." + s
}
