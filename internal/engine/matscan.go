package engine

import (
	"medmaker/internal/match"
	"medmaker/internal/msl"
	"medmaker/internal/oem"
	"medmaker/internal/wrapper"
)

// MatExtent is one materialized view extent an executor may scan instead
// of exchanging with sources: the view's label and its top-level objects.
// The objects are shared with the materialization that produced them and
// must be treated as immutable (the engine copies source material before
// mutating it, so this holds throughout MedMaker).
type MatExtent struct {
	View string
	Objs []*oem.Object
}

// MatScanNode evaluates a query node's template against a materialized
// view extent held in memory, instead of exchanging with a source. It
// keeps QueryNode's full semantics — leaf or parameterized, negation as
// anti-join, extraction under the input row, projection — but performs
// zero source exchanges: nothing is recorded in the statistics store's
// exchange counters, the trace's SourceStats, or the process metrics,
// which is exactly the property materialization buys.
type MatScanNode struct {
	QueryNode
	// View names the materialized view the extent came from.
	View string
	// Objs is the extent: the view's materialized top-level objects.
	Objs []*oem.Object
}

// Label implements Node.
func (n *MatScanNode) Label() string {
	kind := "matscan"
	if n.Child != nil {
		kind = "param-matscan"
	}
	if n.Negated {
		kind = "anti-" + kind
	}
	return kind + "(" + n.View + ")"
}

func (n *MatScanNode) run(rs *runState, kids []*Table) (*Table, error) {
	inputRows := []match.Env{nil}
	if len(kids) == 1 {
		inputRows = kids[0].Envs()
	}
	// Distinct instantiations share one local evaluation, mirroring the
	// batched query path's deduplication; the shared memo keeps this scan
	// serial (extents are typically small, the memo carries the savings).
	memo := make(map[string][]*oem.Object)
	out := outTable(n.Needed)
	for i, row := range inputRows {
		if err := checkStride(rs, i); err != nil {
			return nil, err
		}
		vals := n.paramVals(row)
		key := n.paramKey(vals)
		objs, done := memo[key]
		if !done {
			q := n.Send
			if len(vals) > 0 {
				var err error
				q, err = msl.BindVars(n.Send, vals)
				if err != nil {
					return nil, err
				}
			}
			var err error
			objs, err = wrapper.Eval(q, n.Objs, rs.ex.IDGen)
			if err != nil {
				return nil, err
			}
			memo[key] = objs
		}
		envs, err := n.extract(row, objs)
		if err != nil {
			return nil, err
		}
		for _, e := range envs {
			out.AppendEnv(e)
		}
	}
	return out, nil
}

// SubstituteMatScan rewrites the graph rooted at n, replacing every query
// node whose source is one of the named extents with a MatScanNode over
// that extent's objects. The rewrite happens after planning, so the
// optimizer's ordering and pushdown decisions — made against the extent
// facade's cardinalities — carry over; only the exchange mechanism
// changes. Nodes are rewritten in place (the plan is single-use).
func SubstituteMatScan(n Node, extents map[string]MatExtent) Node {
	switch t := n.(type) {
	case *QueryNode:
		if t.Child != nil {
			t.Child = SubstituteMatScan(t.Child, extents)
		}
		ext, ok := extents[t.Source]
		if !ok {
			return t
		}
		ms := &MatScanNode{QueryNode: *t, View: ext.View, Objs: ext.Objs}
		if !ms.HasEst {
			ms.EstRows, ms.HasEst = float64(len(ext.Objs)), true
		}
		return ms
	case *MatScanNode:
		if t.Child != nil {
			t.Child = SubstituteMatScan(t.Child, extents)
		}
	case *ExtPredNode:
		t.Child = SubstituteMatScan(t.Child, extents)
	case *JoinNode:
		t.Left = SubstituteMatScan(t.Left, extents)
		t.Right = SubstituteMatScan(t.Right, extents)
	case *DedupNode:
		t.Child = SubstituteMatScan(t.Child, extents)
	case *ConstructNode:
		t.Child = SubstituteMatScan(t.Child, extents)
	case *FuseNode:
		t.Child = SubstituteMatScan(t.Child, extents)
	case *UnionNode:
		for i, in := range t.Inputs {
			t.Inputs[i] = SubstituteMatScan(in, extents)
		}
	}
	return n
}
