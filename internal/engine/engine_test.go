package engine

import (
	"strings"
	"testing"

	"medmaker/internal/extfn"
	"medmaker/internal/match"
	"medmaker/internal/msl"
	"medmaker/internal/oem"
	"medmaker/internal/oemstore"
	"medmaker/internal/wrapper"
)

func testExecutor(t *testing.T) *Executor {
	t.Helper()
	whois, err := oemstore.FromText("whois", `
	    <person, set, {<name, 'Joe Chung'>, <dept, 'CS'>, <relation, 'employee'>, <e_mail, 'chung@cs'>}>
	    <person, set, {<name, 'Nick Naive'>, <dept, 'CS'>, <relation, 'student'>, <year, 3>}>`)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := oemstore.FromText("cs", `
	    <employee, set, {<first_name, 'Joe'>, <last_name, 'Chung'>, <title, 'professor'>}>
	    <student, set, {<first_name, 'Nick'>, <last_name, 'Naive'>, <year, 3>}>`)
	if err != nil {
		t.Fatal(err)
	}
	reg := wrapper.NewRegistry()
	reg.Add(whois, cs)
	decls := msl.MustParseProgram(`decomp(bound, free, free) by name_to_lnfn.`).Decls
	tbl, err := extfn.NewTable(extfn.NewRegistry(), decls)
	if err != nil {
		t.Fatal(err)
	}
	return &Executor{Sources: reg, Extfn: tbl, IDGen: oem.NewIDGen("t"), Stats: NewStats()}
}

func pc(t *testing.T, src string) *msl.PatternConjunct {
	t.Helper()
	r := msl.MustParseRule("X :- " + src + ".")
	return r.Tail[0].(*msl.PatternConjunct)
}

func leafQuery(t *testing.T, source, pattern string, needed ...string) *QueryNode {
	t.Helper()
	conj := pc(t, pattern)
	ov := conj.ObjVar
	if ov == nil {
		ov = &msl.Var{Name: "_O"}
	}
	return &QueryNode{
		Source: source,
		Send: &msl.Rule{
			Head: []msl.HeadTerm{ov},
			Tail: []msl.Conjunct{&msl.PatternConjunct{ObjVar: ov, Pattern: conj.Pattern, Source: source}},
		},
		Extract:       conj.Pattern,
		ExtractObjVar: conj.ObjVar,
		Needed:        needed,
	}
}

func TestQueryNodeLeaf(t *testing.T) {
	ex := testExecutor(t)
	n := leafQuery(t, "whois", `<person {<name N> <relation R> | Rest1}>@whois`, "N", "R", "Rest1")
	out, err := ex.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("query node produced %d rows", out.Len())
	}
	b, _ := out.Row(0).Lookup("N")
	if !b.Val.Equal(oem.String("Joe Chung")) {
		t.Fatalf("N = %v", b)
	}
	// Projection: only the needed vars survive.
	if _, bound := out.Row(0).Lookup("_O"); bound {
		t.Fatal("projection kept an unneeded variable")
	}
	if n.Label() != "query(whois)" {
		t.Fatalf("label: %s", n.Label())
	}
}

func TestParamQueryNode(t *testing.T) {
	ex := testExecutor(t)
	outer := leafQuery(t, "whois", `<person {<name N> <relation R>}>@whois`, "N", "R")
	inner := pc(t, `<R {<first_name FN> <last_name LN> | Rest2}>@cs`)
	n := &QueryNode{
		Child:  outer,
		Source: "cs",
		Send: &msl.Rule{
			Head: []msl.HeadTerm{&msl.Var{Name: "_O"}},
			Tail: []msl.Conjunct{&msl.PatternConjunct{ObjVar: &msl.Var{Name: "_O"}, Pattern: inner.Pattern, Source: "cs"}},
		},
		ParamVars: []string{"R"},
		Extract:   inner.Pattern,
		Needed:    []string{"N", "R", "FN", "LN", "Rest2"},
	}
	out, err := ex.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("param query produced %d rows", out.Len())
	}
	// Join consistency: each row's R matched the person's relation.
	for _, row := range out.Envs() {
		nB, _ := row.Lookup("N")
		fnB, _ := row.Lookup("FN")
		name := string(nB.Val.(oem.String))
		fn := string(fnB.Val.(oem.String))
		if !strings.HasPrefix(name, fn) {
			t.Fatalf("inconsistent join: N=%s FN=%s", name, fn)
		}
	}
	if n.Label() != "param-query(cs)" {
		t.Fatalf("label: %s", n.Label())
	}
	if !strings.Contains(n.Detail(), "$R") {
		t.Fatalf("detail should mark parameters: %s", n.Detail())
	}
}

func TestParamQuerySkipsNonAtomicBindings(t *testing.T) {
	ex := testExecutor(t)
	// Rest1 is set-bound; declaring it a param must not break execution —
	// the engine leaves it free and the extractor's env join enforces it.
	outer := leafQuery(t, "whois", `<person {<name N> | Rest1}>@whois`, "N", "Rest1")
	inner := pc(t, `<person {<name N> | Rest1}>@whois`)
	n := &QueryNode{
		Child:     outer,
		Source:    "whois",
		Send:      &msl.Rule{Head: []msl.HeadTerm{&msl.Var{Name: "_O"}}, Tail: []msl.Conjunct{&msl.PatternConjunct{ObjVar: &msl.Var{Name: "_O"}, Pattern: inner.Pattern, Source: "whois"}}},
		ParamVars: []string{"N", "Rest1"},
		Extract:   inner.Pattern,
		Needed:    []string{"N", "Rest1"},
	}
	out, err := ex.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("got %d rows", out.Len())
	}
}

func TestExtPredNode(t *testing.T) {
	ex := testExecutor(t)
	outer := leafQuery(t, "whois", `<person {<name N>}>@whois`, "N")
	r := msl.MustParseRule(`X :- X:<p>@s AND decomp(N, LN, FN).`)
	n := &ExtPredNode{Child: outer, Pred: r.Tail[1].(*msl.PredicateConjunct), Needed: []string{"N", "LN", "FN"}}
	out, err := ex.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("extpred produced %d rows", out.Len())
	}
	for _, row := range out.Envs() {
		if _, ok := row.Lookup("LN"); !ok {
			t.Fatal("LN not bound")
		}
	}
	if !strings.Contains(n.Label(), "decomp") {
		t.Fatal("label")
	}
}

func TestJoinNodeHashAndCross(t *testing.T) {
	ex := testExecutor(t)
	left := leafQuery(t, "whois", `<person {<name N> <relation R>}>@whois`, "N", "R")
	right := leafQuery(t, "cs", `<R {<first_name FN>}>@cs`, "R", "FN")
	join := &JoinNode{Left: left, Right: right, Shared: []string{"R"}, Needed: []string{"N", "R", "FN"}}
	out, err := ex.Run(join)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("hash join produced %d rows, want 2", out.Len())
	}
	cross := &JoinNode{Left: left, Right: right, Needed: []string{"N", "FN"}}
	outC, err := ex.Run(cross)
	if err != nil {
		t.Fatal(err)
	}
	// Cross product joins envs; shared R still forces consistency through
	// Env.Join, so the count matches the hash join here.
	if outC.Len() != 2 {
		t.Fatalf("cross join produced %d rows", outC.Len())
	}
	if join.Label() != "hash-join" || cross.Label() != "cross-join" {
		t.Fatal("labels")
	}
}

func TestDedupNode(t *testing.T) {
	ex := testExecutor(t)
	// Both persons share dept CS; dedup on D keeps one row.
	q := leafQuery(t, "whois", `<person {<dept D>}>@whois`, "D")
	n := &DedupNode{Child: q, Vars: []string{"D"}}
	out, err := ex.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("dedup kept %d rows", out.Len())
	}
}

func TestConstructAndUnion(t *testing.T) {
	ex := testExecutor(t)
	q1 := leafQuery(t, "whois", `<person {<name N>}>@whois`, "N")
	head := msl.MustParseRule(`<who N> :- <x>@s.`).Head
	c1 := &ConstructNode{Child: &DedupNode{Child: q1, Vars: []string{"N"}}, Head: head}
	c2 := &ConstructNode{Child: &DedupNode{Child: q1, Vars: []string{"N"}}, Head: head}
	union := &UnionNode{Inputs: []Node{c1, c2}}
	objs, err := ex.RunObjects(union)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 4 {
		t.Fatalf("union produced %d objects", len(objs))
	}
	// Final dedup folds the two branches.
	final := &DedupNode{Child: union, Vars: []string{ResultVar}}
	objs2, err := ex.RunObjects(final)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs2) != 2 {
		t.Fatalf("deduped union produced %d objects", len(objs2))
	}
	for _, o := range objs2 {
		if o.Label != "who" {
			t.Fatalf("constructed %q", o.Label)
		}
	}
}

func TestRunObjectsRejectsNonResultTable(t *testing.T) {
	ex := testExecutor(t)
	q := leafQuery(t, "whois", `<person {<name N>}>@whois`, "N")
	if _, err := ex.RunObjects(q); err == nil {
		t.Fatal("RunObjects accepted a table without result objects")
	}
}

func TestUnknownSource(t *testing.T) {
	ex := testExecutor(t)
	q := leafQuery(t, "ghost", `<person {<name N>}>@ghost`, "N")
	if _, err := ex.Run(q); err == nil {
		t.Fatal("unknown source accepted")
	}
}

func TestTraceOutput(t *testing.T) {
	ex := testExecutor(t)
	var sb strings.Builder
	ex.Trace = &sb
	ex.TraceRows = 1
	q := leafQuery(t, "whois", `<person {<name N>}>@whois`, "N")
	if _, err := ex.Run(q); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "query(whois)") || !strings.Contains(out, "2 rows") {
		t.Fatalf("trace:\n%s", out)
	}
	if !strings.Contains(out, "more rows") {
		t.Fatalf("trace truncation missing:\n%s", out)
	}
}

func TestStatsRecording(t *testing.T) {
	ex := testExecutor(t)
	q := leafQuery(t, "whois", `<person {<name N>}>@whois`, "N")
	if _, err := ex.Run(q); err != nil {
		t.Fatal(err)
	}
	est, ok := ex.Stats.Estimate("whois", "person")
	if !ok || est != 2 {
		t.Fatalf("estimate = %v, %v", est, ok)
	}
	if ex.Stats.Observations("whois", "person") != 1 {
		t.Fatal("observations")
	}
	if _, ok := ex.Stats.Estimate("whois", "nothing"); ok {
		t.Fatal("estimate for unseen shape")
	}
}

func TestParallelExecutionMatchesSequential(t *testing.T) {
	seq := testExecutor(t)
	par := testExecutor(t)
	par.Parallelism = 8
	mk := func() Node {
		outer := leafQuery(t, "whois", `<person {<name N> <relation R>}>@whois`, "N", "R")
		inner := pc(t, `<R {<first_name FN>}>@cs`)
		return &QueryNode{
			Child:  outer,
			Source: "cs",
			Send: &msl.Rule{
				Head: []msl.HeadTerm{&msl.Var{Name: "_O"}},
				Tail: []msl.Conjunct{&msl.PatternConjunct{ObjVar: &msl.Var{Name: "_O"}, Pattern: inner.Pattern, Source: "cs"}},
			},
			ParamVars: []string{"R"},
			Extract:   inner.Pattern,
			Needed:    []string{"N", "R", "FN"},
		}
	}
	a, err := seq.Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("parallel %d rows vs sequential %d", b.Len(), a.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if !a.Row(i).Equal(b.Row(i)) {
			t.Fatalf("row %d differs: %v vs %v", i, a.Row(i), b.Row(i))
		}
	}
	// Parallel error propagation: unknown source inside a fan-out.
	bad := mk().(*QueryNode)
	bad.Source = "ghost"
	if _, err := par.Run(bad); err == nil {
		t.Fatal("parallel fan-out swallowed the error")
	}
	// Parallel sibling subtrees (join children).
	join := &JoinNode{
		Left:   leafQuery(t, "whois", `<person {<name N> <relation R>}>@whois`, "N", "R"),
		Right:  leafQuery(t, "cs", `<R {<first_name FN>}>@cs`, "R", "FN"),
		Shared: []string{"R"},
		Needed: []string{"N", "FN"},
	}
	out, err := par.Run(join)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("parallel join rows: %d", out.Len())
	}
	// Tracing forces sequential execution (parallelism() == 1).
	par.Trace = &strings.Builder{}
	if par.parallelism() != 1 {
		t.Fatal("tracing did not force sequential execution")
	}
}

func TestCountQueries(t *testing.T) {
	left := &QueryNode{}
	right := &QueryNode{Child: &QueryNode{}}
	j := &JoinNode{Left: left, Right: right}
	if got := CountQueries(j); got != 3 {
		t.Fatalf("CountQueries = %d", got)
	}
}

func TestTableFormat(t *testing.T) {
	e1, _ := match.Env(nil).Extend("N", match.BindString("Joe Chung"))
	e2, _ := match.Env(nil).Extend("N", match.BindString("Nick Naive"))
	tbl := NewTable([]string{"N", "Missing"}, []match.Env{e1, e2})
	var sb strings.Builder
	tbl.Format(&sb, 0)
	out := sb.String()
	if !strings.Contains(out, "'Joe Chung'") || !strings.Contains(out, "Missing") {
		t.Fatalf("table format:\n%s", out)
	}
	// Without explicit cols, bound names are discovered.
	tbl2 := NewTable(nil, []match.Env{e1})
	sb.Reset()
	tbl2.Format(&sb, 0)
	if !strings.Contains(sb.String(), "N") {
		t.Fatalf("auto columns:\n%s", sb.String())
	}
}

func TestPrintGraph(t *testing.T) {
	q := &QueryNode{Source: "whois", Send: msl.MustParseRule(`O :- O:<person>@whois.`), Extract: &msl.ObjectPattern{Label: &msl.Const{Value: oem.String("person")}}}
	c := &ConstructNode{Child: q, Head: msl.MustParseRule(`<out {X}> :- <p>@s.`).Head}
	var sb strings.Builder
	PrintGraph(&sb, c)
	out := sb.String()
	if !strings.Contains(out, "construct") || !strings.Contains(out, "    query(whois)") {
		t.Fatalf("graph:\n%s", out)
	}
}
