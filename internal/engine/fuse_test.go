package engine

import (
	"testing"

	"medmaker/internal/match"
	"medmaker/internal/oem"
)

// tableNode injects a fixed table into a graph, for node-level tests.
type tableNode struct{ t *Table }

func (n *tableNode) Label() string                           { return "fixed" }
func (n *tableNode) Detail() string                          { return "test input" }
func (n *tableNode) Kids() []Node                            { return nil }
func (n *tableNode) OutVars() []string                       { return n.t.Cols }
func (n *tableNode) run(*runState, []*Table) (*Table, error) { return n.t, nil }

func resultTable(objs ...*oem.Object) *Table {
	t := newProjTable([]string{ResultVar})
	for _, o := range objs {
		t.AppendBinding(ResultVar, match.BindObj(o))
	}
	return t
}

func TestFuseMergesSameOID(t *testing.T) {
	a := oem.NewSet("&pub(1)", "publication",
		oem.New("&a1", "title", "P1"),
		oem.New("&a2", "year", 1980),
	)
	b := oem.NewSet("&pub(1)", "publication",
		oem.New("&b1", "title", "P1"),
		oem.New("&b2", "area", "db"),
	)
	other := oem.NewSet("&pub(2)", "publication", oem.New("&c1", "title", "P2"))
	ex := &Executor{}
	out, err := ex.Run(&FuseNode{Child: &tableNode{resultTable(a, b, other)}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("fused to %d objects, want 2", out.Len())
	}
	fusedBinding, _ := out.Row(0).Lookup(ResultVar)
	fused := fusedBinding.Obj
	if fused.OID != "&pub(1)" {
		t.Fatalf("first fused oid %s", fused.OID)
	}
	labels := fused.Subobjects().Labels()
	want := []string{"area", "title", "year"}
	if len(labels) != 3 || labels[0] != want[0] || labels[1] != want[1] || labels[2] != want[2] {
		t.Fatalf("fused labels %v, want %v (title deduplicated)", labels, want)
	}
}

func TestFusePassesUniqueAndNilOIDs(t *testing.T) {
	a := oem.NewSet("&x1", "p", oem.New("", "v", 1))
	b := oem.NewSet("&x2", "p", oem.New("", "v", 2))
	anon1 := &oem.Object{Label: "p", Value: oem.Set{oem.New("", "v", 3)}}
	anon2 := &oem.Object{Label: "p", Value: oem.Set{oem.New("", "v", 4)}}
	ex := &Executor{}
	out, err := ex.Run(&FuseNode{Child: &tableNode{resultTable(a, b, anon1, anon2)}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 4 {
		t.Fatalf("fusion touched unique/anonymous objects: %d rows", out.Len())
	}
}

func TestFuseAtomicConflictKeepsFirst(t *testing.T) {
	a := oem.New("&k", "status", "ok")
	b := oem.New("&k", "status", "bad")
	ex := &Executor{}
	out, err := ex.Run(&FuseNode{Child: &tableNode{resultTable(a, b)}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("rows: %d", out.Len())
	}
	got, _ := out.Row(0).Lookup(ResultVar)
	if v, _ := got.Obj.AtomString(); v != "ok" {
		t.Fatalf("first derivation should win, got %q", v)
	}
}

func TestFuseOrderPreserved(t *testing.T) {
	objs := []*oem.Object{
		oem.NewSet("&b", "p", oem.New("", "v", 1)),
		oem.NewSet("&a", "p", oem.New("", "v", 2)),
		oem.NewSet("&b", "p", oem.New("", "w", 3)),
	}
	ex := &Executor{}
	out, err := ex.Run(&FuseNode{Child: &tableNode{resultTable(objs...)}})
	if err != nil {
		t.Fatal(err)
	}
	first, _ := out.Row(0).Lookup(ResultVar)
	second, _ := out.Row(1).Lookup(ResultVar)
	if first.Obj.OID != "&b" || second.Obj.OID != "&a" {
		t.Fatalf("first-appearance order lost: %s, %s", first.Obj.OID, second.Obj.OID)
	}
	if len(first.Obj.Subobjects()) != 2 {
		t.Fatalf("&b not fused: %s", oem.Format(first.Obj))
	}
}
