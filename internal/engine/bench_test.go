package engine

import (
	"context"
	"fmt"
	"testing"

	"medmaker/internal/match"
)

// benchTable builds an n-row table binding K to i%keys and V to i — a
// join/dedup input with controllable key cardinality.
func benchTable(n, keys int) *Table {
	t := newProjTable([]string{"K", "V"})
	for i := 0; i < n; i++ {
		e := match.Env{
			"K": match.BindString(fmt.Sprintf("k%03d", i%keys)),
			"V": match.BindString(fmt.Sprintf("v%06d", i)),
		}
		t.AppendEnv(e)
	}
	return t
}

func benchExecutors() []struct {
	name string
	ex   *Executor
} {
	return []struct {
		name string
		ex   *Executor
	}{
		{"par=1", &Executor{Parallelism: 1}},
		{"par=8", &Executor{Parallelism: 8}},
	}
}

// BenchmarkHashJoin measures the partitioned hash join over columnar
// tables: build-side hashing, partitioning, and probe.
func BenchmarkHashJoin(b *testing.B) {
	left := benchTable(4096, 512)
	right := benchTable(4096, 512)
	n := &JoinNode{Shared: []string{"K"}, Needed: []string{"K", "V"}}
	for _, be := range benchExecutors() {
		b.Run(be.name, func(b *testing.B) {
			rs := newRunState(be.ex, context.Background(), n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := n.run(rs, []*Table{left, right})
				if err != nil {
					b.Fatal(err)
				}
				if out.Len() == 0 {
					b.Fatal("empty join")
				}
			}
		})
	}
}

// BenchmarkDedup measures duplicate elimination: morsel-parallel row
// hashing plus the sequential first-occurrence scan.
func BenchmarkDedup(b *testing.B) {
	in := benchTable(8192, 1024)
	n := &DedupNode{Vars: []string{"K"}}
	for _, be := range benchExecutors() {
		b.Run(be.name, func(b *testing.B) {
			rs := newRunState(be.ex, context.Background(), n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := n.run(rs, []*Table{in})
				if err != nil {
					b.Fatal(err)
				}
				if out.Len() != 1024 {
					b.Fatalf("dedup kept %d rows", out.Len())
				}
			}
		})
	}
}
