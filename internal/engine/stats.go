package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Stats is the optimizer's statistics database, built from the results of
// previous queries (Section 3.5 of the paper). It aggregates, per source
// and query shape, how many objects queries of that shape returned, and
// answers cardinality estimates for join ordering.
type Stats struct {
	mu      sync.RWMutex
	entries map[string]*statEntry
}

type statEntry struct {
	queries int
	rows    int
}

// NewStats returns an empty statistics store.
func NewStats() *Stats {
	return &Stats{entries: make(map[string]*statEntry)}
}

// Record adds one observation: a query of the given shape against the
// source returned n objects.
func (s *Stats) Record(source, shape string, n int) {
	key := source + "@" + shape
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[key]
	if e == nil {
		e = &statEntry{}
		s.entries[key] = e
	}
	e.queries++
	e.rows += n
}

// Estimate returns the average result size observed for the shape at the
// source, and whether any observation exists.
func (s *Stats) Estimate(source, shape string) (float64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[source+"@"+shape]
	if !ok || e.queries == 0 {
		return 0, false
	}
	return float64(e.rows) / float64(e.queries), true
}

// Observations returns the number of recorded queries for the shape.
func (s *Stats) Observations(source, shape string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[source+"@"+shape]
	if !ok {
		return 0
	}
	return e.queries
}

// String summarizes the store, sorted by key, for traces and debugging.
func (s *Stats) String() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.entries))
	for k := range s.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		e := s.entries[k]
		fmt.Fprintf(&sb, "%s: %d queries, avg %.1f rows\n", k, e.queries, float64(e.rows)/float64(e.queries))
	}
	return sb.String()
}
