package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Stats is the optimizer's statistics database, built from the results of
// previous queries (Section 3.5 of the paper). It aggregates, per source
// and query shape, how many objects queries of that shape returned, and
// answers cardinality estimates for join ordering.
type Stats struct {
	mu      sync.RWMutex
	entries map[string]*statEntry
	sources map[string]*sourceEntry
}

type statEntry struct {
	queries int
	rows    int
}

// sourceEntry tracks per-source traffic: how many exchanges (network
// round-trips) query nodes performed, how many queries those exchanges
// carried (batching packs several per exchange), and how the wrapper-level
// answer cache fared.
type sourceEntry struct {
	exchanges   int
	queries     int
	cacheHits   int
	cacheMisses int
	errors      int
	lastErrs    []error
}

// maxSourceErrs bounds the per-source retained error list; the count keeps
// accumulating past it.
const maxSourceErrs = 8

// NewStats returns an empty statistics store.
func NewStats() *Stats {
	return &Stats{entries: make(map[string]*statEntry), sources: make(map[string]*sourceEntry)}
}

func (s *Stats) source(name string) *sourceEntry {
	e := s.sources[name]
	if e == nil {
		e = &sourceEntry{}
		s.sources[name] = e
	}
	return e
}

// RecordExchange adds one source exchange (a network round-trip, or its
// in-process equivalent) that carried the given number of queries. The
// datamerge engine calls this from every query node, so the counters
// measure exactly the traffic the parameterized-query batching is meant
// to reduce.
func (s *Stats) RecordExchange(source string, queries int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.source(source)
	e.exchanges++
	e.queries += queries
}

// SourceExchanges returns how many exchanges were performed against the
// source.
func (s *Stats) SourceExchanges(source string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if e, ok := s.sources[source]; ok {
		return e.exchanges
	}
	return 0
}

// SourceQueries returns how many queries were sent to the source (each
// exchange carries one or more).
func (s *Stats) SourceQueries(source string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if e, ok := s.sources[source]; ok {
		return e.queries
	}
	return 0
}

// TotalExchanges sums exchanges over all sources.
func (s *Stats) TotalExchanges() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := 0
	for _, e := range s.sources {
		total += e.exchanges
	}
	return total
}

// TotalQueries sums queries over all sources.
func (s *Stats) TotalQueries() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := 0
	for _, e := range s.sources {
		total += e.queries
	}
	return total
}

// RecordCache adds one answer-cache lookup outcome for the source; the
// wrapper-level cache reports through this so the cost model can see hit
// rates.
func (s *Stats) RecordCache(source string, hit bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.source(source)
	if hit {
		e.cacheHits++
	} else {
		e.cacheMisses++
	}
}

// CacheCounts returns the answer-cache hit and miss totals for the source.
func (s *Stats) CacheCounts(source string) (hits, misses int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if e, ok := s.sources[source]; ok {
		return e.cacheHits, e.cacheMisses
	}
	return 0, 0
}

// RecordError adds one failed exchange against the source — a refusal,
// a broken connection, or a per-source timeout. The run state reports
// every policy-absorbed failure here, so the counters tell the cost model
// (and the operator reading a trace) which sources are flaky.
func (s *Stats) RecordError(source string, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.source(source)
	e.errors++
	if len(e.lastErrs) < maxSourceErrs {
		e.lastErrs = append(e.lastErrs, err)
	}
}

// SourceErrorCount returns how many failed exchanges were recorded for
// the source.
func (s *Stats) SourceErrorCount(source string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if e, ok := s.sources[source]; ok {
		return e.errors
	}
	return 0
}

// SourceErrors returns the retained failures for the source (at most the
// first maxSourceErrs; SourceErrorCount has the full tally).
func (s *Stats) SourceErrors(source string) []error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if e, ok := s.sources[source]; ok {
		return append([]error(nil), e.lastErrs...)
	}
	return nil
}

// CacheHitRate returns the observed answer-cache hit rate for the source
// and whether any lookup was recorded.
func (s *Stats) CacheHitRate(source string) (float64, bool) {
	hits, misses := s.CacheCounts(source)
	if hits+misses == 0 {
		return 0, false
	}
	return float64(hits) / float64(hits+misses), true
}

// Record adds one observation: a query of the given shape against the
// source returned n objects.
func (s *Stats) Record(source, shape string, n int) {
	key := source + "@" + shape
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[key]
	if e == nil {
		e = &statEntry{}
		s.entries[key] = e
	}
	e.queries++
	e.rows += n
}

// Estimate returns the average result size observed for the shape at the
// source, and whether any observation exists.
func (s *Stats) Estimate(source, shape string) (float64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[source+"@"+shape]
	if !ok || e.queries == 0 {
		return 0, false
	}
	return float64(e.rows) / float64(e.queries), true
}

// Observations returns the number of recorded queries for the shape.
func (s *Stats) Observations(source, shape string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[source+"@"+shape]
	if !ok {
		return 0
	}
	return e.queries
}

// String summarizes the store, sorted by key, for traces and debugging.
func (s *Stats) String() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.entries))
	for k := range s.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		e := s.entries[k]
		fmt.Fprintf(&sb, "%s: %d queries, avg %.1f rows\n", k, e.queries, float64(e.rows)/float64(e.queries))
	}
	srcKeys := make([]string, 0, len(s.sources))
	for k := range s.sources {
		srcKeys = append(srcKeys, k)
	}
	sort.Strings(srcKeys)
	for _, k := range srcKeys {
		e := s.sources[k]
		fmt.Fprintf(&sb, "%s: %d exchanges carrying %d queries", k, e.exchanges, e.queries)
		if e.cacheHits+e.cacheMisses > 0 {
			fmt.Fprintf(&sb, ", cache %d/%d hits", e.cacheHits, e.cacheHits+e.cacheMisses)
		}
		if e.errors > 0 {
			fmt.Fprintf(&sb, ", %d errors", e.errors)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
