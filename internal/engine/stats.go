package engine

import (
	"container/list"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"medmaker/internal/metrics"
)

// Stats is the optimizer's statistics database, built from the results of
// previous queries (Section 3.5 of the paper). It aggregates, per source
// and query shape, how many objects queries of that shape returned, and
// answers cardinality estimates for join ordering. Estimates decay as
// exponentially weighted moving averages so the store tracks a drifting
// workload instead of freezing its first observations, and the shape map
// is bounded by LRU eviction so distinct-query workloads cannot grow it
// without limit.
type Stats struct {
	mu      sync.RWMutex
	entries map[string]*statEntry
	lru     *list.List // front = most recently touched entry key
	max     int
	evicted int
	gen     uint64
	sources map[string]*sourceEntry
}

type statEntry struct {
	queries int
	avg     float64 // EWMA of observed values (rows, or ratios for |out keys)
	elem    *list.Element
}

// cardAlpha is the EWMA weight for new cardinality observations. A
// constant series keeps its value exactly (so estimates over stable data
// are exact), while a shifted workload converges within a handful of
// queries.
const cardAlpha = 0.4

// latAlpha and errAlpha weight the per-source latency and error-rate
// EWMAs that replica routing scores members by.
const (
	latAlpha = 0.3
	errAlpha = 0.25
)

// DefaultStatsEntries bounds the shape-keyed entry map; recording a new
// shape past the bound evicts the least recently touched entry and bumps
// the stats.evicted metric.
const DefaultStatsEntries = 4096

// sourceEntry tracks per-source traffic: how many exchanges (network
// round-trips) query nodes performed, how many queries those exchanges
// carried (batching packs several per exchange), how the wrapper-level
// answer cache fared, and the latency/error EWMAs replica routing reads.
type sourceEntry struct {
	exchanges   int
	queries     int
	cacheHits   int
	cacheMisses int
	errors      int
	lastErrs    []error
	latEWMA     float64 // seconds per exchange
	latSeen     bool
	errEWMA     float64 // in [0,1]: fraction of recent exchanges that failed
}

// maxSourceErrs bounds the per-source retained error list; the count keeps
// accumulating past it.
const maxSourceErrs = 8

// NewStats returns an empty statistics store.
func NewStats() *Stats {
	return &Stats{
		entries: make(map[string]*statEntry),
		lru:     list.New(),
		max:     DefaultStatsEntries,
		sources: make(map[string]*sourceEntry),
	}
}

// SetMaxEntries overrides the shape-entry bound (0 restores the default).
// Shrinking below the current population evicts immediately.
func (s *Stats) SetMaxEntries(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n <= 0 {
		n = DefaultStatsEntries
	}
	s.max = n
	s.evictLocked()
}

func (s *Stats) source(name string) *sourceEntry {
	e := s.sources[name]
	if e == nil {
		e = &sourceEntry{}
		s.sources[name] = e
	}
	return e
}

// Generation returns a counter that advances on every shape observation.
// Cached plans remember the generation they were planned under; a later
// generation is the cue to check them for estimate drift.
func (s *Stats) Generation() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gen
}

// RecordExchange adds one source exchange (a network round-trip, or its
// in-process equivalent) that carried the given number of queries. The
// datamerge engine calls this from every query node, so the counters
// measure exactly the traffic the parameterized-query batching is meant
// to reduce.
func (s *Stats) RecordExchange(source string, queries int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.source(source)
	e.exchanges++
	e.queries += queries
}

// RecordLatency folds one successful exchange's wall time into the
// source's latency EWMA and decays its error rate toward zero. The engine
// reports every timed exchange here, so replica scores follow what the
// engine actually observed rather than what the wrapper promises.
func (s *Stats) RecordLatency(source string, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.source(source)
	sec := d.Seconds()
	if !e.latSeen {
		e.latEWMA = sec
		e.latSeen = true
	} else {
		e.latEWMA += latAlpha * (sec - e.latEWMA)
	}
	e.errEWMA *= 1 - errAlpha
}

// SourceLatency returns the EWMA exchange latency observed for the source
// and whether any exchange was timed.
func (s *Stats) SourceLatency(source string) (time.Duration, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if e, ok := s.sources[source]; ok && e.latSeen {
		return time.Duration(e.latEWMA * float64(time.Second)), true
	}
	return 0, false
}

// SourceErrorRate returns the EWMA failure fraction for the source in
// [0,1] (zero when unobserved).
func (s *Stats) SourceErrorRate(source string) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if e, ok := s.sources[source]; ok {
		return e.errEWMA
	}
	return 0
}

// ReplicaScore folds a source's latency and error EWMAs into one routing
// score — lower is better. Unobserved members return (0, false) so the
// router explores them before settling. Errors dominate: a member failing
// every exchange scores far worse than a slow-but-healthy one.
func (s *Stats) ReplicaScore(source string) (float64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.sources[source]
	if !ok || (!e.latSeen && e.errEWMA == 0) {
		return 0, false
	}
	return e.latEWMA*(1+20*e.errEWMA) + e.errEWMA, true
}

// SourceExchanges returns how many exchanges were performed against the
// source.
func (s *Stats) SourceExchanges(source string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if e, ok := s.sources[source]; ok {
		return e.exchanges
	}
	return 0
}

// SourceQueries returns how many queries were sent to the source (each
// exchange carries one or more).
func (s *Stats) SourceQueries(source string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if e, ok := s.sources[source]; ok {
		return e.queries
	}
	return 0
}

// TotalExchanges sums exchanges over all sources.
func (s *Stats) TotalExchanges() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := 0
	for _, e := range s.sources {
		total += e.exchanges
	}
	return total
}

// TotalQueries sums queries over all sources.
func (s *Stats) TotalQueries() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := 0
	for _, e := range s.sources {
		total += e.queries
	}
	return total
}

// RecordCache adds one answer-cache lookup outcome for the source; the
// wrapper-level cache reports through this so the cost model can see hit
// rates.
func (s *Stats) RecordCache(source string, hit bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.source(source)
	if hit {
		e.cacheHits++
	} else {
		e.cacheMisses++
	}
}

// CacheCounts returns the answer-cache hit and miss totals for the source.
func (s *Stats) CacheCounts(source string) (hits, misses int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if e, ok := s.sources[source]; ok {
		return e.cacheHits, e.cacheMisses
	}
	return 0, 0
}

// RecordError adds one failed exchange against the source — a refusal,
// a broken connection, or a per-source timeout. The run state reports
// every policy-absorbed failure here, so the counters tell the cost model
// (and the operator reading a trace) which sources are flaky, and the
// error EWMA steers replica routing away from them.
func (s *Stats) RecordError(source string, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.source(source)
	e.errors++
	if len(e.lastErrs) < maxSourceErrs {
		e.lastErrs = append(e.lastErrs, err)
	}
	e.errEWMA += errAlpha * (1 - e.errEWMA)
}

// SourceErrorCount returns how many failed exchanges were recorded for
// the source.
func (s *Stats) SourceErrorCount(source string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if e, ok := s.sources[source]; ok {
		return e.errors
	}
	return 0
}

// SourceErrors returns the retained failures for the source (at most the
// first maxSourceErrs; SourceErrorCount has the full tally).
func (s *Stats) SourceErrors(source string) []error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if e, ok := s.sources[source]; ok {
		return append([]error(nil), e.lastErrs...)
	}
	return nil
}

// CacheHitRate returns the observed answer-cache hit rate for the source
// and whether any lookup was recorded.
func (s *Stats) CacheHitRate(source string) (float64, bool) {
	hits, misses := s.CacheCounts(source)
	if hits+misses == 0 {
		return 0, false
	}
	return float64(hits) / float64(hits+misses), true
}

// Record adds one observation: a query of the given shape against the
// source returned n objects.
func (s *Stats) Record(source, shape string, n int) {
	s.RecordValue(source, shape, float64(n))
}

// RecordValue folds one observed value into the EWMA for the shape at the
// source. Cardinality feedback stores rows here; the adaptive planner also
// stores per-input-row output ratios under derived "|out" shapes.
func (s *Stats) RecordValue(source, shape string, v float64) {
	key := source + "@" + shape
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[key]
	if e == nil {
		e = &statEntry{avg: v}
		e.elem = s.lru.PushFront(key)
		s.entries[key] = e
	} else {
		e.avg += cardAlpha * (v - e.avg)
		s.lru.MoveToFront(e.elem)
	}
	e.queries++
	s.gen++
	s.evictLocked()
}

func (s *Stats) evictLocked() {
	for len(s.entries) > s.max {
		back := s.lru.Back()
		if back == nil {
			return
		}
		key := back.Value.(string)
		s.lru.Remove(back)
		delete(s.entries, key)
		s.evicted++
		metrics.Default().Counter("stats.evicted").Inc()
	}
}

// Evicted returns how many shape entries LRU eviction has dropped.
func (s *Stats) Evicted() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.evicted
}

// Entries returns the current shape-entry population.
func (s *Stats) Entries() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// Estimate returns the decayed average result size observed for the shape
// at the source, and whether any observation exists. Reads do not touch
// LRU order: only recording refreshes an entry, so a shape the workload
// stopped producing ages out even while the planner keeps consulting it.
func (s *Stats) Estimate(source, shape string) (float64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[source+"@"+shape]
	if !ok || e.queries == 0 {
		return 0, false
	}
	return e.avg, true
}

// Observations returns the number of recorded queries for the shape.
func (s *Stats) Observations(source, shape string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[source+"@"+shape]
	if !ok {
		return 0
	}
	return e.queries
}

// String summarizes the store, sorted by key, for traces and debugging.
func (s *Stats) String() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.entries))
	for k := range s.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		e := s.entries[k]
		fmt.Fprintf(&sb, "%s: %d queries, avg %.1f rows\n", k, e.queries, e.avg)
	}
	srcKeys := make([]string, 0, len(s.sources))
	for k := range s.sources {
		srcKeys = append(srcKeys, k)
	}
	sort.Strings(srcKeys)
	for _, k := range srcKeys {
		e := s.sources[k]
		fmt.Fprintf(&sb, "%s: %d exchanges carrying %d queries", k, e.exchanges, e.queries)
		if e.cacheHits+e.cacheMisses > 0 {
			fmt.Fprintf(&sb, ", cache %d/%d hits", e.cacheHits, e.cacheHits+e.cacheMisses)
		}
		if e.errors > 0 {
			fmt.Fprintf(&sb, ", %d errors", e.errors)
		}
		if e.latSeen {
			fmt.Fprintf(&sb, ", lat %s", time.Duration(e.latEWMA*float64(time.Second)).Round(time.Microsecond))
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
