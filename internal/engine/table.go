// Package engine implements MedMaker's datamerge engine: the executor of
// physical datamerge graphs (Section 3.4 and Figure 3.6 of the paper).
//
// A physical datamerge graph is a dataflow tree whose nodes are the
// "machine language" of MedMaker: query nodes send MSL queries to sources,
// extractor logic pulls variable bindings out of the returned objects,
// external-predicate nodes invoke declared functions, parameterized query
// nodes emit one source query per input tuple, join nodes combine
// independently-fetched binding tables, duplicate-elimination nodes
// project and dedup, and constructor nodes create the final result
// objects. Tables of variable bindings flow along the arcs.
package engine

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"medmaker/internal/match"
)

// Table is a binding table flowing along a graph arc: rows of variable
// environments, with a column order for display.
type Table struct {
	// Cols is the display order of variables; rows may bind more
	// variables than listed (Cols is presentational).
	Cols []string
	// Rows are the binding environments.
	Rows []match.Env
}

// NewTable builds a table over the given display columns.
func NewTable(cols []string, rows []match.Env) *Table {
	return &Table{Cols: cols, Rows: rows}
}

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.Rows) }

// Format renders the table for traces, in the style of the tables shown
// beside the arcs of the paper's Figure 3.6. At most maxRows rows are
// shown (0 means all).
func (t *Table) Format(w io.Writer, maxRows int) {
	cols := t.Cols
	if len(cols) == 0 {
		// Fall back to the union of bound variables, sorted.
		seen := map[string]bool{}
		for _, r := range t.Rows {
			for _, n := range r.Names() {
				seen[n] = true
			}
		}
		for n := range seen {
			cols = append(cols, n)
		}
		sort.Strings(cols)
	}
	cells := make([][]string, 0, len(t.Rows)+1)
	cells = append(cells, cols)
	n := len(t.Rows)
	truncated := false
	if maxRows > 0 && n > maxRows {
		n = maxRows
		truncated = true
	}
	for _, row := range t.Rows[:n] {
		line := make([]string, len(cols))
		for i, c := range cols {
			if b, ok := row.Lookup(c); ok {
				line[i] = clip(b.String(), 40)
			} else {
				line[i] = "-"
			}
		}
		cells = append(cells, line)
	}
	widths := make([]int, len(cols))
	for _, line := range cells {
		for i, cell := range line {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for li, line := range cells {
		var sb strings.Builder
		sb.WriteString("  | ")
		for i, cell := range line {
			fmt.Fprintf(&sb, "%-*s | ", widths[i], cell)
		}
		io.WriteString(w, strings.TrimRight(sb.String(), " ")+"\n")
		if li == 0 {
			var sep strings.Builder
			sep.WriteString("  |")
			for _, wd := range widths {
				sep.WriteString(strings.Repeat("-", wd+2))
				sep.WriteString("|")
			}
			io.WriteString(w, sep.String()+"\n")
		}
	}
	if truncated {
		fmt.Fprintf(w, "  … %d more rows\n", len(t.Rows)-n)
	}
}

func clip(s string, n int) string {
	s = strings.ReplaceAll(s, "\n", " ")
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
