// Package engine implements MedMaker's datamerge engine: the executor of
// physical datamerge graphs (Section 3.4 and Figure 3.6 of the paper).
//
// A physical datamerge graph is a dataflow tree whose nodes are the
// "machine language" of MedMaker: query nodes send MSL queries to sources,
// extractor logic pulls variable bindings out of the returned objects,
// external-predicate nodes invoke declared functions, parameterized query
// nodes emit one source query per input tuple, join nodes combine
// independently-fetched binding tables, duplicate-elimination nodes
// project and dedup, and constructor nodes create the final result
// objects. Tables of variable bindings flow along the arcs.
package engine

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"medmaker/internal/match"
)

// Table is a binding table flowing along a graph arc. The layout is
// columnar: one []match.Binding slab per variable, all the same length,
// with a shared var→column index. A row binds a variable when its slot
// in that variable's column is non-zero; the zero Binding means "absent",
// exactly as a missing key does in a match.Env. Operators read and write
// column slots directly — no per-row map allocation, no per-operator
// projection copies (a fixed-schema table projects on append) — and
// match.Env survives as a row view (Row) materialized only at the API
// boundaries that need a real environment: the matcher, external
// functions, and the constructor.
type Table struct {
	// Cols is the display order of variables; rows may bind more
	// variables than listed (Cols is presentational).
	Cols []string

	vars []string       // schema: column order
	idx  map[string]int // var -> column position in vars/cols
	cols [][]match.Binding
	n    int
	// fixed marks a projection schema: appended rows keep only the
	// schema's variables (the operator's Needed projection, applied
	// in-place). A dynamic table instead grows columns for new variables.
	fixed bool
}

// NewTable builds a table over the given display columns, with one column
// per listed variable plus any further variables the rows bind.
func NewTable(cols []string, rows []match.Env) *Table {
	t := newDynTable(cols)
	for _, r := range rows {
		t.AppendEnv(r)
	}
	return t
}

// newProjTable builds an empty fixed-schema table: appends project onto
// exactly the given variables.
func newProjTable(vars []string) *Table {
	t := &Table{
		Cols:  vars,
		vars:  append([]string(nil), vars...),
		idx:   make(map[string]int, len(vars)),
		cols:  make([][]match.Binding, len(vars)),
		fixed: true,
	}
	for i, v := range t.vars {
		t.idx[v] = i
	}
	return t
}

// newDynTable builds an empty dynamic table seeded with the given columns;
// appending rows that bind further variables grows the schema.
func newDynTable(cols []string) *Table {
	t := &Table{
		Cols: cols,
		idx:  make(map[string]int, len(cols)),
	}
	for _, v := range cols {
		t.ensureCol(v)
	}
	return t
}

// outTable builds the output table for an operator with the given
// projection: fixed when the projection is explicit, dynamic ("keep all")
// when it is empty.
func outTable(needed []string) *Table {
	if len(needed) > 0 {
		return newProjTable(needed)
	}
	return newDynTable(nil)
}

// ensureCol returns the column position of v, adding a zero-backfilled
// column when the schema lacks it.
func (t *Table) ensureCol(v string) int {
	if c, ok := t.idx[v]; ok {
		return c
	}
	c := len(t.vars)
	t.vars = append(t.vars, v)
	t.idx[v] = c
	t.cols = append(t.cols, make([]match.Binding, t.n))
	return c
}

// Len returns the number of rows.
func (t *Table) Len() int { return t.n }

// Row materializes row i as an environment holding its bound variables —
// the boundary view handed to the matcher, external functions, and the
// constructor.
func (t *Table) Row(i int) match.Env {
	e := make(match.Env, len(t.vars))
	for c, v := range t.vars {
		if b := t.cols[c][i]; !b.IsZero() {
			e[v] = b
		}
	}
	return e
}

// Envs materializes every row (see Row), in order.
func (t *Table) Envs() []match.Env {
	out := make([]match.Env, t.n)
	for i := range out {
		out[i] = t.Row(i)
	}
	return out
}

// ColIndex returns v's column position, or -1 when the schema lacks it.
func (t *Table) ColIndex(v string) int {
	if c, ok := t.idx[v]; ok {
		return c
	}
	return -1
}

// Column returns v's column slab (length Len), or nil when the schema
// lacks it. The slab is shared, not copied; treat it as read-only.
func (t *Table) Column(v string) []match.Binding {
	if c, ok := t.idx[v]; ok {
		return t.cols[c]
	}
	return nil
}

// AppendEnv appends one row from an environment. A fixed-schema table
// keeps only its schema's variables (the projection); a dynamic table
// grows columns for variables it has not seen, in sorted order for
// determinism.
func (t *Table) AppendEnv(e match.Env) {
	if !t.fixed && len(e) > 0 {
		known := 0
		for _, v := range t.vars {
			if _, ok := e[v]; ok {
				known++
			}
		}
		if known < len(e) {
			missing := make([]string, 0, len(e)-known)
			for k := range e {
				if _, ok := t.idx[k]; !ok {
					missing = append(missing, k)
				}
			}
			sort.Strings(missing)
			for _, k := range missing {
				t.ensureCol(k)
			}
		}
	}
	for c, v := range t.vars {
		t.cols[c] = append(t.cols[c], e[v])
	}
	t.n++
}

// AppendBinding appends one single-variable row directly, without an
// environment; the table must have v in its schema (constructor and
// fusion outputs use this for the result column).
func (t *Table) AppendBinding(v string, b match.Binding) {
	c := t.ensureCol(v)
	for o := range t.cols {
		if o == c {
			t.cols[o] = append(t.cols[o], b)
		} else {
			t.cols[o] = append(t.cols[o], match.Binding{})
		}
	}
	t.n++
}

// appendTable appends every row of o, aligning schemas: columns o lacks
// are zero-filled, and (for dynamic tables) columns t lacks are added.
// A fixed-schema t drops o's extra columns — the projection again.
func (t *Table) appendTable(o *Table) {
	if o == nil || o.n == 0 {
		return
	}
	if !t.fixed {
		for _, v := range o.vars {
			t.ensureCol(v)
		}
	}
	for c, v := range t.vars {
		if oc, ok := o.idx[v]; ok {
			t.cols[c] = append(t.cols[c], o.cols[oc]...)
		} else {
			t.cols[c] = append(t.cols[c], make([]match.Binding, o.n)...)
		}
	}
	t.n += o.n
}

// slice returns a read-only view of rows [lo, hi): shared schema, shared
// column slabs. Pipelined execution streams these as batches.
func (t *Table) slice(lo, hi int) *Table {
	s := &Table{Cols: t.Cols, vars: t.vars, idx: t.idx, n: hi - lo, fixed: true}
	s.cols = make([][]match.Binding, len(t.cols))
	for c := range t.cols {
		s.cols[c] = t.cols[c][lo:hi]
	}
	return s
}

// boundCount returns how many variables row i binds — the columnar
// equivalent of len(env), which drives join value precedence.
func (t *Table) boundCount(i int) int {
	n := 0
	for c := range t.cols {
		if !t.cols[c][i].IsZero() {
			n++
		}
	}
	return n
}

// hashRow hashes row i's projection onto the given columns (-1 = the
// variable is absent from the schema and hashes as unbound), consistent
// with Env.HashEnv over the same variables.
func (t *Table) hashRow(i int, cols []int) uint64 {
	h := match.HashSeed
	for _, c := range cols {
		var b match.Binding
		if c >= 0 {
			b = t.cols[c][i]
		}
		h = match.MixHash(h, b.Hash())
	}
	return h
}

// binding returns row i's binding for column c, where c may be -1 for
// "not in schema" (the zero binding).
func (t *Table) binding(i, c int) match.Binding {
	if c < 0 {
		return match.Binding{}
	}
	return t.cols[c][i]
}

// Format renders the table for traces, in the style of the tables shown
// beside the arcs of the paper's Figure 3.6. At most maxRows rows are
// shown (0 means all).
func (t *Table) Format(w io.Writer, maxRows int) {
	cols := t.Cols
	if len(cols) == 0 {
		// Fall back to the variables bound in at least one row, sorted.
		for c, v := range t.vars {
			for i := 0; i < t.n; i++ {
				if !t.cols[c][i].IsZero() {
					cols = append(cols, v)
					break
				}
			}
		}
		sort.Strings(cols)
	}
	cells := make([][]string, 0, t.n+1)
	cells = append(cells, cols)
	n := t.n
	truncated := false
	if maxRows > 0 && n > maxRows {
		n = maxRows
		truncated = true
	}
	for i := 0; i < n; i++ {
		line := make([]string, len(cols))
		for li, c := range cols {
			if b := t.binding(i, t.ColIndex(c)); !b.IsZero() {
				line[li] = clip(b.String(), 40)
			} else {
				line[li] = "-"
			}
		}
		cells = append(cells, line)
	}
	widths := make([]int, len(cols))
	for _, line := range cells {
		for i, cell := range line {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for li, line := range cells {
		var sb strings.Builder
		sb.WriteString("  | ")
		for i, cell := range line {
			fmt.Fprintf(&sb, "%-*s | ", widths[i], cell)
		}
		io.WriteString(w, strings.TrimRight(sb.String(), " ")+"\n")
		if li == 0 {
			var sep strings.Builder
			sep.WriteString("  |")
			for _, wd := range widths {
				sep.WriteString(strings.Repeat("-", wd+2))
				sep.WriteString("|")
			}
			io.WriteString(w, sep.String()+"\n")
		}
	}
	if truncated {
		fmt.Fprintf(w, "  … %d more rows\n", t.n-n)
	}
}

func clip(s string, n int) string {
	s = strings.ReplaceAll(s, "\n", " ")
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
