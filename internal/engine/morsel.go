package engine

import (
	"sync"
	"sync/atomic"
)

// This file implements the engine's morsel scheduler. Local operators —
// extraction over fetched answers, external predicates, hash-join build
// and probe, dedup hashing, cross products — split their input table
// into fixed-size runs of rows ("morsels") executed on a bounded worker
// pool of Executor.Parallelism goroutines. Each morsel produces an
// independent output chunk; callers concatenate chunks in morsel order,
// so parallel results are byte-identical to the serial loop. Workers
// claim morsels from a shared atomic counter (work stealing by
// oversubscription: morsels are small, so an uneven morsel costs little
// tail latency) and poll the run's context between morsels, preserving
// the engine's prompt-cancellation guarantee.

// DefaultMorselRows is the morsel width when Executor.MorselRows is 0:
// large enough to amortize scheduling, small enough that typical
// mediator tables (hundreds to thousands of rows) still fan out.
const DefaultMorselRows = 256

// morselRows returns the effective morsel width.
func (ex *Executor) morselRows() int {
	if ex.MorselRows > 0 {
		return ex.MorselRows
	}
	return DefaultMorselRows
}

// morselCount returns how many morsels a total of rows splits into.
func (ex *Executor) morselCount(total int) int {
	size := ex.morselRows()
	return (total + size - 1) / size
}

// runMorsels executes fn once per morsel of [0, total), passing the
// morsel index and its row range. With an effective worker count of 1
// (small input, serial executor, tracing) the morsels run inline in
// order; otherwise they run on a worker pool and fn must be safe for
// concurrent calls on distinct morsels. The first error (or the run's
// cancellation) stops the pool. Morsel and worker counts are reported to
// the node's trace record.
func (rs *runState) runMorsels(n Node, total int, fn func(m, lo, hi int) error) error {
	return rs.runMorselsWidth(n, total, rs.ex.morselRows(), fn)
}

// runMorselsWidth is runMorsels with an explicit morsel width. Latency-
// bound work uses width 1 — a shard scatter's member exchanges each
// become their own morsel, so four shards fan out over four workers
// instead of sharing one row-sized morsel.
func (rs *runState) runMorselsWidth(n Node, total, size int, fn func(m, lo, hi int) error) error {
	if size < 1 {
		size = 1
	}
	morsels := (total + size - 1) / size
	if morsels == 0 {
		return rs.cancelled()
	}
	workers := rs.ex.parallelism()
	if workers > morsels {
		workers = morsels
	}
	if ns := rs.nodeObs(n); ns != nil {
		ns.AddMorsels(morsels, workers)
	}
	clampHi := func(lo int) int {
		hi := lo + size
		if hi > total {
			hi = total
		}
		return hi
	}
	if workers <= 1 {
		for m := 0; m < morsels; m++ {
			if err := rs.cancelled(); err != nil {
				return err
			}
			lo := m * size
			if err := fn(m, lo, clampHi(lo)); err != nil {
				return err
			}
		}
		return nil
	}
	var next atomic.Int64
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				m := int(next.Add(1)) - 1
				if m >= morsels {
					return
				}
				if err := rs.cancelled(); err != nil {
					errs[w] = err
					return
				}
				lo := m * size
				if err := fn(m, lo, clampHi(lo)); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
