package engine

import (
	"time"

	"medmaker/internal/metrics"
	"medmaker/internal/trace"
)

// This file wires the engine to the structured observability layer. A run
// whose Executor carries a Recorder registers the whole physical graph
// with the trace before execution starts — one trace.NodeStats per
// operator, one trace.SourceStats per distinct source — and every
// execution path (materialized, parallel, pipelined) reports rows, wall
// time, and source exchanges into those records through atomic counters.
// The registration maps are read-only during the run, so concurrent
// stages share them without locks.
//
// Independent of any per-query trace, every source exchange is also
// recorded in the process-wide metrics registry (metrics.Default), which
// is what the remote server exposes for scraping.

// graphObs holds one run's registered trace records.
type graphObs struct {
	qt      *trace.QueryTrace
	nodes   map[Node]*trace.NodeStats
	sources map[string]*trace.SourceStats
}

// newGraphObs registers the graph rooted at root with qt in preorder
// (parents before kids, so parents get lower ids and render first).
func newGraphObs(qt *trace.QueryTrace, root Node) *graphObs {
	g := &graphObs{
		qt:      qt,
		nodes:   make(map[Node]*trace.NodeStats),
		sources: make(map[string]*trace.SourceStats),
	}
	g.register(root)
	return g
}

func (g *graphObs) register(n Node) *trace.NodeStats {
	if ns, ok := g.nodes[n]; ok {
		return ns // shared subgraph: one record
	}
	source := ""
	if qn, ok := n.(*QueryNode); ok {
		source = qn.Source
		if _, seen := g.sources[source]; !seen {
			g.sources[source] = g.qt.Source(source)
		}
	}
	ns := g.qt.NewNode(n.Label(), source, n.Detail())
	if qn, ok := n.(*QueryNode); ok {
		if qn.HasEst {
			ns.SetEstimate(qn.EstRows)
		}
		ns.SetShape(qn.Shape)
	}
	// A matscan deliberately registers no source: it performs no
	// exchanges, and its absence from SourceStats is the observable
	// zero-round-trip property of a materialized-view hit.
	if ms, ok := n.(*MatScanNode); ok && ms.HasEst {
		ns.SetEstimate(ms.EstRows)
	}
	g.nodes[n] = ns
	kids := n.Kids()
	kidStats := make([]*trace.NodeStats, 0, len(kids))
	for _, k := range kids {
		kidStats = append(kidStats, g.register(k))
	}
	ns.SetKids(kidStats)
	return ns
}

// nodeObs returns the trace record for n, or nil when the run is
// untraced. The nil result is a valid no-op recorder.
func (rs *runState) nodeObs(n Node) *trace.NodeStats {
	if rs.obs == nil {
		return nil
	}
	return rs.obs.nodes[n]
}

// srcObs returns the trace record for the named source, or nil.
func (rs *runState) srcObs(source string) *trace.SourceStats {
	if rs.obs == nil {
		return nil
	}
	return rs.obs.sources[source]
}

// observeNode reports one full evaluation of a materialized operator:
// structured record first, then the legacy text trace.
func (rs *runState) observeNode(n Node, kids []*Table, out *Table, wall time.Duration) {
	if ns := rs.nodeObs(n); ns != nil {
		in := 0
		for _, k := range kids {
			if k != nil {
				in += k.Len()
			}
		}
		ns.AddCall(in, out.Len(), wall)
	}
	if rs.ex.Trace != nil {
		rs.ex.traceNode(n, out, wall)
	}
}

// recordExchange reports one source round-trip performed on behalf of a
// query node: to the statistics store the optimizer learns from, to the
// run's trace (when recording), and to the process-wide metrics registry.
func (rs *runState) recordExchange(n *QueryNode, queries int, d time.Duration) {
	rs.ex.recordExchange(n.Source, queries)
	rs.ex.recordLatency(n.Source, d)
	rs.nodeObs(n).AddExchanges(1, queries)
	rs.srcObs(n.Source).AddExchange(queries, d)
	reg := metrics.Default()
	reg.Counter("engine.exchanges").Inc()
	reg.Counter("engine.queries").Add(int64(queries))
	reg.Counter("engine.exchanges." + n.Source).Inc()
	reg.Histogram("engine.exchange_latency").Observe(d)
}
