package engine

import (
	"fmt"
	"time"

	"medmaker/internal/metrics"
	"medmaker/internal/msl"
	"medmaker/internal/oem"
	"medmaker/internal/wrapper"
)

// This file is the engine side of partitioned sources (wrapper.Sharded):
// instead of calling the composite's own Query — which would scatter
// outside the run's failure policy — the query node routes or scatters
// member by member. A routed query (partition key bound by the pushed
// conditions) costs one member exchange; a scatter fans the same query
// to every member on the morsel pool at width 1 (one member per morsel,
// so N shards overlap their network latency across min(N, parallelism)
// workers) and gathers the union in member order. Each member exchange
// runs under sourceCtx/sourceFailed with the member's name, so
// PerSourceTimeout bounds each shard separately, OnErrorSkip
// circuit-breaks one shard without silencing its siblings, and
// Result.SourceErrors plus engine.Stats attribute failures to the shard
// that produced them — the ExecPolicy-aware partial results of a
// degraded partition.

// queryShards evaluates one instantiated query against a sharded source.
// skipped=true reports that at least one member's contribution is
// missing (policy-absorbed failure); the surviving members' union is
// still returned.
func (n *QueryNode) queryShards(rs *runState, sh wrapper.Sharded, q *msl.Rule) ([]*oem.Object, bool, error) {
	members := sh.Members()
	reg := metrics.Default()
	if shard, ok := sh.ShardFor(q); ok {
		reg.Counter("shard.routed").Inc()
		return n.queryMember(rs, members[shard], q)
	}
	reg.Counter("shard.scatter").Inc()
	perShard := make([][]*oem.Object, len(members))
	skips := make([]bool, len(members))
	err := rs.runMorselsWidth(n, len(members), 1, func(_, lo, hi int) error {
		for i := lo; i < hi; i++ {
			objs, skipped, err := n.queryMember(rs, members[i], q)
			if err != nil {
				return err
			}
			perShard[i], skips[i] = objs, skipped
		}
		return nil
	})
	if err != nil {
		return nil, true, err
	}
	anySkipped := false
	for _, s := range skips {
		anySkipped = anySkipped || s
	}
	return wrapper.GatherUnion(perShard), anySkipped, nil
}

// queryMember is querySource against one member shard: same context,
// policy, trace, and statistics plumbing, attributed to the member's
// name (for failures and circuit-breaking) and to the composite's name
// (for the optimizer's per-source statistics, which describe the logical
// source the plan references).
func (n *QueryNode) queryMember(rs *runState, member wrapper.Source, q *msl.Rule) ([]*oem.Object, bool, error) {
	reg := metrics.Default()
	if rs.sourceDown(member.Name()) {
		return nil, true, nil
	}
	ctx, cancel := rs.sourceCtx(n)
	start := time.Now()
	objs, qerr := wrapper.QueryContext(ctx, member, q)
	elapsed := time.Since(start)
	cancel()
	if qerr != nil {
		reg.Counter("shard.failures").Inc()
		return nil, true, rs.sourceFailed(member.Name(), qerr)
	}
	reg.Counter("shard.exchanges").Inc()
	rs.recordExchange(n, 1, elapsed)
	rs.ex.recordQuery(n, len(objs))
	return objs, false, nil
}

// fetchChunkSharded is the batched path over a sharded source: the
// chunk's distinct queries regroup by target shard, each routed group
// ships as one batched exchange to its member (when the member batches),
// and unroutable queries scatter individually through queryShards.
func (n *QueryNode) fetchChunkSharded(rs *runState, sh wrapper.Sharded, chunk []string, pending map[string]*msl.Rule, store func(string, *answerSet)) error {
	members := sh.Members()
	groups := make([][]string, len(members))
	for _, k := range chunk {
		if shard, ok := sh.ShardFor(pending[k]); ok {
			groups[shard] = append(groups[shard], k)
			continue
		}
		objs, _, err := n.queryShards(rs, sh, pending[k])
		if err != nil {
			return err
		}
		store(k, &answerSet{objs: objs})
	}
	for shard, keys := range groups {
		if len(keys) == 0 {
			continue
		}
		if err := n.fetchMemberBatch(rs, members[shard], keys, pending, store); err != nil {
			return err
		}
	}
	return nil
}

// fetchMemberBatch ships one routed group to its member shard — one
// batched exchange when the member batches and the group has more than
// one query, per-query exchanges otherwise.
func (n *QueryNode) fetchMemberBatch(rs *runState, member wrapper.Source, keys []string, pending map[string]*msl.Rule, store func(string, *answerSet)) error {
	reg := metrics.Default()
	reg.Counter("shard.routed").Add(int64(len(keys)))
	canBatch := false
	switch member.(type) {
	case wrapper.ContextBatchQuerier, wrapper.BatchQuerier:
		canBatch = true
	}
	if !canBatch || len(keys) == 1 {
		for _, k := range keys {
			objs, _, err := n.queryMember(rs, member, pending[k])
			if err != nil {
				return err
			}
			store(k, &answerSet{objs: objs})
		}
		return nil
	}
	if rs.sourceDown(member.Name()) {
		for _, k := range keys {
			store(k, &answerSet{})
		}
		return nil
	}
	qs := make([]*msl.Rule, len(keys))
	for i, k := range keys {
		qs[i] = pending[k]
	}
	ctx, cancel := rs.sourceCtx(n)
	start := time.Now()
	res, err := wrapper.QueryBatchContext(ctx, member, qs)
	elapsed := time.Since(start)
	cancel()
	if err != nil {
		reg.Counter("shard.failures").Inc()
		if ferr := rs.sourceFailed(member.Name(), err); ferr != nil {
			return ferr
		}
		for _, k := range keys {
			store(k, &answerSet{})
		}
		return nil
	}
	if len(res) != len(qs) {
		return fmt.Errorf("engine: batch query to shard %s returned %d answers for %d queries",
			member.Name(), len(res), len(qs))
	}
	reg.Counter("shard.exchanges").Inc()
	rs.recordExchange(n, len(keys), elapsed)
	for i, k := range keys {
		store(k, &answerSet{objs: res[i]})
		rs.ex.recordQuery(n, len(res[i]))
	}
	return nil
}
