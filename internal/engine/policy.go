package engine

import (
	"context"
	"fmt"
	"sync"
	"time"

	"medmaker/internal/oem"
	"medmaker/internal/trace"
)

// ErrorMode says what the executor does when a source query fails or
// times out. The paper's MSI assumed cooperative, always-up sources;
// against autonomous ones the mediator must be able to degrade instead of
// inheriting the slowest source's fate.
type ErrorMode int

const (
	// OnErrorFail aborts the whole query on the first source failure —
	// the all-or-nothing behavior of the paper, and the default.
	OnErrorFail ErrorMode = iota
	// OnErrorSkip drops the failing source for the remainder of the run:
	// the failed exchange and every later exchange to that source answer
	// as if the source held no matching objects, the failure is recorded,
	// and the result is flagged Incomplete. One timeout is taken as
	// evidence the source is down, so a slow source costs at most one
	// per-source timeout per query.
	OnErrorSkip
	// OnErrorPartial degrades per exchange: only the failing exchange is
	// treated as empty, and later exchanges still try the source (it may
	// have failed transiently). The result is flagged Incomplete.
	OnErrorPartial
)

// String names the mode for flags and traces.
func (m ErrorMode) String() string {
	switch m {
	case OnErrorSkip:
		return "skip"
	case OnErrorPartial:
		return "partial"
	default:
		return "fail"
	}
}

// Policy bounds and degrades per-source work for one query. The zero
// value reproduces the paper's behavior: no per-source timeout, and any
// source failure aborts the query.
type Policy struct {
	// PerSourceTimeout bounds each source exchange; an exchange that
	// exceeds it counts as a source failure and is handled per
	// OnSourceError. 0 means no per-exchange bound (the query's own
	// context deadline, if any, still applies).
	PerSourceTimeout time.Duration
	// OnSourceError selects failure handling: fail the query, skip the
	// source, or skip the exchange.
	OnSourceError ErrorMode
}

// SourceError is one recorded source failure: which source, and why. For
// skipped answers of a negated (anti-join) pattern the absence of
// matches was assumed, not verified — callers needing certainty must use
// OnErrorFail.
type SourceError struct {
	// Source is the failing source's name.
	Source string
	// Err is the failure: the source's own error, or
	// context.DeadlineExceeded for a PerSourceTimeout expiry.
	Err error
}

// Error implements error.
func (e *SourceError) Error() string {
	return fmt.Sprintf("engine: source %s: %v", e.Source, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *SourceError) Unwrap() error { return e.Err }

// Result is a query answer with its degradation record. With
// Policy.OnSourceError left at OnErrorFail, Incomplete is always false
// and SourceErrors empty: any failure surfaced as an error instead.
type Result struct {
	// Objects are the constructed result objects.
	Objects []*oem.Object
	// Incomplete reports that at least one source's contribution is
	// missing: the answer is a lower bound computed from the healthy
	// sources, not the full integrated view.
	Incomplete bool
	// SourceErrors lists the failures behind Incomplete, in the order
	// they were observed.
	SourceErrors []*SourceError
}

// runState carries one run's context and failure policy through the
// operator graph. Stages of a pipelined run share the degradation record
// but may hold different (derived) contexts, so runState is a cheap view
// over the shared state.
type runState struct {
	ex  *Executor
	ctx context.Context
	deg *degradation
	// obs holds the run's registered trace records (nil when the executor
	// carries no Recorder). Its maps are built before execution starts and
	// read-only afterwards, so concurrent stages share them lock-free.
	obs *graphObs
}

// degradation is the shared per-run record of skipped sources and
// collected failures; it is written concurrently by parallel workers and
// pipeline stages.
type degradation struct {
	policy Policy
	mu     sync.Mutex
	down   map[string]bool // sources circuit-broken by OnErrorSkip
	errs   []*SourceError
}

func newRunState(ex *Executor, ctx context.Context, root Node) *runState {
	if ctx == nil {
		ctx = context.Background()
	}
	rs := &runState{ex: ex, ctx: ctx, deg: &degradation{policy: ex.Policy}}
	if ex.Recorder != nil && root != nil {
		rs.obs = newGraphObs(ex.Recorder, root)
	}
	return rs
}

// withCtx returns a view of rs bound to a derived context; the
// degradation record and trace records stay shared.
func (rs *runState) withCtx(ctx context.Context) *runState {
	return &runState{ex: rs.ex, ctx: ctx, deg: rs.deg, obs: rs.obs}
}

// cancelled returns the run's terminal context error, if any — the check
// every operator performs at batch boundaries so long joins and
// cross-products abort promptly.
func (rs *runState) cancelled() error { return rs.ctx.Err() }

// sourceCtx derives the context for one of n's source exchanges: the
// policy's per-source timeout applies on top of the run's own deadline,
// and when the run is traced the exchange context carries the node and
// source records, so layers below the engine (the wrapper-level answer
// cache) attribute their events to them.
func (rs *runState) sourceCtx(n *QueryNode) (context.Context, context.CancelFunc) {
	ctx := rs.ctx
	cancel := context.CancelFunc(func() {})
	if d := rs.deg.policy.PerSourceTimeout; d > 0 {
		ctx, cancel = context.WithTimeout(ctx, d)
	}
	if rs.obs != nil {
		ctx = trace.WithExchangeObs(ctx, rs.nodeObs(n), rs.srcObs(n.Source))
	}
	return ctx, cancel
}

// sourceDown reports whether the source was circuit-broken by a previous
// failure under OnErrorSkip.
func (rs *runState) sourceDown(source string) bool {
	rs.deg.mu.Lock()
	defer rs.deg.mu.Unlock()
	return rs.deg.down[source]
}

// sourceFailed applies the failure policy to a failed exchange. It
// returns the error the operator must propagate — always the run's own
// context error once the run is cancelled, the wrapped source error
// under OnErrorFail — or nil when the policy absorbed the failure, in
// which case the exchange's answer is treated as empty and the run is
// marked incomplete.
func (rs *runState) sourceFailed(source string, err error) error {
	if cerr := rs.ctx.Err(); cerr != nil {
		return cerr
	}
	if rs.deg.policy.OnSourceError == OnErrorFail {
		return &SourceError{Source: source, Err: err}
	}
	se := &SourceError{Source: source, Err: err}
	rs.deg.mu.Lock()
	rs.deg.errs = append(rs.deg.errs, se)
	if rs.deg.policy.OnSourceError == OnErrorSkip {
		if rs.deg.down == nil {
			rs.deg.down = make(map[string]bool)
		}
		rs.deg.down[source] = true
	}
	rs.deg.mu.Unlock()
	if rs.ex.Stats != nil {
		rs.ex.Stats.RecordError(source, err)
	}
	return nil
}

// result assembles the run's Result from the output objects and the
// degradation record.
func (rs *runState) result(objs []*oem.Object) *Result {
	rs.deg.mu.Lock()
	defer rs.deg.mu.Unlock()
	return &Result{
		Objects:      objs,
		Incomplete:   len(rs.deg.errs) > 0,
		SourceErrors: append([]*SourceError(nil), rs.deg.errs...),
	}
}
