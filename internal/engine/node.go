package engine

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"medmaker/internal/build"
	"medmaker/internal/match"
	"medmaker/internal/msl"
	"medmaker/internal/oem"
	"medmaker/internal/wrapper"
)

// ResultVar is the binding-table column that carries constructed result
// objects out of constructor nodes.
const ResultVar = "_result"

// Node is one operator of a physical datamerge graph.
type Node interface {
	// Label names the operator kind for graph display, e.g. "param-query(cs)".
	Label() string
	// Detail describes the operator's parameters (query text, pattern, …).
	Detail() string
	// Kids returns the input operators, evaluated before this one.
	Kids() []Node
	// OutVars lists the variables bound in the output table.
	OutVars() []string
	// run executes the operator over its evaluated inputs, under the
	// run's context and failure policy.
	run(rs *runState, kids []*Table) (*Table, error)
}

// cancelCheckStride is how many rows an operator's inner loop processes
// between context checks — frequent enough that long joins and
// cross-products abort promptly, rare enough to stay off profiles.
const cancelCheckStride = 1024

// QueryNode sends an MSL query to a source — once when it is a leaf, or
// once per input tuple when it has a child (the paper's parameterized
// query node). Returned objects are matched against Extract (with the
// input row's bindings, which enforces join consistency), and the
// resulting rows are projected onto Needed.
type QueryNode struct {
	// Child supplies input tuples; nil makes this a leaf query node.
	Child Node
	// Source is the wrapper or mediator to query.
	Source string
	// Send is the query template. Variables listed in ParamVars are
	// replaced per input tuple by the row's atomic bindings before
	// sending; other variables stay free.
	Send *msl.Rule
	// ParamVars names the template variables filled from input tuples.
	ParamVars []string
	// Extract is matched against each returned top-level object, under
	// the input row's environment, to produce output bindings.
	Extract *msl.ObjectPattern
	// ExtractObjVar optionally binds the whole returned object.
	ExtractObjVar *msl.Var
	// Negated inverts the node into an anti-join: an input tuple passes
	// through exactly when the source yields no match under it, and no
	// new variables are bound.
	Negated bool
	// Needed is the projection applied to output rows; empty keeps all.
	Needed []string
	// Shape is the condition-aware statistics key for the sent template
	// (see ShapeOf). The planner sets it so execution feedback lands in
	// the same bucket planning reads; empty disables shape-keyed
	// recording (hand-built graphs).
	Shape string
	// EstRows, when HasEst, is the optimizer's estimated answer
	// cardinality for this node's template (per instantiated query).
	// Explain/ExplainAnalyze render it against the actual counts.
	EstRows float64
	HasEst  bool
}

// Label implements Node.
func (n *QueryNode) Label() string {
	kind := "query"
	if n.Child != nil {
		kind = "param-query"
	}
	if n.Negated {
		kind = "anti-" + kind
	}
	return kind + "(" + n.Source + ")"
}

// Detail implements Node, showing the template with $-marked parameters.
func (n *QueryNode) Detail() string {
	shown := n.Send
	if len(n.ParamVars) > 0 {
		params := map[string]bool{}
		for _, p := range n.ParamVars {
			params[p] = true
		}
		shown = n.Send.RenameVars(func(s string) string {
			if params[s] {
				return "$" + s
			}
			return s
		})
	}
	return shown.String()
}

// Kids implements Node.
func (n *QueryNode) Kids() []Node {
	if n.Child == nil {
		return nil
	}
	return []Node{n.Child}
}

// OutVars implements Node.
func (n *QueryNode) OutVars() []string { return n.Needed }

func (n *QueryNode) run(rs *runState, kids []*Table) (*Table, error) {
	ex := rs.ex
	src, ok := ex.Sources.Lookup(n.Source)
	if !ok {
		return nil, fmt.Errorf("engine: unknown source %q", n.Source)
	}
	inputRows := []match.Env{nil}
	if len(kids) == 1 {
		inputRows = kids[0].Envs()
	}
	if ex.queryBatch() > 1 && len(kids) == 1 {
		rows, err := n.runBatched(rs, src, inputRows, nil)
		if err != nil {
			return nil, err
		}
		return tableFromEnvs(n.Needed, rows), nil
	}
	workers := ex.parallelism()
	if workers > len(inputRows) {
		workers = len(inputRows)
	}
	if workers <= 1 {
		out := outTable(n.Needed)
		for _, row := range inputRows {
			rows, err := n.runRow(rs, src, row)
			if err != nil {
				return nil, err
			}
			for _, e := range rows {
				out.AppendEnv(e)
			}
		}
		return out, nil
	}
	// Fan the input tuples across workers round-robin (each tuple is one
	// source exchange, so latency hiding beats morsel locality here);
	// per-row results are collected in input order so parallel and
	// sequential plans agree exactly.
	perRow := make([][]match.Env, len(inputRows))
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(inputRows); i += workers {
				rows, err := n.runRow(rs, src, inputRows[i])
				if err != nil {
					errs[w] = err
					return
				}
				perRow[i] = rows
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := outTable(n.Needed)
	for _, rows := range perRow {
		for _, e := range rows {
			out.AppendEnv(e)
		}
	}
	return out, nil
}

// tableFromEnvs wraps already-projected rows into an operator output
// table.
func tableFromEnvs(needed []string, rows []match.Env) *Table {
	out := outTable(needed)
	for _, e := range rows {
		out.AppendEnv(e)
	}
	return out
}

// querySource performs one single-query exchange under the run's context
// and failure policy. skipped=true means the policy absorbed a failure
// (or the source is circuit-broken) and the answer is missing at least
// one source's (or shard's) contribution; the run is then marked
// incomplete. Sharded sources are scattered (or routed) member by member
// so failure handling attributes to the shard, not the composite.
func (n *QueryNode) querySource(rs *runState, src wrapper.Source, q *msl.Rule) (objs []*oem.Object, skipped bool, err error) {
	if rep, ok := src.(wrapper.Replicated); ok {
		return n.queryReplicas(rs, rep, q)
	}
	if sh, ok := src.(wrapper.Sharded); ok {
		return n.queryShards(rs, sh, q)
	}
	if rs.sourceDown(n.Source) {
		return nil, true, nil
	}
	ctx, cancel := rs.sourceCtx(n)
	start := time.Now()
	objs, qerr := wrapper.QueryContext(ctx, src, q)
	elapsed := time.Since(start)
	cancel()
	if qerr != nil {
		return nil, true, rs.sourceFailed(n.Source, qerr)
	}
	rs.recordExchange(n, 1, elapsed)
	rs.ex.recordQuery(n, len(objs))
	return objs, false, nil
}

// runRow evaluates the node for one input tuple: instantiate the
// template, query the source, extract bindings under the row environment,
// and project.
func (n *QueryNode) runRow(rs *runState, src wrapper.Source, row match.Env) ([]match.Env, error) {
	q := n.Send
	if vals := n.paramVals(row); len(vals) > 0 {
		var err error
		q, err = msl.BindVars(n.Send, vals)
		if err != nil {
			return nil, err
		}
	}
	// A skipped exchange extracts from an empty answer: a positive
	// pattern yields no rows, a negated (anti-join) one passes the tuple
	// through — absence assumed, not verified, which is why querySource
	// records the failure in the run's SourceErrors.
	objs, _, err := n.querySource(rs, src, q)
	if err != nil {
		return nil, err
	}
	return n.extract(row, objs)
}

// paramVals collects the atomic bindings the input row supplies for the
// template's parameter variables; set-bound and object-bound variables
// stay free in the instantiated query.
func (n *QueryNode) paramVals(row match.Env) map[string]oem.Value {
	if len(n.ParamVars) == 0 {
		return nil
	}
	vals := make(map[string]oem.Value, len(n.ParamVars))
	for _, p := range n.ParamVars {
		if b, bound := row.Lookup(p); bound {
			if v, atomic := b.AsValue(); atomic {
				if _, isSet := v.(oem.Set); !isSet {
					vals[p] = v
				}
			}
		}
	}
	return vals
}

// paramKey identifies the instantiated query an input row produces: two
// rows with equal keys send byte-identical queries and can share one
// source answer. The key covers exactly the values BindVars will
// substitute, tagged with their concrete type so 3 and '3' stay distinct.
func (n *QueryNode) paramKey(vals map[string]oem.Value) string {
	if len(vals) == 0 {
		return ""
	}
	// Hand-rolled formatting: this runs once per input row and fmt's
	// reflection dominated the batched path's profile.
	buf := make([]byte, 0, 48)
	for _, p := range n.ParamVars {
		v, ok := vals[p]
		if !ok {
			continue
		}
		buf = append(buf, p...)
		buf = append(buf, '=')
		switch v := v.(type) {
		case oem.String:
			buf = append(buf, 's', ':')
			buf = append(buf, v...)
		case oem.Int:
			buf = append(buf, 'i', ':')
			buf = strconv.AppendInt(buf, int64(v), 10)
		case oem.Float:
			buf = append(buf, 'f', ':')
			buf = strconv.AppendFloat(buf, float64(v), 'g', -1, 64)
		case oem.Bool:
			buf = append(buf, 'b', ':')
			buf = strconv.AppendBool(buf, bool(v))
		default:
			buf = append(buf, v.Kind().String()...)
			buf = append(buf, ':')
			buf = append(buf, v.String()...)
		}
		buf = append(buf, ';')
	}
	return string(buf)
}

// extract matches the source's answer against the extraction pattern
// under the input row, applies negation semantics, and projects.
func (n *QueryNode) extract(row match.Env, objs []*oem.Object) ([]match.Env, error) {
	envs, err := match.Tops(n.Extract, n.ExtractObjVar, objs, row)
	if err != nil {
		return nil, err
	}
	if n.Negated {
		if len(envs) > 0 {
			return nil, nil // a match exists: the tuple is filtered out
		}
		if len(n.Needed) > 0 {
			row = row.Project(n.Needed)
		}
		return []match.Env{row}, nil
	}
	if len(n.Needed) > 0 {
		for i, e := range envs {
			envs[i] = e.Project(n.Needed)
		}
	}
	return envs, nil
}

// answerSet is one distinct instantiated query's cached source answer.
type answerSet struct {
	objs []*oem.Object
}

// runBatched evaluates the node over rows with input-tuple deduplication
// and batched source exchanges (the tentpole of Section 3.4 done
// cheaply): rows that instantiate the template identically share one
// query, the distinct queries ship in groups of up to Executor.QueryBatch
// per exchange when the source implements wrapper.BatchQuerier (or its
// context-aware form), and the answers are distributed back to the
// originating rows in input order, so the output is identical to the
// per-tuple path against deterministic sources. memo carries answers
// across calls — the pipelined executor streams row batches through one
// node — and may be nil for one-shot use.
func (n *QueryNode) runBatched(rs *runState, src wrapper.Source, rows []match.Env, memo map[string]*answerSet) ([]match.Env, error) {
	if memo == nil {
		memo = make(map[string]*answerSet, len(rows))
	}
	keys := make([]string, len(rows))
	var pendingKeys []string
	pending := map[string]*msl.Rule{}
	for i, row := range rows {
		vals := n.paramVals(row)
		key := n.paramKey(vals)
		keys[i] = key
		if _, done := memo[key]; done {
			continue
		}
		if _, queued := pending[key]; queued {
			continue
		}
		q := n.Send
		if len(vals) > 0 {
			var err error
			q, err = msl.BindVars(n.Send, vals)
			if err != nil {
				return nil, err
			}
		}
		pending[key] = q
		pendingKeys = append(pendingKeys, key)
	}
	if err := n.fetchBatches(rs, src, pendingKeys, pending, memo); err != nil {
		return nil, err
	}
	// Extraction over the fetched answers is pure CPU — pattern matching
	// under each input row — so it fans out morsel-parallel; chunks
	// concatenate in morsel order, preserving the serial output exactly.
	chunks := make([][]match.Env, rs.ex.morselCount(len(rows)))
	if err := rs.runMorsels(n, len(rows), func(m, lo, hi int) error {
		var part []match.Env
		for i := lo; i < hi; i++ {
			envs, err := n.extract(rows[i], memo[keys[i]].objs)
			if err != nil {
				return err
			}
			part = append(part, envs...)
		}
		chunks[m] = part
		return nil
	}); err != nil {
		return nil, err
	}
	var out []match.Env
	for _, part := range chunks {
		out = append(out, part...)
	}
	return out, nil
}

// fetchBatches ships the pending distinct queries to the source, up to
// Executor.QueryBatch per exchange for batch-capable sources and one
// exchange per query otherwise, applying the run's failure policy to
// every exchange: a failed exchange's queries answer empty under
// Skip/Partial instead of aborting the run. Independent exchanges run
// concurrently up to Executor.Parallelism — answers land in the memo
// keyed by their instantiated query, so exchange completion order never
// affects the output (extraction replays the input-row order).
func (n *QueryNode) fetchBatches(rs *runState, src wrapper.Source, keys []string, pending map[string]*msl.Rule, memo map[string]*answerSet) error {
	if len(keys) == 0 {
		return nil
	}
	size := rs.ex.queryBatch()
	canBatch := false
	if _, ok := src.(wrapper.BatchQuerier); ok {
		canBatch = true
	} else if _, ok := src.(wrapper.ContextBatchQuerier); ok {
		canBatch = true
	}
	var chunks [][]string
	for start := 0; start < len(keys); start += size {
		end := start + size
		if end > len(keys) {
			end = len(keys)
		}
		chunks = append(chunks, keys[start:end])
	}
	var mu sync.Mutex
	store := func(k string, a *answerSet) {
		mu.Lock()
		memo[k] = a
		mu.Unlock()
	}
	workers := rs.ex.parallelism()
	if workers > len(chunks) {
		workers = len(chunks)
	}
	if workers <= 1 {
		for _, chunk := range chunks {
			if err := rs.cancelled(); err != nil {
				return err
			}
			if err := n.fetchChunk(rs, src, chunk, pending, canBatch, store); err != nil {
				return err
			}
		}
		return nil
	}
	var next atomic.Int64
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= len(chunks) {
					return
				}
				if err := rs.cancelled(); err != nil {
					errs[w] = err
					return
				}
				if err := n.fetchChunk(rs, src, chunks[c], pending, canBatch, store); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// fetchChunk performs one exchange's worth of queries: a single batched
// exchange for batch-capable sources, one exchange per query otherwise.
// Against a sharded source the chunk is regrouped per member shard first.
func (n *QueryNode) fetchChunk(rs *runState, src wrapper.Source, chunk []string, pending map[string]*msl.Rule, canBatch bool, store func(string, *answerSet)) error {
	if rep, ok := src.(wrapper.Replicated); ok {
		return n.fetchChunkReplicated(rs, rep, chunk, pending, store)
	}
	if sh, ok := src.(wrapper.Sharded); ok {
		return n.fetchChunkSharded(rs, sh, chunk, pending, store)
	}
	if canBatch && len(chunk) > 1 {
		if rs.sourceDown(n.Source) {
			for _, k := range chunk {
				store(k, &answerSet{})
			}
			return nil
		}
		qs := make([]*msl.Rule, len(chunk))
		for i, k := range chunk {
			qs[i] = pending[k]
		}
		ctx, cancel := rs.sourceCtx(n)
		batchStart := time.Now()
		res, err := wrapper.QueryBatchContext(ctx, src, qs)
		elapsed := time.Since(batchStart)
		cancel()
		if err != nil {
			if ferr := rs.sourceFailed(n.Source, err); ferr != nil {
				return ferr
			}
			for _, k := range chunk {
				store(k, &answerSet{})
			}
			return nil
		}
		if len(res) != len(qs) {
			return fmt.Errorf("engine: batch query to %s returned %d answers for %d queries", n.Source, len(res), len(qs))
		}
		rs.recordExchange(n, len(chunk), elapsed)
		for i, k := range chunk {
			store(k, &answerSet{objs: res[i]})
			rs.ex.recordQuery(n, len(res[i]))
		}
		return nil
	}
	for _, k := range chunk {
		objs, _, err := n.querySource(rs, src, pending[k])
		if err != nil {
			return err
		}
		store(k, &answerSet{objs: objs})
	}
	return nil
}

// checkStride polls the run's context every cancelCheckStride rows of an
// operator's inner loop.
func checkStride(rs *runState, i int) error {
	if i%cancelCheckStride == cancelCheckStride-1 {
		return rs.cancelled()
	}
	return nil
}

// ExtPredNode invokes an external predicate per input tuple, as the
// paper's external pred node does for decomp.
type ExtPredNode struct {
	Child Node
	Pred  *msl.PredicateConjunct
	// Needed is the projection applied to output rows; empty keeps all.
	Needed []string
}

// Label implements Node.
func (n *ExtPredNode) Label() string { return "external-pred(" + n.Pred.Name + ")" }

// Detail implements Node.
func (n *ExtPredNode) Detail() string { return n.Pred.String() }

// Kids implements Node.
func (n *ExtPredNode) Kids() []Node { return []Node{n.Child} }

// OutVars implements Node.
func (n *ExtPredNode) OutVars() []string { return n.Needed }

func (n *ExtPredNode) run(rs *runState, kids []*Table) (*Table, error) {
	// Predicate evaluation is per-tuple pure CPU, so rows fan out
	// morsel-parallel; per-morsel chunks concatenate in order, matching
	// the serial loop exactly.
	in := kids[0]
	chunks := make([]*Table, rs.ex.morselCount(in.Len()))
	if err := rs.runMorsels(n, in.Len(), func(m, lo, hi int) error {
		chunk := outTable(n.Needed)
		for i := lo; i < hi; i++ {
			envs, err := rs.ex.Extfn.Eval(n.Pred, in.Row(i))
			if err != nil {
				return err
			}
			for _, e := range envs {
				chunk.AppendEnv(e)
			}
		}
		chunks[m] = chunk
		return nil
	}); err != nil {
		return nil, err
	}
	out := outTable(n.Needed)
	for _, chunk := range chunks {
		out.appendTable(chunk)
	}
	return out, nil
}

// JoinNode combines two independently-computed binding tables on their
// shared variables with a hash join — the fallback strategy when
// parameterized queries are disabled or unprofitable, and the baseline the
// parameterized-query benchmarks compare against.
type JoinNode struct {
	Left, Right Node
	// Shared are the join variables; empty makes this a cross product.
	Shared []string
	// Needed is the projection applied to output rows; empty keeps all.
	Needed []string
}

// Label implements Node.
func (n *JoinNode) Label() string {
	if len(n.Shared) == 0 {
		return "cross-join"
	}
	return "hash-join"
}

// Detail implements Node.
func (n *JoinNode) Detail() string {
	if len(n.Shared) == 0 {
		return "cartesian product"
	}
	return "on " + strings.Join(n.Shared, ", ")
}

// Kids implements Node.
func (n *JoinNode) Kids() []Node { return []Node{n.Left, n.Right} }

// OutVars implements Node.
func (n *JoinNode) OutVars() []string { return n.Needed }

// joinCol pairs a variable's column position in the left and right input
// (-1 = absent from that side's schema).
type joinCol struct{ l, r int }

// joinCols computes the join's column plan: the output schema (the
// explicit projection, or the union of both input schemas with left's
// order first), each output variable's source columns, and the overlap —
// variables present in both schemas, whose bindings must agree.
func (n *JoinNode) joinCols(left, right *Table) (outVars []string, outs, overlap []joinCol) {
	outVars = n.Needed
	if len(outVars) == 0 {
		outVars = append([]string(nil), left.vars...)
		for _, v := range right.vars {
			if _, ok := left.idx[v]; !ok {
				outVars = append(outVars, v)
			}
		}
	}
	outs = make([]joinCol, len(outVars))
	for i, v := range outVars {
		outs[i] = joinCol{left.ColIndex(v), right.ColIndex(v)}
	}
	for _, v := range left.vars {
		if rc, ok := right.idx[v]; ok {
			overlap = append(overlap, joinCol{left.idx[v], rc})
		}
	}
	return outVars, outs, overlap
}

// joinEmit appends the merge of left row li and right row ri to chunk,
// unless some variable bound on both sides disagrees. For a variable
// bound on both sides the row with more bound variables supplies the
// binding (ties go right) — the precedence match.Env.Join established,
// which matters when two bindings are Equal but not identical (Int 3
// joins Float 3.0).
func joinEmit(chunk, left, right *Table, li, ri int, outs, overlap []joinCol) {
	for _, c := range overlap {
		lb, rb := left.cols[c.l][li], right.cols[c.r][ri]
		if !lb.IsZero() && !rb.IsZero() && !lb.Equal(rb) {
			return
		}
	}
	leftWins := left.boundCount(li) > right.boundCount(ri)
	for i, c := range outs {
		var b match.Binding
		switch {
		case c.l >= 0 && c.r >= 0:
			lb, rb := left.cols[c.l][li], right.cols[c.r][ri]
			switch {
			case lb.IsZero():
				b = rb
			case rb.IsZero() || leftWins:
				b = lb
			default:
				b = rb
			}
		case c.l >= 0:
			b = left.cols[c.l][li]
		case c.r >= 0:
			b = right.cols[c.r][ri]
		}
		chunk.cols[i] = append(chunk.cols[i], b)
	}
	chunk.n++
}

func (n *JoinNode) run(rs *runState, kids []*Table) (*Table, error) {
	left, right := kids[0], kids[1]
	outVars, outs, overlap := n.joinCols(left, right)
	finish := func(chunks []*Table) *Table {
		out := newProjTable(outVars)
		out.Cols = n.Needed
		for _, c := range chunks {
			out.appendTable(c)
		}
		return out
	}
	if len(n.Shared) == 0 {
		// A cross product multiplies row counts: morsel over the outer
		// side, and with a big inner side poll cancellation per outer row
		// — the product of two modest inputs can already be huge.
		chunks := make([]*Table, rs.ex.morselCount(left.Len()))
		if err := rs.runMorsels(n, left.Len(), func(m, lo, hi int) error {
			chunk := newProjTable(outVars)
			for i := lo; i < hi; i++ {
				if right.Len() >= cancelCheckStride {
					if err := rs.cancelled(); err != nil {
						return err
					}
				}
				for j := 0; j < right.Len(); j++ {
					joinEmit(chunk, left, right, i, j, outs, overlap)
				}
			}
			chunks[m] = chunk
			return nil
		}); err != nil {
			return nil, err
		}
		return finish(chunks), nil
	}
	// Partitioned hash join. Build side = the smaller input. Three
	// morsel-parallel phases: hash the build rows, partition the buckets
	// (one worker owns each partition, scanning rows ascending so bucket
	// order is build-row order), probe. Probe morsels emit independent
	// chunks concatenated in probe order, and joinEmit re-checks the
	// bindings, so the output is byte-identical to the serial join.
	hashed, probe := right, left
	buildRight := true
	if left.Len() < right.Len() {
		hashed, probe = left, right
		buildRight = false
	}
	sharedH := make([]int, len(n.Shared))
	sharedP := make([]int, len(n.Shared))
	for i, v := range n.Shared {
		sharedH[i] = hashed.ColIndex(v)
		sharedP[i] = probe.ColIndex(v)
	}
	bh := make([]uint64, hashed.Len())
	if err := rs.runMorsels(n, hashed.Len(), func(_, lo, hi int) error {
		for i := lo; i < hi; i++ {
			bh[i] = hashed.hashRow(i, sharedH)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	nparts := rs.ex.parallelism()
	if nparts > 1 && hashed.Len() < rs.ex.morselRows() {
		nparts = 1 // a tiny build side is not worth nparts scans
	}
	parts := make([]map[uint64][]int32, nparts)
	if nparts <= 1 {
		m := make(map[uint64][]int32, hashed.Len())
		for i, h := range bh {
			m[h] = append(m[h], int32(i))
		}
		parts[0] = m
	} else {
		var wg sync.WaitGroup
		for p := 0; p < nparts; p++ {
			wg.Add(1)
			go func(p uint64) {
				defer wg.Done()
				m := make(map[uint64][]int32, hashed.Len()/nparts+1)
				for i, h := range bh {
					if h%uint64(nparts) == p {
						m[h] = append(m[h], int32(i))
					}
				}
				parts[p] = m
			}(uint64(p))
		}
		wg.Wait()
	}
	chunks := make([]*Table, rs.ex.morselCount(probe.Len()))
	if err := rs.runMorsels(n, probe.Len(), func(m, lo, hi int) error {
		chunk := newProjTable(outVars)
		for i := lo; i < hi; i++ {
			h := probe.hashRow(i, sharedP)
			for _, bi := range parts[h%uint64(nparts)][h] {
				if buildRight {
					joinEmit(chunk, left, right, i, int(bi), outs, overlap)
				} else {
					joinEmit(chunk, left, right, int(bi), i, outs, overlap)
				}
			}
		}
		chunks[m] = chunk
		return nil
	}); err != nil {
		return nil, err
	}
	return finish(chunks), nil
}

// DedupNode projects rows onto Vars and eliminates duplicate bindings —
// the projection/duplicate-elimination step the MSL semantics prescribe
// before object construction.
type DedupNode struct {
	Child Node
	Vars  []string
}

// Label implements Node.
func (n *DedupNode) Label() string { return "dedup" }

// Detail implements Node.
func (n *DedupNode) Detail() string { return "on " + strings.Join(n.Vars, ", ") }

// Kids implements Node.
func (n *DedupNode) Kids() []Node { return []Node{n.Child} }

// OutVars implements Node.
func (n *DedupNode) OutVars() []string { return n.Vars }

func (n *DedupNode) run(rs *runState, kids []*Table) (*Table, error) {
	// Row hashes are computed morsel-parallel; the scan that keeps first
	// occurrences is inherently sequential but does only bucket lookups
	// and (rarely) per-variable equality checks against kept rows.
	in := kids[0]
	cols := make([]int, len(n.Vars))
	for i, v := range n.Vars {
		cols[i] = in.ColIndex(v)
	}
	hashes := make([]uint64, in.Len())
	if err := rs.runMorsels(n, in.Len(), func(_, lo, hi int) error {
		for i := lo; i < hi; i++ {
			hashes[i] = in.hashRow(i, cols)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	out := newProjTable(n.Vars)
	byKey := make(map[uint64][]int32, in.Len())
	for i := 0; i < in.Len(); i++ {
		if err := checkStride(rs, i); err != nil {
			return nil, err
		}
		h := hashes[i]
		dup := false
		for _, j := range byKey[h] {
			eq := true
			for c, ic := range cols {
				if !in.binding(i, ic).Equal(out.cols[c][j]) {
					eq = false
					break
				}
			}
			if eq {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		byKey[h] = append(byKey[h], int32(out.n))
		for c, ic := range cols {
			out.cols[c] = append(out.cols[c], in.binding(i, ic))
		}
		out.n++
	}
	return out, nil
}

// ConstructNode creates one set of result objects per input tuple, using
// the head pattern cp(vars) as the paper's constructor node does. Results
// flow out in the ResultVar column.
type ConstructNode struct {
	Child Node
	Head  []msl.HeadTerm
}

// Label implements Node.
func (n *ConstructNode) Label() string { return "construct" }

// Detail implements Node.
func (n *ConstructNode) Detail() string {
	parts := make([]string, len(n.Head))
	for i, h := range n.Head {
		parts[i] = h.String()
	}
	return strings.Join(parts, " ")
}

// Kids implements Node.
func (n *ConstructNode) Kids() []Node { return []Node{n.Child} }

// OutVars implements Node.
func (n *ConstructNode) OutVars() []string { return []string{ResultVar} }

func (n *ConstructNode) run(rs *runState, kids []*Table) (*Table, error) {
	// Construction stays serial: result oids come from the shared IDGen,
	// and serial assignment keeps them deterministic for a given plan.
	in := kids[0]
	out := newProjTable([]string{ResultVar})
	for i := 0; i < in.Len(); i++ {
		if err := checkStride(rs, i); err != nil {
			return nil, err
		}
		objs, err := build.Head(n.Head, in.Row(i), rs.ex.IDGen)
		if err != nil {
			return nil, err
		}
		for _, obj := range objs {
			out.AppendBinding(ResultVar, match.BindObj(obj))
		}
	}
	return out, nil
}

// UnionNode concatenates the outputs of several subgraphs — one per
// logical datamerge rule; objects from every matching rule are added to
// the result (paper, footnote 6).
type UnionNode struct {
	Inputs []Node
}

// Label implements Node.
func (n *UnionNode) Label() string { return "union" }

// Detail implements Node.
func (n *UnionNode) Detail() string { return fmt.Sprintf("%d branches", len(n.Inputs)) }

// Kids implements Node.
func (n *UnionNode) Kids() []Node { return n.Inputs }

// OutVars implements Node.
func (n *UnionNode) OutVars() []string {
	if len(n.Inputs) == 0 {
		return nil
	}
	return n.Inputs[0].OutVars()
}

func (n *UnionNode) run(rs *runState, kids []*Table) (*Table, error) {
	out := newDynTable(n.OutVars())
	for _, t := range kids {
		out.appendTable(t)
	}
	return out, nil
}
