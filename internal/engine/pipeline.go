package engine

import (
	"context"
	"fmt"
	"sync"
	"time"

	"medmaker/internal/build"
	"medmaker/internal/match"
	"medmaker/internal/wrapper"
)

// This file implements pipelined execution: instead of materializing each
// operator's full output table before its parent runs, operators stream
// row batches to their parents through channels, so a parameterized query
// node starts sending source queries while its child is still producing
// tuples and independent subtrees overlap their source waits. Evaluation
// order within each stage is preserved — batches flow in input order and
// every stage is a single goroutine — so pipelined results are
// structurally identical to the sequential path; the sequential and
// tracing paths themselves are untouched (runGraph dispatches here only
// when Pipeline is set, Parallelism > 1, and tracing is off).
//
// Teardown is context-driven: the whole pipeline runs under a context
// derived from the query's, cancelled on the first stage failure, and
// every blocking point — channel sends, semaphore acquisition, source
// exchanges — selects against it. Cancelling the query context (or its
// deadline passing) therefore tears down every stage goroutine: stages
// stop producing, close their output channels, and the closes cascade to
// the root, so runPipelined's final Wait returns with no goroutine left.

// pipeline carries the shared state of one pipelined run.
type pipeline struct {
	rs     *runState          // run view bound to the pipeline's context
	cancel context.CancelFunc // tears the pipeline down on first failure
	sem    chan struct{}      // bounds concurrently-active source-querying stages
	once   sync.Once
	err    error
	wg     sync.WaitGroup
}

func (ex *Executor) runPipelined(rs *runState, root Node) (*Table, error) {
	ctx, cancel := context.WithCancel(rs.ctx)
	defer cancel()
	p := &pipeline{
		rs:     rs.withCtx(ctx),
		cancel: cancel,
		sem:    make(chan struct{}, ex.parallelism()),
	}
	ch := p.start(root)
	out := newDynTable(root.OutVars())
	for batch := range ch {
		for _, e := range batch {
			out.AppendEnv(e)
		}
	}
	p.wg.Wait()
	if p.err != nil {
		return nil, p.err
	}
	// The query's own context ending is a failure even if every stage
	// drained cleanly first.
	if err := rs.cancelled(); err != nil {
		return nil, err
	}
	return out, nil
}

// fail records the first error and cancels the pipeline's context,
// aborting every stage. Later failures — typically the context
// cancellation echoing back from other stages — are dropped, so the
// root cause wins.
func (p *pipeline) fail(err error) {
	p.once.Do(func() {
		p.err = err
		p.cancel()
	})
}

// done exposes the pipeline's cancellation signal.
func (p *pipeline) done() <-chan struct{} { return p.rs.ctx.Done() }

// spawn runs stage in its own goroutine; the goroutine owns out and
// closes it on exit so downstream consumers terminate.
func (p *pipeline) spawn(out chan []match.Env, stage func() error) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer close(out)
		if err := stage(); err != nil {
			p.fail(err)
		}
	}()
}

// send delivers one batch downstream; it returns false when the pipeline
// was torn down, telling the stage to stop producing.
func (p *pipeline) send(out chan []match.Env, rows []match.Env) bool {
	if len(rows) == 0 {
		return true
	}
	select {
	case out <- rows:
		return true
	case <-p.done():
		return false
	}
}

// sendSliced delivers rows in batches of the configured pipeline size.
func (p *pipeline) sendSliced(out chan []match.Env, rows []match.Env) bool {
	size := p.rs.ex.pipelineRows()
	for start := 0; start < len(rows); start += size {
		end := start + size
		if end > len(rows) {
			end = len(rows)
		}
		if !p.send(out, rows[start:end]) {
			return false
		}
	}
	return true
}

// acquire claims a source-work slot, bounding how many stages hit
// sources concurrently (the Parallelism knob).
func (p *pipeline) acquire() bool {
	select {
	case p.sem <- struct{}{}:
		return true
	case <-p.done():
		return false
	}
}

func (p *pipeline) release() { <-p.sem }

// start launches the subtree rooted at n and returns the channel its
// output rows stream on. Streamable operators get dedicated stages;
// everything else (joins, fusion, external node kinds) falls back to a
// barrier that materializes its inputs and runs the operator as usual.
func (p *pipeline) start(n Node) <-chan []match.Env {
	out := make(chan []match.Env, 2)
	switch t := n.(type) {
	case *QueryNode:
		p.startQuery(t, out)
	case *ExtPredNode:
		p.startExtPred(t, out)
	case *DedupNode:
		p.startDedup(t, out)
	case *ConstructNode:
		p.startConstruct(t, out)
	case *UnionNode:
		p.startUnion(t, out)
	default:
		p.startBarrier(n, out)
	}
	return out
}

func (p *pipeline) startQuery(n *QueryNode, out chan []match.Env) {
	src, ok := p.rs.ex.Sources.Lookup(n.Source)
	if !ok {
		p.spawn(out, func() error {
			return fmt.Errorf("%s: engine: unknown source %q", n.Label(), n.Source)
		})
		return
	}
	if n.Child == nil {
		p.spawn(out, func() error {
			if !p.acquire() {
				return nil
			}
			start := time.Now()
			rows, err := n.runRow(p.rs, src, nil)
			elapsed := time.Since(start)
			p.release()
			if err != nil {
				return fmt.Errorf("%s: %w", n.Label(), err)
			}
			p.rs.nodeObs(n).AddCall(0, len(rows), elapsed)
			p.sendSliced(out, rows)
			return nil
		})
		return
	}
	in := p.start(n.Child)
	p.spawn(out, func() error {
		// The answer memo persists across batches, so a tuple value seen
		// in an early batch never re-queries the source later in the
		// stream.
		memo := map[string]*answerSet{}
		batched := p.rs.ex.queryBatch() > 1
		for batch := range in {
			if !p.acquire() {
				return nil
			}
			start := time.Now()
			var rows []match.Env
			var err error
			if batched {
				rows, err = n.runBatched(p.rs, src, batch, memo)
			} else {
				rows, err = p.queryPerTuple(n, src, batch)
			}
			elapsed := time.Since(start)
			p.release()
			if err != nil {
				return fmt.Errorf("%s: %w", n.Label(), err)
			}
			p.rs.nodeObs(n).AddCall(len(batch), len(rows), elapsed)
			if !p.send(out, rows) {
				return nil
			}
		}
		return nil
	})
}

// queryPerTuple is the pipelined stage body for the classic
// one-query-per-tuple mode.
func (p *pipeline) queryPerTuple(n *QueryNode, src wrapper.Source, batch []match.Env) ([]match.Env, error) {
	var rows []match.Env
	for _, row := range batch {
		envs, err := n.runRow(p.rs, src, row)
		if err != nil {
			return nil, err
		}
		rows = append(rows, envs...)
	}
	return rows, nil
}

func (p *pipeline) startExtPred(n *ExtPredNode, out chan []match.Env) {
	in := p.start(n.Child)
	p.spawn(out, func() error {
		for batch := range in {
			start := time.Now()
			var rows []match.Env
			for _, row := range batch {
				envs, err := p.rs.ex.Extfn.Eval(n.Pred, row)
				if err != nil {
					return fmt.Errorf("%s: %w", n.Label(), err)
				}
				for _, e := range envs {
					if len(n.Needed) > 0 {
						e = e.Project(n.Needed)
					}
					rows = append(rows, e)
				}
			}
			p.rs.nodeObs(n).AddCall(len(batch), len(rows), time.Since(start))
			if !p.send(out, rows) {
				return nil
			}
		}
		return nil
	})
}

// startDedup streams duplicate elimination: the seen-set persists across
// batches and mirrors match.DedupEnvs (first occurrence wins, hash
// bucket plus equality check), so the kept rows and their order match
// the materialized operator exactly.
func (p *pipeline) startDedup(n *DedupNode, out chan []match.Env) {
	in := p.start(n.Child)
	p.spawn(out, func() error {
		byKey := map[uint64][]match.Env{}
		for batch := range in {
			start := time.Now()
			var rows []match.Env
		outer:
			for _, e := range batch {
				proj := e.Project(n.Vars)
				key := proj.HashEnv(n.Vars)
				for _, seen := range byKey[key] {
					if seen.Equal(proj) {
						continue outer
					}
				}
				byKey[key] = append(byKey[key], proj)
				rows = append(rows, proj)
			}
			p.rs.nodeObs(n).AddCall(len(batch), len(rows), time.Since(start))
			if !p.send(out, rows) {
				return nil
			}
		}
		return nil
	})
}

func (p *pipeline) startConstruct(n *ConstructNode, out chan []match.Env) {
	in := p.start(n.Child)
	p.spawn(out, func() error {
		for batch := range in {
			start := time.Now()
			var rows []match.Env
			for _, row := range batch {
				objs, err := build.Head(n.Head, row, p.rs.ex.IDGen)
				if err != nil {
					return fmt.Errorf("%s: %w", n.Label(), err)
				}
				for _, obj := range objs {
					env, _ := match.Env(nil).Extend(ResultVar, match.BindObj(obj))
					rows = append(rows, env)
				}
			}
			p.rs.nodeObs(n).AddCall(len(batch), len(rows), time.Since(start))
			if !p.send(out, rows) {
				return nil
			}
		}
		return nil
	})
}

// startUnion starts every branch immediately — their subtrees execute
// concurrently — but forwards their output strictly in branch order, so
// the union's row order matches sequential execution.
func (p *pipeline) startUnion(n *UnionNode, out chan []match.Env) {
	ins := make([]<-chan []match.Env, len(n.Inputs))
	for i, k := range n.Inputs {
		ins[i] = p.start(k)
	}
	p.spawn(out, func() error {
		for _, in := range ins {
			for batch := range in {
				p.rs.nodeObs(n).AddCall(len(batch), len(batch), 0)
				if !p.send(out, batch) {
					return nil
				}
			}
		}
		return nil
	})
}

// startBarrier handles operators that need their whole input before
// producing anything (hash joins, fusion, and any node kind this file
// does not know): the inputs still stream concurrently, the operator
// itself runs once they are collected.
func (p *pipeline) startBarrier(n Node, out chan []match.Env) {
	kidNodes := n.Kids()
	ins := make([]<-chan []match.Env, len(kidNodes))
	for i, k := range kidNodes {
		ins[i] = p.start(k)
	}
	p.spawn(out, func() error {
		kids := make([]*Table, len(kidNodes))
		for i, in := range ins {
			tbl := newDynTable(kidNodes[i].OutVars())
			for batch := range in {
				for _, e := range batch {
					tbl.AppendEnv(e)
				}
			}
			kids[i] = tbl
		}
		if err := p.rs.cancelled(); err != nil {
			return nil // an input failed or the run was cancelled; its rows are incomplete
		}
		start := time.Now()
		res, err := n.run(p.rs, kids)
		if err != nil {
			return fmt.Errorf("%s: %w", n.Label(), err)
		}
		p.rs.observeNode(n, kids, res, time.Since(start))
		p.sendSliced(out, res.Envs())
		return nil
	})
}
