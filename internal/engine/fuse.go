package engine

import (
	"medmaker/internal/match"
	"medmaker/internal/oem"
)

// FuseNode merges result objects that share an object-id into a single
// object — MedMaker's object fusion over semantic object-ids. Two
// derivations of the same real-world entity (e.g. the same paper found in
// two bibliographies) construct objects with equal skolem ids; fusion
// unions their subobject sets, eliminating structurally duplicate members,
// so the virtual object carries the combined information. Objects with
// unique ids (the ordinary generated ones) pass through unchanged, and
// input order is preserved by first appearance.
type FuseNode struct {
	Child Node
}

// Label implements Node.
func (n *FuseNode) Label() string { return "fuse" }

// Detail implements Node.
func (n *FuseNode) Detail() string { return "merge result objects sharing an object-id" }

// Kids implements Node.
func (n *FuseNode) Kids() []Node { return []Node{n.Child} }

// OutVars implements Node.
func (n *FuseNode) OutVars() []string { return []string{ResultVar} }

func (n *FuseNode) run(rs *runState, kids []*Table) (*Table, error) {
	in := kids[0]
	byOID := make(map[oem.OID]*oem.Object, in.Len())
	var order []*oem.Object
	results := in.Column(ResultVar)
	for i, b := range results {
		if err := checkStride(rs, i); err != nil {
			return nil, err
		}
		if b.Obj == nil {
			continue
		}
		obj := b.Obj
		prev, seen := byOID[obj.OID]
		if !seen || obj.OID == oem.NilOID {
			byOID[obj.OID] = obj
			order = append(order, obj)
			continue
		}
		mergeInto(prev, obj)
	}
	out := newProjTable([]string{ResultVar})
	for _, obj := range order {
		out.AppendBinding(ResultVar, match.BindObj(obj))
	}
	return out, nil
}

// mergeInto unions src's subobjects into dst, skipping members that are
// structural duplicates of ones already present (hash-indexed via
// oem.Deduper). Atomic-valued objects cannot be unioned; the first
// derivation wins and later atomic values are dropped (the specification
// promised equal-id objects denote one entity, so a conflict is a
// data-quality issue, not an engine one).
func mergeInto(dst, src *oem.Object) {
	dstSet, dstOK := dst.Value.(oem.Set)
	srcSet, srcOK := src.Value.(oem.Set)
	if dst.Value == nil {
		dstSet, dstOK = nil, true
	}
	if src.Value == nil {
		srcSet, srcOK = nil, true
	}
	if !dstOK || !srcOK {
		return
	}
	seen := oem.NewDeduper(len(dstSet) + len(srcSet))
	for _, have := range dstSet {
		seen.Seen(have)
	}
	changed := false
	for _, member := range srcSet {
		if !seen.Seen(member) {
			dstSet = append(dstSet, member)
			changed = true
		}
	}
	if changed {
		dst.Value = dstSet
		// dst's subtree changed under it: drop its memoized hash (the
		// only place MedMaker mutates an object after it may be shared).
		dst.InvalidateHash()
	}
}
