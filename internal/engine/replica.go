package engine

import (
	"fmt"
	"sort"
	"time"

	"medmaker/internal/metrics"
	"medmaker/internal/msl"
	"medmaker/internal/oem"
	"medmaker/internal/wrapper"
)

// This file is the engine side of replicated sources (wrapper.Replicated):
// one logical source over N answer-equivalent members. Instead of calling
// the composite's own Query — which fails over in fixed registration
// order — the query node ranks members by the latency and error-rate
// EWMAs the statistics store accumulated for them (Stats.ReplicaScore),
// sends each exchange to the best-scoring member, and fails over to the
// next-ranked member on error. Unobserved members rank first so the
// router explores every replica before settling on the fastest, and
// because RecordLatency decays a member's error EWMA while RecordError
// raises it, a member that recovers is re-tried once its score drops back
// below its siblings'. Only when every member fails does the exchange
// fail, attributed to the composite under the run's ExecPolicy — the
// hedged-failover contract: a single healthy replica keeps the source
// answering.

// rankReplicas orders the members for one exchange: unobserved members
// first (exploration), then by ascending replica score; the sort is
// stable, so equal scores keep registration order.
func rankReplicas(stats *Stats, members []wrapper.Source) []wrapper.Source {
	out := append([]wrapper.Source(nil), members...)
	if stats == nil {
		return out
	}
	scores := make(map[string]float64, len(out))
	for _, m := range out {
		if sc, ok := stats.ReplicaScore(m.Name()); ok {
			scores[m.Name()] = sc
		} else {
			scores[m.Name()] = -1
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return scores[out[i].Name()] < scores[out[j].Name()]
	})
	return out
}

// queryReplicas evaluates one instantiated query against a replicated
// source: best-scored member first, failing over on error. skipped=true
// means every member failed (or was circuit-broken) and the policy
// absorbed it.
func (n *QueryNode) queryReplicas(rs *runState, rep wrapper.Replicated, q *msl.Rule) ([]*oem.Object, bool, error) {
	reg := metrics.Default()
	var lastErr error
	for _, m := range rankReplicas(rs.ex.Stats, rep.Replicas()) {
		if rs.sourceDown(m.Name()) {
			continue
		}
		if err := rs.cancelled(); err != nil {
			return nil, true, err
		}
		ctx, cancel := rs.sourceCtx(n)
		start := time.Now()
		objs, qerr := wrapper.QueryContext(ctx, m, q)
		elapsed := time.Since(start)
		cancel()
		if qerr != nil {
			lastErr = &wrapper.ReplicaError{Source: rep.Name(), Member: m.Name(), Err: qerr}
			reg.Counter("replica.failover").Inc()
			if rs.ex.Stats != nil {
				rs.ex.Stats.RecordError(m.Name(), qerr)
			}
			continue
		}
		reg.Counter("replica.exchanges").Inc()
		reg.Counter("replica.routed." + m.Name()).Inc()
		rs.recordExchange(n, 1, elapsed)
		rs.ex.recordLatency(m.Name(), elapsed)
		rs.ex.recordQuery(n, len(objs))
		return objs, false, nil
	}
	if lastErr == nil {
		// Every member was circuit-broken by earlier failures.
		return nil, true, nil
	}
	return nil, true, rs.sourceFailed(n.Source, lastErr)
}

// fetchChunkReplicated is the batched path over a replicated source: the
// whole chunk ships as one exchange to the best-scored batch-capable
// member, failing over member by member; if no batch-capable member
// answers, the chunk degrades to per-query exchanges through
// queryReplicas (which fails over on its own).
func (n *QueryNode) fetchChunkReplicated(rs *runState, rep wrapper.Replicated, chunk []string, pending map[string]*msl.Rule, store func(string, *answerSet)) error {
	reg := metrics.Default()
	if len(chunk) > 1 {
		qs := make([]*msl.Rule, len(chunk))
		for i, k := range chunk {
			qs[i] = pending[k]
		}
		for _, m := range rankReplicas(rs.ex.Stats, rep.Replicas()) {
			switch m.(type) {
			case wrapper.ContextBatchQuerier, wrapper.BatchQuerier:
			default:
				continue
			}
			if rs.sourceDown(m.Name()) {
				continue
			}
			if err := rs.cancelled(); err != nil {
				return err
			}
			ctx, cancel := rs.sourceCtx(n)
			start := time.Now()
			res, err := wrapper.QueryBatchContext(ctx, m, qs)
			elapsed := time.Since(start)
			cancel()
			if err != nil {
				reg.Counter("replica.failover").Inc()
				if rs.ex.Stats != nil {
					rs.ex.Stats.RecordError(m.Name(), err)
				}
				continue
			}
			if len(res) != len(qs) {
				return fmt.Errorf("engine: batch query to replica %s returned %d answers for %d queries",
					m.Name(), len(res), len(qs))
			}
			reg.Counter("replica.exchanges").Inc()
			reg.Counter("replica.routed." + m.Name()).Inc()
			rs.recordExchange(n, len(chunk), elapsed)
			rs.ex.recordLatency(m.Name(), elapsed)
			for i, k := range chunk {
				store(k, &answerSet{objs: res[i]})
				rs.ex.recordQuery(n, len(res[i]))
			}
			return nil
		}
	}
	for _, k := range chunk {
		objs, _, err := n.queryReplicas(rs, rep, pending[k])
		if err != nil {
			return err
		}
		store(k, &answerSet{objs: objs})
	}
	return nil
}
