package engine

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"medmaker/internal/extfn"
	"medmaker/internal/msl"
	"medmaker/internal/oem"
	"medmaker/internal/trace"
	"medmaker/internal/wrapper"
)

// Executor runs physical datamerge graphs bottom-up. It carries the
// environment a graph needs: the source registry, the external-function
// table, an id generator for result objects, optional tracing, and the
// statistics store the cost-based optimizer learns from (Section 3.5:
// "builds its own statistics database that is based on results of
// previous queries").
type Executor struct {
	Sources *wrapper.Registry
	Extfn   *extfn.Table
	IDGen   *oem.IDGen
	// Stats, when non-nil, accumulates per-source result counts.
	Stats *Stats
	// Recorder, when non-nil, receives the run's structured execution
	// record: per-node rows, wall time, exchange counts, and per-source
	// latency histograms, merged race-free across all execution modes.
	// This is the structured successor of Trace; unlike Trace it does not
	// force sequential execution.
	Recorder *trace.QueryTrace
	// Trace, when non-nil, receives a node-by-node text account of the
	// run — the operator, its parameters, and the flowing binding tables,
	// as in Figure 3.6 — kept for compatibility with the original ad-hoc
	// tracer. Tracing forces sequential execution.
	Trace io.Writer
	// TraceRows bounds the rows printed per table (0 = 8).
	TraceRows int
	// Parallelism > 1 lets the executor evaluate independent subtrees
	// concurrently and fan parameterized-query input tuples across that
	// many workers. Sources must then tolerate concurrent queries (all
	// bundled wrappers do) and external functions must be pure.
	Parallelism int
	// QueryBatch > 1 enables parameterized-query batching: a query node
	// deduplicates its input tuples and ships the distinct instantiated
	// queries in groups of up to QueryBatch per exchange (one exchange per
	// query for sources that do not implement wrapper.BatchQuerier),
	// distributing answers back to the originating rows. 0 or 1 keeps the
	// paper's one-query-per-tuple behavior.
	QueryBatch int
	// Pipeline streams row batches between plan operators through
	// channels instead of materializing each operator's full output,
	// overlapping source waits across the graph. It engages only when
	// Parallelism > 1 and tracing is off; the sequential path is untouched.
	Pipeline bool
	// PipelineRows is the row-batch size pipelined execution streams
	// between operators (0 = DefaultPipelineRows).
	PipelineRows int
	// MorselRows is how many rows of a local operator's input one worker
	// claims at a time when fanning out morsel-parallel (0 =
	// DefaultMorselRows).
	MorselRows int
	// Policy bounds and degrades per-source work: a per-exchange timeout
	// and what to do when a source fails (abort, skip the source, or
	// skip the exchange). The zero value reproduces the paper's
	// all-or-nothing behavior.
	Policy Policy

	depth int
}

// DefaultPipelineRows is the pipelined executor's row-batch size when
// PipelineRows is zero.
const DefaultPipelineRows = 64

// queryBatch returns the effective parameterized-query batch size; values
// below 2 mean batching is off.
func (ex *Executor) queryBatch() int {
	if ex.QueryBatch < 2 {
		return 1
	}
	return ex.QueryBatch
}

// pipelineRows returns the effective streaming row-batch size.
func (ex *Executor) pipelineRows() int {
	if ex.PipelineRows <= 0 {
		return DefaultPipelineRows
	}
	return ex.PipelineRows
}

// parallelism returns the effective worker count.
func (ex *Executor) parallelism() int {
	if ex.Trace != nil || ex.Parallelism < 2 {
		return 1
	}
	return ex.Parallelism
}

// Run executes the graph rooted at n and returns its output table.
func (ex *Executor) Run(n Node) (*Table, error) {
	return ex.RunContext(context.Background(), n)
}

// RunContext is Run bounded by ctx: cancellation or an expired deadline
// aborts the run promptly — between operators, at the engine's row-batch
// boundaries inside long joins and cross-products, and inside source
// exchanges (context-aware sources are cancelled; context-blind ones are
// abandoned) — and surfaces as ctx.Err(). Every execution goroutine the
// engine itself started has exited by the time RunContext returns.
func (ex *Executor) RunContext(ctx context.Context, n Node) (*Table, error) {
	return ex.runGraph(newRunState(ex, ctx, n), n)
}

func (ex *Executor) runGraph(rs *runState, n Node) (*Table, error) {
	if err := rs.cancelled(); err != nil {
		return nil, err
	}
	if ex.Pipeline && ex.parallelism() > 1 {
		return ex.runPipelined(rs, n)
	}
	return ex.runMaterialized(rs, n)
}

// runMaterialized is the classic bottom-up evaluation: every operator's
// output table is fully materialized before its parent runs.
func (ex *Executor) runMaterialized(rs *runState, n Node) (*Table, error) {
	if err := rs.cancelled(); err != nil {
		return nil, err
	}
	kidNodes := n.Kids()
	kids := make([]*Table, len(kidNodes))
	if ex.parallelism() > 1 && len(kidNodes) > 1 {
		errs := make([]error, len(kidNodes))
		var wg sync.WaitGroup
		for i, k := range kidNodes {
			wg.Add(1)
			go func(i int, k Node) {
				defer wg.Done()
				kids[i], errs[i] = ex.runMaterialized(rs, k)
			}(i, k)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	} else {
		for i, k := range kidNodes {
			t, err := ex.runMaterialized(rs, k)
			if err != nil {
				return nil, err
			}
			kids[i] = t
		}
	}
	start := time.Now()
	out, err := n.run(rs, kids)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", n.Label(), err)
	}
	rs.observeNode(n, kids, out, time.Since(start))
	return out, nil
}

// RunObjects executes the graph and collects the constructed result
// objects from the ResultVar column.
func (ex *Executor) RunObjects(n Node) ([]*oem.Object, error) {
	return ex.RunObjectsContext(context.Background(), n)
}

// RunObjectsContext is RunObjects bounded by ctx (see RunContext).
func (ex *Executor) RunObjectsContext(ctx context.Context, n Node) ([]*oem.Object, error) {
	res, err := ex.RunResult(ctx, n)
	if err != nil {
		return nil, err
	}
	return res.Objects, nil
}

// RunResult executes the graph under ctx and the executor's Policy,
// returning the result objects together with the degradation record:
// whether any source's contribution was dropped (Result.Incomplete) and
// the per-source failures behind it.
func (ex *Executor) RunResult(ctx context.Context, n Node) (*Result, error) {
	rs := newRunState(ex, ctx, n)
	t, err := ex.runGraph(rs, n)
	if err != nil {
		return nil, err
	}
	out := make([]*oem.Object, 0, t.Len())
	col := t.Column(ResultVar)
	if col == nil && t.Len() > 0 {
		return nil, fmt.Errorf("engine: graph output lacks a %s column", ResultVar)
	}
	for _, b := range col {
		if b.Obj == nil {
			return nil, fmt.Errorf("engine: graph output row lacks a %s object", ResultVar)
		}
		out = append(out, b.Obj)
	}
	rs.absorbFeedback()
	return rs.result(out), nil
}

// absorbFeedback closes the observe→learn loop after a traced run: for
// every parameterized query node the trace watched, the observed output
// rows per input row — the join selectivity the node actually delivered —
// is folded into the statistics store under the node's shape key with an
// "|out" suffix. The adaptive join order reads these to price inner
// positions as outer-cardinality × learned selectivity. Negated nodes are
// skipped: their output is a filter decision, not a cardinality.
func (rs *runState) absorbFeedback() {
	if rs.obs == nil || rs.ex.Stats == nil {
		return
	}
	for n, ns := range rs.obs.nodes {
		qn, ok := n.(*QueryNode)
		if !ok || qn.Shape == "" || qn.Negated || qn.Child == nil {
			continue
		}
		in := ns.RowsIn()
		if in <= 0 {
			continue
		}
		rs.ex.Stats.RecordValue(qn.Source, qn.Shape+"|out", float64(ns.RowsOut())/float64(in))
	}
}

func (ex *Executor) traceNode(n Node, out *Table, d time.Duration) {
	fmt.Fprintf(ex.Trace, "%s [%s] %s -> %d rows (%s)\n",
		strings.Repeat("  ", ex.depth), n.Label(), clip(n.Detail(), 100), out.Len(), d.Round(time.Microsecond))
	maxRows := ex.TraceRows
	if maxRows == 0 {
		maxRows = 8
	}
	out.Format(ex.Trace, maxRows)
}

// recordQuery folds one instantiated query's answer size into the
// statistics store, under the node's condition-aware shape key (when the
// planner attached one) and under the label-only template bucket the
// pre-shape cost model falls back to.
func (ex *Executor) recordQuery(n *QueryNode, results int) {
	if ex.Stats == nil {
		return
	}
	if n.Shape != "" {
		ex.Stats.Record(n.Source, n.Shape, results)
	}
	ex.Stats.Record(n.Source, templateKey(n.Send), results)
}

// recordLatency folds one successful exchange's wall time into the
// source's latency EWMA — for replicated sources the member's, so the
// routing score tracks the replica that actually answered.
func (ex *Executor) recordLatency(source string, d time.Duration) {
	if ex.Stats == nil {
		return
	}
	ex.Stats.RecordLatency(source, d)
}

// recordExchange counts one source exchange carrying the given number of
// queries — the round-trip traffic batching exists to reduce.
func (ex *Executor) recordExchange(source string, queries int) {
	if ex.Stats == nil {
		return
	}
	ex.Stats.RecordExchange(source, queries)
}

// templateKey identifies a query shape for the statistics store: the
// source pattern labels of the template, ignoring constants, so repeated
// parameterized instances aggregate under one key.
func templateKey(r *msl.Rule) string {
	var parts []string
	for _, c := range r.Tail {
		if pc, ok := c.(*msl.PatternConjunct); ok {
			l := pc.Pattern.LabelName()
			if l == "" {
				l = "*"
			}
			parts = append(parts, l)
		}
	}
	return strings.Join(parts, "+")
}

// PrintGraph renders the graph as an indented tree, leaves last — the
// textual form of the paper's Figure 3.6 dataflow graph (which executes
// bottom-up; here the root prints first).
func PrintGraph(w io.Writer, n Node) {
	printGraph(w, n, 0)
}

func printGraph(w io.Writer, n Node, depth int) {
	fmt.Fprintf(w, "%s%s: %s\n", strings.Repeat("    ", depth), n.Label(), n.Detail())
	for _, k := range n.Kids() {
		printGraph(w, k, depth+1)
	}
}

// CountQueries returns how many query nodes (leaf or parameterized) the
// graph contains — a cheap static cost signal used in tests and traces.
func CountQueries(n Node) int {
	count := 0
	if _, ok := n.(*QueryNode); ok {
		count = 1
	}
	for _, k := range n.Kids() {
		count += CountQueries(k)
	}
	return count
}
