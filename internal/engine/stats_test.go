package engine

import (
	"errors"
	"testing"
	"time"

	"medmaker/internal/metrics"
	"medmaker/internal/msl"
)

func TestStatsEWMA(t *testing.T) {
	s := NewStats()
	for i := 0; i < 5; i++ {
		s.Record("src", "person", 10)
	}
	if est, ok := s.Estimate("src", "person"); !ok || est != 10 {
		t.Fatalf("constant series: estimate %v, %v; want exactly 10", est, ok)
	}
	// A shifted workload converges: one observation of 20 moves the
	// average by cardAlpha of the difference.
	s.Record("src", "person", 20)
	if est, _ := s.Estimate("src", "person"); est != 10+cardAlpha*10 {
		t.Fatalf("after shift: estimate %v, want %v", est, 10+cardAlpha*10)
	}
	if n := s.Observations("src", "person"); n != 6 {
		t.Fatalf("observations %d, want 6", n)
	}
}

func TestStatsLRUEviction(t *testing.T) {
	before := metrics.Default().Counter("stats.evicted").Value()
	s := NewStats()
	s.SetMaxEntries(2)
	s.Record("src", "a", 1)
	s.Record("src", "b", 2)
	s.Record("src", "a", 1) // touch a: b becomes the eviction victim
	s.Record("src", "c", 3)
	if s.Entries() != 2 || s.Evicted() != 1 {
		t.Fatalf("entries=%d evicted=%d; want 2, 1", s.Entries(), s.Evicted())
	}
	if _, ok := s.Estimate("src", "b"); ok {
		t.Fatal("least recently used entry b survived eviction")
	}
	if _, ok := s.Estimate("src", "a"); !ok {
		t.Fatal("recently touched entry a was evicted")
	}
	if got := metrics.Default().Counter("stats.evicted").Value() - before; got != 1 {
		t.Fatalf("stats.evicted metric moved by %d, want 1", got)
	}
}

func TestStatsGeneration(t *testing.T) {
	s := NewStats()
	g0 := s.Generation()
	s.Record("src", "person", 4)
	if s.Generation() == g0 {
		t.Fatal("generation did not advance on a recorded value")
	}
	g1 := s.Generation()
	s.RecordLatency("src", time.Millisecond) // latency is not an estimate
	if s.Generation() != g1 {
		t.Fatal("generation advanced on a latency observation")
	}
}

func TestStatsLatencyAndReplicaScore(t *testing.T) {
	s := NewStats()
	if _, ok := s.ReplicaScore("fast"); ok {
		t.Fatal("unobserved source has a score")
	}
	for i := 0; i < 4; i++ {
		s.RecordLatency("fast", time.Millisecond)
		s.RecordLatency("slow", 50*time.Millisecond)
	}
	if lat, ok := s.SourceLatency("fast"); !ok || lat != time.Millisecond {
		t.Fatalf("fast latency %v, %v", lat, ok)
	}
	fast, _ := s.ReplicaScore("fast")
	slow, _ := s.ReplicaScore("slow")
	if fast >= slow {
		t.Fatalf("fast score %v not below slow score %v", fast, slow)
	}
	// Errors push a member's score above a healthy sibling's …
	for i := 0; i < 4; i++ {
		s.RecordError("fast", errors.New("down"))
	}
	failed, _ := s.ReplicaScore("fast")
	if failed <= slow {
		t.Fatalf("erroring member score %v not above slow member %v", failed, slow)
	}
	// … and successful exchanges decay the error term, so a recovered
	// member is routed to again.
	for i := 0; i < 20; i++ {
		s.RecordLatency("fast", time.Millisecond)
	}
	recovered, _ := s.ReplicaScore("fast")
	if recovered >= slow {
		t.Fatalf("recovered member score %v did not drop below slow member %v", recovered, slow)
	}
}

// shapePattern extracts the pattern of a one-conjunct query.
func shapePattern(t *testing.T, query string) *msl.ObjectPattern {
	t.Helper()
	q, err := msl.ParseQuery(query)
	if err != nil {
		t.Fatal(err)
	}
	return q.Tail[0].(*msl.PatternConjunct).Pattern
}

func TestShapeOfConditionAware(t *testing.T) {
	withConst := ShapeOf(shapePattern(t, `X :- X:<person {<dept 'CS'> <name N>}>@w.`), nil)
	withoutConst := ShapeOf(shapePattern(t, `X :- X:<person {<dept D> <name N>}>@w.`), nil)
	if withConst == withoutConst {
		t.Fatalf("constant condition not visible in shape: %q", withConst)
	}
	// Member order must not split the key: the same conditions written
	// the other way around share the bucket.
	swapped := ShapeOf(shapePattern(t, `X :- X:<person {<name N> <dept 'CS'>}>@w.`), nil)
	if withConst != swapped {
		t.Fatalf("shape is order-sensitive: %q vs %q", withConst, swapped)
	}
	// A bound (parameterized) variable conditions the query like a
	// constant, but under its own marker: the per-parameter answer sizes
	// must not pool with full-extent fetches.
	bound := ShapeOf(shapePattern(t, `X :- X:<person {<dept D> <name N>}>@w.`), ShapeVars([]string{"D"}))
	if bound == withoutConst || bound == withConst {
		t.Fatalf("bound variable not distinguished: %q vs %q / %q", bound, withoutConst, withConst)
	}
}

func TestShapeOfLabelAndWildcard(t *testing.T) {
	labelled := ShapeOf(shapePattern(t, `X :- X:<person {<name N>}>@w.`), nil)
	varLabel := ShapeOf(shapePattern(t, `X :- X:<L {<name N>}>@w.`), nil)
	if labelled == varLabel {
		t.Fatal("label constant and label variable share a shape")
	}
	boundLabel := ShapeOf(shapePattern(t, `X :- X:<L {<name N>}>@w.`), ShapeVars([]string{"L"}))
	if boundLabel == varLabel {
		t.Fatal("bound label variable not distinguished from free one")
	}
}
