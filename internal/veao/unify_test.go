package veao

import (
	"strings"
	"testing"

	"medmaker/internal/msl"
)

// expandOne is a helper expanding a query against a one-rule spec.
func expandOne(t *testing.T, spec, query string) (*Program, error) {
	t.Helper()
	prog, err := msl.ParseProgram(spec)
	if err != nil {
		t.Fatal(err)
	}
	q, err := msl.ParseQuery(query)
	if err != nil {
		t.Fatal(err)
	}
	return NewExpander(prog, "med", Options{}).Expand(q)
}

func mustExpand(t *testing.T, spec, query string) *Program {
	t.Helper()
	p, err := expandOne(t, spec, query)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestUnifyAtomicHeadForms(t *testing.T) {
	spec := `<status {<code 200> <msg M>}> :- <log {<msg M>}>@src.`
	// Constant condition against a constant head element.
	if p := mustExpand(t, spec, `X :- X:<status {<code 200>}>@med.`); len(p.Rules) != 1 {
		t.Fatalf("matching constant: %s", p)
	}
	if p := mustExpand(t, spec, `X :- X:<status {<code 404>}>@med.`); len(p.Rules) != 0 {
		t.Fatalf("mismatching constant produced rules: %s", p)
	}
	// Variable condition binds to the head constant.
	p := mustExpand(t, spec, `<out C> :- <status {<code C>}>@med.`)
	if len(p.Rules) != 1 || !strings.Contains(p.Rules[0].String(), "<out 200>") {
		t.Fatalf("variable against constant head: %s", p)
	}
	// A set condition never matches an atomic head element.
	if p := mustExpand(t, spec, `X :- X:<status {<code {<x 1>}>}>@med.`); len(p.Rules) != 0 {
		t.Fatalf("set against atomic head produced rules: %s", p)
	}
	// An atomic condition never matches a set-valued head element.
	spec2 := `<rec {<kids {<a A>}>}> :- <src {<a A>}>@s.`
	if p := mustExpand(t, spec2, `X :- X:<rec {<kids 3>}>@med.`); len(p.Rules) != 0 {
		t.Fatalf("atom against set head produced rules: %s", p)
	}
}

func TestUnifyValueVariableAgainstForms(t *testing.T) {
	// Head with no value field: the view objects carry empty sets.
	spec := `<marker> :- <src {<a A>}>@s.`
	p := mustExpand(t, spec, `<out V> :- <marker V>@med.`)
	if len(p.Rules) != 1 {
		t.Fatalf("value var against empty head: %s", p)
	}
	if !strings.Contains(p.Rules[0].String(), "<out {}>") {
		t.Fatalf("V should be defined as the empty set: %s", p)
	}
	// Value variable against a set-pattern head: defined as the set.
	spec2 := `<rec {<a A> <b B>}> :- <src {<a A> <b B>}>@s.`
	p2 := mustExpand(t, spec2, `<out V> :- <rec V>@med.`)
	if len(p2.Rules) != 1 || !strings.Contains(p2.Rules[0].String(), "<out {<a A") {
		t.Fatalf("value var against set head: %s", p2)
	}
}

func TestUnifyLabelVariableQuery(t *testing.T) {
	spec := `<temp {<c C>}> :- <r {<c C>}>@s.
	         <wind {<w W>}> :- <r {<w W>}>@s.`
	p := mustExpand(t, spec, `<seen L> :- <L {}>@med.`)
	// The label variable matches both rule heads.
	if len(p.Rules) != 2 {
		t.Fatalf("label variable matched %d rules:\n%s", len(p.Rules), p)
	}
	s := p.String()
	if !strings.Contains(s, "<seen 'temp'>") && !strings.Contains(s, "<seen temp>") {
		t.Fatalf("label binding lost:\n%s", s)
	}
}

func TestCheckTypeAgainstTypedVarHead(t *testing.T) {
	// The head declares its variable's type: a matching type condition is
	// accepted, a mismatching one rejected.
	spec := `<rec {<year integer Y>}> :- <src {<year Y>}>@s.`
	if _, err := expandOne(t, spec, `X :- X:<rec {<year integer V>}>@med.`); err != nil {
		t.Fatalf("matching type condition rejected: %v", err)
	}
	p := mustExpand(t, spec, `X :- X:<rec {<year string V>}>@med.`)
	// The type mismatch rules out the pairing with the explicit element;
	// with no rest/set variables to push into, no rules result.
	if len(p.Rules) != 0 {
		t.Fatalf("mismatching type produced rules: %s", p)
	}
}

func TestProgramString(t *testing.T) {
	p := mustExpand(t, `<a {X}> :- <b {X}>@s. p(bound) by lower.`, `Q :- Q:<a {Y}>@med.`)
	s := p.String()
	if !strings.Contains(s, "@s") || !strings.Contains(s, "p(bound) by lower.") {
		t.Fatalf("Program.String: %s", s)
	}
}

func TestRestConstraintInQueryAgainstView(t *testing.T) {
	// A query rest-constraint is treated as a pushable condition.
	spec := `<prof {<name N> | R}> :- <person {<name N> | R}>@hr.`
	p := mustExpand(t, spec, `X :- X:<prof {<name N> | Q:{<year 3>}}>@med.`)
	if len(p.Rules) != 1 {
		t.Fatalf("rest-constraint query: %d rules\n%s", len(p.Rules), p)
	}
	if !strings.Contains(p.Rules[0].String(), "<year 3>") {
		t.Fatalf("constraint lost:\n%s", p)
	}
}

func TestObjVarConditionAndOtherConjunct(t *testing.T) {
	// The expanded conjunct's object variable is defined; a second,
	// pass-through conjunct keeps its own object variable.
	spec := `<v {<a A>}> :- <s {<a A>}>@s1.`
	p := mustExpand(t, spec, `X Y :- X:<v {<a A>}>@med AND Y:<t {<b A>}>@s2.`)
	if len(p.Rules) != 1 {
		t.Fatalf("rules: %s", p)
	}
	r := p.Rules[0]
	if len(r.Head) != 2 {
		t.Fatalf("head terms: %v", r.Head)
	}
	if _, ok := r.Head[0].(*msl.ObjectPattern); !ok {
		t.Fatalf("X should be defined: %v", r.Head[0])
	}
	if v, ok := r.Head[1].(*msl.Var); !ok || !strings.HasPrefix(v.Name, "q") {
		t.Fatalf("Y should remain a variable: %v", r.Head[1])
	}
}

func TestExpandErrorsSurfaceInsideSets(t *testing.T) {
	spec := `<v {<a A>}> :- <s {<a A>}>@s1.`
	// Unsubstituted parameter inside a query against the view.
	if _, err := expandOne(t, spec, `X :- X:<v {<a $P>}>@med.`); err == nil {
		t.Fatal("parameter in query value accepted")
	}
}

func TestNegatedMediatorConditionRejected(t *testing.T) {
	spec := `<v {<a A>}> :- <s {<a A>}>@s1.`
	if _, err := expandOne(t, spec, `<out X> :- <s {<a X>}>@s1 AND NOT <v {<a X>}>@med.`); err == nil {
		t.Fatal("negated mediator condition expanded (should be routed to materialization by the caller)")
	}
	// Negated source conditions pass through expansion untouched.
	p := mustExpand(t, spec, `X :- X:<v {<a A>}>@med AND NOT <t {<a A>}>@s2.`)
	if len(p.Rules) != 1 {
		t.Fatalf("rules: %s", p)
	}
	found := false
	for _, c := range p.Rules[0].Tail {
		if pc, ok := c.(*msl.PatternConjunct); ok && pc.Negated && pc.Source == "s2" {
			found = true
		}
	}
	if !found {
		t.Fatalf("negated pass-through lost:\n%s", p)
	}
}

func TestMaxDepthDefault(t *testing.T) {
	e := NewExpander(&msl.Program{}, "med", Options{})
	if e.opts.MaxDepth != 32 {
		t.Fatalf("default MaxDepth = %d", e.opts.MaxDepth)
	}
}
