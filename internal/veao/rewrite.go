package veao

import (
	"fmt"

	"medmaker/internal/msl"
)

// rewrite applies the unifier: the datamerge rule's head is the query head
// with mappings and definitions applied, and its tail is the query tail
// with the expanded conjunct replaced by the specification rule's tail
// (substituted), with pushed conditions attached to the rest variables
// they were pushed into.
func (u *unifier) rewrite(q *msl.Rule, idx int, target *msl.PatternConjunct,
	sr *msl.Rule, head *msl.ObjectPattern) (*msl.Rule, error) {

	// The object variable of the expanded conjunct is defined as the
	// instantiated head structure.
	if target.ObjVar != nil {
		if !u.bind(target.ObjVar.Name, head) {
			return nil, fmt.Errorf("veao: object variable %s cannot be defined consistently", target.ObjVar.Name)
		}
	}

	out := &msl.Rule{}
	appendConjunct := func(c msl.Conjunct) error {
		ac, err := u.applyConjunct(c)
		if err != nil {
			return err
		}
		out.Tail = append(out.Tail, ac)
		return nil
	}
	for i, c := range q.Tail {
		if i != idx {
			if err := appendConjunct(c); err != nil {
				return nil, err
			}
			continue
		}
		for _, sc := range sr.Tail {
			if err := appendConjunct(sc); err != nil {
				return nil, err
			}
		}
	}

	for _, h := range q.Head {
		switch t := h.(type) {
		case *msl.Var:
			def, err := u.applyTerm(t, nil)
			if err != nil {
				return nil, err
			}
			switch d := def.(type) {
			case *msl.ObjectPattern:
				out.Head = append(out.Head, d)
			case *msl.Var:
				// No definition from this expansion step: legal when a
				// remaining tail conjunct binds the variable as its
				// object variable (a pass-through source conjunct, or a
				// mediator conjunct a later expansion step will define).
				if tailBindsObjVar(out.Tail, d.Name) {
					out.Head = append(out.Head, d)
					continue
				}
				return nil, fmt.Errorf("veao: query head variable %s has no definition; bind it with %s:<…> in the query tail", t.Name, t.Name)
			default:
				return nil, fmt.Errorf("veao: query head variable %s resolved to non-object %s", t.Name, def)
			}
		case *msl.ObjectPattern:
			ap, err := u.applyTerm(t, nil)
			if err != nil {
				return nil, err
			}
			out.Head = append(out.Head, ap.(*msl.ObjectPattern))
		}
	}

	if err := u.attachPushedConds(out); err != nil {
		return nil, err
	}
	return out, nil
}

// tailBindsObjVar reports whether some pattern conjunct binds name as its
// object variable.
func tailBindsObjVar(tail []msl.Conjunct, name string) bool {
	for _, c := range tail {
		if pc, ok := c.(*msl.PatternConjunct); ok && pc.ObjVar != nil && pc.ObjVar.Name == name {
			return true
		}
	}
	return false
}

// attachPushedConds attaches each pushed condition set to the tail
// position where its target variable is rest-bound, implementing mappings
// such as Rest1 ↦ {<year 3>} (Section 3.3: "mappings of this form cause
// the attachment of the conditions specified inside the {} to the
// specified variable", merging with any conditions already there).
func (u *unifier) attachPushedConds(r *msl.Rule) error {
	for name, conds := range u.restConds {
		// The target may itself have been mapped to another variable.
		tgt := name
		if v, ok := u.resolve(&msl.Var{Name: name}).(*msl.Var); ok {
			tgt = v.Name
		}
		applied := make([]*msl.ObjectPattern, 0, len(conds))
		for _, c := range conds {
			ac, err := u.applyTerm(c, nil)
			if err != nil {
				return err
			}
			applied = append(applied, ac.(*msl.ObjectPattern))
		}
		if !attachToRule(r, tgt, applied) {
			return fmt.Errorf("veao: condition %v was pushed into %s, which is not rest-bound in the rule tail; write the specification head with rest variables bound by '|' in the tail", applied, tgt)
		}
	}
	return nil
}

func attachToRule(r *msl.Rule, varName string, conds []*msl.ObjectPattern) bool {
	for _, c := range r.Tail {
		pc, ok := c.(*msl.PatternConjunct)
		if !ok {
			continue
		}
		if attachToTerm(pc.Pattern, varName, conds) {
			return true
		}
	}
	return false
}

func attachToTerm(t msl.Term, varName string, conds []*msl.ObjectPattern) bool {
	switch x := t.(type) {
	case *msl.ObjectPattern:
		if x.Value != nil {
			return attachToTerm(x.Value, varName, conds)
		}
	case *msl.SetPattern:
		if x.Rest != nil && x.Rest.Name == varName {
			x.RestConstraints = append(x.RestConstraints, conds...)
			return true
		}
		for _, el := range x.Elems {
			if attachToTerm(el, varName, conds) {
				return true
			}
		}
	}
	return false
}

// applyConjunct copies a conjunct with the substitution applied.
func (u *unifier) applyConjunct(c msl.Conjunct) (msl.Conjunct, error) {
	switch t := c.(type) {
	case *msl.PatternConjunct:
		out := &msl.PatternConjunct{Source: t.Source, Negated: t.Negated}
		if t.ObjVar != nil {
			ov, err := u.applyTerm(t.ObjVar, nil)
			if err != nil {
				return nil, err
			}
			v, ok := ov.(*msl.Var)
			if !ok {
				// The object variable was defined away; drop the binding
				// but keep the structural condition.
				v = nil
			}
			out.ObjVar = v
		}
		ap, err := u.applyTerm(t.Pattern, nil)
		if err != nil {
			return nil, err
		}
		out.Pattern = ap.(*msl.ObjectPattern)
		return out, nil
	case *msl.PredicateConjunct:
		out := &msl.PredicateConjunct{Name: t.Name, Args: make([]msl.Term, len(t.Args))}
		for i, a := range t.Args {
			aa, err := u.applyTerm(a, nil)
			if err != nil {
				return nil, err
			}
			out.Args[i] = aa
		}
		return out, nil
	}
	return c, nil
}

// applyTerm deep-copies a term with the substitution applied recursively.
// visiting guards against substitution cycles.
func (u *unifier) applyTerm(t msl.Term, visiting map[string]bool) (msl.Term, error) {
	switch x := t.(type) {
	case nil:
		return nil, nil
	case *msl.Const, *msl.Param:
		return x, nil
	case *msl.Var:
		bound, ok := u.subst[x.Name]
		if !ok {
			return x, nil
		}
		if visiting[x.Name] {
			return nil, fmt.Errorf("veao: cyclic substitution through %s", x.Name)
		}
		if visiting == nil {
			visiting = map[string]bool{}
		}
		visiting[x.Name] = true
		defer delete(visiting, x.Name)
		return u.applyTerm(bound, visiting)
	case *msl.Skolem:
		out := &msl.Skolem{Functor: x.Functor, Args: make([]msl.Term, len(x.Args))}
		for i, a := range x.Args {
			aa, err := u.applyTerm(a, visiting)
			if err != nil {
				return nil, err
			}
			out.Args[i] = aa
		}
		return out, nil
	case *msl.ObjectPattern:
		out := &msl.ObjectPattern{Wildcard: x.Wildcard, Type: x.Type}
		var err error
		if x.OID != nil {
			if out.OID, err = u.applyTerm(x.OID, visiting); err != nil {
				return nil, err
			}
		}
		if out.Label, err = u.applyTerm(x.Label, visiting); err != nil {
			return nil, err
		}
		if x.Value != nil {
			if out.Value, err = u.applyTerm(x.Value, visiting); err != nil {
				return nil, err
			}
		}
		return out, nil
	case *msl.SetPattern:
		out := &msl.SetPattern{}
		for _, el := range x.Elems {
			ae, err := u.applyTerm(el, visiting)
			if err != nil {
				return nil, err
			}
			// A variable element substituted by a set pattern splices its
			// elements (one-level flattening at the pattern level).
			if sp, isSet := ae.(*msl.SetPattern); isSet {
				out.Elems = append(out.Elems, sp.Elems...)
				if sp.Rest != nil {
					out.Elems = append(out.Elems, sp.Rest)
				}
				out.RestConstraints = append(out.RestConstraints, sp.RestConstraints...)
				continue
			}
			out.Elems = append(out.Elems, ae)
		}
		if x.Rest != nil {
			ar, err := u.applyTerm(x.Rest, visiting)
			if err != nil {
				return nil, err
			}
			switch rv := ar.(type) {
			case *msl.Var:
				out.Rest = rv
			case *msl.SetPattern:
				// The rest variable was defined as a set structure:
				// splice it as elements.
				out.Elems = append(out.Elems, rv.Elems...)
				if rv.Rest != nil {
					out.Rest = rv.Rest
				}
				out.RestConstraints = append(out.RestConstraints, rv.RestConstraints...)
			default:
				return nil, fmt.Errorf("veao: rest variable %s substituted by non-set %s", x.Rest.Name, ar)
			}
		}
		for _, rc := range x.RestConstraints {
			arc, err := u.applyTerm(rc, visiting)
			if err != nil {
				return nil, err
			}
			out.RestConstraints = append(out.RestConstraints, arc.(*msl.ObjectPattern))
		}
		return out, nil
	}
	return nil, fmt.Errorf("veao: unsupported term %T", t)
}
