package veao

// Pattern containment for materialized-view answerability. The expansion
// machinery in unify.go asks "which rule heads can produce an object the
// query wants" — a satisfiability question. Serving a query from a stored
// view extent needs the opposite, universal direction: is every object
// the query could match guaranteed to be in the extent? Covers answers
// that one-way subsumption question, conservatively: a false answer only
// costs a live expansion, a wrong true answer would lose result objects,
// so every case this code does not understand returns false.

import (
	"fmt"

	"medmaker/internal/msl"
	"medmaker/internal/oem"
)

// Covers reports whether the view pattern subsumes the query pattern:
// every object that matches q also matches view. When it holds, a query
// conjunct using q can be answered from an extent materialized with view,
// because the extent holds all of q's candidates.
//
// The check is conservative (sound but incomplete): constants must match
// exactly, view variables may bind any query term but repeated view
// variables require provably equal query terms, view set elements must
// each subsume a distinct query set element, and constructs whose
// semantics are not covered here — wildcard queries against non-wildcard
// views, parameters, skolems, rest constraints on the view side — fail
// the check and fall back to live expansion.
func Covers(view, q *msl.ObjectPattern) bool {
	if view == nil || q == nil {
		return false
	}
	c := &containment{bindings: map[string]string{}}
	return c.pattern(view, q)
}

// containment tracks view-variable bindings during one Covers check. A
// view variable imposes no constraint on its own, but its repetition
// does: view {<a X> <b X>} requires equal a- and b-values, which a query
// {<a Y> <b Z>} does not guarantee. Bindings map view variable names to
// keys identifying the query term they were matched with.
type containment struct {
	bindings map[string]string
	fresh    int
}

// snapshot and restore support backtracking in the set-element search.
func (c *containment) snapshot() map[string]string {
	saved := make(map[string]string, len(c.bindings))
	for k, v := range c.bindings {
		saved[k] = v
	}
	return saved
}

func (c *containment) restore(saved map[string]string) { c.bindings = saved }

// bind records that the view variable name was matched with the query
// term identified by key; a repeated view variable must see the same key.
func (c *containment) bind(name, key string) bool {
	if prev, ok := c.bindings[name]; ok {
		return prev == key
	}
	c.bindings[name] = key
	return true
}

// bindTerm binds a view variable against a query term. Query variables
// and constants have stable identities; anything else (including an
// absent field, which matches arbitrary values) gets a fresh key, so a
// repeated view variable over such terms conservatively fails.
func (c *containment) bindTerm(name string, qt msl.Term) bool {
	key, ok := termKey(qt)
	if !ok {
		c.fresh++
		key = fmt.Sprintf("\x00fresh%d", c.fresh)
	}
	return c.bind(name, key)
}

// termKey identifies a query term for binding consistency: two positions
// holding the same query variable are guaranteed equal, as are two equal
// constants.
func termKey(t msl.Term) (string, bool) {
	switch x := t.(type) {
	case *msl.Var:
		return "var:" + x.Name, true
	case *msl.Const:
		if x.Value == nil {
			return "", false
		}
		return fmt.Sprintf("const:%T:%s", x.Value, x.Value.String()), true
	default:
		return "", false
	}
}

func constEqual(a, b *msl.Const) bool {
	ka, oka := termKey(a)
	kb, okb := termKey(b)
	return oka && okb && ka == kb
}

// pattern is the recursive subsumption check on object patterns.
func (c *containment) pattern(view, q *msl.ObjectPattern) bool {
	// A wildcard query matches objects at any depth; a non-wildcard view
	// only describes top-level objects, so it cannot cover them.
	if q.Wildcard && !view.Wildcard {
		return false
	}
	if !c.field(view.OID, q.OID) {
		return false
	}
	if !c.field(view.Label, q.Label) {
		return false
	}
	if view.Type != nil && !c.typeImplied(*view.Type, q) {
		return false
	}
	switch v := view.Value.(type) {
	case nil:
		return true
	case *msl.Var:
		return c.bindTerm(v.Name, q.Value)
	case *msl.Const:
		qc, ok := q.Value.(*msl.Const)
		return ok && constEqual(v, qc)
	case *msl.SetPattern:
		qs, ok := q.Value.(*msl.SetPattern)
		return ok && c.set(v, qs)
	default:
		return false // Param, Skolem: not a view-head construct we serve
	}
}

// field checks one oid/label position: an absent or variable view field
// imposes nothing beyond binding consistency; a constant view field
// requires the identical query constant.
func (c *containment) field(vf, qf msl.Term) bool {
	switch v := vf.(type) {
	case nil:
		return true
	case *msl.Var:
		return c.bindTerm(v.Name, qf)
	case *msl.Const:
		qc, ok := qf.(*msl.Const)
		return ok && constEqual(v, qc)
	default:
		return false
	}
}

// typeImplied reports whether every q-match necessarily has the view's
// declared kind: q declares the same kind, or q's value syntax forces it.
func (c *containment) typeImplied(kind oem.Kind, q *msl.ObjectPattern) bool {
	if q.Type != nil {
		return *q.Type == kind
	}
	switch qv := q.Value.(type) {
	case *msl.Const:
		return qv.Value != nil && qv.Value.Kind() == kind
	case *msl.SetPattern:
		return kind == oem.KindSet
	default:
		return false
	}
}

// set checks subsumption of set patterns. The view's elements are
// requirements on matched objects; each must be implied by a distinct
// query element (query elements guarantee distinct witness subobjects,
// so an injective mapping carries the guarantee over). The query side
// may demand more — extra elements, a rest variable, rest constraints —
// without affecting coverage. View-side rest constraints restrict the
// match and are not analyzed: conservative false.
func (c *containment) set(view, q *msl.SetPattern) bool {
	if len(view.RestConstraints) > 0 {
		return false
	}
	if view.Rest != nil && !c.bindTerm(view.Rest.Name, nil) {
		return false
	}
	used := make([]bool, len(q.Elems))
	return c.mapElems(view.Elems, q.Elems, used)
}

// mapElems searches for an injective mapping of view elements onto query
// elements with each view element subsuming its image, backtracking over
// the choice of image (patterns are small, so the search is cheap).
func (c *containment) mapElems(velems, qelems []msl.Term, used []bool) bool {
	if len(velems) == 0 {
		return true
	}
	vp, ok := velems[0].(*msl.ObjectPattern)
	if !ok {
		return false // element variables: semantics too loose to cover
	}
	for i, qe := range qelems {
		if used[i] {
			continue
		}
		qp, isPat := qe.(*msl.ObjectPattern)
		if !isPat {
			continue
		}
		saved := c.snapshot()
		if c.pattern(vp, qp) {
			used[i] = true
			if c.mapElems(velems[1:], qelems, used) {
				return true
			}
			used[i] = false
		}
		c.restore(saved)
	}
	return false
}
