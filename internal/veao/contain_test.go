package veao

import (
	"testing"

	"medmaker/internal/msl"
)

// pat extracts the object pattern from a one-conjunct query text.
func pat(t *testing.T, text string) *msl.ObjectPattern {
	t.Helper()
	r, err := msl.ParseQuery("X :- X:" + text + "@src.")
	if err != nil {
		t.Fatalf("parse %s: %v", text, err)
	}
	return r.Tail[0].(*msl.PatternConjunct).Pattern
}

func TestCovers(t *testing.T) {
	cases := []struct {
		view, q string
		want    bool
	}{
		// The bread-and-butter case: a bare view head covers every
		// condition query on that label.
		{`<staff S>`, `<staff {<name 'Joe Chung'>}>`, true},
		{`<staff S>`, `<staff S>`, true},
		{`<staff S>`, `<staff {<name N> <year 3>}>`, true},
		// Different label: not covered.
		{`<staff S>`, `<person {<name N>}>`, false},
		// Variable label on the view covers any label.
		{`<L S>`, `<staff {<name N>}>`, true},
		// Variable label on the query is broader than a constant view.
		{`<staff S>`, `<L S>`, false},
		// A view with an element requirement covers queries that demand
		// at least as much.
		{`<staff {<name N>}>`, `<staff {<name 'Joe'>}>`, true},
		{`<staff {<name N>}>`, `<staff {<name N> <year Y>}>`, true},
		{`<staff {<name N>}>`, `<staff {<year 3>}>`, false},
		{`<staff {<name 'Joe'>}>`, `<staff {<name 'Ann'>}>`, false},
		{`<staff {<name 'Joe'>}>`, `<staff {<name N>}>`, false},
		// Queries with rest variables and rest constraints are still
		// covered by a bare view (they only restrict further).
		{`<staff S>`, `<staff {<name N> | R}>`, true},
		{`<staff {<name N>}>`, `<staff {<name N> | R}>`, true},
		// View-side rest variables impose nothing.
		{`<staff {<name N> | R}>`, `<staff {<name 'Joe'>}>`, true},
		// Repeated view variables demand equality the query may not give.
		{`<pair {<a X> <b X>}>`, `<pair {<a Y> <b Y>}>`, true},
		{`<pair {<a X> <b X>}>`, `<pair {<a Y> <b Z>}>`, false},
		{`<pair {<a X> <b X>}>`, `<pair {<a 1> <b 1>}>`, true},
		{`<pair {<a X> <b X>}>`, `<pair {<a 1> <b 2>}>`, false},
		// Two view elements need two distinct query elements.
		{`<p {<a X> <a Y>}>`, `<p {<a 1> <a 2>}>`, true},
		{`<p {<a X> <a Y>}>`, `<p {<a 1>}>`, false},
		// Nested structure recurses.
		{`<staff {<addr {<city C>}>}>`, `<staff {<addr {<city 'SF'> <zip Z>}>}>`, true},
		{`<staff {<addr {<city C>}>}>`, `<staff {<addr {<zip Z>}>}>`, false},
		// Wildcard queries search any depth; a top-level view cannot
		// answer them.
		{`<staff S>`, `<%staff {<name N>}>`, false},
		// Type fields must be implied, not assumed.
		{`<staff set V>`, `<staff {<name N>}>`, true},
		{`<staff set V>`, `<staff V>`, false},
		{`<year int Y>`, `<year 3>`, true},
		{`<year int Y>`, `<year 'three'>`, false},
	}
	for _, tc := range cases {
		view, q := pat(t, tc.view), pat(t, tc.q)
		if got := Covers(view, q); got != tc.want {
			t.Errorf("Covers(%s, %s) = %v, want %v", tc.view, tc.q, got, tc.want)
		}
	}
}

// TestCoversConservativeOnViewRestConstraints: rest constraints on the
// view restrict its extent in ways this check does not model, so they
// must fail closed.
func TestCoversConservativeOnViewRestConstraints(t *testing.T) {
	view := pat(t, `<staff {<name N> | R:{<year Y>}}>`)
	q := pat(t, `<staff {<name 'Joe'> <year 3>}>`)
	if Covers(view, q) {
		t.Fatal("view with rest constraints must not cover")
	}
}
