package veao

import (
	"strings"
	"testing"

	"medmaker/internal/msl"
)

const specMS1 = `
<cs_person {<name N> <rel R> Rest1 Rest2}> :-
    <person {<name N> <dept 'CS'> <relation R> | Rest1}>@whois
    AND <R {<first_name FN> <last_name LN> | Rest2}>@cs
    AND decomp(N, LN, FN).

decomp(bound, free, free) by name_to_lnfn.
decomp(free, bound, bound) by lnfn_to_name.
`

func expander(t *testing.T, spec string, opts Options) *Expander {
	t.Helper()
	prog, err := msl.ParseProgram(spec)
	if err != nil {
		t.Fatal(err)
	}
	return NewExpander(prog, "med", opts)
}

func expand(t *testing.T, e *Expander, query string) *Program {
	t.Helper()
	q, err := msl.ParseQuery(query)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := e.Expand(q)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestExpandQ1ToR2 reproduces Section 3.1: query Q1 against MS1 yields the
// single datamerge rule R2 via unifier θ1 (N ↦ 'Joe Chung', JC ⇒ head).
func TestExpandQ1ToR2(t *testing.T) {
	e := expander(t, specMS1, Options{})
	prog := expand(t, e, `JC :- JC:<cs_person {<name 'Joe Chung'>}>@med.`)
	if len(prog.Rules) != 1 {
		t.Fatalf("Q1 expanded to %d rules, want 1 (R2):\n%s", len(prog.Rules), prog)
	}
	r2 := prog.Rules[0]

	// Head: the definition of JC — the substituted rule head.
	if len(r2.Head) != 1 {
		t.Fatalf("R2 head: %v", r2.Head)
	}
	head, ok := r2.Head[0].(*msl.ObjectPattern)
	if !ok || head.LabelName() != "cs_person" {
		t.Fatalf("R2 head: %s", r2.Head[0])
	}
	hs := head.Value.(*msl.SetPattern)
	name := hs.Elems[0].(*msl.ObjectPattern)
	if c, isConst := name.Value.(*msl.Const); !isConst || c.String() != "'Joe Chung'" {
		t.Fatalf("N not substituted in head: %s", head)
	}

	// Tail: whois pattern with N substituted, cs pattern, decomp.
	if len(r2.Tail) != 3 {
		t.Fatalf("R2 tail has %d conjuncts:\n%s", len(r2.Tail), r2)
	}
	whois := r2.Tail[0].(*msl.PatternConjunct)
	if whois.Source != "whois" {
		t.Fatalf("first conjunct source %q", whois.Source)
	}
	ws := whois.Pattern.Value.(*msl.SetPattern)
	wname := ws.Elems[0].(*msl.ObjectPattern)
	if c, isConst := wname.Value.(*msl.Const); !isConst || c.String() != "'Joe Chung'" {
		t.Fatalf("N not substituted in whois tail: %s", whois.Pattern)
	}
	cs := r2.Tail[1].(*msl.PatternConjunct)
	if cs.Source != "cs" {
		t.Fatalf("second conjunct source %q", cs.Source)
	}
	if _, isVar := cs.Pattern.Label.(*msl.Var); !isVar {
		t.Fatalf("cs label should remain a variable: %s", cs.Pattern)
	}
	if _, isPred := r2.Tail[2].(*msl.PredicateConjunct); !isPred {
		t.Fatalf("third conjunct should be decomp: %s", r2.Tail[2])
	}
}

// TestExpandYearPushdown reproduces Section 3.3: the <year 3> condition
// can be pushed either into Rest1 or Rest2, yielding two rules (τ1, τ2).
func TestExpandYearPushdown(t *testing.T) {
	e := expander(t, specMS1, Options{})
	prog := expand(t, e, `S :- S:<cs_person {<year 3>}>@med.`)
	if len(prog.Rules) != 2 {
		t.Fatalf("year query expanded to %d rules, want 2 (τ1, τ2):\n%s", len(prog.Rules), prog)
	}
	// One rule constrains the whois rest variable, the other the cs one.
	var gotWhois, gotCS bool
	for _, r := range prog.Rules {
		for _, c := range r.Tail {
			pc, ok := c.(*msl.PatternConjunct)
			if !ok {
				continue
			}
			sp, ok := pc.Pattern.Value.(*msl.SetPattern)
			if !ok || len(sp.RestConstraints) == 0 {
				continue
			}
			if len(sp.RestConstraints) != 1 || sp.RestConstraints[0].LabelName() != "year" {
				t.Fatalf("unexpected rest constraints: %s", pc.Pattern)
			}
			switch pc.Source {
			case "whois":
				gotWhois = true
			case "cs":
				gotCS = true
			}
		}
	}
	if !gotWhois || !gotCS {
		t.Fatalf("push choices missing (whois=%v cs=%v):\n%s", gotWhois, gotCS, prog)
	}
}

// TestExhaustiveKeepsRestPushes checks the Exhaustive option: Q1's name
// condition additionally pushes into Rest1 and Rest2.
func TestExhaustiveKeepsRestPushes(t *testing.T) {
	e := expander(t, specMS1, Options{Exhaustive: true})
	prog := expand(t, e, `JC :- JC:<cs_person {<name 'Joe Chung'>}>@med.`)
	if len(prog.Rules) != 3 {
		t.Fatalf("exhaustive Q1 expanded to %d rules, want 3:\n%s", len(prog.Rules), prog)
	}
}

func TestExpandMultipleSpecRules(t *testing.T) {
	// Persons from either source individually (the union view the paper
	// mentions as the fix for med's both-sources limitation).
	spec := `
	<any_person {<name N>}> :- <person {<name N>}>@whois.
	<any_person {<name N>}> :- <R {<first_name FN> <last_name LN>}>@cs AND decomp(N, LN, FN).
	decomp(free, bound, bound) by lnfn_to_name.
	`
	e := expander(t, spec, Options{})
	prog := expand(t, e, `P :- P:<any_person {<name N>}>@med.`)
	if len(prog.Rules) != 2 {
		t.Fatalf("union view expanded to %d rules, want 2:\n%s", len(prog.Rules), prog)
	}
	if len(prog.Decls) != 1 {
		t.Fatalf("declarations not carried: %v", prog.Decls)
	}
}

func TestExpandNonMatchingLabel(t *testing.T) {
	e := expander(t, specMS1, Options{})
	prog := expand(t, e, `X :- X:<professor {<name N>}>@med.`)
	if len(prog.Rules) != 0 {
		t.Fatalf("non-matching label produced %d rules", len(prog.Rules))
	}
}

func TestExpandConditionOnExplicitElementMismatch(t *testing.T) {
	e := expander(t, specMS1, Options{})
	// rel is an explicit element bound to variable R: the condition binds
	// R to 'employee' and, pruned, produces exactly one rule where the cs
	// pattern's label became the constant.
	prog := expand(t, e, `X :- X:<cs_person {<rel 'employee'>}>@med.`)
	if len(prog.Rules) != 1 {
		t.Fatalf("expanded to %d rules:\n%s", len(prog.Rules), prog)
	}
	cs := prog.Rules[0].Tail[1].(*msl.PatternConjunct)
	if cs.Pattern.LabelName() != "employee" {
		t.Fatalf("R not substituted into the cs label: %s", cs.Pattern)
	}
}

func TestExpandThroughTwoMediators(t *testing.T) {
	// med's view is defined over another view in the same spec: the
	// inner reference has no @source, so it resolves against med itself.
	spec := `
	<vip {<name N>}> :- <staff {<name N> <level 'senior'>}>.
	<staff {<name N> <level L>}> :- <person {<name N> <level L>}>@hr.
	`
	e := expander(t, spec, Options{})
	prog := expand(t, e, `X :- X:<vip {<name N>}>@med.`)
	if len(prog.Rules) != 1 {
		t.Fatalf("nested view expanded to %d rules:\n%s", len(prog.Rules), prog)
	}
	pc := prog.Rules[0].Tail[0].(*msl.PatternConjunct)
	if pc.Source != "hr" {
		t.Fatalf("inner view not expanded: %s", prog)
	}
	// The senior condition reached the source pattern.
	if !strings.Contains(prog.Rules[0].String(), "'senior'") {
		t.Fatalf("level condition lost:\n%s", prog)
	}
}

func TestRecursiveViewDepthLimit(t *testing.T) {
	spec := `<loop {X}> :- <loop {X}>.`
	e := expander(t, spec, Options{MaxDepth: 5})
	q := msl.MustParseRule(`X :- X:<loop {Y}>@med.`)
	if _, err := e.Expand(q); err == nil || !strings.Contains(err.Error(), "depth") {
		t.Fatalf("recursive view error: %v", err)
	}
}

func TestUnsupportedQueryForms(t *testing.T) {
	e := expander(t, specMS1, Options{})
	cases := []string{
		`X :- X:<%cs_person>@med.`,                                     // wildcard on mediator
		`X :- X:<I cs_person {<name N>}>@med.`,                         // oid variable on mediator
		`X :- X:<cs_person {<name N>}>@med AND Y:<cs_person {Z}>@med.`, // head var Y fine but Z elem var ok... covered below
	}
	for _, src := range cases[:2] {
		q := msl.MustParseRule(src)
		if _, err := e.Expand(q); err == nil {
			t.Errorf("query %q expanded without error", src)
		}
	}
}

func TestUndefinedHeadVariable(t *testing.T) {
	e := expander(t, specMS1, Options{})
	q := msl.MustParseRule(`Z :- X:<cs_person {<name N>}>@med.`)
	if _, err := e.Expand(q); err == nil {
		t.Fatal("head variable without definition accepted")
	}
}

func TestVariableValuedHeadRejected(t *testing.T) {
	spec := `<wrapped V> :- <person V>@src.`
	e := expander(t, spec, Options{})
	q := msl.MustParseRule(`X :- X:<wrapped {<name N>}>@med.`)
	if _, err := e.Expand(q); err == nil {
		t.Fatal("set condition against variable-valued head accepted")
	}
	// But a value-variable query against it is fine.
	q2 := msl.MustParseRule(`<out V> :- <wrapped V>@med.`)
	prog, err := e.Expand(q2)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 1 {
		t.Fatalf("expanded to %d rules", len(prog.Rules))
	}
}

func TestAtomicValueConditions(t *testing.T) {
	spec := `<temp {<city C> <degrees D>}> :- <reading {<city C> <degrees D>}>@ws.`
	e := expander(t, spec, Options{})
	// Constant condition on an atomic head element.
	prog := expand(t, e, `X :- X:<temp {<city 'Palo Alto'>}>@med.`)
	if len(prog.Rules) != 1 {
		t.Fatalf("expanded to %d rules:\n%s", len(prog.Rules), prog)
	}
	if !strings.Contains(prog.Rules[0].String(), "'Palo Alto'") {
		t.Fatalf("condition not pushed:\n%s", prog)
	}
	// Contradictory constant conditions on the same element yield no rule
	// (two 'city' conditions cannot both bind C, and there is no rest
	// variable to push into).
	prog2 := expand(t, e, `X :- X:<temp {<city 'A'> <city 'B'>}>@med.`)
	if len(prog2.Rules) != 0 {
		t.Fatalf("contradictory conditions produced rules:\n%s", prog2)
	}
}

func TestTypeConditions(t *testing.T) {
	spec := `<rec {<year Y>}> :- <entry {<year Y>}>@src.`
	e := expander(t, spec, Options{})
	// Type condition on the top-level pattern: mediator objects are sets.
	if _, err := e.Expand(msl.MustParseRule(`X :- X:<rec set {<year Y>}>@med.`)); err != nil {
		t.Fatalf("set-type condition rejected: %v", err)
	}
	q := msl.MustParseRule(`X :- X:<rec string V>@med.`)
	if _, err := e.Expand(q); err == nil {
		t.Fatal("string-type condition against a set-valued view accepted")
	}
}

func TestQueryPredicateCarried(t *testing.T) {
	e := expander(t, specMS1, Options{})
	prog := expand(t, e, `X :- X:<cs_person {<name N>}>@med AND lt(N, 'M').`)
	if len(prog.Rules) != 1 {
		t.Fatalf("expanded to %d rules", len(prog.Rules))
	}
	last := prog.Rules[0].Tail[len(prog.Rules[0].Tail)-1]
	pred, ok := last.(*msl.PredicateConjunct)
	if !ok || pred.Name != "lt" {
		t.Fatalf("query predicate lost: %s", prog)
	}
}

func TestOtherSourceConjunctPassesThrough(t *testing.T) {
	e := expander(t, specMS1, Options{})
	prog := expand(t, e, `X :- X:<cs_person {<name N>}>@med AND <log {<name N>}>@audit.`)
	if len(prog.Rules) != 1 {
		t.Fatalf("expanded to %d rules", len(prog.Rules))
	}
	found := false
	for _, c := range prog.Rules[0].Tail {
		if pc, ok := c.(*msl.PatternConjunct); ok && pc.Source == "audit" {
			found = true
		}
	}
	if !found {
		t.Fatalf("audit conjunct lost:\n%s", prog)
	}
}

func TestQueryRestVariableDefinition(t *testing.T) {
	e := expander(t, specMS1, Options{})
	prog := expand(t, e, `<out {Everything}> :- <cs_person {<name 'Joe Chung'> | Everything}>@med.`)
	if len(prog.Rules) != 1 {
		t.Fatalf("expanded to %d rules:\n%s", len(prog.Rules), prog)
	}
	// Everything was defined as the remaining head structure; it must not
	// remain as a bare unbound variable in the rewritten head.
	head := prog.Rules[0].Head[0].(*msl.ObjectPattern)
	hs := head.Value.(*msl.SetPattern)
	// rel element + Rest1 + Rest2 → at least 3 parts spliced in.
	if len(hs.Elems) < 3 {
		t.Fatalf("query rest not spliced: %s", head)
	}
}

func TestQueryElemVariableAliases(t *testing.T) {
	e := expander(t, specMS1, Options{})
	// A bare variable element can alias any head element or set variable;
	// with 2 explicit elements and 2 set variables, 4 rules result.
	prog := expand(t, e, `<out {E}> :- <cs_person {E}>@med.`)
	if len(prog.Rules) != 4 {
		t.Fatalf("elem-variable query expanded to %d rules, want 4:\n%s", len(prog.Rules), prog)
	}
}

func TestConstOIDQueryYieldsNothing(t *testing.T) {
	e := expander(t, specMS1, Options{})
	prog := expand(t, e, `X :- X:<&abc cs_person {<name N>}>@med.`)
	if len(prog.Rules) != 0 {
		t.Fatalf("constant-oid query produced rules:\n%s", prog)
	}
}

func TestSpecHeadValidation(t *testing.T) {
	// Multi-pattern heads in spec rules are rejected during expansion.
	spec := `<a {X}> <b {X}> :- <src {X}>@s.`
	e := expander(t, spec, Options{})
	q := msl.MustParseRule(`P :- P:<a {Y}>@med.`)
	if _, err := e.Expand(q); err == nil {
		t.Fatal("multi-head spec rule accepted")
	}
}
