package veao

import (
	"fmt"

	"medmaker/internal/msl"
	"medmaker/internal/oem"
)

// unifier is one way of matching a query condition pattern against a
// specification rule head: variable mappings plus conditions pushed into
// set-bound head variables. Definitions (objvar ⇒ head structure) are
// recorded as ordinary mappings to the head's object pattern.
type unifier struct {
	subst     map[string]msl.Term
	restConds map[string][]*msl.ObjectPattern
}

func newUnifier() *unifier {
	return &unifier{subst: map[string]msl.Term{}, restConds: map[string][]*msl.ObjectPattern{}}
}

func (u *unifier) clone() *unifier {
	c := newUnifier()
	for k, v := range u.subst {
		c.subst[k] = v
	}
	for k, v := range u.restConds {
		c.restConds[k] = append([]*msl.ObjectPattern(nil), v...)
	}
	return c
}

// resolve follows variable-to-variable mappings to a representative term.
func (u *unifier) resolve(t msl.Term) msl.Term {
	for {
		v, ok := t.(*msl.Var)
		if !ok {
			return t
		}
		next, bound := u.subst[v.Name]
		if !bound {
			return t
		}
		t = next
	}
}

// bind records var ↦ term, unifying with any existing binding.
func (u *unifier) bind(name string, t msl.Term) bool {
	cur, bound := u.subst[name]
	if !bound {
		if v, isVar := t.(*msl.Var); isVar && v.Name == name {
			return true
		}
		u.subst[name] = t
		return true
	}
	return u.unifySimple(cur, t)
}

// unifySimple unifies two terms restricted to Var/Const (labels, oids,
// atomic values). Other combinations fail.
func (u *unifier) unifySimple(a, b msl.Term) bool {
	a, b = u.resolve(a), u.resolve(b)
	if av, ok := a.(*msl.Var); ok {
		return u.bind(av.Name, b)
	}
	if bv, ok := b.(*msl.Var); ok {
		return u.bind(bv.Name, a)
	}
	ac, aok := a.(*msl.Const)
	bc, bok := b.(*msl.Const)
	return aok && bok && ac.Value.Equal(bc.Value)
}

// unifyCondition matches the query condition pattern qp against the rule
// head pattern hp, returning every unifier. The transformed query
// condition is contained in the transformed head under each unifier.
func (e *Expander) unifyCondition(qp, hp *msl.ObjectPattern) ([]*unifier, error) {
	if qp.Wildcard {
		return nil, fmt.Errorf("veao: wildcard patterns on virtual mediator objects are not supported; query the sources directly")
	}
	if qp.OID != nil {
		if _, isConst := qp.OID.(*msl.Const); isConst && hp.OID == nil {
			// Constant oid against generated ids never matches statically.
			return nil, nil
		}
		return nil, fmt.Errorf("veao: oid conditions on virtual mediator objects are not supported")
	}
	u := newUnifier()
	if !u.unifySimple(qp.Label, hp.Label) {
		return nil, nil
	}
	if err := checkType(qp, hp); err != nil {
		return nil, err
	}
	return e.unifyValue(u, qp.Value, hp.Value)
}

// checkType verifies a query type constraint against what the head
// statically determines.
func checkType(qp, hp *msl.ObjectPattern) error {
	if qp.Type == nil {
		return nil
	}
	var headKind oem.Kind
	switch hv := hp.Value.(type) {
	case nil:
		headKind = oem.KindSet
	case *msl.SetPattern:
		headKind = oem.KindSet
	case *msl.Const:
		headKind = hv.Value.Kind()
	case *msl.Var:
		if hp.Type != nil {
			headKind = *hp.Type
			break
		}
		return fmt.Errorf("veao: type condition %s cannot be checked against variable-valued head %s", qp, hp)
	default:
		return fmt.Errorf("veao: unsupported head value %s", hp.Value)
	}
	if headKind != *qp.Type {
		return fmt.Errorf("veao: query requires type %s but view objects %s have type %s", *qp.Type, hp, headKind)
	}
	return nil
}

// unifyValue unifies the value fields, possibly producing several
// unifiers (set-element push choices).
func (e *Expander) unifyValue(u *unifier, qv, hv msl.Term) ([]*unifier, error) {
	switch q := qv.(type) {
	case nil:
		return []*unifier{u}, nil
	case *msl.Const:
		switch h := hv.(type) {
		case nil, *msl.SetPattern:
			return nil, nil // set-valued head never equals an atom
		case *msl.Const:
			if h.Value.Equal(q.Value) {
				return []*unifier{u}, nil
			}
			return nil, nil
		case *msl.Var:
			if u.bind(h.Name, q) {
				return []*unifier{u}, nil
			}
			return nil, nil
		}
	case *msl.Var:
		switch h := hv.(type) {
		case nil:
			if u.bind(q.Name, &msl.SetPattern{}) {
				return []*unifier{u}, nil
			}
			return nil, nil
		case *msl.Const, *msl.Var:
			if u.unifySimple(q, h) {
				return []*unifier{u}, nil
			}
			return nil, nil
		case *msl.SetPattern:
			if u.bind(q.Name, h) {
				return []*unifier{u}, nil
			}
			return nil, nil
		}
	case *msl.SetPattern:
		switch h := hv.(type) {
		case *msl.SetPattern:
			return e.unifySets(u, q, h)
		case *msl.Var:
			return nil, fmt.Errorf("veao: condition %s cannot be matched against variable-valued head; make the rule head structural", qv)
		default:
			return nil, nil // atomic head never matches a set condition
		}
	case *msl.Param:
		return nil, fmt.Errorf("veao: unsubstituted parameter %s in query", qv)
	}
	return nil, fmt.Errorf("veao: unsupported query value term %s", qv)
}

// unifySets enumerates the ways the query's element conditions embed into
// the head's set pattern: each query element either unifies with a
// distinct explicit head element or is pushed into a set-bound head
// variable (a head variable element or the head's rest variable).
func (e *Expander) unifySets(u *unifier, qs, hs *msl.SetPattern) ([]*unifier, error) {
	// Collect the push targets once: head variable elements and rest.
	var pushTargets []string
	var explicit []*msl.ObjectPattern
	for _, el := range hs.Elems {
		switch t := el.(type) {
		case *msl.Var:
			pushTargets = append(pushTargets, t.Name)
		case *msl.ObjectPattern:
			explicit = append(explicit, t)
		}
	}
	if hs.Rest != nil {
		pushTargets = append(pushTargets, hs.Rest.Name)
	}

	// Query conditions to place: element patterns plus rest constraints
	// (both demand a matching member in the view object's set).
	var conds []*msl.ObjectPattern
	var elemVars []*msl.Var
	for _, el := range qs.Elems {
		switch t := el.(type) {
		case *msl.ObjectPattern:
			conds = append(conds, t)
		case *msl.Var:
			elemVars = append(elemVars, t)
		default:
			return nil, fmt.Errorf("veao: unsupported query set element %s", el)
		}
	}
	conds = append(conds, qs.RestConstraints...)

	var out []*unifier
	used := make([]bool, len(explicit))
	var place func(i int, u *unifier) error
	place = func(i int, u *unifier) error {
		if i == len(conds) {
			return e.placeElemVars(u, elemVars, explicit, pushTargets, qs, hs, used, &out)
		}
		qe := conds[i]
		matchedExplicitSameLabel := false
		for j, he := range explicit {
			if used[j] {
				continue
			}
			cu := u.clone()
			if !cu.unifySimple(qe.Label, he.Label) {
				continue
			}
			if err := checkType(qe, he); err != nil {
				continue // a type mismatch just rules this pairing out
			}
			subs, err := e.unifyValue(cu, qe.Value, he.Value)
			if err != nil {
				return err
			}
			if len(subs) > 0 && constLabelsEqual(qe, he) {
				matchedExplicitSameLabel = true
			}
			used[j] = true
			for _, su := range subs {
				if err := place(i+1, su); err != nil {
					used[j] = false
					return err
				}
			}
			used[j] = false
		}
		// Push choices, pruned when an explicit same-label element
		// already accounted for this condition (paper presentation).
		if matchedExplicitSameLabel && !e.opts.Exhaustive {
			return nil
		}
		for _, tgt := range pushTargets {
			cu := u.clone()
			cu.restConds[tgt] = append(cu.restConds[tgt], qe)
			if err := place(i+1, cu); err != nil {
				return err
			}
		}
		return nil
	}
	if err := place(0, u); err != nil {
		return nil, err
	}
	return out, nil
}

// placeElemVars binds the query's bare variable elements: each aliases an
// explicit head element or a set-bound head variable. It then finishes the
// unifier (query rest variable definition) and appends it to out.
func (e *Expander) placeElemVars(u *unifier, elemVars []*msl.Var, explicit []*msl.ObjectPattern,
	pushTargets []string, qs, hs *msl.SetPattern, used []bool, out *[]*unifier) error {
	if len(elemVars) == 0 {
		final := u.clone()
		if err := defineQueryRest(final, qs, hs, explicit, used); err != nil {
			return err
		}
		*out = append(*out, final)
		return nil
	}
	v, rest := elemVars[0], elemVars[1:]
	for j, he := range explicit {
		if used[j] {
			continue
		}
		cu := u.clone()
		if !cu.bind(v.Name, he) {
			continue
		}
		used[j] = true
		if err := e.placeElemVars(cu, rest, explicit, pushTargets, qs, hs, used, out); err != nil {
			used[j] = false
			return err
		}
		used[j] = false
	}
	for _, tgt := range pushTargets {
		cu := u.clone()
		if !cu.bind(v.Name, &msl.Var{Name: tgt}) {
			continue
		}
		if err := e.placeElemVars(cu, rest, explicit, pushTargets, qs, hs, used, out); err != nil {
			return err
		}
	}
	return nil
}

// defineQueryRest gives the query's rest variable a static definition: the
// unconsumed explicit head elements plus every set-bound head variable.
// (When a condition was pushed into a head variable, the matching member
// stays inside that variable's set, consistent with the run-time
// semantics of rest constraints.)
func defineQueryRest(u *unifier, qs, hs *msl.SetPattern, explicit []*msl.ObjectPattern, used []bool) error {
	if qs.Rest == nil {
		return nil
	}
	def := &msl.SetPattern{}
	for j, he := range explicit {
		if !used[j] {
			def.Elems = append(def.Elems, he)
		}
	}
	for _, el := range hs.Elems {
		if v, ok := el.(*msl.Var); ok {
			def.Elems = append(def.Elems, v)
		}
	}
	if hs.Rest != nil {
		def.Rest = hs.Rest
	}
	return boolErr(u.bind(qs.Rest.Name, def), "veao: query rest variable %s is already bound", qs.Rest.Name)
}

func boolErr(ok bool, format string, args ...any) error {
	if ok {
		return nil
	}
	return fmt.Errorf(format, args...)
}

func constLabelsEqual(a, b *msl.ObjectPattern) bool {
	al, bl := a.LabelName(), b.LabelName()
	return al != "" && al == bl
}
