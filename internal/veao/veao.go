// Package veao implements MedMaker's View Expander and Algebraic
// Optimizer (VE&AO), the first stage of the Mediator Specification
// Interpreter pipeline (Figure 2.5 of the paper).
//
// The VE&AO matches a client query against the mediator specification
// rules and rewrites it so that references to virtual mediator objects are
// replaced by references to source objects. The result is a logical
// datamerge program: a set of MSL rules mentioning only sources.
//
// Matching a query condition with a rule head produces unifiers — each a
// set of mappings (variable ↦ term) and definitions (object variable ⇒
// instantiated head structure), as in Section 3.2:
//
//	θ1 = [ N ↦ 'Joe Chung',
//	       JC ⇒ <cs_person {<name 'Joe Chung'> <rel R> Rest1 Rest2}> ]
//
// Containment is enforced structurally: every subobject pattern of the
// query condition either unifies with a distinct explicit subobject
// pattern of the head or is pushed into one of the head's rest variables
// (becoming a rest constraint on the rule tail — the "push selections
// down" optimization, which in the nested-object setting enumerates one
// rule per push choice, the paper's τ1/τ2 example). One logical rule is
// emitted per unifier per specification rule, and a query pattern may be
// expanded through several mediators in sequence (views over views) up to
// a depth limit.
package veao

import (
	"context"
	"fmt"
	"sync/atomic"

	"medmaker/internal/msl"
	"medmaker/internal/trace"
)

// Options control expansion.
type Options struct {
	// MaxDepth bounds how many times mediator references may be expanded
	// (views defined over other mediators, or recursive views). Zero
	// means the default of 32. Exceeding it is an error, which is how
	// non-terminating recursive-view expansions surface.
	MaxDepth int
	// Exhaustive keeps the rest-push choices for a query element even
	// when it unified with an explicit head element of the same constant
	// label. The default (false) matches the paper's presentation: Q1
	// yields just R2 rather than additional rules covering persons with
	// several name subobjects, while <year 3> — matching no explicit
	// element — still yields both τ1 and τ2.
	Exhaustive bool
}

// Program is a logical datamerge program: the expanded rules, referencing
// sources only.
type Program struct {
	Rules []*msl.Rule
	// Decls are the external declarations visible to the rules (copied
	// from the specification).
	Decls []*msl.ExternalDecl
}

// String renders the program as MSL text.
func (p *Program) String() string {
	mp := &msl.Program{Rules: p.Rules, Decls: p.Decls}
	return mp.String()
}

// Expander expands queries against one mediator specification. It is
// safe for concurrent use.
type Expander struct {
	spec     *msl.Program
	mediator string
	opts     Options
	fresh    atomic.Int64
}

// NewExpander prepares expansion of queries addressed to the named
// mediator defined by spec. Tail conjuncts whose source is the mediator's
// name — or empty — are treated as references to the virtual view.
func NewExpander(spec *msl.Program, mediatorName string, opts Options) *Expander {
	if opts.MaxDepth == 0 {
		opts.MaxDepth = 32
	}
	return &Expander{spec: spec, mediator: mediatorName, opts: opts}
}

// Expand rewrites the query into a logical datamerge program. The query's
// head is preserved (with definitions substituted); its tail conditions on
// the mediator are replaced by specification rule tails.
func (e *Expander) Expand(query *msl.Rule) (*Program, error) {
	return e.ExpandContext(context.Background(), query)
}

// ExpandContext is Expand bounded by ctx: expansion blows up
// combinatorially on adversarial specifications (every mediator conjunct
// multiplies by the rule count), so the recursion checks the context at
// every step and aborts with ctx's error once it ends.
func (e *Expander) ExpandContext(ctx context.Context, query *msl.Rule) (*Program, error) {
	// Rename the query apart from every specification rule.
	q := query.RenameVars(func(s string) string { return "q" + s })
	rules, err := e.expandRule(ctx, q, 0)
	if err != nil {
		return nil, err
	}
	trace.FromContext(ctx).Annotate("veao.rules", int64(len(rules)))
	return &Program{Rules: rules, Decls: e.spec.Decls}, nil
}

// expandRule rewrites the first mediator-referencing conjunct of r against
// every specification rule, then recurses on each result until none
// remain.
func (e *Expander) expandRule(ctx context.Context, r *msl.Rule, depth int) ([]*msl.Rule, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if depth > e.opts.MaxDepth {
		return nil, fmt.Errorf("veao: expansion exceeded depth %d (recursive view?)", e.opts.MaxDepth)
	}
	idx := -1
	for i, c := range r.Tail {
		if pc, ok := c.(*msl.PatternConjunct); ok && e.isMediatorRef(pc) {
			if pc.Negated {
				return nil, fmt.Errorf("veao: negated conditions on virtual mediator objects are not supported; negate source patterns instead")
			}
			idx = i
			break
		}
	}
	if idx < 0 {
		return []*msl.Rule{r}, nil
	}
	target := r.Tail[idx].(*msl.PatternConjunct)
	var out []*msl.Rule
	for ri, specRule := range e.spec.Rules {
		// Rename the specification rule apart from the query and from
		// other expansions.
		suffix := fmt.Sprintf("_%d_%d", ri, e.fresh.Add(1))
		sr := specRule.RenameVars(func(s string) string { return s + suffix })
		if len(sr.Head) != 1 {
			return nil, fmt.Errorf("veao: specification rule %d must have exactly one head pattern, found %d",
				ri, len(sr.Head))
		}
		head, ok := sr.Head[0].(*msl.ObjectPattern)
		if !ok {
			return nil, fmt.Errorf("veao: specification rule %d has a non-pattern head", ri)
		}
		unifiers, err := e.unifyCondition(target.Pattern, head)
		if err != nil {
			return nil, err
		}
		for _, u := range unifiers {
			rewritten, err := u.rewrite(r, idx, target, sr, head)
			if err != nil {
				return nil, err
			}
			expanded, err := e.expandRule(ctx, rewritten, depth+1)
			if err != nil {
				return nil, err
			}
			out = append(out, expanded...)
		}
	}
	return out, nil
}

func (e *Expander) isMediatorRef(pc *msl.PatternConjunct) bool {
	return pc.Source == "" || pc.Source == e.mediator
}
