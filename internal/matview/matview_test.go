package matview

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"medmaker/internal/metrics"
	"medmaker/internal/msl"
	"medmaker/internal/oem"
)

// staffSpec is a small mediated view over two sources plus a derived
// view over the mediator's own cs_person view, for dependency tracking.
const staffSpec = `
<cs_person {<name N> <dept D>}> :- <person {<name N> <dept D>}>@cs.
<whois_person {<name N>}> :- <person {<name N>}>@whois.
<cs_name {<name N>}> :- <cs_person {<name N>}>@med.
`

func spec(t *testing.T) *msl.Program {
	t.Helper()
	p, err := msl.ParseProgram(staffSpec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// fakeBuild returns a BuildFunc serving a fixed answer and counting
// invocations.
func fakeBuild(calls *atomic.Int64, objs []*oem.Object, errs *atomic.Int64) BuildFunc {
	return func(ctx context.Context, fetch *msl.Rule) ([]*oem.Object, bool, error) {
		calls.Add(1)
		if errs != nil && errs.Load() > 0 {
			errs.Add(-1)
			return nil, false, errors.New("source down")
		}
		return objs, false, nil
	}
}

func person(gen *oem.IDGen, name string) *oem.Object {
	return oem.NewSet(gen.Next(), "cs_person", oem.New(gen.Next(), "name", name))
}

func newTestManager(t *testing.T, opts Options, build BuildFunc) *Manager {
	t.Helper()
	if opts.Metrics == nil {
		opts.Metrics = metrics.NewRegistry()
	}
	m, err := NewManager("med", spec(t), opts, build)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mustQuery(t *testing.T, text string) *msl.Rule {
	t.Helper()
	q, err := msl.ParseQuery(text)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestNewManagerValidation(t *testing.T) {
	build := fakeBuild(new(atomic.Int64), nil, nil)
	if _, err := NewManager("med", spec(t), Options{}, build); err == nil {
		t.Fatal("no views must be rejected")
	}
	if _, err := NewManager("med", spec(t), Options{Views: []View{{Label: "cs_person"}, {Label: "cs_person"}}}, build); err == nil {
		t.Fatal("duplicate view must be rejected")
	}
	if _, err := NewManager("med", spec(t), Options{Views: []View{{Label: "cs_person", Pattern: "<whois_person W>"}}}, build); err == nil {
		t.Fatal("pattern with a different label must be rejected")
	}
	if _, err := NewManager("med", spec(t), Options{Views: []View{{Label: "cs_person", Pattern: "<cs_person"}}}, build); err == nil {
		t.Fatal("unparseable pattern must be rejected")
	}
}

func TestServeHitAfterColdBuild(t *testing.T) {
	gen := oem.NewIDGen("t")
	var calls atomic.Int64
	m := newTestManager(t, Options{Views: []View{{Label: "cs_person"}}},
		fakeBuild(&calls, []*oem.Object{person(gen, "joe")}, nil))

	q := mustQuery(t, `N :- <cs_person {<name N>}>@med.`)
	sv, out, err := m.Serve(context.Background(), q)
	if err != nil || out != Hit {
		t.Fatalf("cold serve = %v, %v", out, err)
	}
	if !sv.Built {
		t.Fatal("cold hit must report Built")
	}
	if calls.Load() != 1 {
		t.Fatalf("builds = %d, want 1", calls.Load())
	}
	ext, ok := sv.Extents[ExtentSource("cs_person")]
	if !ok || len(ext.Objs) != 1 || ext.Source.Name() != ExtentSource("cs_person") {
		t.Fatalf("extent = %+v", sv.Extents)
	}
	// The rewritten query must target the extent source.
	pc := sv.Query.Tail[0].(*msl.PatternConjunct)
	if pc.Source != ExtentSource("cs_person") {
		t.Fatalf("rewritten source = %q", pc.Source)
	}

	// Warm: same extent, no new build, not Built.
	sv, out, err = m.Serve(context.Background(), q)
	if err != nil || out != Hit || sv.Built {
		t.Fatalf("warm serve = %v built=%v err=%v", out, sv.Built, err)
	}
	if calls.Load() != 1 {
		t.Fatalf("builds after warm = %d, want 1", calls.Load())
	}
	if s := m.Stats(); s.Hits != 2 || s.Misses != 0 || s.Refreshes != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestServeMisses(t *testing.T) {
	var calls atomic.Int64
	m := newTestManager(t, Options{Views: []View{{Label: "cs_person"}}},
		fakeBuild(&calls, nil, nil))

	cases := []struct {
		name, q string
	}{
		{"unmaterialized label", `N :- <whois_person {<name N>}>@med.`},
		{"wildcard not contained", `V :- <%l V>@med.`},
		{"no mediator conjunct", `N :- <person {<name N>}>@cs.`},
	}
	for _, c := range cases {
		if _, out, err := m.Serve(context.Background(), mustQuery(t, c.q)); err != nil || out != Miss {
			t.Fatalf("%s: serve = %v, %v, want Miss", c.name, out, err)
		}
	}
	if calls.Load() != 0 {
		t.Fatalf("misses must not build; builds = %d", calls.Load())
	}
	if s := m.Stats(); s.Misses != int64(len(cases)) {
		t.Fatalf("stats = %+v", s)
	}
}

func TestServeNarrowedPattern(t *testing.T) {
	gen := oem.NewIDGen("t")
	var calls atomic.Int64
	m := newTestManager(t, Options{Views: []View{{
		Label: "cs_person", Pattern: `<cs_person {<dept 'CS'>}>`,
	}}}, fakeBuild(&calls, []*oem.Object{person(gen, "joe")}, nil))

	// Narrower than the view: contained, a hit.
	q := mustQuery(t, `N :- <cs_person {<name N> <dept 'CS'>}>@med.`)
	if _, out, err := m.Serve(context.Background(), q); err != nil || out != Hit {
		t.Fatalf("contained serve = %v, %v", out, err)
	}
	// Broader than the view: not contained, a miss.
	q = mustQuery(t, `N :- <cs_person {<name N>}>@med.`)
	if _, out, err := m.Serve(context.Background(), q); err != nil || out != Miss {
		t.Fatalf("uncontained serve = %v, %v", out, err)
	}
}

func TestTTLExpiryGoesStaleThenRecovers(t *testing.T) {
	gen := oem.NewIDGen("t")
	var calls atomic.Int64
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	m := newTestManager(t, Options{
		Views: []View{{Label: "cs_person", TTL: time.Minute}},
		Clock: clock,
	}, fakeBuild(&calls, []*oem.Object{person(gen, "joe")}, nil))

	q := mustQuery(t, `N :- <cs_person {<name N>}>@med.`)
	if _, out, _ := m.Serve(context.Background(), q); out != Hit {
		t.Fatalf("cold serve = %v", out)
	}
	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()
	if _, out, _ := m.Serve(context.Background(), q); out != Stale {
		t.Fatalf("expired serve = %v, want Stale", out)
	}
	m.Wait() // background rebuild
	if calls.Load() != 2 {
		t.Fatalf("builds = %d, want 2 (cold + background)", calls.Load())
	}
	if _, out, _ := m.Serve(context.Background(), q); out != Hit {
		t.Fatalf("post-refresh serve = %v, want Hit", out)
	}
	if s := m.Stats(); s.Stale != 1 || s.Refreshes != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestInvalidateSelectors(t *testing.T) {
	gen := oem.NewIDGen("t")
	var calls atomic.Int64
	m := newTestManager(t, Options{Views: []View{{Label: "cs_person"}, {Label: "cs_name"}, {Label: "whois_person"}}},
		fakeBuild(&calls, []*oem.Object{person(gen, "joe")}, nil))
	if err := m.Refresh(context.Background(), ""); err != nil {
		t.Fatal(err)
	}

	// By source: cs feeds cs_person and (transitively) cs_name, not
	// whois_person.
	if n := m.Invalidate("cs"); n != 2 {
		t.Fatalf("Invalidate(cs) = %d, want 2", n)
	}
	// Already-stale views don't count again.
	if n := m.Invalidate("cs"); n != 0 {
		t.Fatalf("repeated Invalidate(cs) = %d, want 0", n)
	}
	if err := m.Refresh(context.Background(), ""); err != nil {
		t.Fatal(err)
	}
	// By view label.
	if n := m.Invalidate("whois_person"); n != 1 {
		t.Fatalf("Invalidate(whois_person) = %d, want 1", n)
	}
	if err := m.Refresh(context.Background(), ""); err != nil {
		t.Fatal(err)
	}
	// Everything.
	if n := m.Invalidate(""); n != 3 {
		t.Fatalf("Invalidate(\"\") = %d, want 3", n)
	}
	// An unknown name touches nothing.
	if err := m.Refresh(context.Background(), ""); err != nil {
		t.Fatal(err)
	}
	if n := m.Invalidate("nosuch"); n != 0 {
		t.Fatalf("Invalidate(nosuch) = %d, want 0", n)
	}
}

func TestInvalidatedServeIsStale(t *testing.T) {
	gen := oem.NewIDGen("t")
	var calls atomic.Int64
	m := newTestManager(t, Options{Views: []View{{Label: "cs_person"}}},
		fakeBuild(&calls, []*oem.Object{person(gen, "joe")}, nil))
	q := mustQuery(t, `N :- <cs_person {<name N>}>@med.`)
	if _, out, _ := m.Serve(context.Background(), q); out != Hit {
		t.Fatal("cold serve not a hit")
	}
	if n := m.Invalidate("cs"); n != 1 {
		t.Fatalf("Invalidate = %d", n)
	}
	if _, out, _ := m.Serve(context.Background(), q); out != Stale {
		t.Fatal("invalidated serve not Stale")
	}
	m.Wait()
	if _, out, _ := m.Serve(context.Background(), q); out != Hit {
		t.Fatal("refreshed serve not a Hit")
	}
}

func TestBuildFailureFallsBackAndKeepsOldExtent(t *testing.T) {
	gen := oem.NewIDGen("t")
	var calls, errs atomic.Int64
	m := newTestManager(t, Options{Views: []View{{Label: "cs_person"}}},
		fakeBuild(&calls, []*oem.Object{person(gen, "joe")}, &errs))
	q := mustQuery(t, `N :- <cs_person {<name N>}>@med.`)

	// Cold build fails: Miss with an error, no extent.
	errs.Store(1)
	if _, out, err := m.Serve(context.Background(), q); err == nil || out != Miss {
		t.Fatalf("failed cold serve = %v, err = %v", out, err)
	}
	// Next attempt succeeds.
	if _, out, err := m.Serve(context.Background(), q); err != nil || out != Hit {
		t.Fatalf("recovery serve = %v, %v", out, err)
	}
	// A failed background refresh keeps the (stale) old extent: queries
	// keep falling back live, then a later refresh heals it.
	m.Invalidate("")
	errs.Store(1)
	if _, out, _ := m.Serve(context.Background(), q); out != Stale {
		t.Fatal("invalidated serve not Stale")
	}
	m.Wait()
	if _, out, _ := m.Serve(context.Background(), q); out != Stale {
		t.Fatal("serve after failed refresh must stay Stale")
	}
	m.Wait()
	if _, out, _ := m.Serve(context.Background(), q); out != Hit {
		t.Fatal("serve after successful retry not a Hit")
	}
	if s := m.Stats(); s.RefreshErrors != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRebuildSingleflight(t *testing.T) {
	gen := oem.NewIDGen("t")
	var calls atomic.Int64
	release := make(chan struct{})
	build := func(ctx context.Context, fetch *msl.Rule) ([]*oem.Object, bool, error) {
		calls.Add(1)
		<-release
		return []*oem.Object{person(gen, "joe")}, false, nil
	}
	m := newTestManager(t, Options{Views: []View{{Label: "cs_person"}}}, build)
	q := mustQuery(t, `N :- <cs_person {<name N>}>@med.`)

	const callers = 8
	var wg sync.WaitGroup
	outs := make([]Outcome, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, outs[i], _ = m.Serve(context.Background(), q)
		}(i)
	}
	// Let the herd pile onto the single flight, then release it.
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("builds = %d, want 1 (singleflight)", calls.Load())
	}
	for i, out := range outs {
		if out != Hit {
			t.Fatalf("caller %d outcome = %v, want Hit", i, out)
		}
	}
}

func TestRefreshUnknownView(t *testing.T) {
	m := newTestManager(t, Options{Views: []View{{Label: "cs_person"}}},
		fakeBuild(new(atomic.Int64), nil, nil))
	if err := m.Refresh(context.Background(), "nope"); err == nil {
		t.Fatal("unknown view must error")
	}
}

func TestMetricsRecorded(t *testing.T) {
	gen := oem.NewIDGen("t")
	reg := metrics.NewRegistry()
	m := newTestManager(t, Options{
		Views:   []View{{Label: "cs_person"}},
		Metrics: reg,
	}, fakeBuild(new(atomic.Int64), []*oem.Object{person(gen, "joe")}, nil))

	hit := mustQuery(t, `N :- <cs_person {<name N>}>@med.`)
	miss := mustQuery(t, `N :- <whois_person {<name N>}>@med.`)
	if _, out, err := m.Serve(context.Background(), hit); err != nil || out != Hit {
		t.Fatalf("serve = %v, %v", out, err)
	}
	if _, out, _ := m.Serve(context.Background(), miss); out != Miss {
		t.Fatal("miss query served")
	}
	m.Invalidate("")
	if _, out, _ := m.Serve(context.Background(), hit); out != Stale {
		t.Fatal("invalidated query not stale")
	}
	m.Wait()

	s := reg.Snapshot()
	for name, want := range map[string]int64{
		"matview.hits":      1,
		"matview.misses":    1,
		"matview.stale":     1,
		"matview.refreshes": 2, // cold + background
	} {
		if got := s.Counter(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if h := s.Histogram("matview.refresh_latency"); h.Count != 2 {
		t.Errorf("refresh_latency observations = %d, want 2", h.Count)
	}
}

func TestSourceDeps(t *testing.T) {
	p := spec(t)
	for _, c := range []struct {
		label string
		want  []string
	}{
		{"cs_person", []string{"cs"}},
		{"whois_person", []string{"whois"}},
		{"cs_name", []string{"cs"}}, // through the mediator's own cs_person view
	} {
		deps, all := sourceDeps(p, "med", c.label)
		if all {
			t.Errorf("%s: allSources unexpectedly true", c.label)
		}
		got := fmt.Sprintf("%v", sortedKeys(deps))
		if want := fmt.Sprintf("%v", c.want); got != want {
			t.Errorf("%s deps = %s, want %s", c.label, got, want)
		}
	}
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
