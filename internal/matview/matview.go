// Package matview is MedMaker's materialized-view manager: the serving
// layer between the virtual view system and the datamerge executor.
//
// The MSI treats every mediator view as virtual — each query re-expands
// the specification and re-executes a datamerge graph against the
// sources. For repeated queries the dominant cost is the source
// exchanges, so matview materializes selected view heads into local
// extents (built by running the ordinary pipeline once) and answers
// later queries from them when every mediator conjunct of the query is
// contained in a materialized view head (veao.Covers): the extent then
// holds all candidate objects, and evaluating the query over it is
// answer-preserving while performing zero source exchanges.
//
// Freshness is managed per view: a TTL ages extents out, Invalidate
// drops them by view label or by underlying source name, and a stale
// extent is rebuilt in the background — singleflighted, so a thundering
// herd of queries costs one rebuild — while queries fall back to live
// expansion until the rebuild lands. Every miss, for whatever reason, is
// transparently answered live; materialization is purely an accelerator.
package matview

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"medmaker/internal/metrics"
	"medmaker/internal/msl"
	"medmaker/internal/oem"
	"medmaker/internal/oemstore"
	"medmaker/internal/veao"
	"medmaker/internal/wrapper"
)

// extentPrefix namespaces the source names extents are registered under,
// keeping them out of the way of real sources.
const extentPrefix = "_matview."

// View selects one view head for materialization.
type View struct {
	// Label is the view's head label ("cs_person"); queries on this label
	// are candidates for extent answering.
	Label string
	// Pattern optionally narrows what is materialized, as an MSL object
	// pattern ("<cs_person {<dept 'CS'>}>"). Its label must equal Label.
	// Empty materializes every object of the view: "<Label S>".
	Pattern string
	// TTL ages the extent out; once exceeded, queries fall back to live
	// expansion and a background rebuild is started. 0 means no expiry
	// (explicit Invalidate/Refresh only).
	TTL time.Duration
}

// DefaultRecoverInterval is the minimum spacing between background
// re-refresh attempts of an extent that was built Incomplete, used when
// Options.RecoverInterval is zero.
const DefaultRecoverInterval = time.Second

// Options configure a Manager (medmaker.Config.Materialize).
type Options struct {
	// Views lists the view heads to materialize.
	Views []View
	// Clock overrides the time source for TTL checks (tests); nil means
	// time.Now.
	Clock func() time.Time
	// Metrics receives matview.* counters and the refresh-latency
	// histogram; nil means metrics.Default().
	Metrics *metrics.Registry
	// RecoverInterval bounds how often a fresh-but-Incomplete extent —
	// one built while a source was degraded — retries a background
	// rebuild so it does not stay Incomplete forever once the source
	// recovers. 0 means DefaultRecoverInterval; negative disables
	// recovery refreshes.
	RecoverInterval time.Duration
}

// BuildFunc materializes one extent: it answers the fetch query through
// the live pipeline, returning the view's objects and whether the answer
// was degraded (Incomplete).
type BuildFunc func(ctx context.Context, fetch *msl.Rule) ([]*oem.Object, bool, error)

// DeltaFunc evaluates the incremental effect of a source mutation on one
// view: given the view's fetch query, the mutated source's name, and the
// objects the mutation inserted, it returns the view objects the
// insertion adds. The source itself has already been mutated, so the
// implementation evaluates the fetch with the mutated source replaced by
// a delta-only facade holding just the inserted objects, every other
// source live — semi-naive evaluation's delta rule. incomplete reports a
// degraded evaluation; ok=false reports that the view's specification is
// not delta-evaluable for this source (non-monotone rules, a source
// joined with itself) and the caller must fall back to a full rebuild.
type DeltaFunc func(ctx context.Context, fetch *msl.Rule, source string, inserted []*oem.Object) (objs []*oem.Object, incomplete, ok bool, err error)

// Stats is a snapshot of a manager's counters. Hits are queries served
// from extents; Misses are queries no fresh extent could answer (no
// covering view, or build failure); Stale counts misses caused
// specifically by TTL expiry or invalidation, which also trigger a
// background rebuild. Refreshes and RefreshErrors count completed
// extent builds. Deltas counts source mutations applied incrementally
// into an extent; DeltaFallbacks counts mutations that had to mark the
// extent stale for a full rebuild instead (deletes, incomplete extents,
// non-delta-evaluable specs, races).
type Stats struct {
	Hits, Misses, Stale, Refreshes, RefreshErrors int64
	Deltas, DeltaFallbacks                        int64
}

// Outcome classifies one Serve attempt.
type Outcome int

const (
	// Miss: the query is not answerable from any fresh extent; answer it
	// live.
	Miss Outcome = iota
	// Stale: a covering extent exists but aged out or was invalidated; a
	// background rebuild was started, answer this query live.
	Stale
	// Hit: the returned Served answers the query from extents alone.
	Hit
)

// String names the outcome for traces and logs.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Stale:
		return "stale"
	default:
		return "miss"
	}
}

// Extent is one servable materialized extent: a Source facade the
// planner probes for cardinalities, plus the raw objects the engine's
// MatScanNode evaluates over.
type Extent struct {
	View   string
	Source wrapper.Source
	Objs   []*oem.Object
}

// Served is a query rewritten to run over materialized extents: the
// rewritten rule (mediator conjuncts retargeted to extent source names),
// the extents by source name, and the carried-over degradation flag.
type Served struct {
	Query   *msl.Rule
	Extents map[string]Extent
	// Views lists the labels of the views serving this query.
	Views []string
	// Built reports that at least one extent was materialized
	// synchronously for this query (a cold hit).
	Built bool
	// Incomplete carries degradation from materialization time: extents
	// built while a source was down are lower bounds, and so is every
	// answer served from them.
	Incomplete bool
}

// Manager owns the materialized extents of one mediator. It is safe for
// concurrent use.
type Manager struct {
	mediator string
	build    BuildFunc
	delta    DeltaFunc // nil: every mutation falls back to rebuild
	now      func() time.Time
	reg      *metrics.Registry
	views    map[string]*matView // by label
	labels   []string            // sorted
	recover  time.Duration       // <0: disabled
	wg       sync.WaitGroup      // background rebuilds in flight

	hits, misses, stale    atomic.Int64
	refreshes, refreshErrs atomic.Int64
	deltas, deltaFallbacks atomic.Int64
}

// matView is one view's configuration and current extent.
type matView struct {
	label   string
	pattern *msl.ObjectPattern
	ttl     time.Duration
	// deps are the source names this view's rules transitively read;
	// Invalidate(source) marks dependent views stale. allSources makes
	// the view depend on everything (a rule's source could not be
	// determined statically).
	deps       map[string]bool
	allSources bool

	mu         sync.Mutex
	src        *oemstore.Source // nil until first build
	objs       []*oem.Object
	incomplete bool
	builtAt    time.Time
	stale      bool
	building   *buildFlight
	// gen counts mutations applied (or attempted) against this view; a
	// rebuild that overlapped a mutation sees gen move and installs its
	// extent already stale, since its build may predate the mutation.
	gen uint64
	// dedup holds the structural fingerprints of every object in the
	// extent, so delta applications drop answers the extent already has
	// (the delta rule re-derives answers joining new data with new data).
	dedup *oem.Deduper
	// lastRecover spaces the background re-refresh attempts of an extent
	// stuck Incomplete.
	lastRecover time.Time
}

// buildFlight is one in-progress extent build; concurrent demands join
// it instead of rebuilding (singleflight).
type buildFlight struct {
	done chan struct{}
	err  error
}

// NewManager prepares materialization of the given views for the named
// mediator, whose specification is spec. build is invoked — possibly
// concurrently — to materialize extents through the live pipeline.
func NewManager(mediator string, spec *msl.Program, opts Options, build BuildFunc) (*Manager, error) {
	if len(opts.Views) == 0 {
		return nil, fmt.Errorf("matview: no views configured")
	}
	now := opts.Clock
	if now == nil {
		now = time.Now
	}
	reg := opts.Metrics
	if reg == nil {
		reg = metrics.Default()
	}
	rec := opts.RecoverInterval
	if rec == 0 {
		rec = DefaultRecoverInterval
	}
	m := &Manager{
		mediator: mediator,
		build:    build,
		now:      now,
		reg:      reg,
		views:    make(map[string]*matView, len(opts.Views)),
		recover:  rec,
	}
	for _, v := range opts.Views {
		if v.Label == "" {
			return nil, fmt.Errorf("matview: view needs a label")
		}
		if _, dup := m.views[v.Label]; dup {
			return nil, fmt.Errorf("matview: view %q configured twice", v.Label)
		}
		pattern := &msl.ObjectPattern{
			Label: msl.NewConst(v.Label),
			Value: &msl.Var{Name: "MatViewValue"},
		}
		if v.Pattern != "" {
			parsed, err := parsePattern(v.Pattern)
			if err != nil {
				return nil, fmt.Errorf("matview: view %q: %w", v.Label, err)
			}
			if got := parsed.LabelName(); got != v.Label {
				return nil, fmt.Errorf("matview: view %q: pattern label is %q", v.Label, got)
			}
			pattern = parsed
		}
		mv := &matView{label: v.Label, pattern: pattern, ttl: v.TTL}
		mv.deps, mv.allSources = sourceDeps(spec, mediator, v.Label)
		m.views[v.Label] = mv
		m.labels = append(m.labels, v.Label)
	}
	sort.Strings(m.labels)
	return m, nil
}

// parsePattern parses a standalone MSL object pattern by wrapping it in
// a one-conjunct query.
func parsePattern(text string) (*msl.ObjectPattern, error) {
	r, err := msl.ParseQuery("MatViewX :- MatViewX:" + text + "@matview.")
	if err != nil {
		return nil, err
	}
	return r.Tail[0].(*msl.PatternConjunct).Pattern, nil
}

// sourceDeps computes the source names the rules deriving label
// transitively read, following view-over-view references through the
// mediator's own rules. allSources is reported when a dependency could
// not be pinned down (a variable-labelled head or conjunct), making the
// view conservatively depend on every source.
func sourceDeps(spec *msl.Program, mediator, label string) (deps map[string]bool, allSources bool) {
	deps = make(map[string]bool)
	pendingLabels := []string{label}
	seen := map[string]bool{label: true}
	for len(pendingLabels) > 0 {
		l := pendingLabels[0]
		pendingLabels = pendingLabels[1:]
		for _, r := range spec.Rules {
			if !derives(r, l) {
				continue
			}
			for _, c := range r.Tail {
				pc, ok := c.(*msl.PatternConjunct)
				if !ok {
					continue
				}
				if pc.Source != "" && pc.Source != mediator {
					deps[pc.Source] = true
					continue
				}
				// A reference to the mediator's own view: recurse on its
				// label; a variable label could be any view.
				sub := pc.Pattern.LabelName()
				if sub == "" {
					return deps, true
				}
				if !seen[sub] {
					seen[sub] = true
					pendingLabels = append(pendingLabels, sub)
				}
			}
		}
	}
	return deps, false
}

// derives reports whether rule r's head can construct an object labelled
// l. A head whose label is not a constant can derive anything.
func derives(r *msl.Rule, l string) bool {
	for _, h := range r.Head {
		op, ok := h.(*msl.ObjectPattern)
		if !ok {
			return true // bare variable head: label unknown
		}
		name := op.LabelName()
		if name == "" || name == l {
			return true
		}
	}
	return false
}

// ExtentSource returns the source name the named view's extent is
// registered under in served plans.
func ExtentSource(label string) string { return extentPrefix + label }

// Labels returns the configured view labels, sorted.
func (m *Manager) Labels() []string { return append([]string(nil), m.labels...) }

// SetDeltaFunc installs the incremental evaluator ApplyDelta uses for
// insert-only mutations. Call it once, before the manager sees queries
// or deltas; with no delta func every mutation falls back to a rebuild.
func (m *Manager) SetDeltaFunc(fn DeltaFunc) { m.delta = fn }

// Stats snapshots the manager's counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Hits:           m.hits.Load(),
		Misses:         m.misses.Load(),
		Stale:          m.stale.Load(),
		Refreshes:      m.refreshes.Load(),
		RefreshErrors:  m.refreshErrs.Load(),
		Deltas:         m.deltas.Load(),
		DeltaFallbacks: m.deltaFallbacks.Load(),
	}
}

// Wait blocks until background rebuilds started so far have finished —
// a test and shutdown hook.
func (m *Manager) Wait() { m.wg.Wait() }

// Serve decides whether q can be answered from materialized extents.
// On Hit the returned Served holds everything the caller needs to plan
// and execute locally; on Miss or Stale the caller answers live (Stale
// additionally started a background rebuild). Absent extents of covering
// views are built synchronously — the cold path — so the first query
// pays the materialization and later ones enjoy it. An error is
// returned only for a failed synchronous build; the caller should fall
// back to live expansion unless the error is the context's own.
func (m *Manager) Serve(ctx context.Context, q *msl.Rule) (*Served, Outcome, error) {
	rewritten := q.Clone()
	var views []*matView
	seen := map[string]bool{}
	matched := false
	for _, c := range rewritten.Tail {
		pc, ok := c.(*msl.PatternConjunct)
		if !ok {
			continue // predicates evaluate mediator-side either way
		}
		if pc.Source != "" && pc.Source != m.mediator {
			continue // a direct source conjunct passes through unchanged
		}
		matched = true
		v := m.covering(pc.Pattern)
		if v == nil {
			m.miss()
			return nil, Miss, nil
		}
		pc.Source = ExtentSource(v.label)
		if !seen[v.label] {
			seen[v.label] = true
			views = append(views, v)
		}
	}
	if !matched {
		m.miss()
		return nil, Miss, nil
	}
	served := &Served{Query: rewritten, Extents: make(map[string]Extent, len(views))}
	for _, v := range views {
		ext, fresh, built, err := m.ensure(ctx, v)
		if err != nil {
			m.miss()
			return nil, Miss, err
		}
		if !fresh {
			// Aged out or invalidated: rebuild behind this query's back
			// and let it run live.
			m.stale.Add(1)
			m.reg.Counter("matview.stale").Inc()
			m.refreshAsync(v)
			return nil, Stale, nil
		}
		served.Built = served.Built || built
		served.Views = append(served.Views, v.label)
		served.Incomplete = served.Incomplete || ext.incomplete
		served.Extents[ExtentSource(v.label)] = Extent{View: v.label, Source: ext.src, Objs: ext.objs}
	}
	m.hits.Add(1)
	m.reg.Counter("matview.hits").Inc()
	return served, Hit, nil
}

func (m *Manager) miss() {
	m.misses.Add(1)
	m.reg.Counter("matview.misses").Inc()
}

// covering returns the configured view whose pattern subsumes p, or nil.
func (m *Manager) covering(p *msl.ObjectPattern) *matView {
	v, ok := m.views[p.LabelName()]
	if !ok || !veao.Covers(v.pattern, p) {
		return nil
	}
	return v
}

// extentState is a consistent read of one view's extent.
type extentState struct {
	src        *oemstore.Source
	objs       []*oem.Object
	incomplete bool
}

// ensure returns v's extent, building it synchronously when absent.
// fresh=false reports a present-but-expired extent (the caller decides
// what to do; ensure does not rebuild it). built=true reports that this
// call performed the synchronous build. A fresh extent that is stuck
// Incomplete additionally triggers a bounded background re-refresh, so
// recovered sources eventually clear the degradation (satisfying queries
// meanwhile keep being served, conservatively flagged Incomplete).
func (m *Manager) ensure(ctx context.Context, v *matView) (st extentState, fresh, built bool, err error) {
	v.mu.Lock()
	if v.src != nil {
		st = extentState{src: v.src, objs: v.objs, incomplete: v.incomplete}
		now := m.now()
		fresh = !v.expiredLocked(now)
		retry := fresh && st.incomplete && m.recover >= 0 &&
			(v.lastRecover.IsZero() || now.Sub(v.lastRecover) >= m.recover)
		if retry {
			v.lastRecover = now
		}
		v.mu.Unlock()
		if retry {
			m.reg.Counter("matview.recover").Inc()
			m.refreshAsync(v)
		}
		return st, fresh, false, nil
	}
	v.mu.Unlock()
	if err := m.rebuild(ctx, v); err != nil {
		return extentState{}, false, false, err
	}
	v.mu.Lock()
	st = extentState{src: v.src, objs: v.objs, incomplete: v.incomplete}
	fresh = !v.expiredLocked(m.now())
	v.mu.Unlock()
	return st, fresh, true, nil
}

// expiredLocked reports TTL expiry or explicit invalidation; v.mu held.
func (v *matView) expiredLocked(now time.Time) bool {
	if v.stale {
		return true
	}
	return v.ttl > 0 && now.Sub(v.builtAt) > v.ttl
}

// fetchRule is the query that materializes v: every object matching the
// view pattern, answered by the mediator's live pipeline.
func (v *matView) fetchRule(mediator string) *msl.Rule {
	r := &msl.Rule{
		Head: []msl.HeadTerm{&msl.Var{Name: "MatViewV"}},
		Tail: []msl.Conjunct{&msl.PatternConjunct{
			ObjVar:  &msl.Var{Name: "MatViewV"},
			Pattern: v.pattern,
			Source:  mediator,
		}},
	}
	return r.Clone() // don't share the pattern with the pipeline
}

// rebuild materializes v's extent, singleflighted: concurrent callers
// wait for the leader's build instead of each running the pipeline. The
// result — success or failure — is installed under v.mu; a failed build
// leaves any previous extent in place (stale data beats no data is the
// caller's call: the extent stays marked stale).
func (m *Manager) rebuild(ctx context.Context, v *matView) error {
	v.mu.Lock()
	if f := v.building; f != nil {
		v.mu.Unlock()
		select {
		case <-f.done:
			return f.err
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	f := &buildFlight{done: make(chan struct{})}
	v.building = f
	startGen := v.gen
	v.mu.Unlock()

	start := time.Now()
	objs, incomplete, err := m.build(ctx, v.fetchRule(m.mediator))
	var src *oemstore.Source
	if err == nil {
		src, err = oemstore.FromObjects(ExtentSource(v.label), objs...)
	}
	m.reg.Histogram("matview.refresh_latency").Observe(time.Since(start))
	v.mu.Lock()
	if err == nil {
		dedup := oem.NewDeduper(len(objs))
		for _, o := range objs {
			dedup.Seen(o)
		}
		v.src, v.objs, v.incomplete, v.dedup = src, objs, incomplete, dedup
		// A mutation that raced this build may predate what the build
		// read: install the extent (it is the newest data available) but
		// keep it stale so the next demand rebuilds once more.
		v.builtAt, v.stale = m.now(), v.gen != startGen
		m.refreshes.Add(1)
		m.reg.Counter("matview.refreshes").Inc()
	} else {
		m.refreshErrs.Add(1)
		m.reg.Counter("matview.refresh_errors").Inc()
	}
	v.building = nil
	v.mu.Unlock()
	f.err = err
	close(f.done)
	return err
}

// refreshAsync starts a background rebuild of v unless one is already in
// flight. The rebuild runs detached from any query context; use Wait to
// drain in tests and shutdown paths.
func (m *Manager) refreshAsync(v *matView) {
	v.mu.Lock()
	inFlight := v.building != nil
	v.mu.Unlock()
	if inFlight {
		return
	}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		// The rebuild's error is already counted and, with the extent
		// still marked stale, the next query retries.
		_ = m.rebuild(context.Background(), v)
	}()
}

// Refresh synchronously rebuilds the named view's extent, or every
// configured view when label is "".
func (m *Manager) Refresh(ctx context.Context, label string) error {
	if label != "" {
		v, ok := m.views[label]
		if !ok {
			return fmt.Errorf("matview: unknown view %q", label)
		}
		return m.rebuild(ctx, v)
	}
	for _, l := range m.labels {
		if err := m.rebuild(ctx, m.views[l]); err != nil {
			return err
		}
	}
	return nil
}

// Invalidate marks extents stale: name may be a view label (that view),
// a source name (every view whose rules read it), or "" (every view).
// Stale extents are rebuilt on the next demand; it returns how many
// views were invalidated.
func (m *Manager) Invalidate(name string) int {
	n := 0
	for _, l := range m.labels {
		v := m.views[l]
		if name != "" && name != v.label && !v.allSources && !v.deps[name] {
			continue
		}
		v.mu.Lock()
		v.gen++ // an in-flight rebuild must not install as fresh
		if v.src != nil && !v.stale {
			v.stale = true
			n++
		}
		v.mu.Unlock()
	}
	return n
}

// ApplyDelta maintains the extents that depend on source through one
// mutation, instead of dropping them: an insert-only delta is evaluated
// incrementally (the delta func runs the view's fetch with the mutated
// source replaced by a facade holding just the inserted objects) and the
// new answers are appended to the extent, structurally deduplicated
// against what it already holds. Deletions, Incomplete extents,
// non-delta-evaluable specs, evaluation failures, and races with
// concurrent rebuilds all fall back to the invalidate path: the extent
// is marked stale and a background rebuild starts, exactly as before
// change feeds existed. Unbuilt extents need nothing — a later build
// reads the already-mutated source.
//
// It returns how many extents were delta-maintained and how many fell
// back to a rebuild.
func (m *Manager) ApplyDelta(ctx context.Context, source string, inserted, deleted []*oem.Object) (applied, fallbacks int) {
	for _, l := range m.labels {
		v := m.views[l]
		if !v.allSources && !v.deps[source] {
			continue
		}
		v.mu.Lock()
		v.gen++
		if v.src == nil || v.building != nil || v.stale {
			// Unbuilt: nothing to maintain. Building: the gen bump above
			// makes the racing install come out stale, so the follow-up
			// rebuild observes this mutation. Stale: a rebuild is already
			// owed and will read the mutated source.
			v.mu.Unlock()
			continue
		}
		if len(deleted) > 0 || v.incomplete || m.delta == nil {
			m.fallbackLocked(v)
			fallbacks++
			continue
		}
		fetch := v.fetchRule(m.mediator)
		v.mu.Unlock()

		objs, incomplete, ok, err := m.delta(ctx, fetch, source, inserted)
		v.mu.Lock()
		if err != nil || !ok || incomplete {
			m.fallbackLocked(v)
			fallbacks++
			continue
		}
		if v.src == nil || v.building != nil || v.stale {
			// A rebuild or invalidation intervened; it owns freshness now.
			v.mu.Unlock()
			continue
		}
		// v.gen may have moved: a concurrent insert-only application.
		// Those commute — whichever delta evaluation ran last saw both
		// mutations' source state, and the deduper drops doubly-derived
		// answers — so appending stays sound without a gen re-check.
		var fresh []*oem.Object
		for _, o := range objs {
			if !v.dedup.Seen(o) {
				fresh = append(fresh, o)
			}
		}
		v.objs = append(v.objs, fresh...)
		src := v.src
		v.mu.Unlock()
		if len(fresh) > 0 {
			// The facade source accepts the new objects outside v.mu; the
			// extent registry is only read by served plans, which tolerate
			// (and want) the freshest extent.
			if err := src.Add(fresh...); err != nil {
				m.Invalidate(v.label)
				m.countFallback()
				fallbacks++
				continue
			}
		}
		applied++
		m.deltas.Add(1)
		m.reg.Counter("matview.delta.applied").Inc()
		m.reg.Counter("matview.delta.objects").Add(int64(len(fresh)))
	}
	return applied, fallbacks
}

// fallbackLocked routes one mutation to the rebuild path: mark v stale,
// count the fallback, start a background rebuild. v.mu is held on entry
// and released here (refreshAsync takes it itself).
func (m *Manager) fallbackLocked(v *matView) {
	v.stale = true
	v.mu.Unlock()
	m.countFallback()
	m.refreshAsync(v)
}

func (m *Manager) countFallback() {
	m.deltaFallbacks.Add(1)
	m.reg.Counter("matview.delta.fallback").Inc()
}
