package plan

import (
	"fmt"

	"medmaker/internal/engine"
	"medmaker/internal/msl"
	"medmaker/internal/wrapper"
)

// queryNode builds the query node for one pattern conjunct: it decides
// what query the source is sent (pushing the conditions the source can
// evaluate and parameterizing on the variables bound so far), while the
// extraction step always re-matches the full original pattern, keeping the
// plan correct whatever was pushed.
func (p *Planner) queryNode(pc *msl.PatternConjunct, child engine.Node, bound map[string]bool, needed map[string]bool) (*engine.QueryNode, error) {
	sent, paramVars, err := p.sendPattern(pc, bound, child != nil)
	if err != nil {
		return nil, err
	}

	// The sent query materializes the matched objects directly: a bare
	// object-variable head.
	ov := &msl.Var{Name: "_O"}
	if pc.ObjVar != nil {
		ov = pc.ObjVar
	}
	send := &msl.Rule{
		Head: []msl.HeadTerm{ov},
		Tail: []msl.Conjunct{&msl.PatternConjunct{ObjVar: ov, Pattern: sent, Source: pc.Source}},
	}

	node := &engine.QueryNode{
		Child:         child,
		Source:        pc.Source,
		Send:          send,
		ParamVars:     paramVars,
		Extract:       pc.Pattern,
		ExtractObjVar: pc.ObjVar,
		Negated:       pc.Negated,
		// Projection: keep exactly the variables needed downstream; names
		// not bound yet are simply absent from the rows.
		Needed: setList(needed),
		// Shape is the condition-aware statistics key for the sent
		// template: execution feedback records under it, so the next plan
		// reads exactly what this node's queries taught the store.
		Shape: engine.ShapeOf(sent, engine.ShapeVars(paramVars)),
	}
	// Attach the learned cardinality estimate so EXPLAIN ANALYZE can show
	// estimated vs. actual rows: the shape bucket first (it reflects this
	// node's conditions), the label-only bucket as fallback. Only the
	// statistics store is consulted: the CountLabel probe used for join
	// ordering costs a source round-trip, which plan construction must not
	// add per node.
	if p.stats != nil {
		if est, ok := p.stats.Estimate(pc.Source, node.Shape); ok {
			node.EstRows = est
			node.HasEst = true
		} else if est, ok := p.stats.Estimate(pc.Source, labelKey(pc.Pattern)); ok {
			node.EstRows = est
			node.HasEst = true
		}
	}
	return node, nil
}

// sendPattern computes the query pattern actually sent to pc's source —
// relaxed to the source's capabilities and the planner's pushdown option
// — plus the previously-bound variables the engine substitutes per input
// tuple. inner says whether the node will have a child (parameterization
// applies only then, and only when the source evaluates conditions at
// all: a parameter becomes a constant condition at the source).
func (p *Planner) sendPattern(pc *msl.PatternConjunct, bound map[string]bool, inner bool) (*msl.ObjectPattern, []string, error) {
	src, ok := p.sources.Lookup(pc.Source)
	if !ok {
		return nil, nil, fmt.Errorf("plan: unknown source %q in %s", pc.Source, pc)
	}
	caps := src.Capabilities()
	sent := pc.Pattern
	if !p.opts.PushConditions {
		sent = relax(sent, wrapper.Capabilities{MultiPattern: caps.MultiPattern})
	} else {
		sent = relax(sent, caps)
	}
	var paramVars []string
	if inner && p.opts.Parameterize && p.opts.PushConditions && caps.ValueConditions {
		paramVars = intersect(bound, patternVarSet(sent))
	}
	return sent, paramVars, nil
}

// labelKey is the label-only statistics bucket for a pattern — the
// pre-shape key kept as estimation fallback.
func labelKey(p *msl.ObjectPattern) string {
	if l := p.LabelName(); l != "" {
		return l
	}
	return "*"
}

// relax strips the query features a source cannot evaluate, returning a
// pattern the source will accept. Extraction at the mediator re-verifies
// the original pattern, so relaxation only ever widens the candidate set.
func relax(p *msl.ObjectPattern, caps wrapper.Capabilities) *msl.ObjectPattern {
	if hasWildcard(p) && !caps.Wildcards {
		// The source cannot search at depth: fetch everything (any label,
		// any structure) and match at the mediator.
		return &msl.ObjectPattern{Label: &msl.Var{Name: "_AnyLabel"}}
	}
	var fresh int
	return relaxPattern(p, caps, true, &fresh)
}

func relaxPattern(p *msl.ObjectPattern, caps wrapper.Capabilities, top bool, fresh *int) *msl.ObjectPattern {
	out := &msl.ObjectPattern{Wildcard: p.Wildcard, Type: p.Type, Label: p.Label}
	if p.OID != nil {
		if _, isConst := p.OID.(*msl.Const); !isConst || caps.ValueConditions {
			out.OID = p.OID
		}
	}
	switch v := p.Value.(type) {
	case nil:
	case *msl.Const:
		if caps.ValueConditions {
			out.Value = v
		} else {
			// Keep the position observable so extraction can re-verify,
			// but drop the condition.
			*fresh++
			out.Value = &msl.Var{Name: fmt.Sprintf("_Relax%d", *fresh)}
		}
	case *msl.Var, *msl.Param:
		out.Value = v
	case *msl.SetPattern:
		sp := &msl.SetPattern{Rest: v.Rest}
		for _, e := range v.Elems {
			switch t := e.(type) {
			case *msl.ObjectPattern:
				sp.Elems = append(sp.Elems, relaxPattern(t, caps, false, fresh))
			default:
				sp.Elems = append(sp.Elems, e)
			}
		}
		if caps.RestConstraints {
			for _, rc := range v.RestConstraints {
				sp.RestConstraints = append(sp.RestConstraints, relaxPattern(rc, caps, false, fresh))
			}
		} else if len(v.RestConstraints) > 0 && sp.Rest == nil {
			// Dropping constraints on an anonymous rest would lose the
			// requirement entirely at the source; that is fine (the
			// mediator re-verifies), no rest variable needed.
			sp.RestConstraints = nil
		}
		out.Value = sp
	}
	return out
}

func hasWildcard(p *msl.ObjectPattern) bool {
	if p.Wildcard {
		return true
	}
	if sp, ok := p.Value.(*msl.SetPattern); ok {
		for _, e := range sp.Elems {
			if ep, isPat := e.(*msl.ObjectPattern); isPat && hasWildcard(ep) {
				return true
			}
		}
		for _, rc := range sp.RestConstraints {
			if hasWildcard(rc) {
				return true
			}
		}
	}
	return false
}

func patternVarSet(p *msl.ObjectPattern) map[string]bool {
	tmp := &msl.Rule{Tail: []msl.Conjunct{&msl.PatternConjunct{Pattern: p, Source: "x"}}}
	return varSet(tmp.Vars())
}
