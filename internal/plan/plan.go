// Package plan implements MedMaker's cost-based optimizer: it turns a
// logical datamerge program (the VE&AO's output) into a physical datamerge
// graph for the engine (Sections 3.4–3.5 of the paper).
//
// The default plan for a rule is a left-deep chain: the outermost pattern
// becomes a query node, each subsequent pattern a parameterized query node
// whose per-tuple queries carry the bindings obtained so far, external
// predicates are slotted in as soon as an implementation is applicable,
// and a dedup + constructor pair finishes the chain. Join order follows
// the paper's heuristic — the outer patterns are the ones with the
// greatest number of conditions — unless statistics from previous queries
// are available, in which case estimated result sizes drive the order.
//
// Capability-poor sources (Section 3.5) are handled by relaxing the query
// actually sent — stripping the conditions the source cannot evaluate, or
// fetching whole objects for wildcard searches — while the extraction
// step at the mediator re-verifies the full original pattern, so plans
// stay correct whatever the source supports.
package plan

import (
	"context"
	"fmt"
	"io"
	"sort"

	"medmaker/internal/engine"
	"medmaker/internal/extfn"
	"medmaker/internal/msl"
	"medmaker/internal/trace"
	"medmaker/internal/veao"
	"medmaker/internal/wrapper"
)

// OrderMode selects the join-order strategy.
type OrderMode int

const (
	// OrderHeuristic places patterns with the most conditions outermost
	// (the paper's ad-hoc heuristic), falling back to statistics when the
	// store has observations for every pattern.
	OrderHeuristic OrderMode = iota
	// OrderStats orders by ascending estimated result size from the
	// statistics store; patterns without estimates keep heuristic rank.
	OrderStats
	// OrderAsWritten keeps the rule's textual order.
	OrderAsWritten
	// OrderReversed inverts the heuristic order — the worst-case baseline
	// used by the join-order benchmarks.
	OrderReversed
	// OrderAdaptive searches join orders with a bind-join-aware cost
	// model: bound variables propagate through the candidate order, and a
	// conjunct whose join variable is already bound is priced as
	// parameterized-fetch cost × outer cardinality × learned selectivity
	// (the statistics store's shape-keyed feedback). Exhaustive for short
	// rules, greedy beyond; falls back to the heuristic until the store
	// has observations.
	OrderAdaptive
)

// Options control plan shape; use DefaultOptions as the base.
type Options struct {
	// Order selects the join-order strategy.
	Order OrderMode
	// PushConditions sends pattern conditions to capable sources. When
	// false every source query is relaxed to bare structure and all
	// filtering happens at the mediator — the "no pushdown" ablation.
	PushConditions bool
	// Parameterize uses parameterized query nodes for inner patterns.
	// When false each pattern is fetched independently and combined with
	// hash/cross joins — the paper-era baseline the parameterized plan is
	// measured against.
	Parameterize bool
	// DupElim adds the final structural duplicate elimination over result
	// objects. The paper's implementation lacked this (footnote 9); ours
	// defaults to on, and turning it off reproduces their behaviour.
	DupElim bool
	// Parallelism and MorselRows describe the executor the plan will run
	// on: how many workers its morsel scheduler fans local processing
	// across and how many rows one morsel holds. The statistics-driven
	// join order ranks patterns by their local cost after that speedup
	// (see localCost), so a big table that parallelizes well can cost the
	// same as a small one. 0 means 1 worker / engine.DefaultMorselRows.
	Parallelism int
	MorselRows  int
}

// DefaultOptions enables pushdown, parameterized joins, and duplicate
// elimination with heuristic ordering.
func DefaultOptions() Options {
	return Options{Order: OrderHeuristic, PushConditions: true, Parameterize: true, DupElim: true}
}

// Planner builds physical graphs against a fixed source registry and
// external-function table.
type Planner struct {
	sources *wrapper.Registry
	extfns  *extfn.Table
	stats   *engine.Stats
	opts    Options
	fresh   int
}

// New returns a planner. stats may be nil (no learned ordering).
func New(sources *wrapper.Registry, extfns *extfn.Table, stats *engine.Stats, opts Options) *Planner {
	return &Planner{sources: sources, extfns: extfns, stats: stats, opts: opts}
}

// Plan is a physical datamerge graph for a whole logical program: one
// chain per rule, a union, and optional result-level dedup.
type Plan struct {
	// Root is the graph to execute.
	Root engine.Node
	// RuleRoots are the per-rule subgraphs, in rule order.
	RuleRoots []engine.Node
}

// Print renders the graph (Figure 3.6 in textual form).
func (p *Plan) Print(w io.Writer) { engine.PrintGraph(w, p.Root) }

// Build turns a logical datamerge program into a physical plan.
func (p *Planner) Build(prog *veao.Program) (*Plan, error) {
	return p.BuildContext(context.Background(), prog)
}

// BuildContext is Build bounded by ctx, checked between rules: an
// expanded program can carry thousands of rules, and each one's planning
// may probe sources for cardinalities.
func (p *Planner) BuildContext(ctx context.Context, prog *veao.Program) (*Plan, error) {
	if len(prog.Rules) == 0 {
		return &Plan{Root: &engine.UnionNode{}}, nil
	}
	plan := &Plan{}
	for _, r := range prog.Rules {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		root, err := p.buildRule(r)
		if err != nil {
			return nil, err
		}
		plan.RuleRoots = append(plan.RuleRoots, root)
	}
	if len(plan.RuleRoots) == 1 {
		plan.Root = plan.RuleRoots[0]
	} else {
		plan.Root = &engine.UnionNode{Inputs: plan.RuleRoots}
	}
	if hasSemanticOIDs(prog) {
		plan.Root = &engine.FuseNode{Child: plan.Root}
	}
	if p.opts.DupElim {
		plan.Root = &engine.DedupNode{Child: plan.Root, Vars: []string{engine.ResultVar}}
	}
	trace.FromContext(ctx).Annotate("plan.rules", int64(len(prog.Rules)))
	return plan, nil
}

// hasSemanticOIDs reports whether any rule head derives object identities
// from skolem terms — MedMaker's semantic object-ids — in which case
// result objects sharing an id are fused into one. Constant or
// variable-carried oids do not trigger fusion: they fix identity without
// asserting that same-id derivations denote one entity.
func hasSemanticOIDs(prog *veao.Program) bool {
	for _, r := range prog.Rules {
		for _, h := range r.Head {
			op, ok := h.(*msl.ObjectPattern)
			if !ok {
				continue
			}
			if _, isSkolem := op.OID.(*msl.Skolem); isSkolem {
				return true
			}
		}
	}
	return false
}

// buildRule builds the physical chain for one logical rule.
func (p *Planner) buildRule(r *msl.Rule) (engine.Node, error) {
	var patterns, negated []*msl.PatternConjunct
	var preds []*msl.PredicateConjunct
	for _, c := range r.Tail {
		switch t := c.(type) {
		case *msl.PatternConjunct:
			if t.Source == "" {
				return nil, fmt.Errorf("plan: conjunct %s has no source; expand the query first", t)
			}
			if t.Negated {
				negated = append(negated, t)
			} else {
				patterns = append(patterns, t)
			}
		case *msl.PredicateConjunct:
			if !p.extfns.Knows(t.Name) {
				return nil, fmt.Errorf("plan: unknown predicate %q", t.Name)
			}
			preds = append(preds, t)
		default:
			return nil, fmt.Errorf("plan: unsupported conjunct %T", c)
		}
	}
	if len(patterns) == 0 {
		return nil, fmt.Errorf("plan: rule has no positive pattern conjuncts: %s", r)
	}
	patterns = p.order(patterns)
	headVars := r.HeadVars()
	// The positive chain must keep every variable the negated conjuncts
	// join on, in addition to the head variables.
	keep := varSet(headVars)
	for _, nc := range negated {
		addConjunctVars(keep, nc)
	}
	keepVars := setList(keep)

	var cur engine.Node
	var err error
	if p.opts.Parameterize {
		cur, err = p.buildChain(patterns, preds, keepVars)
	} else {
		cur, err = p.buildJoinTree(patterns, preds, keepVars)
	}
	if err != nil {
		return nil, err
	}
	// Negated conjuncts filter last (safe, stratified negation): every
	// variable they share with the positive part is bound by then.
	for _, nc := range negated {
		bound := map[string]bool{}
		for _, v := range cur.OutVars() {
			bound[v] = true
		}
		node, err := p.queryNode(nc, cur, bound, varSet(cur.OutVars()))
		if err != nil {
			return nil, err
		}
		cur = node
	}
	dedup := &engine.DedupNode{Child: cur, Vars: headVars}
	return &engine.ConstructNode{Child: dedup, Head: r.Head}, nil
}

// buildChain builds the default left-deep chain: query node, then one
// parameterized query node per remaining pattern, with external predicates
// slotted in as soon as applicable and projections keeping only the
// variables still needed downstream.
func (p *Planner) buildChain(patterns []*msl.PatternConjunct, preds []*msl.PredicateConjunct, headVars []string) (engine.Node, error) {
	// downstream[i] = variables needed at or after position i: head vars,
	// unplaced predicate vars, and later patterns' vars. Predicate vars
	// are conservatively included everywhere, since placement is greedy.
	downstream := make([]map[string]bool, len(patterns)+1)
	downstream[len(patterns)] = varSet(headVars)
	for _, pr := range preds {
		addConjunctVars(downstream[len(patterns)], pr)
	}
	for i := len(patterns) - 1; i >= 0; i-- {
		downstream[i] = copySet(downstream[i+1])
		addConjunctVars(downstream[i], patterns[i])
	}

	var cur engine.Node
	bound := map[string]bool{}
	placed := make([]bool, len(preds))
	placePreds := func(needed map[string]bool) {
		for i, pr := range preds {
			if placed[i] {
				continue
			}
			if p.extfns.CanEval(pr, bound) {
				placed[i] = true
				for v := range conjunctVarSet(pr) {
					bound[v] = true
				}
				cur = &engine.ExtPredNode{Child: cur, Pred: pr, Needed: intersect(bound, needed)}
			}
		}
	}
	for i, pc := range patterns {
		if cur != nil {
			placePreds(downstream[i])
		}
		node, err := p.queryNode(pc, cur, bound, downstream[i+1])
		if err != nil {
			return nil, err
		}
		cur = node
		for v := range conjunctVarSet(pc) {
			bound[v] = true
		}
	}
	placePreds(downstream[len(patterns)])
	for i, pr := range preds {
		if !placed[i] {
			return nil, fmt.Errorf("plan: no applicable implementation order for predicate %s; bindings available: %v",
				pr, setList(bound))
		}
	}
	return cur, nil
}

// buildJoinTree is the non-parameterized baseline: independent query
// nodes combined left-deep with hash joins (cross products when no
// variables are shared), predicates slotted in greedily.
func (p *Planner) buildJoinTree(patterns []*msl.PatternConjunct, preds []*msl.PredicateConjunct, headVars []string) (engine.Node, error) {
	bound := map[string]bool{}
	placed := make([]bool, len(preds))
	var cur engine.Node
	all := varSet(headVars)
	for _, pc := range patterns {
		addConjunctVars(all, pc)
	}
	for _, pr := range preds {
		addConjunctVars(all, pr)
	}
	needed := setList(all)
	for _, pc := range patterns {
		leaf, err := p.queryNode(pc, nil, map[string]bool{}, all)
		if err != nil {
			return nil, err
		}
		if cur == nil {
			cur = leaf
		} else {
			shared := setList(intersectSets(bound, conjunctVarSet(pc)))
			cur = &engine.JoinNode{Left: cur, Right: leaf, Shared: shared, Needed: needed}
		}
		for v := range conjunctVarSet(pc) {
			bound[v] = true
		}
		for i, pr := range preds {
			if !placed[i] && p.extfns.CanEval(pr, bound) {
				placed[i] = true
				cur = &engine.ExtPredNode{Child: cur, Pred: pr, Needed: needed}
				for v := range conjunctVarSet(pr) {
					bound[v] = true
				}
			}
		}
	}
	for i, pr := range preds {
		if !placed[i] {
			return nil, fmt.Errorf("plan: no applicable implementation order for predicate %s", pr)
		}
	}
	return cur, nil
}

// order sorts the pattern conjuncts per the configured strategy.
func (p *Planner) order(patterns []*msl.PatternConjunct) []*msl.PatternConjunct {
	out := append([]*msl.PatternConjunct(nil), patterns...)
	switch p.opts.Order {
	case OrderAsWritten:
		return out
	case OrderAdaptive:
		return p.orderAdaptive(out)
	case OrderReversed:
		sort.SliceStable(out, func(i, j int) bool {
			return conditionCount(out[i].Pattern) < conditionCount(out[j].Pattern)
		})
		return out
	case OrderStats:
		if p.stats != nil {
			type ranked struct {
				pc   *msl.PatternConjunct
				est  float64
				cost float64
				ok   bool
			}
			rs := make([]ranked, len(out))
			for i, pc := range out {
				est, ok := p.estimate(pc)
				if ok {
					// Cost, not just cardinality: a source whose answers
					// are mostly served from the wrapper-level cache is
					// cheap to consult however many rows it returns, so
					// its observed hit rate discounts the estimate and
					// pulls it outward in the join order.
					est *= p.costWeight(pc.Source)
				}
				rs[i] = ranked{pc, est, p.localCost(est), ok}
			}
			sort.SliceStable(rs, func(i, j int) bool {
				if rs[i].ok != rs[j].ok {
					return rs[i].ok // known estimates first
				}
				if rs[i].ok {
					if rs[i].cost != rs[j].cost {
						return rs[i].cost < rs[j].cost
					}
					// localCost plateaus where extra morsels still fit
					// free workers; raw estimates break those ties, so the
					// order on a serial executor is unchanged.
					return rs[i].est < rs[j].est
				}
				return conditionCount(rs[i].pc.Pattern) > conditionCount(rs[j].pc.Pattern)
			})
			for i := range rs {
				out[i] = rs[i].pc
			}
			return out
		}
		fallthrough
	default: // OrderHeuristic
		return orderByConditions(out)
	}
}

// estimate returns a cardinality estimate for a pattern conjunct: the
// learned shape-keyed statistics first (they see the conjunct's own
// conditions, so two differently-selective queries on one label stop
// sharing an estimate), the label-only bucket as fallback, then a
// label-count probe of the source (the paper's "sampling" fallback) when
// the source supports cheap counting.
func (p *Planner) estimate(pc *msl.PatternConjunct) (float64, bool) {
	label := labelKey(pc.Pattern)
	if p.stats != nil {
		if sent, _, err := p.sendPattern(pc, nil, false); err == nil {
			if est, ok := p.stats.Estimate(pc.Source, engine.ShapeOf(sent, nil)); ok {
				return est, true
			}
		}
		if est, ok := p.stats.Estimate(pc.Source, label); ok {
			return est, true
		}
	}
	if label == "*" {
		return 0, false
	}
	if src, ok := p.sources.Lookup(pc.Source); ok {
		if counter, can := src.(wrapper.Counter); can {
			if n, ok := counter.CountLabel(label); ok {
				est := float64(n)
				// A partitioned source's count is the whole union, but a
				// conjunct that pins the partition key routes to a single
				// member and scans only its share of the extent. Learned
				// statistics (above) need no such correction — they record
				// observed answer sizes, which already reflect routing.
				if sh, sharded := src.(wrapper.Sharded); sharded {
					if _, bound := wrapper.ShardKey(pc.Pattern, sh.KeyLabel()); bound {
						est /= float64(len(sh.Members()))
					}
				}
				return est, true
			}
		}
	}
	return 0, false
}

// localCost is the optimizer's model of the engine's morsel scheduler:
// the weighted estimate divided by the speedup the executor can reach on
// local (post-fetch) processing of that many rows — est/MorselRows
// morsels capped at Parallelism workers, never below 1. The cost grows
// with est until one morsel fills, plateaus while extra morsels still
// land on free workers, and grows at est/Parallelism beyond saturation.
// It is non-decreasing in est, so it can only introduce ties into the
// cardinality order, never inversions.
func (p *Planner) localCost(est float64) float64 {
	mr := p.opts.MorselRows
	if mr <= 0 {
		mr = engine.DefaultMorselRows
	}
	par := p.opts.Parallelism
	if par < 1 {
		par = 1
	}
	speedup := est / float64(mr)
	if speedup < 1 {
		speedup = 1
	}
	if speedup > float64(par) {
		speedup = float64(par)
	}
	return est / speedup
}

// costWeight returns the cost multiplier for consulting a source: 1 with
// no cache observations, shrinking toward 0.1 as the answer-cache hit
// rate recorded in the statistics store approaches 1. Exchanges answered
// from the cache never leave the mediator, so a well-cached source is
// nearly free regardless of its result sizes.
func (p *Planner) costWeight(source string) float64 {
	if p.stats == nil {
		return 1
	}
	rate, ok := p.stats.CacheHitRate(source)
	if !ok {
		return 1
	}
	return 1 - 0.9*rate
}

// conditionCount counts the constants in a pattern — the paper's "number
// of conditions" signal for join ordering.
func conditionCount(p *msl.ObjectPattern) int {
	n := 0
	if _, ok := p.OID.(*msl.Const); ok {
		n++
	}
	if _, ok := p.Label.(*msl.Const); ok {
		n++
	}
	switch v := p.Value.(type) {
	case *msl.Const:
		n++
	case *msl.SetPattern:
		for _, e := range v.Elems {
			if ep, ok := e.(*msl.ObjectPattern); ok {
				n += conditionCount(ep)
			}
		}
		for _, rc := range v.RestConstraints {
			n += conditionCount(rc)
		}
	}
	return n
}

func varSet(names []string) map[string]bool {
	out := make(map[string]bool, len(names))
	for _, n := range names {
		out[n] = true
	}
	return out
}

func conjunctVarSet(c msl.Conjunct) map[string]bool {
	tmp := &msl.Rule{Head: nil, Tail: []msl.Conjunct{c}}
	return varSet(tmp.Vars())
}

func addConjunctVars(dst map[string]bool, c msl.Conjunct) {
	for v := range conjunctVarSet(c) {
		dst[v] = true
	}
}

func copySet(s map[string]bool) map[string]bool {
	out := make(map[string]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func intersectSets(a, b map[string]bool) map[string]bool {
	out := map[string]bool{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func intersect(a, b map[string]bool) []string {
	return setList(intersectSets(a, b))
}

func setList(s map[string]bool) []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
