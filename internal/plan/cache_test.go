package plan

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"medmaker/internal/metrics"
	"medmaker/internal/msl"
)

func mustQuery(t *testing.T, text string) *msl.Rule {
	t.Helper()
	q, err := msl.ParseQuery(text)
	if err != nil {
		t.Fatalf("ParseQuery(%q): %v", text, err)
	}
	return q
}

func TestCacheKeyAlphaRenaming(t *testing.T) {
	a := mustQuery(t, `X :- X:<person {<name N> <dept 'CS'>}>@s.`)
	b := mustQuery(t, `Y :- Y:<person {<name M> <dept 'CS'>}>@s.`)
	if CacheKey(a) != CacheKey(b) {
		t.Errorf("alpha-equivalent queries got different keys:\n%q\n%q", CacheKey(a), CacheKey(b))
	}
	c := mustQuery(t, `X :- X:<person {<name N> <dept 'EE'>}>@s.`)
	if CacheKey(a) == CacheKey(c) {
		t.Errorf("distinct queries share a key: %q", CacheKey(a))
	}
}

func TestCacheKeyConjunctOrder(t *testing.T) {
	a := mustQuery(t, `<r {<n N> <s S>}> :- <p {<name N>}>@s1 AND <q {<sal S>}>@s2.`)
	b := mustQuery(t, `<r {<n N> <s S>}> :- <q {<sal S>}>@s2 AND <p {<name N>}>@s1.`)
	if CacheKey(a) != CacheKey(b) {
		t.Errorf("commuted conjuncts got different keys:\n%q\n%q", CacheKey(a), CacheKey(b))
	}
	// Reordering must also commute with renaming: same conjuncts, swapped
	// order AND swapped variable names.
	c := mustQuery(t, `<r {<n A> <s B>}> :- <q {<sal B>}>@s2 AND <p {<name A>}>@s1.`)
	if CacheKey(a) != CacheKey(c) {
		t.Errorf("commuted+renamed conjuncts got different keys:\n%q\n%q", CacheKey(a), CacheKey(c))
	}
}

func TestCacheLRUEviction(t *testing.T) {
	reg := metrics.NewRegistry()
	c := NewCache(CacheOptions{MaxEntries: 2, Metrics: reg})
	compile := func(context.Context) (*Compiled, error) { return &Compiled{}, nil }
	ctx := context.Background()
	for _, k := range []string{"a", "b", "a", "c"} { // "a" refreshed; "b" is LRU
		if _, _, err := c.GetOrCompile(ctx, k, compile); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := c.Get("b"); ok {
		t.Error("expected b evicted as least recently used")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("expected a retained (recently used)")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("stats = %+v, want 1 eviction and 2 entries", st)
	}
}

func TestCacheMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	c := NewCache(CacheOptions{MaxEntries: 1, Metrics: reg})
	ctx := context.Background()
	compile := func(context.Context) (*Compiled, error) { return &Compiled{}, nil }
	c.GetOrCompile(ctx, "a", compile) // miss
	c.GetOrCompile(ctx, "a", compile) // hit
	c.GetOrCompile(ctx, "b", compile) // miss, evicts a
	snap := reg.Snapshot()
	want := map[string]int64{"plancache.hit": 1, "plancache.miss": 2, "plancache.evict": 1}
	got := map[string]int64{}
	for _, ctr := range snap.Counters {
		got[ctr.Name] = ctr.Value
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s = %d, want %d", name, got[name], v)
		}
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := NewCache(CacheOptions{Metrics: metrics.NewRegistry()})
	var compiles atomic.Int32
	release := make(chan struct{})
	compile := func(context.Context) (*Compiled, error) {
		compiles.Add(1)
		<-release
		return &Compiled{}, nil
	}
	const callers = 8
	var wg sync.WaitGroup
	results := make([]*Compiled, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, _, err := c.GetOrCompile(context.Background(), "k", compile)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			results[i] = got
		}(i)
	}
	// Let the herd assemble on the single flight, then release the leader.
	for compiles.Load() == 0 {
	}
	close(release)
	wg.Wait()
	if n := compiles.Load(); n != 1 {
		t.Errorf("compiled %d times, want 1", n)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Errorf("caller %d got a different compilation", i)
		}
	}
}

func TestCacheCompileErrorNotCached(t *testing.T) {
	c := NewCache(CacheOptions{Metrics: metrics.NewRegistry()})
	boom := errors.New("boom")
	calls := 0
	_, _, err := c.GetOrCompile(context.Background(), "k", func(context.Context) (*Compiled, error) {
		calls++
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	got, _, err := c.GetOrCompile(context.Background(), "k", func(context.Context) (*Compiled, error) {
		calls++
		return &Compiled{}, nil
	})
	if err != nil || got == nil {
		t.Fatalf("retry after error: got %v, %v", got, err)
	}
	if calls != 2 {
		t.Errorf("compile ran %d times, want 2 (error not cached)", calls)
	}
}

func TestCacheInvalidateByDependency(t *testing.T) {
	c := NewCache(CacheOptions{Metrics: metrics.NewRegistry()})
	ctx := context.Background()
	mk := func(deps []string, all bool) func(context.Context) (*Compiled, error) {
		return func(context.Context) (*Compiled, error) {
			return &Compiled{Deps: deps, DependsOnAll: all}, nil
		}
	}
	c.GetOrCompile(ctx, "uses-s1", mk([]string{"s1"}, false))
	c.GetOrCompile(ctx, "uses-s2", mk([]string{"s2"}, false))
	c.GetOrCompile(ctx, "uses-both", mk([]string{"s1", "s2"}, false))
	c.GetOrCompile(ctx, "uses-any", mk(nil, true))

	if n := c.Invalidate("s1"); n != 3 { // uses-s1, uses-both, uses-any
		t.Errorf("Invalidate(s1) dropped %d, want 3", n)
	}
	if _, ok := c.Get("uses-s2"); !ok {
		t.Error("expected the s2-only plan to survive Invalidate(s1)")
	}
	if _, ok := c.Get("uses-s1"); ok {
		t.Error("expected the s1 plan dropped")
	}
	c.GetOrCompile(ctx, "uses-s1", mk([]string{"s1"}, false))
	if n := c.Invalidate(""); n != 2 { // everything: uses-s2 + uses-s1
		t.Errorf("Invalidate(\"\") dropped %d, want 2", n)
	}
	if st := c.Stats(); st.Entries != 0 || st.Invalidated != 5 {
		t.Errorf("stats = %+v, want 0 entries and 5 invalidated", st)
	}
}

func TestCacheWaiterCancellation(t *testing.T) {
	c := NewCache(CacheOptions{Metrics: metrics.NewRegistry()})
	started := make(chan struct{})
	release := make(chan struct{})
	go c.GetOrCompile(context.Background(), "k", func(context.Context) (*Compiled, error) {
		close(started)
		<-release
		return &Compiled{}, nil
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrCompile(ctx, "k", func(context.Context) (*Compiled, error) {
			return nil, fmt.Errorf("waiter must not compile")
		})
		errc <- err
	}()
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled waiter returned %v, want context.Canceled", err)
	}
	close(release)
}
