package plan

import (
	"strings"
	"testing"

	"medmaker/internal/engine"
	"medmaker/internal/extfn"
	"medmaker/internal/msl"
	"medmaker/internal/oem"
	"medmaker/internal/oemstore"
	"medmaker/internal/veao"
	"medmaker/internal/wrapper"
)

// testWorld builds a registry with two sources and an extfn table with
// decomp declared.
func testWorld(t *testing.T) (*wrapper.Registry, *extfn.Table) {
	t.Helper()
	whois, err := oemstore.FromText("whois", `
	    <person, set, {<name, 'Joe Chung'>, <dept, 'CS'>, <relation, 'employee'>, <e_mail, 'chung@cs'>}>
	    <person, set, {<name, 'Nick Naive'>, <dept, 'CS'>, <relation, 'student'>, <year, 3>}>`)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := oemstore.FromText("cs", `
	    <employee, set, {<first_name, 'Joe'>, <last_name, 'Chung'>, <title, 'professor'>, <reports_to, 'John Hennessy'>}>
	    <student, set, {<first_name, 'Nick'>, <last_name, 'Naive'>, <year, 3>}>`)
	if err != nil {
		t.Fatal(err)
	}
	reg := wrapper.NewRegistry()
	reg.Add(whois, cs)
	decls := msl.MustParseProgram(`
	    decomp(bound, free, free) by name_to_lnfn.
	    decomp(free, bound, bound) by lnfn_to_name.`).Decls
	table, err := extfn.NewTable(extfn.NewRegistry(), decls)
	if err != nil {
		t.Fatal(err)
	}
	return reg, table
}

// r2 is the logical datamerge rule of the paper's Section 3.1.
const r2 = `
<cs_person {<name 'Joe Chung'> <relation R> Rest1 Rest2}> :-
    <person {<name 'Joe Chung'> <dept 'CS'> <relation R> | Rest1}>@whois
    AND <R {<first_name FN> <last_name LN> | Rest2}>@cs
    AND decomp('Joe Chung', LN, FN).`

func logicalProgram(t *testing.T, rules ...string) *veao.Program {
	t.Helper()
	prog := &veao.Program{}
	for _, src := range rules {
		prog.Rules = append(prog.Rules, msl.MustParseRule(src))
	}
	return prog
}

func executor(reg *wrapper.Registry, tbl *extfn.Table) *engine.Executor {
	return &engine.Executor{Sources: reg, Extfn: tbl, IDGen: oem.NewIDGen("t"), Stats: engine.NewStats()}
}

// TestPlanR2Shape reproduces the plan of Figure 3.6: whois query node,
// decomp external-predicate node, parameterized cs query, construct.
func TestPlanR2Shape(t *testing.T) {
	reg, tbl := testWorld(t)
	p := New(reg, tbl, nil, DefaultOptions())
	physical, err := p.Build(logicalProgram(t, r2))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	physical.Print(&sb)
	graph := sb.String()
	order := []string{"dedup: on _result", "construct", "dedup: on R", "param-query(cs)", "external-pred(decomp)", "query(whois)"}
	pos := -1
	for _, want := range order {
		idx := strings.Index(graph, want)
		if idx < 0 {
			t.Fatalf("graph missing %q:\n%s", want, graph)
		}
		if idx < pos {
			t.Fatalf("graph order wrong, %q appears too early:\n%s", want, graph)
		}
		pos = idx
	}
	// Parameterized query shows the $-marked template, like Qcs.
	if !strings.Contains(graph, "$R") && !strings.Contains(graph, "$LN") {
		t.Fatalf("parameterized template not shown:\n%s", graph)
	}
}

// TestPlanR2Executes runs the R2 plan and checks the Figure 2.4 result.
func TestPlanR2Executes(t *testing.T) {
	reg, tbl := testWorld(t)
	p := New(reg, tbl, nil, DefaultOptions())
	physical, err := p.Build(logicalProgram(t, r2))
	if err != nil {
		t.Fatal(err)
	}
	got, err := executor(reg, tbl).RunObjects(physical.Root)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("R2 produced %d objects:\n%s", len(got), oem.Format(got...))
	}
	want := oem.MustParse(`<cs_person, set, {
	    <name, 'Joe Chung'>, <relation, 'employee'>, <e_mail, 'chung@cs'>,
	    <title, 'professor'>, <reports_to, 'John Hennessy'>}>`)[0]
	if !got[0].StructuralEqual(want) {
		t.Fatalf("R2 result differs:\n%s", oem.Format(got[0]))
	}
}

// TestHeuristicOrder checks "outer patterns have the greatest number of
// conditions": the whois pattern (2 constants) precedes the cs pattern
// (0 constants) regardless of written order.
func TestHeuristicOrder(t *testing.T) {
	reg, tbl := testWorld(t)
	reversedText := `
	<out {<relation R> Rest2}> :-
	    <R {<first_name FN> | Rest2}>@cs
	    AND <person {<name 'Joe Chung'> <dept 'CS'> <relation R>}>@whois.`
	p := New(reg, tbl, nil, DefaultOptions())
	physical, err := p.Build(logicalProgram(t, reversedText))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	physical.Print(&sb)
	graph := sb.String()
	// The leaf (deepest) node must be the whois query.
	lines := strings.Split(strings.TrimSpace(graph), "\n")
	leaf := lines[len(lines)-1]
	if !strings.Contains(leaf, "query(whois)") {
		t.Fatalf("heuristic did not place whois outermost:\n%s", graph)
	}
}

func TestOrderModes(t *testing.T) {
	reg, tbl := testWorld(t)
	rule := `
	<out {<relation R>}> :-
	    <R {<first_name FN>}>@cs
	    AND <person {<name 'Joe Chung'> <relation R>}>@whois.`
	leafOf := func(opts Options, stats *engine.Stats) string {
		p := New(reg, tbl, stats, opts)
		physical, err := p.Build(logicalProgram(t, rule))
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		physical.Print(&sb)
		lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
		return lines[len(lines)-1]
	}
	if leaf := leafOf(Options{Order: OrderAsWritten, PushConditions: true, Parameterize: true}, nil); !strings.Contains(leaf, "cs") {
		t.Errorf("as-written leaf: %s", leaf)
	}
	if leaf := leafOf(Options{Order: OrderHeuristic, PushConditions: true, Parameterize: true}, nil); !strings.Contains(leaf, "whois") {
		t.Errorf("heuristic leaf: %s", leaf)
	}
	if leaf := leafOf(Options{Order: OrderReversed, PushConditions: true, Parameterize: true}, nil); !strings.Contains(leaf, "cs") {
		t.Errorf("reversed leaf: %s", leaf)
	}
	// Stats mode: teach the store that cs/anything is tiny and whois
	// large; the cs pattern then goes outermost despite fewer conditions.
	stats := engine.NewStats()
	for i := 0; i < 3; i++ {
		stats.Record("cs", "*", 1)
		stats.Record("whois", "person", 1000)
	}
	if leaf := leafOf(Options{Order: OrderStats, PushConditions: true, Parameterize: true}, stats); !strings.Contains(leaf, "cs") {
		t.Errorf("stats leaf: %s", leaf)
	}
}

// TestJoinBaseline checks the non-parameterized plan shape and execution.
func TestJoinBaseline(t *testing.T) {
	reg, tbl := testWorld(t)
	opts := DefaultOptions()
	opts.Parameterize = false
	p := New(reg, tbl, nil, opts)
	physical, err := p.Build(logicalProgram(t, r2))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	physical.Print(&sb)
	if !strings.Contains(sb.String(), "hash-join") {
		t.Fatalf("baseline plan lacks a join:\n%s", sb.String())
	}
	got, err := executor(reg, tbl).RunObjects(physical.Root)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("baseline produced %d objects", len(got))
	}
}

// TestRelaxForLimitedSource: a source without value conditions receives a
// relaxed query; answers are still correct because extraction re-matches.
func TestRelaxForLimitedSource(t *testing.T) {
	reg, tbl := testWorld(t)
	inner, _ := reg.Lookup("whois")
	reg.Add(&wrapper.Limited{Inner: inner, Caps: wrapper.Capabilities{MultiPattern: true}})
	p := New(reg, tbl, nil, DefaultOptions())
	rule := `<out N> :- <person {<name N> <dept 'CS'> <relation 'student'> | R1}>@whois.`
	physical, err := p.Build(logicalProgram(t, rule))
	if err != nil {
		t.Fatal(err)
	}
	got, err := executor(reg, tbl).RunObjects(physical.Root)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("relaxed plan returned %d objects:\n%s", len(got), oem.Format(got...))
	}
	if v, _ := got[0].AtomString(); v != "Nick Naive" {
		t.Fatalf("relaxed query returned wrong person: %s", v)
	}
}

// TestNoPushdownAblation: with PushConditions off the plan still answers
// correctly (filtering moves to the mediator).
func TestNoPushdownAblation(t *testing.T) {
	reg, tbl := testWorld(t)
	opts := DefaultOptions()
	opts.PushConditions = false
	p := New(reg, tbl, nil, opts)
	physical, err := p.Build(logicalProgram(t, r2))
	if err != nil {
		t.Fatal(err)
	}
	// The sent queries must not contain the constant.
	var sb strings.Builder
	physical.Print(&sb)
	if strings.Contains(sb.String(), "query(whois): _O :- _O:<person {<name 'Joe Chung'>") {
		t.Fatalf("condition leaked into the sent query:\n%s", sb.String())
	}
	got, err := executor(reg, tbl).RunObjects(physical.Root)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("no-pushdown plan produced %d objects", len(got))
	}
}

func TestWildcardRelaxation(t *testing.T) {
	reg, tbl := testWorld(t)
	// The oemstore supports wildcards; wrap it to forbid them.
	inner, _ := reg.Lookup("whois")
	reg.Add(&wrapper.Limited{Inner: inner, Caps: wrapper.Capabilities{
		ValueConditions: true, RestConstraints: true, MultiPattern: true}})
	p := New(reg, tbl, nil, DefaultOptions())
	rule := `<out E> :- <%e_mail E>@whois.`
	physical, err := p.Build(logicalProgram(t, rule))
	if err != nil {
		t.Fatal(err)
	}
	got, err := executor(reg, tbl).RunObjects(physical.Root)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("wildcard against limited source: %d objects", len(got))
	}
	if v, _ := got[0].AtomString(); v != "chung@cs" {
		t.Fatalf("wrong wildcard result: %s", v)
	}
}

// TestColdStartCounting: with OrderStats and an empty statistics store,
// the planner probes sources via the Counter interface and orders the
// small one outermost, despite the big pattern having more conditions.
func TestColdStartCounting(t *testing.T) {
	big, err := oemstore.FromText("big", strings.Repeat(`<reading, set, {<city, 'PA'>, <sensor, 's1'>}> `, 50))
	if err != nil {
		t.Fatal(err)
	}
	small, err := oemstore.FromText("small", `<sensor_info, set, {<sensor, 's1'>, <owner, 'lab'>}>`)
	if err != nil {
		t.Fatal(err)
	}
	reg := wrapper.NewRegistry()
	reg.Add(big, small)
	tbl, _ := extfn.NewTable(extfn.NewRegistry(), nil)
	opts := DefaultOptions()
	opts.Order = OrderStats
	p := New(reg, tbl, engine.NewStats(), opts) // empty stats: counts decide
	rule := `<out S> :-
	    <reading {<city 'PA'> <sensor S>}>@big
	    AND <sensor_info {<sensor S>}>@small.`
	physical, err := p.Build(logicalProgram(t, rule))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	physical.Print(&sb)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if !strings.Contains(lines[len(lines)-1], "query(small)") {
		t.Fatalf("count probe did not drive the order:\n%s", sb.String())
	}
	// Sanity: the plan still answers.
	got, err := executor(reg, tbl).RunObjects(physical.Root)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("count-ordered plan returned %d objects", len(got))
	}
}

func TestPlanErrors(t *testing.T) {
	reg, tbl := testWorld(t)
	p := New(reg, tbl, nil, DefaultOptions())
	cases := []string{
		`<out {X}> :- <a {X}>.`,                                     // no source
		`<out {X}> :- <a {X}>@nowhere.`,                             // unknown source
		`<out X> :- mystery(X).`,                                    // unknown predicate
		`<out X> :- decomp(A, B, C).`,                               // no pattern conjuncts
		`<out N> :- <person {<name N>}>@whois AND decomp(X, Y, Z).`, // never evaluable
	}
	for _, src := range cases {
		if _, err := p.Build(logicalProgram(t, src)); err == nil {
			t.Errorf("plan for %q built without error", src)
		}
	}
}

func TestEmptyProgramPlan(t *testing.T) {
	reg, tbl := testWorld(t)
	p := New(reg, tbl, nil, DefaultOptions())
	physical, err := p.Build(&veao.Program{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := executor(reg, tbl).RunObjects(physical.Root)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("empty program produced objects")
	}
}

func TestConditionCount(t *testing.T) {
	cases := []struct {
		src  string
		want int
	}{
		{`<person {<name N>}>`, 2},                 // top + element label consts
		{`<person {<name 'Joe'>}>`, 3},             // + elem label + value
		{`<person {<name 'Joe'> <dept 'CS'>}>`, 5}, //
		{`<R {<first_name FN>}>`, 1},               // label var
		{`<person {| R:{<year 3>}}>`, 3},           // rest constraint counts
		{`<&p1 person V>`, 2},                      // oid + label
	}
	for _, c := range cases {
		r := msl.MustParseRule("X :- X:" + c.src + "@s.")
		pc := r.Tail[0].(*msl.PatternConjunct)
		if got := conditionCount(pc.Pattern); got != c.want {
			t.Errorf("conditionCount(%s) = %d, want %d", c.src, got, c.want)
		}
	}
}
