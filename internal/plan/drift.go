package plan

import (
	"medmaker/internal/engine"
)

// DriftRatio is the estimate-vs-store divergence beyond which a cached
// plan is considered drifted: the store's current estimate for a node's
// shape differs from the estimate the plan was built with by more than
// this factor either way. It matches trace.MisestimateRatio — a plan
// whose nodes would be flagged MISESTIMATE by EXPLAIN ANALYZE is exactly
// the plan worth replanning.
const DriftRatio = 4.0

// Drifted reports whether the statistics the plan was compiled under
// have moved enough that recompiling could pick a different plan. It is
// cheap by construction: an unchanged store generation answers false
// without touching the graph, and otherwise the check is a walk of the
// plan's query nodes against the store — no source round-trips.
//
// A node drifted when the store now holds a shape-keyed estimate that
// diverges from the node's compiled-in estimate by more than ratio
// (either way), or when the node was compiled with no estimate at all
// and the store has since learned a materially non-trivial one. ratio
// <= 0 means DriftRatio.
func Drifted(c *Compiled, stats *engine.Stats, ratio float64) bool {
	if c == nil || c.Plan == nil || stats == nil {
		return false
	}
	if stats.Generation() == c.StatsGen {
		return false
	}
	if ratio <= 0 {
		ratio = DriftRatio
	}
	drifted := false
	walkNodes(c.Plan.Root, func(n engine.Node) {
		if drifted {
			return
		}
		qn, ok := n.(*engine.QueryNode)
		if !ok || qn.Shape == "" {
			return
		}
		est, known := stats.Estimate(qn.Source, qn.Shape)
		if !known {
			return // nothing learned about this node's shape yet
		}
		if !qn.HasEst {
			// Compiled blind; a learned estimate of ratio rows or more
			// is enough to move a join order.
			drifted = est >= ratio
			return
		}
		drifted = diverged(qn.EstRows, est, ratio)
	})
	return drifted
}

// diverged reports whether two cardinality estimates differ by more than
// ratio in either direction; estimates both below one row are equal.
func diverged(a, b, ratio float64) bool {
	if a < 1 && b < 1 {
		return false
	}
	hi, lo := a, b
	if b > a {
		hi, lo = b, a
	}
	if lo <= 0 {
		return hi >= ratio
	}
	return hi/lo > ratio
}

// walkNodes visits every node of the graph, pre-order.
func walkNodes(n engine.Node, visit func(engine.Node)) {
	if n == nil {
		return
	}
	visit(n)
	for _, k := range n.Kids() {
		walkNodes(k, visit)
	}
}
