package plan

import (
	"container/list"
	"context"
	"sort"
	"sync"

	"medmaker/internal/metrics"
	"medmaker/internal/msl"
	"medmaker/internal/veao"
	"medmaker/internal/wrapper"
)

// DefaultCacheEntries is the plan-cache capacity used when
// CacheOptions.MaxEntries is zero.
const DefaultCacheEntries = 512

// CacheOptions configure a compiled-plan cache (see Cache).
type CacheOptions struct {
	// MaxEntries bounds the number of cached plans; the least recently
	// used entry is evicted beyond it. 0 means DefaultCacheEntries.
	MaxEntries int
	// Metrics receives plancache.hit / plancache.miss / plancache.evict /
	// plancache.invalidate counters. Nil means the process-wide default
	// registry.
	Metrics *metrics.Registry
}

// CacheStats is a snapshot of a plan cache's counters. Invalidated counts
// entries dropped by Invalidate (a dependency changed), Evictions entries
// displaced by the capacity bound, Refreshed entries replaced by a
// completed drift revalidation (see BeginRefresh).
type CacheStats struct {
	Hits, Misses, Evictions, Invalidated, Refreshed, Entries int
}

// Compiled is one cached compilation: the physical plan, the expanded
// logical program it came from, and the names the plan depends on for
// invalidation purposes.
type Compiled struct {
	// Plan is the physical datamerge graph. Plans are immutable operator
	// descriptions — all execution state lives in the engine's per-run
	// state — so one cached plan serves any number of concurrent queries.
	Plan *Plan
	// Program is the expanded logical program the plan was built from.
	Program *veao.Program
	// Deps are the names whose invalidation must drop this plan: the
	// source names the expanded program reads plus the mediator view
	// labels the original query referenced.
	Deps []string
	// DependsOnAll marks a plan whose dependencies could not be
	// determined statically (a variable view label, say): any
	// invalidation drops it.
	DependsOnAll bool
	// StatsGen is the statistics-store generation the plan was compiled
	// under (Stats.Generation at compile time). Drift revalidation
	// compares it against the current generation: an unchanged store
	// cannot have drifted, so the check is free on the hot path.
	StatsGen uint64
}

// dependsOn reports whether invalidating name must drop this entry.
func (c *Compiled) dependsOn(name string) bool {
	if name == "" || c.DependsOnAll {
		return true
	}
	i := sort.SearchStrings(c.Deps, name)
	return i < len(c.Deps) && c.Deps[i] == name
}

// Cache is a bounded LRU of compiled query plans keyed by CacheKey, with
// singleflighted compilation: when N cold clients ask for the same plan
// concurrently, one compiles and the rest wait for its result, so a
// thundering herd of identical queries costs one parse→expand→plan pass.
//
// Invalidation is dependency-driven (see Compiled.Deps): a mediator wires
// its Invalidate walk and AddSource replacements into Invalidate here, so
// plans built against a source that changed — data or capabilities — are
// recompiled on next use.
type Cache struct {
	max int

	hitCtr, missCtr, evictCtr, invalCtr, refreshCtr *metrics.Counter

	mu          sync.Mutex
	lru         *list.List // front = most recently used
	entries     map[string]*list.Element
	inflight    map[string]*compileFlight
	refreshing  map[string]bool
	hits        int
	misses      int
	evictions   int
	invalidated int
	refreshed   int
}

// compileFlight is one in-progress compilation; concurrent misses on the
// same key wait for the leader's result instead of each compiling.
type compileFlight struct {
	done     chan struct{} // closed when compilation finished
	compiled *Compiled
	err      error
}

type cacheEntry struct {
	key      string
	compiled *Compiled
}

// NewCache returns an empty plan cache.
func NewCache(opts CacheOptions) *Cache {
	max := opts.MaxEntries
	if max <= 0 {
		max = DefaultCacheEntries
	}
	reg := opts.Metrics
	if reg == nil {
		reg = metrics.Default()
	}
	return &Cache{
		max:        max,
		hitCtr:     reg.Counter("plancache.hit"),
		missCtr:    reg.Counter("plancache.miss"),
		evictCtr:   reg.Counter("plancache.evict"),
		invalCtr:   reg.Counter("plancache.invalidate"),
		refreshCtr: reg.Counter("plancache.refresh"),
		lru:        list.New(),
		entries:    make(map[string]*list.Element),
		inflight:   make(map[string]*compileFlight),
		refreshing: make(map[string]bool),
	}
}

// CacheKey returns the canonical cache key of a query: the rule with its
// tail conjuncts sorted by structural shape (conjunction is commutative;
// the optimizer picks its own join order anyway) and its variables
// alpha-renamed to positional names. Queries identical up to variable
// naming and condition order — the repeated-template traffic a serving
// tier sees — share one compiled plan. Distinct queries can never
// collide: the key is a complete rendering of the canonicalized rule.
func CacheKey(q *msl.Rule) string {
	canon := q.Clone()
	shapes := make([]string, len(canon.Tail))
	for i, c := range canon.Tail {
		shapes[i] = conjunctShape(c)
	}
	sort.SliceStable(canon.Tail, func(i, j int) bool { return shapes[i] < shapes[j] })
	return wrapper.NormalizeQuery(canon)
}

// conjunctShape renders a conjunct with every variable collapsed to one
// name, giving a sort key that is stable under alpha-renaming. Ties keep
// textual order (stable sort), which can only split equivalent queries
// into different keys — a false miss, never a false hit.
func conjunctShape(c msl.Conjunct) string {
	tmp := &msl.Rule{Tail: []msl.Conjunct{c}}
	return tmp.RenameVars(func(string) string { return "V" }).String()
}

// Get returns the cached compilation for key, refreshing its recency.
func (c *Cache) Get(key string) (*Compiled, bool) {
	c.mu.Lock()
	compiled, ok := c.lookupLocked(key)
	c.mu.Unlock()
	c.count(ok)
	return compiled, ok
}

// lookupLocked consults the table under c.mu, counting hit/miss locally
// (metrics counters are bumped outside the lock by count).
func (c *Cache) lookupLocked(key string) (*Compiled, bool) {
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).compiled, true
	}
	c.misses++
	return nil, false
}

func (c *Cache) count(hit bool) {
	if hit {
		c.hitCtr.Inc()
	} else {
		c.missCtr.Inc()
	}
}

// GetOrCompile returns the compilation for key, invoking compile on a
// miss. Concurrent misses on one key are deduplicated: the first caller
// compiles, the others wait for its result (or their own context's end).
// A failed compilation is not cached — one waiter retries, so transient
// failures (a cancelled leader, a source probe error) do not fan out.
// hit reports whether the answer came from the cache without waiting on a
// compilation.
func (c *Cache) GetOrCompile(ctx context.Context, key string, compile func(context.Context) (*Compiled, error)) (compiled *Compiled, hit bool, err error) {
	for {
		c.mu.Lock()
		compiled, ok := c.lookupLocked(key)
		if ok {
			c.mu.Unlock()
			c.count(true)
			return compiled, true, nil
		}
		f, joined := c.inflight[key]
		if !joined {
			f = &compileFlight{done: make(chan struct{})}
			c.inflight[key] = f
		}
		c.mu.Unlock()
		c.count(false)

		if joined {
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if f.err == nil {
				return f.compiled, false, nil
			}
			// The leader failed; loop so one waiter becomes the new
			// leader and retries (its lookup counts a fresh miss).
			continue
		}

		compiled, err = compile(ctx)
		if err == nil {
			c.store(key, compiled)
		}
		f.compiled, f.err = compiled, err
		// The flight leaves the table only after a successful result was
		// stored, so a caller never finds both the entry and the flight
		// missing while the plan exists.
		c.mu.Lock()
		delete(c.inflight, key)
		c.mu.Unlock()
		close(f.done)
		if err != nil {
			return nil, false, err
		}
		return compiled, false, nil
	}
}

// store inserts (or refreshes) the compilation for key, evicting the
// least recently used entries beyond the capacity bound.
func (c *Cache) store(key string, compiled *Compiled) {
	sort.Strings(compiled.Deps)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).compiled = compiled
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, compiled: compiled})
	for c.lru.Len() > c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
		c.evictCtr.Inc()
	}
}

// BeginRefresh claims the right to revalidate key's cached plan in the
// background. It returns true for exactly one caller at a time
// (singleflight per key): the claimant replans and calls CompleteRefresh
// with the result; every other caller — and every caller while a refresh
// is in flight — gets false and keeps serving the current entry. The old
// plan is never dropped up front: a drifted plan is still a correct
// plan, just a possibly slow one, so queries never wait on revalidation.
func (c *Cache) BeginRefresh(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.refreshing[key] {
		return false
	}
	if _, ok := c.entries[key]; !ok {
		return false // dropped since the hit; the next miss recompiles anyway
	}
	c.refreshing[key] = true
	return true
}

// CompleteRefresh ends the refresh BeginRefresh granted for key. A
// non-nil compiled replaces the cached entry (counted under Refreshed
// and plancache.refresh); nil — the replan failed or was abandoned —
// just clears the claim so a later drift check may try again.
func (c *Cache) CompleteRefresh(key string, compiled *Compiled) {
	if compiled != nil {
		c.store(key, compiled)
	}
	c.mu.Lock()
	delete(c.refreshing, key)
	if compiled != nil {
		c.refreshed++
	}
	c.mu.Unlock()
	if compiled != nil {
		c.refreshCtr.Inc()
	}
}

// Invalidate drops every cached plan depending on name — a source name or
// a mediator view label; "" drops everything. In-flight compilations are
// not interrupted: their result may briefly re-enter the cache stale,
// which the next Invalidate of the same name also covers, and a stale
// plan is at worst built against the old source like a query already
// executing. Returns the number of plans dropped.
func (c *Cache) Invalidate(name string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	var next *list.Element
	for el := c.lru.Front(); el != nil; el = next {
		next = el.Next()
		e := el.Value.(*cacheEntry)
		if !e.compiled.dependsOn(name) {
			continue
		}
		c.lru.Remove(el)
		delete(c.entries, e.key)
		n++
	}
	c.invalidated += n
	c.invalCtr.Add(int64(n))
	return n
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:        c.hits,
		Misses:      c.misses,
		Evictions:   c.evictions,
		Invalidated: c.invalidated,
		Refreshed:   c.refreshed,
		Entries:     c.lru.Len(),
	}
}
