package plan

import (
	"sort"

	"medmaker/internal/engine"
	"medmaker/internal/msl"
)

// This file implements OrderAdaptive: join ordering driven by the
// execution feedback the engine folds into the statistics store. The
// paper's heuristic ranks conjuncts independently (most conditions
// outermost); the statistics order ranks them independently by estimated
// size. Both miss the defining property of the left-deep bind-join chain
// the planner actually builds: once the outer conjunct binds a join
// variable, the inner conjunct is not fetched whole — it is queried once
// per outer row with the binding pushed as a constant. Its real cost is
// outer cardinality × per-parameterized-query cost, and its real output
// is outer cardinality × learned selectivity. OrderAdaptive simulates
// each candidate order, propagating the bound-variable set exactly as
// buildChain will, and prices every position with the shape-keyed
// estimates the previous executions recorded.

const (
	// exchangeOverhead is the fixed per-exchange cost, in row units: the
	// round-trip a query costs even when it answers nothing. It is what
	// makes "3000 point queries against the big side" more expensive than
	// "8 point queries against the small side" even if both answer one
	// row each.
	exchangeOverhead = 2.0
	// defaultFetchRows prices a conjunct the store and the source can say
	// nothing about — deliberately pessimistic, so unknown extents are
	// not pulled outward.
	defaultFetchRows = 1000.0
	// adaptiveExhaustiveMax is the rule length up to which every
	// permutation is costed (5! = 120 candidates); longer rules order
	// greedily.
	adaptiveExhaustiveMax = 5
	// joinCPUWeight prices the mediator-side join work of an
	// unparameterized inner conjunct (extraction under every outer row).
	joinCPUWeight = 0.001
	// cardTieWeight breaks cost ties toward orders with smaller final
	// cardinality.
	cardTieWeight = 1e-6
)

// orderAdaptive returns the cheapest order under the bind-join cost
// model, falling back to the paper's heuristic until the statistics
// store has at least one observation about the rule's conjuncts (the
// cold-start plan; feedback from its execution makes the next plan
// adaptive).
func (p *Planner) orderAdaptive(patterns []*msl.PatternConjunct) []*msl.PatternConjunct {
	if p.stats == nil || len(patterns) < 2 || !p.hasObservations(patterns) {
		return orderByConditions(patterns)
	}
	// Start from the heuristic order so cost ties resolve to it.
	patterns = orderByConditions(patterns)
	base := p.baseEstimates(patterns)
	if len(patterns) <= adaptiveExhaustiveMax {
		return p.bestPermutation(patterns, base)
	}
	return p.greedyOrder(patterns, base)
}

// orderByConditions is the paper's heuristic: most conditions outermost.
func orderByConditions(patterns []*msl.PatternConjunct) []*msl.PatternConjunct {
	sort.SliceStable(patterns, func(i, j int) bool {
		return conditionCount(patterns[i].Pattern) > conditionCount(patterns[j].Pattern)
	})
	return patterns
}

// hasObservations reports whether the store knows anything about any of
// the conjuncts — under the shape key or the label fallback.
func (p *Planner) hasObservations(patterns []*msl.PatternConjunct) bool {
	for _, pc := range patterns {
		if sent, _, err := p.sendPattern(pc, nil, false); err == nil {
			if _, ok := p.stats.Estimate(pc.Source, engine.ShapeOf(sent, nil)); ok {
				return true
			}
		}
		if _, ok := p.stats.Estimate(pc.Source, labelKey(pc.Pattern)); ok {
			return true
		}
	}
	return false
}

// baseEstimates memoizes each conjunct's unbound fetch cardinality (the
// full estimate chain, including the CountLabel probe) so permutation
// search probes each source at most once.
func (p *Planner) baseEstimates(patterns []*msl.PatternConjunct) map[*msl.PatternConjunct]float64 {
	out := make(map[*msl.PatternConjunct]float64, len(patterns))
	for _, pc := range patterns {
		if est, ok := p.estimate(pc); ok {
			out[pc] = est
		} else {
			out[pc] = defaultFetchRows
		}
	}
	return out
}

// stepCost prices placing pc at position pos of a candidate order, given
// the variables bound so far and the running outer cardinality. It
// returns the cost the position adds and the cardinality flowing out of
// it.
func (p *Planner) stepCost(pc *msl.PatternConjunct, pos int, bound map[string]bool, card float64, base map[*msl.PatternConjunct]float64) (cost, outCard float64) {
	w := p.costWeight(pc.Source) * p.latencyWeight(pc.Source)
	sent, paramVars, err := p.sendPattern(pc, bound, pos > 0)
	if err != nil {
		return 0, card // unknown source: buildRule reports it; price neutrally
	}
	if len(paramVars) > 0 {
		// Bind join: one parameterized query per outer row. perQuery is
		// the learned answer size of the parameterized shape; the "|out"
		// entry is the learned rows-out-per-row-in selectivity the
		// feedback loop recorded for this exact shape.
		shape := engine.ShapeOf(sent, engine.ShapeVars(paramVars))
		perQuery, okPQ := p.stats.Estimate(pc.Source, shape)
		sel, okSel := p.stats.Estimate(pc.Source, shape+"|out")
		switch {
		case !okPQ && okSel:
			perQuery = sel
		case !okPQ:
			perQuery = 1
		}
		if !okSel {
			sel = perQuery
		}
		return card * w * (exchangeOverhead + perQuery), card * sel
	}
	fetch := base[pc]
	cost = w * (exchangeOverhead + p.localCost(fetch))
	if pos == 0 {
		return cost, fetch
	}
	// Unbound inner conjunct: fetched whole (batching dedups the
	// per-row queries to one) and joined at the mediator; the join work
	// scales with the candidate pair count.
	return cost + joinCPUWeight*card*fetch, card * fetch
}

// orderCost prices a complete candidate order.
func (p *Planner) orderCost(order []*msl.PatternConjunct, base map[*msl.PatternConjunct]float64) float64 {
	bound := map[string]bool{}
	card := 1.0
	total := 0.0
	for i, pc := range order {
		cost, out := p.stepCost(pc, i, bound, card, base)
		total += cost
		card = out
		addConjunctVars(bound, pc)
	}
	return total + cardTieWeight*card
}

// bestPermutation costs every permutation (Heap's algorithm) and returns
// the cheapest; the input order (heuristic) wins ties.
func (p *Planner) bestPermutation(patterns []*msl.PatternConjunct, base map[*msl.PatternConjunct]float64) []*msl.PatternConjunct {
	cur := append([]*msl.PatternConjunct(nil), patterns...)
	best := append([]*msl.PatternConjunct(nil), patterns...)
	bestCost := p.orderCost(cur, base)
	n := len(cur)
	c := make([]int, n)
	for i := 0; i < n; {
		if c[i] < i {
			if i%2 == 0 {
				cur[0], cur[i] = cur[i], cur[0]
			} else {
				cur[c[i]], cur[i] = cur[i], cur[c[i]]
			}
			if cost := p.orderCost(cur, base); cost < bestCost {
				bestCost = cost
				copy(best, cur)
			}
			c[i]++
			i = 0
		} else {
			c[i] = 0
			i++
		}
	}
	return best
}

// greedyOrder builds the order one position at a time, always appending
// the conjunct with the lowest marginal cost (ties to smaller output
// cardinality, then to the heuristic order the input arrives in).
func (p *Planner) greedyOrder(patterns []*msl.PatternConjunct, base map[*msl.PatternConjunct]float64) []*msl.PatternConjunct {
	remaining := append([]*msl.PatternConjunct(nil), patterns...)
	out := make([]*msl.PatternConjunct, 0, len(patterns))
	bound := map[string]bool{}
	card := 1.0
	for len(remaining) > 0 {
		bestIdx, bestCost, bestCard := 0, 0.0, 0.0
		for i, pc := range remaining {
			cost, outCard := p.stepCost(pc, len(out), bound, card, base)
			if i == 0 || cost < bestCost || (cost == bestCost && outCard < bestCard) {
				bestIdx, bestCost, bestCard = i, cost, outCard
			}
		}
		pc := remaining[bestIdx]
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		out = append(out, pc)
		addConjunctVars(bound, pc)
		card = bestCard
	}
	return out
}

// latencyWeight scales a source's cost by its observed exchange latency:
// 1 for an unobserved or sub-millisecond source, growing linearly with
// the EWMA latency. A replica set's routed latency and a remote
// wrapper's round-trip both land here, so the order prefers touching
// slow sources fewer times.
func (p *Planner) latencyWeight(source string) float64 {
	if p.stats == nil {
		return 1
	}
	lat, ok := p.stats.SourceLatency(source)
	if !ok {
		return 1
	}
	ms := lat.Seconds() * 1e3
	if ms <= 1 {
		return 1
	}
	return ms
}
