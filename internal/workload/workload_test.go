package workload

import (
	"testing"

	"medmaker/internal/semistruct"
)

func TestGenStaffDeterministic(t *testing.T) {
	cfg := StaffConfig{Persons: 50, Departments: 4, EmployeeFraction: 0.5, Irregularity: 0.3, Seed: 7}
	a, err := GenStaff(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenStaff(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Names) != 50 || len(b.Names) != 50 {
		t.Fatalf("names: %d, %d", len(a.Names), len(b.Names))
	}
	for i := range a.Names {
		if a.Names[i] != b.Names[i] {
			t.Fatal("generation not deterministic")
		}
	}
	wa := semistruct.NewWrapper("whois", a.Store)
	wb := semistruct.NewWrapper("whois", b.Store)
	ea, eb := wa.Export(), wb.Export()
	if len(ea) != len(eb) {
		t.Fatal("whois sizes differ across runs")
	}
	for i := range ea {
		if !ea[i].StructuralEqual(eb[i]) {
			t.Fatal("whois records differ across runs")
		}
	}
}

func TestGenStaffCounts(t *testing.T) {
	s, err := GenStaff(StaffConfig{
		Persons: 40, Departments: 2, EmployeeFraction: 1.0, WhoisOnly: 5, CSOnly: 7, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Store.Len() != 45 { // persons + whois-only
		t.Fatalf("whois has %d records", s.Store.Len())
	}
	emp, _ := s.DB.Table("employee")
	stu, _ := s.DB.Table("student")
	if emp.Len()+stu.Len() != 47 { // persons + cs-only
		t.Fatalf("cs has %d rows", emp.Len()+stu.Len())
	}
	// EmployeeFraction 1.0: everyone is an employee.
	if stu.Len() != 0 {
		t.Fatalf("students with fraction 1.0: %d", stu.Len())
	}
}

func TestGenStaffIrregularity(t *testing.T) {
	s, err := GenStaff(StaffConfig{Persons: 200, Irregularity: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	w := semistruct.NewWrapper("whois", s.Store)
	withEmail, withExtra := 0, 0
	for _, o := range w.Export() {
		if o.Sub("e_mail") != nil {
			withEmail++
		}
		if o.Sub("birthday") != nil || o.Sub("office") != nil || o.Sub("homepage") != nil || o.Sub("phone") != nil {
			withExtra++
		}
	}
	if withEmail == 0 || withEmail == 200 {
		t.Fatalf("e_mail irregularity degenerate: %d/200", withEmail)
	}
	if withExtra == 0 {
		t.Fatal("no extra fields generated")
	}
	// Irregularity 0: fully regular.
	reg, _ := GenStaff(StaffConfig{Persons: 50, Seed: 3})
	wr := semistruct.NewWrapper("whois", reg.Store)
	for _, o := range wr.Export() {
		if o.Sub("e_mail") == nil {
			t.Fatal("regular population lacks e_mail")
		}
	}
}

func TestDeptName(t *testing.T) {
	if DeptName(0) != "CS" {
		t.Fatal("department 0 must be CS")
	}
	if DeptName(1) == "CS" || DeptName(1) == DeptName(2) {
		t.Fatal("department names must be distinct")
	}
}

func TestGenDeepLibrary(t *testing.T) {
	lib := GenDeepLibrary(2, 3)
	if got := len(lib.Find("title")); got != 8 {
		t.Fatalf("library has %d titles, want 2^3", got)
	}
	if lib.Depth() != 5 { // library -> 3 levels -> title
		t.Fatalf("library depth %d", lib.Depth())
	}
	if err := lib.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenBib(t *testing.T) {
	bib := GenBib(BibConfig{Papers: 100, OverlapFraction: 1.0, Seed: 5})
	if len(bib.SourceA) != 100 || len(bib.SourceB) != 100 {
		t.Fatalf("full overlap sizes: %d, %d", len(bib.SourceA), len(bib.SourceB))
	}
	// Author formats differ between sources.
	a0 := bib.SourceA[0].Sub("author")
	b0 := bib.SourceB[0].Sub("author")
	as, _ := a0.AtomString()
	bs, _ := b0.AtomString()
	if as == bs {
		t.Fatalf("author formats should differ: %q vs %q", as, bs)
	}
	none := GenBib(BibConfig{Papers: 100, OverlapFraction: 0, Seed: 5})
	if len(none.SourceA)+len(none.SourceB) != 100 {
		t.Fatalf("zero overlap total: %d", len(none.SourceA)+len(none.SourceB))
	}
	if len(bib.Titles) != 100 {
		t.Fatalf("titles: %d", len(bib.Titles))
	}
}
