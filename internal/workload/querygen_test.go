package workload

import (
	"strings"
	"testing"
)

func TestQueryGenDeterministic(t *testing.T) {
	s, err := GenStaff(StaffConfig{Persons: 500, Departments: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cfg := QueryGenConfig{Names: s.Names, Distinct: 100, Skew: 1.3, Seed: 42}
	a, b := NewQueryGen(cfg), NewQueryGen(cfg)
	for i := 0; i < 1000; i++ {
		qa, qb := a.Next(), b.Next()
		if qa != qb {
			t.Fatalf("streams diverge at %d: %q vs %q", i, qa, qb)
		}
		if !strings.HasPrefix(qa, "Q :- Q:<cs_person {<name 'F") || !strings.HasSuffix(qa, "'>}>@med.") {
			t.Fatalf("malformed query: %q", qa)
		}
	}
	other := NewQueryGen(QueryGenConfig{Names: s.Names, Distinct: 100, Skew: 1.3, Seed: 43})
	diverged := false
	for i := 0; i < 100; i++ {
		if a.Next() != other.Next() {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("different seeds produced the same stream")
	}
}

// QueryFor must render the exact shape Next draws, so priming a cache
// with QueryFor over Names[:Distinct] covers every possible stream query.
func TestQueryForMatchesStream(t *testing.T) {
	s, err := GenStaff(StaffConfig{Persons: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	g := NewQueryGen(QueryGenConfig{Names: s.Names, Distinct: 20, Seed: 5})
	working := map[string]bool{}
	for _, name := range s.Names[:20] {
		working[g.QueryFor(name)] = true
	}
	for i := 0; i < 500; i++ {
		if q := g.Next(); !working[q] {
			t.Fatalf("stream drew %q, not covered by QueryFor over Names[:Distinct]", q)
		}
	}
}

func TestQueryGenSkewConcentrates(t *testing.T) {
	s, err := GenStaff(StaffConfig{Persons: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	g := NewQueryGen(QueryGenConfig{Names: s.Names, Distinct: 1000, Skew: 1.3, Seed: 7})
	const draws = 10000
	for i := 0; i < draws; i++ {
		counts[g.NextName()]++
	}
	max, distinct := 0, 0
	for _, c := range counts {
		distinct++
		if c > max {
			max = c
		}
	}
	// Zipf s=1.3: the hottest name takes a large share and the tail stays
	// populated — both matter for a cache benchmark.
	if max < draws/10 {
		t.Errorf("hottest name drew %d/%d, want a concentrated head", max, draws)
	}
	if distinct < 50 {
		t.Errorf("only %d distinct names drawn, tail collapsed", distinct)
	}
	// Distinct bounds the support.
	bounded := NewQueryGen(QueryGenConfig{Names: s.Names, Distinct: 10, Seed: 7})
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		seen[bounded.NextName()] = true
	}
	if len(seen) > 10 {
		t.Errorf("Distinct=10 drew %d names", len(seen))
	}
}

func TestGenStaffScales(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-person generation in -short mode")
	}
	s, err := GenStaff(StaffConfig{Persons: 100_000, Departments: 20, EmployeeFraction: 0.6, Irregularity: 0.2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Names) != 100_000 {
		t.Fatalf("names: %d", len(s.Names))
	}
	if s.Store.Len() != 100_000 {
		t.Fatalf("whois records: %d", s.Store.Len())
	}
	emp, _ := s.DB.Table("employee")
	stu, _ := s.DB.Table("student")
	if emp.Len()+stu.Len() != 100_000 {
		t.Fatalf("cs rows: %d", emp.Len()+stu.Len())
	}
	// Names must stay unique at six digits (F%04d widens past 9999).
	seen := make(map[string]bool, len(s.Names))
	for _, n := range s.Names {
		if seen[n] {
			t.Fatalf("duplicate name %q", n)
		}
		seen[n] = true
	}
}
