// Package workload generates synthetic source populations for tests,
// examples, and the experiment harness. The generators scale the paper's
// running example — a relational staff database and an irregular whois
// directory describing overlapping sets of people — plus deep object
// trees for wildcard experiments and duplicated bibliographies for the
// fusion scenario. Generation is deterministic per seed.
package workload

import (
	"fmt"
	"math/rand"

	"medmaker/internal/oem"
	"medmaker/internal/relational"
	"medmaker/internal/semistruct"
	"medmaker/internal/wrapper"
)

// StaffConfig sizes a cs/whois population.
type StaffConfig struct {
	// Persons is the number of people present in both sources.
	Persons int
	// Departments is the number of distinct departments; people are
	// assigned round-robin, so dept 'CS' selects ~Persons/Departments.
	Departments int
	// EmployeeFraction in [0,1] sets the employee/student split.
	EmployeeFraction float64
	// Irregularity in [0,1] is the chance a whois record carries an
	// extra optional field and the chance it lacks e_mail.
	Irregularity float64
	// WhoisOnly and CSOnly add people present in a single source.
	WhoisOnly, CSOnly int
	// Seed fixes the generator.
	Seed int64
}

// Staff is a generated population: the relational database (cs source)
// and the irregular record store (whois source).
type Staff struct {
	DB    *relational.DB
	Store *semistruct.Store
	// Names lists the full names present in both sources, in order.
	Names []string
}

// DeptName returns the i'th department name; department 0 is "CS" so the
// paper's queries keep working at scale.
func DeptName(i int) string {
	if i == 0 {
		return "CS"
	}
	return fmt.Sprintf("dept%02d", i)
}

// CSShardKey and WhoisShardKey are the partition keys the sharded staff
// population is hashed on: cs rows by last_name (the column the MS1
// spec's decomposed joins bind), whois records by name.
const (
	CSShardKey    = "last_name"
	WhoisShardKey = "name"
)

// ShardOf maps a partition-key value to a shard index in [0, shards).
// It is wrapper.ShardIndex, re-exported so data generation and query
// routing provably agree on placement.
func ShardOf(key string, shards int) int { return wrapper.ShardIndex(key, shards) }

// ShardedStaff is a population generated twice in one pass: the embedded
// flat Staff holds the whole extent, and DBs/Stores hold the same people
// hash-partitioned across shards — each person's cs rows in
// DBs[ShardOf(last_name)], their whois record in Stores[ShardOf(name)].
// Both views consume one random stream, so the sharded extent is the
// flat extent by construction; differential tests compare answers over
// the two without trusting the partitioner.
type ShardedStaff struct {
	*Staff
	DBs    []*relational.DB
	Stores []*semistruct.Store
}

// staffTables is one database's pair of cs relations.
type staffTables struct{ emp, stu *relational.Table }

// newStaffDB creates an empty cs database with the employee and student
// schemas.
func newStaffDB() (*relational.DB, staffTables, error) {
	db := relational.NewDB()
	emp, err := db.CreateTable(relational.Schema{
		Name: "employee",
		Columns: []relational.Column{
			{Name: "first_name", Kind: oem.KindString},
			{Name: "last_name", Kind: oem.KindString},
			{Name: "title", Kind: oem.KindString},
			{Name: "reports_to", Kind: oem.KindString},
		},
	})
	if err != nil {
		return nil, staffTables{}, err
	}
	stu, err := db.CreateTable(relational.Schema{
		Name: "student",
		Columns: []relational.Column{
			{Name: "first_name", Kind: oem.KindString},
			{Name: "last_name", Kind: oem.KindString},
			{Name: "year", Kind: oem.KindInt},
		},
	})
	if err != nil {
		return nil, staffTables{}, err
	}
	return db, staffTables{emp: emp, stu: stu}, nil
}

// GenStaff builds a population per cfg.
func GenStaff(cfg StaffConfig) (*Staff, error) {
	s, err := genStaff(cfg, 0)
	if err != nil {
		return nil, err
	}
	return s.Staff, nil
}

// GenStaffSharded builds the population per cfg together with its
// hash-partitioned copy across shards member extents.
func GenStaffSharded(cfg StaffConfig, shards int) (*ShardedStaff, error) {
	if shards < 1 {
		return nil, fmt.Errorf("workload: need at least 1 shard, got %d", shards)
	}
	return genStaff(cfg, shards)
}

// genStaff generates the flat population and, when shards > 0, the
// partitioned copy in the same pass over the same random stream.
func genStaff(cfg StaffConfig, shards int) (*ShardedStaff, error) {
	if cfg.Departments <= 0 {
		cfg.Departments = 1
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	db, flat, err := newStaffDB()
	if err != nil {
		return nil, err
	}
	store := semistruct.NewStore()
	out := &ShardedStaff{Staff: &Staff{DB: db, Store: store}}
	shardTabs := make([]staffTables, shards)
	for s := 0; s < shards; s++ {
		sdb, tabs, err := newStaffDB()
		if err != nil {
			return nil, err
		}
		out.DBs = append(out.DBs, sdb)
		out.Stores = append(out.Stores, semistruct.NewStore())
		shardTabs[s] = tabs
	}

	titles := []string{"professor", "lecturer", "staff", "postdoc"}
	addPerson := func(i int, inWhois, inCS bool) error {
		first := fmt.Sprintf("F%04d", i)
		last := fmt.Sprintf("L%04d", i)
		full := first + " " + last
		dept := DeptName(i % cfg.Departments)
		isEmployee := r.Float64() < cfg.EmployeeFraction
		relName := "student"
		if isEmployee {
			relName = "employee"
		}
		if inCS {
			csTabs := []staffTables{flat}
			if shards > 0 {
				csTabs = append(csTabs, shardTabs[ShardOf(last, shards)])
			}
			for _, t := range csTabs {
				if isEmployee {
					if err := t.emp.Insert(first, last, titles[i%len(titles)], fmt.Sprintf("F%04d L%04d", i/2, i/2)); err != nil {
						return err
					}
				} else {
					if err := t.stu.Insert(first, last, 1+i%5); err != nil {
						return err
					}
				}
			}
		}
		if inWhois {
			fields := []semistruct.Field{
				{Name: "name", Value: full},
				{Name: "dept", Value: dept},
				{Name: "relation", Value: relName},
			}
			if r.Float64() >= cfg.Irregularity {
				fields = append(fields, semistruct.Field{Name: "e_mail", Value: fmt.Sprintf("%s@%s", first, dept)})
			}
			if r.Float64() < cfg.Irregularity {
				extras := []semistruct.Field{
					{Name: "birthday", Value: fmt.Sprintf("June %d", 1+i%28)},
					{Name: "office", Value: fmt.Sprintf("Gates %d", 100+i%400)},
					{Name: "homepage", Value: fmt.Sprintf("http://www/%s", first)},
					{Name: "phone", Value: fmt.Sprintf("650-%04d", i)},
				}
				fields = append(fields, extras[i%len(extras)])
			}
			if !isEmployee && r.Float64() < 0.5 {
				fields = append(fields, semistruct.Field{Name: "year", Value: 1 + i%5})
			}
			rec := semistruct.Record{Kind: "person", Fields: fields}
			if err := store.Add(rec); err != nil {
				return err
			}
			if shards > 0 {
				if err := out.Stores[ShardOf(full, shards)].Add(rec); err != nil {
					return err
				}
			}
		}
		if inWhois && inCS {
			out.Names = append(out.Names, full)
		}
		return nil
	}

	n := 0
	for i := 0; i < cfg.Persons; i++ {
		if err := addPerson(n, true, true); err != nil {
			return nil, err
		}
		n++
	}
	for i := 0; i < cfg.WhoisOnly; i++ {
		if err := addPerson(n, true, false); err != nil {
			return nil, err
		}
		n++
	}
	for i := 0; i < cfg.CSOnly; i++ {
		if err := addPerson(n, false, true); err != nil {
			return nil, err
		}
		n++
	}
	return out, nil
}

// GenDeepLibrary builds a library object tree of the given breadth and
// depth with "title" leaves at the deepest level — the workload for the
// wildcard-search experiments. The tree has breadth^depth titles.
func GenDeepLibrary(breadth, depth int) *oem.Object {
	gen := oem.NewIDGen("lib")
	var build func(level int) *oem.Object
	count := 0
	build = func(level int) *oem.Object {
		if level == depth {
			count++
			return oem.New(gen.Next(), "title", fmt.Sprintf("Book %d", count))
		}
		subs := make(oem.Set, breadth)
		for i := range subs {
			subs[i] = build(level + 1)
		}
		labels := []string{"shelf", "section", "case", "box"}
		return &oem.Object{OID: gen.Next(), Label: labels[level%len(labels)], Value: subs}
	}
	root := &oem.Object{OID: gen.Next(), Label: "library", Value: oem.Set{build(0)}}
	return root
}

// BibConfig sizes the bibliography-fusion population: two sources holding
// overlapping sets of papers with differently-formatted author names.
type BibConfig struct {
	// Papers is the number of distinct papers.
	Papers int
	// OverlapFraction in [0,1] is the share of papers present in both
	// sources (duplicates the mediator must fuse).
	OverlapFraction float64
	// Seed fixes the generator.
	Seed int64
}

// Bib is a generated bibliography population.
type Bib struct {
	// SourceA uses 'First Last' author names; SourceB 'Last, First'.
	SourceA, SourceB []*oem.Object
	// Titles lists every distinct paper title.
	Titles []string
}

// GenBib builds the population.
func GenBib(cfg BibConfig) *Bib {
	r := rand.New(rand.NewSource(cfg.Seed))
	genA := oem.NewIDGen("ba")
	genB := oem.NewIDGen("bb")
	out := &Bib{}
	areas := []string{"databases", "systems", "theory", "networks"}
	for i := 0; i < cfg.Papers; i++ {
		title := fmt.Sprintf("Paper %04d", i)
		out.Titles = append(out.Titles, title)
		first := fmt.Sprintf("Avi%c", 'A'+i%26)
		last := fmt.Sprintf("Wid%c", 'A'+(i/26)%26)
		year := 1980 + i%17
		area := areas[i%len(areas)]
		inBoth := r.Float64() < cfg.OverlapFraction
		inA := inBoth || i%2 == 0
		inB := inBoth || i%2 == 1
		if inA {
			out.SourceA = append(out.SourceA, oem.NewSet(genA.Next(), "paper",
				oem.New(genA.Next(), "title", title),
				oem.New(genA.Next(), "author", first+" "+last),
				oem.New(genA.Next(), "year", year),
			))
		}
		if inB {
			out.SourceB = append(out.SourceB, oem.NewSet(genB.Next(), "article",
				oem.New(genB.Next(), "title", title),
				oem.New(genB.Next(), "author", last+", "+first),
				oem.New(genB.Next(), "area", area),
			))
		}
	}
	return out
}
