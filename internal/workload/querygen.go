package workload

import (
	"fmt"
	"math/rand"
)

// QueryGenConfig configures a zipfian stream of point queries over a
// generated Staff population — the multi-client serving workload: many
// clients asking for people by name, a few hot names taking most of the
// traffic.
type QueryGenConfig struct {
	// Names is the pool to draw from (typically Staff.Names).
	Names []string
	// Distinct bounds how many distinct names the stream ever draws (the
	// zipf support); 0 or anything beyond len(Names) means all of them.
	// The working set a cache must hold is Distinct, not len(Names).
	Distinct int
	// Skew is the zipf s parameter; must exceed 1, and higher values
	// concentrate traffic on fewer names. 0 means DefaultSkew.
	Skew float64
	// Label is the mediator view label queried; "" means "cs_person".
	Label string
	// Source is the mediator name after "@"; "" means "med".
	Source string
	// Seed fixes the stream. Streams with the same config are identical;
	// give each concurrent client its own generator (and its own seed) —
	// a QueryGen is not safe for concurrent use.
	Seed int64
}

// DefaultSkew is the zipf s parameter used when QueryGenConfig.Skew is 0,
// skewed enough that a plan/answer cache sees a hot head without making
// the tail disappear.
const DefaultSkew = 1.3

// QueryGen is a deterministic zipfian query stream. Not concurrency-safe:
// one generator per client goroutine.
type QueryGen struct {
	names  []string
	perm   []int
	zipf   *rand.Zipf
	label  string
	source string
}

// NewQueryGen builds a stream per cfg. It panics on an empty name pool,
// mirroring math/rand's own contract violations.
func NewQueryGen(cfg QueryGenConfig) *QueryGen {
	if len(cfg.Names) == 0 {
		panic("workload: QueryGen needs a non-empty name pool")
	}
	distinct := cfg.Distinct
	if distinct <= 0 || distinct > len(cfg.Names) {
		distinct = len(cfg.Names)
	}
	skew := cfg.Skew
	if skew == 0 {
		skew = DefaultSkew
	}
	label := cfg.Label
	if label == "" {
		label = "cs_person"
	}
	source := cfg.Source
	if source == "" {
		source = "med"
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	return &QueryGen{
		names: cfg.Names,
		// Shuffle rank→name so the hot head is not the first-generated
		// people (who correlate with departments and titles).
		perm:   r.Perm(distinct),
		zipf:   rand.NewZipf(r, skew, 1, uint64(distinct-1)),
		label:  label,
		source: source,
	}
}

// NextName draws the next name from the zipf distribution.
func (g *QueryGen) NextName() string {
	return g.names[g.perm[g.zipf.Uint64()]]
}

// Next draws the next point query as MSL text: a lookup of one person by
// name through the mediator's view.
func (g *QueryGen) Next() string {
	return g.QueryFor(g.NextName())
}

// QueryFor renders the point query for one specific name, in the exact
// shape Next produces. The stream's whole working set is Names[:Distinct]
// regardless of seed (seeds only reshuffle which names are hot), so
// iterating QueryFor over that prefix primes a cache against every query
// the stream can ever draw.
func (g *QueryGen) QueryFor(name string) string {
	return fmt.Sprintf("Q :- Q:<%s {<name '%s'>}>@%s.", g.label, name, g.source)
}
