package workload

import (
	"fmt"
	"sort"
	"testing"

	"medmaker/internal/oem"
	"medmaker/internal/relational"
	"medmaker/internal/semistruct"
)

// exportKeys canonicalizes a source export as sorted structural
// fingerprints, ignoring oids.
func exportKeys(objs []*oem.Object) []string {
	keys := make([]string, len(objs))
	for i, o := range objs {
		c := o.Clone()
		c.Walk(func(obj *oem.Object, _ int) bool {
			obj.OID = oem.NilOID
			return true
		})
		keys[i] = oem.Format(c)
	}
	sort.Strings(keys)
	return keys
}

func sameKeys(t *testing.T, what string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d objects sharded vs %d flat", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: object %d differs\nsharded: %s\nflat:    %s", what, i, got[i], want[i])
		}
	}
}

// TestGenStaffShardedUnionEqualsFlat: the union of the shard extents is
// exactly the flat extent — same people, same irregular fields — and
// every object sits in the shard its partition key hashes to.
func TestGenStaffShardedUnionEqualsFlat(t *testing.T) {
	const shards = 4
	cfg := StaffConfig{
		Persons: 120, Departments: 4, EmployeeFraction: 0.6, Irregularity: 0.3,
		WhoisOnly: 10, CSOnly: 10, Seed: 11,
	}
	s, err := GenStaffSharded(cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.DBs) != shards || len(s.Stores) != shards {
		t.Fatalf("got %d dbs, %d stores", len(s.DBs), len(s.Stores))
	}

	// whois: union of shard stores == flat store.
	var whoisUnion []*oem.Object
	for i, st := range s.Stores {
		exp := semistruct.NewWrapper(fmt.Sprintf("w%d", i), st).Export()
		for _, o := range exp {
			name, _ := o.Sub("name").AtomString()
			if want := ShardOf(name, shards); want != i {
				t.Fatalf("whois record %q in shard %d, hashes to %d", name, i, want)
			}
		}
		whoisUnion = append(whoisUnion, exp...)
	}
	flatWhois := semistruct.NewWrapper("whois", s.Store).Export()
	sameKeys(t, "whois", exportKeys(whoisUnion), exportKeys(flatWhois))

	// cs: union of shard databases == flat database.
	var csUnion []*oem.Object
	for i, db := range s.DBs {
		exp := relational.NewWrapper(fmt.Sprintf("cs%d", i), db).Export()
		for _, o := range exp {
			last, _ := o.Sub("last_name").AtomString()
			if want := ShardOf(last, shards); want != i {
				t.Fatalf("cs row %q in shard %d, hashes to %d", last, i, want)
			}
		}
		csUnion = append(csUnion, exp...)
	}
	flatCS := relational.NewWrapper("cs", s.DB).Export()
	sameKeys(t, "cs", exportKeys(csUnion), exportKeys(flatCS))
}

// TestGenStaffShardedMatchesGenStaff: sharding must not perturb the flat
// population — GenStaff and GenStaffSharded(cfg).Staff are identical.
func TestGenStaffShardedMatchesGenStaff(t *testing.T) {
	cfg := StaffConfig{Persons: 60, Departments: 3, EmployeeFraction: 0.5, Irregularity: 0.4, Seed: 5}
	flat, err := GenStaff(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := GenStaffSharded(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	sameKeys(t, "whois",
		exportKeys(semistruct.NewWrapper("w", sharded.Store).Export()),
		exportKeys(semistruct.NewWrapper("w", flat.Store).Export()))
	sameKeys(t, "cs",
		exportKeys(relational.NewWrapper("c", sharded.DB).Export()),
		exportKeys(relational.NewWrapper("c", flat.DB).Export()))
	if len(flat.Names) != len(sharded.Names) {
		t.Fatalf("names: %d flat vs %d sharded", len(flat.Names), len(sharded.Names))
	}
}

func TestGenStaffShardedRejectsZeroShards(t *testing.T) {
	if _, err := GenStaffSharded(StaffConfig{Persons: 1}, 0); err == nil {
		t.Fatal("zero shards accepted")
	}
}
