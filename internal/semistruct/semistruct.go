// Package semistruct implements an irregular-record store — the
// semi-structured substrate of the MedMaker paper's running example (the
// university whois facility of Figure 2.3) — and a wrapper exporting it
// as OEM.
//
// Records are lists of named fields with no schema: two records may carry
// different fields, fields repeat, and a field's value may be atomic or a
// nested list of fields. This is exactly the kind of source (electronic
// mail, medical records, bibliographies) whose integration motivates OEM
// and MSL.
package semistruct

import (
	"context"
	"fmt"
	"sync"

	"medmaker/internal/msl"
	"medmaker/internal/oem"
	"medmaker/internal/wrapper"
)

// Field is one named value in a record. Value may be a string, int,
// int64, float64, bool, []byte, or a nested []Field.
type Field struct {
	Name  string
	Value any
}

// Record is an irregular record: an ordered list of fields under a record
// kind (e.g. "person"). Nothing constrains which fields appear.
type Record struct {
	Kind   string
	Fields []Field
}

// F is shorthand for building a Field.
func F(name string, value any) Field { return Field{Name: name, Value: value} }

// Store holds records; it is safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	records []Record
	// oem caches the exported OEM view; invalidated on Add.
	oemView []*oem.Object
	// hooks run after each Add, outside the store lock, with the index of
	// the first new record and the appended records. Wrappers use them to
	// emit change-feed deltas with record-stable oids.
	hooks []func(start int, recs []Record)
}

// onAdd registers a mutation hook; see Store.hooks.
func (s *Store) onAdd(fn func(start int, recs []Record)) {
	s.mu.Lock()
	s.hooks = append(s.hooks, fn)
	s.mu.Unlock()
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{} }

// Add appends records, validating that every field (recursively) has a
// name and a convertible value.
func (s *Store) Add(records ...Record) error {
	for _, r := range records {
		if r.Kind == "" {
			return fmt.Errorf("semistruct: record without a kind")
		}
		if err := validateFields(r.Fields); err != nil {
			return fmt.Errorf("semistruct: record %q: %w", r.Kind, err)
		}
	}
	s.mu.Lock()
	start := len(s.records)
	s.records = append(s.records, records...)
	s.oemView = nil
	hooks := s.hooks
	s.mu.Unlock()
	for _, fn := range hooks {
		fn(start, records)
	}
	return nil
}

// MustAdd is Add that panics on error.
func (s *Store) MustAdd(records ...Record) {
	if err := s.Add(records...); err != nil {
		panic(err)
	}
}

// Len returns the number of records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.records)
}

func validateFields(fields []Field) error {
	for _, f := range fields {
		if f.Name == "" {
			return fmt.Errorf("field without a name")
		}
		if nested, ok := f.Value.([]Field); ok {
			if err := validateFields(nested); err != nil {
				return err
			}
			continue
		}
		if f.Value == nil {
			return fmt.Errorf("field %q has a nil value", f.Name)
		}
		func() {
			defer func() {
				if recover() != nil {
					panic(fmt.Sprintf("semistruct: field %q has unsupported value type %T", f.Name, f.Value))
				}
			}()
			oem.Atom(f.Value)
		}()
	}
	return nil
}

// Wrapper exports a Store as an OEM source under a given name. Records
// appended to the store after the wrapper is created are emitted as
// change-feed deltas to wrapper.Notifier subscribers.
type Wrapper struct {
	name  string
	store *Store
	gen   *oem.IDGen
	feed  wrapper.Feed
}

var (
	_ wrapper.Source              = (*Wrapper)(nil)
	_ wrapper.BatchQuerier        = (*Wrapper)(nil)
	_ wrapper.ContextSource       = (*Wrapper)(nil)
	_ wrapper.ContextBatchQuerier = (*Wrapper)(nil)
	_ wrapper.Notifier            = (*Wrapper)(nil)
)

// NewWrapper wraps store as the named source.
func NewWrapper(name string, store *Store) *Wrapper {
	w := &Wrapper{name: name, store: store, gen: oem.NewIDGen(name + "q")}
	store.onAdd(func(start int, recs []Record) {
		if !w.feed.Active() {
			return
		}
		objs := make([]*oem.Object, len(recs))
		for i, r := range recs {
			objs[i] = w.convertRecord(start+i, r)
		}
		w.feed.Emit(wrapper.Delta{Source: w.name, Inserted: objs})
	})
	return w
}

// OnChange implements wrapper.Notifier: fn receives an insert delta for
// every subsequent Store.Add. The delta's objects carry the same
// record-index oids as Export, so they are structurally identical to the
// next exported view's new tail.
func (w *Wrapper) OnChange(fn func(wrapper.Delta)) { w.feed.OnChange(fn) }

// Name implements wrapper.Source.
func (w *Wrapper) Name() string { return w.name }

// Capabilities implements wrapper.Source: the store is held locally, so
// the wrapper supports the full query language including wildcards.
func (w *Wrapper) Capabilities() wrapper.Capabilities {
	return wrapper.FullCapabilities()
}

// Query implements wrapper.Source.
func (w *Wrapper) Query(q *msl.Rule) ([]*oem.Object, error) {
	return wrapper.Eval(q, w.Export(), w.gen)
}

// QueryContext implements wrapper.ContextSource: the context is checked
// up front, then the in-process evaluation runs to completion.
func (w *Wrapper) QueryContext(ctx context.Context, q *msl.Rule) ([]*oem.Object, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return w.Query(q)
}

// QueryBatch implements wrapper.BatchQuerier: an in-process wrapper
// accepts a whole batch in one call, so a batch of parameterized queries
// costs one exchange.
func (w *Wrapper) QueryBatch(qs []*msl.Rule) ([][]*oem.Object, error) {
	return wrapper.EachQuery(w, qs)
}

// QueryBatchContext implements wrapper.ContextBatchQuerier, checking the
// context between the batch's queries.
func (w *Wrapper) QueryBatchContext(ctx context.Context, qs []*msl.Rule) ([][]*oem.Object, error) {
	return wrapper.EachQueryContext(ctx, w, qs)
}

// CountLabel implements wrapper.Counter: the count of records of a kind.
func (w *Wrapper) CountLabel(label string) (int, bool) {
	w.store.mu.RLock()
	defer w.store.mu.RUnlock()
	n := 0
	for _, r := range w.store.records {
		if r.Kind == label {
			n++
		}
	}
	return n, true
}

// Export converts every record to a top-level OEM object. Record i gets
// oid &<name>_i; conversion results are cached until the store changes.
func (w *Wrapper) Export() []*oem.Object {
	w.store.mu.RLock()
	if view := w.store.oemView; view != nil {
		w.store.mu.RUnlock()
		return view
	}
	w.store.mu.RUnlock()

	w.store.mu.Lock()
	defer w.store.mu.Unlock()
	if w.store.oemView != nil {
		return w.store.oemView
	}
	out := make([]*oem.Object, len(w.store.records))
	for i, r := range w.store.records {
		out[i] = w.convertRecord(i, r)
	}
	w.store.oemView = out
	return out
}

// convertRecord converts record index i to its OEM object, oid &<name>_i.
func (w *Wrapper) convertRecord(i int, r Record) *oem.Object {
	oid := oem.OID(fmt.Sprintf("&%s_%d", w.name, i))
	return &oem.Object{
		OID:   oid,
		Label: r.Kind,
		Value: w.convertFields(string(oid), r.Fields),
	}
}

func (w *Wrapper) convertFields(parentOID string, fields []Field) oem.Set {
	subs := make(oem.Set, 0, len(fields))
	for i, f := range fields {
		oid := oem.OID(fmt.Sprintf("%s_%d", parentOID, i))
		obj := &oem.Object{OID: oid, Label: f.Name}
		if nested, ok := f.Value.([]Field); ok {
			obj.Value = w.convertFields(string(oid), nested)
		} else {
			obj.Value = oem.Atom(f.Value)
		}
		subs = append(subs, obj)
	}
	return subs
}
