package semistruct

import (
	"testing"

	"medmaker/internal/msl"
	"medmaker/internal/oem"
)

// paperStore builds the whois source of the paper's Figure 2.3: irregular
// person records (one has e_mail, the other year).
func paperStore() *Store {
	s := NewStore()
	s.MustAdd(
		Record{Kind: "person", Fields: []Field{
			F("name", "Joe Chung"),
			F("dept", "CS"),
			F("relation", "employee"),
			F("e_mail", "chung@cs"),
		}},
		Record{Kind: "person", Fields: []Field{
			F("name", "Nick Naive"),
			F("dept", "CS"),
			F("relation", "student"),
			F("year", 3),
		}},
	)
	return s
}

func TestExportFigure23(t *testing.T) {
	w := NewWrapper("whois", paperStore())
	objs := w.Export()
	if len(objs) != 2 {
		t.Fatalf("exported %d objects", len(objs))
	}
	want := oem.MustParse(`
	<person, set, {<name, 'Joe Chung'>, <dept, 'CS'>, <relation, 'employee'>, <e_mail, 'chung@cs'>}>
	<person, set, {<name, 'Nick Naive'>, <dept, 'CS'>, <relation, 'student'>, <year, 3>}>`)
	for i := range want {
		if !objs[i].StructuralEqual(want[i]) {
			t.Errorf("export %d differs:\n%s", i, oem.Format(objs[i]))
		}
	}
	// Structure irregularity is preserved: only the first has e_mail.
	if objs[0].Sub("e_mail") == nil || objs[1].Sub("e_mail") != nil {
		t.Fatal("irregularity lost in export")
	}
}

func TestQuery(t *testing.T) {
	w := NewWrapper("whois", paperStore())
	q := msl.MustParseRule(`<out N R1> :-
	    <person {<name N> <dept 'CS'> <relation R> | R1}>@whois.`)
	got, err := w.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	// Head builds one <out> per binding, plus the flattened R1? No: head
	// has two terms per binding: the pattern and the bare variable R1
	// (which yields the rest members).
	if len(got) < 2 {
		t.Fatalf("query returned %d objects", len(got))
	}
}

func TestNestedFields(t *testing.T) {
	s := NewStore()
	s.MustAdd(Record{Kind: "person", Fields: []Field{
		F("name", "Ann"),
		F("address", []Field{F("city", "Palo Alto"), F("zip", "94301")}),
	}})
	w := NewWrapper("whois", s)
	objs := w.Export()
	addr := objs[0].Sub("address")
	if addr == nil || addr.Kind() != oem.KindSet {
		t.Fatalf("nested field not exported as set: %s", oem.Format(objs[0]))
	}
	if v, _ := addr.Sub("city").AtomString(); v != "Palo Alto" {
		t.Fatal("nested value lost")
	}
	// Wildcards reach nested fields.
	q := msl.MustParseRule(`<out C> :- <%city C>@whois.`)
	got, err := w.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("wildcard query returned %d", len(got))
	}
}

func TestRepeatedFields(t *testing.T) {
	s := NewStore()
	s.MustAdd(Record{Kind: "person", Fields: []Field{
		F("name", "Ann"), F("e_mail", "a@x"), F("e_mail", "a@y"),
	}})
	w := NewWrapper("whois", s)
	q := msl.MustParseRule(`<out E> :- <person {<e_mail E>}>@whois.`)
	got, err := w.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("repeated field produced %d bindings, want 2", len(got))
	}
}

func TestValidation(t *testing.T) {
	s := NewStore()
	if err := s.Add(Record{Kind: "", Fields: nil}); err == nil {
		t.Fatal("kindless record accepted")
	}
	if err := s.Add(Record{Kind: "p", Fields: []Field{F("", 1)}}); err == nil {
		t.Fatal("nameless field accepted")
	}
	if err := s.Add(Record{Kind: "p", Fields: []Field{F("x", nil)}}); err == nil {
		t.Fatal("nil value accepted")
	}
	if err := s.Add(Record{Kind: "p", Fields: []Field{
		F("addr", []Field{F("", 1)}),
	}}); err == nil {
		t.Fatal("nested nameless field accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unsupported value type should panic")
		}
	}()
	s.Add(Record{Kind: "p", Fields: []Field{F("x", struct{}{})}})
}

func TestExportCacheInvalidation(t *testing.T) {
	s := paperStore()
	w := NewWrapper("whois", s)
	first := w.Export()
	if len(first) != 2 {
		t.Fatal("initial export")
	}
	again := w.Export()
	if &first[0] != &again[0] {
		t.Fatal("export not cached")
	}
	s.MustAdd(Record{Kind: "person", Fields: []Field{F("name", "New")}})
	after := w.Export()
	if len(after) != 3 {
		t.Fatalf("cache not invalidated: %d objects", len(after))
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestStableOIDs(t *testing.T) {
	w := NewWrapper("whois", paperStore())
	objs := w.Export()
	if objs[0].OID != "&whois_0" || objs[1].OID != "&whois_1" {
		t.Fatalf("record oids: %s, %s", objs[0].OID, objs[1].OID)
	}
	sub := objs[0].Subobjects()[0]
	if sub.OID != "&whois_0_0" {
		t.Fatalf("field oid: %s", sub.OID)
	}
}
