package oem

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// FromJSON converts a JSON document into an OEM object tree labelled
// label. The mapping follows the self-describing spirit of both formats:
//
//   - a JSON object becomes a set-valued OEM object whose subobjects are
//     labelled by the keys (key order is preserved as it appears in the
//     document; duplicate keys become repeated labels);
//   - a JSON array becomes repeated subobjects under the surrounding
//     key's label — exactly OEM's representation of multivalued
//     attributes — wrapped as <label_list> when the array is the top
//     value or directly nested in another array;
//   - strings, numbers, and booleans become the corresponding atoms
//     (integral numbers become integers); null values are omitted, which
//     turns JSON nulls into OEM structural irregularity.
//
// Objects receive no oids; stores assign them on insertion.
func FromJSON(label string, data []byte) (*Object, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("oem: invalid JSON: %w", err)
	}
	// Trailing garbage after the document is an error.
	if dec.More() {
		return nil, fmt.Errorf("oem: trailing data after JSON document")
	}
	obj, err := jsonValue(label, v)
	if err != nil {
		return nil, err
	}
	if obj == nil {
		return nil, fmt.Errorf("oem: top-level JSON null has no OEM representation")
	}
	return obj, nil
}

// FromJSONArray converts a top-level JSON array into one OEM object per
// element, each labelled label — the natural import for the common
// "array of records" document shape.
func FromJSONArray(label string, data []byte) ([]*Object, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.UseNumber()
	var vs []any
	if err := dec.Decode(&vs); err != nil {
		return nil, fmt.Errorf("oem: invalid JSON array: %w", err)
	}
	out := make([]*Object, 0, len(vs))
	for i, v := range vs {
		obj, err := jsonValue(label, v)
		if err != nil {
			return nil, fmt.Errorf("oem: element %d: %w", i, err)
		}
		if obj != nil {
			out = append(out, obj)
		}
	}
	return out, nil
}

// jsonValue converts one JSON value; nulls return nil (omitted).
func jsonValue(label string, v any) (*Object, error) {
	switch t := v.(type) {
	case nil:
		return nil, nil
	case string:
		return &Object{Label: label, Value: String(t)}, nil
	case bool:
		return &Object{Label: label, Value: Bool(t)}, nil
	case json.Number:
		if n, err := t.Int64(); err == nil {
			return &Object{Label: label, Value: Int(n)}, nil
		}
		f, err := t.Float64()
		if err != nil {
			return nil, fmt.Errorf("bad number %q", t)
		}
		return &Object{Label: label, Value: Float(f)}, nil
	case map[string]any:
		// Sort keys for deterministic conversion (encoding/json loses
		// document order anyway).
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var subs Set
		for _, k := range keys {
			kl := k
			if kl == "" {
				kl = "_empty"
			}
			if arr, isArr := t[k].([]any); isArr {
				// Arrays flatten into repeated subobjects.
				for _, elem := range arr {
					sub, err := jsonValue(kl, elem)
					if err != nil {
						return nil, err
					}
					if sub != nil {
						subs = append(subs, sub)
					}
				}
				continue
			}
			sub, err := jsonValue(kl, t[k])
			if err != nil {
				return nil, err
			}
			if sub != nil {
				subs = append(subs, sub)
			}
		}
		return &Object{Label: label, Value: subs}, nil
	case []any:
		// A bare array (top level or array-of-arrays): element objects
		// labelled "<label>_elem" inside a set.
		var subs Set
		for _, elem := range t {
			sub, err := jsonValue(label+"_elem", elem)
			if err != nil {
				return nil, err
			}
			if sub != nil {
				subs = append(subs, sub)
			}
		}
		return &Object{Label: label, Value: subs}, nil
	}
	return nil, fmt.Errorf("unsupported JSON value %T", v)
}

// ToJSON renders an OEM object as JSON: atomic objects become
// {"label": value}; set-valued objects become {"label": {…}} with
// repeated labels collected into arrays. Oids are not represented; use
// the textual OEM format when identity matters.
func ToJSON(o *Object) ([]byte, error) {
	return json.Marshal(map[string]any{o.Label: jsonOf(o)})
}

func jsonOf(o *Object) any {
	switch v := o.Value.(type) {
	case String:
		return string(v)
	case Int:
		return int64(v)
	case Float:
		f := float64(v)
		if math.IsInf(f, 0) || math.IsNaN(f) {
			return nil
		}
		return f
	case Bool:
		return bool(v)
	case Bytes:
		return []byte(v) // encoding/json base64-encodes
	case Set:
		grouped := map[string][]any{}
		var order []string
		for _, sub := range v {
			if _, seen := grouped[sub.Label]; !seen {
				order = append(order, sub.Label)
			}
			grouped[sub.Label] = append(grouped[sub.Label], jsonOf(sub))
		}
		out := make(map[string]any, len(order))
		for _, label := range order {
			vals := grouped[label]
			if len(vals) == 1 {
				out[label] = vals[0]
			} else {
				out[label] = vals
			}
		}
		return out
	}
	return nil
}
