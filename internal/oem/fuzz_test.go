package oem_test

import (
	"testing"

	"medmaker/internal/oem"
	"medmaker/internal/workload"
)

// FuzzOEMRoundTrip checks that the textual OEM format round-trips: any
// input the parser accepts must, once formatted, parse again to a
// structurally equal forest. This is the contract tools rely on when
// they pipe one command's output into another — a formatter that emits
// unparseable text (e.g. duplicate definitions for a shared subobject)
// silently breaks such pipelines.
func FuzzOEMRoundTrip(f *testing.F) {
	f.Add("<&p1, person, set, {&n1, &s1}>\n<&n1, name, string, \"Joe Chung\">\n<&s1, dept, string, \"CS\">\n;\n")
	f.Add("<&a, person, set, {&c}>\n<&b, person, set, {&c}>\n<&c, name, string, \"shared\">\n;\n")
	f.Add("<&i, years, int, 17>\n<&r, ratio, real, 1.5>\n<&e, empty, set, {}>\n;\n")
	// A realistic workload-shaped tree: the deep-library generator's
	// nested sections exercise indentation and oid cross references.
	f.Add(oem.Format(workload.GenDeepLibrary(2, 3)))
	f.Fuzz(func(t *testing.T, input string) {
		tops, err := oem.Parse(input)
		if err != nil || len(tops) == 0 {
			return // not valid OEM text; nothing to round-trip
		}
		text := oem.Format(tops...)
		back, err := oem.Parse(text)
		if err != nil {
			t.Fatalf("formatted output does not reparse: %v\ninput:\n%s\nformatted:\n%s", err, input, text)
		}
		if len(back) != len(tops) {
			t.Fatalf("round trip changed top-level count: %d -> %d\nformatted:\n%s", len(tops), len(back), text)
		}
		for i := range tops {
			if !tops[i].StructuralEqual(back[i]) {
				t.Fatalf("top %d not structurally equal after round trip\nbefore: %s\nafter:  %s",
					i, oem.Format(tops[i]), oem.Format(back[i]))
			}
		}
	})
}
