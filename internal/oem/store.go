package oem

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// IDGen issues fresh object-ids. A single generator may be shared by many
// goroutines (result construction in the datamerge engine is the main
// consumer). OIDs carry a prefix so ids from different origins — sources,
// mediators, temporary result objects — stay recognizably distinct, as in
// the paper's &p1 / &cp1 / x032 naming.
type IDGen struct {
	prefix string
	n      atomic.Uint64
}

// NewIDGen returns a generator producing oids "&<prefix><n>".
func NewIDGen(prefix string) *IDGen {
	return &IDGen{prefix: prefix}
}

// Next returns a fresh oid.
func (g *IDGen) Next() OID {
	n := g.n.Add(1)
	buf := make([]byte, 0, len(g.prefix)+21)
	buf = append(buf, '&')
	buf = append(buf, g.prefix...)
	buf = strconv.AppendUint(buf, n, 10)
	return OID(buf)
}

// AssignOIDs walks the object tree and gives every object lacking an oid a
// fresh one from g. It returns the root for chaining.
func AssignOIDs(root *Object, g *IDGen) *Object {
	root.Walk(func(o *Object, _ int) bool {
		if o.OID == NilOID {
			o.OID = g.Next()
		}
		return true
	})
	return root
}

// Store holds a collection of top-level OEM objects with an index by oid
// over every reachable object. Clients query object structures starting,
// by default, from the top-level objects; the by-oid index supports
// follow-up navigation. Store is safe for concurrent use.
type Store struct {
	mu    sync.RWMutex
	tops  []*Object
	byOID map[OID]*Object
	gen   *IDGen
}

// NewStore returns an empty store whose auto-assigned oids use the given
// prefix.
func NewStore(prefix string) *Store {
	return &Store{byOID: make(map[OID]*Object), gen: NewIDGen(prefix)}
}

// Add inserts top-level objects, assigning fresh oids to any object in
// their trees that lacks one. It returns an error if an oid collides with
// one already in the store.
func (s *Store) Add(objs ...*Object) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, obj := range objs {
		var err error
		obj.Walk(func(o *Object, _ int) bool {
			if err != nil {
				return false
			}
			if o.OID == NilOID {
				o.OID = s.gen.Next()
			}
			if prev, dup := s.byOID[o.OID]; dup && prev != o {
				err = fmt.Errorf("oem: store already contains an object with oid %s", o.OID)
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		obj.Walk(func(o *Object, _ int) bool {
			s.byOID[o.OID] = o
			return true
		})
		s.tops = append(s.tops, obj)
	}
	return nil
}

// MustAdd is Add that panics on error, for test and example setup.
func (s *Store) MustAdd(objs ...*Object) {
	if err := s.Add(objs...); err != nil {
		panic(err)
	}
}

// TopLevel returns the top-level objects in insertion order. The returned
// slice is a copy; the objects are shared.
func (s *Store) TopLevel() []*Object {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Object, len(s.tops))
	copy(out, s.tops)
	return out
}

// Lookup returns the object with the given oid at any nesting level.
func (s *Store) Lookup(oid OID) (*Object, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	o, ok := s.byOID[oid]
	return o, ok
}

// Len returns the number of top-level objects.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.tops)
}

// TotalObjects returns the number of objects reachable from the top level,
// i.e. the size of the oid index.
func (s *Store) TotalObjects() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byOID)
}

// Labels returns the distinct labels of the top-level objects, sorted —
// the store-level analogue of schema exploration.
func (s *Store) Labels() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := make(map[string]bool)
	var out []string
	for _, obj := range s.tops {
		if !seen[obj.Label] {
			seen[obj.Label] = true
			out = append(out, obj.Label)
		}
	}
	sort.Strings(out)
	return out
}

// Remove deletes the top-level objects with the given oids, unindexing
// every object reachable from them, and returns the removed roots in
// store order. OIDs that do not name a top-level object are ignored.
func (s *Store) Remove(oids ...OID) []*Object {
	if len(oids) == 0 {
		return nil
	}
	drop := make(map[OID]bool, len(oids))
	for _, oid := range oids {
		drop[oid] = true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var removed []*Object
	kept := s.tops[:0]
	for _, obj := range s.tops {
		if !drop[obj.OID] {
			kept = append(kept, obj)
			continue
		}
		removed = append(removed, obj)
		obj.Walk(func(o *Object, _ int) bool {
			delete(s.byOID, o.OID)
			return true
		})
	}
	s.tops = kept
	return removed
}

// Clear removes all objects but keeps the oid generator state, so
// re-populated stores never reuse oids.
func (s *Store) Clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tops = nil
	s.byOID = make(map[OID]*Object)
}

// DedupStructural removes top-level objects that are structural duplicates
// of an earlier object, returning how many were dropped. This implements
// the duplicate elimination that the MSL semantics describe for the OEM
// context.
func (s *Store) DedupStructural() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	dropped := 0
	s.tops = DedupStructural(s.tops, func(obj *Object) {
		dropped++
		obj.Walk(func(o *Object, _ int) bool {
			delete(s.byOID, o.OID)
			return true
		})
	})
	return dropped
}
