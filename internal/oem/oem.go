// Package oem implements the Object Exchange Model (OEM) of the TSIMMIS
// project, the self-describing data model that MedMaker mediators and
// wrappers exchange.
//
// An OEM object is a quadruple <object-id, label, type, value>: the
// object-id links objects to their subobjects, the label is a descriptive
// string meaningful to the application, and the value is either atomic
// (string, integer, real, boolean, bytes) or a set of subobjects. OEM
// forces no regularity on data — every object carries its own "schema" in
// its labels — which is what lets MedMaker integrate well-structured
// databases and irregular, evolving sources through one model.
//
// The package provides the object structures, deep structural equality and
// hashing (used for duplicate elimination, which the MSL semantics
// require), the textual object format the paper's figures use (see
// Format/Parse), and object stores with object-id generation.
package oem

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// OID is an object identifier, e.g. "&12". Object-ids link objects to
// their subobjects and, for mediator-created objects, are arbitrary unique
// strings with no meaning beyond the answer that carried them (semantic
// object-ids, an MSL extension, are produced by skolem-style constructors
// and do carry meaning; see the bibliography example).
type OID string

// NilOID marks an object whose identity is unassigned. Stores assign fresh
// oids on insertion; the constructor node of the datamerge engine assigns
// fresh oids to result objects.
const NilOID OID = ""

// Object is one OEM object. Label and Value are immutable by convention
// once the object is shared; building modified structures goes through
// copies (see Clone) so that objects can be safely shared across
// goroutines, plans, and caches.
type Object struct {
	// OID is the object's identity, possibly NilOID for unrooted values.
	OID OID
	// Label is the descriptive, application-meaningful label
	// (e.g. "person", "dept"). Different sources may use different labels
	// for the same concept; resolving that is the mediator's job.
	Label string
	// Value is the object's value: an atomic Value or a Set of subobjects.
	Value Value

	// hashMemo caches the structural hash, computed lazily on first use
	// (0 = not yet computed; a computed hash of 0 is remapped to 1).
	// Objects are immutable by convention once shared, so the memo is
	// write-once in practice; the atomic makes concurrent first hashes of
	// a shared subtree race-free. The single sanctioned post-construction
	// mutation — object fusion extending a subobject set — must call
	// InvalidateHash on the mutated object.
	hashMemo atomic.Uint64
}

// New constructs an object with an explicit oid. The value may be any
// input accepted by Atom, or a Set.
func New(oid OID, label string, value any) *Object {
	return &Object{OID: oid, Label: label, Value: Atom(value)}
}

// NewSet constructs a set-valued object from its subobjects.
func NewSet(oid OID, label string, subs ...*Object) *Object {
	return &Object{OID: oid, Label: label, Value: Set(subs)}
}

// Kind reports the kind of the object's value. A nil value reports
// KindSet with no members (the empty set), which is how an empty complex
// object is represented.
func (o *Object) Kind() Kind {
	if o.Value == nil {
		return KindSet
	}
	return o.Value.Kind()
}

// IsAtomic reports whether the object carries an atomic value.
func (o *Object) IsAtomic() bool { return o.Kind() != KindSet }

// Subobjects returns the object's subobject set, or nil for atomic
// objects.
func (o *Object) Subobjects() Set {
	if s, ok := o.Value.(Set); ok {
		return s
	}
	return nil
}

// Sub returns the first subobject with the given label, or nil. It is a
// convenience for navigating well-known structure in tests and examples.
func (o *Object) Sub(label string) *Object {
	return o.Subobjects().First(label)
}

// AtomString returns the object's value as a Go string when it is a
// String atom, and ok=false otherwise.
func (o *Object) AtomString() (string, bool) {
	s, ok := o.Value.(String)
	return string(s), ok
}

// AtomInt returns the object's value as an int64 when it is an Int atom,
// and ok=false otherwise.
func (o *Object) AtomInt() (int64, bool) {
	i, ok := o.Value.(Int)
	return int64(i), ok
}

// StructuralEqual reports deep equality of two objects ignoring their
// object-ids: same label, same value kind, equal atomic values, and
// (recursively, order-insensitively) equal subobject sets. This is the
// equality MSL's duplicate elimination uses.
func (o *Object) StructuralEqual(other *Object) bool {
	if o == other {
		return true
	}
	if o == nil || other == nil {
		return false
	}
	// Memoized hashes, when both already computed, reject unequal objects
	// without walking either tree (equal objects always hash equal).
	if h, oh := o.hashMemo.Load(), other.hashMemo.Load(); h != 0 && oh != 0 && h != oh {
		return false
	}
	if o.Label != other.Label {
		return false
	}
	if o.Value == nil {
		return other.Value == nil || (other.Kind() == KindSet && len(other.Subobjects()) == 0)
	}
	if other.Value == nil {
		return o.Kind() == KindSet && len(o.Subobjects()) == 0
	}
	return o.Value.Equal(other.Value)
}

// Clone returns a deep copy of the object. Subobjects are copied
// recursively; atomic values are immutable and shared. OIDs are preserved.
func (o *Object) Clone() *Object {
	if o == nil {
		return nil
	}
	cp := &Object{OID: o.OID, Label: o.Label, Value: o.Value}
	if subs, ok := o.Value.(Set); ok {
		newSubs := make(Set, len(subs))
		for i, sub := range subs {
			newSubs[i] = sub.Clone()
		}
		cp.Value = newSubs
	}
	return cp
}

// String renders the object as a single flat OEM tuple,
// e.g. <&12, department, string, 'CS'>. For the full nested or
// paper-figure layout use Format.
func (o *Object) String() string {
	if o == nil {
		return "<nil>"
	}
	var sb strings.Builder
	sb.WriteByte('<')
	if o.OID != NilOID {
		sb.WriteString(string(o.OID))
		sb.WriteString(", ")
	}
	sb.WriteString(o.Label)
	sb.WriteString(", ")
	sb.WriteString(o.Kind().String())
	sb.WriteString(", ")
	if o.Value == nil {
		sb.WriteString("{}")
	} else {
		sb.WriteString(o.Value.String())
	}
	sb.WriteByte('>')
	return sb.String()
}

// Walk visits the object and every reachable subobject in depth-first,
// pre-order. The visitor receives each object and its depth (0 for the
// root). Returning false stops descent below that object but continues
// siblings.
func (o *Object) Walk(visit func(obj *Object, depth int) bool) {
	o.walk(visit, 0)
}

func (o *Object) walk(visit func(*Object, int) bool, depth int) {
	if o == nil {
		return
	}
	if !visit(o, depth) {
		return
	}
	for _, sub := range o.Subobjects() {
		sub.walk(visit, depth+1)
	}
}

// Depth returns the height of the object tree: 1 for an atomic object,
// 1 + max subobject depth otherwise.
func (o *Object) Depth() int {
	if o == nil {
		return 0
	}
	max := 0
	for _, sub := range o.Subobjects() {
		if d := sub.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}

// Size returns the number of objects in the tree rooted at o, counting o.
func (o *Object) Size() int {
	if o == nil {
		return 0
	}
	n := 1
	for _, sub := range o.Subobjects() {
		n += sub.Size()
	}
	return n
}

// Find returns every object in the tree (including o itself) whose label
// equals the given label, in pre-order. This is the primitive behind MSL's
// wildcard feature, which searches for objects at any level without a full
// path.
func (o *Object) Find(label string) []*Object {
	var out []*Object
	o.Walk(func(obj *Object, _ int) bool {
		if obj.Label == label {
			out = append(out, obj)
		}
		return true
	})
	return out
}

// Validate checks structural well-formedness: non-empty labels everywhere
// and no cycles through subobject links. OEM values exchanged between
// wrappers and mediators are trees (graphs are expressed via semantic
// object-ids, not shared pointers), so a cycle indicates a construction
// bug.
func (o *Object) Validate() error {
	seen := make(map[*Object]bool)
	return o.validate(seen, "")
}

func (o *Object) validate(onPath map[*Object]bool, path string) error {
	if o == nil {
		return fmt.Errorf("oem: nil object at %q", path)
	}
	if o.Label == "" {
		return fmt.Errorf("oem: empty label at %q (oid %s)", path, o.OID)
	}
	if onPath[o] {
		return fmt.Errorf("oem: cycle through object %s at %q", o.OID, path)
	}
	subs := o.Subobjects()
	if len(subs) == 0 {
		return nil
	}
	onPath[o] = true
	defer delete(onPath, o)
	for i, sub := range subs {
		if err := sub.validate(onPath, fmt.Sprintf("%s/%s[%d]", path, o.Label, i)); err != nil {
			return err
		}
	}
	return nil
}
