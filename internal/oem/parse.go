package oem

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse reads objects in the textual OEM format and returns the top-level
// objects. It accepts both layouts the Formatter produces:
//
//   - flat, with set values listing member oids that are defined by later
//     tuples (the paper's figure layout); indentation is ignored, and
//     top-level objects are those never referenced as a subobject;
//   - nested, with subobject tuples written inline inside the braces.
//
// The type field is optional; when present it must agree with the value.
// A numeric value under an "integer" type must be integral; under "real"
// it is widened to a float. Lines may carry // or # comments, and object
// groups may be terminated by ";" as in the figures.
func Parse(input string) ([]*Object, error) {
	p := &oemParser{lex: newOEMLexer(input), defined: map[OID]*Object{}}
	var parsed []*Object
	for {
		tok := p.lex.peek()
		switch tok.kind {
		case tokEOF:
			return p.resolve(parsed)
		case tokSemi:
			p.lex.next()
		case tokLT:
			obj, err := p.parseObject()
			if err != nil {
				return nil, err
			}
			parsed = append(parsed, obj)
		default:
			return nil, fmt.Errorf("oem: line %d: unexpected %s at top level", tok.line, tok)
		}
	}
}

// MustParse is Parse that panics on error; intended for literals in tests
// and examples.
func MustParse(input string) []*Object {
	objs, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return objs
}

// ParseOne parses input that must contain exactly one top-level object.
func ParseOne(input string) (*Object, error) {
	objs, err := Parse(input)
	if err != nil {
		return nil, err
	}
	if len(objs) != 1 {
		return nil, fmt.Errorf("oem: expected exactly 1 top-level object, found %d", len(objs))
	}
	return objs[0], nil
}

type oemParser struct {
	lex     *oemLexer
	defined map[OID]*Object // objects by oid, for flat-style reference linking
	refs    []pendingRef
}

type pendingRef struct {
	parent *Object
	index  int
	oid    OID
	line   int
}

// parseObject parses one <...> tuple.
func (p *oemParser) parseObject() (*Object, error) {
	lt := p.lex.next()
	if lt.kind != tokLT {
		return nil, fmt.Errorf("oem: line %d: expected '<', found %s", lt.line, lt)
	}
	var fields []oemToken
	// Collect the scalar fields up to the value, which may itself be a
	// brace construct.
	obj := &Object{}
	for {
		tok := p.lex.peek()
		switch tok.kind {
		case tokLBrace:
			if err := p.applyHeader(obj, fields, true); err != nil {
				return nil, err
			}
			if err := p.parseSetValue(obj); err != nil {
				return nil, err
			}
			if gt := p.lex.next(); gt.kind != tokGT {
				return nil, fmt.Errorf("oem: line %d: expected '>' after set value, found %s", gt.line, gt)
			}
			return p.register(obj)
		case tokGT:
			p.lex.next()
			if err := p.applyHeader(obj, fields, false); err != nil {
				return nil, err
			}
			return p.register(obj)
		case tokComma:
			p.lex.next()
		case tokEOF:
			return nil, fmt.Errorf("oem: line %d: unexpected end of input inside object", tok.line)
		default:
			fields = append(fields, p.lex.next())
		}
	}
}

func (p *oemParser) register(obj *Object) (*Object, error) {
	if obj.OID != NilOID {
		if prev, dup := p.defined[obj.OID]; dup && prev != obj {
			return nil, fmt.Errorf("oem: duplicate definition of object %s", obj.OID)
		}
		p.defined[obj.OID] = obj
	}
	return obj, nil
}

// applyHeader interprets the scalar fields before the value position.
// Layout possibilities (value either among fields, or a following brace):
//
//	<&oid, label, type, v>  <&oid, label, v>  <label, type, v>  <label, v>
func (p *oemParser) applyHeader(obj *Object, fields []oemToken, braceValue bool) error {
	i := 0
	if i < len(fields) && fields[i].kind == tokOID {
		obj.OID = OID(fields[i].text)
		i++
	}
	if i >= len(fields) || fields[i].kind != tokIdent {
		line := 0
		if len(fields) > 0 {
			line = fields[0].line
		}
		return fmt.Errorf("oem: line %d: object is missing a label", line)
	}
	if !validLabel(fields[i].text) {
		return fmt.Errorf("oem: line %d: invalid label %q", fields[i].line, fields[i].text)
	}
	obj.Label = fields[i].text
	i++

	rest := fields[i:]
	var typeName string
	var valueTok *oemToken
	switch {
	case braceValue && len(rest) == 0:
		// <label, {…}> — type defaults to set.
	case braceValue && len(rest) == 1 && rest[0].kind == tokIdent:
		typeName = rest[0].text
	case !braceValue && len(rest) == 1:
		valueTok = &rest[0]
	case !braceValue && len(rest) == 2 && rest[0].kind == tokIdent:
		typeName = rest[0].text
		valueTok = &rest[1]
	default:
		return fmt.Errorf("oem: line %d: malformed object fields for label %q", fields[0].line, obj.Label)
	}

	var declared Kind = -1
	if typeName != "" {
		k, ok := KindFromName(typeName)
		if !ok {
			return fmt.Errorf("oem: line %d: unknown type %q", fields[0].line, typeName)
		}
		declared = k
	}
	if braceValue {
		if declared >= 0 && declared != KindSet {
			return fmt.Errorf("oem: line %d: declared type %s but value is a set", fields[0].line, declared)
		}
		return nil
	}
	val, err := tokenValue(*valueTok, declared)
	if err != nil {
		return err
	}
	obj.Value = val
	return nil
}

func tokenValue(tok oemToken, declared Kind) (Value, error) {
	var v Value
	switch tok.kind {
	case tokString:
		v = String(tok.text)
	case tokNumber:
		isFloat := strings.ContainsAny(tok.text, ".eE")
		if declared == KindFloat || isFloat {
			f, err := strconv.ParseFloat(tok.text, 64)
			if err != nil {
				return nil, fmt.Errorf("oem: line %d: bad number %q: %v", tok.line, tok.text, err)
			}
			if declared == KindInt {
				return nil, fmt.Errorf("oem: line %d: non-integral value %q declared integer", tok.line, tok.text)
			}
			v = Float(f)
		} else {
			n, err := strconv.ParseInt(tok.text, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("oem: line %d: bad integer %q: %v", tok.line, tok.text, err)
			}
			v = Int(n)
		}
	case tokIdent:
		switch tok.text {
		case "true":
			v = Bool(true)
		case "false":
			v = Bool(false)
		default:
			return nil, fmt.Errorf("oem: line %d: unexpected bare word %q as value", tok.line, tok.text)
		}
	case tokBytes:
		b, err := parseHexBytes(tok.text)
		if err != nil {
			return nil, fmt.Errorf("oem: line %d: %v", tok.line, err)
		}
		v = Bytes(b)
	default:
		return nil, fmt.Errorf("oem: line %d: unexpected %s as value", tok.line, tok)
	}
	if declared >= 0 && declared != v.Kind() {
		// Int→Float widening under a declared real type.
		if declared == KindFloat && v.Kind() == KindInt {
			return Float(v.(Int)), nil
		}
		return nil, fmt.Errorf("oem: line %d: declared type %s but value %s is %s",
			tok.line, declared, v, v.Kind())
	}
	return v, nil
}

func parseHexBytes(s string) ([]byte, error) {
	if len(s)%2 != 0 {
		return nil, fmt.Errorf("odd-length hex literal 0x%s", s)
	}
	out := make([]byte, len(s)/2)
	for i := 0; i < len(s); i += 2 {
		n, err := strconv.ParseUint(s[i:i+2], 16, 8)
		if err != nil {
			return nil, fmt.Errorf("bad hex literal 0x%s", s)
		}
		out[i/2] = byte(n)
	}
	return out, nil
}

// parseSetValue parses {…}: either oid references or nested object tuples.
func (p *oemParser) parseSetValue(obj *Object) error {
	lb := p.lex.next() // consume '{'
	var subs Set
	for {
		tok := p.lex.peek()
		switch tok.kind {
		case tokRBrace:
			p.lex.next()
			obj.Value = subs
			return nil
		case tokComma:
			p.lex.next()
		case tokOID:
			p.lex.next()
			subs = append(subs, nil) // placeholder patched in resolve
			p.refs = append(p.refs, pendingRef{parent: obj, index: len(subs) - 1, oid: OID(tok.text), line: tok.line})
		case tokLT:
			sub, err := p.parseObject()
			if err != nil {
				return err
			}
			subs = append(subs, sub)
		case tokEOF:
			return fmt.Errorf("oem: line %d: unterminated set value", lb.line)
		default:
			return fmt.Errorf("oem: line %d: unexpected %s inside set value", tok.line, tok)
		}
		// The parent set slice may move as it grows, so record it late.
		obj.Value = subs
	}
}

// resolve patches oid references and returns the top-level objects: those
// parsed at top level that no other object references.
func (p *oemParser) resolve(parsed []*Object) ([]*Object, error) {
	referenced := make(map[OID]bool, len(p.refs))
	for _, ref := range p.refs {
		target, ok := p.defined[ref.oid]
		if !ok {
			return nil, fmt.Errorf("oem: line %d: reference to undefined object %s", ref.line, ref.oid)
		}
		subs := ref.parent.Value.(Set)
		subs[ref.index] = target
		referenced[ref.oid] = true
	}
	var tops []*Object
	for _, obj := range parsed {
		if obj.OID != NilOID && referenced[obj.OID] {
			continue
		}
		tops = append(tops, obj)
	}
	// Guard against reference cycles introduced via flat refs.
	for _, obj := range tops {
		if err := obj.Validate(); err != nil {
			return nil, err
		}
	}
	if len(tops) == 0 && len(parsed) > 0 {
		return nil, fmt.Errorf("oem: all %d objects are referenced by others (reference cycle?)", len(parsed))
	}
	return tops, nil
}

// --- lexer ---

type oemTokenKind int

const (
	tokEOF oemTokenKind = iota
	tokLT               // <
	tokGT               // >
	tokLBrace
	tokRBrace
	tokComma
	tokSemi
	tokOID    // &name
	tokIdent  // label, type name, true/false
	tokString // '…'
	tokNumber // 42, -1.5, 2e3
	tokBytes  // 0xdeadbeef (text holds the hex digits)
)

type oemToken struct {
	kind oemTokenKind
	text string
	line int
}

func (t oemToken) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokLT:
		return "'<'"
	case tokGT:
		return "'>'"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokComma:
		return "','"
	case tokSemi:
		return "';'"
	case tokString:
		return fmt.Sprintf("string %q", t.text)
	case tokBytes:
		return "bytes literal"
	}
	return fmt.Sprintf("%q", t.text)
}

type oemLexer struct {
	src    string
	pos    int
	line   int
	peeked *oemToken
}

func newOEMLexer(src string) *oemLexer {
	return &oemLexer{src: src, line: 1}
}

func (l *oemLexer) peek() oemToken {
	if l.peeked == nil {
		t := l.scan()
		l.peeked = &t
	}
	return *l.peeked
}

func (l *oemLexer) next() oemToken {
	if l.peeked != nil {
		t := *l.peeked
		l.peeked = nil
		return t
	}
	return l.scan()
}

func (l *oemLexer) scan() oemToken {
	l.skipSpace()
	if l.pos >= len(l.src) {
		return oemToken{kind: tokEOF, line: l.line}
	}
	c := l.src[l.pos]
	start := l.line
	switch c {
	case '<':
		l.pos++
		return oemToken{kind: tokLT, line: start}
	case '>':
		l.pos++
		return oemToken{kind: tokGT, line: start}
	case '{':
		l.pos++
		return oemToken{kind: tokLBrace, line: start}
	case '}':
		l.pos++
		return oemToken{kind: tokRBrace, line: start}
	case ',':
		l.pos++
		return oemToken{kind: tokComma, line: start}
	case ';':
		l.pos++
		return oemToken{kind: tokSemi, line: start}
	case '&':
		j := l.pos + 1
		for j < len(l.src) && isWordByte(l.src[j]) {
			j++
		}
		text := l.src[l.pos:j]
		l.pos = j
		return oemToken{kind: tokOID, text: text, line: start}
	case '\'':
		return l.scanString()
	}
	if c == '-' || c >= '0' && c <= '9' {
		return l.scanNumber()
	}
	if isWordStart(rune(c)) {
		j := l.pos
		for j < len(l.src) && isWordByte(l.src[j]) {
			j++
		}
		if j == l.pos {
			// A byte that widens to a letter (e.g. a stray UTF-8 lead
			// byte) but is not an ASCII word byte: consume it anyway so
			// the lexer always makes progress; the parser rejects the
			// resulting token with a position.
			j++
		}
		text := l.src[l.pos:j]
		l.pos = j
		return oemToken{kind: tokIdent, text: text, line: start}
	}
	l.pos++
	return oemToken{kind: tokIdent, text: string(c), line: start}
}

func (l *oemLexer) scanString() oemToken {
	start := l.line
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case '\'':
			l.pos++
			return oemToken{kind: tokString, text: sb.String(), line: start}
		case '\\':
			l.pos++
			if l.pos < len(l.src) {
				switch l.src[l.pos] {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case 'r':
					sb.WriteByte('\r')
				default:
					sb.WriteByte(l.src[l.pos])
				}
				l.pos++
			}
		case '\n':
			l.line++
			sb.WriteByte(c)
			l.pos++
		default:
			sb.WriteByte(c)
			l.pos++
		}
	}
	// Unterminated string: report it via an ident token the parser will
	// reject with a line number.
	return oemToken{kind: tokIdent, text: "'" + sb.String(), line: start}
}

func (l *oemLexer) scanNumber() oemToken {
	start := l.line
	j := l.pos
	if l.src[j] == '-' {
		j++
	}
	if j+1 < len(l.src) && l.src[j] == '0' && (l.src[j+1] == 'x' || l.src[j+1] == 'X') {
		j += 2
		k := j
		for k < len(l.src) && isHexByte(l.src[k]) {
			k++
		}
		text := l.src[j:k]
		l.pos = k
		return oemToken{kind: tokBytes, text: text, line: start}
	}
	for j < len(l.src) && (l.src[j] >= '0' && l.src[j] <= '9' || l.src[j] == '.' ||
		l.src[j] == 'e' || l.src[j] == 'E' ||
		(j > l.pos && (l.src[j] == '+' || l.src[j] == '-') && (l.src[j-1] == 'e' || l.src[j-1] == 'E'))) {
		j++
	}
	text := l.src[l.pos:j]
	l.pos = j
	return oemToken{kind: tokNumber, text: text, line: start}
}

func (l *oemLexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '#':
			l.skipLine()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			l.skipLine()
		default:
			return
		}
	}
}

func (l *oemLexer) skipLine() {
	for l.pos < len(l.src) && l.src[l.pos] != '\n' {
		l.pos++
	}
}

func isWordStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

// validLabel reports whether s is a label the formatter prints verbatim
// and the lexer re-scans as one ident token — an ASCII word not starting
// with a digit. The lexer's recovery paths produce other ident tokens
// (stray bytes, unterminated strings) so they surface here with a
// position instead of being silently adopted as unprintable labels.
func validLabel(s string) bool {
	if s == "" || !(s[0] == '_' || s[0] >= 'a' && s[0] <= 'z' || s[0] >= 'A' && s[0] <= 'Z') {
		return false
	}
	for i := 1; i < len(s); i++ {
		if !isWordByte(s[i]) {
			return false
		}
	}
	return true
}

func isWordByte(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func isHexByte(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}
