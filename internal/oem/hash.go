package oem

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"sort"
)

// structuralHash computes a 64-bit hash of the object's structure that is
// invariant under object-ids and subobject order, so that
// StructuralEqual(a, b) implies structuralHash(a) == structuralHash(b).
// It is the basis of duplicate elimination and of Set.Equal's matching.
func (o *Object) structuralHash() uint64 {
	if o == nil {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(o.Label))
	h.Write([]byte{0})
	switch v := o.Value.(type) {
	case nil:
		h.Write([]byte("set:0"))
	case String:
		h.Write([]byte{'s'})
		h.Write([]byte(v))
	case Int:
		// Ints and equal-valued floats must hash alike because they
		// compare equal (3 == 3.0).
		writeNumHash(h, float64(v))
	case Float:
		writeNumHash(h, float64(v))
	case Bool:
		if v {
			h.Write([]byte{'b', 1})
		} else {
			h.Write([]byte{'b', 0})
		}
	case Bytes:
		h.Write([]byte{'y'})
		h.Write(v)
	case Set:
		// Combine member hashes order-insensitively: hash the sorted
		// multiset of member hashes.
		hashes := make([]uint64, len(v))
		for i, sub := range v {
			hashes[i] = sub.structuralHash()
		}
		sort.Slice(hashes, func(i, j int) bool { return hashes[i] < hashes[j] })
		var buf [8]byte
		h.Write([]byte{'S'})
		for _, sub := range hashes {
			binary.LittleEndian.PutUint64(buf[:], sub)
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}

type hashWriter interface {
	Write(p []byte) (int, error)
}

func writeNumHash(h hashWriter, f float64) {
	var buf [9]byte
	buf[0] = 'n'
	binary.LittleEndian.PutUint64(buf[1:], math.Float64bits(f))
	h.Write(buf[:])
}

// StructuralHash exposes the structural hash for callers that build
// hash-based duplicate-elimination or join structures over objects, such
// as the datamerge engine.
func (o *Object) StructuralHash() uint64 { return o.structuralHash() }

// HashValue hashes a standalone Value with the same invariants as
// StructuralHash: values that compare Equal hash equally.
func HashValue(v Value) uint64 {
	return (&Object{Label: "\x00v", Value: v}).structuralHash()
}
