package oem

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"sort"
)

// structuralHash computes a 64-bit hash of the object's structure that is
// invariant under object-ids and subobject order, so that
// StructuralEqual(a, b) implies structuralHash(a) == structuralHash(b).
// It is the basis of duplicate elimination and of Set.Equal's matching.
func (o *Object) structuralHash() uint64 {
	if o == nil {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(o.Label))
	h.Write([]byte{0})
	switch v := o.Value.(type) {
	case nil:
		h.Write([]byte("set:0"))
	case String:
		h.Write([]byte{'s'})
		h.Write([]byte(v))
	case Int:
		// Ints and equal-valued floats must hash alike because they
		// compare equal (3 == 3.0).
		writeNumHash(h, float64(v))
	case Float:
		writeNumHash(h, float64(v))
	case Bool:
		if v {
			h.Write([]byte{'b', 1})
		} else {
			h.Write([]byte{'b', 0})
		}
	case Bytes:
		h.Write([]byte{'y'})
		h.Write(v)
	case Set:
		// Combine member hashes order-insensitively: hash the sorted
		// multiset of member hashes. Members go through the memoized
		// StructuralHash, so a shared subtree is walked at most once
		// however many parents hash it.
		hashes := make([]uint64, len(v))
		for i, sub := range v {
			hashes[i] = sub.StructuralHash()
		}
		sort.Slice(hashes, func(i, j int) bool { return hashes[i] < hashes[j] })
		var buf [8]byte
		h.Write([]byte{'S'})
		for _, sub := range hashes {
			binary.LittleEndian.PutUint64(buf[:], sub)
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}

type hashWriter interface {
	Write(p []byte) (int, error)
}

func writeNumHash(h hashWriter, f float64) {
	var buf [9]byte
	buf[0] = 'n'
	binary.LittleEndian.PutUint64(buf[1:], math.Float64bits(f))
	h.Write(buf[:])
}

// StructuralHash exposes the structural hash for callers that build
// hash-based duplicate-elimination or join structures over objects, such
// as the datamerge engine. The hash is memoized on the object: objects
// are immutable once shared, so it is computed at most once per object —
// join probes and duplicate eliminations that used to rehash whole OEM
// subtrees per comparison now pay a single atomic load. A true hash of 0
// is deterministically remapped to 1 so 0 stays free as the "not yet
// computed" sentinel; concurrent first calls may both compute, but store
// the same value, so the race is benign and data-race-free.
func (o *Object) StructuralHash() uint64 {
	if o == nil {
		return 0
	}
	if h := o.hashMemo.Load(); h != 0 {
		return h
	}
	h := o.structuralHash()
	if h == 0 {
		h = 1
	}
	o.hashMemo.Store(h)
	return h
}

// InvalidateHash drops the object's memoized structural hash. The one
// engine operation that mutates a shared object — fusion unioning
// subobject sets under a semantic object-id — must call this on the
// object it mutated (ancestors, if any, need invalidation too; fusion
// only ever mutates top-level result objects).
func (o *Object) InvalidateHash() {
	if o == nil {
		return
	}
	o.hashMemo.Store(0)
}

// HashValue hashes a standalone Value with the same invariants as
// StructuralHash: values that compare Equal hash equally.
func HashValue(v Value) uint64 {
	return (&Object{Label: "\x00v", Value: v}).structuralHash()
}
