package oem

import (
	"math/rand"
	"strings"
	"testing"
)

// figure22Text is the paper's Figure 2.2 (the cs wrapper's OEM export),
// normalized to the canonical formatter layout.
const figure22Text = `<&e1, employee, set, {&f1, &l1, &t1, &rep1}>
  <&f1, first_name, string, 'Joe'>
  <&l1, last_name, string, 'Chung'>
  <&t1, title, string, 'professor'>
  <&rep1, reports_to, string, 'John Hennessy'>
<&s1, student, set, {&f2, &l2, &y2}>
  <&f2, first_name, string, 'Nick'>
  <&l2, last_name, string, 'Naive'>
  <&y2, year, integer, 3>
;
`

func figure22Objects() []*Object {
	return []*Object{
		NewSet("&e1", "employee",
			New("&f1", "first_name", "Joe"),
			New("&l1", "last_name", "Chung"),
			New("&t1", "title", "professor"),
			New("&rep1", "reports_to", "John Hennessy"),
		),
		NewSet("&s1", "student",
			New("&f2", "first_name", "Nick"),
			New("&l2", "last_name", "Naive"),
			New("&y2", "year", 3),
		),
	}
}

func TestFormatFlatMatchesFigure22(t *testing.T) {
	got := Format(figure22Objects()...)
	if got != figure22Text {
		t.Fatalf("flat format mismatch:\ngot:\n%s\nwant:\n%s", got, figure22Text)
	}
}

func TestParseFlatFigure22(t *testing.T) {
	objs, err := Parse(figure22Text)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("parsed %d top-level objects, want 2", len(objs))
	}
	want := figure22Objects()
	for i := range objs {
		if !objs[i].StructuralEqual(want[i]) {
			t.Errorf("object %d differs:\n%s", i, Format(objs[i]))
		}
		if objs[i].OID != want[i].OID {
			t.Errorf("object %d oid %s, want %s", i, objs[i].OID, want[i].OID)
		}
	}
}

func TestParseNestedStyle(t *testing.T) {
	input := `
<&p1, person, set, {
  <&n1, name, string, 'Joe Chung'>,
  <&d1, dept, 'CS'>,
  <year, integer, 3>
}>`
	obj, err := ParseOne(input)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Label != "person" || len(obj.Subobjects()) != 3 {
		t.Fatalf("parsed %s", Format(obj))
	}
	if got, _ := obj.Sub("dept").AtomString(); got != "CS" {
		t.Fatal("dept value lost")
	}
	if n, _ := obj.Sub("year").AtomInt(); n != 3 {
		t.Fatal("year value lost")
	}
	if obj.Sub("year").OID != NilOID {
		t.Fatal("oid-less pattern should keep NilOID")
	}
}

func TestParseFieldForms(t *testing.T) {
	cases := []struct {
		in        string
		label     string
		kind      Kind
		wantError bool
	}{
		{"<&1, dept, string, 'CS'>", "dept", KindString, false},
		{"<&1, dept, 'CS'>", "dept", KindString, false},
		{"<dept, string, 'CS'>", "dept", KindString, false},
		{"<dept, 'CS'>", "dept", KindString, false},
		{"<year, integer, 3>", "year", KindInt, false},
		{"<ratio, real, 3>", "ratio", KindFloat, false}, // widened
		{"<ratio, 2.5>", "ratio", KindFloat, false},
		{"<flag, boolean, true>", "flag", KindBool, false},
		{"<flag, false>", "flag", KindBool, false},
		{"<blob, bytes, 0xdead>", "blob", KindBytes, false},
		{"<kids, set, {}>", "kids", KindSet, false},
		{"<kids, {}>", "kids", KindSet, false},
		{"<year, integer, 2.5>", "", 0, true},        // declared int, real value
		{"<year, string, 3>", "", 0, true},           // type mismatch
		{"<year, widget, 3>", "", 0, true},           // unknown type
		{"<'CS'>", "", 0, true},                      // no label
		{"<&1, dept, string, 'CS', 9>", "", 0, true}, // too many fields
		{"<dept, string, {}>", "", 0, true},          // declared string, set value
	}
	for _, c := range cases {
		objs, err := Parse(c.in)
		if c.wantError {
			if err == nil {
				t.Errorf("Parse(%q) succeeded, want error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		o := objs[0]
		if o.Label != c.label || o.Kind() != c.kind {
			t.Errorf("Parse(%q) = label %q kind %v", c.in, o.Label, o.Kind())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"<&1, a, 1> <&1, b, 2>",                 // duplicate oid
		"<&1, a, set, {&missing}>",              // dangling reference
		"junk",                                  // not an object
		"<&1, a, set, {",                        // unterminated set
		"<&1, a, 1",                             // unterminated object
		"<&1, a, set, {&2}> <&2, b, set, {&1}>", // all referenced => cycle
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestParseCommentsAndSemicolons(t *testing.T) {
	input := `
# a comment
<&1, a, 1> ; // trailing comment
<&2, b, 2>
;`
	objs, err := Parse(input)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("got %d objects", len(objs))
	}
}

func TestParseOne(t *testing.T) {
	if _, err := ParseOne("<a,1> <b,2>"); err == nil {
		t.Fatal("ParseOne should reject two objects")
	}
	if _, err := ParseOne("<a,1>"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic on bad input")
		}
	}()
	MustParse("<<<")
}

func TestNestedFormatterRoundTrip(t *testing.T) {
	objs := figure22Objects()
	f := &Formatter{Style: StyleNested}
	text := f.FormatString(objs...)
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse nested: %v\n%s", err, text)
	}
	if len(back) != len(objs) {
		t.Fatalf("round trip produced %d objects", len(back))
	}
	for i := range objs {
		if !objs[i].StructuralEqual(back[i]) {
			t.Errorf("nested round trip changed object %d:\n%s", i, text)
		}
	}
}

func TestOmitTypesRoundTrip(t *testing.T) {
	objs := figure22Objects()
	f := &Formatter{OmitTypes: true}
	text := f.FormatString(objs...)
	if strings.Contains(text, "string") {
		t.Fatalf("OmitTypes left a type name in:\n%s", text)
	}
	back, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	for i := range objs {
		if !objs[i].StructuralEqual(back[i]) {
			t.Errorf("omit-types round trip changed object %d", i)
		}
	}
}

func TestFormatterAssignsDisplayOIDs(t *testing.T) {
	o := NewSet("", "person", New("", "name", "Al"))
	text := Format(o)
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("flat format of oid-less object not parseable: %v\n%s", err, text)
	}
	if !back[0].StructuralEqual(o) {
		t.Fatal("display-oid round trip changed the object")
	}
}

func TestPropFormatParseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	styles := []Formatter{
		{},
		{Style: StyleNested},
		{OmitTypes: true},
		{Style: StyleNested, OmitTypes: true, Indent: "\t"},
	}
	for i := 0; i < 150; i++ {
		o := randomObject(r, 3)
		AssignOIDs(o, NewIDGen("t"))
		for si := range styles {
			f := styles[si]
			text := f.FormatString(o)
			back, err := Parse(text)
			if err != nil {
				t.Fatalf("style %d reparse failed: %v\n%s", si, err, text)
			}
			if len(back) != 1 || !back[0].StructuralEqual(o) {
				t.Fatalf("style %d round trip changed object:\n%s\nwant:\n%s", si, Format(back...), Format(o))
			}
		}
	}
}
